package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestCriteoLayouts(t *testing.T) {
	if len(KaggleCardinalities) != 26 || len(TerabyteCardinalities) != 26 {
		t.Fatal("Criteo layouts must have 26 sparse features")
	}
	maxK, maxT := 0, 0
	for i := range KaggleCardinalities {
		if KaggleCardinalities[i] > maxK {
			maxK = KaggleCardinalities[i]
		}
		if TerabyteCardinalities[i] > maxT {
			maxT = TerabyteCardinalities[i]
		}
	}
	// "Criteo ... only go up to 1e7" (§VI-A2).
	if maxK < 1e7 || maxK > 2e7 || maxT < 9e6 || maxT > 1.1e7 {
		t.Fatalf("max cardinalities off: kaggle=%d terabyte=%d", maxK, maxT)
	}
}

func TestTableBytesMatchesPaperScale(t *testing.T) {
	// Table VI: Kaggle table model ≈ 2062.7 MB at dim 16; Terabyte
	// ≈ 11999.2 MB at dim 64. Raw rows×dim×4 accounting should land close
	// (the paper's numbers include small per-layer overheads).
	kaggleMB := float64(TableBytes(KaggleCardinalities, 16)) / 1e6
	teraMB := float64(TableBytes(TerabyteCardinalities, 64)) / 1e6
	if math.Abs(kaggleMB-2062.7)/2062.7 > 0.15 {
		t.Fatalf("Kaggle table %.1f MB, paper says 2062.7", kaggleMB)
	}
	if math.Abs(teraMB-11999.2)/11999.2 > 0.15 {
		t.Fatalf("Terabyte table %.1f MB, paper says 11999.2", teraMB)
	}
}

func TestScaleCardinalities(t *testing.T) {
	s := ScaleCardinalities([]int{1000, 10, 1}, 0.01)
	if s[0] != 10 || s[1] < 2 || s[2] < 2 {
		t.Fatalf("scaled: %v", s)
	}
	if len(s) != 3 {
		t.Fatal("length changed")
	}
}

func TestMetaCardinalities(t *testing.T) {
	sizes := MetaCardinalities(1)
	if len(sizes) != 788 {
		t.Fatalf("Meta layout must have 788 tables, got %d", len(sizes))
	}
	var total int64
	maxN := 0
	for _, n := range sizes {
		if n <= 0 {
			t.Fatal("non-positive table size")
		}
		if n > maxN {
			maxN = n
		}
		if n > 40_000_000 {
			t.Fatalf("size %d above the 4e7 cap", n)
		}
		total += int64(n)
	}
	if maxN < 20_000_000 {
		t.Fatalf("tail not heavy enough: max=%d", maxN)
	}
	// Footprint at dim 64 should be within 10% of the paper's 931 GB.
	gotGB := float64(total) * 64 * 4 / 1e9
	if math.Abs(gotGB-931.3)/931.3 > 0.10 {
		t.Fatalf("Meta footprint %.1f GB, want ≈931", gotGB)
	}
	// Deterministic.
	again := MetaCardinalities(1)
	for i := range sizes {
		if sizes[i] != again[i] {
			t.Fatal("MetaCardinalities must be deterministic per seed")
		}
	}
}

func TestZipfValueRangeAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 20000; i++ {
		v := ZipfValue(rng, n)
		if v >= n {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// Head must be much more popular than the tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-1] + counts[n-2] + counts[n-3]
	if head <= tail*5 {
		t.Fatalf("insufficient skew: head=%d tail=%d", head, tail)
	}
	if ZipfValue(rng, 1) != 0 {
		t.Fatal("ZipfValue(1) must be 0")
	}
}

func TestCTRBatchShapes(t *testing.T) {
	ds := NewCTR(4, []int{10, 100, 1000}, 3)
	rng := rand.New(rand.NewSource(4))
	b := ds.Sample(32, rng)
	if b.Dense.Rows != 32 || b.Dense.Cols != 4 {
		t.Fatalf("dense shape %dx%d", b.Dense.Rows, b.Dense.Cols)
	}
	if len(b.Sparse) != 3 || len(b.Sparse[0]) != 32 || len(b.Labels) != 32 {
		t.Fatal("batch layout wrong")
	}
	for f, card := range ds.Cardinalities {
		for _, v := range b.Sparse[f] {
			if v >= uint64(card) {
				t.Fatalf("feature %d value %d out of %d", f, v, card)
			}
		}
	}
	for _, y := range b.Labels {
		if y != 0 && y != 1 {
			t.Fatalf("label %v not binary", y)
		}
	}
}

func TestCTRLabelsBalancedAndSignalful(t *testing.T) {
	ds := NewCTR(4, []int{50, 50}, 5)
	rng := rand.New(rand.NewSource(6))
	b := ds.Sample(4000, rng)
	pos := 0
	for _, y := range b.Labels {
		if y == 1 {
			pos++
		}
	}
	rate := float64(pos) / 4000
	if rate < 0.15 || rate > 0.85 {
		t.Fatalf("label rate %.2f too extreme to train on", rate)
	}
	// The planted truth must make labels predictable: the Bayes-optimal
	// single-feature rule on hidden scores should beat chance. Check via
	// correlation of label with the hidden score of feature 0.
	var cov, varS float64
	mean := rate
	for r := 0; r < 4000; r++ {
		s := float64(ds.hiddenScore(0, b.Sparse[0][r]))
		cov += s * (float64(b.Labels[r]) - mean)
		varS += s * s
	}
	corr := cov / math.Sqrt(varS*float64(4000)*mean*(1-mean))
	if math.Abs(corr) < 0.02 {
		t.Fatalf("hidden score carries no signal: corr=%.4f", corr)
	}
}

func TestCTRDeterministicHiddenScore(t *testing.T) {
	a := NewCTR(2, []int{100}, 7)
	b := NewCTR(2, []int{100}, 7)
	for v := uint64(0); v < 50; v++ {
		if a.hiddenScore(0, v) != b.hiddenScore(0, v) {
			t.Fatal("hiddenScore must be deterministic per seed")
		}
	}
	c := NewCTR(2, []int{100}, 8)
	diff := 0
	for v := uint64(0); v < 50; v++ {
		if a.hiddenScore(0, v) != c.hiddenScore(0, v) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds must plant different truths")
	}
}

func TestCorpusGenerate(t *testing.T) {
	c := NewCorpus(500, 9)
	rng := rand.New(rand.NewSource(10))
	toks := c.Generate(5000, rng)
	if len(toks) != 5000 {
		t.Fatal("length")
	}
	for _, tok := range toks {
		if tok < 0 || tok >= 500 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	// Successor structure must dominate: count transitions that follow it.
	follow := 0
	for i := 0; i+1 < len(toks); i++ {
		if toks[i+1] == c.Successor(toks[i]) {
			follow++
		}
	}
	frac := float64(follow) / float64(len(toks)-1)
	if frac < 0.6 || frac > 0.85 {
		t.Fatalf("successor fraction %.2f, want ≈0.7", frac)
	}
}

func TestCorpusBatches(t *testing.T) {
	toks := make([]int, 100)
	for i := range toks {
		toks[i] = i
	}
	ins, tgts := Batches(toks, 10)
	if len(ins) != len(tgts) || len(ins) == 0 {
		t.Fatal("batch count")
	}
	for b := range ins {
		for i := range ins[b] {
			if tgts[b][i] != ins[b][i]+1 {
				t.Fatal("target must be input shifted by one")
			}
		}
	}
}

func TestCorpusEntropyBound(t *testing.T) {
	h := NewCorpus(1000, 1).EntropyUpperBoundBits()
	if h <= 0 || h >= math.Log2(1000)+0.01 {
		t.Fatalf("entropy bound %.2f implausible", h)
	}
}

func TestCorpusPanicsOnTinyVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCorpus(1, 0)
}
