package data

import (
	"strings"
	"testing"
)

// FuzzParseCriteoLine hardens the TSV parser: arbitrary input must never
// panic, and accepted records must respect the cardinality caps.
func FuzzParseCriteoLine(f *testing.F) {
	cards := []int{16, 1024}
	f.Add("1\t1\t2\t3\t4\t5\t6\t7\t8\t9\t10\t11\t12\t13\taa\tbb")
	f.Add("0\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t")
	f.Add("garbage")
	f.Add(strings.Repeat("\t", 40))
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCriteoLine(line, cards)
		if err != nil {
			return
		}
		if rec.Label != 0 && rec.Label != 1 {
			t.Fatalf("accepted label %v", rec.Label)
		}
		for i, n := range cards {
			if rec.Sparse[i] >= uint64(n) {
				t.Fatalf("sparse[%d]=%d ≥ %d", i, rec.Sparse[i], n)
			}
		}
	})
}
