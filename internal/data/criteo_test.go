package data

import (
	"fmt"
	"strings"
	"testing"
)

// criteoLine builds a synthetic Criteo TSV line.
func criteoLine(label string, dense []string, sparse []string) string {
	fields := append([]string{label}, dense...)
	fields = append(fields, sparse...)
	return strings.Join(fields, "\t")
}

func fullDense(v string) []string {
	out := make([]string, NumDenseFeatures)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestParseCriteoLine(t *testing.T) {
	cards := []int{100, 200, 300}
	line := criteoLine("1", fullDense("3"), []string{"68fd1e64", "80e26c9b", "fb936136"})
	rec, err := ParseCriteoLine(line, cards)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label != 1 {
		t.Fatalf("label %v", rec.Label)
	}
	// log1p(3) ≈ 1.386.
	if rec.Dense[0] < 1.3 || rec.Dense[0] > 1.5 {
		t.Fatalf("dense[0]=%v, want log1p(3)", rec.Dense[0])
	}
	for i, n := range cards {
		if rec.Sparse[i] >= uint64(n) {
			t.Fatalf("sparse[%d]=%d out of cardinality %d", i, rec.Sparse[i], n)
		}
	}
	// Determinism: same value hashes to the same index.
	rec2, _ := ParseCriteoLine(line, cards)
	if rec2.Sparse[0] != rec.Sparse[0] {
		t.Fatal("hashing must be deterministic")
	}
}

func TestParseCriteoMissingFields(t *testing.T) {
	cards := []int{50}
	dense := fullDense("")
	line := criteoLine("0", dense, []string{""})
	rec, err := ParseCriteoLine(line, cards)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label != 0 || rec.Dense[0] != 0 || rec.Sparse[0] != 0 {
		t.Fatalf("missing fields must default to zero: %+v", rec)
	}
}

func TestParseCriteoNegativeDenseClamped(t *testing.T) {
	rec, err := ParseCriteoLine(criteoLine("0", fullDense("-2"), []string{"aa"}), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dense[0] != 0 {
		t.Fatalf("negative dense must clamp: %v", rec.Dense[0])
	}
}

func TestParseCriteoErrors(t *testing.T) {
	cards := []int{10}
	cases := []string{
		"1\tonly_three_fields\tx",
		criteoLine("7", fullDense("1"), []string{"aa"}),   // bad label
		criteoLine("1", fullDense("abc"), []string{"aa"}), // bad dense
	}
	for i, line := range cases {
		if _, err := ParseCriteoLine(line, cards); err == nil {
			t.Fatalf("case %d must error", i)
		}
	}
}

func TestParseCriteoNonHexCategoricalTolerated(t *testing.T) {
	rec, err := ParseCriteoLine(criteoLine("1", fullDense("1"), []string{"not-hex!"}), []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sparse[0] >= 7 {
		t.Fatal("string-hashed value out of range")
	}
}

func TestLoadCriteoStream(t *testing.T) {
	cards := []int{64, 64}
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		label := "0"
		if i%3 == 0 {
			label = "1"
		}
		fmt.Fprintln(&sb, criteoLine(label, fullDense(fmt.Sprint(i)), []string{fmt.Sprintf("%x", i*17), fmt.Sprintf("%x", i*31)}))
	}
	b, err := LoadCriteo(strings.NewReader(sb.String()), cards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dense.Rows != 10 || len(b.Sparse) != 2 || len(b.Labels) != 10 {
		t.Fatalf("batch layout: %d rows, %d features", b.Dense.Rows, len(b.Sparse))
	}
	if b.Labels[0] != 1 || b.Labels[1] != 0 {
		t.Fatal("labels wrong")
	}
	// Limit.
	b2, err := LoadCriteo(strings.NewReader(sb.String()), cards, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Dense.Rows != 4 {
		t.Fatalf("limit ignored: %d rows", b2.Dense.Rows)
	}
	// Malformed line reports its number.
	bad := sb.String() + "garbage\n"
	if _, err := LoadCriteo(strings.NewReader(bad), cards, 0); err == nil || !strings.Contains(err.Error(), "line 11") {
		t.Fatalf("expected line-11 error, got %v", err)
	}
}

func TestCriteoBatchTrainsDLRMShape(t *testing.T) {
	// The loaded batch slots directly into the model's expected layout —
	// checked structurally (full training covered elsewhere).
	cards := []int{32, 32}
	line := criteoLine("1", fullDense("2"), []string{"ff", "ee"})
	b, err := LoadCriteo(strings.NewReader(line+"\n"+line+"\n"), cards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dense.Cols != NumDenseFeatures {
		t.Fatalf("dense cols %d", b.Dense.Cols)
	}
	for f := range b.Sparse {
		if len(b.Sparse[f]) != b.Dense.Rows {
			t.Fatal("sparse/dense row mismatch")
		}
	}
}
