package data

import (
	"math"
	"math/rand"
)

// Corpus is a synthetic token stream with learnable structure, standing in
// for OpenWebText in the LLM experiments. Tokens follow a mixture of
// (a) a deterministic order-1 successor function and (b) a Zipf-skewed
// unigram draw. A language model that learns the successor function drives
// its perplexity well below the unigram entropy, so "finetuning improves
// perplexity" (Figure 14) is measurable at miniature scale.
type Corpus struct {
	Vocab int
	// PSuccessor is the probability the next token is Successor(current).
	PSuccessor float64

	seed int64
}

// NewCorpus builds a corpus over the given vocabulary.
func NewCorpus(vocab int, seed int64) *Corpus {
	if vocab < 2 {
		panic("data: vocabulary must have at least 2 tokens")
	}
	return &Corpus{Vocab: vocab, PSuccessor: 0.7, seed: seed}
}

// Successor is the hidden deterministic next-token function: an affine map
// over the vocabulary, mixed so it is not learnable from token identity
// alone but trivially learnable from the previous token.
func (c *Corpus) Successor(tok int) int {
	x := uint64(tok)*6364136223846793005 + uint64(c.seed) + 1442695040888963407
	x ^= x >> 33
	return int(x % uint64(c.Vocab))
}

// Generate emits n tokens starting from a Zipf draw.
func (c *Corpus) Generate(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	cur := int(ZipfValue(rng, c.Vocab))
	for i := 0; i < n; i++ {
		out[i] = cur
		if rng.Float64() < c.PSuccessor {
			cur = c.Successor(cur)
		} else {
			cur = int(ZipfValue(rng, c.Vocab))
		}
	}
	return out
}

// Batches cuts a token stream into (input, target) windows of the given
// block size for language-model training: target[t] = input[t+1].
func Batches(tokens []int, block int) (inputs, targets [][]int) {
	for lo := 0; lo+block+1 <= len(tokens); lo += block {
		inputs = append(inputs, tokens[lo:lo+block])
		targets = append(targets, tokens[lo+1:lo+block+1])
	}
	return inputs, targets
}

// EntropyUpperBoundBits estimates the unigram entropy of the corpus's
// Zipf marginal in bits — the ceiling an unconditional model can reach;
// the successor structure lets a context model beat it.
func (c *Corpus) EntropyUpperBoundBits() float64 {
	// Zipf(1) over V symbols: H ≈ log2(ln V) + ... use empirical estimate.
	var z float64
	for k := 1; k <= c.Vocab; k++ {
		z += 1 / float64(k)
	}
	var h float64
	for k := 1; k <= c.Vocab; k++ {
		p := 1 / float64(k) / z
		h -= p * math.Log2(p)
	}
	return h
}
