// Package data provides the synthetic datasets that stand in for the
// paper's proprietary/huge corpora (DESIGN.md §1):
//
//   - The published per-table cardinalities of Criteo Kaggle and Criteo
//     Terabyte (the real 26-sparse-feature layouts the paper's DLRM
//     models use) with a planted-ground-truth CTR generator so both the
//     table- and DHE-based models can be trained to the same accuracy.
//   - A Meta-2022-like sampler of 788 embedding-table sizes reaching 4e7
//     rows, calibrated so the raw-table footprint at dim 64 lands near
//     the paper's 931 GB (Table VIII).
//   - A structured synthetic token corpus for the LLM experiments with
//     learnable order-1 dynamics, so finetuning measurably reduces
//     perplexity (Figure 14's role).
//
// Everything is deterministic under a seed.
package data

import (
	"math"
	"math/rand"
)

// KaggleCardinalities are the 26 sparse-feature table sizes of the Criteo
// Kaggle Display-Advertising dataset, as used by the reference DLRM.
var KaggleCardinalities = []int{
	1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145,
	5683, 8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
	7046547, 18, 15, 286181, 105, 142572,
}

// TerabyteCardinalities are the 26 sparse-feature table sizes of Criteo
// Terabyte under the standard 1e7 index cap (the paper notes Criteo tables
// "only go up to 1e7").
var TerabyteCardinalities = []int{
	9980333, 36084, 17217, 7420, 20263, 3, 7120, 1543, 63, 9999999,
	2642264, 9299374, 39, 2796, 1790, 4, 970, 75, 34, 9994222,
	33091, 9919369, 7745, 4, 12191, 106,
}

// NumDenseFeatures is Criteo's count of continuous (dense) features.
const NumDenseFeatures = 13

// TableBytes returns the raw embedding-table footprint of a model with the
// given cardinalities at embedding dimension dim (float32 rows).
func TableBytes(cardinalities []int, dim int) int64 {
	var total int64
	for _, n := range cardinalities {
		total += int64(n) * int64(dim) * 4
	}
	return total
}

// ScaleCardinalities shrinks every table size by factor (min 1 row),
// used to build trainable miniatures of the Criteo layouts that preserve
// the relative size distribution.
func ScaleCardinalities(cardinalities []int, factor float64) []int {
	out := make([]int, len(cardinalities))
	for i, n := range cardinalities {
		v := int(math.Round(float64(n) * factor))
		if v < 2 {
			v = 2
		}
		out[i] = v
	}
	return out
}

// MetaCardinalities synthesizes the 788-table size distribution of the
// Meta 2022 embedding-trace dataset: log-normal sizes capped at 4e7 rows,
// rescaled so the dim-64 raw footprint matches the paper's 931 GB within
// a few percent.
func MetaCardinalities(seed int64) []int {
	const tables = 788
	const cap = 40_000_000
	const targetRows = 931_335.7e6 / (64 * 4) // Table VIII footprint → total rows
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]float64, tables)
	var total float64
	for i := range sizes {
		// mu/sigma chosen for a heavy right tail; the rescale below pins
		// the total.
		v := math.Exp(13.0 + 2.0*rng.NormFloat64())
		if v > cap {
			v = cap
		}
		sizes[i] = v
		total += v
	}
	// Rescale toward the target, iterating because the cap re-binds.
	for iter := 0; iter < 8; iter++ {
		scale := targetRows / total
		total = 0
		for i := range sizes {
			v := sizes[i] * scale
			if v > cap {
				v = cap
			}
			if v < 10 {
				v = 10
			}
			sizes[i] = v
			total += v
		}
	}
	out := make([]int, tables)
	for i, v := range sizes {
		out[i] = int(v)
	}
	return out
}
