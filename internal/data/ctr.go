package data

import (
	"math"
	"math/rand"

	"secemb/internal/tensor"
)

// CTRDataset generates click-through-rate examples with a *planted* ground
// truth: every (feature, value) pair carries a hidden score derived from a
// hash, and the label is Bernoulli of a logistic combination of the dense
// features and those scores. Because the truth is a deterministic function
// of the categorical values, a table-based model and a DHE-based model can
// both represent it — which is exactly the property Table V needs
// ("DHE matches the baseline table accuracy").
type CTRDataset struct {
	DenseDim      int
	Cardinalities []int

	seed     int64
	denseW   []float32
	sparseW  []float32 // per-feature weight on the hidden score
	biasTerm float32
}

// NewCTR builds a dataset over the given sparse layout.
func NewCTR(denseDim int, cardinalities []int, seed int64) *CTRDataset {
	rng := rand.New(rand.NewSource(seed))
	d := &CTRDataset{
		DenseDim:      denseDim,
		Cardinalities: append([]int(nil), cardinalities...),
		seed:          seed,
		denseW:        make([]float32, denseDim),
		sparseW:       make([]float32, len(cardinalities)),
		biasTerm:      float32(rng.NormFloat64() * 0.1),
	}
	for i := range d.denseW {
		d.denseW[i] = float32(rng.NormFloat64())
	}
	for i := range d.sparseW {
		d.sparseW[i] = float32(rng.NormFloat64())
	}
	return d
}

// hiddenScore is the planted per-(feature,value) effect, computed by a
// 64-bit mix hash so no storage is needed even for 1e7-row features.
func (d *CTRDataset) hiddenScore(feature int, value uint64) float32 {
	x := value*0x9E3779B97F4A7C15 + uint64(feature)*0xBF58476D1CE4E5B9 + uint64(d.seed)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	// Map to roughly N(0,1) via the sum of two uniforms (triangular, then
	// scaled) — cheap and smooth enough for a planted signal.
	u1 := float64(x&0xFFFFFFFF) / float64(1<<32)
	u2 := float64(x>>32) / float64(1<<32)
	return float32((u1 + u2 - 1) * 2.45) // var ≈ 1
}

// Batch is one mini-batch of CTR examples: Dense is batch×DenseDim,
// Sparse[f][r] is the value of feature f in example r, Labels are 0/1.
type Batch struct {
	Dense  *tensor.Matrix
	Sparse [][]uint64 // [feature][row]
	Labels []float32
}

// Sample draws a batch. Sparse values follow a Zipf-ish distribution
// (real CTR traffic is heavily skewed toward popular items).
func (d *CTRDataset) Sample(batch int, rng *rand.Rand) Batch {
	b := Batch{
		Dense:  tensor.New(batch, d.DenseDim),
		Sparse: make([][]uint64, len(d.Cardinalities)),
		Labels: make([]float32, batch),
	}
	for f := range b.Sparse {
		b.Sparse[f] = make([]uint64, batch)
	}
	for r := 0; r < batch; r++ {
		logit := float64(d.biasTerm)
		row := b.Dense.Row(r)
		for i := range row {
			v := float32(rng.NormFloat64())
			row[i] = v
			logit += float64(d.denseW[i] * v * 0.3)
		}
		for f, n := range d.Cardinalities {
			v := ZipfValue(rng, n)
			b.Sparse[f][r] = v
			logit += float64(d.sparseW[f]*d.hiddenScore(f, v)) * 0.5 / math.Sqrt(float64(len(d.Cardinalities)))
		}
		p := 1 / (1 + math.Exp(-logit))
		if rng.Float64() < p {
			b.Labels[r] = 1
		}
	}
	return b
}

// ZipfValue draws a value in [0, n) with a Zipf-like skew toward small
// indices (popular items first), falling back to uniform for tiny tables.
func ZipfValue(rng *rand.Rand, n int) uint64 {
	if n <= 1 {
		return 0
	}
	// Log-uniform over [1, n]: P(value = k) ∝ 1/k, so index 0 is the most
	// popular — the 1/rank skew of real CTR traffic.
	v := math.Pow(float64(n), rng.Float64())
	idx := int(v) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return uint64(idx)
}

// ZipfValueFiltered draws ZipfValue samples until one satisfies accept —
// rejection sampling that keeps the 1/rank shape within the accepted
// subset. Callers use it to build skewed key populations pinned to a
// partition of the id space, e.g. ids that consistently route to one
// serving shard (accept = RouteShard(id, n) == s). It panics after a
// bounded number of rejections rather than spinning on a predicate that
// accepts (almost) nothing.
func ZipfValueFiltered(rng *rand.Rand, n int, accept func(uint64) bool) uint64 {
	for i := 0; i < 1<<20; i++ {
		if v := ZipfValue(rng, n); accept(v) {
			return v
		}
	}
	panic("data: ZipfValueFiltered predicate accepted nothing after 2^20 draws")
}
