package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"secemb/internal/tensor"
)

// Criteo TSV loading: the paper's DLRM experiments preprocess the Criteo
// Kaggle/Terabyte click logs — tab-separated lines of
//
//	label \t I1..I13 (integer dense) \t C1..C26 (hex categorical)
//
// with empty fields allowed. This loader parses that exact format so the
// pipeline runs on the real datasets when they are available, applying
// the standard DLRM preprocessing: log(1+x) on dense features and a hash
// of each categorical value modulo the feature's cardinality (the
// index-capping Terabyte runs use).

// CriteoRecord is one parsed click-log line.
type CriteoRecord struct {
	Label  float32
	Dense  [NumDenseFeatures]float32
	Sparse []uint64 // one index per categorical feature
}

// ParseCriteoLine parses one TSV line with the given per-feature
// cardinalities (len(cardinalities) categorical fields expected).
func ParseCriteoLine(line string, cardinalities []int) (CriteoRecord, error) {
	fields := strings.Split(strings.TrimRight(line, "\n"), "\t")
	want := 1 + NumDenseFeatures + len(cardinalities)
	if len(fields) != want {
		return CriteoRecord{}, fmt.Errorf("data: criteo line has %d fields, want %d", len(fields), want)
	}
	var rec CriteoRecord
	switch fields[0] {
	case "0":
		rec.Label = 0
	case "1":
		rec.Label = 1
	default:
		return CriteoRecord{}, fmt.Errorf("data: bad label %q", fields[0])
	}
	for i := 0; i < NumDenseFeatures; i++ {
		f := fields[1+i]
		if f == "" {
			continue // missing → 0, as in the reference preprocessing
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return CriteoRecord{}, fmt.Errorf("data: dense field %d: %w", i, err)
		}
		if v < 0 {
			v = 0 // Criteo has rare negative ints; clamp like the reference
		}
		rec.Dense[i] = float32(math.Log1p(v))
	}
	rec.Sparse = make([]uint64, len(cardinalities))
	for i, n := range cardinalities {
		f := fields[1+NumDenseFeatures+i]
		if f == "" {
			rec.Sparse[i] = 0
			continue
		}
		h, err := strconv.ParseUint(f, 16, 64)
		if err != nil {
			// Tolerate non-hex values by hashing the string.
			h = hashString(f)
		}
		rec.Sparse[i] = mixHash(h) % uint64(n)
	}
	return rec, nil
}

// LoadCriteo reads up to limit records (limit ≤ 0 = all) from a Criteo
// TSV stream, returning a training batch. Malformed lines abort with the
// line number for debuggability.
func LoadCriteo(r io.Reader, cardinalities []int, limit int) (Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var recs []CriteoRecord
	for lineNo := 1; sc.Scan(); lineNo++ {
		if limit > 0 && len(recs) >= limit {
			break
		}
		rec, err := ParseCriteoLine(sc.Text(), cardinalities)
		if err != nil {
			return Batch{}, fmt.Errorf("line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return Batch{}, err
	}
	return RecordsToBatch(recs, len(cardinalities)), nil
}

// RecordsToBatch transposes records into the model's batch layout.
func RecordsToBatch(recs []CriteoRecord, numSparse int) Batch {
	b := Batch{
		Dense:  tensor.New(len(recs), NumDenseFeatures),
		Sparse: make([][]uint64, numSparse),
		Labels: make([]float32, len(recs)),
	}
	for f := range b.Sparse {
		b.Sparse[f] = make([]uint64, len(recs))
	}
	for r, rec := range recs {
		copy(b.Dense.Row(r), rec.Dense[:])
		for f := 0; f < numSparse; f++ {
			b.Sparse[f][r] = rec.Sparse[f]
		}
		b.Labels[r] = rec.Label
	}
	return b
}

// mixHash is a 64-bit finalizer spreading raw categorical values across
// the capped index space.
func mixHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
