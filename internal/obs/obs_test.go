package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricIDSortsLabels(t *testing.T) {
	a := metricID("m", []string{"tech", "dhe", "batch", "32"})
	b := metricID("m", []string{"batch", "32", "tech", "dhe"})
	if a != b {
		t.Fatalf("label order changed identity: %q vs %q", a, b)
	}
	if a != `m{batch="32",tech="dhe"}` {
		t.Fatalf("canonical form wrong: %q", a)
	}
	if metricID("m", nil) != "m" {
		t.Fatal("unlabeled metric must be the bare name")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "k", "v")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter=%d", c.Value())
	}
	if r.Counter("c", "k", "v") != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if r.Counter("c", "k", "w") == c {
		t.Fatal("different labels must return a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge=%d", g.Value())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	r.StartSpan("s").Child("c").End()
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// A value equal to a bound lands in that bound's bucket; one past it
	// lands in the next.
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {10, 0}, {11, 1}, {100, 1}, {101, 2}, {1000, 2}, {1001, 3}}
	for _, c := range cases {
		if got := h.bucketOf(c.v); got != c.want {
			t.Fatalf("bucketOf(%d)=%d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	_, counts := h.Buckets()
	want := []int64{2, 2, 2, 1}
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket %d count=%d, want %d (all: %v)", i, counts[i], n, counts)
		}
	}
	if h.Count() != 7 || h.Max() != 1001 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) != 27 || b[0] != 256 {
		t.Fatalf("buckets: len=%d first=%d", len(b), b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != b[i-1]*2 {
			t.Fatalf("bucket %d not a doubling: %d after %d", i, b[i], b[i-1])
		}
	}
	// ~17s ceiling comfortably covers a full ORAM-protected batch.
	if b[len(b)-1] < int64(10*time.Second) {
		t.Fatalf("top bucket %d too small", b[len(b)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1µs .. 1ms, roughly uniform
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 < 250_000 || p50 > 750_000 {
		t.Fatalf("p50=%d outside plausible range for uniform 1µs..1ms", p50)
	}
	if p99 <= p50 {
		t.Fatalf("p99=%d must exceed p50=%d", p99, p50)
	}
	if p99 > h.Max() || h.Quantile(1) > h.Max() {
		t.Fatal("quantiles must be clamped to the exact max")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q=1 should report the max, got %d vs %d", h.Quantile(1), h.Max())
	}
	empty := NewHistogram(nil)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramSingleObservationExact(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(12345)
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Fatalf("Quantile(%v)=%d, want the single exact value", q, got)
		}
	}
	if h.Mean() != 12345 {
		t.Fatalf("mean=%v", h.Mean())
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	// Run with -race: 8 goroutines share one counter, gauge and histogram.
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed*1000 + int64(i))
				g.Add(-1)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*per {
		t.Fatalf("counter=%d, want %d", got, workers*per)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge=%d, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != workers*per {
		t.Fatalf("histogram count=%d, want %d", got, workers*per)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; render must be identical.
		for _, k := range []string{"z", "a", "m"} {
			r.Counter("ops", "kind", k).Add(3)
		}
		r.Gauge("depth").Set(2)
		r.Histogram("lat", "tech", "scan").Observe(500)
		return r
	}
	r1, r2 := build(), NewRegistry()
	for _, k := range []string{"m", "z", "a"} {
		r2.Counter("ops", "kind", k).Add(3)
	}
	r2.Histogram("lat", "tech", "scan").Observe(500)
	r2.Gauge("depth").Set(2)

	var b1, b2, b3 bytes.Buffer
	if err := r1.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("equal states rendered differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if err := r1.WriteJSON(&b3); err != nil {
		t.Fatal(err)
	}
	var b4 bytes.Buffer
	if err := r2.WriteJSON(&b4); err != nil {
		t.Fatal(err)
	}
	if b3.String() != b4.String() {
		t.Fatal("JSON renders differ for equal states")
	}
	snap := r1.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatal("counters not sorted")
		}
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("serving.predict")
	child := root.Child("dlrm")
	grand := child.Child("embed")
	if grand.Path() != "serving.predict/dlrm/embed" {
		t.Fatalf("path=%q", grand.Path())
	}
	grand.End()
	child.End()
	if d := root.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	spans := r.RecentSpans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Oldest first, with monotonically increasing sequence numbers.
	if spans[0].Name != "serving.predict/dlrm/embed" || spans[2].Name != "serving.predict" {
		t.Fatalf("span order wrong: %+v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatal("sequence numbers must increase")
		}
	}
	// Span durations also land in the span_ns histogram family.
	if r.Histogram("span_ns", "span", "serving.predict").Count() != 1 {
		t.Fatal("span histogram not recorded")
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanLogSize+20; i++ {
		r.StartSpan("s").End()
	}
	spans := r.RecentSpans()
	if len(spans) != spanLogSize {
		t.Fatalf("ring returned %d records, want %d", len(spans), spanLogSize)
	}
	if spans[len(spans)-1].Seq != uint64(spanLogSize+20) {
		t.Fatalf("newest seq %d, want %d", spans[len(spans)-1].Seq, spanLogSize+20)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_generate_total", "tech", "dhe").Add(9)
	r.Histogram("core_generate_ns", "tech", "dhe").Observe(1 << 20)
	r.StartSpan("req").End()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `counter core_generate_total{tech="dhe"} 9`) {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"histograms"`) {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := get("/spans"); code != 200 || !strings.Contains(body, `"req"`) {
		t.Fatalf("/spans: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	r := NewRegistry()
	addr, srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
