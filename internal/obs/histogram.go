package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets covers 256 ns to ~17 s in powers of two — wide
// enough for a single oblivious blend and a full ORAM-protected DLRM batch
// alike. Values are bucket *upper bounds* in nanoseconds; observations
// beyond the last bound land in an implicit overflow bucket.
func DefaultLatencyBuckets() []int64 {
	bounds := make([]int64, 27)
	b := int64(256)
	for i := range bounds {
		bounds[i] = b
		b <<= 1
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with atomic counters, built for
// latency distributions: Observe is one atomic add per call; quantiles are
// estimated from the bucket counts with linear interpolation (exact count
// and max are tracked separately, so Max and Count are always exact).
type Histogram struct {
	bounds []int64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated-sentinel-free: valid iff count>0
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (nil → DefaultLatencyBuckets).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// bucketOf returns the index of the first bound ≥ v (binary search), or
// len(bounds) for the overflow bucket.
func (h *Histogram) bucketOf(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations. Nil-safe (0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values. Nil-safe (0).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (exact). Nil-safe (0).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts,
// interpolating linearly inside the containing bucket and clamping to the
// exact observed max. Returns 0 with no observations. Nil-safe.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based), then walk the cumulative
	// bucket counts.
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max.Load()
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if c == 0 {
				return hi
			}
			frac := float64(rank-cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
		cum += c
	}
	return h.max.Load()
}

// Buckets returns the bucket upper bounds and their counts (the final
// entry is the overflow bucket, reported with bound -1). Nil-safe.
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]int64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = -1
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}
