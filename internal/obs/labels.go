package obs

// Canonical label keys for the metric dimensions shared across layers.
// Instrumentation in core, serving and planner agrees on these names so a
// family emitted in one layer can be sampled in another without string
// drift: the planner reads the shard-labeled core_generate_* aggregates
// core.Instrument writes, keyed by exactly these labels.
const (
	// LabelTech labels a metric with the embedding technique key
	// (core.Technique.Key(): "scanb", "circuit", "dhe", …).
	LabelTech = "tech"
	// LabelShard labels a metric with the serving shard the sample came
	// from. Core instrumentation uses the planner's "table/index" shard
	// label; the serving dispatch layer uses the bare shard index.
	LabelShard = "shard"
	// LabelTable labels a metric with the managed table name.
	LabelTable = "table"
)
