// Package obs is a dependency-free observability layer for the secure
// embedding serving stack: atomic counters, gauges and fixed-bucket latency
// histograms, grouped into labeled metric families inside a Registry, plus
// a lightweight span API for tracing a request through
// serving.Pool → dlrm.Pipeline → core.Generator → enclave cost model.
//
// Design rules, in the spirit of memtrace.Tracer:
//
//   - Everything is nil-safe. A nil *Registry hands out nil metrics whose
//     methods are no-ops, so instrumented code never branches on "is
//     observability on" — it just calls Observe/Inc unconditionally.
//   - Hot paths pay one atomic op per event. Metric lookup (map + lock)
//     happens once at wiring time; callers cache the returned pointers.
//   - Snapshots are deterministic: identical metric states render to
//     identical text/JSON, so benchmark runs double as telemetry fixtures.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, resident bytes).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (use negative deltas to decrement).
// Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a process-wide collection of labeled metric families. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use, and safe on a nil receiver (returning nil metrics).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu   sync.Mutex
	spanLog  []SpanRecord // ring buffer of completed spans
	spanNext int
	spanSeen uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spanLog:  make([]SpanRecord, spanLogSize),
	}
}

// Default is the process-wide registry used by instrumentation that is not
// wired to an explicit one.
var Default = NewRegistry()

// metricID renders "name{k="v",...}" with labels sorted by key, the
// canonical identity of one metric inside a family. Labels are alternating
// key, value pairs; a trailing key without a value gets "".
func metricID(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i < len(labels); i += 2 {
		v := ""
		if i+1 < len(labels) {
			v = labels[i+1]
		}
		pairs = append(pairs, kv{labels[i], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter of the given name and
// label pairs. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge of the given name and label
// pairs. Nil-safe.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating if needed) the latency histogram of the
// given name and label pairs, with the default nanosecond buckets.
// Nil-safe.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (ascending). nil bounds selects DefaultLatencyBuckets. If the histogram
// already exists its original bounds are kept.
func (r *Registry) HistogramBuckets(name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[id]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[id] = h
	}
	return h
}
