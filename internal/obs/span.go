package obs

import "time"

// spanLogSize bounds the in-memory trace of completed spans.
const spanLogSize = 256

// Span is a lightweight tracing primitive: StartSpan marks the beginning
// of a named unit of work, End records its duration into the registry
// (histogram family "span_ns", label span=<path>) and appends it to a
// bounded in-memory trace readable via RecentSpans. Child spans extend the
// path with '/', so a request through the stack reads as
// serving.predict → serving.predict/dlrm → serving.predict/dlrm/embed.
//
// Spans are nil-safe end to end: StartSpan on a nil registry returns a nil
// span whose Child/End are no-ops, keeping un-instrumented paths free.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// SpanRecord is one completed span in the trace ring.
type SpanRecord struct {
	Seq   uint64        `json:"seq"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// StartSpan begins a span. Nil-safe.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: name, start: time.Now()}
}

// Child begins a sub-span whose path extends the parent's. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// Path returns the span's full path. Nil-safe ("").
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End completes the span, recording its duration. Returns the duration.
// Nil-safe (0).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram("span_ns", "span", s.path).ObserveDuration(d)
	s.reg.spanMu.Lock()
	s.reg.spanSeen++
	s.reg.spanLog[s.reg.spanNext] = SpanRecord{
		Seq: s.reg.spanSeen, Name: s.path, Start: s.start, Dur: d,
	}
	s.reg.spanNext = (s.reg.spanNext + 1) % len(s.reg.spanLog)
	s.reg.spanMu.Unlock()
	return d
}

// RecentSpans returns the most recently completed spans, oldest first (at
// most the ring size). Nil-safe.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]SpanRecord, 0, len(r.spanLog))
	for i := 0; i < len(r.spanLog); i++ {
		rec := r.spanLog[(r.spanNext+i)%len(r.spanLog)]
		if rec.Seq != 0 {
			out = append(out, rec)
		}
	}
	return out
}
