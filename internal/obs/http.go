package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler exposes the registry over HTTP, expvar-style, with pprof wired
// in under /debug/pprof/:
//
//	/metrics       text snapshot (the WriteText format)
//	/metrics.json  JSON snapshot
//	/spans         recent completed spans, JSON
//	/debug/pprof/  Go's standard profiling endpoints
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := r.RecentSpans()
		if spans == nil {
			spans = []SpanRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the handler on addr in a background goroutine and returns
// the bound listener address (useful with ":0") and the server for
// shutdown. The error is non-nil only when the listener cannot be opened.
func Serve(addr string, r *Registry) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}
