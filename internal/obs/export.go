package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CounterSnap / GaugeSnap are one rendered scalar metric.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap mirrors CounterSnap for gauges.
type GaugeSnap = CounterSnap

// HistSnap summarizes one histogram: exact count/sum/max plus
// bucket-interpolated percentiles.
type HistSnap struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

// Snapshot is a deterministic point-in-time view of a registry: every
// slice is sorted by metric name, so equal metric states marshal to equal
// bytes.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot captures the current state. Nil-safe (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: k, Value: c.Value()})
	}
	for k, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: k, Value: g.Value()})
	}
	for k, h := range hists {
		s.Histograms = append(s.Histograms, HistSnap{
			Name: k, Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Max: h.Max(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteText renders the snapshot in a line-oriented expvar-style format:
//
//	counter core_generate_total{tech="dhe"} 42
//	gauge   serving_queue_depth 0
//	hist    core_generate_ns{tech="dhe"} count=42 sum=… p50=… p95=… p99=… max=…
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum=%d p50=%d p95=%d p99=%d max=%d\n",
			h.Name, h.Count, h.Sum, h.P50, h.P95, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText snapshots the registry and renders it. Nil-safe.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// WriteJSON snapshots the registry and renders it as JSON. Nil-safe.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }
