package cache

import (
	"math/rand"
	"testing"
)

func TestAccessHitMiss(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 2, HitCycles: 1, MissCycles: 50})
	if lat := c.Access(0); lat != 50 {
		t.Fatalf("cold access latency %d, want miss", lat)
	}
	if lat := c.Access(0); lat != 1 {
		t.Fatalf("warm access latency %d, want hit", lat)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Sets: 1, Ways: 2, HitCycles: 1, MissCycles: 50})
	c.Access(0)
	c.Access(1)
	c.Access(0) // 0 becomes MRU; LRU is 1
	c.Access(2) // evicts 1
	if !c.Contains(0) || !c.Contains(2) || c.Contains(1) {
		t.Fatal("LRU eviction order wrong")
	}
}

func TestSetIndexMapping(t *testing.T) {
	c := New(Config{Sets: 8, Ways: 1, HitCycles: 1, MissCycles: 2})
	if c.SetIndex(0) != 0 || c.SetIndex(9) != 1 || c.SetIndex(16) != 0 {
		t.Fatal("SetIndex mapping wrong")
	}
	// Different sets never interfere.
	c.Access(0)
	c.Access(1)
	if !c.Contains(0) || !c.Contains(1) {
		t.Fatal("cross-set interference")
	}
}

func TestFlush(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(42)
	c.Flush()
	if c.Contains(42) {
		t.Fatal("Flush did not clear")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sets: 0, Ways: 1})
}

// newDemoVictim builds the paper's §III demo: 256-entry table, dim 64
// float32 = 4 lines/row.
func newDemoVictim() *Victim {
	return &Victim{
		Base:        0,
		NumRows:     256,
		LinesPerRow: 4,
		Cache:       New(DefaultConfig()),
	}
}

func TestAttackRecoversIndex(t *testing.T) {
	v := newDemoVictim()
	a := NewAttacker(v, 25) // paper primes 25 sets
	for _, secret := range []int{0, 2, 7, 13, 24} {
		m := a.Run(secret, 10, 0, v.Lookup, nil)
		if got := m.Guess(); got != secret {
			t.Fatalf("attack failed: guessed %d, victim index %d (latencies %v)",
				got, secret, m.Latency)
		}
	}
}

func TestAttackVictimSetLatencyElevated(t *testing.T) {
	// Figure 3's shape: the victim's set shows a clearly longer probe
	// latency than every other set.
	v := newDemoVictim()
	a := NewAttacker(v, 25)
	const secret = 2
	m := a.Run(secret, 10, 0, v.Lookup, nil)
	for r, lat := range m.Latency {
		if r == secret {
			continue
		}
		if m.Latency[secret] <= lat {
			t.Fatalf("set %d latency %v not below victim set %v", r, lat, m.Latency[secret])
		}
	}
}

func TestAttackSurvivesNoise(t *testing.T) {
	v := newDemoVictim()
	a := NewAttacker(v, 25)
	rng := rand.New(rand.NewSource(99))
	m := a.Run(5, 10, 64, v.Lookup, rng)
	if got := m.Guess(); got != 5 {
		t.Fatalf("attack with noise guessed %d, want 5", got)
	}
}

func TestLinearScanDefeatsAttack(t *testing.T) {
	// Against the protected victim, every monitored set sees the same
	// probe latency: the measurement carries no information about the
	// secret (the "attack closure" property from DESIGN.md §4).
	v := newDemoVictim()
	a := NewAttacker(v, 25)
	m1 := a.Run(2, 10, 0, v.LinearScan, nil)
	m2 := a.Run(19, 10, 0, v.LinearScan, nil)
	for r := range m1.Latency {
		if m1.Latency[r] != m1.Latency[0] {
			t.Fatalf("linear-scan latencies not flat: %v", m1.Latency)
		}
		if m1.Latency[r] != m2.Latency[r] {
			t.Fatalf("linear-scan latencies depend on secret: %v vs %v", m1.Latency, m2.Latency)
		}
	}
}

func TestVictimLookupPanicsOutOfRange(t *testing.T) {
	v := newDemoVictim()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Lookup(256)
}

func TestAttackerMonitorClamped(t *testing.T) {
	v := &Victim{Base: 0, NumRows: 3, LinesPerRow: 1, Cache: New(DefaultConfig())}
	a := NewAttacker(v, 100)
	if a.monitored != 3 {
		t.Fatalf("monitored=%d, want clamped to 3", a.monitored)
	}
}

func TestEvictionSetsMapToTargetSets(t *testing.T) {
	v := newDemoVictim()
	a := NewAttacker(v, 10)
	for r, set := range a.evictionSets {
		want := v.Cache.SetIndex(v.Base + Line(r*v.LinesPerRow))
		if len(set) != v.Cache.Config().Ways {
			t.Fatalf("row %d eviction set size %d", r, len(set))
		}
		for _, l := range set {
			if v.Cache.SetIndex(l) != want {
				t.Fatalf("row %d line %d maps to set %d, want %d", r, l, v.Cache.SetIndex(l), want)
			}
		}
	}
}
