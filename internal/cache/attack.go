package cache

import (
	"fmt"
	"math/rand"
)

// Victim models the enclave's embedding layer from the attacker's
// perspective: a table of NumRows rows, each spanning LinesPerRow cache
// lines, resident at Base. A lookup of row r touches lines
// [Base + r·LinesPerRow, Base + (r+1)·LinesPerRow).
//
// This mirrors the paper's demo table: 256 entries × dim 64 float32
// = 256 B/row = 4 lines/row.
type Victim struct {
	Base        Line
	NumRows     int
	LinesPerRow int
	Cache       *Cache
}

// Lookup performs the (non-secure) direct table lookup of row idx,
// touching its cache lines.
func (v *Victim) Lookup(idx int) {
	if idx < 0 || idx >= v.NumRows {
		panic(fmt.Sprintf("cache: victim lookup %d out of %d", idx, v.NumRows))
	}
	start := v.Base + Line(idx*v.LinesPerRow)
	for i := 0; i < v.LinesPerRow; i++ {
		v.Cache.Access(start + Line(i))
	}
}

// LinearScan performs the protected lookup: every row of the table is
// touched in order regardless of the secret index, so the cache state the
// attacker can probe is index-independent.
func (v *Victim) LinearScan(idx int) {
	_ = idx // the secret no longer influences the access pattern
	for r := 0; r < v.NumRows; r++ {
		start := v.Base + Line(r*v.LinesPerRow)
		for i := 0; i < v.LinesPerRow; i++ {
			v.Cache.Access(start + Line(i))
		}
	}
}

// Attacker mounts the PRIME+SCOPE-style eviction-set attack of §III-A2.
// Phase (i) builds one eviction set per monitored table row (the paper
// accelerates this with physical addresses; the simulator can address sets
// directly, which models the same capability). Phase (ii) primes the sets,
// lets the victim run, and probes: the set whose probe latency rises is
// the one the victim displaced — revealing the row index.
type Attacker struct {
	cache  *Cache
	victim *Victim

	// evictionSets[r] holds Ways attacker-owned lines that map to the
	// same cache set as the first line of victim row r.
	evictionSets [][]Line
	monitored    int
}

// NewAttacker prepares eviction sets for the first `monitor` rows of the
// victim's table (the paper primes 25 sets "to demonstrate feasibility").
func NewAttacker(v *Victim, monitor int) *Attacker {
	if monitor > v.NumRows {
		monitor = v.NumRows
	}
	cfg := v.Cache.Config()
	a := &Attacker{cache: v.Cache, victim: v, monitored: monitor}
	// Attacker lines live far above the victim table.
	attackerBase := v.Base + Line(v.NumRows*v.LinesPerRow+cfg.Sets)
	a.evictionSets = make([][]Line, monitor)
	for r := 0; r < monitor; r++ {
		target := v.Cache.SetIndex(v.Base + Line(r*v.LinesPerRow))
		set := make([]Line, 0, cfg.Ways)
		// Walk attacker address space collecting lines that land in the
		// target set.
		for addr := attackerBase; len(set) < cfg.Ways; addr++ {
			if v.Cache.SetIndex(addr) == target {
				set = append(set, addr)
			}
		}
		a.evictionSets[r] = set
		attackerBase += Line(cfg.Sets * cfg.Ways) // disjoint per row
	}
	return a
}

// prime fills the cache set monitored for row r with attacker lines.
func (a *Attacker) prime(r int) {
	for _, l := range a.evictionSets[r] {
		a.cache.Access(l)
	}
}

// probe measures the total latency of re-touching the eviction set for
// row r; a victim access to that set evicted an attacker line, turning one
// probe access into a miss.
func (a *Attacker) probe(r int) int {
	total := 0
	for _, l := range a.evictionSets[r] {
		total += a.cache.Access(l)
	}
	return total
}

// Measurement is the per-eviction-set averaged probe latency of one attack.
type Measurement struct {
	Latency []float64 // indexed by monitored row
}

// Guess returns the row index with the highest probe latency.
func (m Measurement) Guess() int {
	best := 0
	for i, v := range m.Latency {
		if v > m.Latency[best] {
			best = i
		}
	}
	return best
}

// Run performs `trials` prime→victim→probe rounds against victimIdx using
// the provided victim access function (Victim.Lookup for the unprotected
// baseline, Victim.LinearScan for the protected one) and returns the
// per-set average probe latency — Figure 3's y-axis. noise injects that
// many random extraneous cache accesses per round to emulate system
// activity; rng may be nil when noise is zero.
func (a *Attacker) Run(victimIdx, trials, noise int, access func(int), rng *rand.Rand) Measurement {
	sums := make([]float64, a.monitored)
	for t := 0; t < trials; t++ {
		for r := 0; r < a.monitored; r++ {
			a.prime(r)
		}
		if noise > 0 {
			cfg := a.cache.Config()
			noiseBase := Line(1 << 40)
			for i := 0; i < noise; i++ {
				a.cache.Access(noiseBase + Line(rng.Intn(cfg.Sets*cfg.Ways*4)))
			}
		}
		access(victimIdx)
		for r := 0; r < a.monitored; r++ {
			sums[r] += float64(a.probe(r))
		}
	}
	for r := range sums {
		sums[r] /= float64(trials)
	}
	return Measurement{Latency: sums}
}
