package cache

// This file models the second leak channel of §III-A2: the page-fault
// controlled channel ("the OS can reset the present bits of embedding
// table memory so that every table lookup triggers a page fault. Then,
// the OS can observe the page-level access patterns") — and the paper's
// observation that channels *combine*: "page fault or DRAM row buffer can
// leak coarse-grained address, and cache side-channel can leak the
// indices within page or DRAM row granularity", scaling index recovery to
// arbitrarily large tables.

// PageBytes is the x86 page size.
const PageBytes = 4096

// LineBytes is the cache-line size assumed by the line-granularity model.
const LineBytes = 64

// PageObserver is a malicious OS watching page faults on the victim's
// table memory: it learns which pages are touched, in order.
type PageObserver struct {
	pages []int64
}

// Fault records an access to the page containing byte offset `off` of the
// observed region.
func (o *PageObserver) Fault(off int64) {
	o.pages = append(o.pages, off/PageBytes)
}

// Pages returns the observed page sequence.
func (o *PageObserver) Pages() []int64 { return o.pages }

// Reset clears the observation.
func (o *PageObserver) Reset() { o.pages = o.pages[:0] }

// LookupWithFaults is the victim's direct lookup as seen through the
// controlled channel: every page of the accessed row faults.
func (v *Victim) LookupWithFaults(idx int, o *PageObserver) {
	rowBytes := int64(v.LinesPerRow * LineBytes)
	start := rowBytes * int64(idx)
	for off := start; off < start+rowBytes; off += PageBytes {
		o.Fault(off)
	}
	if (start+rowBytes-1)/PageBytes != start/PageBytes && rowBytes%PageBytes != 0 {
		// Row straddles a page boundary: the tail page faults too.
		o.Fault(start + rowBytes - 1)
	}
	v.Lookup(idx) // the cache-visible part proceeds as usual
}

// RowsPerPage returns how many table rows share one page — the resolution
// limit of the page channel alone.
func (v *Victim) RowsPerPage() int {
	rows := PageBytes / (v.LinesPerRow * LineBytes)
	if rows < 1 {
		return 1
	}
	return rows
}

// CombinedAttack recovers the exact row index of a victim lookup in a
// table too large to monitor line-by-line: the page channel narrows the
// index to RowsPerPage candidates, then a cache attack over eviction sets
// for just those candidates pinpoints it (§III-A2's channel combination).
type CombinedAttack struct {
	victim   *Victim
	observer *PageObserver
}

// NewCombinedAttack prepares the combined attacker.
func NewCombinedAttack(v *Victim) *CombinedAttack {
	return &CombinedAttack{victim: v, observer: &PageObserver{}}
}

// Recover runs one observed victim lookup of secretIdx and returns the
// attacker's guess.
func (a *CombinedAttack) Recover(secretIdx, trials int) int {
	// Phase 1: the page channel yields the page → candidate rows.
	a.observer.Reset()
	a.victim.LookupWithFaults(secretIdx, a.observer)
	page := a.observer.Pages()[0]
	rowsPerPage := a.victim.RowsPerPage()
	firstRow := int(page) * rowsPerPage

	// Phase 2: a focused cache attack distinguishes the rows within the
	// page. Build a sub-victim view whose row 0 is the page's first row,
	// sharing the same cache.
	sub := &Victim{
		Base:        a.victim.Base + Line(firstRow*a.victim.LinesPerRow),
		NumRows:     rowsPerPage,
		LinesPerRow: a.victim.LinesPerRow,
		Cache:       a.victim.Cache,
	}
	attacker := NewAttacker(sub, rowsPerPage)
	m := attacker.Run(secretIdx-firstRow, trials, 0, func(rel int) {
		a.victim.Lookup(firstRow + rel) // the victim re-queries; OS replays
	}, nil)
	return firstRow + m.Guess()
}
