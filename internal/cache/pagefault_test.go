package cache

import "testing"

func TestPageObserverCoarseLeak(t *testing.T) {
	// 256-byte rows → 16 rows/page: the page channel alone localizes the
	// index to a 16-row window.
	v := &Victim{Base: 0, NumRows: 1024, LinesPerRow: 4, Cache: New(DefaultConfig())}
	o := &PageObserver{}
	v.LookupWithFaults(100, o)
	pages := o.Pages()
	if len(pages) == 0 {
		t.Fatal("no faults observed")
	}
	wantPage := int64(100*4*LineBytes) / PageBytes
	if pages[0] != wantPage {
		t.Fatalf("observed page %d, want %d", pages[0], wantPage)
	}
	if v.RowsPerPage() != 16 {
		t.Fatalf("RowsPerPage=%d, want 16", v.RowsPerPage())
	}
}

func TestPageObserverReset(t *testing.T) {
	o := &PageObserver{}
	o.Fault(0)
	o.Reset()
	if len(o.Pages()) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRowsPerPageFloor(t *testing.T) {
	// Rows bigger than a page still resolve to at least 1 row/page.
	v := &Victim{Base: 0, NumRows: 8, LinesPerRow: 128, Cache: New(DefaultConfig())}
	if v.RowsPerPage() != 1 {
		t.Fatalf("RowsPerPage=%d, want 1", v.RowsPerPage())
	}
}

// TestCombinedAttackScalesToLargeTables: the §III-A2 combination — page
// channel for the coarse index, cache channel within the page — recovers
// exact indices from a table far larger than the attacker could monitor
// with eviction sets alone.
func TestCombinedAttackScalesToLargeTables(t *testing.T) {
	v := &Victim{Base: 0, NumRows: 4096, LinesPerRow: 4, Cache: New(DefaultConfig())}
	a := NewCombinedAttack(v)
	for _, secret := range []int{0, 100, 1033, 4095} {
		if got := a.Recover(secret, 10); got != secret {
			t.Fatalf("combined attack recovered %d, want %d", got, secret)
		}
	}
}

func TestCombinedAttackAcrossPages(t *testing.T) {
	// Two secrets in different pages must be distinguished by phase 1
	// alone (different fault pages).
	v := &Victim{Base: 0, NumRows: 256, LinesPerRow: 4, Cache: New(DefaultConfig())}
	o := &PageObserver{}
	v.LookupWithFaults(3, o)
	p1 := o.Pages()[0]
	o.Reset()
	v.LookupWithFaults(200, o)
	p2 := o.Pages()[0]
	if p1 == p2 {
		t.Fatal("distant rows must fault different pages")
	}
}
