package cache

import "testing"

func TestDRAMHitAndConflict(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	if lat := d.Access(0); lat != d.cfg.ConflictCyc {
		t.Fatalf("cold access latency %d, want conflict", lat)
	}
	if lat := d.Access(64); lat != d.cfg.HitCycles {
		t.Fatalf("same-row access latency %d, want hit", lat)
	}
	// A different row in the same bank conflicts and replaces.
	sameBank := int64(d.cfg.RowBytes) * int64(d.cfg.Banks)
	if lat := d.Access(sameBank); lat != d.cfg.ConflictCyc {
		t.Fatalf("row conflict latency %d", lat)
	}
	if lat := d.Access(0); lat != d.cfg.ConflictCyc {
		t.Fatal("closed row must conflict again")
	}
}

func TestDRAMBankInterleave(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Adjacent DRAM rows land in different banks: opening one must not
	// close the other.
	d.Access(0)
	d.Access(int64(d.cfg.RowBytes)) // next row → next bank
	if lat := d.Access(0); lat != d.cfg.HitCycles {
		t.Fatal("cross-bank access must not evict")
	}
	b0, _ := d.bankRow(0)
	b1, _ := d.bankRow(int64(d.cfg.RowBytes))
	if b0 == b1 {
		t.Fatal("adjacent rows should interleave banks")
	}
}

func TestRowBufferAttackCoarseRecovery(t *testing.T) {
	// 256-byte table rows, 8 KB DRAM rows → 32 table rows per DRAM row.
	v := &Victim{Base: 0, NumRows: 2048, LinesPerRow: 4, Cache: New(DefaultConfig())}
	a := NewRowBufferAttack(v, NewDRAM(DefaultDRAMConfig()))
	if a.RowsPerDRAMRow() != 32 {
		t.Fatalf("RowsPerDRAMRow=%d, want 32", a.RowsPerDRAMRow())
	}
	for _, secret := range []int{0, 31, 32, 777, 2047} {
		lo, hi := a.Recover(secret)
		if secret < lo || secret >= hi {
			t.Fatalf("secret %d outside recovered window [%d,%d)", secret, lo, hi)
		}
		if hi-lo > a.RowsPerDRAMRow() {
			t.Fatalf("window [%d,%d) wider than the channel resolution", lo, hi)
		}
	}
}

func TestRowBufferWindowDistinguishesDistantSecrets(t *testing.T) {
	v := &Victim{Base: 0, NumRows: 2048, LinesPerRow: 4, Cache: New(DefaultConfig())}
	a := NewRowBufferAttack(v, NewDRAM(DefaultDRAMConfig()))
	lo1, _ := a.Recover(10)
	lo2, _ := a.Recover(1500)
	if lo1 == lo2 {
		t.Fatal("distant secrets must land in different windows")
	}
}
