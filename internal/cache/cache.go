// Package cache implements a set-associative last-level-cache simulator and
// the eviction-set side-channel attack of the paper's §III: an attacker who
// shares the LLC with a victim embedding lookup recovers the secret table
// index from per-set probe latencies (Figure 3).
//
// The paper demonstrates the attack on a real Ice Lake Xeon with
// PRIME+SCOPE inside SGX; here the same protocol runs against a simulated
// LLC. The simulator models exactly what the attack needs — set-indexed
// placement, LRU replacement, and hit/miss latency — and nothing more.
package cache

import "fmt"

// Line is a cache-line address: the unit of placement. Real attacks work at
// line granularity, and the paper notes every embedding row spans at least
// one line (§III-A2), so line-granularity recovery reveals the row index.
type Line int64

// Config sizes the simulated cache and its latency model.
type Config struct {
	Sets       int // number of cache sets (power of two in real caches; any positive value here)
	Ways       int // associativity
	HitCycles  int // latency of a hit
	MissCycles int // latency of a miss
}

// DefaultConfig is a small LLC slice: 1024 sets × 8 ways, with the
// conventional ~10/~100 cycle hit/miss costs.
func DefaultConfig() Config {
	return Config{Sets: 1024, Ways: 8, HitCycles: 10, MissCycles: 100}
}

// Cache is a set-associative cache with per-set LRU replacement.
type Cache struct {
	cfg  Config
	sets [][]Line // sets[s] is LRU-ordered: front = least recent

	hits, misses int64
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	sets := make([][]Line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]Line, 0, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(addr Line) int {
	s := int(addr % Line(c.cfg.Sets))
	if s < 0 {
		s += c.cfg.Sets
	}
	return s
}

// Access touches addr, updating replacement state, and returns the access
// latency in cycles (hit or miss cost).
func (c *Cache) Access(addr Line) int {
	s := c.SetIndex(addr)
	set := c.sets[s]
	for i, l := range set {
		if l == addr {
			// Hit: move to MRU position.
			copy(set[i:], set[i+1:])
			set[len(set)-1] = addr
			c.hits++
			return c.cfg.HitCycles
		}
	}
	c.misses++
	if len(set) == c.cfg.Ways {
		// Evict LRU (front).
		copy(set, set[1:])
		set[len(set)-1] = addr
	} else {
		c.sets[s] = append(set, addr)
	}
	return c.cfg.MissCycles
}

// Contains reports whether addr is currently cached (no state change).
func (c *Cache) Contains(addr Line) bool {
	for _, l := range c.sets[c.SetIndex(addr)] {
		if l == addr {
			return true
		}
	}
	return false
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }
