package cache

// DRAM row-buffer channel (§III-A2: "The enclave program's access pattern
// can also be leaked through the timing of ... DRAM row buffer"). Each
// DRAM bank keeps one row open; an access to the open row is fast (a
// row-buffer hit), while another row forces a precharge + activate (a
// conflict). An attacker who shares banks with the victim learns which
// DRAM row — a multi-KB region — the victim touched, the "DRAMA" attack's
// coarse channel.

// DRAMConfig sizes the simulated DRAM geometry and timing.
type DRAMConfig struct {
	Banks       int // banks the address space interleaves across
	RowBytes    int // row-buffer size per bank
	HitCycles   int // access latency when the row is open
	ConflictCyc int // precharge+activate+access latency
}

// DefaultDRAMConfig models a DDR4-like geometry: 16 banks, 8 KB rows.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Banks: 16, RowBytes: 8192, HitCycles: 30, ConflictCyc: 120}
}

// DRAM is the bank/row-buffer state machine.
type DRAM struct {
	cfg     DRAMConfig
	openRow []int64 // per bank; -1 = closed
}

// NewDRAM builds a DRAM with all rows closed.
func NewDRAM(cfg DRAMConfig) *DRAM {
	open := make([]int64, cfg.Banks)
	for i := range open {
		open[i] = -1
	}
	return &DRAM{cfg: cfg, openRow: open}
}

// bankRow decomposes a byte address: consecutive rows interleave across
// banks (the usual XOR-free simplification).
func (d *DRAM) bankRow(addr int64) (bank int, row int64) {
	globalRow := addr / int64(d.cfg.RowBytes)
	return int(globalRow % int64(d.cfg.Banks)), globalRow / int64(d.cfg.Banks)
}

// Access touches addr and returns the latency (hit or conflict).
func (d *DRAM) Access(addr int64) int {
	bank, row := d.bankRow(addr)
	if d.openRow[bank] == row {
		return d.cfg.HitCycles
	}
	d.openRow[bank] = row
	return d.cfg.ConflictCyc
}

// OpenRow reports the currently open row of a bank (-1 if closed).
func (d *DRAM) OpenRow(bank int) int64 { return d.openRow[bank] }

// RowBufferAttack recovers which DRAM row a victim lookup touched: the
// attacker opens a known row in every bank, lets the victim run, then
// re-touches its rows — the bank whose re-access conflicts is the bank the
// victim used, and timing a probe row in that bank identifies the victim's
// row. Resolution: RowBytes per bank, i.e. RowsPerDRAMRow table rows.
type RowBufferAttack struct {
	dram   *DRAM
	victim *Victim
}

// NewRowBufferAttack pairs a victim table layout with a DRAM.
func NewRowBufferAttack(v *Victim, d *DRAM) *RowBufferAttack {
	return &RowBufferAttack{dram: d, victim: v}
}

// victimAccess drives the DRAM with the byte addresses of a table lookup.
func (a *RowBufferAttack) victimAccess(idx int) {
	rowBytes := int64(a.victim.LinesPerRow * LineBytes)
	start := int64(a.victim.Base)*LineBytes + rowBytes*int64(idx)
	for off := int64(0); off < rowBytes; off += LineBytes {
		a.dram.Access(start + off)
	}
}

// RowsPerDRAMRow is the channel's resolution in table rows.
func (a *RowBufferAttack) RowsPerDRAMRow() int {
	r := a.dram.cfg.RowBytes / (a.victim.LinesPerRow * LineBytes)
	if r < 1 {
		return 1
	}
	return r
}

// Recover returns the coarse index window [lo, hi) the victim's secret
// lies in. For each candidate DRAM row it replays prime → victim → probe
// (each probe disturbs bank state, so a fresh round per candidate is
// required — exactly how repeated-measurement row-buffer attacks work).
// The window spans RowsPerDRAMRow table rows.
func (a *RowBufferAttack) Recover(secretIdx int) (lo, hi int) {
	tableBytes := a.victim.NumRows * a.victim.LinesPerRow * LineBytes
	nRows := (tableBytes + a.dram.cfg.RowBytes - 1) / a.dram.cfg.RowBytes
	attackerBase := int64(1) << 40
	for r := 0; r < nRows; r++ {
		// Prime: open attacker rows in every bank.
		for b := 0; b < a.dram.cfg.Banks; b++ {
			a.dram.Access(attackerBase + int64(b)*int64(a.dram.cfg.RowBytes))
		}
		a.victimAccess(secretIdx)
		// Probe this candidate: a row-buffer hit means the victim left
		// it open — this is the victim's DRAM row.
		addr := int64(a.victim.Base)*LineBytes + int64(r)*int64(a.dram.cfg.RowBytes)
		if lat := a.dram.Access(addr); lat == a.dram.cfg.HitCycles {
			per := a.RowsPerDRAMRow()
			lo = r * per
			hi = lo + per
			if hi > a.victim.NumRows {
				hi = a.victim.NumRows
			}
			return lo, hi
		}
	}
	return 0, a.victim.NumRows // nothing recovered
}
