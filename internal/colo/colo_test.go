package colo

import (
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/perf"
)

func dheLoadFor(n, dim, batch int, p perf.Platform) Load {
	cfg := dhe.UniformConfig(dim, 1)
	var weights, flops float64
	dims := append(append([]int{cfg.K}, cfg.Hidden...), cfg.Dim)
	for i := 0; i+1 < len(dims); i++ {
		weights += float64(dims[i]) * float64(dims[i+1])
		flops += 2 * float64(dims[i]) * float64(dims[i+1])
	}
	return DHELoad(weights, flops, batch, p)
}

func TestSoloMatchesSingleLatency(t *testing.T) {
	s := IceLakeSystem()
	l := ScanLoad(10000, 64, 32)
	solo := s.Solo(l)
	co := s.Latency([]Load{l})
	if len(co) != 1 || co[0] < solo || co[0] > solo*1.01 {
		t.Fatalf("single replica must match solo: %v vs %v", co, solo)
	}
}

// TestFig8ScanInflatesFasterThanDHE: co-locating 24 memory-bound scan
// replicas inflates latency much more than 24 compute-bound DHE replicas.
func TestFig8ScanInflatesFasterThanDHE(t *testing.T) {
	s := IceLakeSystem()
	scan := ScanLoad(1_000_000, 64, 32)
	dheL := dheLoadFor(1_000_000, 64, 32, s.Platform)

	inflate := func(l Load, n int) float64 {
		loads := make([]Load, n)
		for i := range loads {
			loads[i] = l
		}
		return s.MeanLatency(loads) / s.Solo(l)
	}
	scanInfl := inflate(scan, 24)
	dheInfl := inflate(dheL, 24)
	t.Logf("24-way inflation: scan %.2f×, DHE %.2f×", scanInfl, dheInfl)
	if scanInfl < 1.3 {
		t.Fatalf("scan inflation %.2f too small — bandwidth model inert", scanInfl)
	}
	if dheInfl >= scanInfl {
		t.Fatalf("DHE inflation %.2f not below scan %.2f", dheInfl, scanInfl)
	}
	// Monotonic in replica count.
	if inflate(scan, 24) < inflate(scan, 8) {
		t.Fatal("inflation must grow with co-location")
	}
}

// TestFig9CrossoverNearSingleModelThreshold: at fixed 24-way co-location,
// all-scan wins for small tables and all-DHE for large ones, with the
// switch in the same decade as the single-model threshold (paper: 4500 vs
// 3300).
func TestFig9CrossoverNearSingleModelThreshold(t *testing.T) {
	s := IceLakeSystem()
	meanAll := func(rows, nDHE int) float64 {
		loads := make([]Load, 24)
		for i := range loads {
			if i < nDHE {
				loads[i] = dheLoadFor(rows, 64, 32, s.Platform)
			} else {
				loads[i] = ScanLoad(rows, 64, 32)
			}
		}
		return s.MeanLatency(loads)
	}
	// Small tables: all-scan (nDHE=0) beats all-DHE (nDHE=24).
	if !(meanAll(500, 0) < meanAll(500, 24)) {
		t.Fatalf("small tables: all-scan should win (%.0f vs %.0f)", meanAll(500, 0), meanAll(500, 24))
	}
	// Large tables: all-DHE wins.
	if !(meanAll(100_000, 24) < meanAll(100_000, 0)) {
		t.Fatalf("large tables: all-DHE should win (%.0f vs %.0f)", meanAll(100_000, 24), meanAll(100_000, 0))
	}
	// The crossover lies between 1e3 and 3e4 — same decade as the
	// single-model threshold.
	crossed := false
	prevScanWins := meanAll(1000, 0) < meanAll(1000, 24)
	for _, rows := range []int{3000, 10_000, 30_000} {
		scanWins := meanAll(rows, 0) < meanAll(rows, 24)
		if prevScanWins && !scanWins {
			crossed = true
		}
		prevScanWins = scanWins
	}
	if !crossed {
		t.Fatal("no all-scan→all-DHE crossover found in the expected decade")
	}
}

func TestThroughputScalesThenSaturates(t *testing.T) {
	s := IceLakeSystem()
	l := ScanLoad(50_000, 64, 32)
	_, tp1 := s.Throughput(l, 1, 32)
	_, tp8 := s.Throughput(l, 8, 32)
	if tp8 <= tp1 {
		t.Fatal("throughput must grow with modest co-location")
	}
	lat1, _ := s.Throughput(l, 1, 32)
	lat28, _ := s.Throughput(l, 28, 32)
	if lat28 < lat1 {
		t.Fatal("latency must not fall with co-location")
	}
}

// TestFig13SLABoundedThroughput: under a 20 ms SLA, a lighter (hybrid-
// like) load admits more replicas and more throughput than a heavier
// (all-DHE-like) one.
func TestFig13SLABoundedThroughput(t *testing.T) {
	s := IceLakeSystem()
	heavy := dheLoadFor(1_000_000, 64, 32, s.Platform)
	light := Load{ComputeNs: heavy.ComputeNs * 0.6, MemWords: heavy.MemWords * 0.8}
	const sla = 20e6 // 20 ms
	nH, tpH := s.MaxThroughputUnderSLA(heavy, 32, 28, sla)
	nL, tpL := s.MaxThroughputUnderSLA(light, 32, 28, sla)
	if nH == 0 || nL == 0 {
		t.Fatalf("SLA admitted nothing: heavy=%d light=%d", nH, nL)
	}
	if tpL <= tpH {
		t.Fatalf("lighter load must yield more SLA-bounded throughput (%.0f vs %.0f)", tpL, tpH)
	}
}

func TestEmptyLoads(t *testing.T) {
	s := IceLakeSystem()
	if len(s.Latency(nil)) != 0 {
		t.Fatal("empty loads must return empty latencies")
	}
}
