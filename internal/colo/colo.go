// Package colo models co-located DLRM inference (§IV-C2, Figures 8, 9,
// 13): many single-threaded model replicas sharing one socket's cores and
// memory bandwidth. Each replica's work splits into a compute part (runs
// on its own core, unaffected by neighbors while replicas ≤ cores) and a
// memory-traffic part (contends for the shared DRAM channels once the
// aggregate demand exceeds the socket bandwidth).
//
// This reproduces the paper's observations: memory-bound linear scans
// inflate quickly under co-location while compute-bound DHE replicas
// barely notice each other; the all-scan vs all-DHE crossover under 24-way
// co-location stays near the single-model threshold; and latency-bounded
// throughput favors the hybrid allocation.
package colo

import (
	"math"

	"secemb/internal/perf"
)

// System describes the shared socket.
type System struct {
	Cores int
	// MemBandwidthWordsPerNs is the aggregate DRAM bandwidth available to
	// all replicas (Table III: 8×DDR4-3200 ≈ 200 GB/s ≈ 50 words/ns).
	MemBandwidthWordsPerNs float64
	Platform               perf.Platform
}

// IceLakeSystem is the paper's machine: 28 cores, ~200 GB/s.
func IceLakeSystem() System {
	return System{
		Cores:                  28,
		MemBandwidthWordsPerNs: 50,
		Platform:               perf.IceLake(1), // one thread per replica
	}
}

// Load is one replica's per-batch resource demand.
type Load struct {
	ComputeNs float64 // core-private work
	MemWords  float64 // words of shared-memory traffic
}

// Solo returns the replica's latency when running alone.
func (s System) Solo(l Load) float64 {
	return l.ComputeNs + l.MemWords*s.Platform.StreamWordNs
}

// Latency returns the per-replica latencies when all loads run
// concurrently, one replica per core. Memory traffic inflates by the
// ratio of aggregate demand to available bandwidth once saturated; if
// there are more replicas than cores, compute time-slices too.
func (s System) Latency(loads []Load) []float64 {
	out := make([]float64, len(loads))
	if len(loads) == 0 {
		return out
	}
	// Aggregate bandwidth demand, using solo latencies as the request
	// rate estimate.
	var demand float64 // words per ns requested
	for _, l := range loads {
		solo := s.Solo(l)
		if solo > 0 {
			demand += l.MemWords / solo
		}
	}
	memInflation := math.Max(1, demand/s.MemBandwidthWordsPerNs)
	cpuInflation := math.Max(1, float64(len(loads))/float64(s.Cores))
	for i, l := range loads {
		out[i] = l.ComputeNs*cpuInflation + l.MemWords*s.Platform.StreamWordNs*memInflation
	}
	return out
}

// MeanLatency co-locates the loads and returns the average latency.
func (s System) MeanLatency(loads []Load) float64 {
	lats := s.Latency(loads)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	return sum / float64(len(lats))
}

// ScanLoad is a linear-scan replica's demand for one batch: pure memory
// streaming.
func ScanLoad(rows, dim, batch int) Load {
	words := float64(batch) * float64(rows) * float64(dim) * 1.5
	return Load{ComputeNs: float64(batch) * 60, MemWords: words}
}

// DHELoad is a DHE replica's demand: dominated by compute, with the
// weight traffic once per batch.
func DHELoad(weights, flops float64, batch int, p perf.Platform) Load {
	return Load{
		ComputeNs: float64(batch) * flops * p.FlopNs,
		MemWords:  weights * 0.5,
	}
}

// Throughput returns inferences/second for n identical co-located
// replicas with the given per-batch load: n × batch / latency(n)
// (§IV-C2's throughput formula).
func (s System) Throughput(l Load, n, batch int) (latencyNs float64, infPerSec float64) {
	loads := make([]Load, n)
	for i := range loads {
		loads[i] = l
	}
	lat := s.MeanLatency(loads)
	return lat, float64(n) * float64(batch) / (lat / 1e9)
}

// MaxThroughputUnderSLA sweeps replica counts 1..maxN and returns the best
// throughput whose latency stays at or below slaNs (Figure 13's
// latency-bounded throughput with a 20 ms SLA).
func (s System) MaxThroughputUnderSLA(l Load, batch, maxN int, slaNs float64) (bestN int, bestThroughput float64) {
	for n := 1; n <= maxN; n++ {
		lat, tp := s.Throughput(l, n, batch)
		if lat <= slaNs && tp > bestThroughput {
			bestN, bestThroughput = n, tp
		}
	}
	return bestN, bestThroughput
}
