package perf

import (
	"testing"

	"secemb/internal/dhe"
)

// The calibration checkpoints below pin the cost model to the paper's
// qualitative structure. Absolute values are illustrative; orderings and
// crossover regions are the contract.

func TestScanGrowsLinearly(t *testing.T) {
	p := IceLake(1)
	r := p.ScanNs(1_000_000, 64, 32) / p.ScanNs(100_000, 64, 32)
	if r < 8 || r > 12 {
		t.Fatalf("scan scaling ratio %.1f, want ≈10", r)
	}
}

func TestDHEFlatInTableSize(t *testing.T) {
	p := IceLake(1)
	// Uniform DHE cost is independent of the virtual table size by
	// construction (same architecture).
	a := p.DHENs(dhe.UniformConfig(64, 1), 32)
	b := p.DHENs(dhe.UniformConfig(64, 1), 32)
	if a != b {
		t.Fatal("uniform DHE cost must not vary")
	}
}

func TestORAMPolylogGrowth(t *testing.T) {
	p := IceLake(1)
	// 1e4 → 1e6 blocks: latency grows, but far less than the 100× of a
	// linear technique.
	for _, f := range []func(n, w int) float64{p.PathAccessNs, p.CircuitAccessNs} {
		r := f(1_000_000, 64) / f(10_000, 64)
		if r < 1.05 || r > 20 {
			t.Fatalf("ORAM growth ratio %.2f outside poly-log band", r)
		}
	}
}

// TestFig4Checkpoints: dim 64, batch 32, 1 thread (the configuration of
// Figure 4b / Table VII).
func TestFig4Checkpoints(t *testing.T) {
	p := IceLake(1)
	uniform := func(n int) float64 { return p.DHENs(dhe.UniformConfig(64, 1), 32) }
	varied := func(n int) float64 { return p.DHENs(dhe.VariedConfig(64, n, 1), 32) }

	// Small tables: linear scan beats everything secure (Fig. 4).
	if !(p.ScanNs(100, 64, 32) < uniform(100)) {
		t.Fatal("scan must win at n=100 vs DHE Uniform")
	}
	if !(p.ScanNs(100, 64, 32) < p.CircuitNs(100, 64, 32)) {
		t.Fatal("scan must win at n=100 vs Circuit ORAM")
	}
	// The scan/DHE-Uniform crossover sits in the 1e3–1e4 decade
	// (paper: ≈3300 for batch 32, 1 thread).
	if !(p.ScanNs(1000, 64, 32) < uniform(1000)) {
		t.Fatalf("scan should still win at n=1000: scan=%.0f dhe=%.0f", p.ScanNs(1000, 64, 32), uniform(1000))
	}
	if !(p.ScanNs(10_000, 64, 32) > uniform(10_000)) {
		t.Fatalf("DHE Uniform should win by n=10000: scan=%.0f dhe=%.0f", p.ScanNs(10_000, 64, 32), uniform(10_000))
	}
	// Large tables: Varied ≤ Uniform < Circuit < Path < Scan.
	n := 1_000_000
	v, u := varied(n), uniform(n)
	c, pa, s := p.CircuitNs(n, 64, 32), p.PathNs(n, 64, 32), p.ScanNs(n, 64, 32)
	if !(v <= u && u < c && c < pa && pa < s) {
		t.Fatalf("n=1e6 ordering violated: varied=%.0f uniform=%.0f circuit=%.0f path=%.0f scan=%.0f",
			v, u, c, pa, s)
	}
}

// TestFig5Fig15Checkpoints: vocabulary 50257, dim 1024, 16 threads (the
// LLM configuration).
func TestFig5Fig15Checkpoints(t *testing.T) {
	p := IceLake(16)
	const vocab, dim = 50257, 1024
	cfg := dhe.LLMConfig(dim, 1)

	// Prefill (batch 256): DHE beats Circuit ORAM and the scan.
	if !(p.DHENs(cfg, 256) < p.CircuitNs(vocab, dim, 256)) {
		t.Fatalf("prefill: DHE %.0f must beat Circuit %.0f",
			p.DHENs(cfg, 256), p.CircuitNs(vocab, dim, 256))
	}
	if !(p.DHENs(cfg, 256) < p.ScanNs(vocab, dim, 256)) {
		t.Fatal("prefill: DHE must beat the scan")
	}
	// Decode at batch 8 and 12: DHE wins (Fig. 15: 1.03×, 1.07×).
	for _, b := range []int{8, 12} {
		if !(p.DHENs(cfg, b) < p.CircuitNs(vocab, dim, b)) {
			t.Fatalf("decode batch %d: DHE %.0f must beat Circuit %.0f",
				b, p.DHENs(cfg, b), p.CircuitNs(vocab, dim, b))
		}
	}
	// Decode at batch 1: the two are close — Circuit may edge out DHE
	// (Fig. 15 shows 0.99×); require them within 3× either way.
	r := p.DHENs(cfg, 1) / p.CircuitNs(vocab, dim, 1)
	if r < 1.0/3 || r > 3 {
		t.Fatalf("decode batch 1: DHE/Circuit ratio %.2f outside [1/3, 3]", r)
	}
}

// TestFig2Normalization: the non-secure lookup is far cheaper than any
// secure technique at DLRM scale (batch 32).
func TestFig2Normalization(t *testing.T) {
	p := IceLake(1)
	look := p.LookupNs(64, 32)
	for name, v := range map[string]float64{
		"scan":    p.ScanNs(1_000_000, 64, 32),
		"circuit": p.CircuitNs(1_000_000, 64, 32),
		"dhe":     p.DHENs(dhe.UniformConfig(64, 1), 32),
	} {
		if v < 10*look {
			t.Fatalf("%s (%.0f) should dwarf the non-secure lookup (%.0f)", name, v, look)
		}
	}
}

func TestThreadScaling(t *testing.T) {
	p1, p16 := IceLake(1), IceLake(16)
	if !(p16.FlopNs < p1.FlopNs && p16.StreamWordNs < p1.StreamWordNs) {
		t.Fatal("threads must speed up compute and streaming")
	}
	if p16.OramWordNs != p1.OramWordNs {
		t.Fatal("ORAM controller work must not parallelize (§V-A1)")
	}
	if IceLake(0).Threads != 1 {
		t.Fatal("thread floor")
	}
}

func TestTreeLevels(t *testing.T) {
	if treeLevels(1024) != 8 { // 256 leaves
		t.Fatalf("treeLevels(1024)=%d", treeLevels(1024))
	}
	if treeLevels(4) != 0 {
		t.Fatalf("treeLevels(4)=%d", treeLevels(4))
	}
}

func TestPosmapRecursionEngages(t *testing.T) {
	p := IceLake(1)
	// Circuit: above 2^12 blocks recursion replaces the flat scan; the
	// posmap cost must stop growing linearly.
	flat := p.posmapNs(1<<12, circuitCutoff, p.CircuitAccessNs)
	rec := p.posmapNs(1<<20, circuitCutoff, p.CircuitAccessNs)
	if rec > flat*100 {
		t.Fatalf("recursive posmap cost %.0f grew linearly from %.0f", rec, flat)
	}
}

// TestFig6ThresholdDirection: the scan/DHE threshold must fall with batch
// size and rise with thread count (Figure 6).
func TestFig6ThresholdDirection(t *testing.T) {
	threshold := func(batch, threads int) float64 {
		p := IceLake(threads)
		d := p.DHENs(dhe.UniformConfig(64, 1), batch)
		// Invert ScanNs(n) = d analytically: words cost is linear in n.
		perRow := float64(batch) * 64 * p.StreamWordNs * 1.5 / p.ScanReuse
		return (d - float64(batch)*p.QueryNs) / perRow
	}
	if !(threshold(128, 1) < threshold(32, 1)) {
		t.Fatal("threshold must fall as batch grows")
	}
	if !(threshold(32, 8) > threshold(32, 1)) {
		t.Fatalf("threshold must rise with threads: t1=%.0f t8=%.0f",
			threshold(32, 1), threshold(32, 8))
	}
	// Paper anchor: ≈3300 at batch 32, 1 thread (we accept 1.5k–6k).
	if v := threshold(32, 1); v < 1500 || v > 6000 {
		t.Fatalf("batch-32 threshold %.0f outside the paper's decade", v)
	}
}
