// Package perf is the analytic platform cost model that stands in for the
// paper's evaluation machine (Table III: Ice Lake Xeon 6348, 28 cores,
// AVX-512, 42 MB LLC, 8-channel DDR4-3200, Scalable SGX).
//
// Why it exists: the paper's headline crossovers (Figures 2, 4, 5 and the
// latency tables) are determined by the *ratio* between vectorized
// multi-core compute throughput and (oblivious, serialized) memory-system
// throughput. This reproduction's host is a single slow core, where that
// ratio is off by 1–2 orders of magnitude, so pure wall-clock would move
// every crossover (the asymptotic *shapes* still hold and are benchmarked
// directly). This package counts the operations each technique performs —
// FLOPs, streamed words, ORAM controller word-ops, bucket fetches,
// position-map scans — and prices them with constants calibrated to the
// paper's hardware, reproducing the who-wins-where structure. The
// calibration checkpoints are asserted in the tests.
package perf

import (
	"math"

	"secemb/internal/dhe"
)

// Platform prices operation counts in nanoseconds.
type Platform struct {
	Threads int

	FlopNs       float64 // per MAC-ish FLOP (dense matmul)
	StreamWordNs float64 // per sequentially streamed float32 word
	OramWordNs   float64 // per oblivious controller word op (cmov copy)
	BucketNs     float64 // per ORAM bucket touch (controller bookkeeping)
	BucketByteNs float64 // per byte of bucket traffic (copy + re-encryption)
	QueryNs      float64 // fixed per-query overhead
	ScanReuse    float64 // extra multi-thread cache-reuse factor for scans
}

// Single-thread Ice Lake constants.
const (
	flop1      = 1.0 / 15.0 // 15 GFLOP/s effective fp32 GEMM per core (AVX-512)
	stream1    = 1.0 / 3.0  // 12 GB/s per-core streaming = 3 words/ns
	oram1      = 2.0        // oblivious word op: load+select+store, unvectorized
	bucket1    = 250.0      // controller bookkeeping per bucket
	bucketByte = 0.35       // copy + SGX re-encryption per byte of bucket traffic
	query1     = 60.0
)

// IceLake returns the platform model at the given thread count. Compute
// scales near-linearly with threads (independent GEMM tiles); streaming
// bandwidth scales sublinearly (shared memory controllers); the oblivious
// ORAM controller does not parallelize at all ("processing each item in
// the input batch is sequential", §V-A1).
func IceLake(threads int) Platform {
	if threads < 1 {
		threads = 1
	}
	t := float64(threads)
	return Platform{
		Threads:      threads,
		FlopNs:       flop1 / math.Pow(t, 0.90),
		StreamWordNs: stream1 / math.Pow(t, 0.60),
		OramWordNs:   oram1,
		BucketNs:     bucket1,
		BucketByteNs: bucketByte,
		QueryNs:      query1,
		ScanReuse:    math.Pow(t, 0.35),
	}
}

// LookupNs prices the non-secure direct lookup: one row gather per query.
func (p Platform) LookupNs(dim, batch int) float64 {
	return float64(batch) * (p.QueryNs + float64(dim)*p.StreamWordNs*4)
}

// ScanNs prices the oblivious linear scan: every query streams the whole
// table with a masked blend per row. ScanReuse captures the paper's
// observation that concurrent scan threads share the table in cache
// (§IV-C1: "linear scan improves its cache reuse of the table across
// several queries in multiple threads, so the thresholds increase"), so
// the scan scales better with threads than DHE's matmuls.
func (p Platform) ScanNs(rows, dim, batch int) float64 {
	words := float64(batch) * float64(rows) * float64(dim)
	return words*p.StreamWordNs*1.5/p.ScanReuse + float64(batch)*p.QueryNs
}

// DHENs prices a DHE batch: the decoder weights are touched once per
// batch (on the Xeon's 42 MB LLC roughly half the traffic of even the
// biggest DHE decoder is cache-resident, hence the 0.5 residency factor)
// plus the dense-matmul FLOPs for every query. The once-per-batch weight
// term is what gives DHE its batch amortization (Figures 5, 12).
func (p Platform) DHENs(cfg dhe.Config, batch int) float64 {
	var weights, flops float64
	dims := append(append([]int{cfg.K}, cfg.Hidden...), cfg.Dim)
	for i := 0; i+1 < len(dims); i++ {
		weights += float64(dims[i]) * float64(dims[i+1])
		flops += 2 * float64(dims[i]) * float64(dims[i+1])
	}
	const llcResidency = 0.5
	return weights*p.StreamWordNs*llcResidency + float64(batch)*(flops*p.FlopNs+p.QueryNs)
}

// --- tree ORAM cost formulas (mirroring internal/oram's controllers) ---

const (
	oramZ            = 4
	pathStash        = 150
	circuitStash     = 10
	pathCutoff       = 1 << 16
	circuitCutoff    = 1 << 12
	chi              = 16
	posmapEntryNsMul = 0.5 // flat posmap scans are tight uint32 loops
)

func treeLevels(n int) int {
	leaves := 1
	for leaves < (n+oramZ-1)/oramZ {
		leaves <<= 1
	}
	l := 0
	for 1<<l < leaves {
		l++
	}
	return l
}

// posmapNs prices the position-map lookup for an n-block ORAM, recursing
// per the scheme's cutoff.
func (p Platform) posmapNs(n, cutoff int, inner func(n, words int) float64) float64 {
	if n <= cutoff {
		return float64(n) * p.OramWordNs * posmapEntryNsMul
	}
	blocks := (n + chi - 1) / chi
	return inner(blocks, chi)
}

// PathAccessNs prices one Path ORAM access on an n-block tree with
// `words`-word blocks: fetch the whole path into the stash (a full
// oblivious stash scan per slot), serve, and write back greedily (a full
// stash scan per slot).
func (p Platform) PathAccessNs(n, words int) float64 {
	L := treeLevels(n)
	slots := float64((L + 1) * oramZ)
	buckets := 2 * float64(L+1)
	stashScanWords := (slots*2 + 2) * pathStash * float64(words) // insert + extract + serve
	pathWords := 2 * slots * float64(words)
	bucketBytes := 2 * slots * float64(4*words+12) // read + write-back traversal
	ns := buckets*p.BucketNs + bucketBytes*p.BucketByteNs + (stashScanWords+pathWords)*p.OramWordNs
	ns += p.posmapNs(n, pathCutoff, p.PathAccessNs)
	return ns
}

// CircuitAccessNs prices one Circuit ORAM access: the read phase lifts
// only the target block (one masked copy per path slot), stash scans are
// tiny, and two metadata-guided evictions move O(L) blocks.
func (p Platform) CircuitAccessNs(n, words int) float64 {
	L := treeLevels(n)
	slots := float64((L + 1) * oramZ)
	buckets := 2 * float64(L+1)
	readWords := slots * float64(words)
	stashWords := 2 * circuitStash * float64(words)
	bucketBytes := float64(4*words+12) * slots
	evictions := 2 * (2*float64(L+1)*p.BucketNs + // read+write each bucket
		2*bucketBytes*p.BucketByteNs + // full-path copy + re-encryption
		(slots+circuitStash)*p.OramWordNs*4 + // metadata scans
		3*float64(words)*p.OramWordNs) // block movement
	ns := buckets*p.BucketNs + 2*bucketBytes*p.BucketByteNs +
		(readWords+stashWords)*p.OramWordNs + evictions
	ns += p.posmapNs(n, circuitCutoff, p.CircuitAccessNs)
	return ns
}

// PathNs prices a batch (sequential accesses).
func (p Platform) PathNs(rows, dim, batch int) float64 {
	return float64(batch) * (p.PathAccessNs(rows, dim) + p.QueryNs)
}

// CircuitNs prices a batch (sequential accesses).
func (p Platform) CircuitNs(rows, dim, batch int) float64 {
	return float64(batch) * (p.CircuitAccessNs(rows, dim) + p.QueryNs)
}
