package experiments

// All runs every experiment in paper order. quick trims grids and
// training steps (used by tests and the default CLI mode; pass -full to
// cmd/experiments for the complete sweep).
func All(quick bool) []Report {
	return []Report{
		Fig2(),
		Fig3(),
		Fig4(quick),
		Fig5(quick),
		Fig6(quick),
		Fig7(),
		Fig8(quick),
		Fig9(quick),
		Fig10(quick),
		Fig11(),
		Fig12(quick),
		Fig13(quick),
		Fig14(quick),
		Fig15(),
		TableV(quick),
		TableVI(),
		TableVIII(quick),
		TableVII(),
		LLMMemory(),
		ExtEncodingAblation(quick),
		ExtScanOrderAblation(quick),
		ExtQuantization(quick),
	}
}

// ByID returns the experiment runner for a given report ID, or nil.
func ByID(id string) func(quick bool) Report {
	m := map[string]func(bool) Report{
		"fig2":          func(bool) Report { return Fig2() },
		"fig3":          func(bool) Report { return Fig3() },
		"fig4":          Fig4,
		"fig5":          Fig5,
		"fig6":          Fig6,
		"fig7":          func(bool) Report { return Fig7() },
		"fig8":          Fig8,
		"fig9":          Fig9,
		"fig10":         Fig10,
		"fig11":         func(bool) Report { return Fig11() },
		"fig12":         Fig12,
		"fig13":         Fig13,
		"fig14":         Fig14,
		"fig15":         func(bool) Report { return Fig15() },
		"tableV":        TableV,
		"tableVI":       func(bool) Report { return TableVI() },
		"tableVII":      func(bool) Report { return TableVII() },
		"tableVIII":     TableVIII,
		"llm-memory":    func(bool) Report { return LLMMemory() },
		"ext-encoding":  ExtEncodingAblation,
		"ext-scanorder": ExtScanOrderAblation,
		"ext-quant":     ExtQuantization,
	}
	return m[id]
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"tableV", "tableVI", "tableVII", "tableVIII", "llm-memory",
		"ext-encoding", "ext-scanorder", "ext-quant"}
}
