package experiments

import (
	"fmt"

	"secemb/internal/colo"
	"secemb/internal/data"
	"secemb/internal/dhe"
	"secemb/internal/enclave"
	"secemb/internal/oram"
	"secemb/internal/perf"
)

// Fig10 reproduces the ZeroTrace optimization study (Figure 10): Path and
// Circuit ORAM single-lookup latency under the three deployment variants.
// The ORAM controllers are *actually executed* (this repository's
// implementations) to collect their work counters; the enclave cost model
// prices those counters per variant.
func Fig10(quick bool) Report {
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if quick {
		sizes = []int{1 << 12}
	}
	const dim = 64
	const accesses = 20
	r := Report{
		ID:      "fig10",
		Title:   "Single-lookup latency of ORAM deployment variants (dim 64, model-priced from executed controllers)",
		Headers: []string{"scheme", "table size", "ZT-Original (ms)", "ZT-Gramine (ms)", "ZT-Gramine-Opt (ms)"},
	}
	variants := []enclave.Variant{enclave.ZTOriginal, enclave.ZTGramine, enclave.ZTGramineOpt}
	for _, scheme := range []string{"Path", "Circuit"} {
		for _, n := range sizes {
			var cells []string
			for _, v := range variants {
				cutoff := -1
				if v.RecursionEnabled() {
					cutoff = 0
				}
				cfg := oram.Config{NumBlocks: n, BlockWords: dim, Seed: 3, RecursionCutoff: cutoff}
				var o oram.ORAM
				if scheme == "Path" {
					o = oram.NewPath(cfg)
				} else {
					o = oram.NewCircuit(cfg)
				}
				before := *o.Stats()
				for i := 0; i < accesses; i++ {
					o.Read(uint64(i % n))
				}
				ns := enclave.ModelFor(v).EstimateNs(enclave.Delta(*o.Stats(), before)) / accesses
				cells = append(cells, ms(ns))
			}
			r.AddRow(scheme, fmt.Sprintf("%d", n), cells[0], cells[1], cells[2])
		}
	}
	r.AddNote("paper Figure 10: EPC residency cuts 20%%/60%% (Path/Circuit); inlining+recursion cuts a further 29%%/54%%")
	return r
}

// Fig8 reproduces the co-location inflation study (Figure 8): latency of a
// replica as identical replicas are added, for scan- and DHE-based
// embedding generation.
func Fig8(quick bool) Report {
	counts := []int{1, 4, 8, 16, 24}
	if quick {
		counts = []int{1, 24}
	}
	sys := colo.IceLakeSystem()
	const rows, dim, batch = 1_000_000, 64, 32
	dheLoad := dheColoLoad(rows, dim, batch, sys.Platform)
	r := Report{
		ID:      "fig8",
		Title:   "Latency inflation under co-location (1e6-row table, dim 64, batch 32)",
		Headers: []string{"replicas", "linear scan (ms)", "scan inflation", "DHE (ms)", "DHE inflation"},
	}
	scanSolo := sys.Solo(colo.ScanLoad(rows, dim, batch))
	dheSolo := sys.Solo(dheLoad)
	for _, n := range counts {
		scans := replicate(colo.ScanLoad(rows, dim, batch), n)
		dhes := replicate(dheLoad, n)
		sLat := sys.MeanLatency(scans)
		dLat := sys.MeanLatency(dhes)
		r.AddRow(fmt.Sprintf("%d", n), ms(sLat), fmt.Sprintf("%.2fx", sLat/scanSolo),
			ms(dLat), fmt.Sprintf("%.2fx", dLat/dheSolo))
	}
	r.AddNote("paper Figure 8: memory-bound scans inflate with co-location; compute-bound DHE barely moves")
	return r
}

// Fig9 reproduces the fixed-24-replica allocation sweep (Figure 9): mean
// embedding latency as the scan/DHE split varies, per table size.
func Fig9(quick bool) Report {
	sizes := []int{1000, 3000, 4500, 5000, 10_000}
	splits := []int{0, 6, 12, 18, 24}
	if quick {
		sizes = []int{1000, 10_000}
		splits = []int{0, 24}
	}
	sys := colo.IceLakeSystem()
	const dim, batch = 64, 32
	r := Report{
		ID:    "fig9",
		Title: "Mean latency (ms) for N=24 co-located replicas vs number allocated to DHE",
		Headers: append([]string{"table size"}, func() []string {
			var h []string
			for _, s := range splits {
				h = append(h, fmt.Sprintf("dhe=%d", s))
			}
			return h
		}()...),
	}
	for _, rows := range sizes {
		cells := []string{fmt.Sprintf("%d", rows)}
		best, bestSplit := -1.0, 0
		for _, nDHE := range splits {
			loads := make([]colo.Load, 0, 24)
			for i := 0; i < 24; i++ {
				if i < nDHE {
					loads = append(loads, dheColoLoad(rows, dim, batch, sys.Platform))
				} else {
					loads = append(loads, colo.ScanLoad(rows, dim, batch))
				}
			}
			lat := sys.MeanLatency(loads)
			cells = append(cells, ms(lat))
			if best < 0 || lat < best {
				best, bestSplit = lat, nDHE
			}
		}
		r.AddRow(cells...)
		r.AddNote("rows=%d: best split dhe=%d", rows, bestSplit)
	}
	r.AddNote("paper Figure 9: small tables favor all-scan (x=0); beyond ≈4500 rows all-DHE (x=24) wins")
	return r
}

// Fig13 reproduces the latency-throughput study (Figure 13): co-located
// DHE-Varied vs Hybrid-Varied Terabyte models against a 20 ms SLA.
func Fig13(quick bool) Report {
	sys := colo.IceLakeSystem()
	const batch = 32
	counts := []int{1, 4, 8, 16, 24, 28}
	if quick {
		counts = []int{1, 28}
	}
	dheLoad, hybLoad := terabyteLoads(sys.Platform, batch)
	r := Report{
		ID:      "fig13",
		Title:   "Co-located Terabyte models: latency and throughput (batch 32; SLA 20 ms)",
		Headers: []string{"replicas", "DHE-V lat (ms)", "DHE-V inf/s", "Hybrid-V lat (ms)", "Hybrid-V inf/s"},
	}
	for _, n := range counts {
		dl, dt := sys.Throughput(dheLoad, n, batch)
		hl, ht := sys.Throughput(hybLoad, n, batch)
		r.AddRow(fmt.Sprintf("%d", n), ms(dl), fmt.Sprintf("%.0f", dt), ms(hl), fmt.Sprintf("%.0f", ht))
	}
	const sla = 20e6
	_, dtp := sys.MaxThroughputUnderSLA(dheLoad, batch, 28, sla)
	_, htp := sys.MaxThroughputUnderSLA(hybLoad, batch, 28, sla)
	r.AddNote("SLA-bounded throughput: DHE-Varied %.0f inf/s vs Hybrid-Varied %.0f inf/s (%.2fx)",
		dtp, htp, htp/dtp)
	r.AddNote("paper Figure 13: hybrid raises latency-bounded throughput 1.4x over all-DHE for Terabyte")
	return r
}

// --- shared co-location loads ---

func replicate(l colo.Load, n int) []colo.Load {
	out := make([]colo.Load, n)
	for i := range out {
		out[i] = l
	}
	return out
}

// dheColoLoad converts a Uniform DHE feature into a co-location load.
func dheColoLoad(rows, dim, batch int, p perf.Platform) colo.Load {
	cfg := dhe.UniformConfig(dim, 1)
	var weights, flops float64
	dims := append(append([]int{cfg.K}, cfg.Hidden...), cfg.Dim)
	for i := 0; i+1 < len(dims); i++ {
		weights += float64(dims[i]) * float64(dims[i+1])
		flops += 2 * float64(dims[i]) * float64(dims[i+1])
	}
	return colo.DHELoad(weights, flops, batch, p)
}

// terabyteLoads builds whole-model loads (all 26 features + MLPs) for the
// all-DHE-Varied and Hybrid-Varied Terabyte models.
func terabyteLoads(p perf.Platform, batch int) (dheV, hybridV colo.Load) {
	// The hybrid pairs the scan with the *Varied* DHE, so the relevant
	// threshold is the scan/Varied crossing (see Fig. 11).
	thr := ModelThresholdVaried(64, batch, 1)
	cards := data.TerabyteCardinalities
	mlp := mlpNs(p, 13, 64, []int{512, 256}, []int{512, 512, 256}, len(cards), batch)
	dheV.ComputeNs = mlp
	hybridV.ComputeNs = mlp
	for _, n := range cards {
		cfg := dhe.VariedConfig(64, n, 1)
		var weights, flops float64
		dims := append(append([]int{cfg.K}, cfg.Hidden...), cfg.Dim)
		for i := 0; i+1 < len(dims); i++ {
			weights += float64(dims[i]) * float64(dims[i+1])
			flops += 2 * float64(dims[i]) * float64(dims[i+1])
		}
		dl := colo.DHELoad(weights, flops, batch, p)
		dheV.ComputeNs += dl.ComputeNs
		dheV.MemWords += dl.MemWords
		if n <= thr {
			sl := colo.ScanLoad(n, 64, batch)
			hybridV.ComputeNs += sl.ComputeNs
			hybridV.MemWords += sl.MemWords
		} else {
			hybridV.ComputeNs += dl.ComputeNs
			hybridV.MemWords += dl.MemWords
		}
	}
	return dheV, hybridV
}
