package experiments

import (
	"fmt"
	"math/rand"

	"secemb/internal/dhe"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// Extension experiments: studies beyond the paper's figures that probe
// its design choices (registered under ext-* ids).

// ExtEncodingAblation compares the two DHE encoding variants — the
// paper's uniform [-1,1] scaling vs the original DHE paper's Box–Muller
// Gaussian transform — on the core capability both need: fitting a target
// embedding table. Both are equally side-channel safe; the question is
// representational quality per parameter.
func ExtEncodingAblation(quick bool) Report {
	steps := 400
	if quick {
		steps = 150
	}
	const rows, dim = 64, 8
	rng := rand.New(rand.NewSource(60))
	target := tensor.NewGaussian(rows, dim, 0.5, rng)
	ids := make([]uint64, rows)
	for i := range ids {
		ids[i] = uint64(i)
	}
	fit := func(gaussian bool) float64 {
		d := dhe.New(dhe.Config{K: 64, Hidden: []int{48}, Dim: dim, Seed: 61, Gaussian: gaussian},
			rand.New(rand.NewSource(61)))
		opt := nn.NewAdam(0.01)
		for s := 0; s < steps; s++ {
			nn.ZeroGrads(d.Decoder)
			grad := tensor.Sub(d.Generate(ids), target)
			tensor.ScaleInPlace(grad, 2.0/float32(rows))
			d.Backward(grad)
			opt.Step(d.Params())
		}
		return tensor.Norm2(tensor.Sub(d.Generate(ids), target))
	}
	r := Report{
		ID:      "ext-encoding",
		Title:   fmt.Sprintf("DHE encoding ablation: fit error after %d steps (64-row target, dim 8)", steps),
		Headers: []string{"encoding", "residual ‖err‖"},
	}
	u := fit(false)
	g := fit(true)
	r.AddRow("Uniform [-1,1] (Algorithm 1)", fmt.Sprintf("%.4f", u))
	r.AddRow("Gaussian (Box–Muller)", fmt.Sprintf("%.4f", g))
	r.AddNote("both encodings are input-independent straight-line arithmetic; quality is the only trade-off")
	return r
}

// ExtScanOrderAblation reports the analytic memory-traffic difference of
// the per-query vs batch-amortized scan (the wall-clock companion is
// BenchmarkAblationScanOrder).
func ExtScanOrderAblation(quick bool) Report {
	_ = quick
	r := Report{
		ID:      "ext-scanorder",
		Title:   "Linear-scan loop order: table words loaded from memory per batch",
		Headers: []string{"rows", "batch", "per-query order", "batch-amortized order", "traffic ratio"},
	}
	for _, rows := range []int{10_000, 1_000_000} {
		for _, batch := range []int{1, 32, 128} {
			perQ := int64(rows) * 64 * int64(batch)
			amort := int64(rows) * 64
			r.AddRow(fmt.Sprintf("%d", rows), fmt.Sprintf("%d", batch),
				fmt.Sprintf("%d", perQ), fmt.Sprintf("%d", amort),
				fmt.Sprintf("%dx", batch))
		}
	}
	r.AddNote("identical masked work and security; the amortized order streams the table once per batch")
	return r
}

// ExtQuantization measures weight quantization of the DHE decoder:
// footprint reduction and output drift — the CPU-deployment knob the
// paper motivates in §II-A ("LLMs on CPUs are becoming more feasible by
// leveraging techniques such as quantization"). The packed SWAR layout
// (DESIGN.md §13) spends 2 bytes per weight — half the 4× compression of
// flat int8 — to buy a ~3× faster scalar kernel; this report records the
// footprint side of that trade.
func ExtQuantization(quick bool) Report {
	_ = quick
	r := Report{
		ID:      "ext-quant",
		Title:   "Quantized DHE decoders: packed footprint and output drift",
		Headers: []string{"architecture", "float32 (MB)", "packed quant (MB)", "compression", "max output drift"},
	}
	for _, c := range []struct {
		name string
		cfg  dhe.Config
	}{
		{"DLRM Uniform (k=1024, dim 64)", dhe.UniformConfig(64, 70)},
		{"LLM (k=2048, dim 1024)", dhe.LLMConfig(1024, 70)},
	} {
		d := dhe.New(c.cfg, rand.New(rand.NewSource(70)))
		q := d.Quantize()
		ids := []uint64{1, 2, 3, 4}
		drift := tensor.MaxAbsDiff(d.Generate(ids), q.Generate(ids))
		r.AddRow(c.name, mb(d.NumBytes()), mb(q.NumBytes()),
			fmt.Sprintf("%.2fx", float64(d.NumBytes())/float64(q.NumBytes())),
			fmt.Sprintf("%.4f", drift))
	}
	r.AddNote("quantized decoders keep the dense, input-independent data flow — same side-channel argument")
	r.AddNote("packed lanes trade half the flat-int8 compression for a ~3x faster scalar kernel (BENCH_hotpath.json)")
	return r
}
