package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllReportsRenderQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	reports := All(true)
	if len(reports) != len(IDs()) {
		t.Fatalf("All returned %d reports, IDs lists %d", len(reports), len(IDs()))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Fatalf("%s: empty report", r.ID)
		}
		out := r.Render()
		if !strings.Contains(out, r.ID) || !strings.Contains(out, r.Title) {
			t.Fatalf("%s: render missing header", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Headers) {
				t.Fatalf("%s: row width %d != headers %d", r.ID, len(row), len(r.Headers))
			}
		}
		seen[r.ID] = true
	}
	for _, id := range IDs() {
		if !seen[id] {
			t.Fatalf("missing report %s", id)
		}
	}
}

func TestByIDCoversIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Fatalf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id must return nil")
	}
}

// cell parses a numeric report cell (first token).
func cell(s string) float64 {
	f := strings.Fields(s)
	v, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		panic("non-numeric cell: " + s)
	}
	return v
}

func TestFig3RecoversVictimIndex(t *testing.T) {
	r := Fig3()
	// The victim set (index 2) must carry the highest lookup latency,
	// and the scan column must be flat.
	bestIdx, best := -1, -1.0
	scan0 := cell(r.Rows[0][2])
	for i, row := range r.Rows {
		if v := cell(row[1]); v > best {
			best, bestIdx = v, i
		}
		if cell(row[2]) != scan0 {
			t.Fatalf("linear scan latency not flat at set %d", i)
		}
	}
	if bestIdx != 2 {
		t.Fatalf("attack recovered set %d, want 2", bestIdx)
	}
}

func TestFig4Shapes(t *testing.T) {
	r := Fig4(true)
	// Within each dim, the scan column grows with table size while the
	// DHE-Uniform column stays constant.
	byDim := map[string][][]string{}
	for _, row := range r.Rows {
		byDim[row[0]] = append(byDim[row[0]], row)
	}
	for dim, rows := range byDim {
		for i := 1; i < len(rows); i++ {
			if cell(rows[i][2]) <= cell(rows[i-1][2]) {
				t.Fatalf("dim %s: scan latency not increasing", dim)
			}
			if cell(rows[i][5]) != cell(rows[0][5]) {
				t.Fatalf("dim %s: DHE uniform latency not flat", dim)
			}
		}
		last := rows[len(rows)-1]
		// Largest table: DHE-Varied < Circuit < Path < Scan.
		if !(cell(last[6]) < cell(last[4]) && cell(last[4]) < cell(last[3]) && cell(last[3]) < cell(last[2])) {
			t.Fatalf("dim %s: large-table ordering violated: %v", dim, last)
		}
	}
}

func TestFig5PrefillWinner(t *testing.T) {
	r := Fig5(true)
	for _, row := range r.Rows {
		if row[1] == "256" && row[6] != "DHE" {
			t.Fatalf("dim %s batch 256: best secure = %s, want DHE", row[0], row[6])
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	r := Fig10(true)
	for _, row := range r.Rows {
		orig, gram, opt := cell(row[2]), cell(row[3]), cell(row[4])
		if !(orig > gram && gram > opt) {
			t.Fatalf("%s n=%s: ZT ordering violated: %v > %v > %v", row[0], row[1], orig, gram, opt)
		}
	}
}

func TestTableVIIOrderings(t *testing.T) {
	r := TableVII()
	lat := map[string][2]float64{}
	for _, row := range r.Rows {
		lat[row[0]] = [2]float64{cell(row[1]), cell(row[3])}
	}
	for ds := 0; ds < 2; ds++ {
		look := lat["Index Lookup (non-secure)"][ds]
		scan := lat["Linear Scan"][ds]
		path := lat["Path ORAM"][ds]
		circ := lat["Circuit ORAM"][ds]
		hybV := lat["Hybrid Varied"][ds]
		dheV := lat["DHE Varied"][ds]
		if !(look < hybV && hybV <= dheV && hybV < circ && circ < path && path < scan) {
			t.Fatalf("dataset %d: Table VII ordering violated: look=%v hybV=%v dheV=%v circ=%v path=%v scan=%v",
				ds, look, hybV, dheV, circ, path, scan)
		}
		// Hybrid speedup over Circuit in a plausible band around the
		// paper's 2.0–2.3× (we accept 1.5–8×).
		if s := circ / hybV; s < 1.5 || s > 8 {
			t.Fatalf("dataset %d: hybrid speedup %.2f outside band", ds, s)
		}
	}
}

func TestFig12SpeedupGrowsWithBatch(t *testing.T) {
	r := Fig12(true)
	// For each dataset, hybrid-vs-circuit ratio at batch 128 must exceed
	// the batch-32 ratio (Figure 12's message).
	ratios := map[string]map[string]float64{}
	for _, row := range r.Rows {
		ds, b := row[0], row[1]
		if ratios[ds] == nil {
			ratios[ds] = map[string]float64{}
		}
		ratios[ds][b] = cell(row[2]) / cell(row[4])
	}
	for ds, m := range ratios {
		if m["128"] <= m["32"] {
			t.Fatalf("%s: speedup did not grow with batch (%.2f → %.2f)", ds, m["32"], m["128"])
		}
	}
}

func TestTableVIFootprints(t *testing.T) {
	r := TableVI()
	get := func(name string, col int) float64 {
		for _, row := range r.Rows {
			if row[0] == name {
				return cell(row[col])
			}
		}
		t.Fatalf("missing row %s", name)
		return 0
	}
	for _, col := range []int{1, 3} { // Kaggle, Terabyte MB
		table := get("Table", col)
		oram := get("Tree-ORAM", col)
		hybV := get("Hybrid Varied", col)
		if !(oram > 3*table) {
			t.Fatalf("ORAM %.0f not >3x table %.0f", oram, table)
		}
		if !(hybV < table/50) {
			t.Fatalf("hybrid %.1f not orders below table %.0f", hybV, table)
		}
	}
}

func TestFig15DHEvsCircuit(t *testing.T) {
	r := Fig15()
	var dheRow, circRow []string
	for _, row := range r.Rows {
		switch row[0] {
		case "DHE":
			dheRow = row
		case "Circuit ORAM":
			circRow = row
		}
	}
	// Prefill columns (1, 3, 5): DHE must beat Circuit ORAM.
	for _, c := range []int{1, 3, 5} {
		if cell(dheRow[c]) >= cell(circRow[c]) {
			t.Fatalf("prefill col %d: DHE %v not below Circuit %v", c, dheRow[c], circRow[c])
		}
	}
	// Decode at batch 12 (col 6): DHE wins; batch 1 (col 2): within 2x.
	if cell(dheRow[6]) >= cell(circRow[6]) {
		t.Fatal("decode b=12: DHE must win")
	}
	if ratio := cell(dheRow[2]) / cell(circRow[2]); ratio > 2 {
		t.Fatalf("decode b=1: DHE/Circuit %.2f too far apart", ratio)
	}
}

func TestModelThresholdsSane(t *testing.T) {
	u := ModelThreshold(64, 32, 1)
	if u < 1000 || u > 10000 {
		t.Fatalf("uniform threshold %d outside plausible decade", u)
	}
	v := ModelThresholdVaried(16, 32, 1)
	if v <= 0 || v >= u {
		t.Fatalf("varied threshold %d must undercut uniform %d", v, u)
	}
}

func TestFig7CoverageShares(t *testing.T) {
	r := Fig7()
	for _, row := range r.Rows {
		// Almost all table *memory* must be always-DHE (paper: 99.7%).
		share := strings.TrimSuffix(row[4], "%")
		v, err := strconv.ParseFloat(share, 64)
		if err != nil || v < 99 {
			t.Fatalf("%s: DHE memory share %q too low", row[0], row[4])
		}
		// Every dataset keeps some always-scan tables and some in the band.
		if cell(row[1]) < 5 || cell(row[3]) < 5 {
			t.Fatalf("%s: implausible classification %v", row[0], row)
		}
	}
}

func TestFig9CrossoverDirection(t *testing.T) {
	r := Fig9(false)
	// First row (smallest tables): dhe=0 best; last row (largest): dhe=24.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if !(cell(first[1]) < cell(first[len(first)-1])) {
		t.Fatalf("small tables: all-scan should beat all-DHE: %v", first)
	}
	if !(cell(last[len(last)-1]) < cell(last[1])) {
		t.Fatalf("large tables: all-DHE should beat all-scan: %v", last)
	}
}

func TestFig8InflationDirection(t *testing.T) {
	r := Fig8(true)
	lastRow := r.Rows[len(r.Rows)-1]
	scanInfl := strings.TrimSuffix(lastRow[2], "x")
	dheInfl := strings.TrimSuffix(lastRow[4], "x")
	s, _ := strconv.ParseFloat(scanInfl, 64)
	d, _ := strconv.ParseFloat(dheInfl, 64)
	if !(s > d && s > 1.2) {
		t.Fatalf("24-way inflation: scan %v must exceed DHE %v", s, d)
	}
}

func TestFig14CurvesDescend(t *testing.T) {
	r := Fig14(true)
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	for _, col := range []int{1, 2} {
		if !(cell(last[col]) < cell(first[col])*0.8) {
			t.Fatalf("perplexity column %d barely fell: %v → %v", col, first[col], last[col])
		}
	}
	// Final table and DHE perplexities within 35% of each other
	// (paper: 2.7% on GPT-2 medium; miniatures are noisier).
	tf, df := cell(last[1]), cell(last[2])
	if ratio := df / tf; ratio > 1.35 || ratio < 0.65 {
		t.Fatalf("final perplexity gap too wide: table %v vs DHE %v", tf, df)
	}
}

func TestTableVIIIOrdering(t *testing.T) {
	r := TableVIII(true)
	lat := map[string]float64{}
	memMB := map[string]float64{}
	for _, row := range r.Rows {
		lat[row[0]] = cell(row[1])
		memMB[row[0]] = cell(row[3])
	}
	if !(lat["Hybrid Varied"] <= lat["DHE Varied"] && lat["DHE Varied"] < lat["Circuit ORAM"] &&
		lat["Circuit ORAM"] < lat["Path ORAM"] && lat["Path ORAM"] < lat["Linear Scan"]) {
		t.Fatalf("Table VIII latency ordering violated: %v", lat)
	}
	if !(memMB["Hybrid Varied"] < memMB["Index Lookup (non-secure)"]/100) {
		t.Fatal("hybrid memory not orders of magnitude below the table")
	}
	if !(memMB["Circuit ORAM"] > 3*memMB["Index Lookup (non-secure)"]) {
		t.Fatal("ORAM memory should exceed 3x the table")
	}
}

func TestTableVParity(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	r := TableV(true)
	var accs []float64
	for _, row := range r.Rows {
		accs = append(accs, cell(strings.TrimSuffix(row[1], "%")))
	}
	for _, a := range accs {
		if a < 55 {
			t.Fatalf("accuracy %v barely above chance", a)
		}
	}
	spread := 0.0
	for _, a := range accs {
		if d := a - accs[0]; d > spread {
			spread = d
		} else if -d > spread {
			spread = -d
		}
	}
	if spread > 6 {
		t.Fatalf("accuracy spread %.1f points too wide for the parity claim", spread)
	}
}

func TestExtReports(t *testing.T) {
	enc := ExtEncodingAblation(true)
	if len(enc.Rows) != 2 {
		t.Fatal("encoding ablation rows")
	}
	for _, row := range enc.Rows {
		if cell(row[1]) > 1.0 {
			t.Fatalf("encoding %s failed to fit: residual %s", row[0], row[1])
		}
	}
	q := ExtQuantization(true)
	for _, row := range q.Rows {
		comp := strings.TrimSuffix(row[3], "x")
		// Packed SWAR lanes spend 2 bytes/weight (DESIGN.md §13): the
		// floor is ~2x, not flat int8's ~4x — the other half bought the
		// kernel speedup.
		if v, _ := strconv.ParseFloat(comp, 64); v < 1.8 {
			t.Fatalf("quantization compression %s too low", row[3])
		}
		if cell(row[4]) > 0.1 {
			t.Fatalf("quantization drift %s too high", row[4])
		}
	}
	so := ExtScanOrderAblation(true)
	if len(so.Rows) == 0 {
		t.Fatal("scan-order ablation empty")
	}
}
