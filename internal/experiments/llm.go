package experiments

import (
	"fmt"
	"math/rand"

	"secemb/internal/data"
	"secemb/internal/dhe"
	"secemb/internal/llm"
	"secemb/internal/nn"
	"secemb/internal/perf"
)

// Fig14 reproduces the finetuning study (Figure 14): perplexity curves of
// a table-embedding and a DHE-embedding language model finetuned on the
// same corpus — at miniature scale, with *real training* of this
// repository's transformer. The claim under test: after finetuning, the
// DHE model's perplexity is within a few percent of the table model's.
func Fig14(quick bool) Report {
	cfg := llm.Config{Vocab: 101, Dim: 24, Heads: 2, Layers: 2, MaxSeq: 16, Seed: 21}
	steps, every := 120, 20
	if quick {
		steps, every = 40, 10
	}
	corpus := data.NewCorpus(cfg.Vocab, 77)
	rng := rand.New(rand.NewSource(78))
	train := corpus.Generate(8000, rng)
	test := corpus.Generate(800, rng)
	ins, tgts := data.Batches(train, 12)
	tins, ttgts := data.Batches(test, 12)

	run := func(kind llm.TokKind) []float64 {
		m := llm.New(cfg, kind)
		opt := nn.NewAdam(3e-3)
		var curve []float64
		idx := 0
		for s := 0; s <= steps; s++ {
			if s%every == 0 {
				curve = append(curve, m.Perplexity(tins, ttgts))
			}
			m.ZeroGrads()
			for b := 0; b < 4; b++ {
				m.TrainSeq(ins[idx%len(ins)], tgts[idx%len(ins)])
				idx++
			}
			opt.Step(m.Params())
		}
		return curve
	}
	table := run(llm.TableTok)
	dheC := run(llm.DHETok)

	r := Report{
		ID:      "fig14",
		Title:   fmt.Sprintf("Miniature-LLM finetuning perplexity (vocab %d, dim %d, %d steps)", cfg.Vocab, cfg.Dim, steps),
		Headers: []string{"step", "table ppl", "dhe ppl"},
	}
	for i := range table {
		r.AddRow(fmt.Sprintf("%d", i*every), fmt.Sprintf("%.2f", table[i]), fmt.Sprintf("%.2f", dheC[i]))
	}
	tf, df := table[len(table)-1], dheC[len(dheC)-1]
	r.AddNote("final perplexity: table %.2f vs DHE %.2f (%.1f%% gap)", tf, df, 100*(df-tf)/tf)
	r.AddNote("paper Figure 14: GPT-2 medium on OpenWebText reaches 14.6 (table) vs 15.0 (DHE), a 2.7%% gap")
	return r
}

// Fig15 reproduces the GPT-2 medium latency table (the paper's Fig. 15):
// prefill (TTFT) and decode (TBT) per technique for request batches 1, 8
// and 12, prompt 256 tokens, 16 threads, under the platform model.
func Fig15() Report {
	cfg := llm.GPT2Medium(1)
	p := perf.IceLake(16)
	const prompt = 256
	batches := []int{1, 8, 12}

	trunkPrefill := func(b int) float64 { return trunkNs(p, cfg, b*prompt, prompt/2) }
	trunkDecode := func(b, ctx int) float64 {
		return trunkNs(p, cfg, b, ctx) + headNs(p, cfg, b)
	}
	headPrefill := func(b int) float64 { return headNs(p, cfg, b) } // last position only, per sequence

	dheCfg := dhe.LLMConfig(cfg.Dim, 1)
	embNs := func(tech string, batch int) float64 {
		switch tech {
		case "dhe":
			return p.DHENs(dheCfg, batch)
		default:
			return techNs(p, tech, cfg.Vocab, cfg.Dim, batch, 1)
		}
	}

	r := Report{
		ID:      "fig15",
		Title:   "GPT-2 medium latency (ms): prefill/TTFT (prompt 256) and decode/TBT, 16 threads",
		Headers: []string{"technique", "prefill b=1", "decode b=1", "prefill b=8", "decode b=8", "prefill b=12", "decode b=12"},
	}
	const avgCtx = 256 + 64 // mid-generation context for the decode TBT
	type tr struct{ key, label string }
	rows := []tr{
		{"lookup", "Index Lookup (non-secure)"},
		{"scan", "Linear Scan"},
		{"path", "Path ORAM"},
		{"circuit", "Circuit ORAM"},
		{"dhe", "DHE"},
	}
	lat := map[string][]float64{}
	for _, t := range rows {
		var cells []float64
		for _, b := range batches {
			pf := embNs(t.key, b*prompt) + trunkPrefill(b) + headPrefill(b)
			dc := embNs(t.key, b) + trunkDecode(b, avgCtx)
			cells = append(cells, pf, dc)
		}
		lat[t.key] = cells
	}
	for _, t := range rows {
		cells := []string{t.label}
		for i, v := range lat[t.key] {
			s := ms(v)
			if t.key == "dhe" {
				s += fmt.Sprintf(" (%.2fx vs circ)", lat["circuit"][i]/v)
			}
			cells = append(cells, s)
		}
		r.AddRow(cells...)
	}
	r.AddNote("paper Fig. 15: DHE 1.23-1.32x faster prefill than Circuit ORAM; decode 0.99x (b=1) to 1.07x (b=12)")
	r.AddNote("DHE end-to-end overhead vs non-secure: prefill %s%%, decode %s%% (paper: 2-5%%)",
		fmt.Sprintf("%.1f", 100*(lat["dhe"][4]/lat["lookup"][4]-1)),
		fmt.Sprintf("%.1f", 100*(lat["dhe"][5]/lat["lookup"][5]-1)))
	// §V-C: "the overhead of securing argmax in LLMs is less than 0.4% of
	// the total generation latency" — the oblivious argmax is a linear
	// masked scan over the vocabulary logits.
	argmaxNs := float64(cfg.Vocab) * 2 // ~2ns per masked compare/select
	r.AddNote("oblivious-argmax overhead per decode step: %.3f%% of TBT (paper: <0.4%%)",
		100*argmaxNs/lat["dhe"][1])
	return r
}

// trunkNs prices the transformer trunk for `tokens` new tokens at average
// attention context `ctx`: QKV/proj/FFN matmuls plus attention
// score/value products, at the platform's threaded GEMM rate.
func trunkNs(p perf.Platform, cfg llm.Config, tokens, ctx int) float64 {
	d := float64(cfg.Dim)
	perTokenFlops := 2*d*3*d + 2*d*d + 2*2*d*4*d // qkv + proj + fc1/fc2
	perTokenFlops += 4 * float64(ctx) * d        // QKᵀ and A·V
	return float64(cfg.Layers) * float64(tokens) * perTokenFlops * p.FlopNs
}

// headNs prices the vocabulary projection for `positions` output
// positions.
func headNs(p perf.Platform, cfg llm.Config, positions int) float64 {
	return float64(positions) * 2 * float64(cfg.Vocab) * float64(cfg.Dim) * p.FlopNs
}

// LLMMemory reproduces the §VI-D3 memory analysis: the embedding
// representation's size relative to the GPT-2 medium model.
func LLMMemory() Report {
	cfg := llm.GPT2Medium(1)
	table := int64(cfg.Vocab) * int64(cfg.Dim) * 4
	d := dheBytes(dhe.LLMConfig(cfg.Dim, 1))
	oramB := circuitBytes(cfg.Vocab, cfg.Dim)
	// Trunk parameters: 12·d² per layer + head/embedding.
	trunk := int64(cfg.Layers) * 12 * int64(cfg.Dim) * int64(cfg.Dim) * 4
	model := trunk + table // tied head

	r := Report{
		ID:      "llm-memory",
		Title:   "GPT-2 medium embedding representation footprint",
		Headers: []string{"representation", "size (MB)", "overhead vs table model"},
	}
	r.AddRow("Token table (tied head)", mb(table), "baseline")
	r.AddRow("DHE (+ untied head)", mb(d+table), fmt.Sprintf("+%.1f%%", 100*float64(d)/float64(model)))
	r.AddRow("Circuit ORAM table", mb(oramB), fmt.Sprintf("+%.1f%%", 100*float64(oramB-table)/float64(model)))
	r.AddNote("paper §VI-D3: DHE adds 56 MB (≈4%%) to the 1353 MB model; ORAM's 513.6 MB adds 38%%")
	return r
}
