package experiments

import (
	"fmt"
	"math"

	"secemb/internal/cache"
	"secemb/internal/data"
	"secemb/internal/dhe"
	"secemb/internal/perf"
)

// Fig2 reproduces the taxonomy comparison of Figure 2: normalized latency
// and memory footprint of storage vs computation-based embedding
// generation for a representative DLRM feature (1e6 rows, dim 64,
// batch 32), plus the secure variants.
func Fig2() Report {
	const rows, dim, batch = 1_000_000, 64, 32
	p := perf.IceLake(1)
	look := p.LookupNs(dim, batch)
	lookMem := float64(rows) * dim * 4

	r := Report{
		ID:      "fig2",
		Title:   "Embedding generation methods, normalized to table lookup (1e6 rows, dim 64, batch 32)",
		Headers: []string{"method", "secure", "latency (norm)", "memory (norm)"},
	}
	type row struct {
		name   string
		secure string
		ns     float64
		mem    float64
	}
	uni := dhe.UniformConfig(dim, 1)
	dheMem := float64(dheBytes(uni))
	for _, e := range []row{
		{"Table: index lookup", "no", look, lookMem},
		{"Table: linear scan", "yes", p.ScanNs(rows, dim, batch), lookMem},
		{"Table: Circuit ORAM", "yes", p.CircuitNs(rows, dim, batch), float64(circuitBytes(rows, dim))},
		{"DHE (Uniform)", "yes", p.DHENs(uni, batch), dheMem},
	} {
		r.AddRow(e.name, e.secure,
			fmt.Sprintf("%.1f", e.ns/look),
			fmt.Sprintf("%.3f", e.mem/lookMem))
	}
	r.AddNote("paper Figure 2: lookup is fastest but insecure; DHE trades compute for a tiny footprint")
	return r
}

// Fig3 runs the cache side-channel attack of §III (Figure 3): per-
// eviction-set probe latency against the unprotected lookup, recovering
// the victim index, then against the protected linear scan.
func Fig3() Report {
	v := &cache.Victim{Base: 0, NumRows: 256, LinesPerRow: 4, Cache: cache.New(cache.DefaultConfig())}
	a := cache.NewAttacker(v, 25)
	const victimIdx = 2 // "the actual victim index is 2" (Fig. 3 caption)
	leaky := a.Run(victimIdx, 10, 0, v.Lookup, nil)
	protected := a.Run(victimIdx, 10, 0, v.LinearScan, nil)

	r := Report{
		ID:      "fig3",
		Title:   "Cache attack: avg probe latency per eviction set (victim index = 2, 10 trials)",
		Headers: []string{"eviction set", "lookup (cycles)", "linear scan (cycles)"},
	}
	for i := range leaky.Latency {
		r.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.0f", leaky.Latency[i]),
			fmt.Sprintf("%.0f", protected.Latency[i]))
	}
	r.AddNote("attack guess against lookup: index %d (correct: %d)", leaky.Guess(), victimIdx)
	r.AddNote("against linear scan the profile is flat: every set shows identical latency")
	return r
}

// Fig4 reproduces the latency-vs-table-size curves (Figure 4) for
// embedding dims 16 and 64 at batch 32, 1 thread, under the Ice Lake
// platform model.
func Fig4(quick bool) Report {
	sizes := []int{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000}
	if quick {
		sizes = []int{100, 10_000, 1_000_000}
	}
	p := perf.IceLake(1)
	const batch = 32
	r := Report{
		ID:    "fig4",
		Title: "Secure embedding generation latency (ms per batch of 32, 1 thread)",
		Headers: []string{"dim", "table size", "linear scan", "path oram",
			"circuit oram", "dhe uniform", "dhe varied"},
	}
	for _, dim := range []int{16, 64} {
		for _, n := range sizes {
			r.AddRow(
				fmt.Sprintf("%d", dim),
				fmt.Sprintf("%.0e", float64(n)),
				ms(p.ScanNs(n, dim, batch)),
				ms(p.PathNs(n, dim, batch)),
				ms(p.CircuitNs(n, dim, batch)),
				ms(p.DHENs(dhe.UniformConfig(dim, 1), batch)),
				ms(p.DHENs(dhe.VariedConfig(dim, n, 1), batch)),
			)
		}
	}
	r.AddNote("paper Figure 4: scan wins small tables; DHE flat; Circuit < Path; scan/Path impractical at 1e7")
	return r
}

// Fig5 reproduces the LLM token-embedding latency vs embedding dimension
// for several generation batch sizes (Figure 5): vocabulary 50257,
// 16 threads.
func Fig5(quick bool) Report {
	dims := []int{768, 1024, 2048, 4096, 8192}
	batches := []int{1, 8, 64, 256, 2048}
	if quick {
		dims = []int{768, 1024}
		batches = []int{1, 256}
	}
	const vocab = 50257
	p := perf.IceLake(16)
	r := Report{
		ID:      "fig5",
		Title:   "LLM embedding generation latency (ms per batch; vocab 50257, 16 threads)",
		Headers: []string{"dim", "batch", "lookup", "linear scan", "circuit oram", "dhe", "best secure"},
	}
	for _, dim := range dims {
		cfg := dhe.LLMConfig(dim, 1)
		for _, b := range batches {
			scan := p.ScanNs(vocab, dim, b)
			circ := p.CircuitNs(vocab, dim, b)
			d := p.DHENs(cfg, b)
			best := "DHE"
			switch {
			case scan < circ && scan < d:
				best = "Linear Scan"
			case circ < d:
				best = "Circuit ORAM"
			}
			r.AddRow(fmt.Sprintf("%d", dim), fmt.Sprintf("%d", b),
				ms(p.LookupNs(dim, b)), ms(scan), ms(circ), ms(d), best)
		}
	}
	r.AddNote("paper Figure 5: DHE wins large batches (prefill); Circuit ORAM competitive at batch 1 (decode)")
	return r
}

// Fig6 reproduces the profiled scan/DHE threshold table sizes across
// execution configurations (Figure 6), dim 64, under the platform model.
func Fig6(quick bool) Report {
	batches := []int{1, 8, 32, 128, 512}
	threads := []int{1, 2, 4, 8, 16}
	if quick {
		batches = []int{1, 32}
		threads = []int{1, 8}
	}
	r := Report{
		ID:      "fig6",
		Title:   "Scan/DHE-Uniform switching threshold (table size) per execution config, dim 64",
		Headers: []string{"batch", "threads", "threshold"},
	}
	for _, b := range batches {
		for _, th := range threads {
			r.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", th),
				fmt.Sprintf("%d", ModelThreshold(64, b, th)))
		}
	}
	r.AddNote("paper Figure 6: thresholds fall with batch size, rise with thread count (≈3300 at batch 32/1 thread)")
	return r
}

// ModelThreshold finds the table size where DHE Uniform overtakes the
// linear scan under the platform model, by bisection over [10, 1e8].
func ModelThreshold(dim, batch, threads int) int {
	p := perf.IceLake(threads)
	cfg := dhe.UniformConfig(dim, 1)
	d := p.DHENs(cfg, batch)
	lo, hi := 10.0, 1e8
	if p.ScanNs(int(lo), dim, batch) > d {
		return int(lo)
	}
	if p.ScanNs(int(hi), dim, batch) < d {
		return int(hi)
	}
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi)
		if p.ScanNs(int(mid), dim, batch) < d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int(math.Round(math.Sqrt(lo * hi)))
}

// ModelThresholdVaried finds the crossing of the scan against the
// size-scaled (Varied) DHE — both costs depend on n, so walk a log grid
// and return the first size where Varied DHE wins.
func ModelThresholdVaried(dim, batch, threads int) int {
	p := perf.IceLake(threads)
	prev := 10
	for n := 10; n <= 100_000_000; n = n * 5 / 4 {
		if p.DHENs(dhe.VariedConfig(dim, n, 1), batch) < p.ScanNs(n, dim, batch) {
			return (n + prev) / 2
		}
		prev = n
	}
	return 100_000_000
}

// Fig7 classifies the Criteo tables against the threshold range of all
// profiled configurations (Figure 7): below the range → always linear
// scan; inside → hybrid (config-dependent); above → always DHE.
func Fig7() Report {
	lo, hi := thresholdRange(64)
	r := Report{
		ID:      "fig7",
		Title:   fmt.Sprintf("Criteo tables vs hybrid threshold range [%d, %d] (dim-64 profile)", lo, hi),
		Headers: []string{"dataset", "always scan", "hybrid range", "always DHE", "DHE share of table bytes"},
	}
	for _, ds := range []struct {
		name  string
		cards []int
	}{{"Kaggle", data.KaggleCardinalities}, {"Terabyte", data.TerabyteCardinalities}} {
		scan, hyb, dheN := 0, 0, 0
		var dheBytesSum, total int64
		for _, n := range ds.cards {
			switch {
			case n <= lo:
				scan++
			case n <= hi:
				hyb++
			default:
				dheN++
			}
			if n > hi {
				dheBytesSum += int64(n)
			}
			total += int64(n)
		}
		r.AddRow(ds.name, fmt.Sprintf("%d", scan), fmt.Sprintf("%d", hyb), fmt.Sprintf("%d", dheN),
			fmt.Sprintf("%.1f%%", 100*float64(dheBytesSum)/float64(total)))
	}
	r.AddNote("paper Figure 7: 7 (Kaggle) / 9 (Terabyte) tables always benefit from DHE — 99.7%% of table memory")
	return r
}

// thresholdRange returns the min/max model thresholds over the Fig. 6
// configuration grid.
func thresholdRange(dim int) (lo, hi int) {
	lo, hi = math.MaxInt64, 0
	for _, b := range []int{1, 8, 32, 128, 512} {
		for _, th := range []int{1, 2, 4, 8, 16} {
			t := ModelThreshold(dim, b, th)
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	return lo, hi
}
