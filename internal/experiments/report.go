// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md §3). Each Fig*/Table*
// function returns a Report that cmd/experiments renders, the root-level
// benchmarks re-run under testing.B, and EXPERIMENTS.md records against
// the paper's numbers.
//
// Experiments come in three measurement modes, chosen per figure by what
// the host can faithfully reproduce (see internal/perf's package comment):
// real wall-clock execution of this repository's implementations (attack,
// ORAM variants, finetuning, accuracy); the calibrated Ice Lake platform
// model (latency crossover figures); and exact footprint accounting
// (memory tables).
package experiments

import (
	"fmt"
	"strings"
)

// Report is one regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note rendered under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned plain-text table.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms formats nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }

// mb formats bytes as megabytes.
func mb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1e6) }

// speedup renders a ratio like the paper's "(2.01×↑)" annotations.
func speedup(baselineNs, ns float64) string {
	r := baselineNs / ns
	if r >= 1 {
		return fmt.Sprintf("%.2fx faster", r)
	}
	return fmt.Sprintf("%.2fx slower", 1/r)
}
