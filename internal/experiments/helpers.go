package experiments

import (
	"secemb/internal/dhe"
	"secemb/internal/oram"
	"secemb/internal/perf"
)

// dheBytes is the parameter footprint of a DHE architecture: hash
// parameters (16 B each) plus decoder weights and biases (float32).
func dheBytes(cfg dhe.Config) int64 {
	dims := append(append([]int{cfg.K}, cfg.Hidden...), cfg.Dim)
	var words int64
	for i := 0; i+1 < len(dims); i++ {
		words += int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	return words*4 + int64(cfg.K)*16
}

// circuitBytes / pathBytes are the analytic tree-ORAM footprints.
func circuitBytes(rows, dim int) int64 { return oram.CircuitFootprintBytes(rows, dim) }
func pathBytes(rows, dim int) int64    { return oram.PathFootprintBytes(rows, dim) }

// techNs prices one feature's embedding generation under the platform
// model for the named technique string.
func techNs(p perf.Platform, tech string, rows, dim, batch int, seed int64) float64 {
	switch tech {
	case "lookup":
		return p.LookupNs(dim, batch)
	case "scan":
		return p.ScanNs(rows, dim, batch)
	case "path":
		return p.PathNs(rows, dim, batch)
	case "circuit":
		return p.CircuitNs(rows, dim, batch)
	case "dheU":
		return p.DHENs(dhe.UniformConfig(dim, seed), batch)
	case "dheV":
		return p.DHENs(dhe.VariedConfig(dim, rows, seed), batch)
	}
	panic("experiments: unknown technique " + tech)
}

// hybridNs picks min(scan, DHE-of-kind) per feature — Algorithm 3 with the
// model-profiled threshold folded in (choosing the cheaper of the two IS
// the threshold decision).
func hybridNs(p perf.Platform, kind string, rows, dim, batch int, seed int64) float64 {
	scan := p.ScanNs(rows, dim, batch)
	d := techNs(p, kind, rows, dim, batch, seed)
	if scan < d {
		return scan
	}
	return d
}

// hybridBytes accounts the hybrid model memory: features below the
// threshold hold a materialized table (scanned), the rest hold only their
// DHE parameters.
func hybridBytes(kind string, rows, dim, threshold int, seed int64) int64 {
	if rows <= threshold {
		return int64(rows) * int64(dim) * 4
	}
	if kind == "dheU" {
		return dheBytes(dhe.UniformConfig(dim, seed))
	}
	return dheBytes(dhe.VariedConfig(dim, rows, seed))
}

// mlpNs prices a DLRM's bottom+top MLP forward pass (batch rows) on the
// platform model, including the feature-interaction dot products.
func mlpNs(p perf.Platform, denseDim, embDim int, bottomHidden, topHidden []int, numSparse, batch int) float64 {
	var flops float64
	dims := append(append([]int{denseDim}, bottomHidden...), embDim)
	for i := 0; i+1 < len(dims); i++ {
		flops += 2 * float64(dims[i]) * float64(dims[i+1])
	}
	m := numSparse + 1
	interIn := embDim + m*(m-1)/2
	tdims := append(append([]int{interIn}, topHidden...), 1)
	for i := 0; i+1 < len(tdims); i++ {
		flops += 2 * float64(tdims[i]) * float64(tdims[i+1])
	}
	flops += float64(m*(m-1)/2) * 2 * float64(embDim) // interaction dots
	return float64(batch) * flops * p.FlopNs
}
