package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"secemb/internal/core"
	"secemb/internal/data"
	"secemb/internal/dhe"
	"secemb/internal/dlrm"
	"secemb/internal/nn"
	"secemb/internal/perf"
)

// criteoModel groups one dataset's accounting inputs.
type criteoModel struct {
	name         string
	cards        []int
	dim          int
	bottomHidden []int
	topHidden    []int
}

func kaggleModel() criteoModel {
	return criteoModel{"Kaggle", data.KaggleCardinalities, 16, []int{512, 256, 64}, []int{512, 256}}
}
func terabyteModel() criteoModel {
	return criteoModel{"Terabyte", data.TerabyteCardinalities, 64, []int{512, 256}, []int{512, 512, 256}}
}

// e2eNs prices a full DLRM inference (MLPs + interaction + all 26 sparse
// features under the given technique) at batch size `batch`, 1 thread.
func (m criteoModel) e2eNs(tech string, batch int) float64 {
	p := perf.IceLake(1)
	total := mlpNs(p, 13, m.dim, m.bottomHidden, m.topHidden, len(m.cards), batch)
	for i, n := range m.cards {
		switch tech {
		case "hybridU":
			total += hybridNs(p, "dheU", n, m.dim, batch, int64(i))
		case "hybridV":
			total += hybridNs(p, "dheV", n, m.dim, batch, int64(i))
		default:
			total += techNs(p, tech, n, m.dim, batch, int64(i))
		}
	}
	return total
}

// TableVII reproduces the end-to-end DLRM latency table: every technique,
// batch 32, 1 thread, with speedups relative to Circuit ORAM.
func TableVII() Report {
	r := Report{
		ID:      "tableVII",
		Title:   "DLRM end-to-end model latency (ms, batch 32, 1 thread)",
		Headers: []string{"technique", "Kaggle", "vs Circuit", "Terabyte", "vs Circuit"},
	}
	k, t := kaggleModel(), terabyteModel()
	kC, tC := k.e2eNs("circuit", 32), t.e2eNs("circuit", 32)
	for _, tech := range []struct{ key, label string }{
		{"lookup", "Index Lookup (non-secure)"},
		{"scan", "Linear Scan"},
		{"path", "Path ORAM"},
		{"circuit", "Circuit ORAM"},
		{"dheU", "DHE Uniform"},
		{"dheV", "DHE Varied"},
		{"hybridU", "Hybrid Uniform"},
		{"hybridV", "Hybrid Varied"},
	} {
		kNs, tNs := k.e2eNs(tech.key, 32), t.e2eNs(tech.key, 32)
		r.AddRow(tech.label, ms(kNs), speedup(kC, kNs), ms(tNs), speedup(tC, tNs))
	}
	r.AddNote("paper Table VII: Hybrid Varied 2.01x (Kaggle) / 2.28x (Terabyte) over Circuit ORAM; scan in the seconds")
	return r
}

// Fig12 reproduces the batch-size scaling of end-to-end latency
// (Figure 12): the hybrid's advantage over Circuit ORAM grows with the
// batch because ORAM accesses serialize.
func Fig12(quick bool) Report {
	batches := []int{8, 16, 32, 64, 128}
	if quick {
		batches = []int{32, 128}
	}
	r := Report{
		ID:      "fig12",
		Title:   "End-to-end DLRM latency vs batch size (ms, 1 thread)",
		Headers: []string{"dataset", "batch", "circuit oram", "dhe varied", "hybrid varied", "hybrid vs circuit"},
	}
	for _, m := range []criteoModel{kaggleModel(), terabyteModel()} {
		for _, b := range batches {
			c := m.e2eNs("circuit", b)
			h := m.e2eNs("hybridV", b)
			r.AddRow(m.name, fmt.Sprintf("%d", b), ms(c), ms(m.e2eNs("dheV", b)), ms(h), speedup(c, h))
		}
	}
	r.AddNote("paper Figure 12: hybrid/circuit ratio grows from 2.01x/2.28x at batch 32 to 2.61x/3.08x at batch 128")
	return r
}

// Fig11 reproduces the threshold sweep (Figure 11): end-to-end latency of
// the Hybrid Varied Kaggle model as the scan/DHE split point moves across
// the sorted tables; the profiled threshold should land at (or next to)
// the empirical best.
func Fig11() Report {
	m := kaggleModel()
	p := perf.IceLake(1)
	const batch = 32
	sorted := append([]int(nil), m.cards...)
	sort.Ints(sorted)
	base := mlpNs(p, 13, m.dim, m.bottomHidden, m.topHidden, len(m.cards), batch)
	r := Report{
		ID:      "fig11",
		Title:   "Kaggle Hybrid-Varied latency vs allocation split (tables sorted by size; first k use scan)",
		Headers: []string{"k (scan tables)", "threshold size", "latency (ms)"},
	}
	best, bestK := -1.0, 0
	for k := 0; k <= len(sorted); k++ {
		total := base
		for i, n := range sorted {
			if i < k {
				total += p.ScanNs(n, m.dim, batch)
			} else {
				total += techNs(p, "dheV", n, m.dim, batch, int64(i))
			}
		}
		thr := "-"
		if k > 0 {
			thr = fmt.Sprintf("%d", sorted[k-1])
		}
		r.AddRow(fmt.Sprintf("%d", k), thr, ms(total))
		if best < 0 || total < best {
			best, bestK = total, k
		}
	}
	// Where would the profiled (Varied) threshold put the split? The sweep
	// runs the Hybrid *Varied* model, so the relevant profile compares the
	// scan against the size-scaled DHE, not the Uniform one.
	profiled := ModelThresholdVaried(m.dim, batch, 1)
	profK := 0
	for _, n := range sorted {
		if n <= profiled {
			profK++
		}
	}
	r.AddNote("empirical best split k=%d; profiled threshold %d puts k=%d (off by %d)",
		bestK, profiled, profK, abs(bestK-profK))
	r.AddNote("paper Figure 11: the profiled threshold matches the best empirical allocation")
	return r
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TableVI reproduces the model memory-footprint table: raw table,
// tree-ORAM, DHE Uniform/Varied, Hybrid Uniform/Varied, for both Criteo
// datasets.
func TableVI() Report {
	r := Report{
		ID:      "tableVI",
		Title:   "DLRM model memory footprint (MB; % of table representation)",
		Headers: []string{"representation", "Kaggle (MB)", "Kaggle %", "Terabyte (MB)", "Terabyte %"},
	}
	row := func(label string, f func(m criteoModel) int64) {
		k, t := kaggleModel(), terabyteModel()
		kb, tb := f(k), f(t)
		kTbl, tTbl := data.TableBytes(k.cards, k.dim), data.TableBytes(t.cards, t.dim)
		r.AddRow(label, mb(kb), fmt.Sprintf("%.2f%%", 100*float64(kb)/float64(kTbl)),
			mb(tb), fmt.Sprintf("%.2f%%", 100*float64(tb)/float64(tTbl)))
	}
	row("Table", func(m criteoModel) int64 { return data.TableBytes(m.cards, m.dim) })
	row("Tree-ORAM", func(m criteoModel) int64 {
		var total int64
		for _, n := range m.cards {
			total += circuitBytes(n, m.dim)
		}
		return total
	})
	row("DHE Uniform", func(m criteoModel) int64 { return dheModelBytes(m, "dheU", -1) })
	row("DHE Varied", func(m criteoModel) int64 { return dheModelBytes(m, "dheV", -1) })
	thr := ModelThreshold(64, 32, 1)
	row("Hybrid Uniform", func(m criteoModel) int64 { return dheModelBytes(m, "dheU", thr) })
	row("Hybrid Varied", func(m criteoModel) int64 { return dheModelBytes(m, "dheV", thr) })
	r.AddNote("paper Table VI: Hybrid Varied 24.9 MB (1.20%%) Kaggle / 36.2 MB (0.30%%) Terabyte; Tree-ORAM >3.2x the table")
	return r
}

// dheModelBytes sums per-feature representation bytes; threshold < 0
// means all-DHE, otherwise features at/below it hold materialized tables.
func dheModelBytes(m criteoModel, kind string, threshold int) int64 {
	var total int64
	for i, n := range m.cards {
		t := threshold
		if t < 0 {
			t = 0
		}
		total += hybridBytes(kind, n, m.dim, t, int64(i))
	}
	return total
}

// TableVIII reproduces the Meta-dataset study: embedding-layer latency
// and memory for a 788-table production-scale model, dim 64, batch 32.
func TableVIII(quick bool) Report {
	cards := data.MetaCardinalities(2022)
	if quick {
		cards = cards[:64]
	}
	p := perf.IceLake(1)
	const batch = 32
	r := Report{
		ID:      "tableVIII",
		Title:   fmt.Sprintf("Meta-dataset model (%d tables, dim 64): embedding latency and memory", len(cards)),
		Headers: []string{"technique", "latency (ms)", "vs Circuit", "memory (MB)", "% of table"},
	}
	tableBytes := data.TableBytes(cards, 64)
	var circuitLat float64
	type techRow struct {
		key, label string
	}
	lat := map[string]float64{}
	memB := map[string]int64{}
	thr := ModelThreshold(64, batch, 1)
	for _, tr := range []techRow{
		{"lookup", "Index Lookup (non-secure)"}, {"scan", "Linear Scan"},
		{"path", "Path ORAM"}, {"circuit", "Circuit ORAM"},
		{"dheU", "DHE Uniform"}, {"dheV", "DHE Varied"},
		{"hybridU", "Hybrid Uniform"}, {"hybridV", "Hybrid Varied"},
	} {
		var total float64
		var bytes int64
		for i, n := range cards {
			switch tr.key {
			case "hybridU":
				total += hybridNs(p, "dheU", n, 64, batch, int64(i))
				bytes += hybridBytes("dheU", n, 64, thr, int64(i))
			case "hybridV":
				total += hybridNs(p, "dheV", n, 64, batch, int64(i))
				bytes += hybridBytes("dheV", n, 64, thr, int64(i))
			default:
				total += techNs(p, tr.key, n, 64, batch, int64(i))
				switch tr.key {
				case "lookup", "scan":
					bytes += int64(n) * 64 * 4
				case "path":
					bytes += pathBytes(n, 64)
				case "circuit":
					bytes += circuitBytes(n, 64)
				case "dheU":
					bytes += hybridBytes("dheU", n, 64, 0, int64(i))
				case "dheV":
					bytes += hybridBytes("dheV", n, 64, 0, int64(i))
				}
			}
		}
		lat[tr.key], memB[tr.key] = total, bytes
		if tr.key == "circuit" {
			circuitLat = total
		}
	}
	for _, tr := range []techRow{
		{"lookup", "Index Lookup (non-secure)"}, {"scan", "Linear Scan"},
		{"path", "Path ORAM"}, {"circuit", "Circuit ORAM"},
		{"dheU", "DHE Uniform"}, {"dheV", "DHE Varied"},
		{"hybridU", "Hybrid Uniform"}, {"hybridV", "Hybrid Varied"},
	} {
		r.AddRow(tr.label, ms(lat[tr.key]), speedup(circuitLat, lat[tr.key]),
			mb(memB[tr.key]), fmt.Sprintf("%.2f%%", 100*float64(memB[tr.key])/float64(tableBytes)))
	}
	r.AddNote("paper Table VIII: Hybrid Varied 2.40x over Circuit ORAM; DHE models ~0.13%% of the 931 GB table")
	return r
}

// TableV reproduces the accuracy-parity experiment: a miniature Criteo
// layout with planted ground truth, trained with table embeddings and
// with DHE embeddings; all reach the same accuracy.
func TableV(quick bool) Report {
	factor := 2e-4 // miniature cardinalities (max ≈ 2000 rows)
	steps, evalBatches := 250, 12
	nFeat := 8
	if quick {
		steps, evalBatches, nFeat = 80, 6, 4
	}
	cards := data.ScaleCardinalities(data.KaggleCardinalities, factor)[:nFeat]
	cfg := dlrm.Config{
		DenseDim: 13, EmbDim: 16,
		BottomHidden: []int{64, 32}, TopHidden: []int{64},
		Cardinalities: cards, Seed: 5,
	}
	ds := data.NewCTR(cfg.DenseDim, cards, 99)

	r := Report{
		ID:      "tableV",
		Title:   fmt.Sprintf("DLRM accuracy parity on planted-truth mini-Criteo (%d features, %d steps)", nFeat, steps),
		Headers: []string{"embedding", "accuracy"},
	}
	// Miniature DHE architectures scaled to the miniature tables ("sized
	// for no loss", Table I): the paper's k=1024 decoders are for 1e7-row
	// features and would be severely overparameterized (and untrainably
	// slow on one core) here.
	miniUniform := func(n int, seed int64) dhe.Config {
		return dhe.Config{K: 96, Hidden: []int{64, 32}, Dim: cfg.EmbDim, Seed: seed}
	}
	miniVaried := func(n int, seed int64) dhe.Config {
		c := miniUniform(n, seed)
		if n < 200 {
			c.K, c.Hidden = 48, []int{32, 16}
		}
		return c
	}
	buildReps := func(mk func(n int, seed int64) dhe.Config) []core.TrainableRep {
		rng := rand.New(rand.NewSource(cfg.Seed))
		reps := make([]core.TrainableRep, len(cards))
		for i, n := range cards {
			reps[i] = core.NewDHERep(dhe.New(mk(n, int64(i+1)), rng), n)
		}
		return reps
	}
	var accs []float64
	for _, k := range []struct {
		label string
		mk    func() *dlrm.Model
	}{
		{"Table", func() *dlrm.Model { return dlrm.New(cfg, dlrm.TableEmb) }},
		{"DHE Uniform (mini)", func() *dlrm.Model { return dlrm.NewWithReps(cfg, buildReps(miniUniform)) }},
		{"DHE Varied (mini)", func() *dlrm.Model { return dlrm.NewWithReps(cfg, buildReps(miniVaried)) }},
	} {
		m := k.mk()
		m.Train(ds, steps, 64, nn.NewAdam(0.005), 7)
		acc := m.Accuracy(ds, evalBatches, 128, 1234)
		accs = append(accs, acc)
		r.AddRow(k.label, fmt.Sprintf("%.2f%%", 100*acc))
	}
	spread := 0.0
	for _, a := range accs {
		d := a - accs[0]
		if d < 0 {
			d = -d
		}
		if d > spread {
			spread = d
		}
	}
	r.AddNote("max accuracy spread across representations: %.2f points", 100*spread)
	r.AddNote("paper Table V: 78.82%% / 78.82%% / 78.82%% (Kaggle) — DHE matches the table with proper sizing")
	return r
}
