package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

// largeTrace synthesizes a >1M-access trace with realistic structure:
// several regions, mixed ops, and block values spanning the int64 range
// actually used (row indices, level-shifted DHE blocks).
func largeTrace(n int) Trace {
	regions := []string{"scan", "path.tree", "path.stash", "dhe"}
	t := make(Trace, n)
	for i := range t {
		r := regions[i%len(regions)]
		block := int64(i % 4096)
		if r == "dhe" {
			block = int64(i%4)<<32 + int64(i%100)
		}
		op := Read
		if i%7 == 0 {
			op = Write
		}
		t[i] = Access{Region: r, Block: block, Op: op}
	}
	return t
}

// TestExportImportRoundTripLarge pushes the text codec past 1M accesses —
// the size of a real ORAM batch trace — and demands a lossless round trip.
func TestExportImportRoundTripLarge(t *testing.T) {
	const n = 1<<20 + 12345 // > 1M, deliberately not a power of two
	tr := largeTrace(n)
	var buf bytes.Buffer
	wrote, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", wrote, buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != n {
		t.Fatalf("round trip length %d, want %d", len(back), n)
	}
	if d := tr.FirstDiff(back); d != -1 {
		t.Fatalf("round trip diverges at %d: %v vs %v", d, tr[d], back[d])
	}
}

func TestExportImportRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := Trace(nil).WriteTo(&buf)
	if err != nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("empty WriteTo: n=%d len=%d err=%v", n, buf.Len(), err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back) != 0 {
		t.Fatalf("empty ReadTrace: %v, %v", back, err)
	}
}

func TestExportImportSingleRegion(t *testing.T) {
	tr := Trace{
		{Region: "only", Block: 0, Op: Read},
		{Region: "only", Block: 9223372036854775807, Op: Write}, // max int64 block
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back) {
		t.Fatalf("round trip %v, want %v", back, tr)
	}
}
