package memtrace

import "math"

// ChiSquareUniform returns the chi-squared statistic of counts against the
// uniform distribution over len(counts) bins. Used by the ORAM security
// tests: the leaves fetched by a tree ORAM must be indistinguishable from
// uniform regardless of the logical access sequence.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	expected := float64(total) / float64(len(counts))
	var chi float64
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// ChiSquareCritical999 returns an approximate 99.9% critical value for the
// chi-squared distribution with df degrees of freedom, using the
// Wilson–Hilferty cube-root normal approximation. Tests comparing observed
// ORAM leaf histograms to uniform reject only beyond this value, keeping
// the randomized tests stable across seeds.
func ChiSquareCritical999(df int) float64 {
	if df <= 0 {
		return 0
	}
	const z = 3.0902 // Φ⁻¹(0.999)
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// TotalVariation returns the total-variation distance between two
// histograms over the same key space, each normalized to a probability
// distribution. 0 means identical; 1 means disjoint support.
func TotalVariation(a, b map[int64]int) float64 {
	var na, nb float64
	for _, c := range a {
		na += float64(c)
	}
	for _, c := range b {
		nb += float64(c)
	}
	if na == 0 || nb == 0 {
		if na == nb {
			return 0
		}
		return 1
	}
	keys := map[int64]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var tv float64
	for k := range keys {
		tv += math.Abs(float64(a[k])/na - float64(b[k])/nb)
	}
	return tv / 2
}

// MutualInformationBits estimates the mutual information (in bits) between
// a secret value and the observed block of its first data access, given
// per-secret access histograms: leak[s] is the histogram of observed blocks
// when the secret is s. Secrets are assumed uniform. A perfectly leaky
// lookup table yields log2(#secrets) bits; a secure scheme yields ~0.
func MutualInformationBits(leak []map[int64]int) float64 {
	n := len(leak)
	if n == 0 {
		return 0
	}
	pSecret := 1.0 / float64(n)
	// Marginal over observations.
	marginal := map[int64]float64{}
	perSecret := make([]map[int64]float64, n)
	for s, h := range leak {
		total := 0
		for _, c := range h {
			total += c
		}
		dist := map[int64]float64{}
		if total > 0 {
			for k, c := range h {
				p := float64(c) / float64(total)
				dist[k] = p
				marginal[k] += pSecret * p
			}
		}
		perSecret[s] = dist
	}
	var mi float64
	for s := 0; s < n; s++ {
		for k, p := range perSecret[s] {
			if p <= 0 || marginal[k] <= 0 {
				continue
			}
			mi += pSecret * p * math.Log2(p/marginal[k])
		}
	}
	if mi < 0 { // numeric noise
		mi = 0
	}
	return mi
}
