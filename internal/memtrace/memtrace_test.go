package memtrace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Touch("x", 1, Read) // must not panic
	tr.TouchRange("x", 0, 3, Write)
	tr.Reset()
	if tr.Enabled() || tr.Len() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer must behave as disabled/empty")
	}
}

func TestZeroValueDisabled(t *testing.T) {
	var tr Tracer
	tr.Touch("x", 1, Read)
	if tr.Len() != 0 {
		t.Fatal("zero-value tracer must not record")
	}
	tr.Enable()
	tr.Touch("x", 1, Read)
	if tr.Len() != 1 {
		t.Fatal("enabled tracer must record")
	}
	tr.Disable()
	tr.Touch("x", 2, Read)
	if tr.Len() != 1 {
		t.Fatal("disabled tracer must stop recording")
	}
}

func TestTouchRangeAndSnapshot(t *testing.T) {
	tr := NewEnabled()
	tr.TouchRange("tbl", 2, 5, Write)
	got := tr.Snapshot()
	want := Trace{{"tbl", 2, Write}, {"tbl", 3, Write}, {"tbl", 4, Write}}
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Snapshot must be a copy.
	got[0].Block = 99
	if tr.Snapshot()[0].Block != 2 {
		t.Fatal("Snapshot must copy")
	}
}

func TestReset(t *testing.T) {
	tr := NewEnabled()
	tr.Touch("a", 1, Read)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset must clear trace")
	}
}

func TestTraceEqualAndFirstDiff(t *testing.T) {
	a := Trace{{"t", 1, Read}, {"t", 2, Read}}
	b := Trace{{"t", 1, Read}, {"t", 2, Read}}
	c := Trace{{"t", 1, Read}, {"t", 3, Read}}
	d := Trace{{"t", 1, Read}}
	if !a.Equal(b) || a.FirstDiff(b) != -1 {
		t.Fatal("identical traces must compare equal")
	}
	if a.Equal(c) || a.FirstDiff(c) != 1 {
		t.Fatalf("FirstDiff(a,c)=%d, want 1", a.FirstDiff(c))
	}
	if a.Equal(d) || a.FirstDiff(d) != 1 {
		t.Fatalf("FirstDiff(a,d)=%d, want 1", a.FirstDiff(d))
	}
}

func TestBlocksAndHistogram(t *testing.T) {
	tr := NewEnabled()
	tr.Touch("t", 5, Read)
	tr.Touch("t", 3, Read)
	tr.Touch("t", 5, Write)
	tr.Touch("other", 9, Read)
	blocks := tr.Snapshot().Blocks("t")
	if len(blocks) != 2 || blocks[0] != 3 || blocks[1] != 5 {
		t.Fatalf("Blocks=%v", blocks)
	}
	h := tr.Snapshot().Histogram("t")
	if h[5] != 2 || h[3] != 1 || len(h) != 2 {
		t.Fatalf("Histogram=%v", h)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String mismatch")
	}
	a := Access{"tbl", 7, Write}
	if a.String() != "W@tbl[7]" {
		t.Fatalf("Access.String=%q", a.String())
	}
}

func TestChiSquareUniform(t *testing.T) {
	if ChiSquareUniform(nil) != 0 || ChiSquareUniform([]int{0, 0}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
	// Perfectly uniform → 0.
	if v := ChiSquareUniform([]int{10, 10, 10, 10}); v != 0 {
		t.Fatalf("uniform chi² = %v, want 0", v)
	}
	// Concentrated → large.
	if v := ChiSquareUniform([]int{40, 0, 0, 0}); v <= 100 {
		t.Fatalf("concentrated chi² = %v, want > 100", v)
	}
}

func TestChiSquareUniformSamples(t *testing.T) {
	// Draw genuinely uniform samples; statistic should sit below the
	// 99.9% critical value.
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 64)
	for i := 0; i < 64*200; i++ {
		counts[rng.Intn(64)]++
	}
	chi := ChiSquareUniform(counts)
	if crit := ChiSquareCritical999(63); chi > crit {
		t.Fatalf("uniform samples rejected: chi²=%v > crit=%v", chi, crit)
	}
}

func TestChiSquareCritical999(t *testing.T) {
	// Known reference: df=10 → ≈29.59, df=100 → ≈149.45.
	if v := ChiSquareCritical999(10); math.Abs(v-29.59) > 1.0 {
		t.Fatalf("crit(10)=%v, want ≈29.59", v)
	}
	if v := ChiSquareCritical999(100); math.Abs(v-149.45) > 2.0 {
		t.Fatalf("crit(100)=%v, want ≈149.45", v)
	}
	if ChiSquareCritical999(0) != 0 {
		t.Fatal("crit(0) must be 0")
	}
}

func TestTotalVariation(t *testing.T) {
	a := map[int64]int{1: 10}
	b := map[int64]int{2: 10}
	if tv := TotalVariation(a, b); tv != 1 {
		t.Fatalf("disjoint TV=%v, want 1", tv)
	}
	if tv := TotalVariation(a, a); tv != 0 {
		t.Fatalf("identical TV=%v, want 0", tv)
	}
	c := map[int64]int{1: 5, 2: 5}
	if tv := TotalVariation(a, c); math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("half-overlap TV=%v, want 0.5", tv)
	}
	if tv := TotalVariation(map[int64]int{}, map[int64]int{}); tv != 0 {
		t.Fatal("empty vs empty must be 0")
	}
	if tv := TotalVariation(a, map[int64]int{}); tv != 1 {
		t.Fatal("empty vs non-empty must be 1")
	}
}

func TestMutualInformationLeakyLookup(t *testing.T) {
	// A direct table lookup: secret s always touches block s.
	leak := make([]map[int64]int, 8)
	for s := range leak {
		leak[s] = map[int64]int{int64(s): 100}
	}
	mi := MutualInformationBits(leak)
	if math.Abs(mi-3) > 1e-9 { // log2(8) = 3 bits
		t.Fatalf("leaky lookup MI=%v, want 3", mi)
	}
}

func TestMutualInformationSecureScheme(t *testing.T) {
	// Every secret produces the same observation → 0 bits.
	leak := make([]map[int64]int, 8)
	for s := range leak {
		leak[s] = map[int64]int{0: 50, 1: 50}
	}
	if mi := MutualInformationBits(leak); mi > 1e-9 {
		t.Fatalf("secure scheme MI=%v, want 0", mi)
	}
	if MutualInformationBits(nil) != 0 {
		t.Fatal("MI(nil) must be 0")
	}
}

func TestTraceExportRoundTrip(t *testing.T) {
	tr := Trace{{"tbl", 3, Read}, {"oram.tree", 17, Write}, {"stash", 0, Read}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Fatalf("round trip: %v vs %v", got, tr)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"R onlytwo",
		"X region 3",
		"R region notanumber",
	}
	for i, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d must error", i)
		}
	}
	// Blank lines tolerated.
	got, err := ReadTrace(strings.NewReader("\nR a 1\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: %v %v", got, err)
	}
}
