package memtrace

import (
	"reflect"
	"testing"
)

func TestTreeLevel(t *testing.T) {
	cases := map[int64]int64{
		0: 0,
		1: 1, 2: 1,
		3: 2, 6: 2,
		7: 3, 14: 3,
		(1 << 20) - 1: 20, (1 << 21) - 2: 20,
	}
	for block, want := range cases {
		if got := TreeLevel(block); got != want {
			t.Errorf("TreeLevel(%d) = %d, want %d", block, got, want)
		}
	}
}

func TestMapLeavesOriginalUntouched(t *testing.T) {
	orig := Trace{{Region: "a", Block: 5, Op: Read}, {Region: "b", Block: 6, Op: Write}}
	mapped := orig.Map(func(a Access) Access { a.Block = 0; return a })
	if orig[0].Block != 5 || orig[1].Block != 6 {
		t.Fatal("Map mutated its receiver")
	}
	if mapped[0].Block != 0 || mapped[1].Block != 0 {
		t.Fatal("Map did not apply f")
	}
	if mapped[0].Region != "a" || mapped[1].Op != Write {
		t.Fatal("Map dropped unmodified fields")
	}
}

func TestCanonicalizeTreeRegions(t *testing.T) {
	in := Trace{
		{Region: "path.tree", Block: 0, Op: Read},   // root → level 0
		{Region: "path.tree", Block: 2, Op: Read},   // level 1
		{Region: "path.tree", Block: 5, Op: Write},  // level 2
		{Region: "path.stash", Block: 5, Op: Read},  // non-tree: untouched
		{Region: "path.posmap", Block: 9, Op: Read}, // non-tree: untouched
		{Region: "path.pm1.tree", Block: 7, Op: Read},
	}
	got := CanonicalizeTreeRegions(in, ".tree")
	want := Trace{
		{Region: "path.tree", Block: 0, Op: Read},
		{Region: "path.tree", Block: 1, Op: Read},
		{Region: "path.tree", Block: 2, Op: Write},
		{Region: "path.stash", Block: 5, Op: Read},
		{Region: "path.posmap", Block: 9, Op: Read},
		{Region: "path.pm1.tree", Block: 3, Op: Read},
	}
	if !got.Equal(want) {
		t.Fatalf("canonicalized %v, want %v", got, want)
	}
	// Two different root→leaf paths through the same tree must
	// canonicalize to the same level sequence.
	left := CanonicalizeTreeRegions(Trace{{Region: "t.tree", Block: 0, Op: Read},
		{Region: "t.tree", Block: 1, Op: Read}, {Region: "t.tree", Block: 3, Op: Read}}, ".tree")
	right := CanonicalizeTreeRegions(Trace{{Region: "t.tree", Block: 0, Op: Read},
		{Region: "t.tree", Block: 2, Op: Read}, {Region: "t.tree", Block: 6, Op: Read}}, ".tree")
	if !left.Equal(right) {
		t.Fatalf("distinct paths did not canonicalize identically: %v vs %v", left, right)
	}
}

func TestCompareEqualAndEmpty(t *testing.T) {
	if d := Compare(nil, nil); !d.Equal() || d.Regions != nil {
		t.Fatalf("empty vs empty: %+v", d)
	}
	tr := Trace{{Region: "r", Block: 1, Op: Read}}
	if d := Compare(tr, tr); !d.Equal() || d.LenA != 1 || d.LenB != 1 {
		t.Fatalf("identical traces: %+v", d)
	}
	// Empty vs non-empty: the divergence is at offset 0 and the tail is
	// charged to its region.
	d := Compare(nil, tr)
	if d.Equal() || d.First != 0 {
		t.Fatalf("empty vs one-access: %+v", d)
	}
	if d.Regions["r"] != 1 {
		t.Fatalf("tail region charge %v, want r:1", d.Regions)
	}
}

func TestCompareSingleRegionCounts(t *testing.T) {
	a := Trace{
		{Region: "s", Block: 0, Op: Read},
		{Region: "s", Block: 1, Op: Read},
		{Region: "s", Block: 2, Op: Read},
	}
	b := Trace{
		{Region: "s", Block: 0, Op: Read},
		{Region: "s", Block: 9, Op: Read},
		{Region: "s", Block: 8, Op: Read},
	}
	d := Compare(a, b)
	if d.First != 1 {
		t.Fatalf("first diff %d, want 1", d.First)
	}
	if d.Regions["s"] != 2 || len(d.Regions) != 1 {
		t.Fatalf("region counts %v, want s:2 only", d.Regions)
	}
}

func TestCompareCrossRegionAndLength(t *testing.T) {
	a := Trace{
		{Region: "x", Block: 0, Op: Read},
		{Region: "x", Block: 1, Op: Read},
	}
	b := Trace{
		{Region: "y", Block: 0, Op: Read}, // differs in region: both charged
		{Region: "x", Block: 1, Op: Read},
		{Region: "z", Block: 2, Op: Write}, // length tail: charged to z
	}
	d := Compare(a, b)
	if d.First != 0 || d.LenA != 2 || d.LenB != 3 {
		t.Fatalf("diff header %+v", d)
	}
	want := map[string]int{"x": 1, "y": 1, "z": 1}
	if !reflect.DeepEqual(d.Regions, want) {
		t.Fatalf("region counts %v, want %v", d.Regions, want)
	}
	// Length-only difference: first diff is the shorter length.
	d = Compare(b, b[:2])
	if d.First != 2 || d.Regions["z"] != 1 {
		t.Fatalf("prefix diff %+v", d)
	}
}

// TestCompareAgreesWithOpDifference: a same-region same-block access that
// differs only in Op is still a divergence (reads vs writes are
// attacker-distinguishable).
func TestCompareAgreesWithOpDifference(t *testing.T) {
	a := Trace{{Region: "r", Block: 3, Op: Read}}
	b := Trace{{Region: "r", Block: 3, Op: Write}}
	if d := Compare(a, b); d.Equal() || d.Regions["r"] != 1 {
		t.Fatalf("op-only difference missed: %+v", d)
	}
}
