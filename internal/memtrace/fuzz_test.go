package memtrace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace: arbitrary input never panics; anything that parses must
// re-serialize to a trace that parses to the same value.
func FuzzReadTrace(f *testing.F) {
	f.Add("R tbl 3\nW oram.tree 17\n")
	f.Add("")
	f.Add("X bad 1")
	f.Add("R a notanum")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !again.Equal(tr) {
			t.Fatal("round trip changed the trace")
		}
	})
}
