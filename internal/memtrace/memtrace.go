// Package memtrace records block-granular memory access traces and checks
// them for secret-independence.
//
// The paper's security argument (§V-B, Table II) is that each protected
// embedding generator's memory access pattern either (a) is identical for
// every secret input (linear scan, DHE) or (b) is randomized such that its
// distribution is independent of the access sequence (tree ORAM). Instead of
// trusting an ISA-level implementation, this repository attaches a Tracer to
// each generator's protected memory and the test suite asserts those two
// properties directly: trace equality across secrets for deterministic
// schemes, and uniformity of ORAM path choices for randomized schemes.
//
// Blocks are abstract: callers choose the granularity (an embedding-table
// row, an ORAM tree bucket, a cache line). The paper notes (§III-A2) that
// real embedding rows span at least one cache line, so row granularity is
// what an LLC attacker observes.
package memtrace

import (
	"fmt"
	"sort"
)

// Op distinguishes reads from writes in a trace.
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// Access is one block-granular memory touch. Region identifies the logical
// memory object (table, tree, stash, position map) so traces from
// multi-structure schemes like ORAM remain interpretable.
type Access struct {
	Region string
	Block  int64
	Op     Op
}

func (a Access) String() string {
	return fmt.Sprintf("%s@%s[%d]", a.Op, a.Region, a.Block)
}

// Trace is an ordered sequence of accesses.
type Trace []Access

// Equal reports whether two traces are element-wise identical — the
// determinism property required of linear scan and DHE.
func (t Trace) Equal(u Trace) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the index of the first differing access, or -1 when the
// traces are equal. Length differences report the shorter length.
func (t Trace) FirstDiff(u Trace) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return i
		}
	}
	if len(t) != len(u) {
		return n
	}
	return -1
}

// Blocks returns the distinct blocks touched in region, sorted.
func (t Trace) Blocks(region string) []int64 {
	seen := map[int64]bool{}
	for _, a := range t {
		if a.Region == region {
			seen[a.Block] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Histogram counts accesses per block within region.
func (t Trace) Histogram(region string) map[int64]int {
	h := map[int64]int{}
	for _, a := range t {
		if a.Region == region {
			h[a.Block]++
		}
	}
	return h
}

// Tracer accumulates a Trace. The zero value is a disabled tracer: all
// Touch calls are cheap no-ops until Enable is called, so production paths
// can carry an optional *Tracer without overhead concerns. A nil *Tracer is
// also safe to Touch.
type Tracer struct {
	enabled bool
	trace   Trace
}

// NewEnabled returns a Tracer that records immediately.
func NewEnabled() *Tracer {
	t := &Tracer{}
	t.Enable()
	return t
}

// Enable starts recording.
func (t *Tracer) Enable() { t.enabled = true }

// Disable stops recording; the accumulated trace is retained.
func (t *Tracer) Disable() { t.enabled = false }

// Enabled reports whether the tracer is recording. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Reset discards the accumulated trace.
func (t *Tracer) Reset() {
	if t != nil {
		t.trace = t.trace[:0]
	}
}

// Touch records one access. Nil-safe and a no-op when disabled. The block
// address is the secret-bearing operand: recording it is the tracer's
// entire purpose (the trace is the audit artifact cmd/leakcheck replays),
// so the parameter is declared secret instead of waiving every call site.
//
// secemb:secret block
func (t *Tracer) Touch(region string, block int64, op Op) {
	if t == nil || !t.enabled {
		return
	}
	t.trace = append(t.trace, Access{Region: region, Block: block, Op: op})
}

// TouchRange records sequential accesses to blocks [lo, hi) of region.
func (t *Tracer) TouchRange(region string, lo, hi int64, op Op) {
	if t == nil || !t.enabled {
		return
	}
	for b := lo; b < hi; b++ {
		t.trace = append(t.trace, Access{Region: region, Block: b, Op: op})
	}
}

// Snapshot returns a copy of the trace recorded so far.
func (t *Tracer) Snapshot() Trace {
	if t == nil {
		return nil
	}
	out := make(Trace, len(t.trace))
	copy(out, t.trace)
	return out
}

// Len returns the number of recorded accesses.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.trace)
}
