package memtrace

import "secemb/internal/obs"

// PublishTo sets `memtrace_events{region,op}` gauges in reg to the
// per-region read/write counts of the trace accumulated so far, so a trace
// taken during a benchmark window shows up alongside the latency and
// enclave metrics in one snapshot. Gauges (not counters) because the
// tracer can be Reset between windows; each call overwrites the previous
// publication for the regions present in the current trace. Nil-safe on
// both sides.
func (t *Tracer) PublishTo(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	counts := map[[2]string]int64{}
	for _, a := range t.trace {
		counts[[2]string{a.Region, a.Op.String()}]++
	}
	for key, n := range counts {
		reg.Gauge("memtrace_events", "op", key[1], "region", key[0]).Set(n)
	}
}
