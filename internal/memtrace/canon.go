package memtrace

import (
	"math/bits"
	"strings"
)

// Trace canonicalization and structured diffing, the substrate of the
// leakage-audit harness (internal/leakcheck).
//
// Exact trace equality is the right check for deterministic oblivious
// schemes (linear scan, DHE): their access sequence must be a function of
// public shape parameters only. Tree ORAMs are randomized — *which* bucket
// of a level is fetched depends on fresh uniform randomness plus the
// position map — so their raw traces legitimately differ across runs. The
// attacker-visible invariant that must hold deterministically is the
// *shape*: every access touches exactly one bucket per tree level, root to
// leaf, in a fixed order. Mapping each tree-bucket access to its level
// (TreeLevel) canonicalizes that invariant into a trace that is again
// input-independent and can be checked by exact equality; the remaining
// randomized component (leaf choice) is verified distributionally by the
// chi-square tests in internal/oram.

// TreeLevel returns the depth of bucket `block` in a complete binary tree
// stored in breadth-first order: root (block 0) is level 0, blocks 1-2 are
// level 1, 3-6 level 2, and so on. block must be non-negative.
func TreeLevel(block int64) int64 {
	return int64(bits.Len64(uint64(block)+1)) - 1
}

// Map returns a new trace with f applied to every access; t is unchanged.
func (t Trace) Map(f func(Access) Access) Trace {
	out := make(Trace, len(t))
	for i, a := range t {
		out[i] = f(a)
	}
	return out
}

// CanonicalizeTreeRegions rewrites the block of every access whose region
// ends in suffix to its tree level, leaving all other accesses untouched.
// Applied with the ORAM tree-region suffix this turns a randomized
// root→leaf path fetch into the deterministic level sequence 0,1,…,L.
func CanonicalizeTreeRegions(t Trace, suffix string) Trace {
	return t.Map(func(a Access) Access {
		if strings.HasSuffix(a.Region, suffix) {
			a.Block = TreeLevel(a.Block)
		}
		return a
	})
}

// Diff summarizes how two traces differ.
type Diff struct {
	// First is the offset of the first differing access (the FirstDiff
	// convention: length differences report the shorter length), or -1
	// when the traces are identical.
	First int `json:"first"`
	// LenA and LenB are the compared trace lengths.
	LenA int `json:"len_a"`
	LenB int `json:"len_b"`
	// Regions counts differing positions per region: for each offset where
	// the traces disagree, the region of each side's access is charged
	// (once when both sides name the same region); accesses beyond the
	// shorter trace's end are charged to their own region.
	Regions map[string]int `json:"regions,omitempty"`
}

// Equal reports whether the compared traces were identical.
func (d Diff) Equal() bool { return d.First == -1 }

// Compare diffs two traces position by position.
func Compare(a, b Trace) Diff {
	d := Diff{First: a.FirstDiff(b), LenA: len(a), LenB: len(b)}
	if d.Equal() {
		return d
	}
	d.Regions = map[string]int{}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		d.Regions[a[i].Region]++
		if b[i].Region != a[i].Region {
			d.Regions[b[i].Region]++
		}
	}
	for _, t := range []Trace{a[n:], b[n:]} {
		for _, acc := range t {
			d.Regions[acc.Region]++
		}
	}
	return d
}
