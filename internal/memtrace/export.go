package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace export/import as line-oriented text (`op region block`), so traces
// captured from one run can be diffed, archived, or analyzed offline —
// e.g. comparing a generator's access pattern across versions.

// WriteTo serializes the trace, one access per line.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, a := range t {
		c, err := fmt.Fprintf(bw, "%s %s %d\n", a.Op, a.Region, a.Block)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses a trace written by WriteTo.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out Trace
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("memtrace: line %d: want 'op region block', got %q", lineNo, line)
		}
		var op Op
		switch fields[0] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("memtrace: line %d: bad op %q", lineNo, fields[0])
		}
		block, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("memtrace: line %d: %w", lineNo, err)
		}
		out = append(out, Access{Region: fields[1], Block: block, Op: op})
	}
	return out, sc.Err()
}
