package nn

import (
	"fmt"
	"math/rand"

	"secemb/internal/tensor"
)

// Embedding is a trainable lookup table mapping integer IDs to dense rows —
// the *storage-based* embedding representation of Figure 2 (1). This type
// is the non-secure baseline and the training-time representation; the
// secure generators that wrap it (linear scan, ORAM) live in internal/core.
type Embedding struct {
	NumRows int
	Dim     int
	Weight  *Param
}

// NewEmbedding builds a table of numRows×dim with N(0, 1/√dim) rows, the
// usual embedding init.
func NewEmbedding(numRows, dim int, rng *rand.Rand) *Embedding {
	std := 1.0 / float64(dim)
	w := tensor.NewGaussian(numRows, dim, std, rng)
	return &Embedding{NumRows: numRows, Dim: dim, Weight: NewParam("emb", w)}
}

// LookupBatch gathers the rows for ids into a len(ids)×Dim matrix.
// This is the direct (index-leaking) lookup the paper attacks in §III.
func (e *Embedding) LookupBatch(ids []int) *tensor.Matrix {
	out := tensor.New(len(ids), e.Dim)
	for r, id := range ids {
		if id < 0 || id >= e.NumRows {
			panic(fmt.Sprintf("nn: embedding id %d out of table size %d", id, e.NumRows))
		}
		copy(out.Row(r), e.Weight.Value.Row(id))
	}
	return out
}

// BackwardBatch scatters per-row gradients back into the table gradient.
func (e *Embedding) BackwardBatch(ids []int, grad *tensor.Matrix) {
	if grad.Rows != len(ids) || grad.Cols != e.Dim {
		panic(fmt.Sprintf("nn: embedding grad %dx%d vs %d ids dim %d", grad.Rows, grad.Cols, len(ids), e.Dim))
	}
	for r, id := range ids {
		dst := e.Weight.Grad.Row(id)
		src := grad.Row(r)
		for c, v := range src {
			dst[c] += v
		}
	}
}

// Params returns the table parameter.
func (e *Embedding) Params() []*Param { return []*Param{e.Weight} }

// NumBytes returns the table footprint in bytes (Table VI accounting).
func (e *Embedding) NumBytes() int64 { return e.Weight.Value.NumBytes() }
