package nn

import (
	"math"
	"math/rand"
	"testing"

	"secemb/internal/tensor"
)

// numericGrad estimates d(loss)/d(param[i]) by central differences, where
// loss is computed by fn() from current parameter values.
func numericGrad(p *tensor.Matrix, i int, fn func() float64) float64 {
	const h = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + h
	up := fn()
	p.Data[i] = orig - h
	down := fn()
	p.Data[i] = orig
	return (up - down) / (2 * h)
}

// scalarLoss reduces a matrix to ½‖y‖² so dLoss/dy = y.
func scalarLoss(y *tensor.Matrix) float64 {
	var s float64
	for _, v := range y.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

// checkLayerGradients verifies Backward against numerical gradients for
// both the input and every parameter of the layer.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Matrix, tol float64) {
	t.Helper()
	forward := func() float64 { return scalarLoss(layer.Forward(x)) }

	y := layer.Forward(x)
	ZeroGrads(layer)
	dx := layer.Backward(y.Clone()) // dLoss/dy = y for the ½‖y‖² loss

	// Input gradient.
	for i := range x.Data {
		want := numericGrad(x, i, forward)
		got := float64(dx.Data[i])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d]: got %v, want %v", i, got, want)
		}
	}
	// Parameter gradients. Note forward() re-runs with perturbed params.
	for _, p := range layer.Params() {
		for i := range p.Value.Data {
			want := numericGrad(p.Value, i, forward)
			got := float64(p.Grad.Data[i])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: got %v, want %v", p.Name, i, got, want)
			}
		}
	}
}

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(3, 2, rng)
	l.W.Value = tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 1})
	l.B.Value = tensor.FromSlice(1, 2, []float32{0.5, -0.5})
	x := tensor.FromSlice(1, 3, []float32{1, 2, 3})
	y := l.Forward(x)
	want := tensor.FromSlice(1, 2, []float32{4.5, 4.5})
	if !tensor.AllClose(y, want, 1e-6) {
		t.Fatalf("got %v, want %v", y, want)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(4, 3, rng)
	x := tensor.NewUniform(5, 4, 1, rng)
	checkLayerGradients(t, l, x, 2e-2)
}

func TestLinearShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLinear(3, 2, rand.New(rand.NewSource(1))).Forward(tensor.New(1, 4))
}

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice(1, 4, []float32{-2, -0.0, 0.5, 3})
	y := r.Forward(x)
	want := tensor.FromSlice(1, 4, []float32{0, 0, 0.5, 3})
	if !tensor.AllClose(y, want, 0) {
		t.Fatalf("forward got %v", y)
	}
	g := r.Backward(tensor.FromSlice(1, 4, []float32{1, 1, 1, 1}))
	wantG := tensor.FromSlice(1, 4, []float32{0, 0, 1, 1})
	if !tensor.AllClose(g, wantG, 0) {
		t.Fatalf("backward got %v, want %v", g, wantG)
	}
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewUniform(3, 4, 2, rng)
	checkLayerGradients(t, &Sigmoid{}, x, 2e-2)
}

func TestSigmoidRange(t *testing.T) {
	s := &Sigmoid{}
	y := s.Forward(tensor.FromSlice(1, 3, []float32{-100, 0, 100}))
	if y.Data[0] > 1e-6 || math.Abs(float64(y.Data[1])-0.5) > 1e-6 || y.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid extremes wrong: %v", y)
	}
}

func TestGELUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewUniform(3, 4, 2, rng)
	checkLayerGradients(t, &GELU{}, x, 2e-2)
}

func TestGELUKnownValues(t *testing.T) {
	g := &GELU{}
	y := g.Forward(tensor.FromSlice(1, 3, []float32{-10, 0, 10}))
	if math.Abs(float64(y.Data[0])) > 1e-3 {
		t.Fatalf("GELU(-10) ≈ 0, got %v", y.Data[0])
	}
	if y.Data[1] != 0 {
		t.Fatalf("GELU(0) = 0, got %v", y.Data[1])
	}
	if math.Abs(float64(y.Data[2])-10) > 1e-3 {
		t.Fatalf("GELU(10) ≈ 10, got %v", y.Data[2])
	}
}

func TestLayerNormForwardStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ln := NewLayerNorm(16, rng)
	x := tensor.NewUniform(4, 16, 3, rng)
	y := ln.Forward(x)
	for r := 0; r < y.Rows; r++ {
		var mean, varsum float64
		for _, v := range y.Row(r) {
			mean += float64(v)
		}
		mean /= 16
		for _, v := range y.Row(r) {
			d := float64(v) - mean
			varsum += d * d
		}
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v", r, mean)
		}
		if math.Abs(varsum/16-1) > 1e-2 {
			t.Fatalf("row %d var %v", r, varsum/16)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ln := NewLayerNorm(6, rng)
	// Give gamma/beta non-trivial values so their gradients are exercised.
	for i := range ln.Gamma.Value.Data {
		ln.Gamma.Value.Data[i] = 1 + 0.1*float32(i)
		ln.Beta.Value.Data[i] = 0.05 * float32(i)
	}
	x := tensor.NewUniform(3, 6, 2, rng)
	checkLayerGradients(t, ln, x, 5e-2)
}

func TestSoftmaxRows(t *testing.T) {
	x := tensor.FromSlice(2, 3, []float32{1, 2, 3, 1000, 1000, 1000})
	p := SoftmaxRows(x)
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range p.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	if !(p.At(0, 2) > p.At(0, 1) && p.At(0, 1) > p.At(0, 0)) {
		t.Fatal("softmax must be monotone in logits")
	}
	// Large-logit row must not produce NaN (stability).
	if math.IsNaN(float64(p.At(1, 0))) {
		t.Fatal("softmax overflowed")
	}
}

func TestSequentialMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mlp := MLP([]int{5, 7, 3}, false, rng)
	x := tensor.NewUniform(4, 5, 1, rng)
	checkLayerGradients(t, mlp, x, 5e-2)
}

func TestMLPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := MLP([]int{8, 4, 2}, true, rng)
	// Linear, ReLU, Linear, ReLU.
	if len(m.Layers) != 4 {
		t.Fatalf("layer count %d, want 4", len(m.Layers))
	}
	m2 := MLP([]int{8, 4, 2}, false, rng)
	if len(m2.Layers) != 3 {
		t.Fatalf("layer count %d, want 3 (no final activation)", len(m2.Layers))
	}
	if ParamCount(m) != 8*4+4+4*2+2 {
		t.Fatalf("ParamCount=%d", ParamCount(m))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short dims")
		}
	}()
	MLP([]int{3}, false, rng)
}

func TestSetThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := MLP([]int{4, 4, 4}, false, rng)
	m.SetThreads(3)
	for _, l := range m.Layers {
		if lin, ok := l.(*Linear); ok && lin.Threads != 3 {
			t.Fatal("SetThreads did not propagate")
		}
	}
}

func TestCloneForInference(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	m := NewSequential(NewLinear(4, 6, rng), &ReLU{}, NewLayerNorm(6, rng), &GELU{}, NewLinear(6, 2, rng), &Sigmoid{})
	c := m.CloneForInference()
	x := tensor.NewUniform(3, 4, 1, rng)
	if !tensor.AllClose(m.Forward(x), c.Forward(x), 0) {
		t.Fatal("clone output differs")
	}
	// Shared weights: updating the original is visible through the clone.
	lin := m.Layers[0].(*Linear)
	lin.W.Value.Data[0] += 1
	if !tensor.AllClose(m.Forward(x), c.Forward(x), 0) {
		t.Fatal("clone must share parameters")
	}
	// Private caches: interleaved forwards must not corrupt each other.
	x2 := tensor.NewUniform(5, 4, 1, rng)
	want := m.Forward(x)
	c.Forward(x2) // would clobber caches if shared
	if !tensor.AllClose(m.Forward(x), want, 0) {
		t.Fatal("interleaved clone forward corrupted state")
	}
}

func TestCloneForInferenceUnsupportedPanics(t *testing.T) {
	type weird struct{ Layer }
	m := NewSequential(&weird{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.CloneForInference()
}
