package nn

import (
	"math/rand"
	"testing"

	"secemb/internal/tensor"
)

// mixedStack builds a Sequential exercising every workspace code path:
// into-layers (Linear), in-place element maps (ReLU, GELU, Sigmoid) and
// in-place norms (LayerNorm), including an activation as the very first
// layer (the caller-input-must-not-be-mutated case).
func mixedStack(rng *rand.Rand) *Sequential {
	return NewSequential(
		&GELU{},
		NewLinear(6, 8, rng),
		&ReLU{},
		NewLayerNorm(8, rng),
		NewLinear(8, 3, rng),
		&Sigmoid{},
	)
}

func TestForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := mixedStack(rng)
	ws := &Workspace{}
	for _, batch := range []int{1, 4, 9, 2} { // grow and shrink across calls
		x := tensor.NewUniform(batch, 6, 1, rng)
		orig := x.Clone()
		want := s.Forward(x)
		got := s.ForwardInto(ws, x)
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("batch %d: ForwardInto diverges from Forward by %g",
				batch, tensor.MaxAbsDiff(got, want))
		}
		if !tensor.AllClose(x, orig, 0) {
			t.Fatalf("batch %d: ForwardInto mutated the caller's input", batch)
		}
	}
}

func TestForwardIntoQuantizedStack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := NewSequential(NewLinear(5, 7, rng), &ReLU{}, NewLinear(7, 2, rng))
	q := QuantizeSequential(s)
	ws := &Workspace{}
	x := tensor.NewUniform(3, 5, 1, rng)
	want := q.Forward(x)
	if got := q.ForwardInto(ws, x); !tensor.AllClose(got, want, 0) {
		t.Fatal("quantized ForwardInto diverges from Forward")
	}
}

func TestForwardIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := mixedStack(rng).CloneForInference()
	ws := &Workspace{}
	x := tensor.NewUniform(4, 6, 1, rng)
	s.ForwardInto(ws, x) // size the workspace
	allocs := testing.AllocsPerRun(50, func() { s.ForwardInto(ws, x) })
	// Threads=0 may dispatch chunk closures to the worker pool; everything
	// tensor-sized must be reused.
	if allocs > 8 {
		t.Fatalf("ForwardInto allocates %.0f objects per call after warmup", allocs)
	}
}

func TestInferenceLinearDropsInputCache(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := NewLinear(3, 2, rng)
	x := tensor.NewUniform(2, 3, 1, rng)
	l.Forward(x)
	if l.lastX == nil {
		t.Fatal("training-mode Forward must retain lastX for Backward")
	}
	l.Inference = true
	l.Forward(x)
	if l.lastX != nil {
		t.Fatal("inference-mode Forward must not retain the input batch")
	}
}

func TestCloneForInferenceMarksLinears(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := MLP([]int{4, 3, 2}, false, rng)
	c := s.CloneForInference()
	for i, l := range c.Layers {
		if lin, ok := l.(*Linear); ok && !lin.Inference {
			t.Fatalf("cloned layer %d is not in inference mode", i)
		}
	}
	// The training stack must be untouched.
	for i, l := range s.Layers {
		if lin, ok := l.(*Linear); ok && lin.Inference {
			t.Fatalf("original layer %d was switched to inference mode", i)
		}
	}
}
