package nn

import (
	"math"

	"secemb/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay. The DLRM reference trains with plain SGD.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one SGD update to each parameter.
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay != 0 {
			tensor.AXPY(float32(o.WeightDecay), p.Value, g)
		}
		if o.Momentum != 0 {
			if o.velocity == nil {
				o.velocity = map[*Param]*tensor.Matrix{}
			}
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(g.Rows, g.Cols)
				o.velocity[p] = v
			}
			tensor.ScaleInPlace(v, float32(o.Momentum))
			tensor.AddInPlace(v, g)
			g = v
		}
		tensor.AXPY(-lr, g, p.Value)
	}
}

// Adagrad adapts per-coordinate learning rates by accumulated squared
// gradients — the optimizer Meta's DLRM uses for sparse embedding tables.
type Adagrad struct {
	LR  float64
	Eps float64

	accum map[*Param]*tensor.Matrix
}

// NewAdagrad returns an Adagrad optimizer.
func NewAdagrad(lr float64) *Adagrad { return &Adagrad{LR: lr, Eps: 1e-10} }

// Step applies one Adagrad update.
func (o *Adagrad) Step(params []*Param) {
	if o.accum == nil {
		o.accum = map[*Param]*tensor.Matrix{}
	}
	for _, p := range params {
		acc, ok := o.accum[p]
		if !ok {
			acc = tensor.New(p.Grad.Rows, p.Grad.Cols)
			o.accum[p] = acc
		}
		for i, g := range p.Grad.Data {
			acc.Data[i] += g * g
			p.Value.Data[i] -= float32(o.LR) * g / (float32(math.Sqrt(float64(acc.Data[i]))) + float32(o.Eps))
		}
	}
}

// Adam is the optimizer used for the GPT-2 finetuning experiments.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = map[*Param]*tensor.Matrix{}
		o.v = map[*Param]*tensor.Matrix{}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Grad.Rows, p.Grad.Cols)
			o.m[p] = m
			o.v[p] = tensor.New(p.Grad.Rows, p.Grad.Cols)
		}
		v := o.v[p]
		for i, g := range p.Grad.Data {
			if o.WeightDecay != 0 {
				g += float32(o.WeightDecay) * p.Value.Data[i]
			}
			m.Data[i] = float32(o.Beta1)*m.Data[i] + float32(1-o.Beta1)*g
			v.Data[i] = float32(o.Beta2)*v.Data[i] + float32(1-o.Beta2)*g*g
			mh := float64(m.Data[i]) / bc1
			vh := float64(v.Data[i]) / bc2
			p.Value.Data[i] -= float32(o.LR * mh / (math.Sqrt(vh) + o.Eps))
		}
	}
}
