package nn

import (
	"math/rand"

	"secemb/internal/tensor"
)

// Linear is a fully-connected layer: y = x·W + b with W of shape in×out.
//
// Threads controls the worker count of the underlying matmul (0 = all
// CPUs); the paper's profiling sweeps latency across thread counts, so the
// embedding generators expose this knob all the way down.
type Linear struct {
	In, Out int
	W, B    *Param
	Threads int

	// Inference marks the layer forward-only: Forward stops retaining its
	// input for Backward, so serving replicas no longer pin the last batch
	// of every layer between requests. CloneForInference sets it; Backward
	// on an inference layer is unsupported.
	Inference bool

	lastX *tensor.Matrix // cached input for Backward (training mode only)
}

// NewLinear builds a Linear layer with Xavier-initialized weights and zero
// bias, matching the DLRM reference MLP initialization.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam("W", tensor.NewXavier(in, out, rng)),
		B:   NewParam("b", tensor.New(1, out)),
	}
}

// Forward computes x·W + b for a batch of rows.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	shapeCheck("Linear", x, l.In)
	if l.Inference {
		l.lastX = nil
	} else {
		l.lastX = x
	}
	y := tensor.MatMul(x, l.W.Value, l.Threads)
	tensor.AddRowVec(y, l.B.Value.Data)
	return y
}

// ForwardInto computes x·W + b into dst (x.Rows×Out), reusing dst's
// storage — the allocation-free workspace path. It never retains x;
// Backward after ForwardInto is unsupported.
func (l *Linear) ForwardInto(dst, x *tensor.Matrix) {
	shapeCheck("Linear", x, l.In)
	tensor.MatMulInto(dst, x, l.W.Value, l.Threads)
	tensor.AddRowVec(dst, l.B.Value.Data)
}

// OutCols reports the layer's output width for workspace sizing.
func (l *Linear) OutCols() int { return l.Out }

// Backward accumulates dW = xᵀ·dy and db = Σrows(dy), and returns
// dx = dy·Wᵀ.
func (l *Linear) Backward(grad *tensor.Matrix) *tensor.Matrix {
	shapeCheck("Linear.Backward", grad, l.Out)
	tensor.AddInPlace(l.W.Grad, tensor.MatMulTransA(l.lastX, grad, l.Threads))
	bg := tensor.ColSums(grad)
	for i, v := range bg {
		l.B.Grad.Data[i] += v
	}
	return tensor.MatMulTransB(grad, l.W.Value, l.Threads)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// FLOPs returns the multiply-accumulate count of one forward pass with the
// given batch size; the cost model uses this to reason about DHE's O(k²)
// compute independent of wall-clock noise.
func (l *Linear) FLOPs(batch int) int64 {
	return 2 * int64(batch) * int64(l.In) * int64(l.Out)
}

// NumBytes returns the parameter footprint in bytes.
func (l *Linear) NumBytes() int64 {
	return l.W.Value.NumBytes() + l.B.Value.NumBytes()
}
