package nn

import (
	"math"

	"secemb/internal/oblivious"
	"secemb/internal/tensor"
)

// ReLU is the rectified-linear activation, computed with the branchless
// max kernel from internal/oblivious — the Go analogue of the paper's
// AVX-512 secure ReLU (§V-A3): no secret-dependent branch decides whether
// an activation is clamped.
type ReLU struct {
	lastOut *tensor.Matrix
}

// Forward clamps negatives to zero, branchlessly.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	oblivious.ReLU(y.Data)
	r.lastOut = y
	return y
}

// ForwardInPlace clamps x directly — the workspace inference path. No
// Backward cache is recorded.
func (r *ReLU) ForwardInPlace(x *tensor.Matrix) { oblivious.ReLU(x.Data) }

// Backward masks the incoming gradient where the output was zero.
// The mask is derived arithmetically (sign bit), not by branching.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := grad.Clone()
	for i, v := range r.lastOut.Data {
		// v > 0 ⇒ pass gradient. v is never negative post-ReLU. Use the
		// sign of (0 - v): negative exactly when v > 0 (0-0 yields +0
		// under IEEE round-to-nearest, so clamped cells block).
		m := -uint32(math.Float32bits(0-v) >> 31) // all-ones when v > 0
		out.Data[i] = oblivious.Select32f(m, out.Data[i], 0)
	}
	return out
}

// Params returns nil: ReLU is parameter-free.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation, used for DLRM's final click
// probability. A pure mathematical map: data-independent flow (§V-C).
type Sigmoid struct {
	lastOut *tensor.Matrix
}

// Forward applies 1/(1+e^{-x}) element-wise.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.Apply(x, sigmoid)
	s.lastOut = y
	return y
}

// ForwardInPlace applies the logistic map directly to x (inference path).
func (s *Sigmoid) ForwardInPlace(x *tensor.Matrix) { tensor.ApplyInPlace(x, sigmoid) }

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Backward multiplies by σ'(x) = σ(x)(1-σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := grad.Clone()
	for i, y := range s.lastOut.Data {
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params returns nil: Sigmoid is parameter-free.
func (s *Sigmoid) Params() []*Param { return nil }

// GELU is the Gaussian-error linear unit (tanh approximation), the
// transformer FFN activation. Deterministic mathematical flow (§V-C).
type GELU struct {
	lastX *tensor.Matrix
}

const geluC = 0.7978845608028654 // sqrt(2/π)

func geluForward(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
}

// Forward applies GELU element-wise.
func (g *GELU) Forward(x *tensor.Matrix) *tensor.Matrix {
	g.lastX = x
	return tensor.Apply(x, gelu)
}

// ForwardInPlace applies GELU directly to x (inference path).
func (g *GELU) ForwardInPlace(x *tensor.Matrix) { tensor.ApplyInPlace(x, gelu) }

func gelu(v float32) float32 { return float32(geluForward(float64(v))) }

// Backward applies the analytic derivative of the tanh-approximate GELU.
func (g *GELU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := grad.Clone()
	for i, xv := range g.lastX.Data {
		v := float64(xv)
		u := geluC * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		d := 0.5*(1+t) + 0.5*v*(1-t*t)*du
		out.Data[i] *= float32(d)
	}
	return out
}

// Params returns nil: GELU is parameter-free.
func (g *GELU) Params() []*Param { return nil }

// SoftmaxRows applies a numerically-stable softmax to each row of x,
// returning a new matrix. Shared by the attention layers and the
// cross-entropy loss. The max subtraction uses the branchless max.
func SoftmaxRows(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		dst := out.Row(r)
		m := row[0]
		for _, v := range row[1:] {
			m = oblivious.Max(m, v)
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - m))
			dst[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return out
}
