package nn

import (
	"fmt"
	"math"

	"secemb/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// (batch×1) and labels (0/1, batch×1) and the gradient w.r.t. the logits.
// This is DLRM's click-through-rate training loss.
func BCEWithLogits(logits *tensor.Matrix, labels []float32) (loss float64, grad *tensor.Matrix) {
	if logits.Cols != 1 || logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: BCEWithLogits shape %dx%d vs %d labels", logits.Rows, logits.Cols, len(labels)))
	}
	n := float64(len(labels))
	grad = tensor.New(logits.Rows, 1)
	for i, y := range labels {
		z := float64(logits.Data[i])
		// Numerically-stable log(1+e^{-|z|}) formulation.
		loss += math.Max(z, 0) - z*float64(y) + math.Log1p(math.Exp(-math.Abs(z)))
		p := 1 / (1 + math.Exp(-z))
		grad.Data[i] = float32((p - float64(y)) / n)
	}
	return loss / n, grad
}

// CrossEntropyLogits computes the mean cross-entropy between row-batched
// logits (batch×classes) and integer targets, plus the gradient w.r.t. the
// logits. Rows whose target is IgnoreIndex contribute nothing. This is the
// language-modeling loss used for the GPT-2 finetuning experiments.
func CrossEntropyLogits(logits *tensor.Matrix, targets []int) (loss float64, grad *tensor.Matrix) {
	if logits.Rows != len(targets) {
		panic(fmt.Sprintf("nn: CrossEntropyLogits %d rows vs %d targets", logits.Rows, len(targets)))
	}
	probs := SoftmaxRows(logits)
	grad = tensor.New(logits.Rows, logits.Cols)
	counted := 0
	for r, t := range targets {
		if t == IgnoreIndex {
			continue
		}
		if t < 0 || t >= logits.Cols {
			panic(fmt.Sprintf("nn: target %d out of %d classes", t, logits.Cols))
		}
		counted++
		p := float64(probs.At(r, t))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	if counted == 0 {
		return 0, grad
	}
	inv := float32(1 / float64(counted))
	for r, t := range targets {
		if t == IgnoreIndex {
			continue
		}
		src := probs.Row(r)
		dst := grad.Row(r)
		for c, pv := range src {
			dst[c] = pv * inv
		}
		dst[t] -= inv
	}
	return loss / float64(counted), grad
}

// IgnoreIndex marks targets excluded from CrossEntropyLogits (padding).
const IgnoreIndex = -1

// Perplexity converts a mean cross-entropy (nats) to perplexity.
func Perplexity(meanCrossEntropy float64) float64 {
	return math.Exp(meanCrossEntropy)
}
