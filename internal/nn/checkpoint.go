package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"secemb/internal/tensor"
)

// Checkpoint format: magic "SECK", uint32 parameter count, then per
// parameter a length-prefixed name followed by the tensor. Loading
// requires an identically-structured model (same order, names, shapes),
// which catches architecture mismatches instead of silently corrupting.

var ckptMagic = [4]byte{'S', 'E', 'C', 'K'}

// SaveParams writes the parameters (values only; no optimizer state).
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(params)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
		if _, err := bw.Write(nl[:]); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if _, err := p.Value.WriteTo(w); err != nil {
			return fmt.Errorf("nn: writing %s: %w", p.Name, err)
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint written by SaveParams into params, which
// must match in count, order, names, and shapes.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return err
	}
	if got := int(binary.LittleEndian.Uint32(cnt[:])); got != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", got, len(params))
	}
	for _, p := range params {
		var nl [2]byte
		if _, err := io.ReadFull(br, nl[:]); err != nil {
			return err
		}
		name := make([]byte, binary.LittleEndian.Uint16(nl[:]))
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %q, model expects %q", name, p.Name)
		}
		if err := tensor.ReadMatrixInto(br, p.Value); err != nil {
			return fmt.Errorf("nn: loading %s: %w", p.Name, err)
		}
	}
	return nil
}
