package nn

import (
	"math/rand"
	"testing"

	"secemb/internal/tensor"
)

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(64, 32, rng)
	q := Quantize(l)
	// Worst-case weight error bounded by half a quantization step.
	for o := 0; o < q.Out; o++ {
		if q.Q.Scale[o] <= 0 {
			t.Fatalf("non-positive scale at %d", o)
		}
	}
	maxStep := 0.0
	for _, s := range q.Q.Scale {
		if float64(s) > maxStep {
			maxStep = float64(s)
		}
	}
	if err := q.MaxAbsError(l); err > maxStep/2+1e-7 {
		t.Fatalf("quantization error %v exceeds step/2 %v", err, maxStep/2)
	}
}

func TestQuantForwardCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(128, 64, rng)
	q := Quantize(l)
	x := tensor.NewUniform(8, 128, 1, rng)
	want := l.Forward(x)
	got := q.Forward(x)
	// Relative output error of weight-only int8 is typically <1%.
	if d := tensor.MaxAbsDiff(got, want); d > 0.05*(1+tensor.Norm2(want)/float64(len(want.Data))) {
		t.Fatalf("quantized output off by %v", d)
	}
}

func TestQuantFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(256, 256, rng)
	q := Quantize(l)
	// Packed 16-bit lanes: 2 bytes/weight plus per-channel metadata, ≈2×
	// smaller than float32 (flat int8 would be 4× but ~8× slower — the
	// packing buys one-multiply-per-four-MACs, see tensor/quant.go).
	ratio := float64(l.NumBytes()) / float64(q.NumBytes())
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("compression ratio %.2f, want ≈2x", ratio)
	}
}

func TestQuantizeZeroColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(4, 2, rng)
	for i := 0; i < 4; i++ {
		l.W.Value.Set(i, 1, 0) // dead output channel
	}
	q := Quantize(l)
	x := tensor.NewUniform(1, 4, 1, rng)
	out := q.Forward(x)
	if out.At(0, 1) != l.B.Value.Data[1] {
		t.Fatalf("zero column must yield bias only: %v", out.At(0, 1))
	}
}

func TestQuantizeSequentialEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := MLP([]int{32, 64, 16}, false, rng)
	x := tensor.NewUniform(4, 32, 1, rng)
	want := m.Forward(x)
	qm := QuantizeSequential(m)
	got := qm.Forward(x)
	// End-to-end drift stays small relative to activations.
	var meanAbs float64
	for _, v := range want.Data {
		if f := float64(v); f < 0 {
			meanAbs -= f
		} else {
			meanAbs += f
		}
	}
	meanAbs /= float64(len(want.Data))
	if d := tensor.MaxAbsDiff(got, want); d > 0.1*(1+meanAbs) {
		t.Fatalf("quantized stack off by %v (mean |act| %v)", d, meanAbs)
	}
	if len(qm.Params()) != 0 {
		t.Fatal("quantized stack must expose no trainable params")
	}
}

func TestQuantBackwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	qm := QuantizeSequential(MLP([]int{4, 2}, false, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	qm.Backward(tensor.New(1, 2))
}

func BenchmarkQuantVsFloatForward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(512, 512, rng)
	q := Quantize(l)
	x := tensor.NewUniform(32, 512, 1, rng)
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.Forward(x)
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Forward(x)
		}
	})
}
