package nn

import (
	"fmt"
	"math"

	"secemb/internal/tensor"
)

// Int8 weight quantization: the paper motivates CPU LLM inference with
// "techniques such as quantization and SIMD vector units" (§II-A). This
// file provides symmetric per-output-channel int8 weight quantization for
// Linear layers, with float32 activations and int32-style accumulation —
// the standard weight-only scheme. Quantized inference has the same
// deterministic control and data flow as the float path (the quantized
// weights are dense and every multiply happens regardless of values), so
// the side-channel argument is unchanged.

// QuantLinear is an inference-only, int8-weight fully-connected layer.
type QuantLinear struct {
	In, Out int
	// W8 holds the quantized weights, row-major In×Out like the float
	// layer it was built from.
	W8 []int8
	// Scale[o] converts the int8 column o back to float: w ≈ W8·Scale[o].
	Scale []float32
	Bias  []float32
}

// Quantize converts a trained Linear layer to int8 weights with
// symmetric per-output-channel scales.
func Quantize(l *Linear) *QuantLinear {
	q := &QuantLinear{
		In:    l.In,
		Out:   l.Out,
		W8:    make([]int8, l.In*l.Out),
		Scale: make([]float32, l.Out),
		Bias:  append([]float32(nil), l.B.Value.Data...),
	}
	w := l.W.Value
	for o := 0; o < l.Out; o++ {
		var maxAbs float64
		for i := 0; i < l.In; i++ {
			if v := math.Abs(float64(w.At(i, o))); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			q.Scale[o] = 1
			continue
		}
		scale := maxAbs / 127
		q.Scale[o] = float32(scale)
		for i := 0; i < l.In; i++ {
			v := math.Round(float64(w.At(i, o)) / scale)
			if v > 127 {
				v = 127
			} else if v < -127 {
				v = -127
			}
			q.W8[i*l.Out+o] = int8(v)
		}
	}
	return q
}

// Forward computes x·Ŵ + b with dequantization folded into the column
// scales.
func (q *QuantLinear) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, q.Out)
	q.ForwardInto(out, x)
	return out
}

// OutCols reports the layer's output width for workspace sizing.
func (q *QuantLinear) OutCols() int { return q.Out }

// ForwardInto computes x·Ŵ + b into dst (x.Rows×Out), reusing dst's
// storage — the allocation-free workspace path.
func (q *QuantLinear) ForwardInto(dst, x *tensor.Matrix) {
	shapeCheck("QuantLinear", x, q.In)
	if dst.Rows != x.Rows || dst.Cols != q.Out {
		panic(fmt.Sprintf("nn: QuantLinear.ForwardInto dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, x.Rows, q.Out))
	}
	out := dst
	out.Zero()
	for r := 0; r < x.Rows; r++ {
		xRow := x.Row(r)
		dst := out.Row(r)
		for i, xv := range xRow {
			if xv == 0 {
				continue
			}
			wRow := q.W8[i*q.Out : (i+1)*q.Out]
			for o, w8 := range wRow {
				dst[o] += xv * float32(w8) * q.Scale[o]
			}
		}
		for o := range dst {
			dst[o] += q.Bias[o]
		}
	}
}

// NumBytes is the quantized footprint: int8 weights + per-channel scales
// + float bias (~4× smaller than the float32 layer).
func (q *QuantLinear) NumBytes() int64 {
	return int64(len(q.W8)) + int64(len(q.Scale))*4 + int64(len(q.Bias))*4
}

// MaxAbsError reports the worst-case |w - ŵ| over all weights against the
// original layer — bounded by Scale[o]/2 per channel.
func (q *QuantLinear) MaxAbsError(l *Linear) float64 {
	var worst float64
	for o := 0; o < q.Out; o++ {
		for i := 0; i < q.In; i++ {
			approx := float64(q.W8[i*q.Out+o]) * float64(q.Scale[o])
			if d := math.Abs(approx - float64(l.W.Value.At(i, o))); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// QuantizeSequential converts every Linear in a trained inference stack,
// leaving activations and norms as-is. Returns a Sequential of
// QuantLinear/activation layers usable wherever the float stack was.
func QuantizeSequential(s *Sequential) *Sequential {
	clone := s.CloneForInference()
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		if lin, ok := l.(*Linear); ok {
			out.Layers[i] = &quantLayer{QuantLinear: Quantize(lin)}
			continue
		}
		out.Layers[i] = clone.Layers[i]
	}
	return out
}

// quantLayer adapts QuantLinear to the Layer interface (inference only).
type quantLayer struct{ *QuantLinear }

func (q *quantLayer) Forward(x *tensor.Matrix) *tensor.Matrix { return q.QuantLinear.Forward(x) }
func (q *quantLayer) Backward(*tensor.Matrix) *tensor.Matrix {
	panic("nn: quantized layers are inference-only")
}
func (q *quantLayer) Params() []*Param { return nil }
