package nn

import (
	"fmt"
	"math"

	"secemb/internal/tensor"
)

// Int8 weight quantization: the paper motivates CPU LLM inference with
// "techniques such as quantization and SIMD vector units" (§II-A). A
// QuantLinear holds 7-bit per-output-channel weights in tensor.QuantMat's
// packed SWAR form and quantizes activations per row to 6 bits on the fly
// (see internal/tensor/quant.go for the scheme), which makes the quantized
// forward ~4× faster than the float32 kernel on scalar CPUs. Quantized
// inference has the same deterministic control and data flow as the float
// path — every lane is computed for every input regardless of values — so
// the side-channel argument is unchanged.

// QuantLinear is an inference-only, quantized fully-connected layer.
type QuantLinear struct {
	In, Out int
	// Q is the packed quantized weight matrix (shared, read-only after
	// construction — inference clones alias it).
	Q    *tensor.QuantMat
	Bias []float32
	// Threads is the matmul worker count (0 = tuned/all CPUs); per-clone,
	// like Linear.Threads.
	Threads int
}

// Quantize converts a trained Linear layer to the packed quantized form
// with symmetric per-output-channel scales.
func Quantize(l *Linear) *QuantLinear {
	return &QuantLinear{
		In:      l.In,
		Out:     l.Out,
		Q:       tensor.QuantizeMat(l.W.Value),
		Bias:    append([]float32(nil), l.B.Value.Data...),
		Threads: l.Threads,
	}
}

// Forward computes x·Ŵ + b with dequantization folded into the epilogue.
func (q *QuantLinear) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, q.Out)
	q.ForwardInto(out, x)
	return out
}

// OutCols reports the layer's output width for workspace sizing.
func (q *QuantLinear) OutCols() int { return q.Out }

// ForwardInto computes x·Ŵ + b into dst (x.Rows×Out). This compatibility
// path quantizes x into a stack-local scratch each call; the hot serving
// path is ForwardIntoQuant with a reusable Workspace scratch.
func (q *QuantLinear) ForwardInto(dst, x *tensor.Matrix) {
	var qa tensor.QuantActs
	q.ForwardIntoQuant(dst, x, &qa)
}

// ForwardIntoQuant computes x·Ŵ + b into dst using qa as the activation
// quantization scratch — the allocation-free workspace path. qa's contents
// are replaced.
func (q *QuantLinear) ForwardIntoQuant(dst, x *tensor.Matrix, qa *tensor.QuantActs) {
	shapeCheck("QuantLinear", x, q.In)
	if dst.Rows != x.Rows || dst.Cols != q.Out {
		panic(fmt.Sprintf("nn: QuantLinear.ForwardInto dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, x.Rows, q.Out))
	}
	qa.Quantize(x)
	tensor.MatMulQuantInto(dst, qa, q.Q, q.Bias, q.Threads)
}

// NumBytes is the quantized footprint: packed 16-bit weight lanes plus
// per-channel scale/offset-sum and the float bias — about half the float32
// layer. (A flat int8 array would be 4× smaller but ~8× slower here: the
// packing is what makes one integer multiply do four MACs.)
func (q *QuantLinear) NumBytes() int64 {
	return q.Q.NumBytes() + int64(len(q.Bias))*4
}

// MaxAbsError reports the worst-case |w - ŵ| over all weights against the
// original layer — bounded by Scale[o]/2 per channel.
func (q *QuantLinear) MaxAbsError(l *Linear) float64 {
	var worst float64
	for o := 0; o < q.Out; o++ {
		for i := 0; i < q.In; i++ {
			approx := float64(q.Q.WeightAt(i, o))
			if d := math.Abs(approx - float64(l.W.Value.At(i, o))); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// QuantizeSequential converts every Linear in a trained inference stack,
// leaving activations and norms as-is. Returns a Sequential of
// QuantLinear/activation layers usable wherever the float stack was.
func QuantizeSequential(s *Sequential) *Sequential {
	clone := s.CloneForInference()
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		if lin, ok := l.(*Linear); ok {
			out.Layers[i] = &quantLayer{QuantLinear: Quantize(lin)}
			continue
		}
		out.Layers[i] = clone.Layers[i]
	}
	return out
}

// quantLayer adapts QuantLinear to the Layer interface (inference only).
type quantLayer struct{ *QuantLinear }

func (q *quantLayer) Forward(x *tensor.Matrix) *tensor.Matrix { return q.QuantLinear.Forward(x) }
func (q *quantLayer) Backward(*tensor.Matrix) *tensor.Matrix {
	panic("nn: quantized layers are inference-only")
}
func (q *quantLayer) Params() []*Param { return nil }
