package nn

import (
	"math/rand"

	"secemb/internal/tensor"
)

// Sequential chains layers; the Forward output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential wraps the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the chain front to back.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the chain back to front.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all child parameters in order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SetThreads propagates a matmul worker count to every Linear child.
func (s *Sequential) SetThreads(n int) {
	for _, l := range s.Layers {
		if lin, ok := l.(*Linear); ok {
			lin.Threads = n
		}
	}
}

// NumBytes sums the resident footprint of all children. Layers that know
// their own size (Linear, QuantLinear) report it directly — which keeps
// the accounting correct for quantized layers, whose weights are not
// trainable Params.
func (s *Sequential) NumBytes() int64 {
	var n int64
	for _, l := range s.Layers {
		if sz, ok := l.(interface{ NumBytes() int64 }); ok {
			n += sz.NumBytes()
			continue
		}
		for _, p := range l.Params() {
			n += p.Value.NumBytes()
		}
	}
	return n
}

// CloneForInference returns a Sequential that *shares* the trainable
// parameters but owns fresh layer structs — and therefore private forward
// caches. Layers cache activations for Backward, so two goroutines may
// never run Forward on the same layer instance; concurrent inference
// replicas must each hold a clone. Backward on a clone is unsupported
// (gradient accumulators are shared but caches are per-clone).
func (s *Sequential) CloneForInference() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		switch v := l.(type) {
		case *Linear:
			out.Layers[i] = &Linear{In: v.In, Out: v.Out, W: v.W, B: v.B, Threads: v.Threads}
		case *ReLU:
			out.Layers[i] = &ReLU{}
		case *Sigmoid:
			out.Layers[i] = &Sigmoid{}
		case *GELU:
			out.Layers[i] = &GELU{}
		case *LayerNorm:
			out.Layers[i] = &LayerNorm{Dim: v.Dim, Gamma: v.Gamma, Beta: v.Beta, Eps: v.Eps}
		default:
			panic("nn: CloneForInference: unsupported layer type")
		}
	}
	return out
}

// MLP builds the DLRM-style fully-connected stack: Linear+ReLU for every
// hidden transition, and (per the reference DLRM) a bare Linear at the end
// when withFinalActivation is false. dims lists layer widths including
// input and output, e.g. {512, 256, 64, 16}.
func MLP(dims []int, withFinalActivation bool, rng *rand.Rand) *Sequential {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, NewLinear(dims[i], dims[i+1], rng))
		last := i+2 == len(dims)
		if !last || withFinalActivation {
			layers = append(layers, &ReLU{})
		}
	}
	return NewSequential(layers...)
}
