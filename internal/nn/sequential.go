package nn

import (
	"math/rand"

	"secemb/internal/tensor"
)

// Sequential chains layers; the Forward output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential wraps the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the chain front to back.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// intoLayer is a layer that can write its output into a caller-owned
// buffer of OutCols width (Linear, QuantLinear).
type intoLayer interface {
	ForwardInto(dst, x *tensor.Matrix)
	OutCols() int
}

// inPlaceLayer is a layer whose inference forward can mutate the
// activations directly (element-wise maps and norms).
type inPlaceLayer interface {
	ForwardInPlace(x *tensor.Matrix)
}

// quantIntoLayer is a layer that consumes workspace-held quantization
// scratch in addition to an output buffer (QuantLinear): the scratch makes
// the int8 activation quantize+pack allocation-free across calls.
type quantIntoLayer interface {
	ForwardIntoQuant(dst, x *tensor.Matrix, qa *tensor.QuantActs)
	OutCols() int
}

// Workspace holds one reusable output buffer per layer of a Sequential —
// plus one shared int8 activation-quantization scratch for quantized
// layers — sized on first use and regrown only when a larger batch
// arrives, so steady-state inference allocates nothing. A Workspace
// belongs to exactly one goroutine's forward path at a time (pair one with
// each inference clone, like the activation caches it replaces).
type Workspace struct {
	bufs []*tensor.Matrix
	// qa is shared across the stack's quantized layers: layers run
	// sequentially and each Quantize replaces the scratch contents.
	qa tensor.QuantActs
}

// buf returns the i-th buffer shaped rows×cols, reusing its backing array
// whenever capacity allows.
func (w *Workspace) buf(i, rows, cols int) *tensor.Matrix {
	for len(w.bufs) <= i {
		w.bufs = append(w.bufs, nil)
	}
	m := w.bufs[i]
	if m == nil {
		m = tensor.New(rows, cols)
		w.bufs[i] = m
		return m
	}
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float32, need)
	} else {
		m.Data = m.Data[:need]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// ForwardInto runs the chain front to back through ws, reusing the
// per-layer buffers across calls: Linear-like layers write into their
// workspace slot and element-wise layers mutate the running activation in
// place, so a warmed-up call performs zero tensor allocations. The
// returned matrix aliases workspace storage — it is valid until the next
// ForwardInto on the same workspace; callers that retain results must
// copy. No Backward caches are recorded. A nil ws falls back to Forward.
func (s *Sequential) ForwardInto(ws *Workspace, x *tensor.Matrix) *tensor.Matrix {
	if ws == nil {
		return s.Forward(x)
	}
	cur, owned := x, false
	for i, l := range s.Layers {
		switch v := l.(type) {
		case quantIntoLayer:
			dst := ws.buf(i, cur.Rows, v.OutCols())
			v.ForwardIntoQuant(dst, cur, &ws.qa)
			cur, owned = dst, true
		case intoLayer:
			dst := ws.buf(i, cur.Rows, v.OutCols())
			v.ForwardInto(dst, cur)
			cur, owned = dst, true
		case inPlaceLayer:
			// Never mutate the caller's input: copy it into the workspace
			// before the first in-place layer.
			if !owned {
				dst := ws.buf(i, cur.Rows, cur.Cols)
				copy(dst.Data, cur.Data)
				cur, owned = dst, true
			}
			v.ForwardInPlace(cur)
		default:
			cur, owned = l.Forward(cur), true
		}
	}
	return cur
}

// Backward runs the chain back to front.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all child parameters in order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SetThreads propagates a matmul worker count to every Linear and
// QuantLinear child.
func (s *Sequential) SetThreads(n int) {
	for _, l := range s.Layers {
		switch v := l.(type) {
		case *Linear:
			v.Threads = n
		case *quantLayer:
			v.Threads = n
		}
	}
}

// NumBytes sums the resident footprint of all children. Layers that know
// their own size (Linear, QuantLinear) report it directly — which keeps
// the accounting correct for quantized layers, whose weights are not
// trainable Params.
func (s *Sequential) NumBytes() int64 {
	var n int64
	for _, l := range s.Layers {
		if sz, ok := l.(interface{ NumBytes() int64 }); ok {
			n += sz.NumBytes()
			continue
		}
		for _, p := range l.Params() {
			n += p.Value.NumBytes()
		}
	}
	return n
}

// CloneForInference returns a Sequential that *shares* the trainable
// parameters but owns fresh layer structs — and therefore private forward
// caches. Layers cache activations for Backward, so two goroutines may
// never run Forward on the same layer instance; concurrent inference
// replicas must each hold a clone. Cloned Linears are marked Inference, so
// replicas stop retaining their last input batch between requests.
// Backward on a clone is unsupported.
func (s *Sequential) CloneForInference() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		switch v := l.(type) {
		case *Linear:
			out.Layers[i] = &Linear{In: v.In, Out: v.Out, W: v.W, B: v.B, Threads: v.Threads, Inference: true}
		case *quantLayer:
			// Share the packed weights and bias (read-only), but give the
			// clone its own layer struct so SetThreads on one replica never
			// races another's forward pass.
			out.Layers[i] = &quantLayer{QuantLinear: &QuantLinear{
				In: v.In, Out: v.Out, Q: v.Q, Bias: v.Bias, Threads: v.Threads,
			}}
		case *ReLU:
			out.Layers[i] = &ReLU{}
		case *Sigmoid:
			out.Layers[i] = &Sigmoid{}
		case *GELU:
			out.Layers[i] = &GELU{}
		case *LayerNorm:
			out.Layers[i] = &LayerNorm{Dim: v.Dim, Gamma: v.Gamma, Beta: v.Beta, Eps: v.Eps}
		default:
			panic("nn: CloneForInference: unsupported layer type")
		}
	}
	return out
}

// MLP builds the DLRM-style fully-connected stack: Linear+ReLU for every
// hidden transition, and (per the reference DLRM) a bare Linear at the end
// when withFinalActivation is false. dims lists layer widths including
// input and output, e.g. {512, 256, 64, 16}.
func MLP(dims []int, withFinalActivation bool, rng *rand.Rand) *Sequential {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, NewLinear(dims[i], dims[i+1], rng))
		last := i+2 == len(dims)
		if !last || withFinalActivation {
			layers = append(layers, &ReLU{})
		}
	}
	return NewSequential(layers...)
}
