package nn

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"secemb/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := MLP([]int{4, 8, 2}, false, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := MLP([]int{4, 8, 2}, false, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewUniform(3, 4, 1, rng)
	if !tensor.AllClose(src.Forward(x), dst.Forward(x), 0) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestCheckpointFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := MLP([]int{3, 3}, false, rng)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveParams(f, m.Params()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	m2 := MLP([]int{3, 3}, false, rand.New(rand.NewSource(3)))
	if err := LoadParams(g, m2.Params()); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(m.Params()[0].Value, m2.Params()[0].Value, 0) {
		t.Fatal("file round-trip corrupted weights")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	if err := SaveParams(&buf, MLP([]int{4, 2}, false, rng).Params()); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, MLP([]int{4, 3}, false, rng).Params())
	if err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestCheckpointCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	if err := SaveParams(&buf, MLP([]int{4, 2}, false, rng).Params()); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, MLP([]int{4, 4, 2}, false, rng).Params())
	if err == nil {
		t.Fatal("param-count mismatch must error")
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	if err := LoadParams(bytes.NewReader([]byte("nope....")), nil); err == nil {
		t.Fatal("bad magic must error")
	}
	if err := LoadParams(bytes.NewReader(nil), nil); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestTensorIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range [][2]int{{1, 1}, {3, 7}, {0, 0}, {5, 0}} {
		m := tensor.NewUniform(shape[0], shape[1], 2, rng)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := tensor.ReadMatrix(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(m, got, 0) {
			t.Fatalf("round trip failed for %v", shape)
		}
	}
}

func TestTensorIOTruncated(t *testing.T) {
	m := tensor.New(4, 4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := tensor.ReadMatrix(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated payload must error")
	}
	if _, err := tensor.ReadMatrix(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("truncated header must error")
	}
}
