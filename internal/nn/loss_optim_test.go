package nn

import (
	"math"
	"math/rand"
	"testing"

	"secemb/internal/tensor"
)

func TestBCEWithLogitsKnown(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{0, 0})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	// At logit 0 each term is log 2.
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss=%v, want ln2", loss)
	}
	// grad = (σ(0) - y)/n = ±0.25
	if math.Abs(float64(grad.Data[0])+0.25) > 1e-6 || math.Abs(float64(grad.Data[1])-0.25) > 1e-6 {
		t.Fatalf("grad=%v", grad)
	}
}

func TestBCEWithLogitsGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.NewUniform(6, 1, 2, rng)
	labels := []float32{1, 0, 1, 1, 0, 0}
	_, grad := BCEWithLogits(logits, labels)
	for i := range logits.Data {
		want := numericGrad(logits, i, func() float64 {
			l, _ := BCEWithLogits(logits, labels)
			return l
		})
		if math.Abs(float64(grad.Data[i])-want) > 1e-3 {
			t.Fatalf("grad[%d]=%v, want %v", i, grad.Data[i], want)
		}
	}
}

func TestBCEStableAtExtremes(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{80, -80})
	loss, _ := BCEWithLogits(logits, []float32{1, 0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 1e-6 {
		t.Fatalf("extreme-logit loss=%v", loss)
	}
}

func TestCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln 4.
	logits := tensor.New(2, 4)
	loss, grad := CrossEntropyLogits(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss=%v, want ln4", loss)
	}
	// grad rows: p - onehot, scaled by 1/2.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad(0,0)=%v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad(0,1)=%v", grad.At(0, 1))
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	logits := tensor.New(2, 3)
	logits.Set(0, 1, 5)
	loss, grad := CrossEntropyLogits(logits, []int{1, IgnoreIndex})
	lossAll, _ := CrossEntropyLogits(tensor.SliceRows(logits, 0, 1), []int{1})
	if math.Abs(loss-lossAll) > 1e-9 {
		t.Fatalf("ignored row changed loss: %v vs %v", loss, lossAll)
	}
	for _, v := range grad.Row(1) {
		if v != 0 {
			t.Fatal("ignored row must have zero grad")
		}
	}
	// All-ignored: zero loss, zero grad.
	l0, g0 := CrossEntropyLogits(logits, []int{IgnoreIndex, IgnoreIndex})
	if l0 != 0 || tensor.Norm2(g0) != 0 {
		t.Fatal("all-ignored must give zero loss and grad")
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.NewUniform(4, 5, 1, rng)
	targets := []int{0, 2, 4, 1}
	_, grad := CrossEntropyLogits(logits, targets)
	for i := range logits.Data {
		want := numericGrad(logits, i, func() float64 {
			l, _ := CrossEntropyLogits(logits, targets)
			return l
		})
		if math.Abs(float64(grad.Data[i])-want) > 1e-3 {
			t.Fatalf("grad[%d]=%v, want %v", i, grad.Data[i], want)
		}
	}
}

func TestCrossEntropyBadTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropyLogits(tensor.New(1, 3), []int{7})
}

func TestPerplexity(t *testing.T) {
	if p := Perplexity(math.Log(4)); math.Abs(p-4) > 1e-9 {
		t.Fatalf("Perplexity(ln4)=%v", p)
	}
}

// trainQuadratic checks an optimizer minimizes ½‖w - target‖².
func trainQuadratic(t *testing.T, opt Optimizer, steps int, tol float64) {
	t.Helper()
	target := []float32{3, -2, 0.5}
	p := NewParam("w", tensor.New(1, 3))
	for s := 0; s < steps; s++ {
		p.ZeroGrad()
		for i := range p.Grad.Data {
			p.Grad.Data[i] = p.Value.Data[i] - target[i]
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(p.Value.Data[i]-target[i])) > tol {
			t.Fatalf("w[%d]=%v, want %v", i, p.Value.Data[i], target[i])
		}
	}
}

func TestSGDConverges(t *testing.T)      { trainQuadratic(t, NewSGD(0.1), 200, 1e-3) }
func TestAdagradConverges(t *testing.T)  { trainQuadratic(t, NewAdagrad(0.5), 500, 1e-2) }
func TestAdamConverges(t *testing.T)     { trainQuadratic(t, NewAdam(0.05), 800, 1e-2) }
func TestMomentumConverges(t *testing.T) { trainQuadratic(t, &SGD{LR: 0.05, Momentum: 0.9}, 300, 1e-3) }

func TestWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float32{10}))
	o := &SGD{LR: 0.1, WeightDecay: 0.5}
	for i := 0; i < 50; i++ {
		p.ZeroGrad()
		o.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])) > 1 {
		t.Fatalf("weight decay failed to shrink: %v", p.Value.Data[0])
	}
}

func TestEndToEndXORTraining(t *testing.T) {
	// A 2-layer MLP must learn XOR — the canonical sanity check that
	// Forward/Backward/optimizer compose correctly.
	rng := rand.New(rand.NewSource(12))
	mlp := NewSequential(NewLinear(2, 8, rng), &ReLU{}, NewLinear(8, 1, rng))
	x := tensor.FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []float32{0, 1, 1, 0}
	opt := NewAdam(0.05)
	var loss float64
	for step := 0; step < 600; step++ {
		ZeroGrads(mlp)
		logits := mlp.Forward(x)
		var grad *tensor.Matrix
		loss, grad = BCEWithLogits(logits, labels)
		mlp.Backward(grad)
		opt.Step(mlp.Params())
	}
	if loss > 0.05 {
		t.Fatalf("XOR failed to train: loss=%v", loss)
	}
	s := &Sigmoid{}
	probs := s.Forward(mlp.Forward(x))
	for i, want := range labels {
		got := probs.Data[i]
		if (want == 1 && got < 0.5) || (want == 0 && got > 0.5) {
			t.Fatalf("XOR output %d = %v, want %v side", i, got, want)
		}
	}
}

func TestEmbeddingLookupAndBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := NewEmbedding(10, 4, rng)
	out := e.LookupBatch([]int{3, 3, 7})
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	if !tensor.AllClose(tensor.SliceRows(out, 0, 1), tensor.SliceRows(out, 1, 2), 0) {
		t.Fatal("same id must give same row")
	}
	grad := tensor.New(3, 4)
	grad.Fill(1)
	e.BackwardBatch([]int{3, 3, 7}, grad)
	if e.Weight.Grad.At(3, 0) != 2 {
		t.Fatalf("duplicate ids must accumulate: %v", e.Weight.Grad.At(3, 0))
	}
	if e.Weight.Grad.At(7, 0) != 1 || e.Weight.Grad.At(0, 0) != 0 {
		t.Fatal("scatter wrong")
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	e := NewEmbedding(5, 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.LookupBatch([]int{5})
}

func TestEmbeddingNumBytes(t *testing.T) {
	e := NewEmbedding(100, 16, rand.New(rand.NewSource(1)))
	if e.NumBytes() != 100*16*4 {
		t.Fatalf("NumBytes=%d", e.NumBytes())
	}
}
