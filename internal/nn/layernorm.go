package nn

import (
	"math"
	"math/rand"

	"secemb/internal/tensor"
)

// LayerNorm normalizes each row to zero mean / unit variance and applies a
// learned affine transform, as in the transformer blocks. Its memory
// access pattern depends only on the input shape (§V-C: "normalization
// layers ... have deterministic data and control flow").
type LayerNorm struct {
	Dim   int
	Gamma *Param
	Beta  *Param
	Eps   float32

	lastNorm *tensor.Matrix // normalized (pre-affine) activations
	lastInv  []float32      // per-row 1/σ
}

// NewLayerNorm returns a LayerNorm over rows of width dim, with γ=1, β=0.
// rng is accepted for interface symmetry with other layer constructors but
// is unused (the standard init is deterministic).
func NewLayerNorm(dim int, rng *rand.Rand) *LayerNorm {
	_ = rng
	gamma := tensor.New(1, dim)
	gamma.Fill(1)
	return &LayerNorm{
		Dim:   dim,
		Gamma: NewParam("gamma", gamma),
		Beta:  NewParam("beta", tensor.New(1, dim)),
		Eps:   1e-5,
	}
}

// Forward normalizes each row and applies γ,β.
func (l *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	shapeCheck("LayerNorm", x, l.Dim)
	out := tensor.New(x.Rows, x.Cols)
	l.lastNorm = tensor.New(x.Rows, x.Cols)
	l.lastInv = make([]float32, x.Rows)
	g := l.Gamma.Value.Data
	b := l.Beta.Value.Data
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		inv := float32(1 / math.Sqrt(varsum/float64(len(row))+float64(l.Eps)))
		l.lastInv[r] = inv
		norm := l.lastNorm.Row(r)
		dst := out.Row(r)
		for c, v := range row {
			n := (v - float32(mean)) * inv
			norm[c] = n
			dst[c] = n*g[c] + b[c]
		}
	}
	return out
}

// ForwardInPlace normalizes x row-wise directly, recording no Backward
// caches — the workspace inference path (same arithmetic as Forward).
func (l *LayerNorm) ForwardInPlace(x *tensor.Matrix) {
	shapeCheck("LayerNorm", x, l.Dim)
	g := l.Gamma.Value.Data
	b := l.Beta.Value.Data
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		inv := float32(1 / math.Sqrt(varsum/float64(len(row))+float64(l.Eps)))
		for c, v := range row {
			row[c] = (v-float32(mean))*inv*g[c] + b[c]
		}
	}
}

// Backward propagates through the normalization and accumulates γ,β grads.
func (l *LayerNorm) Backward(grad *tensor.Matrix) *tensor.Matrix {
	shapeCheck("LayerNorm.Backward", grad, l.Dim)
	out := tensor.New(grad.Rows, grad.Cols)
	g := l.Gamma.Value.Data
	n := float32(l.Dim)
	for r := 0; r < grad.Rows; r++ {
		gRow := grad.Row(r)
		normRow := l.lastNorm.Row(r)
		inv := l.lastInv[r]
		// dγ += dy ⊙ norm; dβ += dy
		var sumDy, sumDyN float32
		for c, dy := range gRow {
			l.Gamma.Grad.Data[c] += dy * normRow[c]
			l.Beta.Grad.Data[c] += dy
			h := dy * g[c]
			sumDy += h
			sumDyN += h * normRow[c]
		}
		dst := out.Row(r)
		for c, dy := range gRow {
			h := dy * g[c]
			dst[c] = (h - sumDy/n - normRow[c]*sumDyN/n) * inv
		}
	}
	return out
}

// Params returns γ and β.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }
