// Package nn implements the neural-network layers, losses and optimizers
// that the paper's models are assembled from: fully-connected stacks for
// DHE decoders and DLRM MLPs, layer normalization and activations for the
// transformer, and the optimizers used to train/finetune them.
//
// The package provides manual layer-by-layer backpropagation (each Layer
// caches what its Backward needs during Forward) rather than a tape-based
// autograd: the models in this repository are static feed-forward graphs,
// and explicit backprop keeps every memory access pattern auditable — which
// is the point of the paper. Forward passes use only deterministic,
// input-shape-dependent control flow (see internal/oblivious for the
// branchless activation kernels).
package nn

import (
	"fmt"

	"secemb/internal/tensor"
)

// Param is one trainable parameter tensor together with its gradient
// accumulator. Optimizers mutate Value in place using Grad.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter wrapping value with a zeroed gradient.
func NewParam(name string, value *tensor.Matrix) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumParams returns the element count of the parameter.
func (p *Param) NumParams() int { return len(p.Value.Data) }

// Layer is a differentiable module operating on row-batched inputs
// (one example per row).
//
// Forward must cache whatever Backward needs; Backward consumes the
// gradient of the loss w.r.t. the layer output and returns the gradient
// w.r.t. the layer input, accumulating parameter gradients as a side
// effect. Layers are not safe for concurrent Forward calls on the same
// instance during training; inference-only use of pure layers is safe.
type Layer interface {
	Forward(x *tensor.Matrix) *tensor.Matrix
	Backward(grad *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// ParamCount sums the trainable element counts of a set of layers.
func ParamCount(layers ...Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += p.NumParams()
		}
	}
	return n
}

// ZeroGrads clears gradients across layers.
func ZeroGrads(layers ...Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}

func shapeCheck(op string, got *tensor.Matrix, wantCols int) {
	if got.Cols != wantCols {
		panic(fmt.Sprintf("nn: %s expected %d input columns, got %dx%d", op, wantCols, got.Rows, got.Cols))
	}
}
