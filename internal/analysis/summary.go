package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// Summary is the interprocedural taint contract of one unannotated
// function, computed from its body: for the receiver and each named
// parameter, the leak sites that fire if a secret arrives there, whether
// the taint reaches a return value, and which further functions it is
// passed into. Summaries are computed bottom-up over call-graph SCCs to a
// fixpoint, so recursion (direct or mutual) converges on the union of all
// paths.
type Summary struct {
	Fn     *types.Func
	Recv   *ParamSummary
	Params []*ParamSummary
}

// ParamSummary describes what one incoming taint slot does.
type ParamSummary struct {
	Name   string
	obj    types.Object
	Result bool // taint flows to a return value

	leaks    []Diagnostic // conditional leak sites, fired when this slot is tainted
	leakKeys map[string]bool
	inflows  []inflowRec // transitive (callee, param) slots this taint is passed into
	inflowKs map[string]bool
}

// inflowRec is one (function, parameter) slot a summarized parameter
// forwards its taint into.
type inflowRec struct {
	fn    *types.Func
	param string
}

// Leaks returns the conditional leak sites (for the -summaries dump).
func (p *ParamSummary) Leaks() []Diagnostic { return p.leaks }

func (p *ParamSummary) addLeak(d Diagnostic) bool {
	key := diagKey(d)
	if p.leakKeys[key] {
		return false
	}
	p.leakKeys[key] = true
	p.leaks = append(p.leaks, d)
	return true
}

func (p *ParamSummary) addInflow(fn *types.Func, param string) bool {
	key := FuncKey(fn) + "\x00" + param
	if p.inflowKs[key] {
		return false
	}
	p.inflowKs[key] = true
	p.inflows = append(p.inflows, inflowRec{fn: fn, param: param})
	return true
}

func diagKey(d Diagnostic) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s\x00%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// paramFor maps a call-site argument index to the matching parameter
// summary (variadic arguments collapse onto the final parameter). Returns
// nil for unnamed or blank parameters, which cannot carry taint into the
// body.
func (s *Summary) paramFor(argIndex int) *ParamSummary {
	if len(s.Params) == 0 {
		return nil
	}
	if argIndex >= len(s.Params) {
		argIndex = len(s.Params) - 1
	}
	return s.Params[argIndex]
}

// newSummary allocates an empty summary matching the function's
// declaration shape.
func newSummary(prog *Program, key string) *Summary {
	info := prog.fns[key]
	s := &Summary{Fn: info.fn}
	newSlot := func(name string, obj types.Object) *ParamSummary {
		return &ParamSummary{Name: name, obj: obj, leakKeys: map[string]bool{}, inflowKs: map[string]bool{}}
	}
	if info.decl.Recv != nil && len(info.decl.Recv.List) > 0 {
		f := info.decl.Recv.List[0]
		if len(f.Names) > 0 && f.Names[0].Name != "_" {
			s.Recv = newSlot(f.Names[0].Name, info.pkg.Info.Defs[f.Names[0]])
		}
	}
	if info.decl.Type.Params != nil {
		for _, f := range info.decl.Type.Params.List {
			if len(f.Names) == 0 {
				// Unnamed parameter: the body cannot reference it, so taint
				// arriving there is inert. Keep the slot for index alignment.
				s.Params = append(s.Params, nil)
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					s.Params = append(s.Params, nil)
					continue
				}
				s.Params = append(s.Params, newSlot(name.Name, info.pkg.Info.Defs[name]))
			}
		}
	}
	return s
}

// computeSummary (re)derives fn's summary by seeding each taint slot
// individually and walking the body to a fixpoint, resolving calls through
// the summaries computed so far. Reports whether anything grew (the SCC
// fixpoint's change signal). Taint is a union lattice, so per-slot seeding
// composes exactly: a site leaks under a taint set iff it leaks under some
// singleton of it.
func (prog *Program) computeSummary(key string) bool {
	s := prog.summaries[key]
	info := prog.fns[key]
	changed := false
	slots := make([]*ParamSummary, 0, len(s.Params)+1)
	if s.Recv != nil {
		slots = append(slots, s.Recv)
	}
	for _, p := range s.Params {
		if p != nil {
			slots = append(slots, p)
		}
	}
	for _, slot := range slots {
		if slot.obj == nil {
			continue
		}
		w := &taintWalker{
			prog:        prog,
			pkg:         info.pkg,
			info:        info.pkg.Info,
			tainted:     map[types.Object]bool{slot.obj: true},
			summaryMode: true,
		}
		suffix := fmt.Sprintf(" (via secret-tainted parameter %q of %s)", slot.Name, info.fn.Name())
		w.emitNew = func(d Diagnostic) {
			d.Message += suffix
			if slot.addLeak(d) {
				changed = true
			}
		}
		w.emitInherited = func(d Diagnostic) {
			if slot.addLeak(d) {
				changed = true
			}
		}
		w.inflow = func(callee *types.Func, param string, _ token.Position) {
			if slot.addInflow(callee, param) {
				changed = true
			}
		}
		for range [64]struct{}{} {
			w.changed = false
			w.stmt(info.decl.Body, returnCtx{})
			if !w.changed {
				break
			}
		}
		w.reporting = true
		w.stmt(info.decl.Body, returnCtx{})
		if w.returnTainted && !slot.Result {
			slot.Result = true
			changed = true
		}
	}
	return changed
}

// Summaries returns every computed summary sorted by function key, for the
// -summaries dump mode of cmd/obliviouslint.
func (prog *Program) Summaries() []*Summary {
	prog.build()
	out := make([]*Summary, 0, len(prog.summaries))
	for _, s := range prog.summaries {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Key returns the qualified function name of the summarized function.
func (s *Summary) Key() string { return FuncKey(s.Fn) }
