package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Findings: []Diagnostic{{
			Pos:     token.Position{Filename: "internal/core/storage.go", Line: 46, Column: 21},
			Rule:    RuleIndex,
			Message: "slice bounds depend on secret-tainted value",
		}},
		Waived: []Diagnostic{{
			Pos:     token.Position{Filename: "internal/oram/stash.go", Line: 93, Column: 2},
			Rule:    RuleBranch,
			Message: "branch condition depends on secret-tainted value",
			Waived:  true,
			Waiver:  "overflow abort",
		}},
	}
}

// The writer's output must satisfy the structural 2.1.0 validator and
// carry findings as errors, waivers as inSource suppressions.
func TestSARIFRoundTrip(t *testing.T) {
	data, err := SARIF(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(data); err != nil {
		t.Fatalf("writer output failed validation: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "obliviouslint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	finding, waived := run.Results[0], run.Results[1]
	if len(finding.Suppressions) != 0 {
		t.Error("unwaived finding carries suppressions")
	}
	if len(waived.Suppressions) != 1 || waived.Suppressions[0].Kind != "inSource" ||
		waived.Suppressions[0].Justification != "overflow abort" {
		t.Errorf("waiver suppression wrong: %+v", waived.Suppressions)
	}
	if uri := finding.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/core/storage.go" {
		t.Errorf("uri = %q", uri)
	}
	// Every emitted rule id must resolve through ruleIndex and carry
	// driver metadata.
	for _, r := range run.Results {
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex mismatch for %s", r.RuleID)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.RuleID)
		}
	}
}

func TestValidateSARIFRejects(t *testing.T) {
	base, err := SARIF(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"wrong version", func(s string) string {
			return strings.Replace(s, `"version": "2.1.0"`, `"version": "2.0.0"`, 1)
		}, "version"},
		{"absolute uri", func(s string) string {
			return strings.Replace(s, `"uri": "internal/core/storage.go"`, `"uri": "/root/repo/internal/core/storage.go"`, 1)
		}, "absolute uri"},
		{"zero startLine", func(s string) string {
			return strings.Replace(s, `"startLine": 46`, `"startLine": 0`, 1)
		}, "startLine"},
		{"dangling ruleIndex", func(s string) string {
			return strings.Replace(s, `"ruleIndex": 1`, `"ruleIndex": 7`, 1)
		}, "ruleIndex"},
		{"bad suppression kind", func(s string) string {
			return strings.Replace(s, `"kind": "inSource"`, `"kind": "vibes"`, 1)
		}, "suppression kind"},
	}
	for _, tc := range cases {
		mutated := tc.mutate(string(base))
		if mutated == string(base) {
			t.Errorf("%s: mutation did not apply", tc.name)
			continue
		}
		err := ValidateSARIF([]byte(mutated))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
	if err := ValidateSARIF([]byte(`{"version":"2.1.0"}`)); err == nil {
		t.Error("log without runs validated")
	}
}
