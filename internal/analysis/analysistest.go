package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads srcRoot/<importPath> (the analysistest convention:
// fixtures live under testdata/src), runs the analyzers, and compares the
// unwaived findings against `// want "regexp"` comments: every finding must
// be expected on its line and every expectation must be matched. Waived
// findings never match a want — a fixture exercising //lint:allow expects
// silence.
func RunFixture(t *testing.T, srcRoot, importPath string, analyzers ...*Analyzer) *Result {
	t.Helper()
	dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
	pkg, idx, err := LoadDir(dir, importPath, srcRoot)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	res, err := Run(analyzers, []*Package{pkg}, idx)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", importPath, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range res.Findings {
		if !wants.match(d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
	}
	return res
}

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ list []*wantExpectation }

// collectWants parses `// want "re" "re"…` comments; an expectation applies
// to the line its comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, _ := strconv.Unquote(q)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					ws.list = append(ws.list, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return ws
}

func (ws *wantSet) match(d Diagnostic) bool {
	full := fmt.Sprintf("%s: %s", d.Rule, d.Message)
	for _, w := range ws.list {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(full) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*wantExpectation {
	var out []*wantExpectation
	for _, w := range ws.list {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
