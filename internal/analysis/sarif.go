package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
)

// SARIF output (Static Analysis Results Interchange Format 2.1.0), the
// schema GitHub code scanning ingests: findings surface as inline PR
// annotations instead of a log line in a failed job. Waived findings are
// carried as suppressed results (kind "inSource", justification = the
// waiver rationale), so the suppression history is visible in the code
// scanning UI rather than silently dropped.

const (
	sarifSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
	sarifVersion   = "2.1.0"
)

// ruleDescriptions is the driver.rules metadata, one entry per rule id.
var ruleDescriptions = map[string]string{
	RuleBranch:       "control flow depends on a secret-tainted value",
	RuleIndex:        "memory address (index or slice bound) depends on a secret-tainted value",
	RuleLoop:         "loop trip count depends on a secret-tainted value",
	RuleCall:         "secret-tainted value escapes into an unauditable callee",
	RuleDeclass:      "secret-tainted value declassified through an unannotated return",
	RuleDirective:    "malformed secemb directive or stale //lint:allow waiver",
	RuleAlloc:        "allocation size depends on a secret-tainted value",
	RuleMapKey:       "map operation keyed by a secret-tainted value",
	RuleChan:         "secret-tainted value crosses a channel or goroutine boundary",
	RuleShift:        "shift amount depends on a secret-tainted value",
	RuleDrift:        "exported function receives secret taint but carries no secemb:secret directive",
	RuleShadow:       "shadowed variable whose outer binding is used after the inner scope",
	RuleUnusedResult: "discarded result of a pure function call",
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIF renders a run's diagnostics as a SARIF 2.1.0 log. Diagnostic
// paths should already be repository-relative (see cmd/obliviouslint);
// they are slash-normalized here for the artifactLocation URIs.
func SARIF(res *Result) ([]byte, error) {
	ruleIDs := map[string]bool{}
	for _, d := range res.Findings {
		ruleIDs[d.Rule] = true
	}
	for _, d := range res.Waived {
		ruleIDs[d.Rule] = true
	}
	ids := make([]string, 0, len(ruleIDs))
	for id := range ruleIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(ids))
	for i, id := range ids {
		ruleIndex[id] = i
		desc := ruleDescriptions[id]
		if desc == "" {
			desc = id
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: desc}})
	}

	toResult := func(d Diagnostic) sarifResult {
		r := sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIndex[d.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Waived {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Waiver}}
		}
		return r
	}

	results := make([]sarifResult, 0, len(res.Findings)+len(res.Waived))
	for _, d := range res.Findings {
		results = append(results, toResult(d))
	}
	for _, d := range res.Waived {
		results = append(results, toResult(d))
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "obliviouslint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateSARIF structurally checks a byte slice against the SARIF 2.1.0
// shape GitHub code scanning requires: version 2.1.0, at least one run
// with tool.driver.name, and every result carrying a ruleId resolvable
// through ruleIndex, a message, and a physical location with a relative
// URI and a 1-based startLine. It is the offline stand-in for the JSON
// Schema (CI has no network), and the sarif tests run it over both
// synthetic and real reports.
func ValidateSARIF(data []byte) error {
	var log sarifLog
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		return fmt.Errorf("sarif: not decodable into the 2.1.0 shape: %w", err)
	}
	if log.Version != sarifVersion {
		return fmt.Errorf("sarif: version = %q, want %q", log.Version, sarifVersion)
	}
	if log.Schema == "" {
		return fmt.Errorf("sarif: missing $schema")
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for ri, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: runs[%d]: missing tool.driver.name", ri)
		}
		for i, res := range run.Results {
			if res.RuleID == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d]: missing ruleId", ri, i)
			}
			if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
				return fmt.Errorf("sarif: runs[%d].results[%d]: ruleIndex %d out of range", ri, i, res.RuleIndex)
			}
			if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
				return fmt.Errorf("sarif: runs[%d].results[%d]: ruleIndex resolves to %q, want %q", ri, i, got, res.RuleID)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d]: empty message", ri, i)
			}
			switch res.Level {
			case "none", "note", "warning", "error":
			default:
				return fmt.Errorf("sarif: runs[%d].results[%d]: invalid level %q", ri, i, res.Level)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: runs[%d].results[%d]: no locations", ri, i)
			}
			for _, loc := range res.Locations {
				uri := loc.PhysicalLocation.ArtifactLocation.URI
				if uri == "" {
					return fmt.Errorf("sarif: runs[%d].results[%d]: empty artifact uri", ri, i)
				}
				if filepath.IsAbs(uri) {
					return fmt.Errorf("sarif: runs[%d].results[%d]: absolute uri %q (code scanning needs repo-relative paths)", ri, i, uri)
				}
				if loc.PhysicalLocation.Region.StartLine < 1 {
					return fmt.Errorf("sarif: runs[%d].results[%d]: startLine %d < 1", ri, i, loc.PhysicalLocation.Region.StartLine)
				}
			}
			for _, sup := range res.Suppressions {
				if sup.Kind != "inSource" && sup.Kind != "external" {
					return fmt.Errorf("sarif: runs[%d].results[%d]: invalid suppression kind %q", ri, i, sup.Kind)
				}
			}
		}
	}
	return nil
}
