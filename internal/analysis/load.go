package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loaders below exist because this module carries no third-party
// dependencies: instead of golang.org/x/tools/go/packages, module packages
// are enumerated with `go list -export` and type-checked from source
// against the toolchain's gc export data, and fixture packages are loaded
// from bare directories with a map-based importer.

// listedPkg is the subset of `go list -json` this loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// ModuleSet is the result of loading a module: the packages selected for
// analysis (Targets), every module package with syntax loaded (All —
// including dep-only ones, which the interprocedural engine needs for
// call-graph summaries), and a directive index covering all of them.
type ModuleSet struct {
	All        []*Package // every non-standard package, in import-path order
	Targets    []*Package // the subset matching the load patterns
	Directives *Index
	BadDirs    []Diagnostic // malformed directives anywhere in the module
}

// Program builds the interprocedural view over the loaded module.
func (set *ModuleSet) Program() *Program {
	return NewProgram(set.All, set.Targets, set.Directives)
}

// LoadModule lists patterns (e.g. "./...") in moduleDir with their deps,
// type-checks every non-standard package from source against gc export
// data, and collects secemb directives module-wide. Standard-library
// packages are consumed as export data only and are never analyzed.
func LoadModule(moduleDir string, patterns ...string) (*ModuleSet, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var modPkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list output: %w", derr)
		}
		if p.Incomplete {
			return nil, fmt.Errorf("package %s did not build; fix compile errors before linting", p.ImportPath)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			q := p
			modPkgs = append(modPkgs, &q)
		}
	}
	sort.Slice(modPkgs, func(i, j int) bool { return modPkgs[i].ImportPath < modPkgs[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	set := &ModuleSet{Directives: NewIndex()}
	for _, lp := range modPkgs {
		files, perr := parseDir(fset, lp.Dir, lp.GoFiles)
		if perr != nil {
			return nil, perr
		}
		pkg, cerr := typecheck(fset, lp.ImportPath, files, imp)
		if cerr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, cerr)
		}
		set.BadDirs = append(set.BadDirs, CollectDirectives(set.Directives, pkg)...)
		set.All = append(set.All, pkg)
		if !lp.DepOnly {
			set.Targets = append(set.Targets, pkg)
		}
	}
	return set, nil
}

// LoadDir loads a single package from a bare directory. Imports are
// resolved against srcRoot (dir layout srcRoot/<import/path>/*.go), the
// convention of this package's analysistest fixtures; with srcRoot == ""
// the package must be import-free. The returned index covers the package
// and everything it (transitively) imported.
func LoadDir(dir, importPath, srcRoot string) (*Package, *Index, error) {
	fset := token.NewFileSet()
	ix := NewIndex()
	loader := &dirLoader{fset: fset, srcRoot: srcRoot, idx: ix, loaded: map[string]*types.Package{}}
	pkg, err := loader.load(dir, importPath)
	if err != nil {
		return nil, nil, err
	}
	return pkg, ix, nil
}

type dirLoader struct {
	fset    *token.FileSet
	srcRoot string
	idx     *Index
	loaded  map[string]*types.Package
}

func (l *dirLoader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.srcRoot == "" {
		return nil, fmt.Errorf("import %q not allowed: standalone packages must be self-contained", path)
	}
	pkg, err := l.load(filepath.Join(l.srcRoot, filepath.FromSlash(path)), path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *dirLoader) load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)
	files, err := parseDir(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := typecheck(l.fset, importPath, files, l)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	l.loaded[importPath] = pkg.Types
	CollectDirectives(l.idx, pkg)
	return pkg, nil
}

func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tp, Info: info}, nil
}
