package analysis

import "testing"

func TestShadow(t *testing.T) {
	RunFixture(t, fixtureRoot, "shadow", Shadow())
}

func TestUnusedResult(t *testing.T) {
	RunFixture(t, fixtureRoot, "unusedresult", UnusedResult())
}

// The strict-vet analyzers must stay quiet on the deliberately taint-leaky
// fixture (it is vet-clean by construction): every finding of the combined
// run must still be one of leaky's obliviouslint wants, with no vet noise
// on top.
func TestVetQuietOnLeakyFixture(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "leaky", Obliviouslint(), Shadow(), UnusedResult())
	for _, d := range res.Findings {
		if d.Rule == RuleShadow || d.Rule == RuleUnusedResult {
			t.Errorf("vet finding on the vet-clean leaky fixture: %s", d)
		}
	}
}

// The vetleaky fixture is dirty under all three analyzers at once: a
// secret-dependent branch, a live-after shadow, and a discarded Sprintf
// that is simultaneously a taint escape. The combined run must land every
// rule family at the annotated lines.
func TestVetLeakyFixture(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "vetleaky", Obliviouslint(), Shadow(), UnusedResult())
	seen := map[string]bool{}
	for _, d := range res.Findings {
		seen[d.Rule] = true
	}
	for _, rule := range []string{RuleBranch, RuleCall, RuleShadow, RuleUnusedResult} {
		if !seen[rule] {
			t.Errorf("combined run missing a %s finding", rule)
		}
	}
}
