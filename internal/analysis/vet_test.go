package analysis

import "testing"

func TestShadow(t *testing.T) {
	RunFixture(t, fixtureRoot, "shadow", Shadow())
}

func TestUnusedResult(t *testing.T) {
	RunFixture(t, fixtureRoot, "unusedresult", UnusedResult())
}
