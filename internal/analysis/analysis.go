// Package analysis is a static taint checker that proves secret-independence
// of the repository's oblivious code paths at compile time — the static
// counterpart of the dynamic trace-equivalence audit in internal/leakcheck.
//
// The dynamic audit replays a 9-input adversarial panel and compares memory
// traces; it can only ever witness leaks its panel happens to trigger. The
// checker in this package instead machine-checks the paper's construction
// argument ("the access pattern is input-independent by construction") for
// *all* inputs at once: functions whose parameters carry secrets (lookup
// indices, ORAM leaf labels, stash metadata) declare so with a
// `// secemb:secret <param>` doc directive, and the obliviouslint analyzer
// propagates taint from those parameters through assignments, calls and
// returns, reporting every place a tainted value influences control flow or
// an address:
//
//   - branch  — `if`/`switch`/`select` conditions on tainted values
//   - index   — slice/array/map indexing (or slice bounds) by a tainted
//     expression
//   - loop    — tainted loop bounds
//   - call    — tainted arguments escaping into unannotated (hence
//     unaudited) functions, or into non-secret parameters of annotated ones
//   - declass — tainted values returned from functions not annotated
//     `secemb:secret return`
//
// The branchless primitives of internal/oblivious (Select64, CondCopy, …)
// are the sanctioned sinks: calls into that package (and into the pure
// arithmetic of math and math/bits) accept tainted operands freely, and
// their results stay tainted. Residual findings that are safe under the
// declared threat model (abort-on-invariant panics, protocol-sanctioned
// declassifications such as an ORAM's fresh-leaf remap) are waived in place
// with a reviewed `//lint:allow <rule> <rationale>` comment.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, analysistest-style
// fixtures) but is built only on the standard library's go/ast, go/types
// and go/importer, so the module keeps zero third-party dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check, in the style of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one (Analyzer, Package) unit of work.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Directives *Index // module-wide directive index (may cover more than Pkg)

	report func(Diagnostic)
}

// Reportf records a finding. rule is the waivable identifier
// ("obliviouslint/branch", "vet/shadow", …).
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	Waived  bool           `json:"waived,omitempty"`
	Waiver  string         `json:"waiver,omitempty"` // rationale from //lint:allow
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	if d.Waived {
		s += fmt.Sprintf(" (waived: %s)", d.Waiver)
	}
	return s
}

// Result aggregates the diagnostics of a run, split by waiver status.
type Result struct {
	Findings []Diagnostic `json:"findings"` // unwaived — these fail the build
	Waived   []Diagnostic `json:"waived"`   // suppressed by //lint:allow
}

// Run applies every analyzer to every package, resolves waivers against the
// packages' //lint:allow comments, and returns the diagnostics sorted by
// position. The directive index must already cover all packages (see
// CollectDirectives).
func Run(analyzers []*Analyzer, pkgs []*Package, idx *Index) (*Result, error) {
	res := &Result{}
	for _, pkg := range pkgs {
		waivers := collectWaivers(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Directives: idx}
			pass.report = func(d Diagnostic) {
				if w, ok := waivers.lookup(d.Pos, d.Rule); ok {
					d.Waived, d.Waiver = true, w
					res.Waived = append(res.Waived, d)
				} else {
					res.Findings = append(res.Findings, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiags(res.Findings)
	sortDiags(res.Waived)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
