// Package analysis is a static taint checker that proves secret-independence
// of the repository's oblivious code paths at compile time — the static
// counterpart of the dynamic trace-equivalence audit in internal/leakcheck.
//
// The dynamic audit replays a 9-input adversarial panel and compares memory
// traces; it can only ever witness leaks its panel happens to trigger. The
// checker in this package instead machine-checks the paper's construction
// argument ("the access pattern is input-independent by construction") for
// *all* inputs at once: functions whose parameters carry secrets (lookup
// indices, ORAM leaf labels, stash metadata) declare so with a
// `// secemb:secret <param>` doc directive, and the obliviouslint analyzer
// propagates taint from those parameters through assignments, calls and
// returns, reporting every place a tainted value influences control flow or
// an address:
//
//   - branch  — `if`/`switch`/`select` conditions on tainted values
//   - index   — slice/array/map indexing (or slice bounds) by a tainted
//     expression
//   - loop    — tainted loop bounds
//   - call    — tainted arguments escaping into unannotated (hence
//     unaudited) functions, or into non-secret parameters of annotated ones
//   - declass — tainted values returned from functions not annotated
//     `secemb:secret return`
//
// The branchless primitives of internal/oblivious (Select64, CondCopy, …)
// are the sanctioned sinks: calls into that package (and into the pure
// arithmetic of math and math/bits) accept tainted operands freely, and
// their results stay tainted. Residual findings that are safe under the
// declared threat model (abort-on-invariant panics, protocol-sanctioned
// declassifications such as an ORAM's fresh-leaf remap) are waived in place
// with a reviewed `//lint:allow <rule> <rationale>` comment.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, analysistest-style
// fixtures) but is built only on the standard library's go/ast, go/types
// and go/importer, so the module keeps zero third-party dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check, in the style of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	// Rules lists every rule identifier this analyzer can emit. The
	// stale-waiver pass uses it to decide which //lint:allow waivers a run
	// could have consumed: a waiver naming an active rule that suppressed
	// nothing is itself reported.
	Rules []string
	Run   func(*Pass) error
	// Finish, if non-nil, runs once after every per-package pass with the
	// whole-program view — for cross-package rules (annotation drift) that
	// need the union of all root walks.
	Finish func(*Program, func(Diagnostic)) error
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one (Analyzer, Package) unit of work.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Prog       *Program // whole-program view (call graph + summaries)
	Directives *Index   // module-wide directive index (may cover more than Pkg)

	report func(Diagnostic)
}

// Reportf records a finding. rule is the waivable identifier
// ("obliviouslint/branch", "vet/shadow", …).
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	Waived  bool           `json:"waived,omitempty"`
	Waiver  string         `json:"waiver,omitempty"` // rationale from //lint:allow
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	if d.Waived {
		s += fmt.Sprintf(" (waived: %s)", d.Waiver)
	}
	return s
}

// Result aggregates the diagnostics of a run, split by waiver status.
type Result struct {
	Findings []Diagnostic `json:"findings"` // unwaived — these fail the build
	Waived   []Diagnostic `json:"waived"`   // suppressed by //lint:allow
}

// Run applies every analyzer to every package and returns the diagnostics
// sorted by position. It is the single-package-set convenience wrapper
// around RunProgram: every package is both analyzed and available for
// interprocedural summaries.
func Run(analyzers []*Analyzer, pkgs []*Package, idx *Index) (*Result, error) {
	return RunProgram(analyzers, NewProgram(pkgs, pkgs, idx))
}

// RunProgram applies every analyzer to the program's target packages,
// resolving waivers against the //lint:allow comments of the whole
// program (inherited findings land at callee positions, which may be in
// non-target packages). Identical diagnostics reached through different
// audit roots are deduplicated. After all passes, waivers in target
// packages that name an active rule but suppressed nothing are reported
// as stale (obliviouslint/directive): the interprocedural engine has
// proved them unnecessary, and an unnecessary waiver is a hole the next
// refactor can leak through.
func RunProgram(analyzers []*Analyzer, prog *Program) (*Result, error) {
	res := &Result{}
	waivers := &waiverSet{byLine: map[string]map[int]map[string]string{}}
	for _, pkg := range prog.All {
		waivers.merge(collectWaivers(pkg.Fset, pkg.Files))
	}
	used := map[string]bool{} // file\x00line\x00rule of consumed waivers
	seen := map[string]bool{} // diagKey dedup across roots
	resolve := func(d Diagnostic) {
		key := diagKey(d)
		if seen[key] {
			return
		}
		seen[key] = true
		if rationale, line, ok := waivers.match(d.Pos, d.Rule); ok {
			used[waiverUseKey(d.Pos.Filename, line, d.Rule)] = true
			d.Waived, d.Waiver = true, rationale
			res.Waived = append(res.Waived, d)
		} else {
			res.Findings = append(res.Findings, d)
		}
	}
	for _, pkg := range prog.Targets {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, Directives: prog.Directives, report: resolve}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(prog, resolve); err != nil {
			return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
		}
	}

	active := map[string]bool{}
	for _, a := range analyzers {
		for _, r := range a.Rules {
			active[r] = true
		}
	}
	targetFiles := map[string]bool{}
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			targetFiles[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}
	for _, w := range waivers.records {
		if !active[w.rule] || !targetFiles[w.pos.Filename] {
			continue
		}
		if used[waiverUseKey(w.pos.Filename, w.pos.Line, w.rule)] {
			continue
		}
		resolve(Diagnostic{
			Pos:  w.pos,
			Rule: RuleDirective,
			Message: fmt.Sprintf("stale waiver: //lint:allow %s suppresses nothing here — delete it (rationale was: %s)",
				w.rule, w.rationale),
		})
	}
	sortDiags(res.Findings)
	sortDiags(res.Waived)
	return res, nil
}

func waiverUseKey(file string, line int, rule string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", file, line, rule)
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
