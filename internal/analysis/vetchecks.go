package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule identifiers for the strict-vet analyzers.
const (
	RuleShadow       = "vet/shadow"
	RuleUnusedResult = "vet/unusedresult"
)

// Shadow reports := declarations that shadow a same-typed variable of the
// enclosing function which is still used after the shadowing scope ends —
// the classic source of "assigned to the wrong err" bugs. The liveness
// condition keeps the check quiet on the idiomatic redeclare-in-branch
// pattern vet's experimental shadow check is notorious for flagging.
func Shadow() *Analyzer {
	return &Analyzer{
		Name:  "shadow",
		Doc:   "report shadowed variables whose outer binding is used after the inner scope",
		Rules: []string{RuleShadow},
		Run:   runShadow,
	}
}

func runShadow(pass *Pass) error {
	info := pass.Pkg.Info

	// Index every use position of every object once.
	lastUse := map[types.Object]int{}
	for id, obj := range info.Uses {
		pos := pass.Pkg.Fset.Position(id.Pos()).Offset
		if pos > lastUse[obj] {
			lastUse[obj] = pos
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			fnStart, fnEnd := fd.Pos(), fd.End()
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE {
					return true
				}
				for _, l := range as.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					inner, ok := info.Defs[id].(*types.Var)
					if !ok {
						continue
					}
					innerScope := inner.Parent()
					if innerScope == nil || innerScope.Parent() == nil {
						continue
					}
					_, outerObj := innerScope.Parent().LookupParent(id.Name, id.Pos())
					outer, ok := outerObj.(*types.Var)
					if !ok || outer == inner || outer.IsField() {
						continue
					}
					// Only shadowing within the same function, same type.
					if outer.Pos() < fnStart || outer.Pos() >= fnEnd {
						continue
					}
					if !types.Identical(outer.Type(), inner.Type()) {
						continue
					}
					// Outer must still be live after the inner scope ends.
					innerEnd := pass.Pkg.Fset.Position(innerScope.End()).Offset
					if lastUse[outer] > innerEnd {
						pass.Reportf(id.Pos(), RuleShadow,
							"declaration of %q shadows declaration at line %d (outer is used after this scope)",
							id.Name, pass.Pkg.Fset.Position(outer.Pos()).Line)
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}

// pureFuncs are functions whose only effect is their return value; calling
// them as a statement discards the work.
var pureFuncs = map[string]bool{
	"fmt.Sprintf":        true,
	"fmt.Sprint":         true,
	"fmt.Sprintln":       true,
	"fmt.Errorf":         true,
	"errors.New":         true,
	"sort.SliceIsSorted": true,
	"strings.TrimSpace":  true,
	"strings.ToLower":    true,
	"strings.ToUpper":    true,
	"strings.Repeat":     true,
	"strconv.Itoa":       true,
	"strconv.Quote":      true,
}

// UnusedResult reports statement-level calls to pure functions whose
// results are discarded.
func UnusedResult() *Analyzer {
	return &Analyzer{
		Name:  "unusedresult",
		Doc:   "report discarded results of pure function calls",
		Rules: []string{RuleUnusedResult},
		Run:   runUnusedResult,
	}
}

func runUnusedResult(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			key := fn.Pkg().Path() + "." + fn.Name()
			if pureFuncs[key] {
				pass.Reportf(call.Pos(), RuleUnusedResult, "result of %s call is discarded", key)
			}
			return true
		})
	}
	return nil
}
