package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is the whole-program view the interprocedural engine works on:
// every package whose syntax is available (All) and the subset whose
// annotated functions are analyzed as audit roots (Targets). Summaries are
// computed over All, so a target root calling into a dep-only module
// package still has the callee's body analyzed instead of falling back to
// a conservative call finding.
//
// All maps are keyed by FuncKey, not *types.Func: each package is
// type-checked from source against gc export data, so the same function
// seen from a caller's package is a different object than the one from its
// defining package — the qualified name is the stable identity.
type Program struct {
	All        []*Package
	Targets    []*Package
	Directives *Index

	built     bool
	fns       map[string]*fnInfo
	summaries map[string]*Summary
	inflows   map[string]*inflowSet // drift bookkeeping, filled by root walks
}

// fnInfo ties a resolved function to its declaration syntax in the
// defining package's source view.
type fnInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// inflowSet records which parameters of an unannotated function received
// secret-tainted arguments, and where the first such call happened.
type inflowSet struct {
	params   map[string]bool
	firstPos token.Position
}

// NewProgram builds a Program. targets must be a subset of all (the same
// *Package pointers); directives must cover every package in all.
func NewProgram(all, targets []*Package, directives *Index) *Program {
	return &Program{All: all, Targets: targets, Directives: directives}
}

// build indexes every function declaration with a body, constructs the
// summary-dependency call graph, and computes taint summaries bottom-up in
// SCC order. Idempotent.
func (prog *Program) build() {
	if prog.built {
		return
	}
	prog.built = true
	prog.fns = map[string]*fnInfo{}
	prog.summaries = map[string]*Summary{}
	prog.inflows = map[string]*inflowSet{}

	for _, pkg := range prog.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || fn == nil {
					continue
				}
				if key := FuncKey(fn); key != "" {
					prog.fns[key] = &fnInfo{fn: fn, decl: fd, pkg: pkg}
				}
			}
		}
	}

	// Summaries are needed only for functions the call-boundary logic
	// consults them for: unannotated (no secret/return contract), non-sink
	// functions with bodies. Annotated functions are audited as their own
	// roots and checked at calls by their declared contract.
	var nodes []string
	for key, info := range prog.fns {
		if prog.summarizable(info.fn) {
			nodes = append(nodes, key)
		}
	}
	sort.Strings(nodes)

	edges := map[string][]string{}
	for _, key := range nodes {
		info := prog.fns[key]
		callees := map[string]bool{}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(info.pkg.Info, call); callee != nil {
				ck := FuncKey(callee)
				if ck != "" && ck != key && prog.fns[ck] != nil && prog.summarizable(callee) {
					callees[ck] = true
				}
			}
			return true
		})
		for ck := range callees {
			edges[key] = append(edges[key], ck)
		}
		sort.Strings(edges[key])
	}

	for _, scc := range sccOrder(nodes, edges) {
		// Initialize empty summaries so recursive calls within the SCC
		// resolve to the current (monotonically growing) approximation.
		for _, key := range scc {
			prog.summaries[key] = newSummary(prog, key)
		}
		for range [32]struct{}{} {
			changed := false
			for _, key := range scc {
				if prog.computeSummary(key) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// summarizable reports whether calls into fn are resolved through a taint
// summary (rather than a directive contract or the sink whitelist).
func (prog *Program) summarizable(fn *types.Func) bool {
	if fn.Pkg() != nil && sinkPackages[fn.Pkg().Path()] {
		return false
	}
	dir := prog.Directives.Lookup(fn)
	if dir != nil && (dir.Sink || len(dir.Secret) > 0 || dir.Return) {
		return false
	}
	return true
}

// summaryFor returns fn's taint summary, or nil when calls to fn must be
// handled by contract, sink whitelist, or the conservative fallback.
func (prog *Program) summaryFor(fn *types.Func) *Summary {
	prog.build()
	return prog.summaries[FuncKey(fn)]
}

// recordInflow notes that param of fn received a secret-tainted argument
// (directly from an audit root, or transitively through summaries). The
// drift rule reads this after all roots have been walked.
func (prog *Program) recordInflow(fn *types.Func, param string, pos token.Position) {
	key := FuncKey(fn)
	if key == "" {
		return
	}
	set := prog.inflows[key]
	if set == nil {
		set = &inflowSet{params: map[string]bool{}, firstPos: pos}
		prog.inflows[key] = set
	}
	set.params[param] = true
}

// sccOrder returns the strongly connected components of the call graph in
// reverse topological order (callees before callers), via Tarjan's
// algorithm with an explicit stack of work items.
func sccOrder(nodes []string, edges map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		fn string
		ei int // next edge to visit
	}

	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{fn: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(edges[f.fn]) {
				callee := edges[f.fn][f.ei]
				f.ei++
				if _, seen := index[callee]; !seen {
					index[callee], low[callee] = next, next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{fn: callee})
				} else if onStack[callee] && low[f.fn] > index[callee] {
					low[f.fn] = index[callee]
				}
				continue
			}
			// All edges visited: close the frame.
			fn := f.fn
			frames = frames[:len(frames)-1]
			if len(frames) > 0 && low[frames[len(frames)-1].fn] > low[fn] {
				low[frames[len(frames)-1].fn] = low[fn]
			}
			if low[fn] == index[fn] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == fn {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
