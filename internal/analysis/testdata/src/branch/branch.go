// Fixture: branch-class findings — if/switch/select conditions on tainted
// values (check class 1).
package branch

// secemb:secret x return
func If(x uint64) uint64 {
	if x > 10 { // want `obliviouslint/branch: branch condition depends on secret-tainted value \(guards an early return\)`
		return 0
	}
	return x
}

// secemb:secret x
func Switch(x uint64) {
	y := x * 3
	switch y { // want `obliviouslint/branch: switch tag depends on secret-tainted value`
	case 1:
	}
}

// secemb:secret x
func TaglessSwitch(x uint64) {
	switch {
	case x == 0: // want `obliviouslint/branch: switch case condition depends on secret-tainted value`
	default:
	}
}

// secemb:secret v
func TypeSwitch(v interface{}) {
	switch v.(type) { // want `obliviouslint/branch: type switch subject depends on secret-tainted value`
	case int:
	}
}

// secemb:secret x
func EarlyContinue(xs []int, x int) {
	for range xs {
		if x > 0 { // want `obliviouslint/branch: branch condition depends on secret-tainted value \(guards a break/continue/goto\)`
			continue
		}
	}
}
