// Package fmt is a fixture stub: just enough surface for the unusedresult
// fixture to resolve fmt.Sprintf under the loader's no-stdlib rule.
package fmt

// Sprintf formats according to a format specifier and returns the string.
func Sprintf(format string, a ...interface{}) string { return format }

// Println is impure (writes to stdout) and must not be flagged.
func Println(a ...interface{}) (int, error) { return 0, nil }
