// Fixture: index-class findings — slice/array/map addressing by a tainted
// expression (check class 2).
package index

// secemb:secret i return
func Gather(table []float32, i int) float32 {
	return table[i] // want `obliviouslint/index: index depends on secret-tainted value`
}

// secemb:secret k return
func MapGet(m map[uint64]int, k uint64) int {
	return m[k] // want `obliviouslint/mapkey: map access keyed by secret-tainted value`
}

// secemb:secret lo
func Window(buf []byte, lo int) {
	_ = buf[lo:] // want `obliviouslint/index: slice bounds depend on secret-tainted value`
}

// secemb:secret id
func StoreSide(out []uint64, id uint64) {
	out[id&7] = 1 // want `obliviouslint/index: index depends on secret-tainted value`
}

// secemb:secret k
func MapDelete(m map[uint64]int, k uint64) {
	delete(m, k) // want `obliviouslint/mapkey: map delete keyed by secret-tainted value`
}

// secemb:secret i return
func Derived(table []float32, width, i int) float32 {
	off := i * width
	return table[off+1] // want `obliviouslint/index: index depends on secret-tainted value`
}
