// Fixture: //lint:allow waivers — a waiver with a rationale suppresses the
// named rule on its own line and the next; a bare waiver does not; and a
// waiver that suppresses nothing is itself reported stale. Exercised by
// TestObliviouslintWaivers with direct assertions, because the stale
// finding lands on the waiver's own line, where a want comment cannot sit.
package waived

// secemb:secret x
func Checked(x uint64, n int) {
	//lint:allow obliviouslint/branch bounds abort: an out-of-range id kills the request, revealing only validity
	if x >= uint64(n) {
		panic("out of range")
	}
}

// secemb:secret x
func Trailing(x uint64) {
	if x == 0 { //lint:allow obliviouslint/branch demo of a trailing waiver
		_ = x
	}
}

// secemb:secret y
func NoRationale(y uint64) {
	//lint:allow obliviouslint/branch
	if y > 0 {
	}
}

// secemb:secret z
func WrongRule(z uint64) {
	//lint:allow obliviouslint/index waiver names a different rule: the branch still fires, and the waiver is stale
	if z > 0 {
	}
}
