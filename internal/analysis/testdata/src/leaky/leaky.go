// Package leaky is the deliberately-leaky fixture — the static analogue of
// leakcheck's plain-lookup negative control. Every function below leaks its
// secret through an address or a branch, and obliviouslint must flag each
// one; cmd/obliviouslint's exit-code test runs this package and fails if
// the checker has lost its teeth. The package is import-free so it can be
// loaded standalone with -dir.
package leaky

// Lookup gathers a table row directly by the secret index — the §III
// baseline leak.
//
// secemb:secret id return
func Lookup(table []float32, width int, id int) []float32 {
	return table[id*width : (id+1)*width] // want `obliviouslint/index: slice bounds depend on secret-tainted value`
}

// CacheBypass branches on the secret id — a controlled-channel attacker
// sees which side executed.
//
// secemb:secret id return
func CacheBypass(cache []float32, id uint64) float32 {
	if id < 8 { // want `obliviouslint/branch: branch condition depends on secret-tainted value \(guards an early return\)`
		return cache[id] // want `obliviouslint/index: index depends on secret-tainted value`
	}
	return 0
}

// TruncatedScan stops scanning at the secret index instead of sweeping the
// whole table — the loop trip count is the leak.
//
// secemb:secret id return
func TruncatedScan(table []float32, id int) float32 {
	var acc float32
	for i := 0; i <= id; i++ { // want `obliviouslint/loop: loop bound depends on secret-tainted value`
		acc = table[i]
	}
	return acc
}

var record func(addr uint64)

// TraceLeak hands the secret straight to an unaudited observer — the
// "tracer call drifting inside a data-dependent path" case the CI gate
// exists for. The observer is an indirect call, so no summary can vouch
// for it and the conservative call finding stands.
//
// secemb:secret id
func TraceLeak(id uint64) {
	record(id) // want `obliviouslint/call: secret-tainted argument in indirect call`
}

// QuantScaleLeak is the int8-kernel failure mode: dequantizing through a
// scale table indexed by the secret accumulator value. The correct kernel
// indexes scales by the (public) output column only; indexing by anything
// derived from the quantized data re-opens the lookup side channel the
// quantization was supposed to stay clear of.
//
// secemb:secret q return
func QuantScaleLeak(scales []float32, q int32) float32 {
	return float32(q) * scales[q&15] // want `obliviouslint/index: index depends on secret-tainted value`
}
