// Fixture: false-positive guards — public quantities derived from secret
// containers (lengths, nil-ness, iteration positions, heap contents) must
// not be flagged. This file expects zero findings.
package public

// secemb:secret ids return
func Guards(ids []uint64, vals []uint64) int {
	if len(ids) == 0 { // lengths are public
		return 0
	}
	if vals == nil { // nil-ness is public
		return 1
	}
	n := 0
	for i := range ids { // positions are public; only the values are secret
		n += i
	}
	out := make([]uint64, len(ids))
	copy(out, ids) // out now carries taint, but is only used obliviously
	for i := range out {
		out[i] = out[i] & 0xff
	}
	return n
}

// secemb:secret id
func Mixed(id uint64, n int) {
	if n > 3 { // public parameter: fine
		_ = id + 1
	}
}

type state struct{ buf []uint64 }

// Heap demonstrates the documented heap-laundering boundary: stores drop
// taint because the threat model observes addresses, not contents; the
// dynamic leakcheck audit covers value-dependent traces through state.
//
// secemb:secret id
func (s *state) Heap(id uint64) int {
	s.buf[0] = id
	if s.buf[0] > 3 { // field read is public under the trace model
		return 1
	}
	return 0
}
