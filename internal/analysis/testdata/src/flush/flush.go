// Fixture: flush-policy findings — a miniature micro-batching coalescer in
// the shape of internal/serving's gather loop. The serving invariant
// (§V-B) is that flush decisions read only public quantities: queue
// counts, clocks, configured caps. A flush policy that inspects the
// secret ids it is fusing changes batch composition per secret — exactly
// the scheduler regression obliviouslint must flag.
package flush

// GatherByCount is the sanctioned policy: ids are appended (copied, never
// inspected) and the flush trigger reads only the batch length against a
// public cap. No findings.
//
// secemb:secret ids return
func GatherByCount(ids []uint64, maxBatch int) [][]uint64 {
	var batches [][]uint64
	var cur []uint64
	for _, id := range ids {
		cur = append(cur, id)
		if len(cur) == maxBatch { // public: count vs configured cap
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// GatherFlushOnOdd is the leak: the flush decision branches on the id
// being admitted, so how many fused executions (and traces) a batch
// produces depends on the secret.
//
// secemb:secret ids return
func GatherFlushOnOdd(ids []uint64, maxBatch int) [][]uint64 {
	var batches [][]uint64
	var cur []uint64
	for _, id := range ids {
		cur = append(cur, id)
		if id%2 == 1 { // want `obliviouslint/branch: branch condition depends on secret-tainted value`
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// GatherIDThreshold launders the secret into the flush cap: the count
// comparison itself is then id-dependent.
//
// secemb:secret ids return
func GatherIDThreshold(ids []uint64) [][]uint64 {
	limit := int(ids[0]%4) + 1
	var batches [][]uint64
	var cur []uint64
	for _, id := range ids {
		cur = append(cur, id)
		if len(cur) >= limit { // want `obliviouslint/branch: branch condition depends on secret-tainted value`
			batches = append(batches, cur)
			cur = nil
		}
	}
	return batches
}

// SkipHotID drops requests for one specific id out of the batch — an
// early continue guarded by the secret.
//
// secemb:secret ids return
func SkipHotID(ids []uint64) []uint64 {
	var batch []uint64
	for _, id := range ids {
		if id == 7 { // want `obliviouslint/branch: branch condition depends on secret-tainted value \(guards a break/continue/goto\)`
			continue
		}
		batch = append(batch, id)
	}
	return batch
}
