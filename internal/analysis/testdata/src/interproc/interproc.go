// Fixture: interprocedural teeth — the §III table lookup hidden two calls
// below the audit root, inside unannotated helpers. The old intraprocedural
// engine stopped at the first call boundary with a blanket
// obliviouslint/call finding at Root's call site and never saw the real
// leak; the summary engine walks through both frames and reports the index
// at the gather line, attributed to the inherited parameter. The companion
// TestInterproceduralTeeth asserts both halves: the leak is reported inside
// the helper, and no blanket call finding remains at the root.
package interproc

func gather(table []float32, i int) float32 {
	return table[i] // want `obliviouslint/index: index depends on secret-tainted value \(via secret-tainted parameter "i" of gather\)`
}

func mid(table []float32, j int) float32 {
	return gather(table, j+1)
}

// secemb:secret id return
func Root(table []float32, id int) float32 {
	return mid(table, id) // ok: resolved through summaries, not a blanket call finding
}

// shrink recurses on its secret-derived width: the SCC fixpoint must
// converge on the self-edge and still surface the body's leaks.
func shrink(table []float32, w int) float32 {
	if w <= 0 { // want `obliviouslint/branch: branch condition depends on secret-tainted value \(guards an early return\) \(via secret-tainted parameter "w" of shrink\)`
		return 0
	}
	return shrink(table, w/2)
}

// secemb:secret id return
func RecursiveRoot(table []float32, id int) float32 {
	return shrink(table, id)
}

// passThrough carries taint to its result without leaking: calls stay
// silent, and the caller's use of the result is judged at the caller.
func passThrough(v uint64) uint64 { return v*2 + 1 }

// secemb:secret id
func CleanThrough(out []uint64, id uint64) {
	y := passThrough(id) // ok: no leak inside passThrough
	out[y&7] = 1         // want `obliviouslint/index: index depends on secret-tainted value`
}
