// Fixture: malformed secemb: directives. Assertions live in the test (the
// directive parser would swallow a trailing want comment as parameter
// names, so this fixture is checked by direct Result inspection).
package directive

// secemb:secret
func Empty(x uint64) { _ = x }

// secemb:secret nosuch
func UnknownParam(x uint64) { _ = x }

// secemb:secret x
func WellFormed(x uint64) { _ = x }
