// Fixture: loop-class findings — tainted loop bounds (check class 3; early
// exits guarded by taint are reported by the branch check, see the branch
// fixture).
package loop

// secemb:secret n
func CondBound(n int) int {
	s := 0
	for i := 0; i < n; i++ { // want `obliviouslint/loop: loop bound depends on secret-tainted value`
		s += i
	}
	return s
}

// secemb:secret n
func RangeInt(n int) {
	for range n { // want `obliviouslint/loop: range bound depends on secret-tainted value`
	}
}

// secemb:secret n
func Backward(n uint64) {
	i := uint64(0)
	for i < n { // want `obliviouslint/loop: loop bound depends on secret-tainted value`
		i++
	}
}
