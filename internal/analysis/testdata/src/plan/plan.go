// Fixture: planner-policy findings — a miniature technique planner in the
// shape of internal/planner. The planner invariant (§V-B, extended to
// re-planning) is that technique selection and swap timing read only
// public quantities: table shape, aggregate batch sizes, latency EWMAs.
// A planner that routes a table through a plan array indexed by a secret
// id, or that triggers a re-plan when a particular id shows up, makes the
// served representation a function of the secret — exactly the adaptive
// regression obliviouslint must flag.
package plan

// Techniques a plan can choose between; values are public configuration.
const (
	techScan = iota
	techORAM
	techDHE
)

// PickByProfile is the sanctioned policy: the decision reads only the
// table's public shape and the aggregate batch EWMA sampled from metrics.
// No findings.
//
// secemb:secret ids return
func PickByProfile(ids []uint64, rows, dim int, ewmaBatch float64) int {
	_ = ids // ids flow to the backend untouched; the plan never reads them
	if rows*dim < 1<<16 {
		return techScan // public: table shape vs configured crossover
	}
	if ewmaBatch >= 100 { // public: aggregate batch EWMA
		return techDHE
	}
	return techORAM
}

// PickBySecretID is the leak: the plan table is indexed by a secret id, so
// which representation serves the request (and therefore the whole access
// pattern that follows) is id-dependent.
//
// secemb:secret ids return
func PickBySecretID(ids []uint64, planTable [4]int) int {
	return planTable[ids[0]%4] // want `obliviouslint/index: index depends on secret-tainted value`
}

// SwapOnHotID launders the secret into swap *timing*: a re-plan fires the
// moment a particular id is requested, so the swap boundary's position in
// the trace reveals when that id appeared.
//
// secemb:secret ids return
func SwapOnHotID(ids []uint64, cur int) int {
	for _, id := range ids {
		if id == 42 { // want `obliviouslint/branch: branch condition depends on secret-tainted value`
			return techDHE
		}
	}
	return cur
}

// PickShardPlanBySecretID is the per-shard (v2) variant of the plan-table
// leak: shard plans are legitimate — a request's shard comes from its
// public routing key — but here the shard-plan table is indexed by a
// secret id, so which shard's plan (and representation) serves the request
// is id-dependent. Deriving the shard from anything secret is the same
// bug in one step.
//
// secemb:secret ids return
func PickShardPlanBySecretID(ids []uint64, shardPlans [2]int) int {
	return shardPlans[ids[0]%2] // want `obliviouslint/index: index depends on secret-tainted value`
}

// PickShardPlanByRoutingKey is the sanctioned per-shard policy: the shard
// index comes from the public routing key, never the ids, and each shard's
// plan was fitted from aggregate signals. No findings.
//
// secemb:secret ids return
func PickShardPlanByRoutingKey(ids []uint64, routingKey uint64, shardPlans [2]int) int {
	_ = ids // ids flow to the chosen shard's backend untouched
	return shardPlans[routingKey%2]
}
