// Fixture: declass-class findings — tainted values returned from functions
// whose contract does not declare a secret return.
package declass

// secemb:secret x
func Leak(x uint64) uint64 {
	return x + 1 // want `obliviouslint/declass: secret-tainted value returned from a function not annotated`
}

// secemb:secret x return
func Declared(x uint64) uint64 {
	return x + 1 // ok: contract says the return carries secrets
}

// secemb:secret x
func ClosureLeak(x uint64) {
	f := func() uint64 {
		return x // want `obliviouslint/declass: secret-tainted value returned from a function not annotated`
	}
	_ = f
}
