// Fixture: annotation drift — an exported, unannotated function that
// receives secret taint (directly from an audit root or transitively
// through summaries) is an API boundary whose contract has fallen out of
// the directive system and must be flagged. Unexported helpers stay
// silent: the engine audits their bodies without ceremony.
package drift

func internalGather(t []float32, i int) float32 {
	return t[i] // want `obliviouslint/index: index depends on secret-tainted value \(via secret-tainted parameter "i" of internalGather\)`
}

// Process is exported and carries no directive, yet Root hands it the
// secret: the drift rule fires on its declaration.
func Process(t []float32, i int) float32 { // want `obliviouslint/drift: annotation drift: exported function Process receives secret-tainted argument\(s\) on parameter\(s\) "i" but carries no secemb:secret directive`
	return internalGather(t, i)
}

// secemb:secret id return
func Root(t []float32, id int) float32 {
	return Process(t, id)
}

// Helper is exported but only ever sees public arguments: no drift.
func Helper(t []float32, i int) float32 {
	return t[i]
}

// secemb:secret id return
func PublicUse(t []float32, id int) float32 {
	v := Helper(t, 0) // ok: public argument, no inflow recorded
	_ = id
	return v
}
