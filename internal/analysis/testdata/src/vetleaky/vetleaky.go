// Fixture: the vet-dirty counterpart of leaky — taint leaks, variable
// shadowing, and discarded pure results in one tree, exercising the
// combined obliviouslint + strict-vet run off the happy path.
package vetleaky

import "fmt"

// secemb:secret id
func ShadowedAccumulate(table []float32, id int) float32 {
	acc := float32(0)
	for i := 0; i < len(table); i++ {
		if i == id { // want `obliviouslint/branch: branch condition depends on secret-tainted value`
			acc := table[i] // want `vet/shadow: declaration of "acc" shadows declaration at line 10`
			_ = acc
		}
	}
	return acc
}

// secemb:secret id
func DroppedTrace(id uint64) {
	fmt.Sprintf("id=%d", id) // want `vet/unusedresult: result of fmt.Sprintf call is discarded` `obliviouslint/call: secret-tainted argument escapes into unannotated function Sprintf`
}
