// Fixture for the vet/unusedresult analyzer.
package unusedresult

import "fmt"

func F() string {
	fmt.Sprintf("x=%d", 1) // want `vet/unusedresult: result of fmt.Sprintf call is discarded`
	fmt.Println("side effect is fine")
	return fmt.Sprintf("x=%d", 2)
}
