// Fixture: chan-class findings — secrets crossing channel and goroutine
// boundaries. A channel's consumer is outside the current walk, so a
// tainted payload is unauditable; a secret-conditioned spawn or select
// makes scheduler activity (observable cross-tenant) a function of the
// secret.
package chanleak

// secemb:secret id
func Send(ch chan uint64, id uint64) {
	ch <- id // want `obliviouslint/chan: secret-tainted value sent on a channel \(unauditable consumer\)`
}

// secemb:secret id
func SelectOn(ch chan uint64, id uint64) {
	select {
	case ch <- id: // want `obliviouslint/chan: select communication depends on secret-tainted value` `obliviouslint/chan: secret-tainted value sent on a channel`
	default:
	}
}

func worker(v uint64) {}

// secemb:secret id
func Spawn(id uint64) {
	go worker(id) // want `obliviouslint/chan: goroutine spawn depends on secret-tainted value`
}

var observed uint64

// secemb:secret id
func SpawnClosure(id uint64) {
	go func() { // want `obliviouslint/chan: goroutine spawn depends on secret-tainted value`
		observed = id
	}()
}

// PublicCount is the clean counterpart: after the secret is consumed, a
// public completion count on a channel carries no taint.
//
// secemb:secret id
func PublicCount(done chan int, id uint64, n int) {
	_ = id
	done <- n // ok: payload and channel are public
}
