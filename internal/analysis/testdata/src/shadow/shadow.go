// Fixture for the vet/shadow analyzer.
package shadow

func Flagged(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := total + x // want `vet/shadow: declaration of "total" shadows declaration at line 5`
			_ = total
		}
	}
	return total
}

func NotLiveAfter(n int) int {
	x := n
	_ = x
	if n > 0 {
		x := 2 // ok: outer x is never used after this scope
		return x
	}
	return 0
}

func DifferentType(n int) int {
	x := n
	if n > 0 {
		x := "s" // ok: different type, the idiomatic redeclare
		_ = x
	}
	return x
}
