// Fixture: alloc-class findings — allocations sized by a secret. The heap
// footprint (and the allocator's size-class probe sequence) reveals the
// length; oblivious code must allocate worst-case and mask.
package alloc

// secemb:secret n
func Sized(out []byte, n int) {
	buf := make([]byte, n) // want `obliviouslint/alloc: allocation size depends on secret-tainted value`
	copy(out, buf)
}

// secemb:secret n
func SizedCap(out []byte, n int) {
	buf := make([]byte, 0, n+1) // want `obliviouslint/alloc: allocation size depends on secret-tainted value`
	copy(out, buf)
}

// Grown grows by a secret-bounded prefix: the slice-bounds rule catches
// the length leak before append ever sees it.
//
// secemb:secret n return
func Grown(dst, src []byte, n int) []byte {
	return append(dst, src[:n]...) // want `obliviouslint/index: slice bounds depend on secret-tainted value`
}

// Filled is the clean counterpart: a worst-case-sized allocation holding
// secret *contents* is fine — only the size is observable.
//
// secemb:secret v
func Filled(out []byte, v byte) {
	buf := make([]byte, 16)
	buf[0] = v
	copy(out, buf)
}
