// Fixture: mapkey-class findings — Go map operations keyed by a secret.
// The runtime's bucket probe sequence is a deterministic function of the
// key's hash, so a secret-keyed access is a secret-dependent address trace
// even though no user code indexes an array.
package mapkey

// secemb:secret k return
func Get(m map[uint64]int, k uint64) int {
	return m[k] // want `obliviouslint/mapkey: map access keyed by secret-tainted value \(probe sequence depends on the key\)`
}

// secemb:secret k return
func Probe(m map[uint64]int, k uint64) bool {
	_, ok := m[k&0xff] // want `obliviouslint/mapkey: map access keyed by secret-tainted value`
	return ok
}

// secemb:secret k
func Del(m map[uint64]int, k uint64) {
	delete(m, k) // want `obliviouslint/mapkey: map delete keyed by secret-tainted value`
}

// StoreValue is the clean counterpart: a public key storing a secret
// value — contents at rest are outside the access-pattern threat model.
//
// secemb:secret v
func StoreValue(m map[uint64]int, id uint64, v int) {
	m[id] = v // ok: the probe sequence depends only on the public id
}
