// Package oblivious is a fixture stub of secemb/internal/oblivious. The
// import path is what obliviouslint whitelists as the sanctioned sink
// package, so fixtures can exercise the sink rule without depending on the
// real module tree.
package oblivious

// Mask64 converts a condition into an all-ones/zero mask.
func Mask64(cond bool) uint64 {
	var b uint64
	if cond {
		b = 1
	}
	return -b
}

// Eq returns all-ones when a == b.
func Eq(a, b uint64) uint64 {
	x := a ^ b
	return -(((x - 1) &^ x) >> 63)
}

// Select64 returns a when mask is all-ones, b when zero.
func Select64(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}

// CondCopy64 blends src into dst under mask.
func CondCopy64(mask uint64, dst, src []uint64) {
	for i := range dst {
		dst[i] = Select64(mask, src[i], dst[i])
	}
}
