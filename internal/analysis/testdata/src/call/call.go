// Fixture: call-class findings — taint escaping into unaudited callees —
// plus the whitelist-sink and annotated-contract behaviors (check class 4).
package call

import "secemb/internal/oblivious"

func helper(v uint64) uint64 { return v }

// Escapes hands the secret to an unannotated same-package helper: the
// interprocedural summary proves helper only forwards v to its result, so
// the call itself is silent and the taint re-emerges on y.
//
// secemb:secret id
func Escapes(id uint64) {
	y := helper(id) // ok: summarized — helper merely returns its argument
	if y > 0 {      // want `obliviouslint/branch: branch condition depends on secret-tainted value`
	}
}

// opaque has no body in this build (external implementation), so no
// summary exists and the conservative call finding survives.
func opaque(v uint64)

// secemb:secret id
func Opaque(id uint64) {
	opaque(id) // want `obliviouslint/call: secret-tainted argument escapes into unannotated function opaque`
}

// Sanctioned routes the secret through the whitelisted oblivious package:
// no call findings, and the mask result stays tainted.
//
// secemb:secret id return
func Sanctioned(id uint64) uint64 {
	m := oblivious.Eq(id, 3)
	return oblivious.Select64(m, 1, 0)
}

// audited is a annotated callee with one secret and one public parameter.
//
// secemb:secret key
func audited(key uint64, publicN int) {
	_ = oblivious.Eq(key, uint64(publicN))
}

// secemb:secret id
func WrongParam(id uint64) {
	audited(0, int(id)) // want `obliviouslint/call: secret-tainted argument passed to non-secret parameter "publicN" of audited`
	audited(id, 4)      // ok: flows into the declared secret parameter
}

// reveal propagates taint through its annotated return.
//
// secemb:secret x return
func reveal(x uint64) uint64 { return x }

// secemb:secret id
func ThroughReturn(id uint64) {
	y := reveal(id)
	if y > 0 { // want `obliviouslint/branch: branch condition depends on secret-tainted value`
	}
}

// secemb:secret id
func Indirect(id uint64, f func(uint64)) {
	f(id) // want `obliviouslint/call: secret-tainted argument in indirect call`
}

// secemb:secret id
func OnChannel(id uint64, ch chan uint64) {
	ch <- id // want `obliviouslint/chan: secret-tainted value sent on a channel`
}

// sinkFn is directive-whitelisted rather than package-whitelisted.
//
// secemb:sink
func sinkFn(v uint64) uint64 { return v &^ 1 }

// secemb:secret id
func DirectiveSink(id uint64) {
	_ = sinkFn(id) // ok: secemb:sink
}
