package analysis

import (
	"strings"
	"testing"
)

const fixtureRoot = "testdata/src"

func TestObliviouslintBranch(t *testing.T) {
	RunFixture(t, fixtureRoot, "branch", Obliviouslint())
}

func TestObliviouslintIndex(t *testing.T) {
	RunFixture(t, fixtureRoot, "index", Obliviouslint())
}

func TestObliviouslintLoop(t *testing.T) {
	RunFixture(t, fixtureRoot, "loop", Obliviouslint())
}

func TestObliviouslintCall(t *testing.T) {
	RunFixture(t, fixtureRoot, "call", Obliviouslint())
}

func TestObliviouslintDeclass(t *testing.T) {
	RunFixture(t, fixtureRoot, "declass", Obliviouslint())
}

func TestObliviouslintAlloc(t *testing.T) {
	RunFixture(t, fixtureRoot, "alloc", Obliviouslint())
}

func TestObliviouslintMapKey(t *testing.T) {
	RunFixture(t, fixtureRoot, "mapkey", Obliviouslint())
}

func TestObliviouslintChan(t *testing.T) {
	RunFixture(t, fixtureRoot, "chan", Obliviouslint())
}

func TestObliviouslintDrift(t *testing.T) {
	RunFixture(t, fixtureRoot, "drift", Obliviouslint())
}

// TestInterproceduralTeeth is the acceptance check for the summary engine:
// a secret-indexed lookup two calls below the audit root, in unannotated
// helpers, must be reported at the real leak site — which the old
// intraprocedural engine provably never saw (it stopped with a blanket
// obliviouslint/call at the root's call, which must now be gone).
func TestInterproceduralTeeth(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "interproc", Obliviouslint())
	foundInHelper := false
	for _, d := range res.Findings {
		if d.Rule == RuleCall {
			t.Errorf("old-engine blanket call finding survived at a summarized call: %s", d)
		}
		if d.Rule == RuleIndex && strings.Contains(d.Message, `parameter "i" of gather`) {
			foundInHelper = true
		}
	}
	if !foundInHelper {
		t.Error("secret-indexed lookup two calls below the audit root was not reported inside the unannotated helper")
	}
}

// The flush fixture is the serving-batcher guard: a coalescer whose flush
// policy inspects the ids it fuses must be flagged (the §V-B scheduler
// invariant), while the count-only policy stays clean.
func TestObliviouslintFlushPolicy(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "flush", Obliviouslint())
	if len(res.Findings) == 0 {
		t.Fatal("id-dependent flush policies produced no findings; the checker has lost its teeth")
	}
}

// The plan fixture is the adaptive-planner guard: a technique plan indexed
// by a secret id or a re-plan triggered by a specific id must be flagged
// (the internal/planner public-signal invariant), while the
// shape-and-EWMA-only policy stays clean.
func TestObliviouslintPlanPolicy(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "plan", Obliviouslint())
	if len(res.Findings) == 0 {
		t.Fatal("secret-dependent plan policies produced no findings; the checker has lost its teeth")
	}
}

func TestObliviouslintLeakyFixture(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "leaky", Obliviouslint())
	if len(res.Findings) == 0 {
		t.Fatal("leaky fixture produced no findings; the checker has lost its teeth")
	}
}

// The public fixture has no want comments: every finding RunFixture sees is
// an error, so this test is the false-positive guard for len/cap, nil
// comparisons, range positions, and heap laundering.
func TestObliviouslintPublicQuantities(t *testing.T) {
	res := RunFixture(t, fixtureRoot, "public", Obliviouslint())
	if len(res.Waived) != 0 {
		t.Errorf("public fixture has no waivers, got %d waived findings", len(res.Waived))
	}
}

func TestObliviouslintWaivers(t *testing.T) {
	pkg, idx, err := LoadDir(fixtureRoot+"/waived", "waived", fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*Analyzer{Obliviouslint()}, []*Package{pkg}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Waived); got != 2 {
		t.Errorf("want 2 waived findings (Checked, Trailing), got %d: %v", got, res.Waived)
	}
	for _, d := range res.Waived {
		if d.Waiver == "" {
			t.Errorf("waived finding lost its rationale: %s", d)
		}
	}
	// Unwaived: NoRationale's branch (line 26), WrongRule's branch (line
	// 33), and the stale wrong-rule waiver itself (line 32).
	var branches, stale []Diagnostic
	for _, d := range res.Findings {
		switch d.Rule {
		case RuleBranch:
			branches = append(branches, d)
		case RuleDirective:
			stale = append(stale, d)
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if len(branches) != 2 {
		t.Errorf("want 2 unwaived branch findings, got %d: %v", len(branches), branches)
	}
	if len(stale) != 1 {
		t.Fatalf("want 1 stale-waiver finding, got %d: %v", len(stale), stale)
	}
	if d := stale[0]; d.Pos.Line != 32 || !strings.Contains(d.Message, "stale waiver: //lint:allow obliviouslint/index") {
		t.Errorf("stale-waiver finding wrong: %s", d)
	}
}

// Malformed directives are asserted directly: a want comment cannot share a
// line with a secemb:secret directive (the parser would read the want text
// as parameter names).
func TestObliviouslintMalformedDirectives(t *testing.T) {
	pkg, idx, err := LoadDir(fixtureRoot+"/directive", "directive", fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*Analyzer{Obliviouslint()}, []*Package{pkg}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 2 {
		t.Fatalf("want 2 directive findings, got %d: %v", len(res.Findings), res.Findings)
	}
	for _, d := range res.Findings {
		if d.Rule != RuleDirective {
			t.Errorf("want rule %s, got %s", RuleDirective, d.Rule)
		}
	}
	if !strings.Contains(res.Findings[0].Message, "needs parameter names") {
		t.Errorf("empty directive: got %q", res.Findings[0].Message)
	}
	if !strings.Contains(res.Findings[1].Message, `unknown parameter "nosuch"`) {
		t.Errorf("unknown param: got %q", res.Findings[1].Message)
	}
	if idx.ByKey("directive.WellFormed") == nil {
		t.Error("well-formed directive was not indexed")
	}
}

// LoadModule smoke test: enumerate and type-check a real module package
// (with stdlib deps) through the go list -export path.
func TestLoadModuleRealPackage(t *testing.T) {
	set, err := LoadModule("../..", "./internal/oram")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Targets) != 1 {
		t.Fatalf("want 1 target package, got %d", len(set.Targets))
	}
	if got := set.Targets[0].Path; got != "secemb/internal/oram" {
		t.Errorf("target path = %q", got)
	}
	if set.Targets[0].Types.Scope().Lookup("NewPath") == nil {
		t.Error("type info incomplete: NewPath not in package scope")
	}
}
