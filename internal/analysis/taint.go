package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// sinkPackages are sanctioned destinations for tainted values: the
// repository's branchless primitives plus the pure value arithmetic of the
// standard library. Calls into these packages never surface findings; their
// results stay tainted (a mask computed from a secret is still a secret).
var sinkPackages = map[string]bool{
	"secemb/internal/oblivious": true,
	"math":                      true,
	"math/bits":                 true,
}

// Rule identifiers (the strings //lint:allow waivers name).
const (
	RuleBranch    = "obliviouslint/branch"
	RuleIndex     = "obliviouslint/index"
	RuleLoop      = "obliviouslint/loop"
	RuleCall      = "obliviouslint/call"
	RuleDeclass   = "obliviouslint/declass"
	RuleDirective = "obliviouslint/directive"
	RuleAlloc     = "obliviouslint/alloc"
	RuleMapKey    = "obliviouslint/mapkey"
	RuleChan      = "obliviouslint/chan"
	RuleShift     = "obliviouslint/shift"
	RuleDrift     = "obliviouslint/drift"
)

// obliviouslintRules is every rule the taint analyzer can emit, used by the
// stale-waiver pass to know which waivers this run could have consumed.
var obliviouslintRules = []string{
	RuleBranch, RuleIndex, RuleLoop, RuleCall, RuleDeclass, RuleDirective,
	RuleAlloc, RuleMapKey, RuleChan, RuleShift, RuleDrift,
}

// Obliviouslint returns the secret-independence taint analyzer. Audit roots
// are functions annotated `// secemb:secret <param>…`; taint propagates
// through assignments, composite expressions, sink calls and annotated
// returns — and, interprocedurally, through calls into unannotated
// functions whose bodies are in the program, via bottom-up call-graph
// summaries (see Program). Every flow into control flow, an index, a map
// key, an allocation size, a shift amount, a channel, or an unauditable
// callee is reported under one of the obliviouslint/* rules.
func Obliviouslint() *Analyzer {
	return &Analyzer{
		Name:   "obliviouslint",
		Doc:    "report control flow, indexing, allocation, and calls that depend on secemb:secret-tainted values",
		Rules:  obliviouslintRules,
		Run:    runObliviouslint,
		Finish: finishObliviouslint,
	}
}

func runObliviouslint(pass *Pass) error {
	// Surface malformed directives in this package (unknown parameter
	// names, empty lists) as findings so annotation typos fail the run.
	for _, d := range CollectDirectives(NewIndex(), pass.Pkg) {
		pass.report(d)
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			dir := pass.Directives.Lookup(fn)
			if dir == nil || len(dir.Secret) == 0 {
				continue // not an audit root
			}
			t := &taintWalker{
				prog:    pass.Prog,
				pkg:     pass.Pkg,
				info:    pass.Pkg.Info,
				tainted: map[types.Object]bool{},
			}
			t.emitNew = func(d Diagnostic) { pass.report(d) }
			t.emitInherited = func(d Diagnostic) { pass.report(d) }
			t.inflow = func(callee *types.Func, param string, pos token.Position) {
				pass.Prog.recordInflow(callee, param, pos)
			}
			t.seedParams(fd, dir)
			// Propagate to a fixpoint (loops can carry taint backward
			// through earlier assignments), then report in one final pass.
			for range [64]struct{}{} {
				t.changed = false
				t.stmt(fd.Body, returnCtx{sanctioned: dir.Return})
				if !t.changed {
					break
				}
			}
			t.reporting = true
			t.stmt(fd.Body, returnCtx{sanctioned: dir.Return})
		}
	}
	return nil
}

// finishObliviouslint runs once after every target package: the
// annotation-drift pass. An exported function whose summary received
// secret inflow (its parameters were handed tainted arguments, directly
// from an audit root or transitively through other summaries) is an API
// boundary whose contract has drifted out of the directive system — the
// same sync discipline secemb:audit enforces for the leakcheck roster.
// Unexported helpers stay silent: the interprocedural engine audits their
// bodies without ceremony.
func finishObliviouslint(prog *Program, report func(Diagnostic)) error {
	keys := make([]string, 0, len(prog.inflows))
	for key := range prog.inflows {
		info := prog.fns[key]
		if info != nil && info.fn.Exported() {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		set := prog.inflows[key]
		info := prog.fns[key]
		params := make([]string, 0, len(set.params))
		for p := range set.params {
			params = append(params, fmt.Sprintf("%q", p))
		}
		sort.Strings(params)
		report(Diagnostic{
			Pos:  info.pkg.Fset.Position(info.decl.Name.Pos()),
			Rule: RuleDrift,
			Message: fmt.Sprintf(
				"annotation drift: exported function %s receives secret-tainted argument(s) on parameter(s) %s but carries no secemb:secret directive",
				info.fn.Name(), strings.Join(params, ", ")),
		})
	}
	return nil
}

// returnCtx says whether `return <tainted>` is sanctioned in the function
// or closure currently being walked.
type returnCtx struct{ sanctioned bool }

type taintWalker struct {
	prog      *Program
	pkg       *Package
	info      *types.Info
	tainted   map[types.Object]bool
	changed   bool
	reporting bool

	// summaryMode suppresses declass findings (returning taint to the
	// caller is the summary's Result flag, not a leak) while a function
	// body is walked to derive its Summary.
	summaryMode   bool
	returnTainted bool

	emitNew       func(Diagnostic) // fresh findings at positions in this body
	emitInherited func(Diagnostic) // pre-resolved sites pulled from callee summaries
	inflow        func(fn *types.Func, param string, pos token.Position)
}

func (t *taintWalker) seedParams(fd *ast.FuncDecl, dir *FuncDirective) {
	if fd.Type.Params == nil {
		return
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if dir.Secret[name.Name] {
				if obj := t.info.Defs[name]; obj != nil {
					t.tainted[obj] = true
				}
			}
		}
	}
}

func (t *taintWalker) mark(obj types.Object) {
	if obj == nil || obj.Name() == "_" {
		return
	}
	if !t.tainted[obj] {
		t.tainted[obj] = true
		t.changed = true
	}
}

func (t *taintWalker) objOf(id *ast.Ident) types.Object {
	if o := t.info.Defs[id]; o != nil {
		return o
	}
	return t.info.Uses[id]
}

func (t *taintWalker) reportf(pos token.Pos, rule, format string, args ...any) {
	if t.reporting {
		t.emitNew(Diagnostic{
			Pos:     t.pkg.Fset.Position(pos),
			Rule:    rule,
			Message: fmt.Sprintf(format, args...),
		})
	}
}

// applySlot pulls one summarized taint slot into the current walk: emits
// the slot's conditional leak sites, records the inflow for the drift
// pass, and reports whether the taint reaches the callee's results.
func (t *taintWalker) applySlot(fn *types.Func, p *ParamSummary, pos token.Pos) bool {
	if t.reporting {
		for _, d := range p.leaks {
			t.emitInherited(d)
		}
		if t.inflow != nil {
			where := t.pkg.Fset.Position(pos)
			t.inflow(fn, p.Name, where)
			for _, rec := range p.inflows {
				t.inflow(rec.fn, rec.param, where)
			}
		}
	}
	return p.Result
}

// --- statements ----------------------------------------------------------

func (t *taintWalker) stmt(s ast.Stmt, rc returnCtx) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			t.stmt(st, rc)
		}
	case *ast.ExprStmt:
		t.expr(s.X)
	case *ast.AssignStmt:
		t.assign(s)
	case *ast.DeclStmt:
		t.declStmt(s)
	case *ast.IfStmt:
		t.stmt(s.Init, rc)
		if t.expr(s.Cond) {
			t.reportf(s.Pos(), RuleBranch, "branch condition depends on secret-tainted value%s", earlyExitNote(s))
		}
		t.stmt(s.Body, rc)
		t.stmt(s.Else, rc)
	case *ast.ForStmt:
		t.stmt(s.Init, rc)
		if s.Cond != nil && t.expr(s.Cond) {
			t.reportf(s.Cond.Pos(), RuleLoop, "loop bound depends on secret-tainted value")
		}
		t.stmt(s.Post, rc)
		t.stmt(s.Body, rc)
	case *ast.RangeStmt:
		t.rangeStmt(s, rc)
	case *ast.SwitchStmt:
		t.stmt(s.Init, rc)
		if s.Tag != nil && t.expr(s.Tag) {
			t.reportf(s.Tag.Pos(), RuleBranch, "switch tag depends on secret-tainted value")
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				if t.expr(e) && s.Tag == nil {
					t.reportf(e.Pos(), RuleBranch, "switch case condition depends on secret-tainted value")
				}
			}
			for _, st := range cc.Body {
				t.stmt(st, rc)
			}
		}
	case *ast.TypeSwitchStmt:
		t.stmt(s.Init, rc)
		if x := typeSwitchSubject(s); x != nil && t.expr(x) {
			t.reportf(x.Pos(), RuleBranch, "type switch subject depends on secret-tainted value")
		}
		for _, c := range s.Body.List {
			for _, st := range c.(*ast.CaseClause).Body {
				t.stmt(st, rc)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				if t.commTainted(cc.Comm) {
					t.reportf(cc.Comm.Pos(), RuleChan, "select communication depends on secret-tainted value")
				}
				t.stmt(cc.Comm, returnCtx{})
			}
			for _, st := range cc.Body {
				t.stmt(st, rc)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if t.expr(r) {
				if t.summaryMode {
					t.returnTainted = true
				} else if !rc.sanctioned {
					t.reportf(r.Pos(), RuleDeclass,
						"secret-tainted value returned from a function not annotated \"secemb:secret return\"")
				}
			}
		}
	case *ast.SendStmt:
		ct := t.expr(s.Chan)
		if t.expr(s.Value) || ct {
			t.reportf(s.Value.Pos(), RuleChan, "secret-tainted value sent on a channel (unauditable consumer)")
		}
	case *ast.GoStmt:
		if t.goTainted(s.Call) {
			t.reportf(s.Pos(), RuleChan, "goroutine spawn depends on secret-tainted value (scheduling is observable cross-tenant)")
		}
		t.expr(s.Call)
	case *ast.DeferStmt:
		t.expr(s.Call)
	case *ast.LabeledStmt:
		t.stmt(s.Stmt, rc)
	case *ast.IncDecStmt:
		t.expr(s.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// Guarding conditions are reported at the enclosing if/for/switch.
	}
}

// goTainted reports whether a goroutine spawn carries taint across the
// scheduling boundary: a tainted argument, or a function literal capturing
// a tainted variable. Only the spawn itself is judged here — the call is
// afterwards walked normally, so call-boundary rules still apply inside.
func (t *taintWalker) goTainted(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t.taintedNoReport(a) {
			return true
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		captured := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := t.info.Uses[id]; obj != nil && t.tainted[obj] {
					captured = true
				}
			}
			return !captured
		})
		return captured
	}
	return false
}

// taintedNoReport evaluates an expression's taint without emitting
// findings (used for pre-checks whose expression is re-walked afterwards).
func (t *taintWalker) taintedNoReport(e ast.Expr) bool {
	saved := t.reporting
	t.reporting = false
	res := t.expr(e)
	t.reporting = saved
	return res
}

// earlyExitNote annotates branch findings whose body directly gates an
// early return/break/continue (check class 3 of the issue).
func earlyExitNote(s *ast.IfStmt) string {
	bodies := [][]ast.Stmt{s.Body.List}
	if blk, ok := s.Else.(*ast.BlockStmt); ok {
		bodies = append(bodies, blk.List)
	}
	for _, list := range bodies {
		for _, st := range list {
			switch st.(type) {
			case *ast.ReturnStmt:
				return " (guards an early return)"
			case *ast.BranchStmt:
				return " (guards a break/continue/goto)"
			}
		}
	}
	return ""
}

func typeSwitchSubject(s *ast.TypeSwitchStmt) ast.Expr {
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	}
	return nil
}

func (t *taintWalker) commTainted(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.SendStmt:
		return t.taintedNoReport(s.Chan) || t.taintedNoReport(s.Value)
	case *ast.ExprStmt:
		return t.taintedNoReport(s.X)
	case *ast.AssignStmt:
		tainted := false
		for _, r := range s.Rhs {
			tainted = t.taintedNoReport(r) || tainted
		}
		return tainted
	}
	return false
}

func (t *taintWalker) assign(s *ast.AssignStmt) {
	// Compound ops (|=, +=, …) read the lhs too.
	compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE

	rhsTaint := make([]bool, len(s.Rhs))
	any := false
	for i, r := range s.Rhs {
		rhsTaint[i] = t.expr(r)
		any = any || rhsTaint[i]
	}
	for i, l := range s.Lhs {
		taintIn := any
		if len(s.Rhs) == len(s.Lhs) {
			taintIn = rhsTaint[i]
		}
		if id, ok := l.(*ast.Ident); ok {
			if taintIn || (compound && t.tainted[t.objOf(id)]) {
				t.mark(t.objOf(id))
			}
			continue
		}
		// Non-ident lhs: evaluate for index findings (a[secret] = …).
		// Stores into fields and heap cells intentionally drop taint — the
		// threat model observes addresses, not contents, and contents
		// re-enter the audit through annotated accessors (see DESIGN §10).
		t.expr(l)
	}
}

func (t *taintWalker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		any := false
		taints := make([]bool, len(vs.Values))
		for i, v := range vs.Values {
			taints[i] = t.expr(v)
			any = any || taints[i]
		}
		for i, name := range vs.Names {
			taintIn := any
			if len(vs.Values) == len(vs.Names) {
				taintIn = taints[i]
			}
			if taintIn {
				t.mark(t.objOf(name))
			}
		}
	}
}

func (t *taintWalker) rangeStmt(s *ast.RangeStmt, rc returnCtx) {
	xt := t.expr(s.X)
	xType := types.Default(t.info.TypeOf(s.X))
	keyTainted, valTainted := false, false
	if xt {
		switch u := xType.Underlying().(type) {
		case *types.Basic:
			if u.Info()&types.IsInteger != 0 {
				t.reportf(s.X.Pos(), RuleLoop, "range bound depends on secret-tainted value")
				keyTainted = true
			} else { // string: positions public, bytes secret
				valTainted = true
			}
		case *types.Map:
			keyTainted, valTainted = true, true
		case *types.Chan:
			valTainted = true
		default: // slice, array, pointer-to-array: positions are public
			valTainted = true
		}
	}
	if id, ok := s.Key.(*ast.Ident); ok && keyTainted {
		t.mark(t.objOf(id))
	}
	if id, ok := s.Value.(*ast.Ident); ok && valTainted {
		t.mark(t.objOf(id))
	}
	t.stmt(s.Body, rc)
}

// --- expressions ---------------------------------------------------------

// expr reports whether e evaluates to a secret-tainted value, emitting
// expression-level findings (index, mapkey, shift, call, alloc) when in
// the reporting pass.
func (t *taintWalker) expr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		return t.tainted[t.objOf(e)]
	case *ast.BasicLit:
		return false
	case *ast.ParenExpr:
		return t.expr(e.X)
	case *ast.UnaryExpr:
		return t.expr(e.X)
	case *ast.StarExpr:
		return t.expr(e.X)
	case *ast.BinaryExpr:
		// Comparisons against nil reveal slice/pointer *structure*, which
		// is public (lengths and nil-ness are not secrets), not contents.
		if isNil(t.info, e.X) || isNil(t.info, e.Y) {
			t.expr(e.X)
			t.expr(e.Y)
			return false
		}
		xt := t.expr(e.X)
		yt := t.expr(e.Y)
		if yt && (e.Op == token.SHL || e.Op == token.SHR) {
			// Shifting BY a secret (as opposed to shifting a secret by a
			// public amount) is flagged: variable-latency shifters and the
			// 1<<secret mask-building idiom both modulate observable state
			// by the secret value.
			t.reportf(e.Y.Pos(), RuleShift, "shift amount depends on secret-tainted value")
		}
		return xt || yt
	case *ast.CallExpr:
		return t.call(e)
	case *ast.IndexExpr:
		if tv, ok := t.info.Types[e]; ok && tv.IsType() {
			return false // generic instantiation, not an index
		}
		if _, isSig := t.info.TypeOf(e.X).Underlying().(*types.Signature); isSig {
			return false // instantiation of a generic function
		}
		xt := t.expr(e.X)
		it := t.expr(e.Index)
		if it {
			if _, isMap := types.Default(t.info.TypeOf(e.X)).Underlying().(*types.Map); isMap {
				t.reportf(e.Index.Pos(), RuleMapKey, "map access keyed by secret-tainted value (probe sequence depends on the key)")
			} else {
				t.reportf(e.Index.Pos(), RuleIndex, "index depends on secret-tainted value")
			}
		}
		return xt || it
	case *ast.IndexListExpr:
		return false // generic instantiation
	case *ast.SliceExpr:
		xt := t.expr(e.X)
		bt := false
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil && t.expr(b) {
				bt = true
			}
		}
		if bt {
			t.reportf(e.Pos(), RuleIndex, "slice bounds depend on secret-tainted value")
		}
		return xt || bt
	case *ast.SelectorExpr:
		if sel, ok := t.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return t.expr(e.X) // field of a tainted *value*; heap reads stay public
		}
		if obj := t.info.Uses[e.Sel]; obj != nil {
			return t.tainted[obj] // package-qualified identifier
		}
		return false
	case *ast.CompositeLit:
		tainted := false
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.expr(el) {
				tainted = true
			}
		}
		return tainted
	case *ast.TypeAssertExpr:
		return t.expr(e.X)
	case *ast.FuncLit:
		// Closures are analyzed in the enclosing taint environment, so
		// captured secrets stay tainted inside the body. The closure value
		// itself is not a taint carrier.
		t.stmt(e.Body, returnCtx{})
		return false
	}
	return false
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// call classifies the callee and checks the taint contract at the call
// boundary: sinks pass freely, annotated callees are held to their
// declared contract, unannotated callees with bodies in the program are
// resolved through their interprocedural summary, and everything else
// (indirect calls, out-of-program functions) is conservatively flagged.
func (t *taintWalker) call(c *ast.CallExpr) bool {
	if tv, ok := t.info.Types[c.Fun]; ok && tv.IsType() {
		return t.expr(c.Args[0]) // conversion
	}
	// Walk a method call's receiver chain for findings (arr[secret].M())
	// and capture whether the receiver itself carries taint.
	recvTainted := false
	if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
		recvTainted = t.expr(sel.X)
	}
	// An immediately-invoked closure's body is analyzed in the enclosing
	// taint environment like any other closure.
	if fl, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		t.stmt(fl.Body, returnCtx{})
	}

	if b := t.builtinOf(c.Fun); b != nil {
		return t.builtinCall(b, c)
	}

	argTaint := make([]bool, len(c.Args))
	any := false
	for i, a := range c.Args {
		argTaint[i] = t.expr(a)
		any = any || argTaint[i]
	}

	fn := calleeFunc(t.info, c)
	if fn == nil {
		if any {
			t.reportf(c.Pos(), RuleCall, "secret-tainted argument in indirect call (callee not statically auditable)")
		}
		return any
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	dir := t.prog.Directives.Lookup(fn)
	if (dir != nil && dir.Sink) || sinkPackages[pkgPath] {
		return any || recvTainted // sanctioned sink: tainted in, tainted out
	}
	if dir != nil && (len(dir.Secret) > 0 || dir.Return) {
		sig := fn.Type().(*types.Signature)
		for i, tainted := range argTaint {
			if !tainted {
				continue
			}
			name := paramName(sig, i)
			if !dir.Secret[name] {
				t.reportf(c.Args[i].Pos(), RuleCall,
					"secret-tainted argument passed to non-secret parameter %q of %s", name, fn.Name())
			}
		}
		return dir.Return && (any || recvTainted)
	}
	// Interprocedural: an unannotated callee whose body is loaded is
	// analyzed under the inherited taint via its summary — the conditional
	// leak sites inside (and below) it fire here, instead of a blanket
	// "escapes into unannotated function" finding at the call.
	if sum := t.prog.summaryFor(fn); sum != nil {
		out := false
		for i, tainted := range argTaint {
			if !tainted {
				continue
			}
			if p := sum.paramFor(i); p != nil {
				out = t.applySlot(fn, p, c.Args[i].Pos()) || out
			}
		}
		if recvTainted && sum.Recv != nil {
			out = t.applySlot(fn, sum.Recv, c.Fun.Pos()) || out
		}
		return out
	}
	if any {
		t.reportf(c.Pos(), RuleCall,
			"secret-tainted argument escapes into unannotated function %s (annotate secemb:secret or use internal/oblivious)", fn.Name())
	}
	return any
}

func (t *taintWalker) builtinOf(fun ast.Expr) *types.Builtin {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := t.info.Uses[id].(*types.Builtin)
	return b
}

func (t *taintWalker) builtinCall(b *types.Builtin, c *ast.CallExpr) bool {
	any := false
	for _, a := range c.Args {
		if t.expr(a) {
			any = true
		}
	}
	switch b.Name() {
	case "len", "cap":
		return false // lengths are public even for secret-valued containers
	case "append", "min", "max":
		return any
	case "make":
		// make(T, secretLen) sizes an allocation by the secret: the heap
		// footprint (and the allocator's size-class probes) leak it. The
		// result is treated as tainted — it is a secret-shaped object.
		sized := false
		for _, a := range c.Args[1:] {
			if t.taintedNoReport(a) {
				sized = true
			}
		}
		if sized {
			t.reportf(c.Pos(), RuleAlloc, "allocation size depends on secret-tainted value")
		}
		return sized
	case "copy":
		if len(c.Args) == 2 && t.taintedNoReport(c.Args[1]) {
			if id, ok := ast.Unparen(c.Args[0]).(*ast.Ident); ok {
				t.mark(t.objOf(id)) // copy(dst, taintedSrc) taints dst
			}
		}
		return false
	case "delete":
		if len(c.Args) == 2 && t.taintedNoReport(c.Args[1]) {
			t.reportf(c.Args[1].Pos(), RuleMapKey, "map delete keyed by secret-tainted value (probe sequence depends on the key)")
		}
		return false
	}
	return false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func paramName(sig *types.Signature, argIndex int) string {
	n := sig.Params().Len()
	if n == 0 {
		return ""
	}
	if argIndex >= n {
		argIndex = n - 1 // variadic tail
	}
	return sig.Params().At(argIndex).Name()
}
