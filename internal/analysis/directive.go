package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Directive syntax (doc comments on function declarations or interface
// methods):
//
//	// secemb:secret ids          — listed parameters carry secrets
//	// secemb:secret index return — "return" marks tainted return values
//	// secemb:sink                — sanctioned oblivious sink: tainted
//	//                              arguments are allowed into any parameter
//	// secemb:audit path circuit  — names this function must carry in the
//	//                              dynamic leakcheck roster
//
// Waivers suppress a specific rule on the same or the following line:
//
//	//lint:allow obliviouslint/branch rationale for why this is safe
const (
	secretDirective = "secemb:secret"
	sinkDirective   = "secemb:sink"
	auditDirective  = "secemb:audit"
	allowDirective  = "lint:allow"
)

// FuncDirective is the parsed annotation set of one function.
type FuncDirective struct {
	Key    string          // qualified name: pkgpath.[Recv.]Name
	Secret map[string]bool // parameter names carrying secrets
	Return bool            // return values are tainted
	Sink   bool            // sanctioned sink
	Audit  []string        // dynamic-audit roster names
	Pos    token.Position
}

// Index is the module-wide directive table, keyed by qualified function
// name (see FuncKey).
type Index struct {
	funcs map[string]*FuncDirective
}

// NewIndex returns an empty directive index.
func NewIndex() *Index { return &Index{funcs: map[string]*FuncDirective{}} }

// Lookup returns the directive for a resolved function object, or nil.
func (ix *Index) Lookup(fn *types.Func) *FuncDirective {
	if fn == nil {
		return nil
	}
	key := FuncKey(fn)
	if key == "" {
		return nil
	}
	return ix.funcs[key]
}

// ByKey returns the directive for a qualified name, or nil.
func (ix *Index) ByKey(key string) *FuncDirective { return ix.funcs[key] }

// All returns every directive, sorted by key (for reports and the
// leakcheck roster-sync scan).
func (ix *Index) All() []*FuncDirective {
	out := make([]*FuncDirective, 0, len(ix.funcs))
	for _, d := range ix.funcs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FuncKey builds the index key for a function object: pkgpath.Name, or
// pkgpath.RecvType.Name for methods (pointer receivers are stripped;
// interface methods use the interface type's name).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "" // universe scope (error.Error)
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// CollectDirectives scans a package's syntax for secemb directives and
// merges them into the index. It returns malformed-directive errors
// (unknown parameter names, empty directives) as diagnostics so they fail
// the lint run rather than being silently ignored.
func CollectDirectives(ix *Index, pkg *Package) []Diagnostic {
	var bad []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				recv := ""
				if d.Recv != nil && len(d.Recv.List) > 0 {
					recv = recvTypeName(d.Recv.List[0].Type)
				}
				key := joinKey(pkg.Path, recv, d.Name.Name)
				bad = append(bad, parseFuncDirectives(ix, pkg.Fset, key, d.Doc, fieldNames(d.Type.Params))...)
				return true
			case *ast.TypeSpec:
				iface, ok := d.Type.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, m := range iface.Methods.List {
					ft, isFunc := m.Type.(*ast.FuncType)
					if !isFunc || len(m.Names) == 0 {
						continue // embedded interface
					}
					key := joinKey(pkg.Path, d.Name.Name, m.Names[0].Name)
					bad = append(bad, parseFuncDirectives(ix, pkg.Fset, key, m.Doc, fieldNames(ft.Params))...)
				}
				return true
			}
			return true
		})
	}
	return bad
}

func joinKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + "." + recv + "." + name
	}
	return pkgPath + "." + name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

func fieldNames(fl *ast.FieldList) map[string]bool {
	names := map[string]bool{}
	if fl == nil {
		return names
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			names[n.Name] = true
		}
	}
	return names
}

func parseFuncDirectives(ix *Index, fset *token.FileSet, key string, doc *ast.CommentGroup, params map[string]bool) []Diagnostic {
	if doc == nil {
		return nil
	}
	var bad []Diagnostic
	get := func(pos token.Pos) *FuncDirective {
		d := ix.funcs[key]
		if d == nil {
			d = &FuncDirective{Key: key, Secret: map[string]bool{}, Pos: fset.Position(pos)}
			ix.funcs[key] = d
		}
		return d
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case secretDirective:
			if len(fields) == 1 {
				bad = append(bad, badDirective(fset, c.Pos(), "secemb:secret needs parameter names (or \"return\")"))
				continue
			}
			d := get(c.Pos())
			for _, name := range fields[1:] {
				if name == "return" {
					d.Return = true
					continue
				}
				if !params[name] {
					bad = append(bad, badDirective(fset, c.Pos(), "secemb:secret names unknown parameter %q of %s", name, key))
					continue
				}
				d.Secret[name] = true
			}
		case sinkDirective:
			get(c.Pos()).Sink = true
		case auditDirective:
			if len(fields) == 1 {
				bad = append(bad, badDirective(fset, c.Pos(), "secemb:audit needs at least one roster name"))
				continue
			}
			d := get(c.Pos())
			d.Audit = append(d.Audit, fields[1:]...)
		}
	}
	return bad
}

func badDirective(fset *token.FileSet, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     fset.Position(pos),
		Rule:    "obliviouslint/directive",
		Message: fmt.Sprintf(format, args...),
	}
}

// --- waivers -------------------------------------------------------------

// waiverSet maps (file, line, rule) → rationale. A waiver on line L
// suppresses matching findings on L and L+1, so it can sit either trailing
// the offending statement or on its own line above. records keeps every
// waiver with its source position so the stale-waiver pass can report the
// ones a run never consumed.
type waiverSet struct {
	byLine  map[string]map[int]map[string]string
	records []waiverRec
}

// waiverRec is one //lint:allow comment, by position.
type waiverRec struct {
	pos       token.Position
	rule      string
	rationale string
}

// merge folds another set's waivers into ws (used to build the
// module-wide set RunProgram resolves against).
func (ws *waiverSet) merge(other *waiverSet) {
	for file, lines := range other.byLine {
		if ws.byLine[file] == nil {
			ws.byLine[file] = map[int]map[string]string{}
		}
		for line, rules := range lines {
			if ws.byLine[file][line] == nil {
				ws.byLine[file][line] = map[string]string{}
			}
			for rule, rationale := range rules {
				ws.byLine[file][line][rule] = rationale
			}
		}
	}
	ws.records = append(ws.records, other.records...)
}

func collectWaivers(fset *token.FileSet, files []*ast.File) *waiverSet {
	ws := &waiverSet{byLine: map[string]map[int]map[string]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				parts := strings.SplitN(rest, " ", 2)
				if len(parts) < 2 || strings.TrimSpace(parts[1]) == "" {
					continue // a waiver without a rationale does not waive
				}
				rule, rationale := parts[0], strings.TrimSpace(parts[1])
				pos := fset.Position(c.Pos())
				lines := ws.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]string{}
					ws.byLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]string{}
				}
				lines[pos.Line][rule] = rationale
				ws.records = append(ws.records, waiverRec{pos: pos, rule: rule, rationale: rationale})
			}
		}
	}
	return ws
}

// match resolves a diagnostic position against the set and reports the
// rationale and the waiver's own line (so callers can mark it consumed).
func (ws *waiverSet) match(pos token.Position, rule string) (string, int, bool) {
	lines := ws.byLine[pos.Filename]
	if lines == nil {
		return "", 0, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if rules := lines[line]; rules != nil {
			if r, ok := rules[rule]; ok {
				return r, line, true
			}
		}
	}
	return "", 0, false
}

// --- parser-only module scan (for cmd/leakcheck roster sync) -------------

// ScanModuleDirectives walks every non-test .go file under root (skipping
// testdata and hidden directories), parses comments only, and returns the
// directive index. It needs no type information, so cmd/leakcheck can run
// it against the working tree without a build — the static annotations and
// the dynamic audit roster are compared on every run.
func ScanModuleDirectives(root string) (*Index, []Diagnostic, error) {
	ix := NewIndex()
	var bad []Diagnostic
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		// Key by directory-relative package path: good enough for roster
		// names, which only need uniqueness and stability.
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			rel = filepath.Dir(path)
		}
		pkg := &Package{Path: filepath.ToSlash(rel), Fset: fset, Files: []*ast.File{file}}
		bad = append(bad, CollectDirectives(ix, pkg)...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ix, bad, nil
}
