package tensor

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"secemb/internal/obs"
)

func restoreTune(t *testing.T) {
	prev := tunePtr.Load()
	t.Cleanup(func() { tunePtr.Store(prev) })
}

func TestAutotuneInstallsValidConfig(t *testing.T) {
	restoreTune(t)
	start := time.Now()
	got := Autotune()
	elapsed := time.Since(start)
	if !got.Autotuned {
		t.Fatal("Autotune returned a non-autotuned config")
	}
	if got.Workers < 1 || got.Workers > runtime.GOMAXPROCS(0) {
		t.Fatalf("tuned workers %d out of range", got.Workers)
	}
	if got.BlockRows < 1 || got.InlineRows < 1 {
		t.Fatalf("tuned config has invalid granularity: %+v", got)
	}
	if CurrentTune() != got {
		t.Fatalf("installed config %+v != returned %+v", CurrentTune(), got)
	}
	// ~100ms budget with headroom for probe overshoot on loaded machines.
	if elapsed > 2*time.Second {
		t.Fatalf("Autotune took %v, budget is ~%v", elapsed, tuneBudget)
	}
}

func TestTunedKernelsStayCorrect(t *testing.T) {
	restoreTune(t)
	rng := rand.New(rand.NewSource(31))
	a := randMatrix(65, 33, 1, rng)
	b := randMatrix(33, 17, 1, rng)
	want := MatMul(a, b, 1)
	Autotune()
	got := MatMul(a, b, 0)
	if !AllClose(got, want, 1e-6) {
		t.Fatal("tuned MatMul diverges from single-threaded result")
	}
}

func TestSetTuneDefaultsAndObs(t *testing.T) {
	restoreTune(t)
	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)
	SetTune(TuneConfig{Workers: 3, Autotuned: true, ProbeNs: 42})
	c := CurrentTune()
	if c.BlockRows != 64 || c.InlineRows != 1 {
		t.Fatalf("SetTune did not fill defaults: %+v", c)
	}
	if v := reg.Gauge("tensor_tune_workers").Value(); v != 3 {
		t.Fatalf("tensor_tune_workers = %d, want 3", v)
	}
	if v := reg.Gauge("tensor_tune_autotuned").Value(); v != 1 {
		t.Fatalf("tensor_tune_autotuned = %d, want 1", v)
	}
	if v := reg.Gauge("tensor_tune_probe_ns").Value(); v != 42 {
		t.Fatalf("tensor_tune_probe_ns = %d, want 42", v)
	}
}

func TestInlineThresholdForcesSingleWorker(t *testing.T) {
	restoreTune(t)
	SetTune(TuneConfig{InlineRows: 8})
	if w := clampWorkers(0, 8); w != 1 {
		t.Fatalf("8 rows under InlineRows=8 got %d workers, want 1", w)
	}
	// Explicit thread requests bypass the tune caps (profiling sweeps).
	if w := clampWorkers(2, 8); runtime.GOMAXPROCS(0) >= 2 && w != 2 {
		t.Fatalf("explicit nthreads=2 got %d workers", w)
	}
}

func BenchmarkAutotune(b *testing.B) {
	prev := tunePtr.Load()
	defer tunePtr.Store(prev)
	for i := 0; i < b.N; i++ {
		Autotune()
	}
}
