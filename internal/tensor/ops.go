package tensor

import (
	"fmt"
	"math"
)

// Add returns a+b element-wise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace computes a += b element-wise.
func AddInPlace(a, b *Matrix) {
	mustSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a-b element-wise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Mul returns the element-wise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix {
	mustSameShape("Mul", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale returns a*s element-wise.
func Scale(a *Matrix, s float32) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace computes a *= s element-wise.
func ScaleInPlace(a *Matrix, s float32) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AXPY computes y += alpha*x element-wise.
func AXPY(alpha float32, x, y *Matrix) {
	mustSameShape("AXPY", x, y)
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// AddRowVec adds the length-Cols vector v to every row of m in place.
// Standard bias broadcast.
func AddRowVec(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec vector len %d != cols %d", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v[c]
		}
	}
}

// Apply returns a new matrix with fn applied element-wise.
func Apply(m *Matrix, fn func(float32) float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = fn(v)
	}
	return out
}

// ApplyInPlace applies fn element-wise in place.
func ApplyInPlace(m *Matrix, fn func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = fn(v)
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func Sum(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// ColSums returns the per-column sums of m as a length-Cols slice.
// Used for bias gradients.
func ColSums(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out[c] += v
		}
	}
	return out
}

// MaxAbsDiff returns the largest |a-b| over all elements.
func MaxAbsDiff(a, b *Matrix) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var worst float64
	for i, v := range a.Data {
		d := math.Abs(float64(v) - float64(b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// AllClose reports whether every pair of elements differs by at most tol.
func AllClose(a, b *Matrix, tol float64) bool {
	return a.SameShape(b) && MaxAbsDiff(a, b) <= tol
}

// Norm2 returns the Frobenius norm of m.
func Norm2(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Concat stacks matrices horizontally: all inputs share Rows; the result
// has the summed column count. Used by DLRM feature interaction.
func Concat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: Concat row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(r))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns the column range [lo,hi) of m as a new matrix.
func SliceCols(m *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of %d", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// SliceRows returns the row range [lo,hi) of m as a new matrix (copied).
func SliceRows(m *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of %d", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
