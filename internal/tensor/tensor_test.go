package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row aliasing broken: %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias underlying storage")
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0)=%v, want 3", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	FromSlice(2, 2, []float32{1})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose mismatch at %d,%d", r, c)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewUniform(1+rng.Intn(8), 1+rng.Intn(8), 1, rng)
		return AllClose(m, m.Transpose().Transpose(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroFill(t *testing.T) {
	m := NewUniform(3, 3, 1, rand.New(rand.NewSource(1)))
	m.Fill(2.5)
	for _, v := range m.Data {
		if v != 2.5 {
			t.Fatalf("Fill: got %v", v)
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero: got %v", v)
		}
	}
}

func TestXavierScale(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewXavier(100, 100, rng)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("Xavier sample %v out of [-%v, %v]", v, limit, limit)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewGaussian(200, 200, 0.5, rng)
	mean := Sum(m) / float64(len(m.Data))
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	var varsum float64
	for _, v := range m.Data {
		varsum += float64(v) * float64(v)
	}
	std := math.Sqrt(varsum / float64(len(m.Data)))
	if math.Abs(std-0.5) > 0.01 {
		t.Fatalf("std %v, want ~0.5", std)
	}
}

func TestNumBytes(t *testing.T) {
	if got := New(10, 10).NumBytes(); got != 400 {
		t.Fatalf("NumBytes=%d, want 400", got)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice(1, 2, []float32{1, 2})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	large := New(100, 100)
	if large.String() != "Matrix(100x100)" {
		t.Fatalf("large String=%q", large.String())
	}
}
