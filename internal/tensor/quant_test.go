package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refQuantProduct computes what MatMulQuantInto should produce, from the
// decoded quantized operands with plain float arithmetic: the kernel's
// packed SWAR evaluation must match this exactly — quantization decides
// the precision, the packing must decide nothing.
func refQuantProduct(x *Matrix, w *QuantMat, qa *QuantActs, bias []float32) *Matrix {
	out := New(x.Rows, w.Out)
	for i := 0; i < x.Rows; i++ {
		for o := 0; o < w.Out; o++ {
			var sum float64
			for k := 0; k < x.Cols; k++ {
				sum += float64(qa.ActAt(i, k)) * float64(w.WeightAt(k, o))
			}
			if bias != nil {
				sum += float64(bias[o])
			}
			out.Data[i*w.Out+o] = float32(sum)
		}
	}
	return out
}

func randMatrix(rows, cols int, scale float32, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

func TestMatMulQuantMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ m, k, n int }{
		{1, 8, 2}, {3, 5, 7}, {4, 64, 16}, {64, 1024, 512}, {2, 1023, 9},
	} {
		x := randMatrix(shape.m, shape.k, 1, rng)
		w := randMatrix(shape.k, shape.n, 0.1, rng)
		bias := make([]float32, shape.n)
		for i := range bias {
			bias[i] = rng.Float32() - 0.5
		}
		q := QuantizeMat(w)
		var qa QuantActs
		qa.Quantize(x)
		got := New(shape.m, shape.n)
		MatMulQuantInto(got, &qa, q, bias, 1)

		// Against the float product: quantization error only, bounded by
		// the 6-bit activation step accumulated over k.
		want := MatMul(x, w, 1)
		for i := range bias {
			for r := 0; r < shape.m; r++ {
				want.Data[r*shape.n+i] += bias[i]
			}
		}
		tol := 0.008 * math.Sqrt(float64(shape.k)) // ~εa·σw·√k margin
		if tol < 0.02 {
			tol = 0.02
		}
		if diff := MaxAbsDiff(got, want); diff > tol {
			t.Errorf("%dx%dx%d: quant vs float diff %v > %v", shape.m, shape.k, shape.n, diff, tol)
		}

		// Against the decoded-operand reference: near-exact (float32
		// rounding of identical quantities only).
		ref := refQuantProduct(x, q, &qa, bias)
		if diff := MaxAbsDiff(got, ref); float64(diff) > 1e-3 {
			t.Errorf("%dx%dx%d: kernel vs decoded reference diff %v", shape.m, shape.k, shape.n, diff)
		}
	}
}

func TestQuantizeMatTransposedEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := randMatrix(37, 11, 0.3, rng)
	wt := New(11, 37)
	for i := 0; i < 37; i++ {
		for j := 0; j < 11; j++ {
			wt.Data[j*37+i] = w.Data[i*11+j]
		}
	}
	a, b := QuantizeMat(w), QuantizeMatTransposed(wt)
	if a.In != b.In || a.Out != b.Out || len(a.Packed) != len(b.Packed) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", a.In, a.Out, b.In, b.Out)
	}
	for i := range a.Packed {
		if a.Packed[i] != b.Packed[i] {
			t.Fatalf("packed word %d differs", i)
		}
	}
	for o := range a.Scale {
		if a.Scale[o] != b.Scale[o] || a.ColSum[o] != b.ColSum[o] {
			t.Fatalf("column %d scale/sum differs", o)
		}
	}
}

func TestQuantEdgeCases(t *testing.T) {
	// All-zero rows and columns must stay exact zeros, not NaNs.
	x := New(2, 8)
	w := New(8, 3)
	q := QuantizeMat(w)
	var qa QuantActs
	qa.Quantize(x)
	out := New(2, 3)
	MatMulQuantInto(out, &qa, q, nil, 1)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero·zero gave %v at %d", v, i)
		}
	}
	// Extreme dynamic range within a column: small weights are crushed to
	// zero by the shared scale — the documented failure mode the accuracy
	// gate exists for — but nothing overflows or corrupts neighbors.
	w2 := New(8, 2)
	w2.Data[0*2+0] = 1e6
	for k := 1; k < 8; k++ {
		w2.Data[k*2+0] = 1e-6
		w2.Data[k*2+1] = 0.5
	}
	q2 := QuantizeMat(w2)
	x2 := New(1, 8)
	for k := 0; k < 8; k++ {
		x2.Data[k] = 1
	}
	qa.Quantize(x2)
	out2 := New(1, 2)
	MatMulQuantInto(out2, &qa, q2, nil, 1)
	if math.Abs(float64(out2.Data[0])-1e6) > 1e6*0.02 {
		t.Fatalf("outlier column: got %v want ~1e6", out2.Data[0])
	}
	if math.Abs(float64(out2.Data[1])-3.5) > 3.5*0.05 {
		t.Fatalf("neighbor column corrupted: got %v want ~3.5", out2.Data[1])
	}
}

func TestQuantActsSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(16, 96, 1, rng)
	w := randMatrix(96, 24, 0.2, rng)
	q := QuantizeMat(w)
	var qa QuantActs
	out := New(16, 24)
	qa.Quantize(x)
	MatMulQuantInto(out, &qa, q, nil, 1)
	allocs := testing.AllocsPerRun(50, func() {
		qa.Quantize(x)
		MatMulQuantInto(out, &qa, q, nil, 1)
	})
	if allocs != 0 {
		t.Fatalf("quantized forward allocates %.0f objects per call after warmup", allocs)
	}
}

func TestMatMulQuantParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randMatrix(33, 130, 1, rng)
	w := randMatrix(130, 17, 0.2, rng)
	q := QuantizeMat(w)
	var qa QuantActs
	qa.Quantize(x)
	serial, parallel := New(33, 17), New(33, 17)
	MatMulQuantInto(serial, &qa, q, nil, 1)
	MatMulQuantInto(parallel, &qa, q, nil, 8)
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("parallel result differs at %d: %v vs %v", i, parallel.Data[i], serial.Data[i])
		}
	}
}

func BenchmarkMatMulQuant256(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(256, 256, 1, rng)
	w := randMatrix(256, 256, 0.1, rng)
	q := QuantizeMat(w)
	var qa QuantActs
	out := New(256, 256)
	qa.Quantize(x) // size the scratch before the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qa.Quantize(x)
		MatMulQuantInto(out, &qa, q, nil, 0)
	}
}
