package tensor

import (
	"runtime"
	"sync"
	"testing"

	"secemb/internal/obs"
)

func TestParallelRowsPoolCoversAllRowsOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(6)
	defer runtime.GOMAXPROCS(prev)

	var mu sync.Mutex
	counts := make([]int, 103)
	ParallelRows(len(counts), 5, func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			counts[i]++
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
}

func TestSetObserverWiresPoolMetrics(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)

	if w := reg.Gauge("tensor_pool_workers").Value(); w < 1 {
		t.Fatalf("tensor_pool_workers = %d, want >= 1", w)
	}
	before := reg.Counter("tensor_pool_chunks_total").Value() +
		reg.Counter("tensor_pool_inline_total").Value()
	ParallelRows(100, 4, func(lo, hi int) {})
	after := reg.Counter("tensor_pool_chunks_total").Value() +
		reg.Counter("tensor_pool_inline_total").Value()
	// The caller-run final chunk is never counted; the other chunks land
	// in exactly one of the two counters.
	if after <= before {
		t.Fatalf("pool chunk counters did not advance (%d -> %d)", before, after)
	}
}
