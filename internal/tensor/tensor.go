// Package tensor provides dense float32 matrices and the small set of
// linear-algebra kernels the rest of the repository is built on: blocked,
// goroutine-parallel matrix multiplication, element-wise transforms, and
// random initialization.
//
// Everything in the module — the neural-network layers, DHE decoders,
// DLRM MLPs and the transformer — bottoms out in these kernels, so their
// performance character (compute-bound matmul vs memory-bound streaming)
// determines the latency shapes the paper's evaluation depends on.
//
// Matrices are row-major. float32 is used throughout to keep memory
// footprints comparable to the paper's PyTorch models (Table VI and the
// LLM footprint analysis count 4-byte elements).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float32 matrix.
//
// The zero value is an empty 0×0 matrix. Use New or one of the
// initializer helpers for anything else.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements, want %d", len(data), rows*cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewUniform returns a rows×cols matrix with entries drawn uniformly from
// [-scale, scale] using rng.
func NewUniform(rows, cols int, scale float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return m
}

// NewXavier returns a rows×cols matrix initialized with Xavier/Glorot
// uniform initialization, the scheme DLRM's reference implementation uses
// for its MLPs: U(-sqrt(6/(in+out)), +sqrt(6/(in+out))).
func NewXavier(in, out int, rng *rand.Rand) *Matrix {
	scale := math.Sqrt(6.0 / float64(in+out))
	return NewUniform(in, out, scale, rng)
}

// NewGaussian returns a rows×cols matrix with N(0, std²) entries.
func NewGaussian(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*out.Cols+r] = v
		}
	}
	return out
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// String renders small matrices fully and large ones by shape only.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}

// SameShape reports whether m and n have identical dimensions.
func (m *Matrix) SameShape(n *Matrix) bool {
	return m.Rows == n.Rows && m.Cols == n.Cols
}

// NumBytes returns the storage footprint of the matrix payload in bytes.
func (m *Matrix) NumBytes() int64 { return int64(len(m.Data)) * 4 }
