package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"

	"secemb/internal/obs"
)

// The kernels in this package used to spawn a fresh set of goroutines per
// call. At serving rates (thousands of matmuls per second through the DHE
// decoders) that is pure scheduler churn: every MatMul paid goroutine
// creation, stack setup and exit for workers that live microseconds. This
// file replaces that with one persistent, lazily-started worker pool fed
// contiguous row-range tasks over a channel. Workers live for the process
// lifetime; a kernel invocation only pays one channel send per chunk and
// one WaitGroup rendezvous.
//
// The pool is deadlock-free by construction: when the task queue is full
// (or the pool is saturated, e.g. a kernel invoked from inside another
// parallel section) the chunk runs inline on the calling goroutine instead
// of blocking. The caller also always executes the final chunk itself, so
// a parallel call makes progress even if no pool worker is ever scheduled.

// task is one contiguous row-range of a parallel kernel.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan task
	poolSize  int

	// Source-of-truth counters, mirrored into obs metrics when wired.
	poolDispatched atomic.Int64 // chunks executed by pool workers
	poolInline     atomic.Int64 // chunks executed on the calling goroutine
	poolInflight   atomic.Int64 // chunks queued or executing in the pool
)

// poolObs bundles the wired observability handles so the hot path loads
// them with a single atomic pointer read. All obs types are nil-safe, but
// the struct pointer itself is checked to skip the extra atomic ops when
// observability is off.
type poolObs struct {
	inflight   *obs.Gauge
	dispatched *obs.Counter
	inline     *obs.Counter
}

var poolObsPtr atomic.Pointer[poolObs]

// SetObserver registers the worker-pool metrics in reg:
//
//	tensor_pool_workers        resident pool worker goroutines (gauge)
//	tensor_pool_inflight       chunks queued or executing in the pool (gauge)
//	tensor_pool_chunks_total   chunks executed by pool workers
//	tensor_pool_inline_total   chunks executed inline on the caller
//
// A nil registry detaches observability. The inline counter is the pool's
// saturation signal: a high inline:chunks ratio means callers outpace the
// workers and extra capacity would help.
func SetObserver(reg *obs.Registry) {
	if reg == nil {
		poolObsPtr.Store(nil)
		tuneObsPtr.Store(nil)
		return
	}
	o := &poolObs{
		inflight:   reg.Gauge("tensor_pool_inflight"),
		dispatched: reg.Counter("tensor_pool_chunks_total"),
		inline:     reg.Counter("tensor_pool_inline_total"),
	}
	reg.Gauge("tensor_pool_workers").Set(int64(PoolWorkers()))
	o.dispatched.Add(poolDispatched.Load())
	o.inline.Add(poolInline.Load())
	poolObsPtr.Store(o)
	// Mirror the kernel dispatch config (tensor_tune_*) into the same
	// registry, now and on every future SetTune/Autotune.
	tuneObsPtr.Store(reg)
	publishTune()
}

// PoolWorkers returns the size the worker pool has (or will have when
// first used).
func PoolWorkers() int {
	if poolTasks != nil {
		return poolSize
	}
	return poolSizeFor()
}

func poolSizeFor() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c > n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// PoolStats reports lifetime pool activity (for tests and diagnostics).
func PoolStats() (dispatched, inline, inflight int64) {
	return poolDispatched.Load(), poolInline.Load(), poolInflight.Load()
}

func startPool() {
	poolSize = poolSizeFor()
	// A generous buffer lets a burst of kernels enqueue all chunks without
	// stalling; overflow falls back to inline execution, never blocking.
	poolTasks = make(chan task, 16*poolSize)
	for i := 0; i < poolSize; i++ {
		go poolWorker()
	}
}

func poolWorker() {
	for t := range poolTasks {
		t.fn(t.lo, t.hi)
		poolInflight.Add(-1)
		if o := poolObsPtr.Load(); o != nil {
			o.inflight.Add(-1)
		}
		t.wg.Done()
	}
}

// parallelRows splits [0,rows) into contiguous chunks and runs fn on each,
// dispatching all but the last chunk to the persistent pool. The final
// chunk always runs on the caller — it would otherwise idle in wg.Wait —
// and chunks the queue cannot absorb run inline too.
func parallelRows(rows, workers int, fn func(lo, hi int)) {
	if workers <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	poolOnce.Do(startPool)
	o := poolObsPtr.Load()
	var wg sync.WaitGroup
	step := (rows + workers - 1) / workers
	lo := 0
	for ; lo+step < rows; lo += step {
		wg.Add(1)
		select {
		case poolTasks <- task{fn: fn, lo: lo, hi: lo + step, wg: &wg}:
			poolInflight.Add(1)
			poolDispatched.Add(1)
			if o != nil {
				o.inflight.Add(1)
				o.dispatched.Inc()
			}
		default:
			wg.Done()
			fn(lo, lo+step)
			poolInline.Add(1)
			if o != nil {
				o.inline.Inc()
			}
		}
	}
	fn(lo, rows)
	wg.Wait()
}

// ParallelRows exposes the chunked row-parallel helper for other packages
// (e.g. batched embedding generation). The worker count is clamped to
// runtime.GOMAXPROCS(0) at call time.
func ParallelRows(rows, workers int, fn func(lo, hi int)) {
	parallelRows(rows, clampWorkers(workers, rows), fn)
}
