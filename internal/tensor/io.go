package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization: a tiny, explicit little-endian format
// (magic "TNSR", int32 rows, int32 cols, rows·cols float32s) so
// checkpoints are portable and dependency-free.

var tensorMagic = [4]byte{'T', 'N', 'S', 'R'}

// WriteTo serializes m. Implements io.WriterTo.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	if _, err := bw.Write(tensorMagic[:]); err != nil {
		return n, err
	}
	n += 4
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.Cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 8
	var buf [4]byte
	for _, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += 4
	}
	return n, bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading magic: %w", err)
	}
	if magic != tensorMagic {
		return nil, fmt.Errorf("tensor: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading header: %w", err)
	}
	rows := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
	cols := int(int32(binary.LittleEndian.Uint32(hdr[4:8])))
	if rows < 0 || cols < 0 || (rows > 0 && cols > (1<<31)/rows) {
		return nil, fmt.Errorf("tensor: implausible shape %dx%d", rows, cols)
	}
	m := New(rows, cols)
	raw := make([]byte, 4*len(m.Data))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("tensor: reading %dx%d payload: %w", rows, cols, err)
	}
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return m, nil
}

// ReadMatrixInto deserializes into an existing matrix, enforcing its
// shape — used when loading checkpoints into an already-built model.
func ReadMatrixInto(r io.Reader, dst *Matrix) error {
	m, err := ReadMatrix(r)
	if err != nil {
		return err
	}
	if !m.SameShape(dst) {
		return fmt.Errorf("tensor: checkpoint shape %dx%d != model shape %dx%d",
			m.Rows, m.Cols, dst.Rows, dst.Cols)
	}
	copy(dst.Data, m.Data)
	return nil
}
