package tensor

import (
	"runtime"
	"sync/atomic"
	"time"

	"secemb/internal/obs"
)

// Startup autotuner. The float and quantized kernels have three knobs
// whose best values are machine-dependent — worker count, dispatch
// granularity, and the batch size below which the pool is pure overhead —
// and a value hand-picked on one box (the old blockSize = 64 constant) is
// wrong on the next. Autotune measures candidate configs on this machine
// with the serving-dominant shapes for ~100ms at startup and installs the
// winner process-wide.
//
// Tuning is side-channel-neutral by construction: the probe inputs are
// synthetic, the candidate space and probe shapes are compile-time
// constants, and the chosen config depends only on machine timing of
// public shapes — no secret (no feature id) exists at tuning time, and
// the installed config changes how work is partitioned, never which
// values are computed. See DESIGN §13.

// TuneConfig is the installed kernel dispatch configuration.
type TuneConfig struct {
	// Workers caps the worker count used by the parallel kernels
	// (further clamped by GOMAXPROCS and the row count). <=0: GOMAXPROCS.
	Workers int `json:"workers"`
	// BlockRows is the minimum number of rows per dispatched chunk;
	// splits finer than this cost more in handoff than they recover in
	// load balance.
	BlockRows int `json:"block_rows"`
	// InlineRows is the batch size at or below which kernels skip the
	// worker pool entirely and run on the caller.
	InlineRows int `json:"inline_rows"`
	// Autotuned records whether this config was measured (Autotune) or is
	// the static default.
	Autotuned bool `json:"autotuned"`
	// ProbeNs is the best measured probe-kernel time for the winning
	// config (0 for the static default).
	ProbeNs int64 `json:"probe_ns,omitempty"`
}

// defaultTune mirrors the pre-autotuner behavior: the historical 64-row
// block granularity, all CPUs, pool from 2 rows up.
func defaultTune() TuneConfig {
	return TuneConfig{Workers: 0, BlockRows: 64, InlineRows: 1}
}

var tunePtr atomic.Pointer[TuneConfig]

func currentTune() *TuneConfig {
	if t := tunePtr.Load(); t != nil {
		return t
	}
	return &staticTune
}

var staticTune = defaultTune()

// CurrentTune returns the installed kernel dispatch config.
func CurrentTune() TuneConfig { return *currentTune() }

// SetTune installs a kernel dispatch config process-wide (e.g. one
// restored from internal/profile persistence instead of re-probing).
// Zero-valued fields are replaced by the static defaults.
func SetTune(c TuneConfig) {
	d := defaultTune()
	if c.BlockRows <= 0 {
		c.BlockRows = d.BlockRows
	}
	if c.InlineRows <= 0 {
		c.InlineRows = d.InlineRows
	}
	tunePtr.Store(&c)
	publishTune()
}

// tuneBudget bounds one Autotune call; candidates that would overrun it
// are skipped in favor of the best config measured so far.
const tuneBudget = 100 * time.Millisecond

// Autotune benchmarks candidate worker counts and block granularities on
// the serving-dominant matmul shape, picks the inline-fallback threshold
// by racing the pool against single-threaded dispatch on small batches,
// installs the winner via SetTune, and returns it. Call once at startup
// (cmd/secembd does, and `make bench` does before recording) — repeated
// calls re-probe and overwrite.
func Autotune() TuneConfig {
	deadline := time.Now().Add(tuneBudget)
	procs := runtime.GOMAXPROCS(0)

	// Probe shape: one row-panel of the DHE Uniform decoder's first layer
	// (the serving-dominant multiply), shrunk in depth to keep a full
	// candidate sweep inside the budget on slow machines.
	const pm, pk, pn = 64, 256, 128
	a := New(pm, pk)
	b := New(pk, pn)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float32(i%5) - 2
	}
	dst := New(pm, pn)

	workerCands := dedupInts([]int{1, 2, procs / 2, procs}, procs)
	blockCands := []int{8, 16, 32, 64, 128}

	best := defaultTune()
	best.Autotuned = true
	bestNs := int64(-1)
	for _, w := range workerCands {
		for _, blk := range blockCands {
			if w == 1 && blk != blockCands[0] {
				continue // block granularity is meaningless single-threaded
			}
			cand := TuneConfig{Workers: w, BlockRows: blk, InlineRows: 1, Autotuned: true}
			ns := probeKernel(dst, a, b, cand, deadline)
			if ns >= 0 && (bestNs < 0 || ns < bestNs) {
				bestNs, best = ns, cand
			}
		}
	}
	best.ProbeNs = bestNs

	// Inline threshold: smallest-batch shapes where pool handoff can cost
	// more than it buys. Walk batch sizes upward; the threshold is the
	// largest batch where single-threaded still wins.
	if best.Workers != 1 && procs > 1 {
		single := TuneConfig{Workers: 1, BlockRows: best.BlockRows, InlineRows: 1}
		pooled := best
		for _, rows := range []int{1, 2, 4, 8} {
			sa := New(rows, pk)
			copy(sa.Data, a.Data[:rows*pk])
			sd := New(rows, pn)
			sNs := probeKernel(sd, sa, b, single, deadline)
			pNs := probeKernel(sd, sa, b, pooled, deadline)
			if sNs < 0 || pNs < 0 || pNs < sNs {
				break
			}
			best.InlineRows = rows
		}
	} else {
		// One effective worker: the pool can never win; inline everything.
		best.InlineRows = 1 << 30
	}

	SetTune(best)
	return best
}

// probeKernel times MatMulInto under cand, best of a few reps; -1 when the
// deadline has passed.
func probeKernel(dst, a, b *Matrix, cand TuneConfig, deadline time.Time) int64 {
	if time.Now().After(deadline) {
		return -1
	}
	restore := tunePtr.Load()
	tunePtr.Store(&cand)
	defer tunePtr.Store(restore)
	best := int64(-1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		// nthreads 0: the candidate config under test drives the worker
		// count and granularity, exactly as it would in production.
		MatMulInto(dst, a, b, 0)
		ns := time.Since(start).Nanoseconds()
		if best < 0 || ns < best {
			best = ns
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return best
}

func dedupInts(in []int, most int) []int {
	var out []int
	for _, v := range in {
		if v < 1 || v > most {
			continue
		}
		seen := false
		for _, o := range out {
			if o == v {
				seen = true
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// tuneObsPtr holds the registry tune gauges are published to; SetObserver
// wires it and every SetTune refresh re-publishes.
var tuneObsPtr atomic.Pointer[obs.Registry]

// publishTune mirrors the installed config into the wired obs registry:
//
//	tensor_tune_workers      worker-count cap (0 = GOMAXPROCS)
//	tensor_tune_block_rows   dispatch granularity in rows
//	tensor_tune_inline_rows  single-threaded batch-size threshold
//	tensor_tune_autotuned    1 when measured by Autotune, 0 for defaults
//	tensor_tune_probe_ns     winning config's probe-kernel time
func publishTune() {
	reg := tuneObsPtr.Load()
	if reg == nil {
		return
	}
	c := CurrentTune()
	reg.Gauge("tensor_tune_workers").Set(int64(c.Workers))
	reg.Gauge("tensor_tune_block_rows").Set(int64(c.BlockRows))
	reg.Gauge("tensor_tune_inline_rows").Set(int64(c.InlineRows))
	var auto int64
	if c.Autotuned {
		auto = 1
	}
	reg.Gauge("tensor_tune_autotuned").Set(auto)
	reg.Gauge("tensor_tune_probe_ns").Set(c.ProbeNs)
}
