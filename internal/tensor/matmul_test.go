package tensor

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference three-loop implementation used as an oracle.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b, 1)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !AllClose(got, want, 1e-5) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewUniform(5, 5, 1, rng)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !AllClose(MatMul(a, id, 1), a, 1e-6) {
		t.Fatal("A·I != A")
	}
	if !AllClose(MatMul(id, a, 1), a, 1e-6) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := NewUniform(m, k, 1, rng)
		b := NewUniform(k, n, 1, rng)
		return AllClose(MatMul(a, b, 1), naiveMatMul(a, b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewUniform(97, 53, 1, rng)
	b := NewUniform(53, 41, 1, rng)
	serial := MatMul(a, b, 1)
	for _, workers := range []int{2, 4, 8, 0} {
		par := MatMul(a, b, workers)
		if !AllClose(serial, par, 1e-5) {
			t.Fatalf("parallel (%d workers) differs from serial by %v", workers, MaxAbsDiff(serial, par))
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2), 1)
}

func TestMatMulTransB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := NewUniform(m, k, 1, rng)
		b := NewUniform(n, k, 1, rng)
		return AllClose(MatMulTransB(a, b, 2), MatMul(a, b.Transpose(), 1), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := NewUniform(k, m, 1, rng)
		b := NewUniform(k, n, 1, rng)
		return AllClose(MatMulTransA(a, b, 2), MatMul(a.Transpose(), b, 1), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	got := MatVec(a, []float32{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MatVec got %v", got)
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewUniform(10, 10, 1, rng)
	b := NewUniform(10, 10, 1, rng)
	dst := New(10, 10)
	dst.Fill(99) // stale values must be overwritten
	MatMulInto(dst, a, b, 2)
	if !AllClose(dst, naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMulInto did not overwrite stale contents")
	}
}

func TestClampWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if w := clampWorkers(0, 100); w < 1 || w > procs {
		t.Fatalf("clampWorkers(0,100)=%d", w)
	}
	if w := clampWorkers(8, 2); w != min(2, procs) {
		t.Fatalf("clampWorkers(8,2)=%d, want %d", w, min(2, procs))
	}
	if w := clampWorkers(3, 100); w != min(3, procs) {
		t.Fatalf("clampWorkers(3,100)=%d", w)
	}
}

func TestParallelRowsCoversAll(t *testing.T) {
	hit := make([]bool, 37)
	ParallelRows(len(hit), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i] = true
		}
	})
	for i, h := range hit {
		if !h {
			t.Fatalf("row %d never visited", i)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewUniform(256, 256, 1, rng)
	y := NewUniform(256, 256, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y, 0)
	}
}
