package tensor

import (
	"fmt"
	"math"
)

// Quantized matmul kernels for the int8 serving path.
//
// Pure-Go scalar float32 kernels bound the DHE hot path at roughly one
// multiply-add per cycle; a naive int8 kernel (widen to int32, multiply,
// accumulate) is *slower* than that on scalar CPUs because the
// widening traffic costs more than the float FMA it replaces. The kernels
// here instead pack four quantized values into the four 16-bit lanes of a
// uint64 and use one 64-bit integer multiply as a 4-element dot product —
// SWAR (SIMD within a register), so the speedup needs no assembly and no
// build tags.
//
// Scheme. Weights are quantized per output column to 7 signed bits
// ([-63,63], scale = maxAbs/63) and offset-encoded by +64 into [1,127];
// activations are quantized per batch row to 6 signed bits ([-31,31],
// scale = maxAbs/31) and offset-encoded by +32 into [1,63]. A word of
// activations is packed forward (a0 | a1<<16 | a2<<32 | a3<<48) and a word
// of weights reversed (w3 | w2<<16 | w1<<32 | w0<<48), so the plain 64-bit
// product A*W carries the 4-element dot product Σ aᵢwᵢ in its top lane,
// bits [48,64): the product is the convolution Σ cₜ·2^16t with
// c₃ = Σ aᵢwᵢ, and no lower lane can carry into lane 3 because every
// cₜ ≤ 4·63·127 = 32004 < 2^15. The margin is deliberate — it lets the
// kernel *sum two products before the shift* (pair sums < 2^16), so eight
// multiply-accumulates cost two integer multiplies, one add and one shift.
//
// The offset encoding is corrected once per output cell: with a = a'-32,
// w = w'-64,
//
//	Σ a·w  =  Σ a'w'  −  64·Σa'  −  32·Σw'  +  2048·K
//
// where Σw' per column is precomputed at weight-quantization time, Σa' per
// row at activation-pack time, and K is the padded depth. Padding encodes
// exact zeros (a' = 32, w' = 64), so padded lanes contribute nothing.
//
// Obliviousness. Activations derive from secret feature ids, so
// quantization and the kernel inner loops are branchless and annotated
// secemb:secret: the per-row max-abs reduction uses bit tricks instead of
// comparisons, rounding is a biased float→int conversion, and the zero
// guard is an epsilon add. Every lane is computed for every input —
// exactly the dense, value-independent data flow of the float kernels.

const (
	laneK  = 4  // quantized elements per packed 64-bit word
	actMax = 31 // activation quant range: [-actMax, actMax]
	actOff = 32 // activation offset encoding: lane = q + actOff ∈ [1,63]
	wMax   = 63 // weight quant range: [-wMax, wMax]
	wOff   = 64 // weight offset encoding: lane = q + wOff ∈ [1,127]
)

// packedWords is the number of 64-bit words holding k quantized values.
func packedWords(k int) int { return (k + laneK - 1) / laneK }

// QuantMat is a weight matrix quantized for MatMulQuantInto: 7-bit
// per-output-column symmetric quantization in packed 16-bit lanes.
// Footprint is 2 bytes per weight plus 8 bytes per output column — larger
// than flat int8 but ~4× faster on scalar CPUs (see package comment).
type QuantMat struct {
	In, Out int
	kw      int // packed words per output column = packedWords(In)
	// Packed holds Out column panels of kw words each, lanes reversed
	// within a word (see package comment).
	Packed []uint64
	// Scale[o] dequantizes column o: w ≈ (lane − 64)·Scale[o].
	Scale []float32
	// ColSum[o] is Σ of column o's offset-encoded lanes including padding,
	// folded into the offset correction by the kernel.
	ColSum []int32
}

// QuantizeMat quantizes w, laid out In×Out as in y = x·w (nn.Linear.W).
// Weights are model constants — public under the threat model — so this
// offline step may branch freely.
func QuantizeMat(w *Matrix) *QuantMat {
	return quantizeMat(w.Rows, w.Cols, func(k, o int) float32 { return w.Data[k*w.Cols+o] })
}

// QuantizeMatTransposed quantizes wt laid out Out×In (row o is output
// column o, as in y = x·bᵀ) without materializing the transpose. The
// packed form — and therefore the runtime kernel — is identical to
// QuantizeMat's.
func QuantizeMatTransposed(wt *Matrix) *QuantMat {
	return quantizeMat(wt.Cols, wt.Rows, func(k, o int) float32 { return wt.Data[o*wt.Cols+k] })
}

// maxQuantIn bounds the depth so the int32 accumulator cannot overflow:
// the raw lane sum is at most (In/2)·2·32004 < 2^31 for In ≤ 2^16.
const maxQuantIn = 1 << 16

func quantizeMat(in, out int, at func(k, o int) float32) *QuantMat {
	if in > maxQuantIn {
		panic(fmt.Sprintf("tensor: quantized depth %d exceeds %d (int32 accumulator bound)", in, maxQuantIn))
	}
	kw := packedWords(in)
	q := &QuantMat{
		In:     in,
		Out:    out,
		kw:     kw,
		Packed: make([]uint64, out*kw),
		Scale:  make([]float32, out),
		ColSum: make([]int32, out),
	}
	for o := 0; o < out; o++ {
		var maxAbs float64
		for k := 0; k < in; k++ {
			if v := math.Abs(float64(at(k, o))); v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / wMax
		if maxAbs == 0 {
			scale = 1
		}
		q.Scale[o] = float32(scale)
		col := q.Packed[o*kw : (o+1)*kw]
		var sum int32
		for t := 0; t < kw; t++ {
			var word uint64
			for lane := 0; lane < laneK; lane++ {
				k := t*laneK + lane
				enc := int32(wOff) // padding encodes an exact zero
				if k < in {
					v := math.Round(float64(at(k, o)) / scale)
					if v > wMax {
						v = wMax
					} else if v < -wMax {
						v = -wMax
					}
					enc = int32(v) + wOff
				}
				sum += enc
				// Reversed lane order: lane 0 of the quad lands in the top
				// 16 bits so the product's top lane is the dot product.
				word |= uint64(enc) << (48 - 16*lane)
			}
			col[t] = word
		}
		q.ColSum[o] = sum
	}
	return q
}

// WeightAt decodes the quantized weight at depth k of output column o —
// the value the kernel effectively multiplies by. For tests and error
// accounting; not a hot-path accessor.
func (q *QuantMat) WeightAt(k, o int) float32 {
	word := q.Packed[o*q.kw+k/laneK]
	lane := (word >> (48 - 16*(k%laneK))) & 0xFFFF
	return float32(int32(lane)-wOff) * q.Scale[o]
}

// NumBytes is the resident footprint of the packed representation.
func (q *QuantMat) NumBytes() int64 {
	return int64(len(q.Packed))*8 + int64(len(q.Scale))*4 + int64(len(q.ColSum))*4
}

// QuantActs is the reusable activation-quantization scratch for
// MatMulQuantInto: 6-bit per-row symmetric quantization in packed 16-bit
// lanes. Buffers grow on demand and are reused across calls, so
// steady-state quantization allocates nothing. A QuantActs belongs to one
// goroutine's forward path at a time (embed one per nn.Workspace).
type QuantActs struct {
	Rows int
	kw   int
	// Packed holds Rows row panels of kw words each, lanes in forward
	// order (see package comment).
	Packed []uint64
	// RowScale[i] dequantizes row i: a ≈ (lane − 32)·RowScale[i].
	RowScale []float32
	// RowSum[i] is Σ of row i's offset-encoded lanes including padding.
	RowSum []int32
}

// Quantize quantizes and packs x into the scratch, replacing its previous
// contents. This wrapper touches only x's shape (public); the per-element
// work on the secret-derived activation values happens in quantizeRow,
// which carries the secemb:secret annotation and is branchless.
func (qa *QuantActs) Quantize(x *Matrix) {
	rows, cols := x.Rows, x.Cols
	kw := packedWords(cols)
	qa.Rows, qa.kw = rows, kw
	if cap(qa.Packed) < rows*kw {
		qa.Packed = make([]uint64, rows*kw)
		qa.RowScale = make([]float32, rows)
		qa.RowSum = make([]int32, rows)
	}
	qa.Packed = qa.Packed[:rows*kw]
	if cap(qa.RowScale) < rows {
		qa.RowScale = make([]float32, rows)
		qa.RowSum = make([]int32, rows)
	}
	qa.RowScale = qa.RowScale[:rows]
	qa.RowSum = qa.RowSum[:rows]
	for i := 0; i < rows; i++ {
		quantizeRow(qa.Packed[i*kw:(i+1)*kw], x.Data[i*cols:(i+1)*cols], i, qa.RowScale, qa.RowSum)
	}
}

// quantizeRow quantizes one activation row into dst and records its scale
// and offset-encoded sum at index i of the out slices. The max-abs
// reduction masks the IEEE-754 sign bit and takes the max of the raw bit
// patterns — for non-negative floats the bit pattern is monotone in the
// value, so no comparison on secret data is ever taken — and the
// divide-by-zero guard is an epsilon add instead of a branch.
//
// secemb:secret xRow
func quantizeRow(dst []uint64, xRow []float32, i int, rowScale []float32, rowSum []int32) {
	var m uint32
	for _, v := range xRow {
		m = max(m, math.Float32bits(v)&0x7FFFFFFF)
	}
	ma := math.Float32frombits(m)
	inv := actMax / (ma + 1e-30)
	rowScale[i] = (ma + 1e-30) / actMax
	cols := len(xRow)
	var sum int32
	t := 0
	for ; (t+1)*laneK <= cols; t++ {
		q0 := int32(xRow[t*laneK]*inv + (actOff + 0.5))
		q1 := int32(xRow[t*laneK+1]*inv + (actOff + 0.5))
		q2 := int32(xRow[t*laneK+2]*inv + (actOff + 0.5))
		q3 := int32(xRow[t*laneK+3]*inv + (actOff + 0.5))
		sum += q0 + q1 + q2 + q3
		dst[t] = uint64(q0) | uint64(q1)<<16 | uint64(q2)<<32 | uint64(q3)<<48
	}
	if t < len(dst) {
		// Tail word: real lanes first, then padding lanes encoding zero.
		var word uint64
		for lane := 0; lane < laneK; lane++ {
			k := t*laneK + lane
			enc := int32(actOff)
			if k < cols { // public: depends on the shape, not the data
				enc = int32(xRow[k]*inv + (actOff + 0.5))
			}
			sum += enc
			word |= uint64(enc) << (16 * lane)
		}
		dst[t] = word
	}
	rowSum[i] = sum
}

// ActAt decodes the quantized activation at row i, depth k — the value
// the kernel effectively multiplies by. For tests and error accounting.
func (qa *QuantActs) ActAt(i, k int) float32 {
	word := qa.Packed[i*qa.kw+k/laneK]
	lane := (word >> (16 * (k % laneK))) & 0xFFFF
	return float32(int32(lane)-actOff) * qa.RowScale[i]
}

// MatMulQuantInto computes dst = dequant(qa · w) + bias, reusing dst's
// storage: the quantized analogue of Linear's MatMulInto + bias add, with
// the dequantization (row scale × column scale) and the offset correction
// folded into the epilogue. bias may be nil. qa must hold exactly the
// activation batch quantized against w.In columns; dst must be
// qa.Rows×w.Out and must not alias anything. Dispatch here reads only the
// public shape metadata; the secret-value work is in matMulQuantRange,
// which carries the secemb:secret annotation.
func MatMulQuantInto(dst *Matrix, qa *QuantActs, w *QuantMat, bias []float32, nthreads int) {
	if qa.kw != w.kw || dst.Rows != qa.Rows || dst.Cols != w.Out {
		panic(fmt.Sprintf("tensor: MatMulQuantInto shape mismatch dst %dx%d = %dx(%d words) · (%d words)x%d",
			dst.Rows, dst.Cols, qa.Rows, qa.kw, w.kw, w.Out))
	}
	if bias != nil && len(bias) != w.Out {
		panic(fmt.Sprintf("tensor: MatMulQuantInto bias len %d, want %d", len(bias), w.Out))
	}
	if clampWorkers(nthreads, qa.Rows) <= 1 {
		matMulQuantRange(dst, qa, w, bias, 0, qa.Rows)
		return
	}
	parallelRows(qa.Rows, clampWorkers(nthreads, qa.Rows), func(lo, hi int) {
		matMulQuantRange(dst, qa, w, bias, lo, hi)
	})
}

// matMulQuantRange computes rows [lo,hi) of the quantized product. The
// inner loop multiplies one packed activation word against the matching
// word of two weight columns, sums each pair of consecutive products
// before extracting the top lane (safe: pair sums < 2^16, see package
// comment), and blocks two output columns per pass so every activation
// word loaded from memory feeds eight multiply-accumulates. Full slice
// expressions pin the slice lengths so the compiler drops the inner-loop
// bounds checks.
//
// secemb:secret qa
func matMulQuantRange(dst *Matrix, qa *QuantActs, w *QuantMat, bias []float32, lo, hi int) {
	kw := w.kw
	n := w.Out
	k4 := int32(kw * laneK)
	// Per the package comment: dot = S − 64·Σa' − 32·Σw' + 2048·K.
	corrK := actOff * wOff * k4
	for i := lo; i < hi; i++ {
		aRow := qa.Packed[i*kw : (i+1)*kw : (i+1)*kw]
		corrA := wOff*qa.RowSum[i] - corrK
		rs := qa.RowScale[i]
		outRow := dst.Data[i*n : (i+1)*n : (i+1)*n]
		o := 0
		for ; o+4 <= n; o += 4 {
			w0 := w.Packed[o*kw : (o+1)*kw : (o+1)*kw]
			w1 := w.Packed[(o+1)*kw : (o+2)*kw : (o+2)*kw]
			w2 := w.Packed[(o+2)*kw : (o+3)*kw : (o+3)*kw]
			w3 := w.Packed[(o+3)*kw : (o+4)*kw : (o+4)*kw]
			w0 = w0[:len(aRow)]
			w1 = w1[:len(aRow)]
			w2 = w2[:len(aRow)]
			w3 = w3[:len(aRow)]
			var s0, s1, s2, s3 uint64
			k := 0
			for ; k+8 <= len(aRow); k += 8 {
				a0, a1, a2, a3 := aRow[k], aRow[k+1], aRow[k+2], aRow[k+3]
				a4, a5, a6, a7 := aRow[k+4], aRow[k+5], aRow[k+6], aRow[k+7]
				s0 += (a0*w0[k]+a1*w0[k+1])>>48 + (a2*w0[k+2]+a3*w0[k+3])>>48 +
					(a4*w0[k+4]+a5*w0[k+5])>>48 + (a6*w0[k+6]+a7*w0[k+7])>>48
				s1 += (a0*w1[k]+a1*w1[k+1])>>48 + (a2*w1[k+2]+a3*w1[k+3])>>48 +
					(a4*w1[k+4]+a5*w1[k+5])>>48 + (a6*w1[k+6]+a7*w1[k+7])>>48
				s2 += (a0*w2[k]+a1*w2[k+1])>>48 + (a2*w2[k+2]+a3*w2[k+3])>>48 +
					(a4*w2[k+4]+a5*w2[k+5])>>48 + (a6*w2[k+6]+a7*w2[k+7])>>48
				s3 += (a0*w3[k]+a1*w3[k+1])>>48 + (a2*w3[k+2]+a3*w3[k+3])>>48 +
					(a4*w3[k+4]+a5*w3[k+5])>>48 + (a6*w3[k+6]+a7*w3[k+7])>>48
			}
			for ; k+4 <= len(aRow); k += 4 {
				a0, a1, a2, a3 := aRow[k], aRow[k+1], aRow[k+2], aRow[k+3]
				s0 += (a0*w0[k]+a1*w0[k+1])>>48 + (a2*w0[k+2]+a3*w0[k+3])>>48
				s1 += (a0*w1[k]+a1*w1[k+1])>>48 + (a2*w1[k+2]+a3*w1[k+3])>>48
				s2 += (a0*w2[k]+a1*w2[k+1])>>48 + (a2*w2[k+2]+a3*w2[k+3])>>48
				s3 += (a0*w3[k]+a1*w3[k+1])>>48 + (a2*w3[k+2]+a3*w3[k+3])>>48
			}
			for ; k+2 <= len(aRow); k += 2 {
				a0, a1 := aRow[k], aRow[k+1]
				s0 += (a0*w0[k] + a1*w0[k+1]) >> 48
				s1 += (a0*w1[k] + a1*w1[k+1]) >> 48
				s2 += (a0*w2[k] + a1*w2[k+1]) >> 48
				s3 += (a0*w3[k] + a1*w3[k+1]) >> 48
			}
			for ; k < len(aRow); k++ {
				a0 := aRow[k]
				s0 += a0 * w0[k] >> 48
				s1 += a0 * w1[k] >> 48
				s2 += a0 * w2[k] >> 48
				s3 += a0 * w3[k] >> 48
			}
			q0 := int32(s0) - actOff*w.ColSum[o] - corrA
			q1 := int32(s1) - actOff*w.ColSum[o+1] - corrA
			q2 := int32(s2) - actOff*w.ColSum[o+2] - corrA
			q3 := int32(s3) - actOff*w.ColSum[o+3] - corrA
			outRow[o] = float32(q0) * rs * w.Scale[o]
			outRow[o+1] = float32(q1) * rs * w.Scale[o+1]
			outRow[o+2] = float32(q2) * rs * w.Scale[o+2]
			outRow[o+3] = float32(q3) * rs * w.Scale[o+3]
		}
		for ; o < n; o++ {
			w0 := w.Packed[o*kw : (o+1)*kw : (o+1)*kw]
			w0 = w0[:len(aRow)]
			var s0 uint64
			k := 0
			for ; k+2 <= len(aRow); k += 2 {
				s0 += (aRow[k]*w0[k] + aRow[k+1]*w0[k+1]) >> 48
			}
			for ; k < len(aRow); k++ {
				s0 += aRow[k] * w0[k] >> 48
			}
			q0 := int32(s0) - actOff*w.ColSum[o] - corrA
			outRow[o] = float32(q0) * rs * w.Scale[o]
		}
		if bias != nil {
			b := bias[:n]
			for o := range outRow {
				outRow[o] += b[o]
			}
		}
	}
}
