package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Oracles: naive triple-loop references for the transposed products
// (naiveMatMul lives in matmul_test.go).

func naiveMatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Rows; k++ {
				sum += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func naiveMatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// kernelShapes exercises the register-blocked kernels across the shapes
// that stress unrolling and work partitioning: 1×1, prime dimensions (no
// dimension divisible by the 4-wide block), k ≡ 1..3 (mod 4) remainders,
// and row counts below any plausible worker count.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 2, 3},
	{2, 3, 4},
	{3, 4, 5},
	{5, 7, 3},
	{13, 17, 11},
	{7, 5, 1},
	{1, 9, 8},
	{4, 4, 4},
	{31, 2, 63},
	{2, 64, 2},
	{64, 3, 64},
	{37, 41, 29},
}

func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range kernelShapes {
		for _, threads := range []int{1, 3, 0} {
			name := fmt.Sprintf("%dx%dx%d/t%d", s.m, s.k, s.n, threads)
			t.Run(name, func(t *testing.T) {
				a := NewUniform(s.m, s.k, 1, rng)
				b := NewUniform(s.k, s.n, 1, rng)
				if got, want := MatMul(a, b, threads), naiveMatMul(a, b); !AllClose(got, want, 1e-4) {
					t.Fatalf("MatMul diverges from naive by %g", MaxAbsDiff(got, want))
				}
				at := NewUniform(s.k, s.m, 1, rng) // aᵀ·b with shared inner dim k
				if got, want := MatMulTransA(at, b, threads), naiveMatMulTransA(at, b); !AllClose(got, want, 1e-4) {
					t.Fatalf("MatMulTransA diverges from naive by %g", MaxAbsDiff(got, want))
				}
				bt := NewUniform(s.n, s.k, 1, rng) // a·bᵀ with shared inner dim k
				if got, want := MatMulTransB(a, bt, threads), naiveMatMulTransB(a, bt); !AllClose(got, want, 1e-4) {
					t.Fatalf("MatMulTransB diverges from naive by %g", MaxAbsDiff(got, want))
				}
			})
		}
	}
}

func TestIntoVariantsOverwriteStaleContents(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewUniform(9, 13, 1, rng)
	b := NewUniform(13, 7, 1, rng)

	dst := New(9, 7)
	dst.Fill(99)
	MatMulInto(dst, a, b, 2)
	if !AllClose(dst, naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMulInto left stale contents")
	}

	dstA := New(13, 7)
	dstA.Fill(99)
	bb := NewUniform(9, 7, 1, rng)
	MatMulTransAInto(dstA, a, bb, 2)
	if !AllClose(dstA, naiveMatMulTransA(a, bb), 1e-4) {
		t.Fatal("MatMulTransAInto left stale contents")
	}

	dstB := New(9, 5)
	dstB.Fill(99)
	bt := NewUniform(5, 13, 1, rng)
	MatMulTransBInto(dstB, a, bt, 2)
	if !AllClose(dstB, naiveMatMulTransB(a, bt), 1e-4) {
		t.Fatal("MatMulTransBInto left stale contents")
	}
}

// TestPoolConcurrentMatMuls hammers the persistent worker pool from many
// goroutines at once (run under -race via `make race`): results must stay
// correct when chunks from independent multiplications interleave on the
// shared workers.
func TestPoolConcurrentMatMuls(t *testing.T) {
	prev := runtime.GOMAXPROCS(8) // force multi-worker dispatch even on 1-CPU hosts
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(13))
	a := NewUniform(64, 32, 1, rng)
	b := NewUniform(32, 48, 1, rng)
	want := naiveMatMul(a, b)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := MatMul(a, b, 4); !AllClose(got, want, 1e-4) {
					t.Error("concurrent MatMul produced a wrong result")
					return
				}
			}
		}()
	}
	wg.Wait()

	if dispatched, _, inflight := PoolStats(); dispatched == 0 {
		t.Error("pool never dispatched a chunk despite GOMAXPROCS > 1")
	} else if inflight != 0 {
		t.Errorf("pool reports %d inflight chunks after quiescence", inflight)
	}
}
