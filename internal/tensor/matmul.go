package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// blockSize is the row-tile used when splitting a multiplication across
// goroutines. Chosen so one tile of the output plus the streamed panel of B
// stays L2-resident on typical CPUs; exact value is not critical.
const blockSize = 64

// maxProcs caps worker counts. Overridable in tests.
var maxProcs = runtime.GOMAXPROCS(0)

// MatMul returns a·b using nthreads workers (nthreads <= 0 means all
// available CPUs). The kernel is the classic i-k-j loop order so the inner
// loop streams rows of b and the output — this keeps it vectorizable by the
// compiler and cache-friendly without explicit SIMD, preserving the
// compute-bound character the paper's DHE latency model relies on.
func MatMul(a, b *Matrix, nthreads int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, nthreads)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be
// a.Rows×b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix, nthreads int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	workers := clampWorkers(nthreads, a.Rows)
	if workers <= 1 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	step := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += step {
		hi := lo + step
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst = a·b.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for j := range outRow {
			outRow[j] = 0
		}
		aRow := a.Row(i)
		for k, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[k*n : (k+1)*n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ without materializing the transpose.
// Used by backprop (dX = dY·Wᵀ) and attention (Q·Kᵀ).
func MatMulTransB(a, b *Matrix, nthreads int) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	workers := clampWorkers(nthreads, a.Rows)
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			outRow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				bRow := b.Row(j)
				var sum float32
				for k, av := range aRow {
					sum += av * bRow[k]
				}
				outRow[j] = sum
			}
		}
	}
	parallelRows(a.Rows, workers, run)
	return out
}

// MatMulTransA returns aᵀ·b without materializing the transpose.
// Used by backprop for weight gradients (dW = Xᵀ·dY).
func MatMulTransA(a, b *Matrix, nthreads int) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	workers := clampWorkers(nthreads, a.Cols)
	// Partition over output rows (columns of a) so workers never share
	// output cells.
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ { // i indexes a column of a / row of out
			outRow := out.Row(i)
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*a.Cols+i]
				if av == 0 {
					continue
				}
				bRow := b.Row(k)
				for j, bv := range bRow {
					outRow[j] += av * bv
				}
			}
		}
	}
	parallelRows(a.Cols, workers, run)
	return out
}

// MatVec returns a·x for a vector x (len a.Cols), as a slice of len a.Rows.
func MatVec(a *Matrix, x []float32) []float32 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var sum float32
		for k, v := range row {
			sum += v * x[k]
		}
		out[i] = sum
	}
	return out
}

// clampWorkers bounds the worker count by CPUs and work items.
func clampWorkers(nthreads, items int) int {
	w := nthreads
	if w <= 0 {
		w = maxProcs
	}
	if w > maxProcs {
		w = maxProcs
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRows splits [0,rows) into contiguous chunks and runs fn on each
// concurrently with the requested number of workers.
func parallelRows(rows, workers int, fn func(lo, hi int)) {
	if workers <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	step := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += step {
		hi := lo + step
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the chunked row-parallel helper for other packages
// (e.g. batched embedding generation).
func ParallelRows(rows, workers int, fn func(lo, hi int)) {
	parallelRows(rows, clampWorkers(workers, rows), fn)
}
