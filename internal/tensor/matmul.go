package tensor

import (
	"fmt"
	"runtime"
)

// The row-tile used when splitting a multiplication across goroutines was
// a hand-picked constant (blockSize = 64); it is now TuneConfig.BlockRows,
// machine-measured by Autotune (see autotune.go) with 64 as the static
// default.

// MatMul returns a·b using nthreads workers (nthreads <= 0 means all
// available CPUs). The kernel keeps the classic i-k-j loop order so the
// inner loop streams rows of b and the output — cache-friendly and
// vectorizable without explicit SIMD, preserving the compute-bound
// character the paper's DHE latency model relies on — and register-blocks
// it four k-steps at a time (see matMulRange).
func MatMul(a, b *Matrix, nthreads int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, nthreads)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be
// a.Rows×b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix, nthreads int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// The single-worker fast path skips closure construction entirely —
	// passing the kernel through parallelRows heap-allocates the capture
	// even when it runs inline, which alone breaks the hot path's
	// zero-allocation guarantee on small machines.
	if clampWorkers(nthreads, a.Rows) <= 1 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, clampWorkers(nthreads, a.Rows), func(lo, hi int) {
		matMulRange(dst, a, b, lo, hi)
	})
}

// matMulRange computes rows [lo,hi) of dst = a·b.
//
// The i-k-j order is register-blocked over a four-row panel of b: each
// pass of the inner loop accumulates the contributions of four a-elements
// into the output row, so every out[j] load/store is amortized over four
// multiply-adds and the four b rows stream through cache together.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	kd := a.Cols
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for j := range outRow {
			outRow[j] = 0
		}
		aRow := a.Row(i)
		k := 0
		for ; k+4 <= kd; k += 4 {
			a0, a1, a2, a3 := aRow[k], aRow[k+1], aRow[k+2], aRow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				outRow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kd; k++ {
			av := aRow[k]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*n : k*n+n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ without materializing the transpose.
// Used by backprop (dX = dY·Wᵀ) and attention (Q·Kᵀ).
func MatMulTransB(a, b *Matrix, nthreads int) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b, nthreads)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ, reusing dst's storage. dst must be
// a.Rows×b.Rows and must not alias a or b.
func MatMulTransBInto(dst, a, b *Matrix, nthreads int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch dst %dx%d = %dx%d · (%dx%d)ᵀ",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if clampWorkers(nthreads, a.Rows) <= 1 {
		matMulTransBRange(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, clampWorkers(nthreads, a.Rows), func(lo, hi int) {
		matMulTransBRange(dst, a, b, lo, hi)
	})
}

// matMulTransBRange computes rows [lo,hi) of dst = a·bᵀ with four
// independent column accumulators: the dot products of one a row against a
// panel of four b rows proceed in lockstep, so the a row is loaded once
// per panel instead of once per output column.
func matMulTransBRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		aRow := a.Row(i)
		outRow := dst.Row(i)
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
			var s0, s1, s2, s3 float32
			for k, av := range aRow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			outRow[j], outRow[j+1], outRow[j+2], outRow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			bRow := b.Row(j)
			var sum float32
			for k, av := range aRow {
				sum += av * bRow[k]
			}
			outRow[j] = sum
		}
	}
}

// MatMulTransA returns aᵀ·b without materializing the transpose.
// Used by backprop for weight gradients (dW = Xᵀ·dY).
func MatMulTransA(a, b *Matrix, nthreads int) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b, nthreads)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b, reusing dst's storage. dst must be
// a.Cols×b.Cols and must not alias a or b.
func MatMulTransAInto(dst, a, b *Matrix, nthreads int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch dst %dx%d = (%dx%d)ᵀ · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// Partition over output rows (columns of a) so workers never share
	// output cells.
	if clampWorkers(nthreads, a.Cols) <= 1 {
		matMulTransARange(dst, a, b, 0, a.Cols)
		return
	}
	parallelRows(a.Cols, clampWorkers(nthreads, a.Cols), func(lo, hi int) {
		matMulTransARange(dst, a, b, lo, hi)
	})
}

// matMulTransARange computes rows [lo,hi) of dst = aᵀ·b, register-blocked
// four k-steps (rows of a and b) at a time like matMulRange.
func matMulTransARange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	ac := a.Cols
	for i := lo; i < hi; i++ { // i indexes a column of a / row of dst
		outRow := dst.Row(i)
		for j := range outRow {
			outRow[j] = 0
		}
		k := 0
		for ; k+4 <= a.Rows; k += 4 {
			a0 := a.Data[k*ac+i]
			a1 := a.Data[(k+1)*ac+i]
			a2 := a.Data[(k+2)*ac+i]
			a3 := a.Data[(k+3)*ac+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				outRow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < a.Rows; k++ {
			av := a.Data[k*ac+i]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*n : k*n+n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatVec returns a·x for a vector x (len a.Cols), as a slice of len a.Rows.
func MatVec(a *Matrix, x []float32) []float32 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var sum float32
		for k, v := range row {
			sum += v * x[k]
		}
		out[i] = sum
	}
	return out
}

// clampWorkers bounds the worker count by CPUs and work items. GOMAXPROCS
// is read at call time — not captured at package init — so runtime
// resizing (serving pools size themselves against it) is always honored.
// When the caller doesn't pin a thread count (nthreads <= 0) the installed
// TuneConfig decides: batches at or below InlineRows skip the pool, the
// worker cap applies, and chunks never shrink below BlockRows. An explicit
// nthreads is honored (clamped to CPUs/items only) so profiling sweeps
// and tests can still pin exact worker counts.
func clampWorkers(nthreads, items int) int {
	procs := runtime.GOMAXPROCS(0)
	w := nthreads
	if w <= 0 {
		tc := currentTune()
		if items <= tc.InlineRows {
			return 1
		}
		w = procs
		if tc.Workers > 0 && tc.Workers < w {
			w = tc.Workers
		}
		if blk := tc.BlockRows; blk > 0 {
			if mx := (items + blk - 1) / blk; w > mx {
				w = mx
			}
		}
	}
	if w > procs {
		w = procs
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}
