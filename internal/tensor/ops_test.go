package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPair(seed int64) (*Matrix, *Matrix, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	r, c := 1+rng.Intn(10), 1+rng.Intn(10)
	return NewUniform(r, c, 1, rng), NewUniform(r, c, 1, rng), rng
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a, b, _ := randPair(seed)
		return AllClose(Sub(Add(a, b), b), a, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		a, b, _ := randPair(seed)
		return AllClose(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulScaleConsistency(t *testing.T) {
	// a ⊙ (s·1) == s·a
	f := func(seed int64) bool {
		a, _, _ := randPair(seed)
		ones := New(a.Rows, a.Cols)
		ones.Fill(2.5)
		return AllClose(Mul(a, ones), Scale(a, 2.5), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAXPY(t *testing.T) {
	a, b, _ := randPair(9)
	want := Add(b, Scale(a, 0.5))
	AXPY(0.5, a, b)
	if !AllClose(b, want, 1e-6) {
		t.Fatal("AXPY mismatch")
	}
}

func TestAddInPlaceMatchesAdd(t *testing.T) {
	a, b, _ := randPair(13)
	want := Add(a, b)
	AddInPlace(a, b)
	if !AllClose(a, want, 0) {
		t.Fatal("AddInPlace mismatch")
	}
}

func TestScaleInPlace(t *testing.T) {
	a, _, _ := randPair(14)
	want := Scale(a, -3)
	ScaleInPlace(a, -3)
	if !AllClose(a, want, 0) {
		t.Fatal("ScaleInPlace mismatch")
	}
}

func TestAddRowVec(t *testing.T) {
	m := New(2, 3)
	AddRowVec(m, []float32{1, 2, 3})
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != float32(c+1) {
				t.Fatalf("at %d,%d got %v", r, c, m.At(r, c))
			}
		}
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float32{-1, 0, 2})
	got := Apply(m, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	want := FromSlice(1, 3, []float32{0, 0, 2})
	if !AllClose(got, want, 0) {
		t.Fatalf("Apply got %v", got)
	}
	if m.Data[0] != -1 {
		t.Fatal("Apply must not mutate input")
	}
	ApplyInPlace(m, func(v float32) float32 { return v * 2 })
	if m.Data[2] != 4 {
		t.Fatal("ApplyInPlace mismatch")
	}
}

func TestColSums(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	got := ColSums(m)
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("ColSums got %v", got)
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if math.Abs(Norm2(m)-5) > 1e-9 {
		t.Fatalf("Norm2=%v, want 5", Norm2(m))
	}
}

func TestConcatAndSliceCols(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 1, []float32{5, 6})
	cat := Concat(a, b)
	if cat.Rows != 2 || cat.Cols != 3 {
		t.Fatalf("Concat shape %dx%d", cat.Rows, cat.Cols)
	}
	if cat.At(0, 2) != 5 || cat.At(1, 2) != 6 {
		t.Fatalf("Concat contents: %v", cat)
	}
	back := SliceCols(cat, 0, 2)
	if !AllClose(back, a, 0) {
		t.Fatal("SliceCols did not recover original")
	}
}

func TestConcatEmpty(t *testing.T) {
	m := Concat()
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("Concat() = %dx%d", m.Rows, m.Cols)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	s := SliceRows(m, 1, 3)
	want := FromSlice(2, 2, []float32{3, 4, 5, 6})
	if !AllClose(s, want, 0) {
		t.Fatalf("SliceRows got %v", s)
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { Add(New(1, 2), New(2, 1)) },
		func() { AddRowVec(New(2, 3), []float32{1}) },
		func() { SliceCols(New(2, 2), 1, 3) },
		func() { SliceRows(New(2, 2), -1, 1) },
		func() { Concat(New(2, 2), New(3, 2)) },
		func() { MatVec(New(2, 2), []float32{1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMaxAbsDiffAndAllClose(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1, 2.5})
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("MaxAbsDiff=%v", d)
	}
	if AllClose(a, b, 0.4) {
		t.Fatal("AllClose should fail at tol 0.4")
	}
	if !AllClose(a, b, 0.6) {
		t.Fatal("AllClose should pass at tol 0.6")
	}
	if AllClose(a, New(2, 1), 10) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}
