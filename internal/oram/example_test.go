package oram_test

import (
	"fmt"

	"secemb/internal/oram"
)

// Example stores data in a Circuit ORAM and reads it back; the physical
// access pattern is independent of the requested ids.
func Example() {
	o := oram.NewCircuit(oram.Config{NumBlocks: 128, BlockWords: 2, Seed: 1})
	o.Write(5, []uint32{10, 20})
	o.Update(5, func(d []uint32) { d[0]++ })
	fmt.Println(o.Read(5), o.RecursionDepth())
	// Output: [11 20] 0
}

// ExampleFootprintBytes accounts a Table-VI-scale footprint without
// building the tree.
func ExampleFootprintBytes() {
	raw := int64(10_131_227) * 16 * 4 // Kaggle's largest table at dim 16
	orameBytes := oram.CircuitFootprintBytes(10_131_227, 16)
	fmt.Printf("%.1fx\n", float64(orameBytes)/float64(raw))
	// Output: 4.2x
}
