package oram

import (
	"fmt"

	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
)

// stash is the controller-private block buffer. Every operation scans the
// full capacity so the work done is independent of the occupancy or of
// which slot matches — the software analogue of ZeroTrace's cmov-hardened
// stash. Scans are counted in Stats (the enclave cost model charges them)
// and surfaced on the trace as a full sweep of the stash region.
type stash struct {
	cap   int
	words int

	ids    []uint64 // DummyID = free
	leaves []uint32
	data   []uint32 // cap × words

	tracer *memtrace.Tracer
	region string
	stats  *Stats
}

func newStash(capacity, words int, tracer *memtrace.Tracer, region string, stats *Stats) *stash {
	s := &stash{
		cap:    capacity,
		words:  words,
		ids:    make([]uint64, capacity),
		leaves: make([]uint32, capacity),
		data:   make([]uint32, capacity*words),
		tracer: tracer,
		region: region,
		stats:  stats,
	}
	for i := range s.ids {
		s.ids[i] = DummyID
	}
	return s
}

func (s *stash) slotData(i int) []uint32 { return s.data[i*s.words : (i+1)*s.words] }

// scanNote records one full oblivious sweep over the stash.
func (s *stash) scanNote() {
	s.stats.StashScans += int64(s.cap)
	s.stats.CmovOps += int64(s.cap)
	s.tracer.TouchRange(s.region+RegionSuffixStash, 0, int64(s.cap), memtrace.Read)
}

// occupancy counts resident real blocks (test/metric helper; not part of
// the oblivious access path).
func (s *stash) occupancy() int {
	n := 0
	for _, id := range s.ids {
		if id != DummyID {
			n++
		}
	}
	return n
}

// insert places a block into some free slot via a full scan. Exactly one
// free slot receives the block; a full stash is a (negligible-probability)
// overflow and panics, as in ZeroTrace.
//
// secemb:secret id leaf payload
func (s *stash) insert(id uint64, leaf uint32, payload []uint32) {
	s.insertCond(^uint64(0), id, leaf, payload)
	s.stats.observeStash(s.occupancy())
}

// insertCond is insert gated by a mask: when real is zero the scan still
// runs (same work, same trace) but nothing is stored. This lets the path
// read phase process dummy slots at identical cost to real ones.
//
// secemb:secret real id leaf payload
func (s *stash) insertCond(real uint64, id uint64, leaf uint32, payload []uint32) {
	s.scanNote()
	placed := uint64(0) // becomes all-ones once stored
	for i := 0; i < s.cap; i++ {
		free := oblivious.Eq(s.ids[i], DummyID)
		doStore := real & free &^ placed
		s.ids[i] = oblivious.Select64(doStore, id, s.ids[i])
		s.leaves[i] = uint32(oblivious.Select64(doStore, uint64(leaf), uint64(s.leaves[i])))
		oblivious.CondCopyWords(doStore, s.slotData(i), payload)
		placed |= doStore
	}
	//lint:allow obliviouslint/branch overflow abort: negligible-probability stash overflow kills the process rather than continuing insecurely (ZeroTrace does the same)
	if real != 0 && placed == 0 {
		panic(fmt.Sprintf("oram: stash overflow (capacity %d)", s.cap))
	}
}

// extractEligible removes (and returns through the out parameters) one
// stash block that may reside at `level` on the path to pathLeaf, scanning
// the full stash. Returns an all-ones mask when a block was extracted.
// Used by Path ORAM's greedy write-back.
func (s *stash) extractEligible(pathLeaf uint32, level, levels int, outID *uint64, outLeaf *uint32, out []uint32) uint64 {
	s.scanNote()
	shift := levels - level
	taken := uint64(0)
	for i := 0; i < s.cap; i++ {
		real := ^oblivious.Eq(s.ids[i], DummyID)
		eligible := real & oblivious.Eq(uint64(s.leaves[i]>>shift), uint64(pathLeaf>>shift))
		m := eligible &^ taken
		*outID = oblivious.Select64(m, s.ids[i], *outID)
		*outLeaf = uint32(oblivious.Select64(m, uint64(s.leaves[i]), uint64(*outLeaf)))
		oblivious.CondCopyWords(m, out, s.slotData(i))
		s.ids[i] = oblivious.Select64(m, DummyID, s.ids[i])
		taken |= m
	}
	return taken
}

// findAndRemove scans for block id; if found, copies its payload into out,
// marks the slot free, and returns an all-ones mask. The scan always
// touches every slot.
//
// secemb:secret id return
func (s *stash) findAndRemove(id uint64, out []uint32) uint64 {
	s.scanNote()
	found := uint64(0)
	for i := 0; i < s.cap; i++ {
		m := oblivious.Eq(s.ids[i], id)
		oblivious.CondCopyWords(m, out, s.slotData(i))
		s.ids[i] = oblivious.Select64(m, DummyID, s.ids[i])
		found |= m
	}
	return found
}

// readBlock copies block id's payload into out (without removing) and
// returns the found mask.
//
// secemb:secret id return
func (s *stash) readBlock(id uint64, out []uint32) uint64 {
	s.scanNote()
	found := uint64(0)
	for i := 0; i < s.cap; i++ {
		m := oblivious.Eq(s.ids[i], id)
		oblivious.CondCopyWords(m, out, s.slotData(i))
		found |= m
	}
	return found
}

// updateBlock overwrites block id's payload and (optionally) its leaf via
// a full scan; returns the found mask.
//
// secemb:secret id leaf payload return
func (s *stash) updateBlock(id uint64, leaf uint32, payload []uint32) uint64 {
	s.scanNote()
	found := uint64(0)
	for i := 0; i < s.cap; i++ {
		m := oblivious.Eq(s.ids[i], id)
		s.leaves[i] = uint32(oblivious.Select64(m, uint64(leaf), uint64(s.leaves[i])))
		oblivious.CondCopyWords(m, s.slotData(i), payload)
		found |= m
	}
	return found
}
