package oram

import (
	"math/rand"
	"testing"

	"secemb/internal/memtrace"
)

// leafVisits extracts, per access, how often each leaf bucket was read on
// the fetch path.
func leafVisits(tr memtrace.Trace, region string, leaves int) []int {
	counts := make([]int, leaves)
	firstLeafBucket := int64(leaves - 1)
	for _, a := range tr {
		if a.Region == region && a.Op == memtrace.Read && a.Block >= firstLeafBucket {
			counts[a.Block-firstLeafBucket]++
		}
	}
	return counts
}

// TestLeafDistributionUniform is DESIGN.md §4 property 2: whatever the
// logical access sequence — hammering one id or sweeping all of them — the
// distribution of fetched tree paths must be indistinguishable from
// uniform.
func TestLeafDistributionUniform(t *testing.T) {
	const n = 1024
	const accesses = 4096
	patterns := map[string]func(i int) uint64{
		"hammer":     func(i int) uint64 { return 7 },
		"sequential": func(i int) uint64 { return uint64(i % n) },
	}
	for _, m := range makers {
		for pname, pat := range patterns {
			t.Run(m.name+"/"+pname, func(t *testing.T) {
				tracer := memtrace.NewEnabled()
				o := m.mk(Config{NumBlocks: n, BlockWords: 1, Seed: 77, Tracer: tracer, Region: "o"})
				leaves := 1 << uint(treeLevelsOf(o))
				counts := make([]int, leaves)
				for i := 0; i < accesses; i++ {
					tracer.Reset() // keep the trace per-access sized
					o.Read(pat(i))
					for l, c := range leafVisits(tracer.Snapshot(), "o.tree", leaves) {
						counts[l] += c
					}
				}
				chi := memtrace.ChiSquareUniform(counts)
				crit := memtrace.ChiSquareCritical999(leaves - 1)
				if chi > crit {
					t.Fatalf("leaf histogram rejects uniformity: chi²=%.1f > crit=%.1f", chi, crit)
				}
			})
		}
	}
}

func treeLevelsOf(o ORAM) int {
	switch v := o.(type) {
	case *PathORAM:
		return v.TreeLevels()
	case *CircuitORAM:
		return v.TreeLevels()
	}
	panic("unknown ORAM type")
}

// TestAccessShapeConstant verifies each access touches the same number of
// tree buckets and stash/posmap slots regardless of which block is
// requested — the per-access observable "shape" carries no information.
func TestAccessShapeConstant(t *testing.T) {
	const n = 512
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			tracer := memtrace.NewEnabled()
			o := m.mk(Config{NumBlocks: n, BlockWords: 2, Seed: 5, Tracer: tracer, Region: "o"})
			shape := func(id uint64) (tree, stash, posmap int) {
				tracer.Reset()
				o.Read(id)
				for _, a := range tracer.Snapshot() {
					switch a.Region {
					case "o.tree":
						tree++
					case "o.stash":
						stash++
					case "o.posmap":
						posmap++
					}
				}
				return
			}
			t0, s0, p0 := shape(0)
			rng := rand.New(rand.NewSource(3))
			for trial := 0; trial < 50; trial++ {
				id := uint64(rng.Intn(n))
				tr, st, pm := shape(id)
				if tr != t0 || st != s0 || pm != p0 {
					t.Fatalf("access shape for id %d = (%d,%d,%d), differs from (%d,%d,%d)",
						id, tr, st, pm, t0, s0, p0)
				}
			}
		})
	}
}

// TestPosmapScanCoversWholeMap: the flat position map must touch every
// packed block on every access (no early exit at the match).
func TestPosmapScanCoversWholeMap(t *testing.T) {
	const n = 512
	tracer := memtrace.NewEnabled()
	o := NewCircuit(Config{NumBlocks: n, BlockWords: 1, Seed: 6, Tracer: tracer, Region: "o"})
	tracer.Reset()
	o.Read(3)
	blocks := tracer.Snapshot().Blocks("o.posmap")
	wantBlocks := (n + chi - 1) / chi
	if len(blocks) != wantBlocks {
		t.Fatalf("posmap scan touched %d blocks, want %d", len(blocks), wantBlocks)
	}
}

// TestSameIdFreshPaths: repeated access to one id must fetch fresh random
// paths (leaf re-randomization), never the same leaf sequence as a
// deterministic replay.
func TestSameIdFreshPaths(t *testing.T) {
	const n = 4096
	tracer := memtrace.NewEnabled()
	o := NewPath(Config{NumBlocks: n, BlockWords: 1, Seed: 9, Tracer: tracer, Region: "o"})
	leaves := 1 << uint(o.TreeLevels())
	firstLeafBucket := int64(leaves - 1)
	var seq []int64
	for i := 0; i < 64; i++ {
		tracer.Reset()
		o.Read(42)
		for _, a := range tracer.Snapshot() {
			if a.Region == "o.tree" && a.Op == memtrace.Read && a.Block >= firstLeafBucket {
				seq = append(seq, a.Block-firstLeafBucket)
			}
		}
	}
	if len(seq) != 64 {
		t.Fatalf("expected one fetch path per access, got %d", len(seq))
	}
	distinct := map[int64]bool{}
	for _, l := range seq {
		distinct[l] = true
	}
	// With 1024 leaves and 64 draws, ~62 distinct values are expected;
	// fewer than 32 would indicate the path is not re-randomized.
	if len(distinct) < 32 {
		t.Fatalf("only %d distinct leaves over 64 repeated accesses", len(distinct))
	}
}

// TestMutualInformationNearZero ties it together with the leakage metric:
// the first fetched tree path across many accesses must carry (near) zero
// information about which block was requested.
func TestMutualInformationNearZero(t *testing.T) {
	const n = 256
	const secrets = 8
	const trials = 256
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			tracer := memtrace.NewEnabled()
			o := m.mk(Config{NumBlocks: n, BlockWords: 1, Seed: 21, Tracer: tracer, Region: "o"})
			leaves := 1 << uint(treeLevelsOf(o))
			firstLeafBucket := int64(leaves - 1)
			leak := make([]map[int64]int, secrets)
			for s := 0; s < secrets; s++ {
				leak[s] = map[int64]int{}
				for trial := 0; trial < trials; trial++ {
					tracer.Reset()
					o.Read(uint64(s))
					for _, a := range tracer.Snapshot() {
						if a.Region == "o.tree" && a.Op == memtrace.Read && a.Block >= firstLeafBucket {
							leak[s][a.Block-firstLeafBucket]++
							break
						}
					}
				}
			}
			mi := memtrace.MutualInformationBits(leak)
			// A leaky direct lookup would measure log2(8)=3 bits; sampling
			// noise on uniform paths stays well under half a bit.
			if mi > 0.5 {
				t.Fatalf("mutual information %.3f bits — access pattern leaks the id", mi)
			}
			t.Logf("%s: MI ≈ %.4f bits over %d secrets", m.name, mi, secrets)
		})
	}
}
