package oram

import (
	"fmt"
	"math/bits"
	"math/rand"

	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
)

// CircuitORAM implements Circuit ORAM (§IV-A2): the read phase pulls only
// the requested block off the fetched path (not the whole path, unlike
// Path ORAM), and eviction runs as a single root→leaf pass guided by
// metadata prepared in two cheap scans (prepare-deepest / prepare-target),
// over two deterministically-chosen paths per access (reverse-
// lexicographic order). The stash stays an order of magnitude smaller than
// Path ORAM's (10 vs 150 in the paper's setup), which is why the paper
// finds Circuit ORAM the fastest traditional oblivious baseline.
type CircuitORAM struct {
	cfg    Config
	tree   *tree
	stash  *stash
	posmap PositionMap
	rng    *rand.Rand
	stats  *Stats
	buf    []uint32
	evictG uint32 // reverse-lexicographic eviction counter
}

// NewCircuit builds a Circuit ORAM over cfg.NumBlocks zero-initialized
// blocks.
func NewCircuit(cfg Config) *CircuitORAM {
	cfg.fill(DefaultCircuitStash, DefaultCircRecursionCutoff)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return newCircuit(cfg, nil, rng, &Stats{}, 0)
}

// NewCircuitInit builds a Circuit ORAM with initial block payloads.
func NewCircuitInit(cfg Config, init [][]uint32) *CircuitORAM {
	cfg.fill(DefaultCircuitStash, DefaultCircRecursionCutoff)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return newCircuit(cfg, init, rng, &Stats{}, 0)
}

func newCircuit(cfg Config, init [][]uint32, rng *rand.Rand, stats *Stats, level int) *CircuitORAM {
	region := cfg.Region
	if level > 0 {
		region = fmt.Sprintf("%s.pm%d", cfg.Region, level)
	}
	t := newTree(cfg.NumBlocks, cfg.Z, cfg.BlockWords, cfg.Tracer, region, stats)
	leafAssign := randLeaves(cfg.NumBlocks, t.leaves, rng)
	payload := func(i int) []uint32 {
		if init == nil {
			return nil
		}
		return init[i]
	}
	leftover := t.bulkLoad(cfg.NumBlocks, leafAssign, payload)
	st := newStash(cfg.StashSize, cfg.BlockWords, cfg.Tracer, region, stats)
	zero := make([]uint32, cfg.BlockWords)
	for _, blk := range leftover {
		p := payload(blk)
		if p == nil {
			p = zero
		}
		st.insert(uint64(blk), leafAssign[blk], p)
	}
	o := &CircuitORAM{
		cfg:   cfg,
		tree:  t,
		stash: st,
		rng:   rng,
		stats: stats,
		buf:   make([]uint32, cfg.BlockWords),
	}
	o.posmap = newPosMap(leafAssign, cfg.RecursionCutoff, rng, cfg.Tracer, region, stats, level,
		func(c Config, pinit [][]uint32, r *rand.Rand, lvl int) ORAM {
			c.Z = cfg.Z
			c.StashSize = cfg.StashSize
			return newCircuit(c, pinit, r, stats, lvl+1)
		})
	return o
}

// Read returns a copy of block id.
//
// secemb:secret id
func (o *CircuitORAM) Read(id uint64) []uint32 {
	out := make([]uint32, o.cfg.BlockWords)
	o.access(id, func(data []uint32) { copy(out, data) })
	return out
}

// Write replaces block id.
//
// secemb:secret id data
func (o *CircuitORAM) Write(id uint64, data []uint32) {
	if len(data) != o.cfg.BlockWords {
		panic(fmt.Sprintf("oram: write of %d words into %d-word blocks", len(data), o.cfg.BlockWords))
	}
	o.access(id, func(dst []uint32) { copy(dst, data) })
}

// Update applies fn to block id within one access.
//
// secemb:secret id
func (o *CircuitORAM) Update(id uint64, fn func(data []uint32)) { o.access(id, fn) }

// access is the Circuit ORAM protocol core.
//
// secemb:secret id
func (o *CircuitORAM) access(id uint64, fn func(data []uint32)) {
	checkID(id, o.cfg.NumBlocks)
	o.stats.Accesses++
	t := o.tree

	newLeaf := uniformLeaf(o.rng, t.leaves)
	oldLeaf := o.posmap.Swap(id, newLeaf)

	// Read phase: scan the path, obliviously lifting only the requested
	// block into the register buffer; every slot is read and re-written
	// so the trace is slot-position independent.
	for i := range o.buf {
		o.buf[i] = 0
	}
	found := uint64(0)
	for level := 0; level <= t.levels; level++ {
		bucket := t.nodeIndex(oldLeaf, level)
		t.touchBucket(bucket, memtrace.Read)
		base := t.slotBase(bucket)
		for s := base; s < base+t.z; s++ {
			m := oblivious.Eq(t.ids[s], id)
			oblivious.CondCopyWords(m, o.buf, t.slotData(s))
			t.ids[s] = oblivious.Select64(m, DummyID, t.ids[s])
			found |= m
			o.stats.CmovOps++
		}
		t.touchBucket(bucket, memtrace.Write)
	}
	// The block may instead be resident in the stash.
	stashHit := o.stash.findAndRemove(id, o.buf)
	//lint:allow obliviouslint/branch invariant abort: a missing block means a broken controller; the process dies rather than serving garbage
	if found == 0 && stashHit == 0 {
		// Deliberately no id in the message: a valid secret must not
		// surface even on an abort path.
		panic("oram: block missing (invariant violation)")
	}

	if fn != nil {
		fn(o.buf)
	}
	o.stash.insert(id, newLeaf, o.buf)

	// Evictions along reverse-lexicographic paths (standard rate: 2).
	evictions := o.cfg.EvictionsPerAccess
	if evictions <= 0 {
		evictions = 2
	}
	for e := 0; e < evictions; e++ {
		o.evictOnce(bitReverse(o.evictG%uint32(t.leaves), t.levels))
		o.evictG++
	}
	o.stats.observeStash(o.stash.occupancy())
}

// deepestLevel returns the deepest tree level at which a block assigned to
// blockLeaf may reside on the path to pathLeaf.
func (t *tree) deepestLevel(blockLeaf, pathLeaf uint32) int {
	return t.levels - bits.Len32(blockLeaf^pathLeaf)
}

// evictOnce performs one Circuit ORAM eviction along the path to leaf p:
// two metadata scans (prepare-deepest, prepare-target) followed by a
// single root→leaf pass that moves at most one block per level. Indices in
// the metadata arrays: 0 = stash, i = tree level i-1.
func (o *CircuitORAM) evictOnce(p uint32) {
	t := o.tree
	o.stats.Evictions++
	nLev := t.levels + 2
	const none = -1

	deepest := make([]int, nLev)     // source index whose block should sink to ≥ this level
	deepestSlot := make([]int, nLev) // slot (stash index or tree slot) of that level's deepest block
	target := make([]int, nLev)
	for i := range deepest {
		deepest[i], target[i], deepestSlot[i] = none, none, none
	}

	// --- prepare_deepest: forward scan root-ward → leaf-ward.
	// Stash is pseudo-level 0.
	src, goal := none, none
	{
		best, bestSlot := none, none
		o.stash.scanNote()
		for i := 0; i < o.stash.cap; i++ {
			if o.stash.ids[i] == DummyID {
				continue
			}
			if d := t.deepestLevel(o.stash.leaves[i], p); d > best {
				best, bestSlot = d, i
			}
		}
		if best >= 0 {
			src, goal = 0, best+1 // block can occupy metadata indices ≤ best+1
			deepestSlot[0] = bestSlot
		}
	}
	for i := 1; i < nLev; i++ {
		if goal >= i {
			deepest[i] = src
		}
		level := i - 1
		bucket := t.nodeIndex(p, level)
		t.touchBucket(bucket, memtrace.Read)
		base := t.slotBase(bucket)
		best, bestSlot := none, none
		for s := base; s < base+t.z; s++ {
			o.stats.CmovOps++
			if t.ids[s] == DummyID {
				continue
			}
			if d := t.deepestLevel(t.leafOf[s], p); d > best {
				best, bestSlot = d, s
			}
		}
		deepestSlot[i] = bestSlot
		if best+1 > goal && best >= 0 {
			goal = best + 1
			src = i
		}
	}

	// --- prepare_target: backward scan leaf-ward → stash.
	dest, srcT := none, none
	for i := nLev - 1; i >= 0; i-- {
		if i == srcT {
			target[i] = dest
			dest, srcT = none, none
		}
		hasSpace := false
		if i > 0 {
			bucket := t.nodeIndex(p, i-1)
			base := t.slotBase(bucket)
			for s := base; s < base+t.z; s++ {
				if t.ids[s] == DummyID {
					hasSpace = true
					break
				}
			}
		}
		if ((dest == none && hasSpace) || target[i] != none) && deepest[i] != none {
			srcT = deepest[i]
			dest = i
		}
	}

	// --- evict_once: single root→leaf pass holding at most one block.
	holdID := DummyID
	var holdLeaf uint32
	holdData := make([]uint32, t.words)
	holdDest := none
	for i := 0; i < nLev; i++ {
		writeID := DummyID
		var writeLeaf uint32
		if holdID != DummyID && i == holdDest {
			writeID, writeLeaf = holdID, holdLeaf
			copy(o.buf, holdData)
			holdID, holdDest = DummyID, none
		}
		if target[i] != none {
			// Pick up this level's deepest block.
			slot := deepestSlot[i]
			if slot == none {
				panic("oram: circuit eviction metadata inconsistent")
			}
			if i == 0 {
				holdID = o.stash.ids[slot]
				holdLeaf = o.stash.leaves[slot]
				copy(holdData, o.stash.slotData(slot))
				o.stash.ids[slot] = DummyID
			} else {
				holdID = t.ids[slot]
				holdLeaf = t.leafOf[slot]
				copy(holdData, t.slotData(slot))
				t.ids[slot] = DummyID
			}
			holdDest = target[i]
		}
		if i > 0 {
			bucket := t.nodeIndex(p, i-1)
			if writeID != DummyID {
				base := t.slotBase(bucket)
				stored := false
				for s := base; s < base+t.z; s++ {
					if t.ids[s] == DummyID && !stored {
						t.ids[s] = writeID
						t.leafOf[s] = writeLeaf
						copy(t.slotData(s), o.buf)
						stored = true
					}
				}
				if !stored {
					panic("oram: circuit eviction wrote into full bucket")
				}
				o.stats.WordsMoved += int64(t.words)
			}
			t.touchBucket(bucket, memtrace.Write)
		}
	}
	if holdID != DummyID {
		panic("oram: circuit eviction finished still holding a block")
	}
}

// Stats returns the shared work counters (including recursion levels).
func (o *CircuitORAM) Stats() *Stats { return o.stats }

// NumBytes returns tree + stash + posmap footprint across all levels.
func (o *CircuitORAM) NumBytes() int64 {
	n := o.tree.NumBytes()
	n += int64(o.stash.cap) * int64(12+4*o.cfg.BlockWords)
	n += o.posmap.NumBytes()
	return n
}

// RecursionDepth reports the number of recursive posmap levels.
func (o *CircuitORAM) RecursionDepth() int { return o.posmap.Depth() }

// TreeLevels exposes the tree height L; used by the enclave cost model.
func (o *CircuitORAM) TreeLevels() int { return o.tree.levels }
