package oram

// FootprintBytes computes, without building anything, the memory footprint
// a tree ORAM of n blocks × words payload words would occupy: bucket tree
// (payload + 12-byte slot metadata), stash, and the recursive position-map
// hierarchy. It matches ORAM.NumBytes() exactly (asserted in tests), and
// exists so Table VI/VIII-scale footprints (tens of GB) can be accounted
// without allocating them.
func FootprintBytes(n, words, z, stashSize, recursionCutoff int) int64 {
	if z == 0 {
		z = DefaultZ
	}
	leaves := nextPow2((n + z - 1) / z)
	slots := int64(2*leaves-1) * int64(z)
	total := slots * int64(12+4*words)               // tree
	total += int64(stashSize) * int64(12+4*words)    // stash
	if recursionCutoff < 0 || n <= recursionCutoff { // flat posmap
		return total + int64(n)*4
	}
	blocks := (n + chi - 1) / chi
	return total + FootprintBytes(blocks, chi, z, stashSize, recursionCutoff)
}

// PathFootprintBytes is FootprintBytes with Path ORAM defaults.
func PathFootprintBytes(n, words int) int64 {
	return FootprintBytes(n, words, DefaultZ, DefaultPathStash, DefaultPathRecursionCutoff)
}

// CircuitFootprintBytes is FootprintBytes with Circuit ORAM defaults.
func CircuitFootprintBytes(n, words int) int64 {
	return FootprintBytes(n, words, DefaultZ, DefaultCircuitStash, DefaultCircRecursionCutoff)
}
