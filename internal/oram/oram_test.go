package oram

import (
	"fmt"
	"math/rand"
	"testing"
)

// makers lets every test run against both schemes.
var makers = []struct {
	name string
	mk   func(cfg Config) ORAM
}{
	{"Path", func(cfg Config) ORAM { return NewPath(cfg) }},
	{"Circuit", func(cfg Config) ORAM { return NewCircuit(cfg) }},
}

func word(v int) []uint32 { return []uint32{uint32(v)} }

func TestBitReverse(t *testing.T) {
	if bitReverse(0b001, 3) != 0b100 {
		t.Fatal("bitReverse(001,3)")
	}
	if bitReverse(0b110, 3) != 0b011 {
		t.Fatal("bitReverse(110,3)")
	}
	if bitReverse(0, 0) != 0 {
		t.Fatal("bitReverse(0,0)")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d)=%d, want %d", in, got, want)
		}
	}
}

func TestTreeGeometry(t *testing.T) {
	st := &Stats{}
	tr := newTree(1024, 4, 8, nil, "t", st)
	// 1024 blocks / Z=4 → 256 leaves → levels=8, buckets=511.
	if tr.leaves != 256 || tr.levels != 8 || len(tr.ids) != 511*4 {
		t.Fatalf("geometry leaves=%d levels=%d slots=%d", tr.leaves, tr.levels, len(tr.ids))
	}
	// Path indexing: root is bucket 0; leaf L of path to leaf 5 is
	// (2^8-1)+5.
	if tr.nodeIndex(5, 0) != 0 || tr.nodeIndex(5, 8) != 255+5 {
		t.Fatal("nodeIndex wrong")
	}
	// canReside: equal prefixes.
	if !tr.canReside(5, 5, 8) || !tr.canReside(4, 5, 7) || tr.canReside(4, 5, 8) {
		t.Fatal("canReside wrong")
	}
}

func TestReadAfterInit(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			init := make([][]uint32, 100)
			for i := range init {
				init[i] = word(i * 7)
			}
			var o ORAM
			cfg := Config{NumBlocks: 100, BlockWords: 1, Seed: 1}
			if m.name == "Path" {
				o = NewPathInit(cfg, init)
			} else {
				o = NewCircuitInit(cfg, init)
			}
			for i := 0; i < 100; i++ {
				got := o.Read(uint64(i))
				if got[0] != uint32(i*7) {
					t.Fatalf("block %d = %d, want %d", i, got[0], i*7)
				}
			}
		})
	}
}

func TestReadWriteRandomAgainstReference(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			const n = 256
			o := m.mk(Config{NumBlocks: n, BlockWords: 4, Seed: 2})
			ref := make(map[uint64][]uint32)
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 3000; step++ {
				id := uint64(rng.Intn(n))
				if rng.Intn(2) == 0 {
					v := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
					o.Write(id, v)
					ref[id] = v
				} else {
					got := o.Read(id)
					want, ok := ref[id]
					if !ok {
						want = []uint32{0, 0, 0, 0}
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d id %d word %d: got %d want %d", step, id, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

func TestUpdateReadModifyWrite(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			o := m.mk(Config{NumBlocks: 32, BlockWords: 2, Seed: 3})
			o.Write(5, []uint32{10, 20})
			o.Update(5, func(d []uint32) { d[0]++; d[1] *= 2 })
			got := o.Read(5)
			if got[0] != 11 || got[1] != 40 {
				t.Fatalf("Update result %v", got)
			}
		})
	}
}

func TestSmallSizes(t *testing.T) {
	for _, m := range makers {
		for _, n := range []int{1, 2, 3, 5, 7, 16} {
			t.Run(fmt.Sprintf("%s/n=%d", m.name, n), func(t *testing.T) {
				o := m.mk(Config{NumBlocks: n, BlockWords: 1, Seed: 4})
				for i := 0; i < n; i++ {
					o.Write(uint64(i), word(i+100))
				}
				for rep := 0; rep < 3; rep++ {
					for i := 0; i < n; i++ {
						if got := o.Read(uint64(i)); got[0] != uint32(i+100) {
							t.Fatalf("n=%d block %d got %d", n, i, got[0])
						}
					}
				}
			})
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			o := m.mk(Config{NumBlocks: 8, BlockWords: 1, Seed: 5})
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			o.Read(8)
		})
	}
}

func TestWrongWriteSizePanics(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			o := m.mk(Config{NumBlocks: 8, BlockWords: 2, Seed: 5})
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			o.Write(0, []uint32{1})
		})
	}
}

func TestRecursionEngagesAndWorks(t *testing.T) {
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			// Cutoff 64 forces recursion: 2048 → 128 → 8(flat).
			o := m.mk(Config{NumBlocks: 2048, BlockWords: 1, Seed: 6, RecursionCutoff: 64})
			if o.RecursionDepth() != 2 {
				t.Fatalf("recursion depth %d, want 2", o.RecursionDepth())
			}
			rng := rand.New(rand.NewSource(8))
			ref := map[uint64]uint32{}
			for step := 0; step < 1500; step++ {
				id := uint64(rng.Intn(2048))
				if rng.Intn(2) == 0 {
					v := rng.Uint32()
					o.Write(id, word(int(v)))
					ref[id] = v
				} else if got := o.Read(id); got[0] != ref[id] {
					t.Fatalf("step %d id %d: got %d want %d", step, id, got[0], ref[id])
				}
			}
		})
	}
}

func TestNoRecursionBelowCutoff(t *testing.T) {
	o := NewCircuit(Config{NumBlocks: 1 << 10, BlockWords: 1, Seed: 7}) // default cutoff 2^12
	if o.RecursionDepth() != 0 {
		t.Fatalf("unexpected recursion depth %d", o.RecursionDepth())
	}
	o2 := NewCircuit(Config{NumBlocks: 1 << 13, BlockWords: 1, Seed: 7})
	if o2.RecursionDepth() == 0 {
		t.Fatal("recursion should engage above 2^12 blocks")
	}
}

func TestStashBoundsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long stash soak")
	}
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			const n = 4096
			o := m.mk(Config{NumBlocks: n, BlockWords: 1, Seed: 9})
			rng := rand.New(rand.NewSource(10))
			for step := 0; step < 20000; step++ {
				o.Read(uint64(rng.Intn(n)))
			}
			max := o.Stats().MaxStash
			t.Logf("%s max stash occupancy over 20k accesses: %d", m.name, max)
			limit := DefaultPathStash
			if m.name == "Circuit" {
				limit = DefaultCircuitStash
			}
			if max > limit {
				t.Fatalf("stash high-water %d exceeds capacity %d", max, limit)
			}
		})
	}
}

func TestStatsAccumulate(t *testing.T) {
	o := NewPath(Config{NumBlocks: 64, BlockWords: 1, Seed: 11})
	before := *o.Stats()
	o.Read(0)
	s := o.Stats()
	if s.Accesses != before.Accesses+1 || s.BucketsRead <= before.BucketsRead ||
		s.BucketsWritten <= before.BucketsWritten || s.StashScans <= before.StashScans {
		t.Fatalf("stats did not advance: %+v", s)
	}
}

func TestNumBytesExceedsRawTable(t *testing.T) {
	// Table VI: the ORAM representation is >3× the raw table once the
	// tree's dummy slots, metadata and recursive posmaps are counted.
	const n, dim = 1 << 14, 64
	raw := int64(n * dim * 4)
	for _, m := range makers {
		o := m.mk(Config{NumBlocks: n, BlockWords: dim, Seed: 12, RecursionCutoff: 1 << 10})
		ratio := float64(o.NumBytes()) / float64(raw)
		if ratio < 1.5 {
			t.Fatalf("%s: ORAM/table ratio %.2f implausibly low", m.name, ratio)
		}
		t.Logf("%s footprint ratio %.2f×", m.name, ratio)
	}
}

func TestPathTreeLevels(t *testing.T) {
	o := NewPath(Config{NumBlocks: 1024, BlockWords: 1, Seed: 13})
	if o.TreeLevels() != 8 { // 1024/4=256 leaves
		t.Fatalf("TreeLevels=%d, want 8", o.TreeLevels())
	}
	c := NewCircuit(Config{NumBlocks: 1024, BlockWords: 1, Seed: 13})
	if c.TreeLevels() != 8 {
		t.Fatalf("Circuit TreeLevels=%d, want 8", c.TreeLevels())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Same seed + same sequence → same stats (reproducible experiments).
	run := func() Stats {
		o := NewCircuit(Config{NumBlocks: 128, BlockWords: 2, Seed: 42})
		for i := 0; i < 200; i++ {
			o.Read(uint64(i % 128))
		}
		return *o.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic stats:\n%+v\n%+v", a, b)
	}
}

func TestFootprintBytesMatchesBuiltInstances(t *testing.T) {
	cases := []struct {
		n, words, cutoff int
	}{
		{100, 4, -1},
		{1 << 12, 16, 1 << 10}, // recursion engaged
		{5000, 64, 0},
	}
	for _, c := range cases {
		pc, cc := c.cutoff, c.cutoff
		if c.cutoff == 0 {
			pc, cc = DefaultPathRecursionCutoff, DefaultCircRecursionCutoff
		}
		p := NewPath(Config{NumBlocks: c.n, BlockWords: c.words, Seed: 1, RecursionCutoff: c.cutoff})
		if got, want := p.NumBytes(), FootprintBytes(c.n, c.words, DefaultZ, DefaultPathStash, pc); got != want {
			t.Fatalf("Path n=%d: built %d vs analytic %d", c.n, got, want)
		}
		cir := NewCircuit(Config{NumBlocks: c.n, BlockWords: c.words, Seed: 1, RecursionCutoff: c.cutoff})
		if got, want := cir.NumBytes(), FootprintBytes(c.n, c.words, DefaultZ, DefaultCircuitStash, cc); got != want {
			t.Fatalf("Circuit n=%d: built %d vs analytic %d", c.n, got, want)
		}
	}
}

func TestCriteoFootprintRatioMatchesTableVI(t *testing.T) {
	// Table VI: Tree-ORAM ≈ 327% (Kaggle, dim 16) and ≈337% (Terabyte,
	// dim 64) of the raw table. With real Criteo cardinalities the
	// next-power-of-two leaf rounding lands in that band.
	kaggle := []int{1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145,
		5683, 8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
		7046547, 18, 15, 286181, 105, 142572}
	var oramB, rawB int64
	for _, n := range kaggle {
		oramB += CircuitFootprintBytes(n, 16)
		rawB += int64(n) * 16 * 4
	}
	ratio := float64(oramB) / float64(rawB)
	t.Logf("Kaggle dim16 ORAM/table ratio: %.2f× (paper: 3.27×)", ratio)
	if ratio < 2.0 || ratio > 5.0 {
		t.Fatalf("ratio %.2f far from the paper's ≈3.3×", ratio)
	}
}

func TestEvictionRateStashPressure(t *testing.T) {
	// The eviction-rate ablation: fewer evictions per access raise stash
	// occupancy; the standard rate of 2 keeps it tiny.
	pressure := func(rate int) int {
		o := NewCircuit(Config{NumBlocks: 1024, BlockWords: 1, Seed: 41,
			EvictionsPerAccess: rate, StashSize: 200})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 4000; i++ {
			o.Read(uint64(rng.Intn(1024)))
		}
		return o.Stats().MaxStash
	}
	std := pressure(2)
	slow := pressure(1)
	t.Logf("max stash: 2 evictions → %d, 1 eviction → %d", std, slow)
	if std > 10 {
		t.Fatalf("standard rate stash %d exceeds the paper's capacity 10", std)
	}
	if slow < std {
		t.Fatalf("halving the eviction rate should not shrink the stash (%d vs %d)", slow, std)
	}
	// Higher rate must also stay correct.
	fast := pressure(4)
	if fast > std {
		t.Fatalf("doubling evictions should not raise stash pressure (%d vs %d)", fast, std)
	}
}
