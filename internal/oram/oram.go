// Package oram implements the two tree-based Oblivious RAMs the paper uses
// to protect embedding-table lookups (§IV-A2): Path ORAM [Stefanov et al.]
// and Circuit ORAM [Wang et al.], in the software-controller style of
// ZeroTrace (§V-A1) — full-table oblivious scans of the stash and position
// map, recursive position maps, and deterministic reverse-lexicographic
// eviction for Circuit ORAM.
//
// Configuration follows the paper: bucket size Z=4; stash sizes 150 (Path)
// and 10 (Circuit); recursion enabled beyond 2^16 blocks for Path and 2^12
// for Circuit; 16× position-map reduction per recursion level.
//
// Blocks carry opaque uint32 payloads; embedding rows are stored as the
// bit patterns of their float32 elements (see internal/core).
//
// Security model: the attacker observes accesses to the tree, the position
// map, and the stash *regions* (bucket granularity); the controller's
// registers are private, as in ZeroTrace's cmov-hardened controller. The
// implementation keeps all externally-visible access patterns dependent
// only on public quantities (tree height, stash capacity, access counter)
// plus fresh uniform randomness, and the test suite checks this via
// internal/memtrace.
package oram

import (
	"fmt"
	"math/rand"

	"secemb/internal/memtrace"
)

// DummyID marks an empty slot. Real block IDs must be below DummyID.
const DummyID = ^uint64(0)

// chi is the position-map packing factor: each recursive posmap block holds
// chi leaf positions ("pos-map tree reduction at each recursion level is
// 16×", §V-A1).
const chi = 16

// Trace region suffixes. Every ORAM structure publishes its accesses under
// a region named <prefix><suffix>, where the prefix is Config.Region plus a
// ".pmN" segment per recursion level. Trace consumers (internal/leakcheck)
// match on these suffixes — in particular, tree regions are the ones whose
// bucket indices must be canonicalized to levels before equality checking.
const (
	RegionSuffixTree   = ".tree"
	RegionSuffixStash  = ".stash"
	RegionSuffixPosmap = ".posmap"
)

// Defaults from the paper (§V-A1).
const (
	DefaultZ                   = 4
	DefaultPathStash           = 150
	DefaultCircuitStash        = 10
	DefaultPathRecursionCutoff = 1 << 16 // enable recursion after 2^16 blocks
	DefaultCircRecursionCutoff = 1 << 12 // enable recursion after 2^12 blocks
)

// Stats counts the work an ORAM controller performs. The enclave cost
// model (internal/enclave) converts these counts into deployment-dependent
// latency estimates (Figure 10); benchmarks also measure wall-clock
// directly.
type Stats struct {
	Accesses       int64 // logical accesses served (including posmap-internal)
	BucketsRead    int64 // tree buckets fetched
	BucketsWritten int64 // tree buckets written back
	WordsMoved     int64 // payload words copied between tree and stash
	StashScans     int64 // stash slots touched by oblivious scans
	PosmapScans    int64 // flat posmap entries touched by oblivious scans
	Evictions      int64 // Circuit ORAM eviction passes
	CmovOps        int64 // conditional-select operations (cost-model input)
	MaxStash       int   // high-water mark of real blocks resident in any stash
}

// add merges s2 into s (used when reporting combined recursion stats).
func (s *Stats) observeStash(occupancy int) {
	if occupancy > s.MaxStash {
		s.MaxStash = occupancy
	}
}

// Config parameterizes an ORAM instance.
type Config struct {
	NumBlocks  int // logical table size n (must be > 0)
	BlockWords int // payload words per block (embedding dim for float32 rows)

	Z         int // blocks per bucket; 0 → DefaultZ
	StashSize int // stash capacity; 0 → scheme default

	// RecursionCutoff: when NumBlocks exceeds this, the position map is
	// stored in a recursive ORAM instead of a flat scanned array.
	// 0 → scheme default. Negative → never recurse.
	RecursionCutoff int

	// EvictionsPerAccess is Circuit ORAM's eviction rate (ignored by Path
	// ORAM). 0 → the standard 2. Lower rates trade bandwidth for stash
	// pressure — the knob behind Circuit ORAM's stash bound and this
	// repository's eviction-rate ablation.
	EvictionsPerAccess int

	Seed   int64            // PRNG seed for leaf assignment (deterministic runs)
	Tracer *memtrace.Tracer // optional access-trace instrumentation
	Region string           // trace region prefix; "" → "oram"
}

func (c *Config) fill(defaultStash, defaultCutoff int) {
	if c.NumBlocks <= 0 {
		panic(fmt.Sprintf("oram: NumBlocks must be positive, got %d", c.NumBlocks))
	}
	if c.BlockWords <= 0 {
		panic(fmt.Sprintf("oram: BlockWords must be positive, got %d", c.BlockWords))
	}
	if c.Z == 0 {
		c.Z = DefaultZ
	}
	if c.StashSize == 0 {
		c.StashSize = defaultStash
	}
	if c.RecursionCutoff == 0 {
		c.RecursionCutoff = defaultCutoff
	}
	if c.Region == "" {
		c.Region = "oram"
	}
}

// ORAM is the interface shared by Path ORAM and Circuit ORAM.
type ORAM interface {
	// Read returns a copy of block id's payload.
	//
	// secemb:secret id
	Read(id uint64) []uint32
	// Write replaces block id's payload.
	//
	// secemb:secret id data
	Write(id uint64, data []uint32)
	// Update reads block id, applies fn to its payload in place, and
	// writes it back, all within a single ORAM access.
	//
	// secemb:secret id
	Update(id uint64, fn func(data []uint32))
	// Stats returns the cumulative controller work counters (shared
	// across recursive position-map levels).
	Stats() *Stats
	// NumBytes returns the total memory footprint: tree + stash +
	// position-map structures, including all recursion levels.
	NumBytes() int64
	// RecursionDepth returns the number of recursive posmap levels
	// (0 = flat position map).
	RecursionDepth() int
}

// uniformLeaf draws a uniform leaf in [0, leaves) where leaves is a power
// of two.
func uniformLeaf(rng *rand.Rand, leaves int) uint32 {
	return uint32(rng.Intn(leaves))
}

// nextPow2 returns the smallest power of two ≥ v (v ≥ 1).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// bitReverse reverses the low `bits` bits of v — the reverse-lexicographic
// eviction-path schedule of Circuit ORAM.
func bitReverse(v uint32, bits int) uint32 {
	var out uint32
	for i := 0; i < bits; i++ {
		out = (out << 1) | (v & 1)
		v >>= 1
	}
	return out
}
