package oram

import (
	"fmt"
	"math/rand"

	"secemb/internal/memtrace"
)

// tree is the bucket tree shared by both ORAM schemes: a complete binary
// tree of height L with 2^L leaves, each bucket holding Z slots. Slot
// metadata (id, assigned leaf) and payload words are stored in flat arrays
// for locality.
type tree struct {
	levels int // L; path length is L+1 buckets
	leaves int // 2^L
	z      int
	words  int // payload words per block

	ids    []uint64 // per slot; DummyID = empty
	leafOf []uint32 // per slot; valid when ids[i] != DummyID
	data   []uint32 // per slot × words

	tracer *memtrace.Tracer
	region string
	stats  *Stats
}

// newTree sizes the bucket tree for n blocks: leaves = nextPow2(⌈n/Z⌉),
// giving ~50% slot utilization — the sizing software ORAMs for SGX use,
// and the source of Table VI's >3× ORAM memory blow-up once recursive
// position maps are added.
func newTree(n, z, words int, tracer *memtrace.Tracer, region string, stats *Stats) *tree {
	leaves := nextPow2((n + z - 1) / z)
	levels := 0
	for 1<<levels < leaves {
		levels++
	}
	buckets := 2*leaves - 1
	t := &tree{
		levels: levels,
		leaves: leaves,
		z:      z,
		words:  words,
		ids:    make([]uint64, buckets*z),
		leafOf: make([]uint32, buckets*z),
		data:   make([]uint32, buckets*z*words),
		tracer: tracer,
		region: region,
		stats:  stats,
	}
	for i := range t.ids {
		t.ids[i] = DummyID
	}
	return t
}

// nodeIndex returns the bucket index of the level-l node on the path to
// leaf (level 0 = root, level L = leaf bucket).
func (t *tree) nodeIndex(leaf uint32, level int) int {
	return (1 << level) - 1 + int(leaf>>(t.levels-level))
}

// slotBase returns the first slot index of bucket b.
func (t *tree) slotBase(bucket int) int { return bucket * t.z }

// slotData returns the payload words of slot s (aliasing tree storage).
func (t *tree) slotData(s int) []uint32 { return t.data[s*t.words : (s+1)*t.words] }

// touchBucket records a bucket access on the trace and in the stats.
func (t *tree) touchBucket(bucket int, op memtrace.Op) {
	if op == memtrace.Read {
		t.stats.BucketsRead++
	} else {
		t.stats.BucketsWritten++
	}
	t.tracer.Touch(t.region+RegionSuffixTree, int64(bucket), op)
}

// canReside reports whether a block assigned to blockLeaf may be stored at
// level `level` of the path to pathLeaf: their level-length prefixes must
// agree.
func (t *tree) canReside(blockLeaf, pathLeaf uint32, level int) bool {
	shift := t.levels - level
	return blockLeaf>>shift == pathLeaf>>shift
}

// bulkLoad places n pre-assigned blocks into the tree bottom-up, returning
// the blocks that did not fit anywhere on their paths (they go to the
// caller's stash). leafAssign[i] is block i's leaf; payload(i) returns
// block i's words (may be nil for all-zero). This runs once at
// construction: it gives a secrecy-preserving initial layout (uniform
// random leaves) without paying one full ORAM access per block.
func (t *tree) bulkLoad(n int, leafAssign []uint32, payload func(i int) []uint32) []int {
	// Group block indices by leaf.
	byLeaf := make([][]int, t.leaves)
	for i := 0; i < n; i++ {
		l := leafAssign[i]
		byLeaf[l] = append(byLeaf[l], i)
	}
	store := func(bucket, blk int) {
		base := t.slotBase(bucket)
		for s := base; s < base+t.z; s++ {
			if t.ids[s] == DummyID {
				t.ids[s] = uint64(blk)
				t.leafOf[s] = leafAssign[blk]
				if p := payload(blk); p != nil {
					copy(t.slotData(s), p)
				}
				return
			}
		}
		panic("oram: bulkLoad store into full bucket")
	}
	// current[k] holds the unplaced blocks belonging to subtree k of the
	// level being processed.
	current := byLeaf
	for level := t.levels; level >= 0; level-- {
		width := 1 << level
		next := make([][]int, width/2)
		for node := 0; node < width; node++ {
			bucket := width - 1 + node
			pending := current[node]
			fit := len(pending)
			if fit > t.z {
				fit = t.z
			}
			for _, blk := range pending[:fit] {
				store(bucket, blk)
			}
			rest := pending[fit:]
			if level == 0 {
				return rest // root leftovers → stash
			}
			next[node/2] = append(next[node/2], rest...)
		}
		current = next
	}
	return nil
}

// NumBytes returns the storage footprint of the bucket tree: payload plus
// per-slot metadata (8-byte id + 4-byte leaf), matching how Table VI
// accounts for ORAM dummy-block overhead.
func (t *tree) NumBytes() int64 {
	slots := int64(len(t.ids))
	return slots*(8+4) + int64(len(t.data))*4
}

// checkID panics on out-of-range block ids (caller bug, not secret-
// dependent: the table size is public).
//
// secemb:secret id
func checkID(id uint64, n int) {
	//lint:allow obliviouslint/branch bounds abort: id validity is public policy, enforced before any secret-dependent work
	if id >= uint64(n) {
		//lint:allow obliviouslint/call the printed id is out of range, hence not a valid secret
		panic(fmt.Sprintf("oram: block id %d out of %d", id, n))
	}
}

// randLeaves draws n uniform leaves.
func randLeaves(n, leaves int, rng *rand.Rand) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uniformLeaf(rng, leaves)
	}
	return out
}
