package oram

import (
	"fmt"
	"math/rand"

	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
)

// PathORAM implements the Path ORAM protocol (§IV-A2): on each access the
// position map yields the block's leaf, the whole root→leaf path is pulled
// into the stash, the block is served and assigned a fresh uniform leaf,
// and the path is written back greedily with stash blocks pushed as deep
// as they can legally go.
type PathORAM struct {
	cfg    Config
	tree   *tree
	stash  *stash
	posmap PositionMap
	rng    *rand.Rand
	stats  *Stats
	buf    []uint32 // scratch block
}

// NewPath builds a Path ORAM over cfg.NumBlocks zero-initialized blocks.
func NewPath(cfg Config) *PathORAM {
	cfg.fill(DefaultPathStash, DefaultPathRecursionCutoff)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return newPath(cfg, nil, rng, &Stats{}, 0)
}

// NewPathInit builds a Path ORAM whose blocks start with the given
// payloads (init[i] is block i; nil entries mean zero).
func NewPathInit(cfg Config, init [][]uint32) *PathORAM {
	cfg.fill(DefaultPathStash, DefaultPathRecursionCutoff)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return newPath(cfg, init, rng, &Stats{}, 0)
}

func newPath(cfg Config, init [][]uint32, rng *rand.Rand, stats *Stats, level int) *PathORAM {
	region := cfg.Region
	if level > 0 {
		region = fmt.Sprintf("%s.pm%d", cfg.Region, level)
	}
	t := newTree(cfg.NumBlocks, cfg.Z, cfg.BlockWords, cfg.Tracer, region, stats)
	leafAssign := randLeaves(cfg.NumBlocks, t.leaves, rng)
	payload := func(i int) []uint32 {
		if init == nil {
			return nil
		}
		return init[i]
	}
	leftover := t.bulkLoad(cfg.NumBlocks, leafAssign, payload)
	st := newStash(cfg.StashSize, cfg.BlockWords, cfg.Tracer, region, stats)
	zero := make([]uint32, cfg.BlockWords)
	for _, blk := range leftover {
		p := payload(blk)
		if p == nil {
			p = zero
		}
		st.insert(uint64(blk), leafAssign[blk], p)
	}
	o := &PathORAM{
		cfg:   cfg,
		tree:  t,
		stash: st,
		rng:   rng,
		stats: stats,
		buf:   make([]uint32, cfg.BlockWords),
	}
	o.posmap = newPosMap(leafAssign, cfg.RecursionCutoff, rng, cfg.Tracer, region, stats, level,
		func(c Config, pinit [][]uint32, r *rand.Rand, lvl int) ORAM {
			c.Z = cfg.Z
			c.StashSize = cfg.StashSize
			return newPathInner(c, pinit, r, stats, lvl)
		})
	return o
}

// newPathInner adapts newPath for the recursive posmap constructor.
func newPathInner(cfg Config, init [][]uint32, rng *rand.Rand, stats *Stats, level int) ORAM {
	return newPath(cfg, init, rng, stats, level+1)
}

// Read returns a copy of block id.
//
// secemb:secret id
func (o *PathORAM) Read(id uint64) []uint32 {
	out := make([]uint32, o.cfg.BlockWords)
	o.access(id, func(data []uint32) { copy(out, data) })
	return out
}

// Write replaces block id.
//
// secemb:secret id data
func (o *PathORAM) Write(id uint64, data []uint32) {
	if len(data) != o.cfg.BlockWords {
		panic(fmt.Sprintf("oram: write of %d words into %d-word blocks", len(data), o.cfg.BlockWords))
	}
	o.access(id, func(dst []uint32) { copy(dst, data) })
}

// Update applies fn to block id within one access.
//
// secemb:secret id
func (o *PathORAM) Update(id uint64, fn func(data []uint32)) { o.access(id, fn) }

// access is the Path ORAM protocol core.
//
// secemb:secret id
func (o *PathORAM) access(id uint64, fn func(data []uint32)) {
	checkID(id, o.cfg.NumBlocks)
	o.stats.Accesses++
	t := o.tree

	newLeaf := uniformLeaf(o.rng, t.leaves)
	oldLeaf := o.posmap.Swap(id, newLeaf)

	// Read path: move every real block on the path into the stash. Each
	// slot costs one oblivious stash scan whether it is real or a dummy,
	// as in ZeroTrace's hardened controller.
	for level := 0; level <= t.levels; level++ {
		bucket := t.nodeIndex(oldLeaf, level)
		t.touchBucket(bucket, memtrace.Read)
		base := t.slotBase(bucket)
		for s := base; s < base+t.z; s++ {
			real := t.ids[s] != DummyID
			o.stash.insertCond(oblivious.Mask64(real), t.ids[s], t.leafOf[s], t.slotData(s))
			t.ids[s] = DummyID
			o.stats.WordsMoved += int64(t.words)
		}
	}

	// Serve the request from the stash and install the new leaf.
	found := o.stash.readBlock(id, o.buf)
	//lint:allow obliviouslint/branch invariant abort: a missing block means a broken controller; the process dies rather than serving garbage
	if found == 0 {
		// Deliberately no id in the message: a valid secret must not
		// surface even on an abort path.
		panic("oram: block missing (invariant violation)")
	}
	if fn != nil {
		fn(o.buf)
	}
	o.stash.updateBlock(id, newLeaf, o.buf)

	// Write back: fill the path leaf→root, pulling eligible stash blocks
	// as deep as possible.
	for level := t.levels; level >= 0; level-- {
		bucket := t.nodeIndex(oldLeaf, level)
		base := t.slotBase(bucket)
		for s := base; s < base+t.z; s++ {
			var blkID uint64
			var blkLeaf uint32
			got := o.stash.extractEligible(oldLeaf, level, t.levels, &blkID, &blkLeaf, o.buf)
			t.ids[s] = oblivious.Select64(got, blkID, DummyID)
			t.leafOf[s] = uint32(oblivious.Select64(got, uint64(blkLeaf), 0))
			oblivious.CondCopyWords(got, t.slotData(s), o.buf)
			o.stats.WordsMoved += int64(t.words)
		}
		t.touchBucket(bucket, memtrace.Write)
	}
	o.stats.observeStash(o.stash.occupancy())
}

// Stats returns the shared work counters (including recursion levels).
func (o *PathORAM) Stats() *Stats { return o.stats }

// NumBytes returns tree + stash + posmap footprint across all levels.
func (o *PathORAM) NumBytes() int64 {
	n := o.tree.NumBytes()
	n += int64(o.stash.cap) * int64(12+4*o.cfg.BlockWords)
	n += o.posmap.NumBytes()
	return n
}

// RecursionDepth reports the number of recursive posmap levels.
func (o *PathORAM) RecursionDepth() int { return o.posmap.Depth() }

// TreeLevels exposes the tree height L (path length L+1); used by the
// enclave cost model.
func (o *PathORAM) TreeLevels() int { return o.tree.levels }
