package oram

import (
	"math/rand"

	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
)

// PositionMap maps block ids to their current tree leaves. Swap atomically
// returns the old leaf and installs a new one — exactly the operation an
// ORAM access needs, performed obliviously.
type PositionMap interface {
	// Swap atomically replaces id's leaf. The returned *old* leaf is a
	// protocol declassification: it is a fresh uniform value installed by
	// the previous access to id and revealed exactly once, so it carries
	// no information about id (Path/Circuit ORAM security argument).
	//
	// secemb:secret id
	Swap(id uint64, newLeaf uint32) uint32
	NumBytes() int64
	Depth() int
}

// flatPosMap stores leaves in a plain array and performs a full oblivious
// scan per Swap — ZeroTrace's non-recursive mode. O(n) per access with a
// tiny constant (4 bytes/entry), which beats recursion below the paper's
// cutoffs (2^16 blocks for Path, 2^12 for Circuit).
type flatPosMap struct {
	leaves []uint32
	tracer *memtrace.Tracer
	region string
	stats  *Stats
}

func newFlatPosMap(init []uint32, tracer *memtrace.Tracer, region string, stats *Stats) *flatPosMap {
	l := make([]uint32, len(init))
	copy(l, init)
	return &flatPosMap{leaves: l, tracer: tracer, region: region, stats: stats}
}

// Swap scans the whole map, obliviously extracting the old leaf for id and
// installing newLeaf.
//
// secemb:secret id
func (p *flatPosMap) Swap(id uint64, newLeaf uint32) uint32 {
	p.stats.PosmapScans += int64(len(p.leaves))
	p.stats.CmovOps += int64(len(p.leaves))
	// Trace at chi-entry "block" granularity: what a cache-line attacker
	// would see of a packed uint32 array.
	p.tracer.TouchRange(p.region+RegionSuffixPosmap, 0, int64((len(p.leaves)+chi-1)/chi), memtrace.Read)
	var old uint64
	for i := range p.leaves {
		m := oblivious.Eq(uint64(i), id)
		old = oblivious.Select64(m, uint64(p.leaves[i]), old)
		p.leaves[i] = uint32(oblivious.Select64(m, uint64(newLeaf), uint64(p.leaves[i])))
	}
	//lint:allow obliviouslint/declass the old leaf is a fresh uniform value revealed once per access (ORAM protocol declassification)
	return uint32(old)
}

func (p *flatPosMap) NumBytes() int64 { return int64(len(p.leaves)) * 4 }
func (p *flatPosMap) Depth() int      { return 0 }

// oramPosMap stores the position map in a smaller ORAM whose blocks each
// pack chi leaves — one recursion level. The inner ORAM's own position map
// recurses further until it fits under the cutoff.
type oramPosMap struct {
	inner ORAM
	n     int
}

// newPosMap builds the position-map hierarchy for n blocks whose initial
// leaf assignment is init. mk constructs the inner ORAM for a recursion
// level (it is the scheme's own constructor, so Path ORAM recursion uses
// Path ORAMs and Circuit uses Circuit, as in ZeroTrace).
func newPosMap(init []uint32, cutoff int, rng *rand.Rand,
	tracer *memtrace.Tracer, region string, stats *Stats, level int,
	mk func(cfg Config, init [][]uint32, rng *rand.Rand, level int) ORAM) PositionMap {

	n := len(init)
	if cutoff < 0 || n <= cutoff {
		return newFlatPosMap(init, tracer, region, stats)
	}
	// Pack chi leaves per inner block.
	blocks := (n + chi - 1) / chi
	payloads := make([][]uint32, blocks)
	for b := 0; b < blocks; b++ {
		words := make([]uint32, chi)
		for j := 0; j < chi; j++ {
			idx := b*chi + j
			if idx < n {
				words[j] = init[idx]
			}
		}
		payloads[b] = words
	}
	cfg := Config{
		NumBlocks:       blocks,
		BlockWords:      chi,
		RecursionCutoff: cutoff,
		Tracer:          tracer,
		Region:          region,
	}
	return &oramPosMap{inner: mk(cfg, payloads, rng, level), n: n}
}

// Swap reads the inner block holding id's entry, obliviously swaps the
// packed slot, and writes the block back — one inner ORAM access.
//
// secemb:secret id
func (p *oramPosMap) Swap(id uint64, newLeaf uint32) uint32 {
	blockID := id / chi
	slot := id % chi
	var old uint64
	p.inner.Update(blockID, func(words []uint32) {
		for j := 0; j < chi; j++ {
			m := oblivious.Eq(uint64(j), slot)
			old = oblivious.Select64(m, uint64(words[j]), old)
			words[j] = uint32(oblivious.Select64(m, uint64(newLeaf), uint64(words[j])))
		}
	})
	//lint:allow obliviouslint/declass the old leaf is a fresh uniform value revealed once per access (ORAM protocol declassification)
	return uint32(old)
}

func (p *oramPosMap) NumBytes() int64 { return p.inner.NumBytes() }
func (p *oramPosMap) Depth() int      { return 1 + p.inner.RecursionDepth() }
