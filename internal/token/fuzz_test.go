package token

import "testing"

// FuzzEncodeDecode: encoding arbitrary text never panics, produces
// in-vocabulary ids, and decoding the result is safe.
func FuzzEncodeDecode(f *testing.F) {
	tk := Build("the quick brown fox jumps over the lazy dog", 16)
	f.Add("hello world")
	f.Add("THE QUICK fox!!!")
	f.Add("")
	f.Add("\x00\xff weird \t bytes")
	f.Fuzz(func(t *testing.T, text string) {
		ids := tk.Encode(text)
		for _, id := range ids {
			if id < 0 || id >= tk.VocabSize() {
				t.Fatalf("id %d out of vocab", id)
			}
		}
		_ = tk.Decode(ids)
	})
}
