package token

import (
	"strings"
	"testing"
	"testing/quick"
)

const sample = "the cat sat on the mat. The CAT ran! A dog barked, and the cat ran away."

func TestBuildFrequencyRanking(t *testing.T) {
	tk := Build(sample, 100)
	// "the" (4×, incl. "The") must receive the first non-reserved id.
	id, ok := tk.ID("the")
	if !ok || id != reserved {
		t.Fatalf("'the' id=%d ok=%v, want %d", id, ok, reserved)
	}
	if _, ok := tk.ID("cat"); !ok {
		t.Fatal("'cat' missing")
	}
	if tk.VocabSize() <= reserved {
		t.Fatal("vocabulary empty")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(sample, 50), Build(sample, 50)
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab size differs")
	}
	for id := 0; id < a.VocabSize(); id++ {
		if a.Word(id) != b.Word(id) {
			t.Fatalf("id %d: %q vs %q", id, a.Word(id), b.Word(id))
		}
	}
}

func TestMaxVocabCap(t *testing.T) {
	tk := Build(sample, 5)
	if tk.VocabSize() != 5 {
		t.Fatalf("VocabSize=%d, want 5", tk.VocabSize())
	}
	// Rare words fall back to <unk>.
	ids := tk.Encode("barked")
	if len(ids) != 1 || ids[0] != UnknownID {
		t.Fatalf("rare word ids=%v, want [<unk>]", ids)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tk := Build(sample, 100)
	text := "the cat ran"
	ids := tk.Encode(text)
	if got := tk.Decode(ids); got != text {
		t.Fatalf("round trip: %q → %v → %q", text, ids, got)
	}
}

func TestEncodeCaseAndPunctuation(t *testing.T) {
	tk := Build(sample, 100)
	a := tk.Encode("The CAT!")
	b := tk.Encode("the cat")
	if len(a) != len(b) {
		t.Fatalf("token counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("case/punctuation must normalize away")
		}
	}
}

func TestDecodeStopsAtEOS(t *testing.T) {
	tk := Build(sample, 100)
	catID, _ := tk.ID("cat")
	got := tk.Decode([]int{catID, EndID, catID})
	if got != "cat" {
		t.Fatalf("Decode past <eos>: %q", got)
	}
}

func TestDecodeInvalidID(t *testing.T) {
	tk := Build(sample, 10)
	if !strings.Contains(tk.Decode([]int{9999}), "<invalid>") {
		t.Fatal("invalid ids must be marked")
	}
	if tk.Word(-1) != "<invalid>" {
		t.Fatal("negative id must be invalid")
	}
}

func TestFieldsProperties(t *testing.T) {
	f := func(s string) bool {
		for _, w := range Fields(s) {
			if w == "" {
				return false
			}
			if w != strings.ToLower(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIDsWithinVocab(t *testing.T) {
	tk := Build(sample, 8)
	f := func(s string) bool {
		for _, id := range tk.Encode(s) {
			if id < 0 || id >= tk.VocabSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
