// Package token implements a small deterministic word-level tokenizer.
//
// In the paper's threat model, "the tokenization's encoding and decoding
// processes between natural language tokens and their token IDs happen on
// a trusted local device and not in an untrusted cloud" (§III) — the
// tokenizer is public and runs client-side; only the resulting token IDs
// (the secrets the embedding layer must protect) reach the server. This
// package provides that client-side piece: frequency-ranked vocabulary
// construction, encoding with an <unk> fallback, and decoding.
package token

import (
	"sort"
	"strings"
)

// Reserved token ids.
const (
	UnknownID = 0 // <unk>: out-of-vocabulary words
	EndID     = 1 // <eos>: end of sequence
	reserved  = 2
)

// Tokenizer maps words to stable integer ids.
type Tokenizer struct {
	ids   map[string]int
	words []string // indexed by id
}

// Build constructs a vocabulary of at most maxVocab entries (including
// the reserved tokens) from the corpus, keeping the most frequent words;
// ties break lexicographically so construction is fully deterministic.
func Build(corpus string, maxVocab int) *Tokenizer {
	if maxVocab <= reserved {
		maxVocab = reserved + 1
	}
	freq := map[string]int{}
	for _, w := range Fields(corpus) {
		freq[w]++
	}
	type wf struct {
		w string
		f int
	}
	all := make([]wf, 0, len(freq))
	for w, f := range freq {
		all = append(all, wf{w, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	t := &Tokenizer{
		ids:   map[string]int{},
		words: []string{"<unk>", "<eos>"},
	}
	for _, e := range all {
		if len(t.words) >= maxVocab {
			break
		}
		t.ids[e.w] = len(t.words)
		t.words = append(t.words, e.w)
	}
	return t
}

// Fields normalizes and splits text into word tokens: lower-cased,
// punctuation-separated.
func Fields(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '\'':
			return false
		}
		return true
	})
}

// VocabSize returns the number of token ids (including reserved ones).
func (t *Tokenizer) VocabSize() int { return len(t.words) }

// Encode maps text to token ids; unknown words become UnknownID.
func (t *Tokenizer) Encode(text string) []int {
	words := Fields(text)
	out := make([]int, len(words))
	for i, w := range words {
		if id, ok := t.ids[w]; ok {
			out[i] = id
		} else {
			out[i] = UnknownID
		}
	}
	return out
}

// Decode maps token ids back to a space-joined string.
func (t *Tokenizer) Decode(ids []int) string {
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == EndID {
			break
		}
		if id >= 0 && id < len(t.words) {
			parts = append(parts, t.words[id])
		} else {
			parts = append(parts, "<invalid>")
		}
	}
	return strings.Join(parts, " ")
}

// ID returns the token id for a word and whether it is in vocabulary.
func (t *Tokenizer) ID(word string) (int, bool) {
	id, ok := t.ids[strings.ToLower(word)]
	return id, ok
}

// Word returns the surface form of a token id.
func (t *Tokenizer) Word(id int) string {
	if id < 0 || id >= len(t.words) {
		return "<invalid>"
	}
	return t.words[id]
}
