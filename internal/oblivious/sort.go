package oblivious

// Bitonic sorting network: the canonical data-oblivious sort. The sequence
// of compare-exchange operations depends only on the input *length*, and
// each exchange is a masked conditional swap — no secret-dependent control
// flow or access pattern. Oblivious sorts/shuffles are the standard
// building block for oblivious bulk operations in the ORAM literature
// (e.g. oblivious initialization and batched evictions); this repository
// exposes them as reusable primitives.

// BitonicSort64 sorts keys ascending, in place, obliviously. Non-power-of-
// two lengths are handled by padding with MaxUint64 sentinels in a scratch
// buffer (the padding is a function of len only).
//
// secemb:secret keys
func BitonicSort64(keys []uint64) {
	BitonicSortPairs(keys, nil)
}

// BitonicSortPairs sorts keys ascending and applies the same permutation
// to vals (when non-nil; len(vals) must equal len(keys)).
//
// secemb:secret keys vals
func BitonicSortPairs(keys []uint64, vals []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	if vals != nil && len(vals) != n {
		panic("oblivious: keys/vals length mismatch")
	}
	p := 1
	for p < n {
		p <<= 1
	}
	k := make([]uint64, p)
	copy(k, keys)
	for i := n; i < p; i++ {
		k[i] = ^uint64(0) // sentinel: sorts to the tail
	}
	var v []uint64
	if vals != nil {
		v = make([]uint64, p)
		copy(v, vals)
	}
	bitonicNetwork(p, func(i, j int, ascending bool) {
		// Swap when out of order w.r.t. the direction.
		gt := Lt(k[j], k[i]) // all-ones when k[i] > k[j]
		want := gt
		if !ascending {
			want = ^gt & ^Eq(k[i], k[j]) // swap when k[i] < k[j]
		}
		CondSwapU64(want, &k[i], &k[j])
		if v != nil {
			CondSwapU64(want, &v[i], &v[j])
		}
	})
	copy(keys, k[:n])
	if vals != nil {
		copy(vals, v[:n])
	}
}

// bitonicNetwork drives the compare-exchange schedule for a power-of-two
// size; the schedule is a pure function of n.
func bitonicNetwork(n int, exchange func(i, j int, ascending bool)) {
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					exchange(i, l, i&k == 0)
				}
			}
		}
	}
}

// CompareExchangeCount returns the number of compare-exchange operations
// the network performs for a given input length — by construction a
// function of the length alone (asserted in tests), which is the
// obliviousness argument.
func CompareExchangeCount(n int) int {
	if n < 2 {
		return 0
	}
	p := 1
	for p < n {
		p <<= 1
	}
	count := 0
	bitonicNetwork(p, func(i, j int, asc bool) { count++ })
	return count
}
