package oblivious

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveTopK is the reference oracle.
func naiveTopK(x []float32, k int) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func TestTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		k := 1 + rng.Intn(n)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		got := TopK(x, k)
		want := naiveTopK(x, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: TopK(%d)[%d]=%d, want %d", trial, k, i, got[i], want[i])
			}
		}
	}
}

func TestTopKNegativesAndTies(t *testing.T) {
	x := []float32{-1, -3, -1, -2}
	got := TopK(x, 4)
	want := []int{0, 2, 3, 1} // ties (idx 0,2) → lower index first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK(nil, 3) != nil {
		t.Fatal("empty input")
	}
	if TopK([]float32{1}, 0) != nil {
		t.Fatal("k=0")
	}
	got := TopK([]float32{5, 9}, 10) // k > n clamps
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("clamped TopK=%v", got)
	}
}

func TestSampleTopKZeroTemperatureIsGreedy(t *testing.T) {
	x := []float32{0.1, 3.5, 0.2}
	if SampleTopK(x, 3, 0, 0.7) != 1 {
		t.Fatal("temperature 0 must be argmax")
	}
}

func TestSampleTopKRespectsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, 50)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	allowed := map[int]bool{}
	for _, idx := range TopK(x, 5) {
		allowed[idx] = true
	}
	for trial := 0; trial < 200; trial++ {
		got := SampleTopK(x, 5, 1.0, rng.Float64())
		if !allowed[got] {
			t.Fatalf("sampled %d outside the top-5 support", got)
		}
	}
}

func TestSampleTopKDistribution(t *testing.T) {
	// Two candidates with a big logit gap: the hotter one dominates at
	// low temperature and evens out at high temperature.
	x := []float32{2, 0}
	rng := rand.New(rand.NewSource(3))
	count := func(temp float64) int {
		hits := 0
		for i := 0; i < 2000; i++ {
			if SampleTopK(x, 2, temp, rng.Float64()) == 0 {
				hits++
			}
		}
		return hits
	}
	cold := count(0.25) // p(0) = σ(8) ≈ 0.9997
	hot := count(8)     // p(0) = σ(0.25) ≈ 0.56
	if cold < 1950 {
		t.Fatalf("cold sampling picked the max only %d/2000", cold)
	}
	if hot > 1400 || hot < 900 {
		t.Fatalf("hot sampling should approach uniform: %d/2000", hot)
	}
}

func TestSampleTopKBoundaryDraws(t *testing.T) {
	x := []float32{1, 1, 1}
	// u=0 → first candidate; u→1 → last candidate.
	if got := SampleTopK(x, 3, 1, 0); got != 0 {
		t.Fatalf("u=0 picked %d", got)
	}
	if got := SampleTopK(x, 3, 1, 0.999999); got != 2 {
		t.Fatalf("u≈1 picked %d", got)
	}
}
