package oblivious

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask64(t *testing.T) {
	if Mask64(true) != ^uint64(0) {
		t.Fatal("Mask64(true) != all-ones")
	}
	if Mask64(false) != 0 {
		t.Fatal("Mask64(false) != 0")
	}
}

func TestEqMatchesOperator(t *testing.T) {
	f := func(a, b uint64) bool {
		want := uint64(0)
		if a == b {
			want = ^uint64(0)
		}
		return Eq(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Edge cases quick.Check may miss.
	for _, c := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {^uint64(0), ^uint64(0)},
		{1 << 63, 1 << 63}, {1 << 63, 0}, {math.MaxUint64, math.MaxUint64 - 1}} {
		got := Eq(c[0], c[1])
		want := uint64(0)
		if c[0] == c[1] {
			want = ^uint64(0)
		}
		if got != want {
			t.Fatalf("Eq(%d,%d)=%x want %x", c[0], c[1], got, want)
		}
	}
}

func TestLtMatchesOperator(t *testing.T) {
	f := func(a, b uint64) bool {
		want := uint64(0)
		if a < b {
			want = ^uint64(0)
		}
		return Lt(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1 << 63, (1 << 63) - 1},
		{(1 << 63) - 1, 1 << 63}, {math.MaxUint64, 0}, {0, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64}} {
		got := Lt(c[0], c[1])
		want := uint64(0)
		if c[0] < c[1] {
			want = ^uint64(0)
		}
		if got != want {
			t.Fatalf("Lt(%d,%d)=%x want %x", c[0], c[1], got, want)
		}
	}
}

func TestSelect64(t *testing.T) {
	if Select64(^uint64(0), 7, 9) != 7 {
		t.Fatal("Select64 all-ones must pick a")
	}
	if Select64(0, 7, 9) != 9 {
		t.Fatal("Select64 zero must pick b")
	}
}

func TestSelect32f(t *testing.T) {
	if Select32f(^uint32(0), 1.5, -2.5) != 1.5 {
		t.Fatal("Select32f all-ones must pick a")
	}
	if Select32f(0, 1.5, -2.5) != -2.5 {
		t.Fatal("Select32f zero must pick b")
	}
	// Preserve exact bit patterns including negative zero.
	v := Select32f(^uint32(0), float32(math.Copysign(0, -1)), 1)
	if math.Float32bits(v) != 1<<31 {
		t.Fatal("Select32f must preserve -0 bit pattern")
	}
}

func TestCondCopy(t *testing.T) {
	dst := []float32{1, 2, 3}
	src := []float32{4, 5, 6}
	CondCopy(0, dst, src)
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("CondCopy(0) modified dst: %v", dst)
	}
	CondCopy(^uint64(0), dst, src)
	if dst[0] != 4 || dst[2] != 6 {
		t.Fatalf("CondCopy(1) failed: %v", dst)
	}
}

func TestCondCopy64(t *testing.T) {
	dst := []uint64{1, 2}
	src := []uint64{3, 4}
	CondCopy64(0, dst, src)
	if dst[0] != 1 {
		t.Fatal("CondCopy64(0) modified dst")
	}
	CondCopy64(^uint64(0), dst, src)
	if dst[1] != 4 {
		t.Fatal("CondCopy64(1) failed")
	}
}

func TestCondSwap(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	CondSwap(0, a, b)
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("CondSwap(0) must be a no-op")
	}
	CondSwap(^uint64(0), a, b)
	if a[0] != 3 || a[1] != 4 || b[0] != 1 || b[1] != 2 {
		t.Fatalf("CondSwap(1) failed: %v %v", a, b)
	}
}

func TestCondSwapU64(t *testing.T) {
	a, b := uint64(5), uint64(9)
	CondSwapU64(0, &a, &b)
	if a != 5 || b != 9 {
		t.Fatal("CondSwapU64(0) must be a no-op")
	}
	CondSwapU64(^uint64(0), &a, &b)
	if a != 9 || b != 5 {
		t.Fatal("CondSwapU64(1) failed")
	}
}

func TestMaxMatchesMathMax(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true // out of scope for activations
		}
		want := a
		if b > a {
			want = b
		}
		return Max(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReLU(t *testing.T) {
	x := []float32{-3, -0.5, 0, 0.5, 3}
	ReLU(x)
	want := []float32{0, 0, 0, 0.5, 3}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ReLU[%d]=%v, want %v", i, x[i], want[i])
		}
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float32
		want int
	}{
		{[]float32{1}, 0},
		{[]float32{1, 2, 3}, 2},
		{[]float32{3, 2, 1}, 0},
		{[]float32{1, 3, 2}, 1},
		{[]float32{2, 2, 2}, 0}, // ties → lowest index
		{[]float32{-5, -1, -3}, 1},
		{[]float32{0, -0, 1e-10}, 2},
	}
	for _, c := range cases {
		if got := ArgMax(c.in); got != c.want {
			t.Fatalf("ArgMax(%v)=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestArgMaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		want := 0
		for i, v := range x {
			if v > x[want] {
				want = i
			}
		}
		if got := ArgMax(x); got != want {
			t.Fatalf("trial %d: ArgMax=%d, want %d (x=%v)", trial, got, want, x)
		}
	}
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ArgMax(nil)
}

func TestLookupScan(t *testing.T) {
	const rows, width = 8, 4
	data := make([]float32, rows*width)
	for i := range data {
		data[i] = float32(i)
	}
	out := make([]float32, width)
	for r := 0; r < rows; r++ {
		LookupScan(data, rows, width, uint64(r), out)
		for c := 0; c < width; c++ {
			if out[c] != float32(r*width+c) {
				t.Fatalf("row %d col %d: got %v", r, c, out[c])
			}
		}
	}
}

func TestLookupScanOutOfRangeLeavesOutput(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	out := []float32{-1, -1}
	LookupScan(data, 2, 2, 99, out) // no row matches
	if out[0] != -1 || out[1] != -1 {
		t.Fatalf("out-of-range index must not match any row: %v", out)
	}
}

func BenchmarkLookupScan64k(b *testing.B) {
	const rows, width = 65536, 64
	data := make([]float32, rows*width)
	out := make([]float32, width)
	b.SetBytes(int64(rows * width * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LookupScan(data, rows, width, uint64(i)%rows, out)
	}
}

func BenchmarkArgMaxVocab(b *testing.B) {
	x := make([]float32, 50257)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgMax(x)
	}
}
