// Package oblivious provides branchless, constant-flow primitives — the Go
// analogue of the paper's cmov/AVX-512 blend building blocks (§V-A).
//
// Every function in this package is written so that its sequence of memory
// accesses and its control flow are independent of the *values* of its
// secret operands; only the (public) lengths of slices affect the work done.
// Secrets influence results exclusively through masked integer arithmetic.
//
// The paper hardens its implementations at the ISA level (cmov, AVX masks).
// Go gives no such guarantee, so this repository instead *verifies* the
// property these primitives are meant to deliver: internal/memtrace
// instruments the block-granular access pattern of every secure embedding
// generator and the tests assert the trace is identical for all secret
// inputs. These primitives make that property hold by construction at the
// algorithm level.
package oblivious

import "math"

// Mask64 converts a boolean condition into an all-ones/all-zeros 64-bit
// mask. The conversion from bool goes through a 0/1 integer; no secret-
// dependent branch is introduced by the compiler for this pattern.
func Mask64(cond bool) uint64 {
	var b uint64
	if cond { // branch on the *public representation* produced by callers
		b = 1
	}
	return -b // 0 → 0x000..0, 1 → 0xFFF..F
}

// Eq returns an all-ones mask when a == b and zero otherwise, without
// branching on the comparison.
// secemb:secret a b return
func Eq(a, b uint64) uint64 {
	x := a ^ b
	// (x-1) has its top bit set only when x == 0 (wrap-around) or when x
	// already had the top bit clear but borrowed; AND with ^x clears the
	// latter case.
	return -(((x - 1) &^ x) >> 63)
}

// Lt returns an all-ones mask when a < b and zero otherwise. It is exact
// for all uint64 inputs (Hacker's Delight §2-12 borrow formula).
// secemb:secret a b return
func Lt(a, b uint64) uint64 {
	return -(((^a & b) | ((^(a ^ b)) & (a - b))) >> 63)
}

// Select64 returns a when mask is all-ones and b when mask is zero.
// secemb:secret mask a b return
func Select64(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}

// Select32f returns a when mask is all-ones and b when mask is zero,
// operating on the raw bit patterns of the float32 operands.
// secemb:secret mask a b return
func Select32f(mask uint32, a, b float32) float32 {
	ab := math.Float32bits(a)
	bb := math.Float32bits(b)
	return math.Float32frombits((ab & mask) | (bb &^ mask))
}

// CondCopy copies src into dst element-wise when mask is all-ones and
// leaves dst untouched when mask is zero; either way it reads every element
// of both slices and writes every element of dst. This is the scan-side
// "AVX blend" of the paper's linear scan (§V-A2). dst and src must have
// equal length.
// secemb:secret mask dst src
func CondCopy(mask uint64, dst, src []float32) {
	m := uint32(mask)
	for i := range dst {
		dst[i] = Select32f(m, src[i], dst[i])
	}
}

// CondCopyWords is CondCopy for uint32 payloads (ORAM block words).
// dst and src must have equal length.
// secemb:secret mask dst src
func CondCopyWords(mask uint64, dst, src []uint32) {
	m := uint32(mask)
	for i := range dst {
		dst[i] = (src[i] & m) | (dst[i] &^ m)
	}
}

// CondCopy64 is CondCopy for uint64 payloads (ORAM metadata).
// secemb:secret mask dst src
func CondCopy64(mask uint64, dst, src []uint64) {
	for i := range dst {
		dst[i] = Select64(mask, src[i], dst[i])
	}
}

// CondSwap swaps a and b element-wise when mask is all-ones; it always
// performs the same reads and writes on both slices.
// secemb:secret mask a b
func CondSwap(mask uint64, a, b []float32) {
	m := uint32(mask)
	for i := range a {
		x, y := a[i], b[i]
		a[i] = Select32f(m, y, x)
		b[i] = Select32f(m, x, y)
	}
}

// CondSwapU64 swaps two uint64 values through pointers when mask is set.
// secemb:secret mask a b
func CondSwapU64(mask uint64, a, b *uint64) {
	x, y := *a, *b
	*a = Select64(mask, y, x)
	*b = Select64(mask, x, y)
}

// Max returns max(a, b) branchlessly for float32 — the paper's secure
// ReLU building block (ReLU(x) = max(0, x) via AVX, §V-A3).
// secemb:secret a b return
func Max(a, b float32) float32 {
	// ltMask is all-ones when a < b. Comparing float bits directly is
	// wrong for floats, so derive the mask from the arithmetic sign of
	// the difference; NaNs are out of scope for model activations.
	d := a - b
	sign := uint32(math.Float32bits(d)) >> 31 // 1 when d < 0 (a < b)
	mask := -sign                             // all-ones when a < b
	return Select32f(mask, b, a)
}

// ReLU applies max(0, x) to every element of x in place, branchlessly.
// secemb:secret x
func ReLU(x []float32) {
	for i, v := range x {
		x[i] = Max(v, 0)
	}
}

// ArgMax returns the index of the maximum element of x using a linear scan
// that obliviously carries the running maximum and its index — the paper's
// secure greedy-sampling argmax for LLM logits (§V-C). Access pattern and
// control flow are independent of the values in x. Ties resolve to the
// lowest index. Panics on empty input.
// secemb:secret x return
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("oblivious: ArgMax of empty slice")
	}
	best := x[0]
	bestIdx := uint64(0)
	for i := 1; i < len(x); i++ {
		v := x[i]
		d := best - v
		sign := math.Float32bits(d) >> 31 // 1 when best < v
		mask := -uint64(sign)             // all-ones when best < v
		best = Select32f(uint32(mask), v, best)
		bestIdx = Select64(mask, uint64(i), bestIdx)
	}
	return int(bestIdx)
}

// LookupScan returns row `index` of a table with `rows` rows of width
// `width`, laid out contiguously in data, by scanning the *entire* table
// and blending the matching row into out. This is the core of the secure
// linear scan (§IV-A1): every row is read on every call regardless of the
// secret index. out must have length width.
// secemb:secret index out
func LookupScan(data []float32, rows, width int, index uint64, out []float32) {
	for r := 0; r < rows; r++ {
		mask := Eq(uint64(r), index)
		CondCopy(mask, out, data[r*width:(r+1)*width])
	}
}

// Select64f returns a when mask is all-ones and b when mask is zero,
// operating on the raw bit patterns of the float64 operands.
//
// secemb:secret mask a b return
func Select64f(mask uint64, a, b float64) float64 {
	ab := math.Float64bits(a)
	bb := math.Float64bits(b)
	return math.Float64frombits((ab & mask) | (bb &^ mask))
}

// Max64d returns max(a, b) branchlessly for float64, deriving the select
// mask from the arithmetic sign of the difference (like Max); NaNs are out
// of scope for model activations.
//
// secemb:secret a b return
func Max64d(a, b float64) float64 {
	d := a - b
	mask := -(math.Float64bits(d) >> 63) // all-ones when a < b
	return Select64f(mask, b, a)
}

// Min64d returns min(a, b) branchlessly for float64.
//
// secemb:secret a b return
func Min64d(a, b float64) float64 {
	d := b - a
	mask := -(math.Float64bits(d) >> 63) // all-ones when b < a
	return Select64f(mask, b, a)
}

// Clamp64d clamps x into [lo, hi] branchlessly (lo and hi are public
// bounds; the clamped value's magnitude never surfaces as control flow).
//
// secemb:secret x return
func Clamp64d(x, lo, hi float64) float64 {
	return Min64d(Max64d(x, lo), hi)
}
