package oblivious

import "testing"

// FuzzEqLt cross-checks the branchless comparisons against the operators
// for arbitrary operand pairs.
func FuzzEqLt(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(1))
	f.Add(uint64(1)<<63, uint64(1)<<63-1)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		wantEq := uint64(0)
		if a == b {
			wantEq = ^uint64(0)
		}
		if Eq(a, b) != wantEq {
			t.Fatalf("Eq(%d,%d)", a, b)
		}
		wantLt := uint64(0)
		if a < b {
			wantLt = ^uint64(0)
		}
		if Lt(a, b) != wantLt {
			t.Fatalf("Lt(%d,%d)", a, b)
		}
	})
}
