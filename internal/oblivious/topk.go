package oblivious

import "math"

// TopK returns the indices of the k largest values of x in descending
// value order, computed obliviously: the values are ranked by a bitonic
// sorting network (schedule fixed by len(x)), so the memory access pattern
// and control flow are independent of the values. Ties resolve to the
// lower index. This extends the paper's oblivious greedy argmax (§V-C) to
// top-k sampling: the k selected token ids stay inside the controller's
// private state, never surfacing as addresses.
//
// secemb:secret x return
func TopK(x []float32, k int) []int {
	keys := topKKeys(x, k)
	if keys == nil {
		return nil
	}
	out := make([]int, len(keys))
	for i, key := range keys {
		out[i] = int(key & 0xFFFFFFFF)
	}
	return out
}

// topKKeys sorts x's packed (value, index) keys descending by value and
// returns the first min(k, len(x)) of them. The keys carry both the index
// (low 32 bits) and the exact value bits (recoverable via unpackValue), so
// callers can consume top-k values without gathering logits[idx] by a
// secret index.
//
// secemb:secret x return
func topKKeys(x []float32, k int) []uint64 {
	n := len(x)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	keys := make([]uint64, n)
	for i, v := range x {
		keys[i] = packDescending(v, uint32(i))
	}
	BitonicSort64(keys)
	return keys[:k]
}

// packDescending builds a key whose ascending sort order equals
// descending value order (ties → ascending index).
//
// secemb:secret v return
func packDescending(v float32, idx uint32) uint64 {
	b := math.Float32bits(v)
	// Map float bits to a totally-ordered unsigned key (sign-magnitude →
	// biased): negative floats reverse (^b), positives offset (b|msb). The
	// sign mask s selects between the two without branching on the value.
	s := uint32(int32(b) >> 31) // all-ones when v is negative
	m := b ^ (s | 0x80000000)
	// Descending: invert. Low 32 bits carry the index (not inverted, so
	// equal values sort by ascending index).
	return (uint64(^m) << 32) | uint64(idx)
}

// unpackValue recovers the exact float value carried in a packed key's
// high 32 bits, inverting packDescending's monotone transform with the
// same branchless sign-select.
//
// secemb:secret key return
func unpackValue(key uint64) float32 {
	m := ^uint32(key >> 32)
	s := ^(-(m >> 31)) // all-ones when the original value was negative
	return math.Float32frombits(m ^ (s | 0x80000000))
}

// SampleTopK draws one index from the softmax of the k largest logits at
// the given temperature, using uniform u ∈ [0,1) supplied by the caller
// (keeping this package free of RNG state). The candidate values are
// recovered from the sorted keys themselves — never gathered from logits
// by a secret index — and the cumulative scan selects the winner with
// masked arithmetic, touching every candidate exactly once regardless of
// where the draw lands.
//
// secemb:secret logits return
func SampleTopK(logits []float32, k int, temperature float64, u float64) int {
	if temperature <= 0 {
		return ArgMax(logits)
	}
	keys := topKKeys(logits, k)
	if len(keys) == 1 {
		return int(keys[0] & 0xFFFFFFFF)
	}
	// Stable softmax over the k candidates (keys are descending, so the
	// first key carries the maximum logit).
	maxLogit := unpackValue(keys[0])
	weights := make([]float64, len(keys))
	var total float64
	for i, key := range keys {
		w := math.Exp(float64(unpackValue(key)-maxLogit) / temperature)
		weights[i] = w
		total += w
	}
	target := u * total
	// Oblivious cumulative selection: scan all k, keeping the first
	// candidate whose cumulative weight exceeds the target.
	var cum float64
	chosen := keys[len(keys)-1] & 0xFFFFFFFF // fallback: last candidate
	taken := uint64(0)
	for i, key := range keys {
		cum += weights[i]
		hit := Mask64(cum > target) &^ taken
		chosen = Select64(hit, key&0xFFFFFFFF, chosen)
		taken |= hit
	}
	return int(chosen)
}
