package oblivious

import "math"

// TopK returns the indices of the k largest values of x in descending
// value order, computed obliviously: the values are ranked by a bitonic
// sorting network (schedule fixed by len(x)), so the memory access pattern
// and control flow are independent of the values. Ties resolve to the
// lower index. This extends the paper's oblivious greedy argmax (§V-C) to
// top-k sampling: the k selected token ids stay inside the controller's
// private state, never surfacing as addresses.
func TopK(x []float32, k int) []int {
	n := len(x)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Pack (value, index) into sortable keys: flip the float bits into a
	// monotone order, invert for descending, and keep the index in the
	// low bits so ties break toward lower indices.
	keys := make([]uint64, n)
	for i, v := range x {
		keys[i] = packDescending(v, uint32(i), n)
	}
	BitonicSort64(keys)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int(keys[i] & 0xFFFFFFFF)
	}
	return out
}

// packDescending builds a key whose ascending sort order equals
// descending value order (ties → ascending index).
func packDescending(v float32, idx uint32, n int) uint64 {
	_ = n
	b := math.Float32bits(v)
	// Map float bits to a totally-ordered unsigned key (sign-magnitude →
	// biased): negative floats reverse, positives offset.
	var m uint32
	if b>>31 == 1 {
		m = ^b
	} else {
		m = b | 0x80000000
	}
	// Descending: invert. Low 32 bits carry the index (not inverted, so
	// equal values sort by ascending index).
	return (uint64(^m) << 32) | uint64(idx)
}

// SampleTopK draws one index from the softmax of the k largest logits at
// the given temperature, using uniform u ∈ [0,1) supplied by the caller
// (keeping this package free of RNG state). The cumulative scan selects
// the index with masked arithmetic — every candidate is touched exactly
// once regardless of where the draw lands.
func SampleTopK(logits []float32, k int, temperature float64, u float64) int {
	if temperature <= 0 {
		return ArgMax(logits)
	}
	top := TopK(logits, k)
	if len(top) == 1 {
		return top[0]
	}
	// Stable softmax over the k candidates.
	maxLogit := logits[top[0]] // TopK is descending
	weights := make([]float64, len(top))
	var total float64
	for i, idx := range top {
		w := math.Exp(float64(logits[idx]-maxLogit) / temperature)
		weights[i] = w
		total += w
	}
	target := u * total
	// Oblivious cumulative selection: scan all k, keeping the first
	// candidate whose cumulative weight exceeds the target.
	var cum float64
	chosen := uint64(top[len(top)-1]) // fallback: last candidate
	taken := uint64(0)
	for i, idx := range top {
		cum += weights[i]
		hit := Mask64(cum > target) &^ taken
		chosen = Select64(hit, uint64(idx), chosen)
		taken |= hit
	}
	return int(chosen)
}
