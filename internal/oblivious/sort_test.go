package oblivious

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitonicSortMatchesStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(50)) // duplicates likely
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		BitonicSort64(keys)
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortEdgeCases(t *testing.T) {
	for _, in := range [][]uint64{nil, {}, {5}, {2, 1}, {1, 1, 1}, {3, 2, 1, 0}} {
		keys := append([]uint64(nil), in...)
		BitonicSort64(keys)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("not sorted: %v → %v", in, keys)
			}
		}
	}
	// Max sentinel values must survive sorting (not be confused with
	// padding).
	keys := []uint64{^uint64(0), 0, ^uint64(0), 7}
	BitonicSort64(keys)
	if keys[0] != 0 || keys[1] != 7 || keys[2] != ^uint64(0) || keys[3] != ^uint64(0) {
		t.Fatalf("sentinel handling wrong: %v", keys)
	}
}

func TestBitonicSortPairsCarriesPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 77
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1000))
		vals[i] = keys[i] * 10 // payload determined by key
	}
	BitonicSortPairs(keys, vals)
	for i := range keys {
		if vals[i] != keys[i]*10 {
			t.Fatalf("payload detached from key at %d: key=%d val=%d", i, keys[i], vals[i])
		}
		if i > 0 && keys[i-1] > keys[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestBitonicSortPairsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitonicSortPairs([]uint64{1, 2}, []uint64{1})
}

func TestCompareExchangeCountDataIndependent(t *testing.T) {
	// The schedule is a pure function of n: sorting two very different
	// inputs of the same length performs identical exchange sequences.
	// We verify by instrumenting the actual sort through a schedule
	// re-derivation: count for sorted vs reverse-sorted input of len 64
	// must equal CompareExchangeCount(64).
	want := CompareExchangeCount(64)
	if want <= 0 {
		t.Fatal("no exchanges counted")
	}
	// Independent of content by construction; cross-check the formula:
	// p=64 → Σ_{k∈{2..64}} log2(k) stages × 32 pairs = 21×32.
	if want != 21*32 {
		t.Fatalf("count=%d, want %d", want, 21*32)
	}
	if CompareExchangeCount(1) != 0 || CompareExchangeCount(0) != 0 {
		t.Fatal("degenerate lengths must do nothing")
	}
	// Non-power-of-two pads up.
	if CompareExchangeCount(33) != CompareExchangeCount(64) {
		t.Fatal("padding must round the schedule to the next power of two")
	}
}

func BenchmarkBitonicSort4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]uint64, 4096)
	for i := range base {
		base[i] = rng.Uint64()
	}
	keys := make([]uint64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		BitonicSort64(keys)
	}
}
