package planner

import (
	"fmt"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/obs"
)

func buildFor(rows, dim int, seed int64, reg *obs.Registry) func(core.Technique) (core.Generator, error) {
	return func(tech core.Technique) (core.Generator, error) {
		return core.New(tech, rows, dim, core.Options{Seed: seed, Threads: 1, Obs: reg})
	}
}

func TestSwappableInstallSwitchesGenerator(t *testing.T) {
	build := buildFor(64, 8, 1, nil)
	scan, err := build(core.LinearScanBatched)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(scan)
	if got := sw.Technique(); got != core.LinearScanBatched {
		t.Fatalf("initial technique = %v, want scanb", got)
	}
	out1, err := sw.Generate([]uint64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	dhe, err := build(core.DHE)
	if err != nil {
		t.Fatal(err)
	}
	old := sw.Install(dhe)
	if old != scan {
		t.Fatalf("Install returned %T, want the displaced scan generator", old)
	}
	if got := sw.Technique(); got != core.DHE {
		t.Fatalf("post-install technique = %v, want dhe", got)
	}
	out2, err := sw.Generate([]uint64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Rows != out2.Rows || out1.Cols != out2.Cols {
		t.Fatalf("shape changed across swap: %dx%d vs %dx%d", out1.Rows, out1.Cols, out2.Rows, out2.Cols)
	}
	if sw.Swaps() != 1 {
		t.Fatalf("Swaps() = %d, want 1", sw.Swaps())
	}
}

func TestSwappableCarriesThreadsAcrossInstall(t *testing.T) {
	build := buildFor(64, 8, 1, nil)
	g1, _ := build(core.LinearScanBatched)
	sw := NewSwappable(g1)
	sw.SetThreads(1)
	g2, _ := build(core.LinearScanBatched)
	sw.Install(g2) // must re-apply SetThreads(1); no direct probe, but must not panic
	if _, err := sw.Generate([]uint64{1}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticModelRegimes pins the prior's orderings to the paper's three
// regimes (Fig. 4/5, §IV-D).
func TestAnalyticModelRegimes(t *testing.T) {
	cases := []struct {
		rows, dim int
		batch     float64
		want      core.Technique
	}{
		{100, 16, 4, core.LinearScanBatched}, // tiny table: scan wins
		{1 << 20, 64, 1, core.CircuitORAM},   // huge table, single-id batches: ORAM
		{1 << 20, 64, 256, core.DHE},         // huge table, large batches: DHE amortizes
	}
	for _, c := range cases {
		best, bestCost := core.Technique(-1), 0.0
		for _, tech := range DefaultCandidates() {
			cost := analyticPerID(tech, c.rows, c.dim, c.batch)
			if best < 0 || cost < bestCost {
				best, bestCost = tech, cost
			}
		}
		if best != c.want {
			t.Errorf("rows=%d dim=%d batch=%g: analytic pick %v, want %v",
				c.rows, c.dim, c.batch, best, c.want)
		}
	}
}

// observe simulates one served batch in the registry aggregates the
// sampler reads — the planner's signals are exactly these public numbers.
func observe(reg *obs.Registry, tech core.Technique, batch int, lat time.Duration) {
	key := tech.Key()
	reg.Counter("core_generate_total", "tech", key).Inc()
	reg.Counter("core_generate_ids_total", "tech", key).Add(int64(batch))
	reg.Histogram("core_generate_ns", "tech", key).ObserveDuration(lat)
}

func TestSamplerWindowsAndEWMA(t *testing.T) {
	reg := obs.NewRegistry()
	s := newSampler(reg, 0.5)

	if sig := s.sample(core.DHE); sig.Observed() {
		t.Fatalf("idle technique reports Observed: %+v", sig)
	}
	observe(reg, core.DHE, 8, 2*time.Millisecond)
	observe(reg, core.DHE, 8, 2*time.Millisecond)
	sig := s.sample(core.DHE)
	if sig.Batches != 2 || sig.IDs != 16 {
		t.Fatalf("window deltas = %d batches/%d ids, want 2/16", sig.Batches, sig.IDs)
	}
	if sig.MeanBatch != 8 || sig.EWMABatch != 8 {
		t.Fatalf("mean batch = %g (ewma %g), want 8", sig.MeanBatch, sig.EWMABatch)
	}
	if sig.EWMANs != 2e6 {
		t.Fatalf("first EWMA = %g, want seed 2e6", sig.EWMANs)
	}
	// A faster window pulls the EWMA halfway (alpha 0.5).
	observe(reg, core.DHE, 8, 1*time.Millisecond)
	sig = s.sample(core.DHE)
	if sig.EWMANs != 1.5e6 {
		t.Fatalf("EWMA after 1ms window = %g, want 1.5e6", sig.EWMANs)
	}
	// An idle window leaves the EWMA standing.
	sig = s.sample(core.DHE)
	if sig.Batches != 0 || sig.EWMANs != 1.5e6 {
		t.Fatalf("idle window mutated signal: %+v", sig)
	}
}

func TestPlannerSwapsOnObservedCrossover(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, err := build(core.LinearScanBatched)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.1, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim,
		Build: build, Replicas: []*Swappable{sw},
		Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}

	// Feed observed signals that invert the analytic prior for this tiny
	// table: the scan measured catastrophically slow, DHE fast at the same
	// batch size. The model must follow the measurements.
	for i := 0; i < 4; i++ {
		observe(reg, core.LinearScanBatched, 8, 80*time.Millisecond)
		observe(reg, core.DHE, 8, 100*time.Microsecond)
		observe(reg, core.CircuitORAM, 8, 50*time.Millisecond)
	}
	ds := p.ReplanNow()
	if len(ds) != 1 {
		t.Fatalf("got %d decisions, want 1", len(ds))
	}
	d := ds[0]
	if !d.Swapped || d.Chosen != core.DHE {
		t.Fatalf("decision = %+v, want swap to DHE", d)
	}
	if got := sw.Technique(); got != core.DHE {
		t.Fatalf("replica serves %v after swap, want DHE", got)
	}
	if cur, _ := p.Current("t"); cur != core.DHE {
		t.Fatalf("planner current = %v, want DHE", cur)
	}
	if _, err := sw.Generate([]uint64{1, 2, 3}); err != nil {
		t.Fatalf("post-swap Generate: %v", err)
	}
}

func TestPlannerHysteresisHoldsIncumbent(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, _ := build(core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.5, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: build,
		Replicas: []*Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	// DHE measured only marginally faster: inside the 50% hysteresis band.
	observe(reg, core.LinearScanBatched, 8, 1000*time.Microsecond)
	observe(reg, core.DHE, 8, 900*time.Microsecond)
	observe(reg, core.CircuitORAM, 8, 5000*time.Microsecond)
	d := p.ReplanNow()[0]
	if d.Swapped {
		t.Fatalf("swapped inside hysteresis band: %+v", d)
	}
	if sw.Technique() != core.LinearScanBatched {
		t.Fatal("replica changed technique despite held decision")
	}
}

func TestPlannerDwellBlocksBackToBackSwaps(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, _ := build(core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Hour, Hysteresis: 0.01, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: build,
		Replicas: []*Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	observe(reg, core.LinearScanBatched, 8, 80*time.Millisecond)
	observe(reg, core.DHE, 8, 100*time.Microsecond)
	observe(reg, core.CircuitORAM, 8, 50*time.Millisecond)
	d := p.ReplanNow()[0]
	if d.Swapped || d.Reason != "dwell" {
		t.Fatalf("decision = %+v, want dwell hold (tables were registered just now)", d)
	}
}

func TestForceSwapBypassesModel(t *testing.T) {
	reg := obs.NewRegistry()
	build := buildFor(256, 8, 1, reg)
	scan, _ := build(core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg})
	if err := p.Manage(Table{
		Name: "t", Rows: 256, Dim: 8, Build: build,
		Replicas: []*Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSwap("t", core.CircuitORAM); err != nil {
		t.Fatal(err)
	}
	if sw.Technique() != core.CircuitORAM {
		t.Fatalf("replica serves %v, want circuit", sw.Technique())
	}
	if err := p.ForceSwap("nope", core.DHE); err == nil {
		t.Fatal("ForceSwap on unknown table did not error")
	}
	if got := reg.Counter("planner_swap_total").Value(); got != 1 {
		t.Fatalf("planner_swap_total = %d, want 1", got)
	}
}

func TestSwapBuildFailureKeepsIncumbent(t *testing.T) {
	reg := obs.NewRegistry()
	goodBuild := buildFor(256, 8, 1, reg)
	scan, _ := goodBuild(core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg})
	if err := p.Manage(Table{
		Name: "t", Rows: 256, Dim: 8,
		Build: func(tech core.Technique) (core.Generator, error) {
			return nil, fmt.Errorf("representation store offline")
		},
		Replicas: []*Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSwap("t", core.DHE); err == nil {
		t.Fatal("ForceSwap with failing Build did not error")
	}
	if sw.Technique() != core.LinearScanBatched {
		t.Fatal("failed swap still changed the serving generator")
	}
	if got := reg.Counter("planner_build_errors_total").Value(); got != 1 {
		t.Fatalf("planner_build_errors_total = %d, want 1", got)
	}
	if _, err := sw.Generate([]uint64{1}); err != nil {
		t.Fatalf("incumbent broken after failed swap: %v", err)
	}
}

func TestStartStopLoop(t *testing.T) {
	reg := obs.NewRegistry()
	build := buildFor(128, 8, 1, reg)
	scan, _ := build(core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, Interval: time.Millisecond})
	if err := p.Manage(Table{
		Name: "t", Rows: 128, Dim: 8, Build: build,
		Replicas: []*Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	deadline := time.After(2 * time.Second)
	for reg.Counter("planner_replan_total").Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop never re-planned")
		case <-time.After(time.Millisecond):
		}
	}
	p.Stop()
	p.Stop() // idempotent
	select {
	case <-p.done:
	case <-time.After(2 * time.Second):
		t.Fatal("loop did not exit after Stop")
	}
}
