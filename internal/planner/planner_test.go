package planner

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/obs"
	"secemb/internal/profile"
)

func buildFor(rows, dim int, seed int64, reg *obs.Registry) func(int, core.Technique) (core.Generator, error) {
	return func(_ int, tech core.Technique) (core.Generator, error) {
		return core.New(tech, rows, dim, core.Options{Seed: seed, Threads: 1, Obs: reg})
	}
}

// oneShard wraps a single replica as the one-shard Table.Shards shape most
// tests use.
func oneShard(sw *Swappable) [][]*Swappable { return [][]*Swappable{{sw}} }

func TestSwappableInstallSwitchesGenerator(t *testing.T) {
	build := buildFor(64, 8, 1, nil)
	scan, err := build(0, core.LinearScanBatched)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(scan)
	if got := sw.Technique(); got != core.LinearScanBatched {
		t.Fatalf("initial technique = %v, want scanb", got)
	}
	out1, err := sw.Generate([]uint64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	dhe, err := build(0, core.DHE)
	if err != nil {
		t.Fatal(err)
	}
	old := sw.Install(dhe)
	if old != scan {
		t.Fatalf("Install returned %T, want the displaced scan generator", old)
	}
	if got := sw.Technique(); got != core.DHE {
		t.Fatalf("post-install technique = %v, want dhe", got)
	}
	out2, err := sw.Generate([]uint64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Rows != out2.Rows || out1.Cols != out2.Cols {
		t.Fatalf("shape changed across swap: %dx%d vs %dx%d", out1.Rows, out1.Cols, out2.Rows, out2.Cols)
	}
	if sw.Swaps() != 1 {
		t.Fatalf("Swaps() = %d, want 1", sw.Swaps())
	}
}

func TestSwappableCarriesThreadsAcrossInstall(t *testing.T) {
	build := buildFor(64, 8, 1, nil)
	g1, _ := build(0, core.LinearScanBatched)
	sw := NewSwappable(g1)
	sw.SetThreads(1)
	g2, _ := build(0, core.LinearScanBatched)
	sw.Install(g2) // must re-apply SetThreads(1); no direct probe, but must not panic
	if _, err := sw.Generate([]uint64{1}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticModelRegimes pins the prior's orderings to the paper's three
// regimes (Fig. 4/5, §IV-D).
func TestAnalyticModelRegimes(t *testing.T) {
	cases := []struct {
		rows, dim int
		batch     float64
		want      core.Technique
	}{
		{100, 16, 4, core.LinearScanBatched}, // tiny table: scan wins
		{1 << 20, 64, 1, core.CircuitORAM},   // huge table, single-id batches: ORAM
		{1 << 20, 64, 256, core.DHE},         // huge table, large batches: DHE amortizes
	}
	for _, c := range cases {
		best, bestCost := core.Technique(-1), 0.0
		for _, tech := range DefaultCandidates() {
			cost := analyticPerID(tech, c.rows, c.dim, c.batch)
			if best < 0 || cost < bestCost {
				best, bestCost = tech, cost
			}
		}
		if best != c.want {
			t.Errorf("rows=%d dim=%d batch=%g: analytic pick %v, want %v",
				c.rows, c.dim, c.batch, best, c.want)
		}
	}
}

// observe simulates one served batch on one shard's stream in the registry
// aggregates the sampler reads — the planner's signals are exactly these
// public numbers. An empty shard writes the unlabeled (table-wide) stream.
func observe(reg *obs.Registry, tech core.Technique, shard string, batch int, lat time.Duration) {
	labels := metricLabels(tech, shard)
	reg.Counter("core_generate_total", labels...).Inc()
	reg.Counter("core_generate_ids_total", labels...).Add(int64(batch))
	reg.Histogram("core_generate_ns", labels...).ObserveDuration(lat)
}

func TestSamplerWindowsAndEWMA(t *testing.T) {
	reg := obs.NewRegistry()
	s := newSampler(reg, 0.5)

	if sig := s.sample(core.DHE, ""); sig.Observed() {
		t.Fatalf("idle technique reports Observed: %+v", sig)
	}
	observe(reg, core.DHE, "", 8, 2*time.Millisecond)
	observe(reg, core.DHE, "", 8, 2*time.Millisecond)
	sig := s.sample(core.DHE, "")
	if sig.Batches != 2 || sig.IDs != 16 {
		t.Fatalf("window deltas = %d batches/%d ids, want 2/16", sig.Batches, sig.IDs)
	}
	if sig.MeanBatch != 8 || sig.EWMABatch != 8 {
		t.Fatalf("mean batch = %g (ewma %g), want 8", sig.MeanBatch, sig.EWMABatch)
	}
	if sig.EWMANs != 2e6 {
		t.Fatalf("first EWMA = %g, want seed 2e6", sig.EWMANs)
	}
	// A faster window pulls the EWMA halfway (alpha 0.5).
	observe(reg, core.DHE, "", 8, 1*time.Millisecond)
	sig = s.sample(core.DHE, "")
	if sig.EWMANs != 1.5e6 {
		t.Fatalf("EWMA after 1ms window = %g, want 1.5e6", sig.EWMANs)
	}
	// An idle window leaves the EWMA standing.
	sig = s.sample(core.DHE, "")
	if sig.Batches != 0 || sig.EWMANs != 1.5e6 {
		t.Fatalf("idle window mutated signal: %+v", sig)
	}
}

// TestSamplerKeysStreamsPerShard pins the v2 invariant: the same technique
// on different shards is two independent EWMA streams.
func TestSamplerKeysStreamsPerShard(t *testing.T) {
	reg := obs.NewRegistry()
	s := newSampler(reg, 1)
	s0, s1 := ShardLabel("t", 0), ShardLabel("t", 1)
	observe(reg, core.DHE, s0, 4, 8*time.Millisecond)
	observe(reg, core.DHE, s1, 64, 1*time.Millisecond)
	sig0 := s.sample(core.DHE, s0)
	sig1 := s.sample(core.DHE, s1)
	if sig0.EWMANs != 8e6 || sig0.EWMABatch != 4 {
		t.Fatalf("shard 0 signal = %+v, want 8e6ns @ batch 4", sig0)
	}
	if sig1.EWMANs != 1e6 || sig1.EWMABatch != 64 {
		t.Fatalf("shard 1 signal = %+v, want 1e6ns @ batch 64", sig1)
	}
}

// TestSamplerClampsOnCounterReset: a rebuilt generator on a fresh registry
// restarts its aggregates, so the sampler's next raw delta goes negative.
// The window must clamp to idle — a negative window would poison the EWMA
// with negative latencies — and the following window must be clean.
func TestSamplerClampsOnCounterReset(t *testing.T) {
	reg := obs.NewRegistry()
	s := newSampler(reg, 0.5)
	shard := ShardLabel("t", 0)
	observe(reg, core.DHE, shard, 8, 2*time.Millisecond)
	sig := s.sample(core.DHE, shard)
	if sig.EWMANs != 2e6 {
		t.Fatalf("seed EWMA = %g, want 2e6", sig.EWMANs)
	}
	// Simulate the reset: the aggregates fall below the sampler's anchors
	// (a fresh registry restarts them at zero and re-accumulates less than
	// the old total).
	labels := metricLabels(core.DHE, shard)
	reg.Counter("core_generate_total", labels...).Add(-1)
	reg.Counter("core_generate_ids_total", labels...).Add(-8)
	reg.Histogram("core_generate_ns", labels...).Observe(-2 * int64(time.Millisecond))
	sig = s.sample(core.DHE, shard)
	if sig.Batches != 0 || sig.IDs != 0 || sig.MeanNs != 0 {
		t.Fatalf("reset window not clamped to idle: %+v", sig)
	}
	if sig.EWMANs != 2e6 || sig.EWMABatch != 8 {
		t.Fatalf("reset window mutated EWMAs: %+v", sig)
	}
	// The anchors re-set on the clamped read, so the next real window folds
	// in cleanly.
	observe(reg, core.DHE, shard, 8, 1*time.Millisecond)
	sig = s.sample(core.DHE, shard)
	if sig.Batches != 1 || sig.EWMANs != 1.5e6 {
		t.Fatalf("post-reset window = %+v, want 1 batch pulling EWMA to 1.5e6", sig)
	}
}

func TestPlannerSwapsOnObservedCrossover(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, err := build(0, core.LinearScanBatched)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.1, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim,
		Build: build, Shards: oneShard(sw),
		Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}

	// Feed observed signals that invert the analytic prior for this tiny
	// table: the scan measured catastrophically slow, DHE fast at the same
	// batch size. The model must follow the measurements.
	shard := ShardLabel("t", 0)
	for i := 0; i < 4; i++ {
		observe(reg, core.LinearScanBatched, shard, 8, 80*time.Millisecond)
		observe(reg, core.DHE, shard, 8, 100*time.Microsecond)
		observe(reg, core.CircuitORAM, shard, 8, 50*time.Millisecond)
	}
	ds := p.ReplanNow()
	if len(ds) != 1 {
		t.Fatalf("got %d decisions, want 1", len(ds))
	}
	d := ds[0]
	if !d.Swapped || d.Chosen != core.DHE {
		t.Fatalf("decision = %+v, want swap to DHE", d)
	}
	if d.Shard != 0 || !d.Observed {
		t.Fatalf("decision = %+v, want shard 0 with observed incumbent", d)
	}
	if got := sw.Technique(); got != core.DHE {
		t.Fatalf("replica serves %v after swap, want DHE", got)
	}
	if cur, _ := p.Current("t"); cur != core.DHE {
		t.Fatalf("planner current = %v, want DHE", cur)
	}
	if _, err := sw.Generate([]uint64{1, 2, 3}); err != nil {
		t.Fatalf("post-swap Generate: %v", err)
	}
}

// TestPlannerShardsDivergeAndSwapIndependently is the tentpole contract:
// two shards of one table, fed opposite observed signals, converge to
// different techniques in a single re-plan pass, and the mixed state is
// visible through ShardTechniques while Current refuses to flatten it.
func TestPlannerShardsDivergeAndSwapIndependently(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	sws := make([]*Swappable, 2)
	for i := range sws {
		g, err := build(i, core.LinearScanBatched)
		if err != nil {
			t.Fatal(err)
		}
		sws[i] = NewSwappable(g)
	}
	p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.1, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: build,
		Shards:  [][]*Swappable{{sws[0]}, {sws[1]}},
		Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}

	// Shard 0's scan measured catastrophically slow with DHE fast; shard 1's
	// scan measured fast. One pass must swap shard 0 and keep shard 1.
	s0, s1 := ShardLabel("t", 0), ShardLabel("t", 1)
	for i := 0; i < 4; i++ {
		observe(reg, core.LinearScanBatched, s0, 8, 80*time.Millisecond)
		observe(reg, core.DHE, s0, 8, 100*time.Microsecond)
		observe(reg, core.LinearScanBatched, s1, 8, 50*time.Microsecond)
	}
	ds := p.ReplanNow()
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2 (one per shard)", len(ds))
	}
	byShard := map[int]Decision{}
	for _, d := range ds {
		byShard[d.Shard] = d
	}
	if d := byShard[0]; !d.Swapped || d.Chosen != core.DHE {
		t.Fatalf("shard 0 decision = %+v, want swap to DHE", d)
	}
	if d := byShard[1]; d.Swapped || d.Chosen != core.LinearScanBatched {
		t.Fatalf("shard 1 decision = %+v, want held scanb", d)
	}
	if got := sws[0].Technique(); got != core.DHE {
		t.Fatalf("shard 0 replica serves %v, want DHE", got)
	}
	if got := sws[1].Technique(); got != core.LinearScanBatched {
		t.Fatalf("shard 1 replica serves %v, want scanb", got)
	}
	techs, err := p.ShardTechniques("t")
	if err != nil {
		t.Fatal(err)
	}
	if techs[0] != core.DHE || techs[1] != core.LinearScanBatched {
		t.Fatalf("ShardTechniques = %v, want [dhe scanb]", techs)
	}
	if _, err := p.Current("t"); err == nil {
		t.Fatal("Current flattened a mixed per-shard plan without error")
	}
	// Shard-labeled metrics reflect the split.
	a0 := reg.Gauge("planner_active_technique", obs.LabelTable, "t", obs.LabelShard, "0").Value()
	a1 := reg.Gauge("planner_active_technique", obs.LabelTable, "t", obs.LabelShard, "1").Value()
	if a0 != int64(core.DHE) || a1 != int64(core.LinearScanBatched) {
		t.Fatalf("planner_active_technique{shard} = %d/%d, want dhe/scanb", a0, a1)
	}
}

func TestForceSwapShardLeavesSiblings(t *testing.T) {
	reg := obs.NewRegistry()
	build := buildFor(256, 8, 1, reg)
	sws := make([]*Swappable, 2)
	for i := range sws {
		g, _ := build(i, core.LinearScanBatched)
		sws[i] = NewSwappable(g)
	}
	p := New(Config{Reg: reg})
	if err := p.Manage(Table{
		Name: "t", Rows: 256, Dim: 8, Build: build,
		Shards:  [][]*Swappable{{sws[0]}, {sws[1]}},
		Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSwapShard("t", 1, core.DHE); err != nil {
		t.Fatal(err)
	}
	if got := sws[0].Technique(); got != core.LinearScanBatched {
		t.Fatalf("untouched shard 0 serves %v, want scanb", got)
	}
	if got := sws[1].Technique(); got != core.DHE {
		t.Fatalf("swapped shard 1 serves %v, want dhe", got)
	}
	if err := p.ForceSwapShard("t", 5, core.DHE); err == nil {
		t.Fatal("ForceSwapShard on missing shard did not error")
	}
	if err := p.ForceSwapShard("nope", 0, core.DHE); err == nil {
		t.Fatal("ForceSwapShard on unknown table did not error")
	}
}

func TestPlannerHysteresisHoldsIncumbent(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, _ := build(0, core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.5, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: build,
		Shards: oneShard(sw), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	// DHE measured only marginally faster: inside the 50% hysteresis band.
	shard := ShardLabel("t", 0)
	observe(reg, core.LinearScanBatched, shard, 8, 1000*time.Microsecond)
	observe(reg, core.DHE, shard, 8, 900*time.Microsecond)
	observe(reg, core.CircuitORAM, shard, 8, 5000*time.Microsecond)
	d := p.ReplanNow()[0]
	if d.Swapped {
		t.Fatalf("swapped inside hysteresis band: %+v", d)
	}
	if sw.Technique() != core.LinearScanBatched {
		t.Fatal("replica changed technique despite held decision")
	}
}

func TestPlannerDwellBlocksBackToBackSwaps(t *testing.T) {
	reg := obs.NewRegistry()
	rows, dim := 512, 16
	build := buildFor(rows, dim, 1, reg)
	scan, _ := build(0, core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, MinDwell: time.Hour, Hysteresis: 0.01, Alpha: 1})
	if err := p.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: build,
		Shards: oneShard(sw), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	shard := ShardLabel("t", 0)
	observe(reg, core.LinearScanBatched, shard, 8, 80*time.Millisecond)
	observe(reg, core.DHE, shard, 8, 100*time.Microsecond)
	observe(reg, core.CircuitORAM, shard, 8, 50*time.Millisecond)
	d := p.ReplanNow()[0]
	if d.Swapped || d.Reason != "dwell" {
		t.Fatalf("decision = %+v, want dwell hold (tables were registered just now)", d)
	}
}

func TestForceSwapBypassesModel(t *testing.T) {
	reg := obs.NewRegistry()
	build := buildFor(256, 8, 1, reg)
	scan, _ := build(0, core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg})
	if err := p.Manage(Table{
		Name: "t", Rows: 256, Dim: 8, Build: build,
		Shards: oneShard(sw), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSwap("t", core.CircuitORAM); err != nil {
		t.Fatal(err)
	}
	if sw.Technique() != core.CircuitORAM {
		t.Fatalf("replica serves %v, want circuit", sw.Technique())
	}
	if err := p.ForceSwap("nope", core.DHE); err == nil {
		t.Fatal("ForceSwap on unknown table did not error")
	}
	if got := reg.Counter("planner_swap_total").Value(); got != 1 {
		t.Fatalf("planner_swap_total = %d, want 1", got)
	}
}

func TestSwapBuildFailureKeepsIncumbent(t *testing.T) {
	reg := obs.NewRegistry()
	goodBuild := buildFor(256, 8, 1, reg)
	scan, _ := goodBuild(0, core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg})
	if err := p.Manage(Table{
		Name: "t", Rows: 256, Dim: 8,
		Build: func(int, core.Technique) (core.Generator, error) {
			return nil, fmt.Errorf("representation store offline")
		},
		Shards: oneShard(sw), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSwap("t", core.DHE); err == nil {
		t.Fatal("ForceSwap with failing Build did not error")
	}
	if sw.Technique() != core.LinearScanBatched {
		t.Fatal("failed swap still changed the serving generator")
	}
	if got := reg.Counter("planner_build_errors_total").Value(); got != 1 {
		t.Fatalf("planner_build_errors_total = %d, want 1", got)
	}
	if _, err := sw.Generate([]uint64{1}); err != nil {
		t.Fatalf("incumbent broken after failed swap: %v", err)
	}
}

func TestStartStopLoop(t *testing.T) {
	reg := obs.NewRegistry()
	build := buildFor(128, 8, 1, reg)
	scan, _ := build(0, core.LinearScanBatched)
	sw := NewSwappable(scan)
	p := New(Config{Reg: reg, Interval: time.Millisecond})
	if err := p.Manage(Table{
		Name: "t", Rows: 128, Dim: 8, Build: build,
		Shards: oneShard(sw), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	deadline := time.After(2 * time.Second)
	for reg.Counter("planner_replan_total").Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop never re-planned")
		case <-time.After(time.Millisecond):
		}
	}
	p.Stop()
	p.Stop() // idempotent
	select {
	case <-p.done:
	case <-time.After(2 * time.Second):
		t.Fatal("loop did not exit after Stop")
	}
}

// TestCostModelRoundTripSkipsWarmup proves the persisted cost model does
// what -plan-file promises: a planner that observed real signals exports
// them, and a *fresh* planner seeded from the saved file makes its first
// re-plan decision from those EWMAs (Decision.Observed, and the same swap
// the observing planner would make) instead of the analytic priors.
func TestCostModelRoundTripSkipsWarmup(t *testing.T) {
	rows, dim := 512, 16
	shard := ShardLabel("t", 0)

	// First life: observe the prior-inverting signals and export.
	regA := obs.NewRegistry()
	pA := New(Config{Reg: regA, MinDwell: time.Hour, Alpha: 1})
	buildA := buildFor(rows, dim, 1, regA)
	scanA, _ := buildA(0, core.LinearScanBatched)
	if err := pA.Manage(Table{
		Name: "t", Rows: rows, Dim: dim, Build: buildA,
		Shards: oneShard(NewSwappable(scanA)), Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}
	observe(regA, core.LinearScanBatched, shard, 8, 80*time.Millisecond)
	observe(regA, core.DHE, shard, 8, 100*time.Microsecond)
	pA.ReplanNow() // folds the window into the sampler EWMAs (dwell blocks the swap)

	m := pA.ExportCostModel()
	if len(m.Entries) != 2 {
		t.Fatalf("exported %d streams, want 2 (observed scanb + dhe): %+v", len(m.Entries), m.Entries)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := profile.SaveCostModelFile(path, m); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh planner + registry with zero traffic. Unseeded, its
	// first decision runs on analytic priors (Observed=false, no swap for
	// this tiny table); seeded from the file, the first decision predicts
	// from the persisted EWMAs and swaps immediately.
	fresh := func(seeded bool) Decision {
		reg := obs.NewRegistry()
		p := New(Config{Reg: reg, MinDwell: time.Nanosecond, Hysteresis: 0.1, Alpha: 1})
		build := buildFor(rows, dim, 1, reg)
		scan, _ := build(0, core.LinearScanBatched)
		if err := p.Manage(Table{
			Name: "t", Rows: rows, Dim: dim, Build: build,
			Shards: oneShard(NewSwappable(scan)), Initial: core.LinearScanBatched,
		}); err != nil {
			t.Fatal(err)
		}
		if seeded {
			loaded, installed, err := profile.InstallCostModelFile(path, reg)
			if err != nil || !installed {
				t.Fatalf("InstallCostModelFile: installed=%v err=%v", installed, err)
			}
			p.SeedCostModel(loaded)
		}
		return p.ReplanNow()[0]
	}

	if d := fresh(false); d.Observed || d.Swapped {
		t.Fatalf("unseeded cold start decision = %+v, want analytic-prior warmup (no observation, no swap)", d)
	}
	d := fresh(true)
	if !d.Observed {
		t.Fatalf("seeded first decision = %+v, want Observed (persisted EWMAs in effect)", d)
	}
	if !d.Swapped || d.Chosen != core.DHE {
		t.Fatalf("seeded first decision = %+v, want immediate swap to DHE from persisted crossover", d)
	}
}
