// Package planner is the adaptive hybrid technique planner: the online,
// profile-driven generalization of the paper's static §IV-D dual scheme.
// Where the dual picks scan-vs-DHE per table once, from size thresholds
// fixed at deployment, the planner keeps re-fitting the scan/ORAM/DHE
// crossover model from live signals — table shape, the aggregate batch
// sizes the serving layer is actually producing, and per-technique latency
// EWMAs sampled from internal/obs — and hot-swaps a table's generator
// behind the serving backends when the model says another technique is now
// cheaper. Production tables drift in size and skew; the planner follows.
//
// Plans are shard-granular (v2). Under consistent routing
// (serving.RouteShard) each shard of a table sees its own key population
// and batch-size mix, so one technique per table is a compromise: a shard
// soaking large coalesced batches wants DHE while a sibling trickling
// single-row lookups wants the scan or ORAM. The planner therefore keys
// its EWMAs, crossover model, decisions and metrics per (table, shard):
// replicas of the *same* shard still swap all-or-nothing (a shard split
// across techniques would serve inconsistently), while different shards
// plan and swap independently and concurrently. The fitted cost model can
// be exported and persisted (profile.CostModel) so a restart warms from
// yesterday's observed curves instead of the analytic priors.
//
// Security (§V-B): every input to a plan decision is public. Rows, dim
// and candidate set are deployment configuration; the shard label names a
// replica group (topology, fixed at deployment); batch-size aggregates
// and latencies are observable by the adversary already and are recorded
// by instrumentation that never sees an id (core.InstrumentShard counts
// and clocks batches, nothing else). Technique selection and swap *timing*
// therefore leak nothing about individual ids — per shard exactly as per
// table, because a request's shard is a function of its public routing
// key, never of the ids inside it. The invariant is enforced two ways:
// statically by obliviouslint (the `plan` fixture flags secret-indexed
// plan tables, including the per-shard variant) and dynamically by the
// leakcheck "planner" roster target, which replays the adversarial panel
// across an *asymmetric* per-shard swap boundary (one shard on scan, its
// sibling hot-swapped to DHE) and demands trace equality.
//
// The swap itself is a prepare → install → drain lifecycle (Swappable):
// fresh representations are built off the serving path, published with one
// atomic pointer swap, and the old generator is handed back only after
// every in-flight batch on it has finished — no request is ever dropped
// or served by a torn-down representation.
package planner

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"secemb/internal/core"
	"secemb/internal/obs"
	"secemb/internal/profile"
)

// DefaultCandidates is the technique menu the planner chooses from: the
// batched scan for small tables, Circuit ORAM for big-table/small-batch,
// DHE for big-table/large-batch — the three regimes of §IV.
func DefaultCandidates() []core.Technique {
	return []core.Technique{core.LinearScanBatched, core.CircuitORAM, core.DHE}
}

// ShardLabel renders the canonical shard label for a managed table's
// shard: the string generators built for that shard must carry as
// core.Options.Shard so their latencies feed the shard's own EWMA stream.
func ShardLabel(table string, shard int) string {
	return table + "/" + strconv.Itoa(shard)
}

// Config shapes a Planner.
type Config struct {
	// Interval is the sampling/re-plan period of Start's background loop
	// (0 → 10s). ReplanNow ignores it.
	Interval time.Duration
	// Hysteresis is the minimum predicted relative improvement before the
	// planner swaps (0 → 0.2): a candidate must beat the incumbent's
	// predicted per-id cost by this fraction. Swaps cost a representation
	// rebuild, so marginal wins are not worth flapping for.
	Hysteresis float64
	// MinDwell is the minimum time between swaps of one shard (0 → 30s):
	// even a model that flips every window cannot thrash the backends.
	// Forced swaps (ForceSwap/ForceSwapShard) ignore it.
	MinDwell time.Duration
	// Alpha is the EWMA smoothing factor for sampled signals (0 → 0.3).
	Alpha float64
	// Candidates is the technique menu (nil → DefaultCandidates).
	Candidates []core.Technique
	// Reg receives the planner_* metrics and is the registry the sampler
	// reads core_generate_* aggregates from. The managed generators must
	// be instrumented into the same registry (core.Options.Obs) — with
	// core.Options.Shard set to the shard's ShardLabel — for per-shard
	// observed signals to flow; without it the planner still works, from
	// analytic priors alone.
	Reg *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.2
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 30 * time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if len(c.Candidates) == 0 {
		c.Candidates = DefaultCandidates()
	}
	return c
}

// Table declares one managed embedding table: its public shape, how to
// build a fresh generator for any candidate technique, and the shard→swap
// point assignment its serving replicas generate through.
type Table struct {
	// Name labels the table in metrics and decisions.
	Name string
	// Rows and Dim are the table's public shape.
	Rows, Dim int
	// Build constructs one fresh replica representation of tech for the
	// given shard index. It runs off the serving path (prepare phase), so
	// it may be slow; serving continues on the incumbent meanwhile. Build
	// generators with the planner's registry and the shard's label
	// (core.Options{Obs: reg, Shard: ShardLabel(name, shard)}) so their
	// latencies feed that shard's next re-plan.
	Build func(shard int, tech core.Technique) (core.Generator, error)
	// Shards is the shard→replica assignment: Shards[i] holds the swap
	// points of shard i's replicas (serving.Group.ShardBackends exposes
	// the matching backend assignment). Replicas of one shard swap
	// all-or-nothing; different shards plan and swap independently.
	Shards [][]*Swappable
	// Initial is the technique every shard starts on.
	Initial core.Technique
}

// shardState is the planner's per-shard plan: the unit of decision-making
// and swapping. Its mutex serializes swaps of the shard and guards
// current/lastSwap; different shards' swaps run concurrently.
type shardState struct {
	idx      int
	label    string
	replicas []*Swappable

	mu       sync.Mutex
	current  core.Technique
	lastSwap time.Time

	gActive    *obs.Gauge
	gMeanBatch *obs.Gauge
	cReplan    *obs.Counter
}

// managedTable is the planner's per-table state: shared shape plus one
// shardState per shard.
type managedTable struct {
	Table
	shards []*shardState
}

// Decision records one re-plan pass over one shard of one table.
type Decision struct {
	Table string
	// Shard is the shard index the decision applies to.
	Shard   int
	Current core.Technique
	Chosen  core.Technique
	// PerIDNs is the predicted per-id cost of every candidate at the
	// shard's current operating point.
	PerIDNs map[core.Technique]float64
	// MeanBatch is the smoothed aggregate batch size the prediction used.
	MeanBatch float64
	// Observed reports whether the incumbent's prediction came from a
	// measured (or persisted) EWMA rather than the analytic prior — false
	// exactly during the cold-start warmup a persisted cost model skips.
	Observed bool
	// Swapped reports whether the pass installed a new technique; Reason
	// explains a kept incumbent ("within hysteresis", "dwell", …).
	Swapped bool
	Reason  string
}

// Planner owns the re-plan loop over a set of managed tables.
type Planner struct {
	cfg     Config
	sampler *sampler

	mu     sync.Mutex // guards tables registry + sampler
	tables []*managedTable

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mReplan    *obs.Counter
	mSwap      *obs.Counter
	mBuildErr  *obs.Counter
	mPrepareNs *obs.Histogram
}

// New builds a planner; call Manage to register tables, then Start (or
// drive passes manually with ReplanNow).
func New(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	return &Planner{
		cfg:        cfg,
		sampler:    newSampler(cfg.Reg, cfg.Alpha),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		mReplan:    cfg.Reg.Counter("planner_replan_total"),
		mSwap:      cfg.Reg.Counter("planner_swap_total"),
		mBuildErr:  cfg.Reg.Counter("planner_build_errors_total"),
		mPrepareNs: cfg.Reg.Histogram("planner_prepare_ns"),
	}
}

// Manage registers a table. Not safe to call after Start.
func (p *Planner) Manage(t Table) error {
	if t.Name == "" || t.Build == nil || len(t.Shards) == 0 {
		return fmt.Errorf("planner: table needs a name, a Build func and ≥1 shard")
	}
	if t.Rows < 2 || t.Dim < 1 {
		return fmt.Errorf("planner: table %q has invalid shape %dx%d", t.Name, t.Rows, t.Dim)
	}
	mt := &managedTable{Table: t}
	for i, replicas := range t.Shards {
		if len(replicas) == 0 {
			return fmt.Errorf("planner: table %q shard %d has no replicas", t.Name, i)
		}
		shard := strconv.Itoa(i)
		ss := &shardState{
			idx:        i,
			label:      ShardLabel(t.Name, i),
			replicas:   replicas,
			current:    t.Initial,
			lastSwap:   time.Now(),
			gActive:    p.cfg.Reg.Gauge("planner_active_technique", obs.LabelTable, t.Name, obs.LabelShard, shard),
			gMeanBatch: p.cfg.Reg.Gauge("planner_mean_batch_milli", obs.LabelTable, t.Name, obs.LabelShard, shard),
			cReplan:    p.cfg.Reg.Counter("planner_replan_total", obs.LabelTable, t.Name, obs.LabelShard, shard),
		}
		ss.gActive.Set(int64(t.Initial))
		mt.shards = append(mt.shards, ss)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tables = append(p.tables, mt)
	return nil
}

// Start launches the background re-plan loop at the configured interval.
func (p *Planner) Start() {
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.ReplanNow()
			}
		}
	}()
}

// Stop halts the background loop (idempotent; a never-started planner
// stops cleanly too). In-progress swaps complete.
func (p *Planner) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// ReplanNow runs one full pass: sample every shard's signals, refit,
// decide, and swap where the model says so. Decisions for different
// shards execute concurrently — one shard's multi-second representation
// build never delays a sibling's swap — while replicas of a single shard
// still swap together. Safe to call concurrently with the background
// loop; the sampling phase serializes on the planner lock, and each
// shard's swap serializes on its own lock.
func (p *Planner) ReplanNow() []Decision {
	p.mReplan.Inc()

	// Sample under the planner lock: the sampler is single-threaded, and
	// one coherent window per pass keeps every shard's decision reading
	// the same snapshot.
	p.mu.Lock()
	tables := append([]*managedTable(nil), p.tables...)
	sigs := map[string]map[core.Technique]Signal{}
	for _, t := range tables {
		for _, ss := range t.shards {
			m := make(map[core.Technique]Signal, len(p.cfg.Candidates))
			for _, tech := range p.cfg.Candidates {
				m[tech] = p.sampler.sample(tech, ss.label)
			}
			sigs[ss.label] = m
		}
	}
	p.mu.Unlock()

	// Decide + swap, one goroutine per shard: different shards of one
	// table (and of different tables) drift independently, so their
	// prepare→install→drain lifecycles run concurrently.
	type slot struct {
		t  *managedTable
		ss *shardState
	}
	var slots []slot
	for _, t := range tables {
		for _, ss := range t.shards {
			slots = append(slots, slot{t, ss})
		}
	}
	decisions := make([]Decision, len(slots))
	var wg sync.WaitGroup
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s slot) {
			defer wg.Done()
			decisions[i] = p.replanShard(s.t, s.ss, sigs[s.ss.label])
		}(i, s)
	}
	wg.Wait()
	return decisions
}

// replanShard decides (and possibly swaps) one shard of one table.
func (p *Planner) replanShard(t *managedTable, ss *shardState, sigs map[core.Technique]Signal) Decision {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.cReplan.Inc()

	// The operating point: the smoothed batch size of whatever technique
	// is serving this shard now. With no traffic yet, predict at batch 1
	// (the most conservative point for DHE's amortization).
	cur := sigs[ss.current]
	batch := cur.EWMABatch
	if batch < 1 {
		batch = 1
	}
	ss.gMeanBatch.Set(int64(batch * 1000))

	d := Decision{
		Table:     t.Name,
		Shard:     ss.idx,
		Current:   ss.current,
		Chosen:    ss.current,
		MeanBatch: batch,
		Observed:  cur.Observed(),
		PerIDNs:   make(map[core.Technique]float64, len(p.cfg.Candidates)),
	}
	shard := strconv.Itoa(ss.idx)
	best, bestCost := ss.current, predictPerID(ss.current, t.Rows, t.Dim, batch, cur)
	for _, tech := range p.cfg.Candidates {
		cost := predictPerID(tech, t.Rows, t.Dim, batch, sigs[tech])
		d.PerIDNs[tech] = cost
		p.cfg.Reg.Gauge("planner_predicted_perid_ns",
			obs.LabelTable, t.Name, obs.LabelShard, shard, obs.LabelTech, tech.Key()).Set(int64(cost))
		if cost < bestCost {
			best, bestCost = tech, cost
		}
	}
	if best == ss.current {
		d.Reason = "incumbent cheapest"
		return d
	}
	incumbent := d.PerIDNs[ss.current]
	if incumbent > 0 && (incumbent-bestCost)/incumbent < p.cfg.Hysteresis {
		d.Reason = fmt.Sprintf("%s within hysteresis of %s", best.Key(), ss.current.Key())
		return d
	}
	if time.Since(ss.lastSwap) < p.cfg.MinDwell {
		d.Reason = "dwell"
		return d
	}
	if err := p.swapShard(t, ss, best); err != nil {
		d.Reason = fmt.Sprintf("swap failed: %v", err)
		return d
	}
	d.Chosen, d.Swapped, d.Reason = best, true, "model crossover"
	return d
}

// ForceSwap installs tech on every shard of the named table immediately,
// bypassing the model, hysteresis and dwell — the lever for tests, the
// leakcheck audit, and operational overrides. The lifecycle per shard is
// identical to an organic re-plan swap: prepare fresh replicas, install
// atomically, drain the old.
func (p *Planner) ForceSwap(table string, tech core.Technique) error {
	mt, err := p.lookup(table)
	if err != nil {
		return err
	}
	for _, ss := range mt.shards {
		ss.mu.Lock()
		err := p.swapShard(mt, ss, tech)
		ss.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ForceSwapShard installs tech on one shard of the named table — the
// asymmetric-swap lever: sibling shards keep serving their own plans.
func (p *Planner) ForceSwapShard(table string, shard int, tech core.Technique) error {
	mt, err := p.lookup(table)
	if err != nil {
		return err
	}
	if shard < 0 || shard >= len(mt.shards) {
		return fmt.Errorf("planner: table %q has no shard %d", table, shard)
	}
	ss := mt.shards[shard]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return p.swapShard(mt, ss, tech)
}

// Current reports the named table's active technique when every shard
// agrees on one; with shards on different plans it errors — use
// ShardTechniques for the per-shard view.
func (p *Planner) Current(table string) (core.Technique, error) {
	techs, err := p.ShardTechniques(table)
	if err != nil {
		return 0, err
	}
	for _, t := range techs[1:] {
		if t != techs[0] {
			return 0, fmt.Errorf("planner: table %q shards run mixed techniques %v", table, techs)
		}
	}
	return techs[0], nil
}

// ShardTechniques reports the named table's active technique per shard.
func (p *Planner) ShardTechniques(table string) ([]core.Technique, error) {
	mt, err := p.lookup(table)
	if err != nil {
		return nil, err
	}
	techs := make([]core.Technique, len(mt.shards))
	for i, ss := range mt.shards {
		ss.mu.Lock()
		techs[i] = ss.current
		ss.mu.Unlock()
	}
	return techs, nil
}

func (p *Planner) lookup(table string) (*managedTable, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.tables {
		if t.Name == table {
			return t, nil
		}
	}
	return nil, fmt.Errorf("planner: unknown table %q", table)
}

// swapShard runs the prepare → install → drain lifecycle for every
// replica of one shard. Caller holds ss.mu. On a build failure nothing is
// installed: the incumbent keeps serving and the error is surfaced (and
// counted).
func (p *Planner) swapShard(t *managedTable, ss *shardState, tech core.Technique) error {
	start := time.Now()
	// Prepare: build every replica's fresh representation up front, off
	// the serving path. All-or-nothing per shard — a half-swapped replica
	// set would split one shard across techniques.
	fresh := make([]core.Generator, len(ss.replicas))
	for i := range fresh {
		g, err := t.Build(ss.idx, tech)
		if err != nil {
			p.mBuildErr.Inc()
			return fmt.Errorf("planner: building %s replica %d for table %q shard %d: %w",
				tech.Key(), i, t.Name, ss.idx, err)
		}
		fresh[i] = g
	}
	p.mPrepareNs.ObserveDuration(time.Since(start))
	// Install + drain, replica by replica: each Install returns only when
	// the replica's in-flight batches on the old generator have finished.
	for i, sw := range ss.replicas {
		sw.Install(fresh[i])
	}
	ss.current = tech
	ss.lastSwap = time.Now()
	ss.gActive.Set(int64(tech))
	p.mSwap.Inc()
	p.cfg.Reg.Counter("planner_swap_tech_total",
		obs.LabelTable, t.Name, obs.LabelShard, strconv.Itoa(ss.idx), obs.LabelTech, tech.Key()).Inc()
	return nil
}

// ExportCostModel snapshots every fitted EWMA stream — the observed
// per-(shard, technique) latency/batch curves — stamped with this
// machine's fingerprint, for persisting via profile.SaveCostModelFile.
// Entries are sorted for deterministic output.
func (p *Planner) ExportCostModel() profile.CostModel {
	p.mu.Lock()
	defer p.mu.Unlock()
	var entries []profile.CostEntry
	for k, st := range p.sampler.state {
		if !st.sig.Observed() {
			continue
		}
		entries = append(entries, profile.CostEntry{
			Shard:     k.shard,
			Tech:      k.tech.Key(),
			EWMANs:    st.sig.EWMANs,
			EWMABatch: st.sig.EWMABatch,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Shard != entries[j].Shard {
			return entries[i].Shard < entries[j].Shard
		}
		return entries[i].Tech < entries[j].Tech
	})
	return profile.NewCostModel(entries)
}

// SeedCostModel pre-loads persisted EWMAs into the sampler so the first
// re-plan decision predicts from yesterday's observed curves instead of
// the analytic priors. Call before Start; the caller is responsible for
// fingerprint discipline (profile.InstallCostModelFile skips mismatched
// files). Entries naming unknown techniques are ignored.
func (p *Planner) SeedCostModel(m profile.CostModel) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range m.Entries {
		tech, err := core.ParseTechnique(e.Tech)
		if err != nil {
			continue
		}
		p.sampler.seed(tech, e.Shard, e.EWMANs, e.EWMABatch)
	}
}
