// Package planner is the adaptive hybrid technique planner: the online,
// profile-driven generalization of the paper's static §IV-D dual scheme.
// Where the dual picks scan-vs-DHE per table once, from size thresholds
// fixed at deployment, the planner keeps re-fitting the scan/ORAM/DHE
// crossover model from live signals — table shape, the aggregate batch
// sizes the serving layer is actually producing, and per-technique latency
// EWMAs sampled from internal/obs — and hot-swaps a table's generator
// behind the serving backends when the model says another technique is now
// cheaper. Production tables drift in size and skew; the planner follows.
//
// Security (§V-B): every input to a plan decision is public. Rows, dim
// and candidate set are deployment configuration; batch-size aggregates
// and latencies are observable by the adversary already and are recorded
// by instrumentation that never sees an id (core.Instrument counts and
// clocks batches, nothing else). Technique selection and swap *timing*
// therefore leak nothing about individual ids — an invariant enforced two
// ways: statically by obliviouslint (the `plan` fixture flags a
// secret-indexed plan table) and dynamically by the leakcheck "planner"
// roster target, which replays the adversarial panel across a forced
// re-plan boundary and demands trace equality.
//
// The swap itself is a prepare → install → drain lifecycle (Swappable):
// fresh representations are built off the serving path, published with one
// atomic pointer swap, and the old generator is handed back only after
// every in-flight batch on it has finished — no request is ever dropped
// or served by a torn-down representation.
package planner

import (
	"fmt"
	"sync"
	"time"

	"secemb/internal/core"
	"secemb/internal/obs"
)

// DefaultCandidates is the technique menu the planner chooses from: the
// batched scan for small tables, Circuit ORAM for big-table/small-batch,
// DHE for big-table/large-batch — the three regimes of §IV.
func DefaultCandidates() []core.Technique {
	return []core.Technique{core.LinearScanBatched, core.CircuitORAM, core.DHE}
}

// Config shapes a Planner.
type Config struct {
	// Interval is the sampling/re-plan period of Start's background loop
	// (0 → 10s). ReplanNow ignores it.
	Interval time.Duration
	// Hysteresis is the minimum predicted relative improvement before the
	// planner swaps (0 → 0.2): a candidate must beat the incumbent's
	// predicted per-id cost by this fraction. Swaps cost a representation
	// rebuild, so marginal wins are not worth flapping for.
	Hysteresis float64
	// MinDwell is the minimum time between swaps of one table (0 → 30s):
	// even a model that flips every window cannot thrash the backends.
	// Forced swaps (ForceSwap) ignore it.
	MinDwell time.Duration
	// Alpha is the EWMA smoothing factor for sampled signals (0 → 0.3).
	Alpha float64
	// Candidates is the technique menu (nil → DefaultCandidates).
	Candidates []core.Technique
	// Reg receives the planner_* metrics and is the registry the sampler
	// reads core_generate_* aggregates from. The managed generators must
	// be instrumented into the same registry (core.Options.Obs) for
	// observed signals to flow; without it the planner still works, from
	// analytic priors alone.
	Reg *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.2
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 30 * time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if len(c.Candidates) == 0 {
		c.Candidates = DefaultCandidates()
	}
	return c
}

// Table declares one managed embedding table: its public shape, how to
// build a fresh generator for any candidate technique, and the swap points
// its serving replicas generate through.
type Table struct {
	// Name labels the table in metrics and decisions.
	Name string
	// Rows and Dim are the table's public shape.
	Rows, Dim int
	// Build constructs one fresh replica representation for the technique.
	// It runs on the planner goroutine (prepare phase), so it may be slow;
	// serving continues on the incumbent meanwhile. Build generators with
	// the planner's registry (core.Options.Obs) so their latencies feed
	// the next re-plan.
	Build func(tech core.Technique) (core.Generator, error)
	// Replicas are the swap points serving traffic flows through — one per
	// backend replica. All replicas swap together, in sequence.
	Replicas []*Swappable
	// Initial is the technique the replicas start on.
	Initial core.Technique
}

// managedTable is the planner's per-table state.
type managedTable struct {
	Table
	current  core.Technique
	lastSwap time.Time

	gActive    *obs.Gauge
	gMeanBatch *obs.Gauge
}

// Decision records one re-plan pass over one table.
type Decision struct {
	Table   string
	Current core.Technique
	Chosen  core.Technique
	// PerIDNs is the predicted per-id cost of every candidate at the
	// table's current operating point.
	PerIDNs map[core.Technique]float64
	// MeanBatch is the smoothed aggregate batch size the prediction used.
	MeanBatch float64
	// Swapped reports whether the pass installed a new technique; Reason
	// explains a kept incumbent ("within hysteresis", "dwell", …).
	Swapped bool
	Reason  string
}

// Planner owns the re-plan loop over a set of managed tables.
type Planner struct {
	cfg     Config
	sampler *sampler

	mu     sync.Mutex
	tables []*managedTable

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mReplan    *obs.Counter
	mSwap      *obs.Counter
	mBuildErr  *obs.Counter
	mPrepareNs *obs.Histogram
}

// New builds a planner; call Manage to register tables, then Start (or
// drive passes manually with ReplanNow).
func New(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	return &Planner{
		cfg:        cfg,
		sampler:    newSampler(cfg.Reg, cfg.Alpha),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		mReplan:    cfg.Reg.Counter("planner_replan_total"),
		mSwap:      cfg.Reg.Counter("planner_swap_total"),
		mBuildErr:  cfg.Reg.Counter("planner_build_errors_total"),
		mPrepareNs: cfg.Reg.Histogram("planner_prepare_ns"),
	}
}

// Manage registers a table. Not safe to call after Start.
func (p *Planner) Manage(t Table) error {
	if t.Name == "" || t.Build == nil || len(t.Replicas) == 0 {
		return fmt.Errorf("planner: table needs a name, a Build func and ≥1 replica")
	}
	if t.Rows < 2 || t.Dim < 1 {
		return fmt.Errorf("planner: table %q has invalid shape %dx%d", t.Name, t.Rows, t.Dim)
	}
	mt := &managedTable{
		Table:      t,
		current:    t.Initial,
		lastSwap:   time.Now(),
		gActive:    p.cfg.Reg.Gauge("planner_active_technique", "table", t.Name),
		gMeanBatch: p.cfg.Reg.Gauge("planner_mean_batch_milli", "table", t.Name),
	}
	mt.gActive.Set(int64(t.Initial))
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tables = append(p.tables, mt)
	return nil
}

// Start launches the background re-plan loop at the configured interval.
func (p *Planner) Start() {
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.ReplanNow()
			}
		}
	}()
}

// Stop halts the background loop (idempotent; a never-started planner
// stops cleanly too). In-progress swaps complete.
func (p *Planner) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// ReplanNow runs one full pass: sample signals, refit, decide, and swap
// where the model says so. Safe to call concurrently with the background
// loop; passes serialize on the planner lock.
func (p *Planner) ReplanNow() []Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mReplan.Inc()

	// One signal sample per candidate technique per pass: the aggregates
	// are global per technique, not per table, so sample once and share.
	sigs := map[core.Technique]Signal{}
	for _, tech := range p.cfg.Candidates {
		sigs[tech] = p.sampler.sample(tech)
	}

	decisions := make([]Decision, 0, len(p.tables))
	for _, t := range p.tables {
		decisions = append(decisions, p.replanTable(t, sigs))
	}
	return decisions
}

// replanTable decides (and possibly swaps) one table. Caller holds p.mu.
func (p *Planner) replanTable(t *managedTable, sigs map[core.Technique]Signal) Decision {
	// The operating point: the smoothed batch size of whatever technique
	// is serving now. With no traffic yet, predict at batch 1 (the most
	// conservative point for DHE's amortization).
	batch := sigs[t.current].EWMABatch
	if batch < 1 {
		batch = 1
	}
	t.gMeanBatch.Set(int64(batch * 1000))

	d := Decision{
		Table:     t.Name,
		Current:   t.current,
		Chosen:    t.current,
		MeanBatch: batch,
		PerIDNs:   make(map[core.Technique]float64, len(p.cfg.Candidates)),
	}
	best, bestCost := t.current, predictPerID(t.current, t.Rows, t.Dim, batch, sigs[t.current])
	for _, tech := range p.cfg.Candidates {
		cost := predictPerID(tech, t.Rows, t.Dim, batch, sigs[tech])
		d.PerIDNs[tech] = cost
		p.cfg.Reg.Gauge("planner_predicted_perid_ns", "table", t.Name, "tech", tech.Key()).Set(int64(cost))
		if cost < bestCost {
			best, bestCost = tech, cost
		}
	}
	if best == t.current {
		d.Reason = "incumbent cheapest"
		return d
	}
	incumbent := d.PerIDNs[t.current]
	if incumbent > 0 && (incumbent-bestCost)/incumbent < p.cfg.Hysteresis {
		d.Reason = fmt.Sprintf("%s within hysteresis of %s", best.Key(), t.current.Key())
		return d
	}
	if time.Since(t.lastSwap) < p.cfg.MinDwell {
		d.Reason = "dwell"
		return d
	}
	if err := p.swap(t, best); err != nil {
		d.Reason = fmt.Sprintf("swap failed: %v", err)
		return d
	}
	d.Chosen, d.Swapped, d.Reason = best, true, "model crossover"
	return d
}

// ForceSwap installs tech on the named table immediately, bypassing the
// model, hysteresis and dwell — the lever for tests, the leakcheck audit,
// and operational overrides. The lifecycle is identical to an organic
// re-plan swap: prepare fresh replicas, install atomically, drain the old.
func (p *Planner) ForceSwap(table string, tech core.Technique) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.tables {
		if t.Name == table {
			return p.swap(t, tech)
		}
	}
	return fmt.Errorf("planner: unknown table %q", table)
}

// Current reports the named table's active technique.
func (p *Planner) Current(table string) (core.Technique, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.tables {
		if t.Name == table {
			return t.current, nil
		}
	}
	return 0, fmt.Errorf("planner: unknown table %q", table)
}

// swap runs the prepare → install → drain lifecycle for every replica of
// t. Caller holds p.mu. On a build failure nothing is installed: the
// incumbent keeps serving and the error is surfaced (and counted).
func (p *Planner) swap(t *managedTable, tech core.Technique) error {
	start := time.Now()
	// Prepare: build every replica's fresh representation up front, off
	// the serving path. All-or-nothing — a half-swapped replica set would
	// split a table across techniques.
	fresh := make([]core.Generator, len(t.Replicas))
	for i := range fresh {
		g, err := t.Build(tech)
		if err != nil {
			p.mBuildErr.Inc()
			return fmt.Errorf("planner: building %s replica %d for table %q: %w", tech.Key(), i, t.Name, err)
		}
		fresh[i] = g
	}
	p.mPrepareNs.ObserveDuration(time.Since(start))
	// Install + drain, replica by replica: each Install returns only when
	// the replica's in-flight batches on the old generator have finished.
	for i, sw := range t.Replicas {
		sw.Install(fresh[i])
	}
	t.current = tech
	t.lastSwap = time.Now()
	t.gActive.Set(int64(tech))
	p.mSwap.Inc()
	p.cfg.Reg.Counter("planner_swap_tech_total", "table", t.Name, "tech", tech.Key()).Inc()
	return nil
}
