package planner

import (
	"secemb/internal/core"
	"secemb/internal/obs"
)

// Signal is one technique's observed service window: aggregate counts and
// latencies sampled from the obs registry between two planner passes.
//
// Every field is public in the threat model (§V-B): batch *sizes* and
// *latencies* are observable by the adversary anyway, and none of them is
// derived from individual ids — the instrumentation they come from
// (core.Instrument) records counts and clocks only. The planner never sees
// an id.
type Signal struct {
	// Batches and IDs are the window's Generate calls and total ids served.
	Batches int64
	IDs     int64
	// MeanBatch is IDs/Batches for the window (0 when idle).
	MeanBatch float64
	// MeanNs is the window's mean per-batch latency (0 when idle).
	MeanNs float64
	// EWMANs is the smoothed per-batch latency across windows; it survives
	// idle windows unchanged, so a technique that stops serving keeps its
	// last known cost until it is observed again.
	EWMANs float64
	// EWMABatch is the smoothed batch size paired with EWMANs — the
	// operating point the latency was observed at, which the model needs to
	// rescale costs to a different batch size.
	EWMABatch float64
}

// Observed reports whether the technique has ever been measured.
func (s Signal) Observed() bool { return s.EWMANs > 0 }

// sampler turns the monotonically increasing per-technique aggregates of
// core.Instrument (core_generate_total / core_generate_ids_total /
// core_generate_ns) into windowed deltas and EWMAs. One sampler belongs to
// one planner; it is not safe for concurrent use.
type sampler struct {
	reg   *obs.Registry
	alpha float64
	state map[core.Technique]*sampleState
}

type sampleState struct {
	calls, ids, sumNs int64 // last absolute readings
	sig               Signal
}

func newSampler(reg *obs.Registry, alpha float64) *sampler {
	return &sampler{reg: reg, alpha: alpha, state: map[core.Technique]*sampleState{}}
}

// sample reads the technique's aggregates, folds the delta since the last
// call into the EWMA, and returns the up-to-date signal.
func (s *sampler) sample(tech core.Technique) Signal {
	st, ok := s.state[tech]
	if !ok {
		st = &sampleState{}
		s.state[tech] = st
	}
	key := tech.Key()
	calls := s.reg.Counter("core_generate_total", "tech", key).Value()
	ids := s.reg.Counter("core_generate_ids_total", "tech", key).Value()
	sumNs := s.reg.Histogram("core_generate_ns", "tech", key).Sum()

	dCalls := calls - st.calls
	dIDs := ids - st.ids
	dSum := sumNs - st.sumNs
	st.calls, st.ids, st.sumNs = calls, ids, sumNs

	sig := st.sig
	sig.Batches, sig.IDs, sig.MeanBatch, sig.MeanNs = dCalls, dIDs, 0, 0
	if dCalls > 0 {
		sig.MeanBatch = float64(dIDs) / float64(dCalls)
		sig.MeanNs = float64(dSum) / float64(dCalls)
		if sig.EWMANs == 0 {
			sig.EWMANs = sig.MeanNs
			sig.EWMABatch = sig.MeanBatch
		} else {
			sig.EWMANs += s.alpha * (sig.MeanNs - sig.EWMANs)
			sig.EWMABatch += s.alpha * (sig.MeanBatch - sig.EWMABatch)
		}
	}
	st.sig = sig
	return sig
}
