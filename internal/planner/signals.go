package planner

import (
	"secemb/internal/core"
	"secemb/internal/obs"
)

// Signal is one technique's observed service window on one shard:
// aggregate counts and latencies sampled from the obs registry between two
// planner passes.
//
// Every field is public in the threat model (§V-B): batch *sizes* and
// *latencies* are observable by the adversary anyway, and none of them is
// derived from individual ids — the instrumentation they come from
// (core.InstrumentShard) records counts and clocks only. The planner never
// sees an id, and the shard label is deployment topology (which replica
// group a generator serves), not request data.
type Signal struct {
	// Batches and IDs are the window's Generate calls and total ids served.
	Batches int64
	IDs     int64
	// MeanBatch is IDs/Batches for the window (0 when idle).
	MeanBatch float64
	// MeanNs is the window's mean per-batch latency (0 when idle).
	MeanNs float64
	// EWMANs is the smoothed per-batch latency across windows; it survives
	// idle windows unchanged, so a technique that stops serving keeps its
	// last known cost until it is observed again.
	EWMANs float64
	// EWMABatch is the smoothed batch size paired with EWMANs — the
	// operating point the latency was observed at, which the model needs to
	// rescale costs to a different batch size.
	EWMABatch float64
}

// Observed reports whether the technique has ever been measured.
func (s Signal) Observed() bool { return s.EWMANs > 0 }

// sampleKey identifies one EWMA stream: a technique on a shard. The empty
// shard label is the table-wide aggregate stream (single-shard tables and
// pre-v2 callers).
type sampleKey struct {
	tech  core.Technique
	shard string
}

// sampler turns the monotonically increasing per-(technique, shard)
// aggregates of core.InstrumentShard (core_generate_total /
// core_generate_ids_total / core_generate_ns) into windowed deltas and
// EWMAs. One sampler belongs to one planner; callers serialize access
// (the planner samples under its own lock).
type sampler struct {
	reg   *obs.Registry
	alpha float64
	state map[sampleKey]*sampleState
}

type sampleState struct {
	calls, ids, sumNs int64 // last absolute readings
	sig               Signal
}

func newSampler(reg *obs.Registry, alpha float64) *sampler {
	return &sampler{reg: reg, alpha: alpha, state: map[sampleKey]*sampleState{}}
}

// metricLabels renders the label set one (technique, shard) stream reads.
func metricLabels(tech core.Technique, shard string) []string {
	if shard == "" {
		return []string{obs.LabelTech, tech.Key()}
	}
	return []string{obs.LabelTech, tech.Key(), obs.LabelShard, shard}
}

// sample reads the (technique, shard) aggregates, folds the delta since
// the last call into the EWMA, and returns the up-to-date signal.
func (s *sampler) sample(tech core.Technique, shard string) Signal {
	k := sampleKey{tech: tech, shard: shard}
	st, ok := s.state[k]
	if !ok {
		st = &sampleState{}
		s.state[k] = st
	}
	labels := metricLabels(tech, shard)
	calls := s.reg.Counter("core_generate_total", labels...).Value()
	ids := s.reg.Counter("core_generate_ids_total", labels...).Value()
	sumNs := s.reg.Histogram("core_generate_ns", labels...).Sum()

	dCalls := calls - st.calls
	dIDs := ids - st.ids
	dSum := sumNs - st.sumNs
	st.calls, st.ids, st.sumNs = calls, ids, sumNs
	// Counters can move backwards across a hot-swap: a rebuilt generator on
	// a fresh registry restarts its aggregates at zero, so the raw delta
	// goes negative. A negative window is meaningless (and would poison the
	// EWMA with negative latencies), so clamp it to idle — the absolute
	// readings above already re-anchored, and the next window is clean.
	if dCalls < 0 || dIDs < 0 || dSum < 0 {
		dCalls, dIDs, dSum = 0, 0, 0
	}

	sig := st.sig
	sig.Batches, sig.IDs, sig.MeanBatch, sig.MeanNs = dCalls, dIDs, 0, 0
	if dCalls > 0 {
		sig.MeanBatch = float64(dIDs) / float64(dCalls)
		sig.MeanNs = float64(dSum) / float64(dCalls)
		if sig.EWMANs == 0 {
			sig.EWMANs = sig.MeanNs
			sig.EWMABatch = sig.MeanBatch
		} else {
			sig.EWMANs += s.alpha * (sig.MeanNs - sig.EWMANs)
			sig.EWMABatch += s.alpha * (sig.MeanBatch - sig.EWMABatch)
		}
	}
	st.sig = sig
	return sig
}

// seed pre-loads one stream's EWMAs — the persisted-cost-model restore
// path. Absolute counter anchors stay zero: the first live window folds
// into the seeded EWMA instead of starting from the analytic prior.
func (s *sampler) seed(tech core.Technique, shard string, ewmaNs, ewmaBatch float64) {
	if ewmaNs <= 0 {
		return
	}
	k := sampleKey{tech: tech, shard: shard}
	st, ok := s.state[k]
	if !ok {
		st = &sampleState{}
		s.state[k] = st
	}
	st.sig.EWMANs = ewmaNs
	st.sig.EWMABatch = ewmaBatch
}

// signal reads a stream's current signal without sampling a new window.
func (s *sampler) signal(tech core.Technique, shard string) Signal {
	if st, ok := s.state[sampleKey{tech: tech, shard: shard}]; ok {
		return st.sig
	}
	return Signal{}
}
