package planner_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/obs"
	"secemb/internal/planner"
	"secemb/internal/serving"
	"secemb/internal/serving/backends"
	"secemb/internal/tensor"
)

// retireGuard wraps a generator displaced (or about to be displaced) by a
// swap: once retired, any further Generate is a stale-generator read — a
// request served by a representation the planner already handed back for
// release. Install's drain barrier promises that never happens.
type retireGuard struct {
	core.Generator
	retired atomic.Bool
	stale   *atomic.Int64
}

func (g *retireGuard) Generate(ids []uint64) (*tensor.Matrix, error) {
	if g.retired.Load() {
		g.stale.Add(1)
	}
	return g.Generator.Generate(ids)
}

// TestSwapUnderFire hammers a serving.Group with concurrent Predict
// traffic while the planner force-swaps scan→DHE→scan underneath it. The
// assertions are the swap lifecycle's whole contract: zero
// dropped/errored requests, and zero reads of a drained (retired)
// generator. Run under -race (the Makefile race target covers this
// package) it additionally proves the install path is data-race-free
// against in-flight Generates.
func TestSwapUnderFire(t *testing.T) {
	const (
		rows, dim = 256, 16
		replicas  = 2
		clients   = 8
		swaps     = 6
	)
	reg := obs.NewRegistry()
	var stale atomic.Int64
	var guardMu sync.Mutex
	var liveGuards []*retireGuard

	build := func(_ int, tech core.Technique) (core.Generator, error) {
		g, err := core.New(tech, rows, dim, core.Options{Seed: 7, Threads: 1, Obs: reg})
		if err != nil {
			return nil, err
		}
		wrapped := &retireGuard{Generator: g, stale: &stale}
		guardMu.Lock()
		liveGuards = append(liveGuards, wrapped)
		guardMu.Unlock()
		return wrapped, nil
	}

	sws := make([]*planner.Swappable, replicas)
	bes := make([]serving.Backend, replicas)
	shards := make([][]*planner.Swappable, replicas)
	for i := range sws {
		g, err := build(i, core.LinearScanBatched)
		if err != nil {
			t.Fatal(err)
		}
		sws[i] = planner.NewSwappable(g)
		bes[i] = backends.NewEmbedding(sws[i], 8)
		// One replica per shard, mirroring the group's default one-shard-
		// per-backend assignment; ForceSwap drives all shards, so the storm
		// still exercises install+drain on every replica concurrently with
		// traffic.
		shards[i] = []*planner.Swappable{sws[i]}
	}
	group := serving.NewGroup(bes, serving.GroupConfig{QueueDepth: 64})

	p := planner.New(planner.Config{Reg: reg})
	if err := p.Manage(planner.Table{
		Name: "fire", Rows: rows, Dim: dim, Build: build,
		Shards: shards, Initial: core.LinearScanBatched,
	}); err != nil {
		t.Fatal(err)
	}

	// Fire: concurrent clients predicting as fast as the group serves.
	stop := make(chan struct{})
	var served atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := group.Do(context.Background(), uint64(c), []uint64{uint64((c*31 + i) % rows)})
				if r.Err != nil {
					errs <- r.Err
					return
				}
				if m, ok := r.Value.(*tensor.Matrix); !ok || m.Rows != 1 || m.Cols != dim {
					errs <- r.Err
					return
				}
				served.Add(1)
			}
		}(c)
	}

	// Swap storm: scan→DHE→scan, retiring each displaced generation the
	// moment ForceSwap (install + drain on every replica) returns.
	for k := 0; k < swaps; k++ {
		tech := core.DHE
		if k%2 == 1 {
			tech = core.LinearScanBatched
		}
		guardMu.Lock()
		displaced := make([]*retireGuard, len(liveGuards))
		copy(displaced, liveGuards)
		liveGuards = liveGuards[:0]
		guardMu.Unlock()
		if err := p.ForceSwap("fire", tech); err != nil {
			close(stop)
			t.Fatalf("swap %d to %v: %v", k, tech, err)
		}
		// ForceSwap returned ⇒ every replica drained its old generator.
		for _, g := range displaced {
			g.retired.Store(true)
		}
		time.Sleep(5 * time.Millisecond) // let traffic flow on the new generation
	}
	close(stop)
	wg.Wait()
	group.Close()

	select {
	case err := <-errs:
		t.Fatalf("request dropped/errored during swaps: %v", err)
	default:
	}
	if n := stale.Load(); n != 0 {
		t.Fatalf("%d stale-generator reads after drain", n)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served — the test never exercised the swap window")
	}
	if cur, _ := p.Current("fire"); cur != core.LinearScanBatched {
		t.Fatalf("final technique %v, want scanb after an even swap count", cur)
	}
}
