package planner

import (
	"sync"
	"sync/atomic"

	"secemb/internal/core"
	"secemb/internal/tensor"
)

// genBox is the unit of atomic installation: one immutable holder per
// installed generator, so a single pointer swap switches every subsequent
// Generate to the new representation.
type genBox struct {
	gen core.Generator
}

// Swappable is the hot-swap point the planner installs behind a serving
// backend: a core.Generator whose underlying implementation can be replaced
// atomically while requests are in flight.
//
// The lifecycle is prepare → install → drain. The planner prepares a fresh
// generator in the background (serving traffic never waits on
// construction), Install publishes it with one atomic pointer swap, and
// then blocks until every Generate that loaded the old generator has
// returned — at which point the old representation is quiescent and
// Install hands it back for release. Requests admitted after the swap run
// on the new generator; requests already executing finish on the old one;
// none are dropped.
//
// Swappable adds swap-safety, not execution concurrency: like every other
// Generator, one Swappable serves one Generate at a time per serving
// worker, and the dispatch layer's one-worker-per-backend rule is what
// keeps the inner generator single-threaded. The drain barrier is a
// read-write lock rather than a bare atomic so that Install's hand-back
// guarantee holds even for callers outside the serving stack.
type Swappable struct {
	mu      sync.RWMutex // readers: Generate/SetThreads; writer: Install's drain barrier
	cur     atomic.Pointer[genBox]
	threads atomic.Int64 // last SetThreads value; < 0 when never set
	swaps   atomic.Int64
}

// NewSwappable wraps the initial generator. The planner (or tests) install
// replacements later; callers use the Swappable wherever a Generator is
// expected.
func NewSwappable(initial core.Generator) *Swappable {
	if initial == nil {
		panic("planner: NewSwappable needs a non-nil initial generator")
	}
	s := &Swappable{}
	s.threads.Store(-1)
	s.cur.Store(&genBox{gen: initial})
	return s
}

// Generate forwards the batch to the currently installed generator. The
// read-lock spans the call so Install's drain barrier can wait out
// in-flight batches; the generator pointer itself is read with one atomic
// load, so steady-state overhead is a lock-free RLock plus a pointer read.
//
// secemb:secret ids
// secemb:audit planner
func (s *Swappable) Generate(ids []uint64) (*tensor.Matrix, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.Load().gen.Generate(ids)
}

// Install atomically publishes g as the serving generator and returns the
// previous one once it is fully drained (no Generate is still executing on
// it). The returned generator is safe to release, inspect, or retire.
//
// The thread setting last applied through SetThreads is carried over to g
// before publication, so a swap never changes the worker configuration.
func (s *Swappable) Install(g core.Generator) core.Generator {
	if g == nil {
		panic("planner: Install needs a non-nil generator")
	}
	if t := s.threads.Load(); t >= 0 {
		g.SetThreads(int(t))
	}
	old := s.cur.Swap(&genBox{gen: g})
	// Drain barrier: every in-flight Generate that loaded old holds the
	// read lock; acquiring the write lock waits them all out. Generates
	// admitted after the pointer swap run on g and are unaffected.
	s.mu.Lock()
	s.mu.Unlock() //lint:ignore SA2001 empty critical section is the drain barrier
	s.swaps.Add(1)
	return old.gen
}

// Swaps reports how many Install calls have completed.
func (s *Swappable) Swaps() int64 { return s.swaps.Load() }

// Rows reports the current generator's table cardinality.
func (s *Swappable) Rows() int { return s.cur.Load().gen.Rows() }

// Dim reports the embedding dimension.
func (s *Swappable) Dim() int { return s.cur.Load().gen.Dim() }

// Technique reports the currently installed technique — it changes when
// the planner swaps, which is exactly what planner_active_technique
// gauges.
func (s *Swappable) Technique() core.Technique { return s.cur.Load().gen.Technique() }

// NumBytes reports the current representation's resident footprint.
func (s *Swappable) NumBytes() int64 { return s.cur.Load().gen.NumBytes() }

// SetThreads forwards to the current generator and is re-applied to every
// future installation.
func (s *Swappable) SetThreads(n int) {
	s.threads.Store(int64(n))
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.cur.Load().gen.SetThreads(n)
}

// Unwrap exposes the currently installed generator so core's type-probing
// helpers (Underlying, ORAMStats) keep working through the swap point.
func (s *Swappable) Unwrap() core.Generator { return s.cur.Load().gen }
