package planner

import (
	"math"

	"secemb/internal/core"
)

// The crossover cost model: predict per-id service cost for each candidate
// technique at the table's current operating point (its public shape and
// the aggregate batch size the serving layer is currently producing), then
// pick the cheapest. Until a technique has been observed, an analytic
// prior stands in; once core.Instrument has timed real batches, the
// observed EWMA (rescaled to the target batch size) overrides the prior.
// This is the paper's §IV-C offline profiling turned into an online refit:
// the measured curves replace the model exactly where measurements exist.
//
// Everything the model reads is public: rows, dim, batch-size aggregates,
// latency EWMAs. Ids never reach it (see the obliviouslint `plan` fixture
// for the counterexample this invariant forbids).

// Analytic prior constants, calibrated to this repository's measured
// orderings (BENCH_hotpath.json, internal/profile): the absolute numbers
// only matter until the first observation window replaces them, but their
// *orderings* reproduce the paper's regimes — scan wins small tables,
// ORAM wins big-table/small-batch, DHE wins big-table/large-batch.
const (
	// scanPerElemNs: one masked compare+blend per table element per id.
	scanPerElemNs = 0.5
	// oramPerElemLevelNs: per id, per embedding element, per tree level —
	// the circuit ORAM read+evict constant.
	oramPerElemLevelNs = 100
	// dheFixedNs / dhePerIDNs split a DHE batch into its batch-independent
	// encoder/setup share and the per-id decode share; the fixed share is
	// what makes DHE's per-id cost fall with batch size (Fig. 5) and puts
	// the ORAM→DHE crossover near batch ~100 on large tables.
	dheFixedNs   = 8e6
	dhePerIDNs   = 60e3
	dheFixedFrac = 0.3 // fixed share assumed when rescaling an observed EWMA
)

// analyticPerID is the prior: predicted ns per id with no observations.
func analyticPerID(tech core.Technique, rows, dim int, batch float64) float64 {
	if batch < 1 {
		batch = 1
	}
	switch tech {
	case core.LinearScan, core.LinearScanBatched, core.Lookup:
		return scanPerElemNs * float64(rows) * float64(dim)
	case core.PathORAM, core.CircuitORAM:
		levels := math.Log2(float64(rows)) + 1
		return oramPerElemLevelNs * float64(dim) * levels
	case core.DHE:
		return dheFixedNs/batch + dhePerIDNs
	}
	return math.Inf(1)
}

// predictPerID predicts ns per id at the target batch size, preferring the
// observed EWMA (rescaled from its own operating point to the target)
// over the analytic prior.
func predictPerID(tech core.Technique, rows, dim int, batch float64, sig Signal) float64 {
	if !sig.Observed() {
		return analyticPerID(tech, rows, dim, batch)
	}
	if batch < 1 {
		batch = 1
	}
	obsBatch := sig.EWMABatch
	if obsBatch < 1 {
		obsBatch = 1
	}
	switch tech {
	case core.DHE:
		// Split the observed per-batch cost into a batch-independent share
		// and a per-id slope, then re-evaluate at the target batch.
		fixed := dheFixedFrac * sig.EWMANs
		slope := (1 - dheFixedFrac) * sig.EWMANs / obsBatch
		return (fixed + slope*batch) / batch
	default:
		// Scans and ORAMs do per-id work: per-id cost is flat in batch
		// size, so the observed operating point transfers directly.
		return sig.EWMANs / obsBatch
	}
}
