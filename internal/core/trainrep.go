package core

import (
	"math/rand"

	"secemb/internal/dhe"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// TrainableRep is a trainable embedding representation — a conventional
// table or a DHE — shared by the DLRM and LLM training paths. After
// training, BuildGenerator converts a rep into any deployment technique
// (materializing DHE→table where needed, §IV-C1).
type TrainableRep interface {
	Forward(ids []uint64) *tensor.Matrix
	Backward(ids []uint64, grad *tensor.Matrix)
	Params() []*nn.Param
	NumBytes() int64
}

// tableRep adapts nn.Embedding.
type tableRep struct{ e *nn.Embedding }

// NewTableRep builds a trainable embedding table of rows×dim.
func NewTableRep(rows, dim int, rng *rand.Rand) TrainableRep {
	return &tableRep{e: nn.NewEmbedding(rows, dim, rng)}
}

func (t *tableRep) Forward(ids []uint64) *tensor.Matrix {
	return t.e.LookupBatch(toInts(ids))
}
func (t *tableRep) Backward(ids []uint64, grad *tensor.Matrix) {
	t.e.BackwardBatch(toInts(ids), grad)
}
func (t *tableRep) Params() []*nn.Param { return t.e.Params() }
func (t *tableRep) NumBytes() int64     { return t.e.NumBytes() }

// dheRep adapts dhe.DHE.
type dheRep struct {
	d    *dhe.DHE
	rows int
}

// NewDHERep wraps a DHE as a trainable representation for a virtual table
// of the given size.
func NewDHERep(d *dhe.DHE, rows int) TrainableRep {
	return &dheRep{d: d, rows: rows}
}

func (r *dheRep) Forward(ids []uint64) *tensor.Matrix      { return r.d.Generate(ids) }
func (r *dheRep) Backward(_ []uint64, grad *tensor.Matrix) { r.d.Backward(grad) }
func (r *dheRep) Params() []*nn.Param                      { return r.d.Params() }
func (r *dheRep) NumBytes() int64                          { return r.d.NumBytes() }

// TableWeights returns the trained table when rep is table-based.
func TableWeights(rep TrainableRep) (*tensor.Matrix, bool) {
	if t, ok := rep.(*tableRep); ok {
		return t.e.Weight.Value, true
	}
	return nil, false
}

// RepDHE returns the wrapped DHE when rep is DHE-based.
func RepDHE(rep TrainableRep) (*dhe.DHE, bool) {
	if r, ok := rep.(*dheRep); ok {
		return r.d, true
	}
	return nil, false
}

// BuildGenerator converts a trained representation into a deployment
// generator with the requested technique. DHE-trained reps serve DHE
// directly and materialize tables for the storage techniques; table reps
// serve storage techniques directly and cannot serve DHE.
func BuildGenerator(rep TrainableRep, rows int, tech Technique, opts Options) Generator {
	if tech == DHE {
		d, ok := RepDHE(rep)
		if !ok {
			panic("core: DHE technique requires a DHE-trained representation")
		}
		opts.DHE = d
		return MustNew(DHE, rows, d.Dim, opts)
	}
	var table *tensor.Matrix
	if w, ok := TableWeights(rep); ok {
		table = w
	} else if d, ok := RepDHE(rep); ok {
		table = d.ToTable(rows)
	} else {
		panic("core: unknown trainable representation")
	}
	opts.Table = table
	return MustNew(tech, table.Rows, table.Cols, opts)
}

func toInts(ids []uint64) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v)
	}
	return out
}
