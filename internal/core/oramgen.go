package core

import (
	"math"

	"secemb/internal/oram"
	"secemb/internal/tensor"
)

// oramGen protects a stored embedding table with a tree ORAM. Queries in a
// batch are served sequentially — "processing each item in the input batch
// is sequential since the internal ORAM structures must be updated
// sequentially and parallelism is not possible" (§V-A1) — which is why
// ORAM scales poorly with batch size (Figure 12).
type oramGen struct {
	o    oram.ORAM
	rows int
	dim  int
	tech Technique
}

func newORAMGen(table *tensor.Matrix, tech Technique, opts Options) *oramGen {
	cfg := oram.Config{
		NumBlocks:  table.Rows,
		BlockWords: table.Cols,
		Seed:       opts.Seed,
		Tracer:     opts.Tracer,
	}
	var o oram.ORAM
	if tech == PathORAM {
		cfg.Region = opts.region("path")
		o = oram.NewPathInit(cfg, tableToBlocks(table))
	} else {
		cfg.Region = opts.region("circuit")
		o = oram.NewCircuitInit(cfg, tableToBlocks(table))
	}
	return &oramGen{o: o, rows: table.Rows, dim: table.Cols, tech: tech}
}

// tableToBlocks reinterprets each float32 row as an ORAM payload of raw
// uint32 words.
func tableToBlocks(table *tensor.Matrix) [][]uint32 {
	blocks := make([][]uint32, table.Rows)
	for r := 0; r < table.Rows; r++ {
		row := table.Row(r)
		words := make([]uint32, len(row))
		for c, v := range row {
			words[c] = math.Float32bits(v)
		}
		blocks[r] = words
	}
	return blocks
}

// Generate serves the batch sequentially through the tree ORAM.
//
// secemb:secret ids
// secemb:audit path circuit
func (g *oramGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.rows); err != nil {
		return nil, err
	}
	out := tensor.New(len(ids), g.dim)
	for r, id := range ids {
		words := g.o.Read(id)
		dst := out.Row(r)
		for c, w := range words {
			dst[c] = math.Float32frombits(w)
		}
	}
	return out, nil
}

func (g *oramGen) Rows() int            { return g.rows }
func (g *oramGen) Dim() int             { return g.dim }
func (g *oramGen) Technique() Technique { return g.tech }
func (g *oramGen) NumBytes() int64      { return g.o.NumBytes() }

// SetThreads is a no-op: ORAM accesses are inherently sequential (§V-A1).
func (g *oramGen) SetThreads(int) {}

// ORAMStats exposes the controller counters when g is ORAM-backed (looking
// through Instrument wrappers), for the enclave cost model; ok is false
// otherwise.
func ORAMStats(g Generator) (s *oram.Stats, ok bool) {
	if og, isORAM := unwrapGenerator(g).(*oramGen); isORAM {
		return og.o.Stats(), true
	}
	return nil, false
}
