// Package core is the library's public surface for secure embedding
// generation — the paper's central contribution. It provides one Generator
// interface with five implementations spanning Figure 2's taxonomy and
// §IV-A's protection techniques:
//
//   - Lookup: the non-secure storage baseline (direct table indexing).
//     Its access pattern leaks the index (§III); it exists as the
//     performance baseline and the attack target.
//   - LinearScan: storage + oblivious full-table scan per query (§IV-A1).
//   - PathORAM / CircuitORAM: storage + tree-ORAM protection (§IV-A2).
//   - DHE: compute-based generation with input-independent access
//     patterns (§IV-A3).
//
// Every generator can carry a memtrace.Tracer; the test suite uses it to
// verify the security matrix of Table II: deterministic traces for
// LinearScan/DHE, randomized-but-independent traces for the ORAMs, and a
// leaky trace for Lookup.
package core

import (
	"fmt"
	"math"

	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/obs"
	"secemb/internal/tensor"
)

// Technique identifies an embedding generation method.
type Technique int

const (
	// Lookup is the non-secure direct table lookup.
	Lookup Technique = iota
	// LinearScan obliviously scans the whole table per query.
	LinearScan
	// PathORAM protects the table with Path ORAM.
	PathORAM
	// CircuitORAM protects the table with Circuit ORAM.
	CircuitORAM
	// DHE computes embeddings with Deep Hash Embedding.
	DHE
	// LinearScanBatched is the batch-amortized scan variant: one table
	// stream per batch instead of one per query (this repository's scan
	// ablation; same masked work and security argument as LinearScan).
	LinearScanBatched
)

// String names the technique as in the paper's tables.
func (t Technique) String() string {
	switch t {
	case Lookup:
		return "Index Lookup (non-secure)"
	case LinearScan:
		return "Linear Scan"
	case PathORAM:
		return "Path ORAM"
	case CircuitORAM:
		return "Circuit ORAM"
	case DHE:
		return "DHE"
	case LinearScanBatched:
		return "Linear Scan (batched)"
	}
	return "unknown"
}

// Key is the short stable identifier used for CLI flags and metric labels
// ("lookup", "scan", "path", "circuit", "dhe").
func (t Technique) Key() string {
	switch t {
	case Lookup:
		return "lookup"
	case LinearScan:
		return "scan"
	case PathORAM:
		return "path"
	case CircuitORAM:
		return "circuit"
	case DHE:
		return "dhe"
	case LinearScanBatched:
		return "scanb"
	}
	return "unknown"
}

// ParseTechnique resolves a Key back to its Technique.
func ParseTechnique(key string) (Technique, error) {
	for _, t := range []Technique{Lookup, LinearScan, LinearScanBatched, PathORAM, CircuitORAM, DHE} {
		if t.Key() == key {
			return t, nil
		}
	}
	return 0, fmt.Errorf("core: unknown technique %q", key)
}

// Secure reports whether the technique hides the query index (Table II).
func (t Technique) Secure() bool { return t != Lookup }

// Generator produces embeddings for batches of categorical feature values.
//
// Generate returns a len(ids)×Dim() matrix whose r-th row is the embedding
// of ids[r], or an error wrapping ErrIDOutOfRange when the batch contains
// an id beyond the table cardinality — malformed requests are answerable,
// never fatal. Implementations must keep their memory access pattern
// independent of the id values (except Lookup, by design).
//
// Hot-path implementations (DHE, batched scan) reuse their output storage:
// the returned matrix is valid until the generator's next Generate call,
// and callers that retain results across calls must copy them. A generator
// serves one Generate at a time; concurrent callers need replicas.
type Generator interface {
	// Generate embeds a batch of secret feature ids; the ids must never
	// influence control flow or addresses (Lookup excepted, by design).
	//
	// secemb:secret ids
	Generate(ids []uint64) (*tensor.Matrix, error)
	// Rows is the table cardinality (for DHE: the virtual table size).
	Rows() int
	// Dim is the embedding dimension.
	Dim() int
	// Technique identifies the protection method.
	Technique() Technique
	// NumBytes is the resident memory footprint of the representation.
	NumBytes() int64
	// SetThreads sets the worker count used for batch generation
	// (0 = all CPUs). The profiling sweeps vary this.
	SetThreads(n int)
}

// Options configures generator construction.
type Options struct {
	Threads int
	Seed    int64
	Tracer  *memtrace.Tracer
	Region  string // trace region prefix; "" → technique-specific default

	// Obs, when non-nil, wraps the constructed generator with Instrument
	// so every Generate is counted and timed (per-technique families).
	Obs *obs.Registry

	// Shard, when non-empty, additionally labels the generate aggregates
	// with a shard dimension (core_generate_*{tech,shard}) so per-shard
	// consumers — the planner's shard-granular sampler — can window one
	// shard's traffic separately from the table-wide totals. The label is
	// deployment topology (e.g. planner.ShardLabel's "table/index"), never
	// anything derived from ids.
	Shard string

	// Table supplies the backing weights for the storage techniques
	// (Lookup/LinearScan/PathORAM/CircuitORAM) when constructing through
	// New. nil → a Gaussian table is initialized from Seed.
	Table *tensor.Matrix

	// DHE supplies a (possibly trained) network for the DHE technique when
	// constructing through New. nil → an untrained network per DHEArch.
	DHE *dhe.DHE

	// DHEArch selects the architecture sizing when DHE is nil
	// (default ArchVaried, Table IV's size-scaled design).
	DHEArch DHEArch

	// Int8 requests the quantized (int8 SWAR) decoder hot path for the DHE
	// technique. The swap is gated: construction quantizes the decoder,
	// replays a fixed public eval batch through both paths, and keeps int8
	// only when the max-abs output error stays within Int8MaxErr — otherwise
	// serving silently continues on float32 (the fallback is visible via
	// Int8Active and, with Obs set, the dhe_int8_* counters).
	Int8 bool

	// Int8MaxErr overrides the accuracy gate's max-abs-error threshold
	// (0 → dhe.DefaultInt8MaxAbsErr).
	Int8MaxErr float64
}

func (o Options) region(def string) string {
	if o.Region != "" {
		return o.Region
	}
	return def
}

// FootprintRatio is a convenience for the memory tables: representation
// bytes relative to the raw table (rows×dim×4).
func FootprintRatio(g Generator) float64 {
	raw := float64(g.Rows()) * float64(g.Dim()) * 4
	if raw == 0 {
		return math.NaN()
	}
	return float64(g.NumBytes()) / raw
}
