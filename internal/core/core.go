// Package core is the library's public surface for secure embedding
// generation — the paper's central contribution. It provides one Generator
// interface with five implementations spanning Figure 2's taxonomy and
// §IV-A's protection techniques:
//
//   - Lookup: the non-secure storage baseline (direct table indexing).
//     Its access pattern leaks the index (§III); it exists as the
//     performance baseline and the attack target.
//   - LinearScan: storage + oblivious full-table scan per query (§IV-A1).
//   - PathORAM / CircuitORAM: storage + tree-ORAM protection (§IV-A2).
//   - DHE: compute-based generation with input-independent access
//     patterns (§IV-A3).
//
// Every generator can carry a memtrace.Tracer; the test suite uses it to
// verify the security matrix of Table II: deterministic traces for
// LinearScan/DHE, randomized-but-independent traces for the ORAMs, and a
// leaky trace for Lookup.
package core

import (
	"fmt"
	"math"

	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// Technique identifies an embedding generation method.
type Technique int

const (
	// Lookup is the non-secure direct table lookup.
	Lookup Technique = iota
	// LinearScan obliviously scans the whole table per query.
	LinearScan
	// PathORAM protects the table with Path ORAM.
	PathORAM
	// CircuitORAM protects the table with Circuit ORAM.
	CircuitORAM
	// DHE computes embeddings with Deep Hash Embedding.
	DHE
)

// String names the technique as in the paper's tables.
func (t Technique) String() string {
	switch t {
	case Lookup:
		return "Index Lookup (non-secure)"
	case LinearScan:
		return "Linear Scan"
	case PathORAM:
		return "Path ORAM"
	case CircuitORAM:
		return "Circuit ORAM"
	case DHE:
		return "DHE"
	}
	return "unknown"
}

// Secure reports whether the technique hides the query index (Table II).
func (t Technique) Secure() bool { return t != Lookup }

// Generator produces embeddings for batches of categorical feature values.
//
// Generate returns a len(ids)×Dim() matrix whose r-th row is the embedding
// of ids[r]. Implementations must keep their memory access pattern
// independent of the id values (except Lookup, by design).
type Generator interface {
	Generate(ids []uint64) *tensor.Matrix
	// Rows is the table cardinality (for DHE: the virtual table size).
	Rows() int
	// Dim is the embedding dimension.
	Dim() int
	// Technique identifies the protection method.
	Technique() Technique
	// NumBytes is the resident memory footprint of the representation.
	NumBytes() int64
	// SetThreads sets the worker count used for batch generation
	// (0 = all CPUs). The profiling sweeps vary this.
	SetThreads(n int)
}

// Options configures generator construction.
type Options struct {
	Threads int
	Seed    int64
	Tracer  *memtrace.Tracer
	Region  string // trace region prefix; "" → technique-specific default
}

func (o Options) region(def string) string {
	if o.Region != "" {
		return o.Region
	}
	return def
}

func checkIDs(ids []uint64, rows int) {
	for _, id := range ids {
		if id >= uint64(rows) {
			panic(fmt.Sprintf("core: id %d out of table size %d", id, rows))
		}
	}
}

// FootprintRatio is a convenience for the memory tables: representation
// bytes relative to the raw table (rows×dim×4).
func FootprintRatio(g Generator) float64 {
	raw := float64(g.Rows()) * float64(g.Dim()) * 4
	if raw == 0 {
		return math.NaN()
	}
	return float64(g.NumBytes()) / raw
}
