package core_test

import (
	"fmt"
	"math/rand"

	"secemb/internal/core"
	"secemb/internal/dhe"
	"secemb/internal/tensor"
)

// Example shows the basic flow: wrap an embedding table in a secure
// generator and query it without leaking the indices.
func Example() {
	table := tensor.NewGaussian(1000, 16, 0.1, rand.New(rand.NewSource(1)))
	gen := core.MustNew(core.LinearScan, 1000, 16, core.Options{Table: table})
	emb, err := gen.Generate([]uint64{42, 7})
	fmt.Println(emb.Rows, emb.Cols, gen.Technique().Secure(), err)
	// Output: 2 16 true <nil>
}

// ExampleNew shows the unified constructor: pick a technique by value (or
// parse one from a CLI string) and let Options supply the representation.
func ExampleNew() {
	table := tensor.NewGaussian(100, 8, 0.1, rand.New(rand.NewSource(4)))
	tech, _ := core.ParseTechnique("scan")
	gen, err := core.New(tech, 100, 8, core.Options{Table: table})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(gen.Technique(), gen.Rows(), gen.Dim())
	// Output: Linear Scan 100 8
}

// ExampleNew_dhe builds a compute-based generator: constant memory
// footprint regardless of the virtual table size.
func ExampleNew_dhe() {
	d := dhe.New(dhe.Config{K: 64, Hidden: []int{32}, Dim: 16, Seed: 1},
		rand.New(rand.NewSource(1)))
	gen := core.MustNew(core.DHE, 10_000_000, d.Dim, core.Options{DHE: d})
	emb, _ := gen.Generate([]uint64{9_999_999})
	fmt.Println(emb.Rows, emb.Cols, gen.NumBytes() < 1<<20)
	// Output: 1 16 true
}

// ExampleNewDual demonstrates the §IV-D LLM hybrid: DHE for large
// (prefill) batches, Circuit ORAM over the materialized table for small
// (decode) batches — dispatched by the public batch size.
func ExampleNewDual() {
	d := dhe.New(dhe.Config{K: 32, Hidden: []int{16}, Dim: 8, Seed: 2},
		rand.New(rand.NewSource(2)))
	dual := core.NewDual(core.MustNew(core.DHE, 512, d.Dim, core.Options{DHE: d}), 1, core.Options{Seed: 3})
	fmt.Println(dual.Active(1), dual.Active(256))
	// Output: Circuit ORAM DHE
}
