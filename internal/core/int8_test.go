package core

import (
	"math/rand"
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/obs"
	"secemb/internal/tensor"
)

func TestInt8OptionEnablesQuantizedServing(t *testing.T) {
	reg := obs.NewRegistry()
	d := smallCoreDHE(80)
	// Float reference from the training-mode forward (unaffected by the
	// int8 swap, which only rewires the inference path).
	want := d.Generate([]uint64{1, 2, 3}).Clone()

	g := MustNew(DHE, 1000, d.Dim, Options{DHE: d, Int8: true, Obs: reg})
	if !Int8Active(g) {
		t.Fatal("well-conditioned decoder should pass the int8 gate")
	}
	if v := reg.Counter("dhe_int8_enabled_total").Value(); v != 1 {
		t.Fatalf("dhe_int8_enabled_total = %d", v)
	}
	if v := reg.Gauge("dhe_int8_active").Value(); v != 1 {
		t.Fatalf("dhe_int8_active = %d", v)
	}
	got := mustGen(t, g, []uint64{1, 2, 3})
	if diff := tensor.MaxAbsDiff(got, want); diff > dhe.DefaultInt8MaxAbsErr {
		t.Fatalf("int8 serving drifted %v beyond the gate bound", diff)
	}
}

func TestInt8OptionFallsBackOnWideWeights(t *testing.T) {
	reg := obs.NewRegistry()
	d := smallCoreDHE(81)
	params := d.Params()
	w := params[len(params)-2].Value
	for i := range w.Data {
		w.Data[i] *= 1e4
	}
	g := MustNew(DHE, 1000, d.Dim, Options{DHE: d, Int8: true, Obs: reg})
	if Int8Active(g) {
		t.Fatal("gate must refuse a decoder with blown-up dynamic range")
	}
	if v := reg.Counter("dhe_int8_fallback_total").Value(); v != 1 {
		t.Fatalf("dhe_int8_fallback_total = %d", v)
	}
	if v := reg.Gauge("dhe_int8_active").Value(); v != 0 {
		t.Fatalf("dhe_int8_active = %d after fallback", v)
	}
	// The float fallback still serves (same outputs as a plain DHE gen).
	want := d.Generate([]uint64{7, 8})
	got := mustGen(t, g, []uint64{7, 8})
	if !tensor.AllClose(got, want, 0) {
		t.Fatal("float fallback must serve the unquantized decoder")
	}
}

func TestInt8GenSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	d := dhe.New(dhe.VariedConfig(16, 4096, 82), rng)
	g := MustNew(DHE, 4096, d.Dim, Options{DHE: d, Int8: true})
	if !Int8Active(g) {
		t.Fatal("gate rejected the test decoder")
	}
	ids := []uint64{5, 10, 15, 20, 99, 1000}
	mustGen(t, g, ids) // size workspace + quant scratch
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state int8 dheGen allocates %.0f objects per call", allocs)
	}
}

func TestInt8TraceUsesPackedFootprint(t *testing.T) {
	// Trace synthesis must reflect the representation actually served:
	// the packed int8 sweep touches about half the float32 bytes.
	countBlocks := func(int8on bool) int {
		tr := memtrace.NewEnabled()
		d := smallCoreDHE(83)
		g := MustNew(DHE, 1000, d.Dim, Options{DHE: d, Int8: int8on, Tracer: tr})
		if int8on && !Int8Active(g) {
			t.Fatal("gate rejected")
		}
		mustGen(t, g, []uint64{1})
		return tr.Len()
	}
	f32 := countBlocks(false)
	i8 := countBlocks(true)
	if i8 >= f32 {
		t.Fatalf("int8 trace (%d blocks) not smaller than float trace (%d)", i8, f32)
	}
}

func TestInt8ActiveFalseForNonDHE(t *testing.T) {
	g := MustNew(Lookup, 64, 8, Options{Seed: 84})
	if Int8Active(g) {
		t.Fatal("Int8Active must be false for storage generators")
	}
}
