package core

import (
	"time"

	"secemb/internal/enclave"
	"secemb/internal/obs"
	"secemb/internal/oram"
	"secemb/internal/tensor"
)

// Unwrapper is implemented by decorating generators (Instrument) so
// type-probing helpers (Underlying, ORAMStats) can reach the concrete
// implementation.
type Unwrapper interface {
	Unwrap() Generator
}

// unwrapGenerator strips decoration layers down to the concrete generator.
func unwrapGenerator(g Generator) Generator {
	for {
		u, ok := g.(Unwrapper)
		if !ok {
			return g
		}
		g = u.Unwrap()
	}
}

// instrumentedGen decorates a Generator with per-technique observability:
//
//	core_generate_total{tech}         batches generated
//	core_generate_errors_total{tech}  rejected batches (bad ids)
//	core_generate_ids_total{tech}     ids embedded
//	core_generate_ns{tech}            per-batch latency histogram
//
// With a shard label the same families are additionally written with a
// {tech,shard} dimension, so per-shard consumers (the planner's sampler)
// can window one shard's traffic while the table-wide totals keep feeding
// dashboards unchanged. The shard metrics are nil (no-op) otherwise.
//
// ORAM-backed generators additionally account enclave-boundary work
// (ocalls, EPC bucket traffic, modeled nanoseconds) through an
// enclave.Meter, reproducing the per-window accounting the paper uses to
// compare the ZeroTrace deployment variants (Figure 10).
type instrumentedGen struct {
	g     Generator
	gens  *obs.Counter
	errs  *obs.Counter
	ids   *obs.Counter
	lat   *obs.Histogram
	stats *oram.Stats // live controller counters; nil when not ORAM-backed
	meter *enclave.Meter

	// Shard-labeled mirrors of gens/ids/lat; nil without a shard label.
	shardGens *obs.Counter
	shardIDs  *obs.Counter
	shardLat  *obs.Histogram
}

// Instrument wraps g so every Generate call is counted and timed in reg.
// Construction through New with Options.Obs set applies this
// automatically. A nil registry returns g unchanged.
func Instrument(g Generator, reg *obs.Registry) Generator {
	return InstrumentShard(g, reg, "")
}

// InstrumentShard is Instrument with a shard dimension: alongside the
// per-technique totals, every Generate also feeds
// core_generate_*{tech,shard} so one shard's latency and batch-size
// aggregates are separable. Construction through New with both Options.Obs
// and Options.Shard set applies this automatically. The label names a
// public deployment slot, never request data.
func InstrumentShard(g Generator, reg *obs.Registry, shard string) Generator {
	if reg == nil {
		return g
	}
	tech := g.Technique().Key()
	ig := &instrumentedGen{
		g:    g,
		gens: reg.Counter("core_generate_total", obs.LabelTech, tech),
		errs: reg.Counter("core_generate_errors_total", obs.LabelTech, tech),
		ids:  reg.Counter("core_generate_ids_total", obs.LabelTech, tech),
		lat:  reg.Histogram("core_generate_ns", obs.LabelTech, tech),
	}
	if shard != "" {
		ig.shardGens = reg.Counter("core_generate_total", obs.LabelTech, tech, obs.LabelShard, shard)
		ig.shardIDs = reg.Counter("core_generate_ids_total", obs.LabelTech, tech, obs.LabelShard, shard)
		ig.shardLat = reg.Histogram("core_generate_ns", obs.LabelTech, tech, obs.LabelShard, shard)
	}
	if s, ok := ORAMStats(g); ok {
		ig.stats = s
		ig.meter = enclave.NewMeter(enclave.ZTGramineOpt, reg)
	}
	return ig
}

// Generate forwards to the wrapped generator, counting and timing the call.
//
// secemb:secret ids
func (i *instrumentedGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	var before oram.Stats
	if i.stats != nil {
		before = *i.stats
	}
	start := time.Now()
	out, err := i.g.Generate(ids)
	elapsed := time.Since(start)
	i.lat.ObserveDuration(elapsed)
	i.shardLat.ObserveDuration(elapsed)
	i.gens.Inc()
	i.shardGens.Inc()
	if err != nil {
		i.errs.Inc()
		return nil, err
	}
	i.ids.Add(int64(len(ids)))
	i.shardIDs.Add(int64(len(ids)))
	if i.stats != nil {
		i.meter.Record(enclave.Delta(*i.stats, before))
	}
	return out, nil
}

func (i *instrumentedGen) Rows() int            { return i.g.Rows() }
func (i *instrumentedGen) Dim() int             { return i.g.Dim() }
func (i *instrumentedGen) Technique() Technique { return i.g.Technique() }
func (i *instrumentedGen) NumBytes() int64      { return i.g.NumBytes() }
func (i *instrumentedGen) SetThreads(n int)     { i.g.SetThreads(n) }
func (i *instrumentedGen) Unwrap() Generator    { return i.g }
