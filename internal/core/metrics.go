package core

import (
	"time"

	"secemb/internal/enclave"
	"secemb/internal/obs"
	"secemb/internal/oram"
	"secemb/internal/tensor"
)

// Unwrapper is implemented by decorating generators (Instrument) so
// type-probing helpers (Underlying, ORAMStats) can reach the concrete
// implementation.
type Unwrapper interface {
	Unwrap() Generator
}

// unwrapGenerator strips decoration layers down to the concrete generator.
func unwrapGenerator(g Generator) Generator {
	for {
		u, ok := g.(Unwrapper)
		if !ok {
			return g
		}
		g = u.Unwrap()
	}
}

// instrumentedGen decorates a Generator with per-technique observability:
//
//	core_generate_total{tech}         batches generated
//	core_generate_errors_total{tech}  rejected batches (bad ids)
//	core_generate_ids_total{tech}     ids embedded
//	core_generate_ns{tech}            per-batch latency histogram
//
// ORAM-backed generators additionally account enclave-boundary work
// (ocalls, EPC bucket traffic, modeled nanoseconds) through an
// enclave.Meter, reproducing the per-window accounting the paper uses to
// compare the ZeroTrace deployment variants (Figure 10).
type instrumentedGen struct {
	g     Generator
	gens  *obs.Counter
	errs  *obs.Counter
	ids   *obs.Counter
	lat   *obs.Histogram
	stats *oram.Stats // live controller counters; nil when not ORAM-backed
	meter *enclave.Meter
}

// Instrument wraps g so every Generate call is counted and timed in reg.
// Construction through New with Options.Obs set applies this
// automatically. A nil registry returns g unchanged.
func Instrument(g Generator, reg *obs.Registry) Generator {
	if reg == nil {
		return g
	}
	tech := g.Technique().Key()
	ig := &instrumentedGen{
		g:    g,
		gens: reg.Counter("core_generate_total", "tech", tech),
		errs: reg.Counter("core_generate_errors_total", "tech", tech),
		ids:  reg.Counter("core_generate_ids_total", "tech", tech),
		lat:  reg.Histogram("core_generate_ns", "tech", tech),
	}
	if s, ok := ORAMStats(g); ok {
		ig.stats = s
		ig.meter = enclave.NewMeter(enclave.ZTGramineOpt, reg)
	}
	return ig
}

// Generate forwards to the wrapped generator, counting and timing the call.
//
// secemb:secret ids
func (i *instrumentedGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	var before oram.Stats
	if i.stats != nil {
		before = *i.stats
	}
	start := time.Now()
	out, err := i.g.Generate(ids)
	i.lat.ObserveDuration(time.Since(start))
	i.gens.Inc()
	if err != nil {
		i.errs.Inc()
		return nil, err
	}
	i.ids.Add(int64(len(ids)))
	if i.stats != nil {
		i.meter.Record(enclave.Delta(*i.stats, before))
	}
	return out, nil
}

func (i *instrumentedGen) Rows() int            { return i.g.Rows() }
func (i *instrumentedGen) Dim() int             { return i.g.Dim() }
func (i *instrumentedGen) Technique() Technique { return i.g.Technique() }
func (i *instrumentedGen) NumBytes() int64      { return i.g.NumBytes() }
func (i *instrumentedGen) SetThreads(n int)     { i.g.SetThreads(n) }
func (i *instrumentedGen) Unwrap() Generator    { return i.g }
