package core

import (
	"math/rand"
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/oram"
	"secemb/internal/tensor"
)

func testDual(t *testing.T, threshold int, tracer *memtrace.Tracer) *Dual {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	d := dhe.New(dhe.Config{K: 32, Hidden: []int{16}, Dim: 4, Seed: 9}, rng)
	g := MustNew(DHE, 128, d.Dim, Options{DHE: d, Tracer: tracer})
	return NewDual(g, threshold, Options{Seed: 10, Tracer: tracer})
}

func TestDualRepresentationsAgree(t *testing.T) {
	// The ORAM table is materialized from the DHE, so both dispatch
	// targets must return identical embeddings.
	g := testDual(t, 2, nil)
	big := mustGen(t, g, []uint64{5, 6, 7}) // batch 3 > threshold → DHE
	for i, id := range []uint64{5, 6, 7} {
		small := mustGen(t, g, []uint64{id}) // batch 1 ≤ threshold → ORAM
		if !tensor.AllClose(small, tensor.SliceRows(big, i, i+1), 0) {
			t.Fatalf("dual representations disagree for id %d", id)
		}
	}
}

func TestDualDispatchByBatchSize(t *testing.T) {
	tracer := memtrace.NewEnabled()
	g := testDual(t, 2, tracer)

	regions := func(ids []uint64) map[string]bool {
		tracer.Reset()
		g.Generate(ids)
		seen := map[string]bool{}
		for _, a := range tracer.Snapshot() {
			seen[a.Region] = true
		}
		return seen
	}
	small := regions([]uint64{1})
	if !small["circuit.tree"] || small["dhe"] {
		t.Fatalf("batch 1 must hit the ORAM, got regions %v", small)
	}
	large := regions([]uint64{1, 2, 3})
	if !large["dhe"] || large["circuit.tree"] {
		t.Fatalf("batch 3 must hit the DHE, got regions %v", large)
	}
}

func TestDualDispatchAtExactThresholdBoundary(t *testing.T) {
	// The dispatch rule is strict: batch == threshold is the *largest*
	// batch still served by the ORAM; threshold+1 is the smallest batch
	// that flips to the DHE. Coalesced decode batches from the serving
	// layer land exactly on this boundary, so an off-by-one here silently
	// moves traffic between representations.
	const threshold = 4
	tracer := memtrace.NewEnabled()
	g := testDual(t, threshold, tracer)

	regions := func(ids []uint64) map[string]bool {
		tracer.Reset()
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, a := range tracer.Snapshot() {
			seen[a.Region] = true
		}
		return seen
	}
	at := regions([]uint64{1, 2, 3, 4}) // batch == threshold
	if !at["circuit.tree"] || at["dhe"] {
		t.Fatalf("batch == threshold must stay on the ORAM, got regions %v", at)
	}
	above := regions([]uint64{1, 2, 3, 4, 5}) // batch == threshold+1
	if !above["dhe"] || above["circuit.tree"] {
		t.Fatalf("batch == threshold+1 must flip to the DHE, got regions %v", above)
	}
	if g.Active(threshold) != CircuitORAM || g.Active(threshold+1) != DHE {
		t.Fatal("Active disagrees with the observed Generate dispatch")
	}
}

func TestDualTraceIndependentAtCoalescedBatchSizes(t *testing.T) {
	// Under the serving layer's coalescer the Dual sees every batch size
	// around its threshold. At each size — below, at, and above — the
	// canonical memory trace must not depend on which ids were fused:
	// batch size is public (§V-B), the ids inside the batch are not. Fresh
	// generators per probe replay the same random tape, and tree-bucket
	// accesses canonicalize to their level, exactly as in leakcheck.
	const threshold = 2
	probe := func(ids []uint64) memtrace.Trace {
		tracer := memtrace.NewEnabled()
		g := testDual(t, threshold, tracer)
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
		return memtrace.CanonicalizeTreeRegions(tracer.Snapshot(), oram.RegionSuffixTree)
	}
	cases := [][2][]uint64{
		{{3}, {97}},                              // batch 1: ORAM decode
		{{3, 4}, {97, 11}},                       // batch == threshold: ORAM
		{{3, 4, 5}, {97, 11, 64}},                // threshold+1: DHE
		{{1, 2, 3, 4, 5, 6}, {9, 9, 9, 9, 9, 9}}, // deep in the DHE regime
	}
	for _, c := range cases {
		a, b := probe(c[0]), probe(c[1])
		if d := memtrace.Compare(a, b); !d.Equal() {
			t.Fatalf("batch size %d: trace depends on ids %v vs %v: %+v", len(c[0]), c[0], c[1], d)
		}
	}
}

func TestDualActiveAndMetadata(t *testing.T) {
	g := testDual(t, 4, nil)
	if g.Active(1) != CircuitORAM || g.Active(4) != CircuitORAM || g.Active(5) != DHE {
		t.Fatal("Active dispatch rule wrong")
	}
	if g.Rows() != 128 || g.Dim() != 4 || g.Technique() != DHE {
		t.Fatal("metadata wrong")
	}
	// Both representations are resident: footprint exceeds either alone.
	if g.NumBytes() <= g.dhe.NumBytes() || g.NumBytes() <= g.oram.NumBytes() {
		t.Fatal("dual must count both representations")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
	g.SetThreads(2) // must not panic
}

func TestDualRequiresDHE(t *testing.T) {
	tbl := testTable(16, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-DHE generator")
		}
	}()
	NewDual(newStorage(Lookup, tbl, Options{}), 1, Options{})
}

func TestScanBatchedMatchesScan(t *testing.T) {
	tbl := testTable(200, 8, 2)
	ids := []uint64{0, 42, 199, 42}
	a := mustGen(t, newStorage(LinearScan, tbl, Options{}), ids)
	b := mustGen(t, newStorage(LinearScanBatched, tbl, Options{}), ids)
	if !tensor.AllClose(a, b, 0) {
		t.Fatal("batched scan must match per-query scan exactly")
	}
}

func TestScanBatchedTraceDeterministic(t *testing.T) {
	tbl := testTable(64, 4, 3)
	tracer := memtrace.NewEnabled()
	g := newStorage(LinearScanBatched, tbl, Options{Tracer: tracer, Threads: 1})
	probe := func(ids []uint64) memtrace.Trace {
		tracer.Reset()
		g.Generate(ids)
		return tracer.Snapshot()
	}
	a := probe([]uint64{0, 0})
	b := probe([]uint64{63, 17})
	if !a.Equal(b) {
		t.Fatal("batched scan trace must be id-independent")
	}
	// One full table sweep for the whole batch (single worker).
	if len(a) != 64 {
		t.Fatalf("expected one 64-row sweep, got %d touches", len(a))
	}
}

func TestScanBatchedMetadata(t *testing.T) {
	tbl := testTable(32, 4, 4)
	g := newStorage(LinearScanBatched, tbl, Options{})
	if g.Rows() != 32 || g.Dim() != 4 || g.Technique() != LinearScanBatched || g.NumBytes() != tbl.NumBytes() {
		t.Fatal("metadata wrong")
	}
	g.SetThreads(2)
	out := mustGen(t, g, []uint64{1, 2, 3})
	if out.Rows != 3 {
		t.Fatal("threaded generate wrong shape")
	}
}
