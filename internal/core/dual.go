package core

import (
	"fmt"

	"secemb/internal/tensor"
)

// Dual is the LLM hybrid scheme of §IV-D: two representations of the same
// embedding — a DHE and a table materialized *from that DHE's outputs*
// protected by Circuit ORAM — with the technique chosen per call from the
// batch size. Prefill batches (prompt length × requests) exceed the
// threshold and use DHE; single-token decode batches can fall to the ORAM.
//
// Security: the choice depends only on the batch size, which in turn
// depends on the query batch, LLM stage and token counts — all public in
// the threat model ("the decision to choose DHE or Circuit ORAM in LLM
// generation depends on only the embedding generation batch size ...
// none of which we hide", §V-B). The ids never influence the choice.
type Dual struct {
	dhe       Generator
	oram      Generator
	threshold int // batches strictly larger than this use DHE
}

// NewDual wraps a trained DHE generator, materializing its table into a
// Circuit ORAM for small-batch service. threshold is the largest batch
// size still served by the ORAM (profile.LLMResult.BestSecure yields it).
func NewDual(dheGen Generator, threshold int, opts Options) *Dual {
	d, ok := Underlying(dheGen)
	if !ok {
		panic("core: NewDual requires a DHE generator")
	}
	table := d.ToTable(dheGen.Rows())
	opts.Table = table
	return &Dual{
		dhe:       dheGen,
		oram:      MustNew(CircuitORAM, table.Rows, table.Cols, opts),
		threshold: threshold,
	}
}

// Generate dispatches on the (public) batch size.
//
// secemb:secret ids
// secemb:audit dual
func (g *Dual) Generate(ids []uint64) (*tensor.Matrix, error) {
	if len(ids) > g.threshold {
		return g.dhe.Generate(ids)
	}
	return g.oram.Generate(ids)
}

// Active reports which representation a batch of the given size would use.
func (g *Dual) Active(batch int) Technique {
	if batch > g.threshold {
		return DHE
	}
	return CircuitORAM
}

// Rows returns the table cardinality.
func (g *Dual) Rows() int { return g.dhe.Rows() }

// Dim returns the embedding dimension.
func (g *Dual) Dim() int { return g.dhe.Dim() }

// Technique reports DHE (the primary representation; see Active for the
// per-batch dispatch).
func (g *Dual) Technique() Technique { return DHE }

// NumBytes counts both resident representations — the memory price of the
// dual scheme the paper flags for small models (§IV-D: "the memory
// overhead of ORAM for a single embedding table may be high relative to
// the rest of the LLM model").
func (g *Dual) NumBytes() int64 { return g.dhe.NumBytes() + g.oram.NumBytes() }

// SetThreads forwards to both representations.
func (g *Dual) SetThreads(n int) {
	g.dhe.SetThreads(n)
	g.oram.SetThreads(n)
}

// String describes the dispatch rule.
func (g *Dual) String() string {
	return fmt.Sprintf("Dual(DHE for batch>%d, Circuit ORAM otherwise)", g.threshold)
}
