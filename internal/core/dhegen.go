package core

import (
	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// dheGen adapts a dhe.DHE to the Generator interface. Its memory accesses
// are the dense sweeps of the decoder weights — the same blocks in the
// same order for every input — which the trace records at layer
// granularity so trace-equality tests cover DHE alongside the storage
// techniques.
type dheGen struct {
	d *dhe.DHE // original, training-capable instance (Underlying)
	// inf is a private inference clone: shared weights, private workspace
	// and caches. Generators built from one trained DHE (e.g. replica
	// pipelines of the same model) therefore never share mutable forward
	// state, and steady-state Generate is allocation-free. Its output
	// aliases the workspace — valid until this generator's next Generate.
	inf    *dhe.DHE
	rows   int
	tracer *memtrace.Tracer
	region string
}

func newDHEGen(d *dhe.DHE, rows int, opts Options) *dheGen {
	d.Threads = opts.Threads
	inf := d.InferenceClone()
	inf.Threads = opts.Threads
	return &dheGen{d: d, inf: inf, rows: rows, tracer: opts.Tracer, region: opts.region("dhe")}
}

// Generate computes the batch through the DHE's dense forward pass.
//
// secemb:secret ids
// secemb:audit dhe
func (g *dheGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.rows); err != nil {
		return nil, err
	}
	if g.tracer.Enabled() {
		// One deterministic sweep over each decoder layer's weights per
		// batch: the block sequence is a function of the architecture
		// only, never of the ids.
		for li, p := range g.d.Params() {
			blocks := (p.NumParams()*4 + 63) / 64 // 64-byte lines
			g.tracer.TouchRange(g.region, int64(li)<<32, int64(li)<<32+int64(blocks), memtrace.Read)
		}
	}
	return g.inf.Generate(ids), nil
}

func (g *dheGen) Rows() int            { return g.rows }
func (g *dheGen) Dim() int             { return g.d.Dim }
func (g *dheGen) Technique() Technique { return DHE }
func (g *dheGen) NumBytes() int64      { return g.d.NumBytes() }
func (g *dheGen) SetThreads(n int)     { g.d.Threads = n; g.inf.Threads = n }

// Underlying returns the wrapped DHE (for training and DHE→table
// conversion in the hybrid pipeline), looking through Instrument wrappers;
// ok is false for non-DHE generators.
func Underlying(g Generator) (*dhe.DHE, bool) {
	if dg, isDHE := unwrapGenerator(g).(*dheGen); isDHE {
		return dg.d, true
	}
	return nil, false
}
