package core

import (
	"math/rand"

	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// dheGen adapts a dhe.DHE to the Generator interface. Its memory accesses
// are the dense sweeps of the decoder weights — the same blocks in the
// same order for every input — which the trace records at layer
// granularity so trace-equality tests cover DHE alongside the storage
// techniques.
type dheGen struct {
	d      *dhe.DHE
	rows   int
	tracer *memtrace.Tracer
	region string
}

// NewDHE wraps a (possibly trained) DHE as a generator for a virtual table
// of `rows` entries.
func NewDHE(d *dhe.DHE, rows int, opts Options) Generator {
	d.Threads = opts.Threads
	return &dheGen{d: d, rows: rows, tracer: opts.Tracer, region: opts.region("dhe")}
}

// NewDHEUniform builds an untrained Uniform-architecture DHE generator
// (k=1024, 512-256-dim decoder) — the fixed architecture of Table IV.
func NewDHEUniform(rows, dim int, opts Options) Generator {
	rng := rand.New(rand.NewSource(opts.Seed))
	return NewDHE(dhe.New(dhe.UniformConfig(dim, opts.Seed), rng), rows, opts)
}

// NewDHEVaried builds an untrained Varied-architecture DHE generator,
// scaled down with the table size per Table IV.
func NewDHEVaried(rows, dim int, opts Options) Generator {
	rng := rand.New(rand.NewSource(opts.Seed))
	return NewDHE(dhe.New(dhe.VariedConfig(dim, rows, opts.Seed), rng), rows, opts)
}

func (g *dheGen) Generate(ids []uint64) *tensor.Matrix {
	checkIDs(ids, g.rows)
	if g.tracer.Enabled() {
		// One deterministic sweep over each decoder layer's weights per
		// batch: the block sequence is a function of the architecture
		// only, never of the ids.
		for li, p := range g.d.Params() {
			blocks := (p.NumParams()*4 + 63) / 64 // 64-byte lines
			g.tracer.TouchRange(g.region, int64(li)<<32, int64(li)<<32+int64(blocks), memtrace.Read)
		}
	}
	return g.d.Generate(ids)
}

func (g *dheGen) Rows() int            { return g.rows }
func (g *dheGen) Dim() int             { return g.d.Dim }
func (g *dheGen) Technique() Technique { return DHE }
func (g *dheGen) NumBytes() int64      { return g.d.NumBytes() }
func (g *dheGen) SetThreads(n int)     { g.d.Threads = n }

// Underlying returns the wrapped DHE (for training and DHE→table
// conversion in the hybrid pipeline); ok is false for non-DHE generators.
func Underlying(g Generator) (*dhe.DHE, bool) {
	if dg, isDHE := g.(*dheGen); isDHE {
		return dg.d, true
	}
	return nil, false
}
