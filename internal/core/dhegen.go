package core

import (
	"secemb/internal/dhe"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// dheGen adapts a dhe.DHE to the Generator interface. Its memory accesses
// are the dense sweeps of the decoder weights — the same blocks in the
// same order for every input — which the trace records at layer
// granularity so trace-equality tests cover DHE alongside the storage
// techniques.
type dheGen struct {
	d *dhe.DHE // original, training-capable instance (Underlying)
	// inf is a private inference clone: shared weights, private workspace
	// and caches. Generators built from one trained DHE (e.g. replica
	// pipelines of the same model) therefore never share mutable forward
	// state, and steady-state Generate is allocation-free. Its output
	// aliases the workspace — valid until this generator's next Generate.
	inf    *dhe.DHE
	rows   int
	tracer *memtrace.Tracer
	region string
}

func newDHEGen(d *dhe.DHE, rows int, opts Options) *dheGen {
	d.Threads = opts.Threads
	if opts.Int8 {
		// Quantize before cloning so the inference replica inherits the
		// (gate-approved) int8 decoder. A rejected gate leaves the float
		// path in place — serving degrades in speed, never in accuracy.
		rep := d.EnableInt8(dhe.Int8Gate{MaxAbsErr: opts.Int8MaxErr})
		if opts.Obs != nil {
			if rep.Enabled {
				opts.Obs.Counter("dhe_int8_enabled_total").Inc()
			} else {
				opts.Obs.Counter("dhe_int8_fallback_total").Inc()
			}
			var active int64
			if rep.Enabled {
				active = 1
			}
			opts.Obs.Gauge("dhe_int8_active").Set(active)
			opts.Obs.Gauge("dhe_int8_gate_err_micro").Set(int64(rep.MaxAbsErr * 1e6))
		}
	}
	inf := d.InferenceClone()
	inf.Threads = opts.Threads
	return &dheGen{d: d, inf: inf, rows: rows, tracer: opts.Tracer, region: opts.region("dhe")}
}

// Generate computes the batch through the DHE's dense forward pass.
//
// secemb:secret ids
// secemb:audit dhe dhe-int8
func (g *dheGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.rows); err != nil {
		return nil, err
	}
	if g.tracer.Enabled() {
		// One deterministic sweep over each decoder layer's weights per
		// batch: the block sequence is a function of the architecture
		// only, never of the ids. DecoderLayerBytes reports the *active*
		// representation (packed int8 or float32), so footprint sweeps see
		// the quantized sizes while the sequence stays id-independent.
		for li, bytes := range g.inf.DecoderLayerBytes() {
			blocks := (bytes + 63) / 64 // 64-byte lines
			g.tracer.TouchRange(g.region, int64(li)<<32, int64(li)<<32+blocks, memtrace.Read)
		}
	}
	return g.inf.Generate(ids), nil
}

func (g *dheGen) Rows() int            { return g.rows }
func (g *dheGen) Dim() int             { return g.d.Dim }
func (g *dheGen) Technique() Technique { return DHE }
func (g *dheGen) NumBytes() int64      { return g.d.NumBytes() }
func (g *dheGen) SetThreads(n int)     { g.d.Threads = n; g.inf.Threads = n }

// Underlying returns the wrapped DHE (for training and DHE→table
// conversion in the hybrid pipeline), looking through Instrument wrappers;
// ok is false for non-DHE generators.
func Underlying(g Generator) (*dhe.DHE, bool) {
	if dg, isDHE := unwrapGenerator(g).(*dheGen); isDHE {
		return dg.d, true
	}
	return nil, false
}

// Int8Active reports whether g is a DHE generator whose serving path runs
// the quantized decoder (i.e. Options.Int8 was set and the accuracy gate
// passed). False for non-DHE generators.
func Int8Active(g Generator) bool {
	dg, isDHE := unwrapGenerator(g).(*dheGen)
	return isDHE && dg.inf.Int8Active()
}
