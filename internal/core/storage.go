package core

import (
	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
	"secemb/internal/tensor"
)

// lookupGen is the non-secure baseline: a direct row gather. Its trace
// records exactly the requested rows — the leak demonstrated in §III.
type lookupGen struct {
	table   *tensor.Matrix
	tracer  *memtrace.Tracer
	region  string
	threads int
}

func newLookupGen(table *tensor.Matrix, opts Options) *lookupGen {
	return &lookupGen{
		table:   table,
		tracer:  opts.Tracer,
		region:  opts.region("lookup"),
		threads: opts.Threads,
	}
}

// Generate gathers the requested rows directly — the insecure baseline.
// The waived leak below is the point of this generator's existence: the
// dynamic audit (internal/leakcheck) asserts it stays observable. The
// gather is spelled out inline so the secret-addressed slice is in this
// function's own body: the one deliberate leak carries the one waiver,
// instead of blanket-waiving every call that touches the secret.
//
// secemb:secret ids
// secemb:audit lookup
func (g *lookupGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.table.Rows); err != nil {
		return nil, err
	}
	out := tensor.New(len(ids), g.table.Cols)
	tensor.ParallelRows(len(ids), g.threads, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			g.tracer.Touch(g.region, int64(ids[r]), memtrace.Read)
			base := int(ids[r]) * g.table.Cols
			//lint:allow obliviouslint/index non-secure baseline: the address leak is deliberate (§III) and leakcheck asserts it is flagged
			copy(out.Row(r), g.table.Data[base:base+g.table.Cols])
		}
	})
	return out, nil
}

func (g *lookupGen) Rows() int            { return g.table.Rows }
func (g *lookupGen) Dim() int             { return g.table.Cols }
func (g *lookupGen) Technique() Technique { return Lookup }
func (g *lookupGen) NumBytes() int64      { return g.table.NumBytes() }
func (g *lookupGen) SetThreads(n int)     { g.threads = n }

// scanGen is the oblivious linear scan (§IV-A1 / §V-A2): for every query
// in the batch the entire table is streamed and the matching row is
// blended into the output with branchless masked copies — the Go analogue
// of the paper's AVX-512 blend implementation. O(n) per query; the fastest
// secure technique for small tables (Figure 4).
type scanGen struct {
	table   *tensor.Matrix
	tracer  *memtrace.Tracer
	region  string
	threads int
}

func newScanGen(table *tensor.Matrix, opts Options) *scanGen {
	return &scanGen{
		table:   table,
		tracer:  opts.Tracer,
		region:  opts.region("scan"),
		threads: opts.Threads,
	}
}

// Generate serves every query with a full oblivious table scan.
//
// secemb:secret ids
// secemb:audit scan
func (g *scanGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.table.Rows); err != nil {
		return nil, err
	}
	out := tensor.New(len(ids), g.table.Cols)
	rows, width := g.table.Rows, g.table.Cols
	// The batch is partitioned across threads; every worker scans the
	// full table per query, as in the paper ("we scan the entire
	// embedding table for each input index in a batch"). With several
	// threads the scans share the table in cache, the reuse effect that
	// raises the scan/DHE threshold with thread count (Fig. 6).
	tensor.ParallelRows(len(ids), g.threads, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			if g.tracer.Enabled() {
				g.tracer.TouchRange(g.region, 0, int64(rows), memtrace.Read)
			}
			oblivious.LookupScan(g.table.Data, rows, width, ids[r], out.Row(r))
		}
	})
	return out, nil
}

func (g *scanGen) Rows() int            { return g.table.Rows }
func (g *scanGen) Dim() int             { return g.table.Cols }
func (g *scanGen) Technique() Technique { return LinearScan }
func (g *scanGen) NumBytes() int64      { return g.table.NumBytes() }
func (g *scanGen) SetThreads(n int)     { g.threads = n }
