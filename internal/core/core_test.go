package core

import (
	"errors"
	"math/rand"
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/tensor"
)

func testTable(rows, dim int, seed int64) *tensor.Matrix {
	return tensor.NewGaussian(rows, dim, 0.5, rand.New(rand.NewSource(seed)))
}

func mustGen(t *testing.T, g Generator, ids []uint64) *tensor.Matrix {
	t.Helper()
	out, err := g.Generate(ids)
	if err != nil {
		t.Fatalf("Generate(%v): %v", ids, err)
	}
	return out
}

// storageTechs lists every technique that *stores* the given table.
var storageTechs = []Technique{Lookup, LinearScan, LinearScanBatched, PathORAM, CircuitORAM}

// newStorage builds a storage-technique generator over tbl through the v1
// constructor.
func newStorage(tech Technique, tbl *tensor.Matrix, opts Options) Generator {
	opts.Table = tbl
	return MustNew(tech, tbl.Rows, tbl.Cols, opts)
}

func TestStorageGeneratorsAgree(t *testing.T) {
	tbl := testTable(200, 8, 1)
	ref := newStorage(Lookup, tbl, Options{})
	ids := []uint64{0, 7, 199, 7, 42}
	want := mustGen(t, ref, ids)
	for _, tech := range storageTechs[1:] {
		g := newStorage(tech, tbl, Options{Seed: 2})
		got := mustGen(t, g, ids)
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("%v output differs from direct lookup", tech)
		}
	}
}

func TestGeneratorMetadata(t *testing.T) {
	tbl := testTable(64, 4, 3)
	for _, tech := range storageTechs {
		g := newStorage(tech, tbl, Options{})
		if g.Rows() != 64 || g.Dim() != 4 {
			t.Fatalf("%v metadata wrong: rows=%d dim=%d", tech, g.Rows(), g.Dim())
		}
		if g.Technique() != tech {
			t.Fatalf("%v Technique()=%v", tech, g.Technique())
		}
		if g.NumBytes() <= 0 {
			t.Fatalf("%v NumBytes=%d", tech, g.NumBytes())
		}
	}
}

func TestTechniqueStringsAndSecurity(t *testing.T) {
	if Lookup.Secure() {
		t.Fatal("Lookup must not be secure")
	}
	for _, tech := range []Technique{LinearScan, LinearScanBatched, PathORAM, CircuitORAM, DHE} {
		if !tech.Secure() {
			t.Fatalf("%v must be secure", tech)
		}
		if tech.String() == "unknown" {
			t.Fatalf("missing name for %d", tech)
		}
	}
	if Technique(99).String() != "unknown" {
		t.Fatal("unknown technique must say so")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	tbl := testTable(10, 2, 4)
	for _, tech := range storageTechs {
		out, err := newStorage(tech, tbl, Options{}).Generate([]uint64{3, 10})
		if out != nil || err == nil {
			t.Fatalf("%v: expected error for out-of-range id, got out=%v err=%v", tech, out, err)
		}
		if !errors.Is(err, ErrIDOutOfRange) {
			t.Fatalf("%v: error %v must wrap ErrIDOutOfRange", tech, err)
		}
		var re *IDRangeError
		if !errors.As(err, &re) || re.Index != 1 || re.ID != 10 || re.Rows != 10 {
			t.Fatalf("%v: IDRangeError details wrong: %+v", tech, re)
		}
	}
	// DHE bounds the virtual table the same way.
	if _, err := MustNew(DHE, 100, 8, Options{}).Generate([]uint64{100}); !errors.Is(err, ErrIDOutOfRange) {
		t.Fatalf("DHE: expected ErrIDOutOfRange, got %v", err)
	}
}

func TestDHEGeneratorBasics(t *testing.T) {
	g := MustNew(DHE, 1000, 8, Options{Seed: 5})
	out := mustGen(t, g, []uint64{1, 2, 1})
	if out.Rows != 3 || out.Cols != 8 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	if g.Technique() != DHE || g.Rows() != 1000 || g.Dim() != 8 {
		t.Fatal("DHE metadata wrong")
	}
	if !tensor.AllClose(tensor.SliceRows(out, 0, 1), tensor.SliceRows(out, 2, 3), 0) {
		t.Fatal("same id must embed identically")
	}
	if _, ok := Underlying(g); !ok {
		t.Fatal("Underlying must expose the DHE")
	}
	if _, ok := Underlying(newStorage(Lookup, testTable(4, 2, 1), Options{})); ok {
		t.Fatal("Underlying must reject non-DHE generators")
	}
}

func TestDHEToTableRoundTrip(t *testing.T) {
	// The hybrid pipeline materializes a trained DHE into a table served
	// by linear scan; both representations must agree exactly (§IV-C1).
	rng := rand.New(rand.NewSource(6))
	d := dhe.New(dhe.Config{K: 32, Hidden: []int{16}, Dim: 4, Seed: 6}, rng)
	const rows = 50
	gDHE := MustNew(DHE, rows, d.Dim, Options{DHE: d})
	gScan := newStorage(LinearScan, d.ToTable(rows), Options{})
	ids := []uint64{0, 13, 49}
	if !tensor.AllClose(mustGen(t, gDHE, ids), mustGen(t, gScan, ids), 0) {
		t.Fatal("DHE and its materialized table disagree")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// Table VI's qualitative ordering at a representative size:
	// ORAM > table = scan ≫ DHE.
	tbl := testTable(1<<13, 16, 7)
	look := newStorage(Lookup, tbl, Options{})
	oramGen := newStorage(CircuitORAM, tbl, Options{})
	dheGen := MustNew(DHE, 1<<13, 16, Options{})
	if oramGen.NumBytes() <= look.NumBytes() {
		t.Fatal("ORAM must cost more memory than the raw table")
	}
	if dheGen.NumBytes() >= look.NumBytes() {
		t.Fatalf("DHE (%d B) must undercut the table (%d B) at this size",
			dheGen.NumBytes(), look.NumBytes())
	}
	if r := FootprintRatio(oramGen); r < 1.5 {
		t.Fatalf("ORAM footprint ratio %.2f too low", r)
	}
}

func TestORAMStatsExposed(t *testing.T) {
	tbl := testTable(128, 4, 8)
	g := newStorage(PathORAM, tbl, Options{})
	s, ok := ORAMStats(g)
	if !ok || s == nil {
		t.Fatal("ORAMStats must work for ORAM generators")
	}
	g.Generate([]uint64{1, 2})
	if s.Accesses < 2 {
		t.Fatalf("stats not advancing: %+v", s)
	}
	if _, ok := ORAMStats(newStorage(Lookup, tbl, Options{})); ok {
		t.Fatal("ORAMStats must reject non-ORAM generators")
	}
}

func TestThreadsSettable(t *testing.T) {
	tbl := testTable(64, 4, 9)
	ids := []uint64{5, 6, 7, 8}
	for _, tech := range storageTechs {
		g := newStorage(tech, tbl, Options{Threads: 1})
		a := mustGen(t, g, ids)
		// Batched-scan output aliases the generator's reusable slab; keep a
		// copy across the re-threaded run.
		a = a.Clone()
		g.SetThreads(4)
		b := mustGen(t, g, ids)
		if !tensor.AllClose(a, b, 0) {
			t.Fatalf("%v: thread count changed results", tech)
		}
	}
}

func TestFootprintRatioNaNOnEmpty(t *testing.T) {
	g := MustNew(DHE, 1000, 8, Options{})
	if FootprintRatio(g) <= 0 {
		t.Fatal("ratio must be positive for real generators")
	}
}
