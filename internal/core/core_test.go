package core

import (
	"errors"
	"math/rand"
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/tensor"
)

func testTable(rows, dim int, seed int64) *tensor.Matrix {
	return tensor.NewGaussian(rows, dim, 0.5, rand.New(rand.NewSource(seed)))
}

func mustGen(t *testing.T, g Generator, ids []uint64) *tensor.Matrix {
	t.Helper()
	out, err := g.Generate(ids)
	if err != nil {
		t.Fatalf("Generate(%v): %v", ids, err)
	}
	return out
}

// storageMakers builds every generator that *stores* the given table.
var storageMakers = []struct {
	name string
	mk   func(tbl *tensor.Matrix, opts Options) Generator
}{
	{"Lookup", NewLookup},
	{"LinearScan", NewLinearScan},
	{"PathORAM", NewPathORAM},
	{"CircuitORAM", NewCircuitORAM},
}

func TestStorageGeneratorsAgree(t *testing.T) {
	tbl := testTable(200, 8, 1)
	ref := NewLookup(tbl, Options{})
	ids := []uint64{0, 7, 199, 7, 42}
	want := mustGen(t, ref, ids)
	for _, m := range storageMakers[1:] {
		g := m.mk(tbl, Options{Seed: 2})
		got := mustGen(t, g, ids)
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("%s output differs from direct lookup", m.name)
		}
	}
}

func TestGeneratorMetadata(t *testing.T) {
	tbl := testTable(64, 4, 3)
	techs := []Technique{Lookup, LinearScan, PathORAM, CircuitORAM}
	for i, m := range storageMakers {
		g := m.mk(tbl, Options{})
		if g.Rows() != 64 || g.Dim() != 4 {
			t.Fatalf("%s metadata wrong: rows=%d dim=%d", m.name, g.Rows(), g.Dim())
		}
		if g.Technique() != techs[i] {
			t.Fatalf("%s Technique()=%v", m.name, g.Technique())
		}
		if g.NumBytes() <= 0 {
			t.Fatalf("%s NumBytes=%d", m.name, g.NumBytes())
		}
	}
}

func TestTechniqueStringsAndSecurity(t *testing.T) {
	if Lookup.Secure() {
		t.Fatal("Lookup must not be secure")
	}
	for _, tech := range []Technique{LinearScan, PathORAM, CircuitORAM, DHE} {
		if !tech.Secure() {
			t.Fatalf("%v must be secure", tech)
		}
		if tech.String() == "unknown" {
			t.Fatalf("missing name for %d", tech)
		}
	}
	if Technique(99).String() != "unknown" {
		t.Fatal("unknown technique must say so")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	tbl := testTable(10, 2, 4)
	for _, m := range storageMakers {
		out, err := m.mk(tbl, Options{}).Generate([]uint64{3, 10})
		if out != nil || err == nil {
			t.Fatalf("%s: expected error for out-of-range id, got out=%v err=%v", m.name, out, err)
		}
		if !errors.Is(err, ErrIDOutOfRange) {
			t.Fatalf("%s: error %v must wrap ErrIDOutOfRange", m.name, err)
		}
		var re *IDRangeError
		if !errors.As(err, &re) || re.Index != 1 || re.ID != 10 || re.Rows != 10 {
			t.Fatalf("%s: IDRangeError details wrong: %+v", m.name, re)
		}
	}
	// DHE bounds the virtual table the same way.
	if _, err := NewDHEVaried(100, 8, Options{}).Generate([]uint64{100}); !errors.Is(err, ErrIDOutOfRange) {
		t.Fatalf("DHE: expected ErrIDOutOfRange, got %v", err)
	}
}

func TestDHEGeneratorBasics(t *testing.T) {
	g := NewDHEVaried(1000, 8, Options{Seed: 5})
	out := mustGen(t, g, []uint64{1, 2, 1})
	if out.Rows != 3 || out.Cols != 8 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	if g.Technique() != DHE || g.Rows() != 1000 || g.Dim() != 8 {
		t.Fatal("DHE metadata wrong")
	}
	if !tensor.AllClose(tensor.SliceRows(out, 0, 1), tensor.SliceRows(out, 2, 3), 0) {
		t.Fatal("same id must embed identically")
	}
	if _, ok := Underlying(g); !ok {
		t.Fatal("Underlying must expose the DHE")
	}
	if _, ok := Underlying(NewLookup(testTable(4, 2, 1), Options{})); ok {
		t.Fatal("Underlying must reject non-DHE generators")
	}
}

func TestDHEToTableRoundTrip(t *testing.T) {
	// The hybrid pipeline materializes a trained DHE into a table served
	// by linear scan; both representations must agree exactly (§IV-C1).
	rng := rand.New(rand.NewSource(6))
	d := dhe.New(dhe.Config{K: 32, Hidden: []int{16}, Dim: 4, Seed: 6}, rng)
	const rows = 50
	gDHE := NewDHE(d, rows, Options{})
	gScan := NewLinearScan(d.ToTable(rows), Options{})
	ids := []uint64{0, 13, 49}
	if !tensor.AllClose(mustGen(t, gDHE, ids), mustGen(t, gScan, ids), 0) {
		t.Fatal("DHE and its materialized table disagree")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// Table VI's qualitative ordering at a representative size:
	// ORAM > table = scan ≫ DHE.
	tbl := testTable(1<<13, 16, 7)
	look := NewLookup(tbl, Options{})
	oramGen := NewCircuitORAM(tbl, Options{})
	dheGen := NewDHEVaried(1<<13, 16, Options{})
	if oramGen.NumBytes() <= look.NumBytes() {
		t.Fatal("ORAM must cost more memory than the raw table")
	}
	if dheGen.NumBytes() >= look.NumBytes() {
		t.Fatalf("DHE (%d B) must undercut the table (%d B) at this size",
			dheGen.NumBytes(), look.NumBytes())
	}
	if r := FootprintRatio(oramGen); r < 1.5 {
		t.Fatalf("ORAM footprint ratio %.2f too low", r)
	}
}

func TestORAMStatsExposed(t *testing.T) {
	tbl := testTable(128, 4, 8)
	g := NewPathORAM(tbl, Options{})
	s, ok := ORAMStats(g)
	if !ok || s == nil {
		t.Fatal("ORAMStats must work for ORAM generators")
	}
	g.Generate([]uint64{1, 2})
	if s.Accesses < 2 {
		t.Fatalf("stats not advancing: %+v", s)
	}
	if _, ok := ORAMStats(NewLookup(tbl, Options{})); ok {
		t.Fatal("ORAMStats must reject non-ORAM generators")
	}
}

func TestThreadsSettable(t *testing.T) {
	tbl := testTable(64, 4, 9)
	ids := []uint64{5, 6, 7, 8}
	for _, m := range storageMakers {
		g := m.mk(tbl, Options{Threads: 1})
		a := mustGen(t, g, ids)
		g.SetThreads(4)
		b := mustGen(t, g, ids)
		if !tensor.AllClose(a, b, 0) {
			t.Fatalf("%s: thread count changed results", m.name)
		}
	}
}

func TestFootprintRatioNaNOnEmpty(t *testing.T) {
	g := NewDHEVaried(1000, 8, Options{})
	if FootprintRatio(g) <= 0 {
		t.Fatal("ratio must be positive for real generators")
	}
}
