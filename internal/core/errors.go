package core

import (
	"errors"
	"fmt"
)

// ErrIDOutOfRange is the sentinel every id-validation failure wraps, so
// servers can classify malformed requests with errors.Is without matching
// message text.
var ErrIDOutOfRange = errors.New("core: id out of table range")

// IDRangeError reports the first out-of-range id in a batch. It wraps
// ErrIDOutOfRange.
type IDRangeError struct {
	Index int    // position in the ids batch
	ID    uint64 // offending value
	Rows  int    // table cardinality
}

func (e *IDRangeError) Error() string {
	return fmt.Sprintf("core: ids[%d] = %d out of table size %d", e.Index, e.ID, e.Rows)
}

func (e *IDRangeError) Unwrap() error { return ErrIDOutOfRange }

// ValidateIDs checks every id against the table cardinality, returning a
// *IDRangeError for the first violation. This replaces the panic-based
// checkIDs: a malformed request must surface as an error a serving pool
// can answer, never as a crashed replica.
//
// secemb:secret ids
func ValidateIDs(ids []uint64, rows int) error {
	for i, id := range ids {
		//lint:allow obliviouslint/branch validity gate: whether a batch is well-formed is public by policy, decided before any secret-dependent work
		if id >= uint64(rows) {
			//lint:allow obliviouslint/declass the rejected id is out of range, hence not a valid secret
			return &IDRangeError{Index: i, ID: id, Rows: rows}
		}
	}
	return nil
}
