package core

import (
	"testing"

	"secemb/internal/memtrace"
)

// traceOf runs one batch through g and returns the recorded trace.
func traceOf(tracer *memtrace.Tracer, g Generator, ids []uint64) memtrace.Trace {
	tracer.Reset()
	g.Generate(ids)
	return tracer.Snapshot()
}

// TestDeterministicTechniquesTraceEquality is the heart of the Table II
// verification: for LinearScan and DHE, the block-granular access trace
// must be *identical* no matter which secret ids are queried.
func TestDeterministicTechniquesTraceEquality(t *testing.T) {
	tbl := testTable(300, 8, 1)
	secrets := [][]uint64{
		{0, 0, 0, 0},
		{299, 299, 299, 299},
		{1, 2, 3, 4},
		{150, 3, 299, 0},
	}
	cases := []struct {
		name string
		mk   func(tracer *memtrace.Tracer) Generator
	}{
		{"LinearScan", func(tr *memtrace.Tracer) Generator {
			return newStorage(LinearScan, tbl, Options{Tracer: tr, Threads: 1})
		}},
		{"DHE", func(tr *memtrace.Tracer) Generator {
			return MustNew(DHE, 300, 8, Options{Tracer: tr, Seed: 2})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tracer := memtrace.NewEnabled()
			g := c.mk(tracer)
			ref := traceOf(tracer, g, secrets[0])
			if len(ref) == 0 {
				t.Fatal("trace instrumentation inactive")
			}
			for _, ids := range secrets[1:] {
				tr := traceOf(tracer, g, ids)
				if d := ref.FirstDiff(tr); d != -1 {
					t.Fatalf("trace differs at %d for ids %v: %v vs %v",
						d, ids, ref[d], tr[d])
				}
			}
		})
	}
}

// TestLookupTraceLeaks documents the baseline's vulnerability: the trace
// is exactly the queried rows.
func TestLookupTraceLeaks(t *testing.T) {
	tbl := testTable(100, 4, 2)
	tracer := memtrace.NewEnabled()
	g := newStorage(Lookup, tbl, Options{Tracer: tracer, Threads: 1})
	tr := traceOf(tracer, g, []uint64{42, 7})
	want := memtrace.Trace{{Region: "lookup", Block: 42, Op: memtrace.Read}, {Region: "lookup", Block: 7, Op: memtrace.Read}}
	if !tr.Equal(want) {
		t.Fatalf("lookup trace %v, want %v", tr, want)
	}
}

// TestLookupMutualInformationFull quantifies the leak: the observed block
// identifies the secret completely (log2(n) bits), while the secure
// techniques leak none.
func TestLookupMutualInformationFull(t *testing.T) {
	const n = 16
	tbl := testTable(n, 4, 3)
	tracer := memtrace.NewEnabled()

	measure := func(g Generator) float64 {
		leak := make([]map[int64]int, n)
		for s := 0; s < n; s++ {
			leak[s] = map[int64]int{}
			tr := traceOf(tracer, g, []uint64{uint64(s)})
			if len(tr) > 0 {
				leak[s][tr[0].Block]++
			}
		}
		return memtrace.MutualInformationBits(leak)
	}

	if mi := measure(newStorage(Lookup, tbl, Options{Tracer: tracer, Threads: 1})); mi < 3.9 {
		t.Fatalf("lookup MI %.2f bits, expected ≈ log2(16)=4", mi)
	}
	if mi := measure(newStorage(LinearScan, tbl, Options{Tracer: tracer, Threads: 1})); mi > 1e-9 {
		t.Fatalf("linear scan MI %.4f bits, expected 0", mi)
	}
}

// TestORAMGeneratorsAccessShape: per-batch bucket-touch counts are
// constant regardless of ids (the randomized analogue of trace equality;
// full distributional tests live in internal/oram).
func TestORAMGeneratorsAccessShape(t *testing.T) {
	tbl := testTable(256, 4, 4)
	for _, tech := range []Technique{PathORAM, CircuitORAM} {
		t.Run(tech.Key(), func(t *testing.T) {
			tracer := memtrace.NewEnabled()
			g := newStorage(tech, tbl, Options{Tracer: tracer, Seed: 5})
			count := func(ids []uint64) int {
				return len(traceOf(tracer, g, ids))
			}
			c0 := count([]uint64{0, 0, 0})
			for _, ids := range [][]uint64{{255, 255, 255}, {1, 128, 200}} {
				if c := count(ids); c != c0 {
					t.Fatalf("trace length %d for %v differs from %d", c, ids, c0)
				}
			}
		})
	}
}

// TestScanTraceCoversWholeTablePerQuery: the scan must touch every row for
// every query — not just until the match.
func TestScanTraceCoversWholeTablePerQuery(t *testing.T) {
	tbl := testTable(50, 4, 6)
	tracer := memtrace.NewEnabled()
	g := newStorage(LinearScan, tbl, Options{Tracer: tracer, Threads: 1})
	tr := traceOf(tracer, g, []uint64{0, 49})
	if len(tr) != 100 {
		t.Fatalf("scan touched %d blocks, want 2 queries × 50 rows", len(tr))
	}
	h := tr.Histogram("scan")
	for r := int64(0); r < 50; r++ {
		if h[r] != 2 {
			t.Fatalf("row %d touched %d times, want 2", r, h[r])
		}
	}
}
