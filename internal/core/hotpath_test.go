package core

import (
	"fmt"
	"math/rand"
	"testing"

	"secemb/internal/dhe"
	"secemb/internal/tensor"
)

func smallCoreDHE(seed int64) *dhe.DHE {
	rng := rand.New(rand.NewSource(seed))
	return dhe.New(dhe.Config{K: 32, Hidden: []int{24}, Dim: 8, Seed: seed}, rng)
}

// TestScanBatchedReusesBuffersCorrectly cycles one batched-scan generator
// through growing and shrinking batch sizes: outputs must match the direct
// lookup even though the output slab is recycled through the size-class
// pool and may carry stale contents from a previous (larger) batch.
func TestScanBatchedReusesBuffersCorrectly(t *testing.T) {
	tbl := testTable(128, 8, 21)
	ref := newStorage(Lookup, tbl, Options{})
	g := newStorage(LinearScanBatched, tbl, Options{})
	for _, n := range []int{5, 64, 1, 17, 64} {
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64((i * 37) % 128)
		}
		want := mustGen(t, ref, ids)
		got := mustGen(t, g, ids)
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("batch %d: batched scan diverges after buffer reuse", n)
		}
	}
}

// TestScanBatchedOutputValidUntilNextGenerate pins down the Generator
// contract: the previous output is released (and its slab may be rewritten)
// by the next Generate on the same instance.
func TestScanBatchedOutputValidUntilNextGenerate(t *testing.T) {
	tbl := testTable(64, 4, 22)
	g := newStorage(LinearScanBatched, tbl, Options{})
	first := mustGen(t, g, []uint64{3, 9}).Clone() // copy: retained past next call
	mustGen(t, g, []uint64{50, 60})
	again := mustGen(t, g, []uint64{3, 9})
	if !tensor.AllClose(again, first, 0) {
		t.Fatal("regenerated batch differs from the retained copy")
	}
}

func TestScanBatchedSteadyStateAllocs(t *testing.T) {
	tbl := testTable(256, 16, 23)
	g := newStorage(LinearScanBatched, tbl, Options{})
	ids := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	mustGen(t, g, ids) // prime the size-class pool
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state recycles the output slab through bufpool; only pool
	// bookkeeping and the occasional GC-emptied class may allocate.
	if allocs > 4 {
		t.Fatalf("steady-state batched scan allocates %.0f objects per call", allocs)
	}
}

// TestDHEGenSteadyStateAllocs covers the core-layer half of the
// zero-allocation acceptance: dheGen routes Generate through a private
// inference clone, so repeated calls must not allocate fresh layer outputs.
func TestDHEGenSteadyStateAllocs(t *testing.T) {
	d := smallCoreDHE(24)
	g := MustNew(DHE, 1000, d.Dim, Options{DHE: d})
	ids := []uint64{5, 10, 15, 20}
	mustGen(t, g, ids) // size the inference workspace
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("steady-state dheGen allocates %.0f objects per call", allocs)
	}
}

// TestDHEGenDoesNotDisturbTraining ensures the generator's inference clone
// leaves the wrapped (trainable) DHE in training mode with shared weights:
// Underlying must still expose the original instance.
func TestDHEGenDoesNotDisturbTraining(t *testing.T) {
	d := smallCoreDHE(25)
	g := MustNew(DHE, 1000, d.Dim, Options{DHE: d})
	ids := []uint64{1, 2, 3}
	want, err := g.Generate(ids)
	if err != nil {
		t.Fatal(err)
	}
	direct := d.Generate(ids)
	if !tensor.AllClose(want, direct, 0) {
		t.Fatal("generator and wrapped DHE disagree")
	}
	u, ok := Underlying(g)
	if !ok {
		t.Fatal("DHE generator lost its Underlying accessor")
	}
	if u != d {
		t.Fatal("Underlying no longer returns the wrapped trainable DHE")
	}
}

func TestBufPoolClassesAndRecycling(t *testing.T) {
	for _, n := range []int{1, 2, 3, 64, 65, 1 << 12} {
		b := grabBuf(n)
		if len(b) != n {
			t.Fatalf("grabBuf(%d) len=%d", n, len(b))
		}
		if cap(b) != 1<<bufClass(n) {
			t.Fatalf("grabBuf(%d) cap=%d, want size-class %d", n, cap(b), 1<<bufClass(n))
		}
		for i := range b {
			if b[i] != 0 {
				t.Fatalf("grabBuf(%d) returned dirty memory at %d", n, i)
			}
		}
		b[0] = 42
		releaseBuf(b)
		// The recycled slab must come back zeroed for any size in its class.
		if c := grabBuf(n); c[0] != 0 {
			t.Fatalf("recycled buffer not zeroed for n=%d", n)
		}
	}
	releaseBuf(nil) // must be a no-op
	// Foreign capacities (not produced by grabBuf) are rejected, not pooled.
	releaseBuf(make([]float32, 3, 7))
	if b := grabBuf(3); cap(b) != 4 {
		t.Fatalf("foreign slab entered the pool: cap=%d", cap(b))
	}
}

func BenchmarkScanBatchedGenerate(b *testing.B) {
	tbl := testTable(4096, 16, 31)
	g := newStorage(LinearScanBatched, tbl, Options{})
	ids := make([]uint64, 64)
	for i := range ids {
		ids[i] = uint64((i * 61) % 4096)
	}
	if _, err := g.Generate(ids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDHEGenGenerate(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			d := smallCoreDHE(32)
			g := MustNew(DHE, 100000, d.Dim, Options{DHE: d})
			ids := make([]uint64, batch)
			for i := range ids {
				ids[i] = uint64(i * 17)
			}
			if _, err := g.Generate(ids); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Generate(ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
