package core

import (
	"secemb/internal/memtrace"
	"secemb/internal/oblivious"
	"secemb/internal/tensor"
)

// scanBatchedGen is a batch-amortized variant of the linear scan and the
// subject of this repository's scan ablation (`BenchmarkAblationScanOrder`):
// instead of streaming the table once *per query* (the paper's §V-A2
// formulation), it streams the table exactly once per batch and blends
// each row into every query's output slot as it passes.
//
// The masked work is identical (rows × batch blend operations) and so is
// the security argument — every table row is touched for every batch, in
// an id-independent order — but each table word is loaded from DRAM once
// per batch rather than once per query, which helps when the table
// overflows the cache and the batch is large.
type scanBatchedGen struct {
	table   *tensor.Matrix
	tracer  *memtrace.Tracer
	region  string
	threads int

	// out is the reusable output header; its Data slab cycles through the
	// size-class buffer pool (see bufpool.go). The returned matrix is
	// valid until this generator's next Generate.
	out tensor.Matrix
}

func newScanBatchedGen(table *tensor.Matrix, opts Options) *scanBatchedGen {
	return &scanBatchedGen{
		table:   table,
		tracer:  opts.Tracer,
		region:  opts.region("scanb"),
		threads: opts.Threads,
	}
}

// Generate streams the table once for the whole batch, blending rows into
// every query slot as they pass.
//
// secemb:secret ids
// secemb:audit scanb
func (g *scanBatchedGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if err := ValidateIDs(ids, g.table.Rows); err != nil {
		return nil, err
	}
	rows, width := g.table.Rows, g.table.Cols
	releaseBuf(g.out.Data)
	g.out = tensor.Matrix{Rows: len(ids), Cols: width, Data: grabBuf(len(ids) * width)}
	out := &g.out
	// Partition the *batch* across workers; each worker makes one pass
	// over the table for its queries (so with one worker, the whole batch
	// shares a single pass).
	tensor.ParallelRows(len(ids), g.threads, func(lo, hi int) {
		if g.tracer.Enabled() {
			g.tracer.TouchRange(g.region, 0, int64(rows), memtrace.Read)
		}
		for r := 0; r < rows; r++ {
			row := g.table.Data[r*width : (r+1)*width]
			for q := lo; q < hi; q++ {
				mask := oblivious.Eq(uint64(r), ids[q])
				oblivious.CondCopy(mask, out.Row(q), row)
			}
		}
	})
	return out, nil
}

func (g *scanBatchedGen) Rows() int            { return g.table.Rows }
func (g *scanBatchedGen) Dim() int             { return g.table.Cols }
func (g *scanBatchedGen) Technique() Technique { return LinearScanBatched }
func (g *scanBatchedGen) NumBytes() int64      { return g.table.NumBytes() }
func (g *scanBatchedGen) SetThreads(n int)     { g.threads = n }
