package core

import (
	"math/bits"
	"sync"
)

// Size-classed scratch buffers for generator outputs. Serving traffic
// arrives in a small set of batch sizes, so pooling by power-of-two class
// lets every generator in the process recycle the same few slabs instead
// of allocating a fresh output matrix per request — the steady-state GC
// pressure the hot-path PR eliminates.
//
// Protocol: a generator grabs a buffer for the result it returns and
// releases the *previous* result's buffer at the start of its next
// Generate (double-buffering). That matches the output-validity contract —
// a generator's output is valid until its next Generate — without
// requiring callers to hand buffers back.

// bufClasses covers 2^0 .. 2^30 floats (4 GiB of float32 at the top).
const bufClasses = 31

var bufPools [bufClasses]sync.Pool

// bufClass returns the pool index for n floats: the smallest power of two
// ≥ n.
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// grabBuf returns a zeroed []float32 of length n from the size-class pool.
func grabBuf(n int) []float32 {
	c := bufClass(n)
	if c >= bufClasses {
		return make([]float32, n)
	}
	if v := bufPools[c].Get(); v != nil {
		b := v.([]float32)[:n]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]float32, n, 1<<c)
}

// releaseBuf returns a buffer obtained from grabBuf to its class pool.
func releaseBuf(b []float32) {
	if b == nil {
		return
	}
	c := bufClass(cap(b))
	if 1<<c != cap(b) || c >= bufClasses {
		// Not a pooled slab (or oversized); let the GC have it.
		return
	}
	bufPools[c].Put(b[:cap(b)])
}
