package core

import (
	"fmt"
	"math/rand"

	"secemb/internal/dhe"
	"secemb/internal/tensor"
)

// DHEArch selects the architecture-sizing policy when New builds an
// untrained DHE (Options.DHE == nil).
type DHEArch int

const (
	// ArchVaried scales the network with the virtual table size (Table IV).
	ArchVaried DHEArch = iota
	// ArchUniform is the fixed k=1024, 512-256-dim decoder of Table IV.
	ArchUniform
	// ArchLLM is the token-embedding architecture used for the LLM studies.
	ArchLLM
)

// New is the single construction entry point for every technique: it
// validates shape inputs, materializes defaults (a Gaussian table, an
// untrained DHE) when Options doesn't supply representations, and — when
// Options.Obs is set — returns the generator pre-wrapped with Instrument.
//
// This is the v1 surface: the per-technique constructors that predated it
// were removed; Options carries everything technique-specific (Table for
// the storage techniques, DHE/DHEArch for DHE).
func New(tech Technique, rows, dim int, opts Options) (Generator, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("core: invalid shape %dx%d for %v", rows, dim, tech)
	}
	var g Generator
	switch tech {
	case DHE:
		d := opts.DHE
		if d == nil {
			rng := rand.New(rand.NewSource(opts.Seed))
			switch opts.DHEArch {
			case ArchUniform:
				d = dhe.New(dhe.UniformConfig(dim, opts.Seed), rng)
			case ArchLLM:
				d = dhe.New(dhe.LLMConfig(dim, opts.Seed), rng)
			default:
				d = dhe.New(dhe.VariedConfig(dim, rows, opts.Seed), rng)
			}
		}
		if d.Dim != dim {
			return nil, fmt.Errorf("core: DHE dim %d != requested dim %d", d.Dim, dim)
		}
		g = newDHEGen(d, rows, opts)
	case Lookup, LinearScan, LinearScanBatched, PathORAM, CircuitORAM:
		table := opts.Table
		if table == nil {
			table = tensor.NewGaussian(rows, dim, 0.02, rand.New(rand.NewSource(opts.Seed)))
		}
		if table.Rows != rows || table.Cols != dim {
			return nil, fmt.Errorf("core: table shape %dx%d != requested %dx%d",
				table.Rows, table.Cols, rows, dim)
		}
		switch tech {
		case Lookup:
			g = newLookupGen(table, opts)
		case LinearScan:
			g = newScanGen(table, opts)
		case LinearScanBatched:
			g = newScanBatchedGen(table, opts)
		case PathORAM:
			g = newORAMGen(table, PathORAM, opts)
		case CircuitORAM:
			g = newORAMGen(table, CircuitORAM, opts)
		}
	default:
		return nil, fmt.Errorf("core: unknown technique %v", tech)
	}
	if opts.Obs != nil {
		g = InstrumentShard(g, opts.Obs, opts.Shard)
	}
	return g, nil
}

// MustNew is New for programmer-supplied shapes: a construction failure is
// a config bug, not request data, so it panics instead of returning an
// error. Examples, benchmarks and tests use it; services validating
// untrusted configuration call New.
func MustNew(tech Technique, rows, dim int, opts Options) Generator {
	g, err := New(tech, rows, dim, opts)
	if err != nil {
		panic(err)
	}
	return g
}
