package llm

import (
	"math/rand"
	"strings"
	"testing"

	"secemb/internal/core"
	"secemb/internal/tensor"
)

// twinPipelines builds two identical pipelines (same config seed, same
// embedding table) so fused execution on one can be checked against
// sequential execution on the other.
func twinPipelines(t *testing.T) (*Pipeline, *Pipeline) {
	t.Helper()
	cfg := Config{Vocab: 300, Dim: 16, Heads: 2, Layers: 2, MaxSeq: 16, Seed: 21}
	tbl := tensor.NewGaussian(cfg.Vocab, cfg.Dim, 0.02, rand.New(rand.NewSource(2)))
	a := NewRandomPipeline(cfg, core.MustNew(core.Lookup, tbl.Rows, tbl.Cols, core.Options{Table: tbl}))
	b := NewRandomPipeline(cfg, func() core.Generator {
		c := tbl.Clone()
		return core.MustNew(core.Lookup, c.Rows, c.Cols, core.Options{Table: c})
	}())
	return a, b
}

func prefillOne(t *testing.T, p *Pipeline, prompt []int) *Session {
	t.Helper()
	s := p.NewSession(1)
	if _, err := s.Prefill([][]int{prompt}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDecodeFusedMatchesSequentialDecode(t *testing.T) {
	// Two independently owned sessions advanced by one fused call must see
	// exactly the logits each would see decoding alone.
	fusedP, refP := twinPipelines(t)
	prompts := [][]int{{1, 2, 3}, {9, 8}}
	tokens := []int{5, 7}

	sA := prefillOne(t, fusedP, prompts[0])
	sB := prefillOne(t, fusedP, prompts[1])
	outs, err := DecodeFused([]*Session{sA, sB}, tokens)
	if err != nil {
		t.Fatal(err)
	}

	for i, prompt := range prompts {
		ref := prefillOne(t, refP, prompt)
		want, err := ref.Decode([]int{tokens[i]})
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, 1e-5) {
			t.Fatalf("fused decode logits for session %d differ from sequential decode", i)
		}
	}
	// The fused step advanced each session's cache: a further per-session
	// decode must agree with the reference's next step too.
	ref := prefillOne(t, refP, prompts[0])
	if _, err := ref.Decode([]int{tokens[0]}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Decode([]int{11})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFused([]*Session{sA}, []int{11})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got[0], want, 1e-5) {
		t.Fatal("KV cache state diverged after a fused decode step")
	}
	if len(sA.DecodeTimes) != 2 {
		t.Fatalf("fused decodes recorded %d decode times, want 2", len(sA.DecodeTimes))
	}
}

func TestPrefillFusedMatchesPrefill(t *testing.T) {
	fusedP, refP := twinPipelines(t)
	prompts := [][]int{{4, 5, 6, 7}, {2}}
	sA, sB := fusedP.NewSession(1), fusedP.NewSession(1)
	outs, err := PrefillFused([]*Session{sA, sB}, prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i, prompt := range prompts {
		ref := refP.NewSession(1)
		want, err := ref.Prefill([][]int{prompt})
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, 1e-5) {
			t.Fatalf("fused prefill logits for session %d differ from direct prefill", i)
		}
	}
	if sA.PrefillTime <= 0 || sB.PrefillTime <= 0 {
		t.Fatal("fused prefill must record PrefillTime")
	}
}

func TestFusedValidation(t *testing.T) {
	p1, p2 := twinPipelines(t)
	wantErr := func(name, frag string, err error) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("%s: error = %v, want mention of %q", name, err, frag)
		}
	}
	_, err := DecodeFused(nil, nil)
	wantErr("empty", "at least one session", err)

	_, err = DecodeFused([]*Session{p1.NewSession(1), p2.NewSession(1)}, []int{1, 2})
	wantErr("mixed pipelines", "different pipeline", err)

	_, err = DecodeFused([]*Session{p1.NewSession(2)}, []int{1})
	wantErr("multi-sequence", "single-sequence", err)

	_, err = DecodeFused([]*Session{p1.NewSession(1)}, []int{1})
	wantErr("not prefilled", "not prefilled", err)

	s := prefillOne(t, p1, []int{1})
	_, err = DecodeFused([]*Session{s}, []int{1, 2})
	wantErr("count mismatch", "tokens for", err)

	_, err = PrefillFused([]*Session{s}, [][]int{{1}})
	wantErr("double prefill", "already prefilled", err)

	_, err = PrefillFused([]*Session{p1.NewSession(1)}, [][]int{{}})
	wantErr("empty prompt", "length 0", err)

	_, err = PrefillFused([]*Session{p1.NewSession(1)}, [][]int{{1}, {2}})
	wantErr("prompt count", "prompts for", err)

	// Decode past MaxSeq must be refused per session.
	full := prefillOne(t, p1, make([]int, p1.Cfg.MaxSeq))
	_, err = DecodeFused([]*Session{full}, []int{1})
	wantErr("max seq", "MaxSeq", err)
}
