package llm

import (
	"fmt"
	"math/rand"

	"secemb/internal/core"
	"secemb/internal/dhe"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// TokKind selects the trainable token-embedding representation.
type TokKind int

const (
	// TableTok trains a conventional token-embedding table (with the
	// output head tied to it, as GPT-2 does).
	TableTok TokKind = iota
	// DHETok trains a DHE token embedding (the head is a separate
	// vocab×dim matrix: DHE has no table to tie to).
	DHETok
)

// Model is the trainable transformer.
type Model struct {
	Cfg    Config
	Tok    core.TrainableRep
	Pos    *nn.Embedding
	Blocks []*block
	LNF    *nn.LayerNorm
	Head   *nn.Param // vocab×dim; aliases the token table when tied
	tied   bool
}

// New builds a model with the chosen token representation.
func New(cfg Config, kind TokKind) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg: cfg,
		Pos: nn.NewEmbedding(cfg.MaxSeq, cfg.Dim, rng),
		LNF: nn.NewLayerNorm(cfg.Dim, rng),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, newBlock(cfg, rng))
	}
	switch kind {
	case TableTok:
		m.Tok = core.NewTableRep(cfg.Vocab, cfg.Dim, rng)
		// Weight tying: the head IS the token table ("the output FC layer
		// head typically shares weights with the token embedding table",
		// §II-A). Sharing the Param shares gradients too.
		m.Head = m.Tok.Params()[0]
		m.tied = true
	case DHETok:
		d := dhe.New(dhe.LLMConfig(cfg.Dim, cfg.Seed), rng)
		m.Tok = core.NewDHERep(d, cfg.Vocab)
		m.Head = nn.NewParam("head", tensor.NewGaussian(cfg.Vocab, cfg.Dim, 0.02, rng))
	default:
		panic(fmt.Sprintf("llm: unknown token kind %d", kind))
	}
	return m
}

// forwardSeq runs one sequence of tokens through the trunk, returning the
// final hidden states (T×Dim). Caches are retained for backwardSeq.
func (m *Model) forwardSeq(tokens []int) *tensor.Matrix {
	if len(tokens) > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("llm: sequence length %d exceeds MaxSeq %d", len(tokens), m.Cfg.MaxSeq))
	}
	ids := make([]uint64, len(tokens))
	positions := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = uint64(t)
		positions[i] = i
	}
	x := m.Tok.Forward(ids)
	tensor.AddInPlace(x, m.Pos.LookupBatch(positions))
	for _, b := range m.Blocks {
		x = b.forward(x)
	}
	return m.LNF.Forward(x)
}

// Logits projects hidden states onto the vocabulary: h·Headᵀ.
func (m *Model) Logits(hidden *tensor.Matrix) *tensor.Matrix {
	return tensor.MatMulTransB(hidden, m.Head.Value, 0)
}

// LossSeq computes the next-token cross-entropy of one (input, target)
// sequence pair without touching gradients.
func (m *Model) LossSeq(tokens, targets []int) float64 {
	hidden := m.forwardSeq(tokens)
	loss, _ := nn.CrossEntropyLogits(m.Logits(hidden), targets)
	return loss
}

// TrainSeq runs forward+backward on one sequence, accumulating gradients,
// and returns the loss. Call ZeroGrads/opt.Step around batches of
// sequences.
func (m *Model) TrainSeq(tokens, targets []int) float64 {
	hidden := m.forwardSeq(tokens)
	logits := m.Logits(hidden)
	loss, dLogits := nn.CrossEntropyLogits(logits, targets)

	// Head gradients: dHead += dLogitsᵀ·hidden; dHidden = dLogits·Head.
	tensor.AddInPlace(m.Head.Grad, tensor.MatMulTransA(dLogits, hidden, 0))
	dX := tensor.MatMul(dLogits, m.Head.Value, 0)

	dX = m.LNF.Backward(dX)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dX = m.Blocks[i].backward(dX)
	}
	ids := make([]uint64, len(tokens))
	positions := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = uint64(t)
		positions[i] = i
	}
	m.Pos.BackwardBatch(positions, dX)
	m.Tok.Backward(ids, dX)
	return loss
}

// Params collects all trainable parameters (deduplicating the tied head).
func (m *Model) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.Pos.Params()...)
	out = append(out, m.LNF.Params()...)
	for _, b := range m.Blocks {
		out = append(out, b.params()...)
	}
	out = append(out, m.Tok.Params()...)
	if !m.tied {
		out = append(out, m.Head)
	}
	return out
}

// ZeroGrads clears all gradients.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Perplexity evaluates exp(mean CE) over the given sequences — the
// quality metric of Figure 14.
func (m *Model) Perplexity(inputs, targets [][]int) float64 {
	var total float64
	var count int
	for i := range inputs {
		total += m.LossSeq(inputs[i], targets[i]) * float64(len(targets[i]))
		count += len(targets[i])
	}
	return nn.Perplexity(total / float64(count))
}

// NumBytes is the model footprint (the LLM memory analysis of §VI-D3).
func (m *Model) NumBytes() int64 {
	var n int64
	for _, p := range m.Params() {
		n += p.Value.NumBytes()
	}
	if m.tied {
		return n // head already counted via the table
	}
	return n
}

// EmbeddingBytes isolates the token-embedding representation's footprint
// (plus the untied head where applicable) for the §VI-D3 comparison.
func (m *Model) EmbeddingBytes() int64 {
	n := m.Tok.NumBytes()
	if !m.tied {
		n += m.Head.Value.NumBytes()
	}
	return n
}
