package llm

import (
	"fmt"
	"time"

	"secemb/internal/tensor"
)

// Fused cross-request generation: many independent single-sequence
// sessions of the same pipeline advance together, with every token
// embedding produced by ONE Generate call. This is the entry point the
// serving layer's micro-batcher uses to lift concurrent decode streams to
// the embedding batch sizes the paper's Figures 5/15 assume — and the
// batch sizes the §IV-D Dual scheme dispatches on: a coalesced decode
// step of B streams presents batch B to the generator, flipping it across
// the DHE/Circuit-ORAM threshold even though each caller decodes one
// token at a time. The fused batch size is public (request count), the
// token ids inside it are not (§V-B).

// validateFused checks that sessions are fusable: all single-sequence,
// all on the same pipeline.
func validateFused(sessions []*Session) (*Pipeline, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("llm: fused call needs at least one session")
	}
	p := sessions[0].p
	for i, s := range sessions {
		if s.p != p {
			return nil, fmt.Errorf("llm: session %d belongs to a different pipeline", i)
		}
		if len(s.lens) != 1 {
			return nil, fmt.Errorf("llm: session %d has %d sequences; fused calls take single-sequence sessions", i, len(s.lens))
		}
	}
	return p, nil
}

// DecodeFused appends one token to every session and returns each
// session's next-token logits (one 1×Vocab matrix per session). The
// embedding-generation batch equals len(sessions) — the coalesced decode
// batch — instead of 1 per caller.
func DecodeFused(sessions []*Session, tokens []int) ([]*tensor.Matrix, error) {
	start := time.Now()
	p, err := validateFused(sessions)
	if err != nil {
		return nil, err
	}
	if len(tokens) != len(sessions) {
		return nil, fmt.Errorf("llm: %d tokens for %d sessions", len(tokens), len(sessions))
	}
	for i, s := range sessions {
		if s.lens[0] == 0 {
			return nil, fmt.Errorf("llm: session %d not prefilled", i)
		}
		if s.lens[0] >= p.Cfg.MaxSeq {
			return nil, fmt.Errorf("llm: session %d exceeded MaxSeq %d", i, p.Cfg.MaxSeq)
		}
	}
	ids := make([]uint64, len(tokens))
	for i, t := range tokens {
		ids[i] = uint64(t)
	}
	emb, err := p.Gen.Generate(ids) // ONE batched secure embedding generation
	if err != nil {
		return nil, fmt.Errorf("llm: fused decode embedding: %w", err)
	}
	outs := make([]*tensor.Matrix, len(sessions))
	for i, s := range sessions {
		x := tensor.SliceRows(emb, i, i+1)
		row := x.Row(0)
		pos := p.Pos.Row(s.lens[0])
		for c := range row {
			row[c] += pos[c]
		}
		hidden := p.forwardChunk(s, 0, x)
		outs[i] = tensor.MatMulTransB(hidden, p.Head, 0)
		s.lens[0]++
	}
	d := time.Since(start)
	for _, s := range sessions {
		s.DecodeTimes = append(s.DecodeTimes, d)
	}
	return outs, nil
}

// PrefillFused processes one prompt per session and returns each
// session's final-position logits (one 1×Vocab matrix per session). The
// token embeddings of all prompts are generated in a single Generate call
// (batch = Σ prompt lengths), exactly as a one-session batched Prefill
// would, but across independently owned sessions.
func PrefillFused(sessions []*Session, prompts [][]int) ([]*tensor.Matrix, error) {
	start := time.Now()
	p, err := validateFused(sessions)
	if err != nil {
		return nil, err
	}
	if len(prompts) != len(sessions) {
		return nil, fmt.Errorf("llm: %d prompts for %d sessions", len(prompts), len(sessions))
	}
	var ids []uint64
	for i, toks := range prompts {
		if sessions[i].lens[0] != 0 {
			return nil, fmt.Errorf("llm: session %d already prefilled", i)
		}
		if len(toks) == 0 || len(toks) > p.Cfg.MaxSeq {
			return nil, fmt.Errorf("llm: prompt %d length %d out of (0, %d]", i, len(toks), p.Cfg.MaxSeq)
		}
		for _, t := range toks {
			ids = append(ids, uint64(t))
		}
	}
	emb, err := p.Gen.Generate(ids)
	if err != nil {
		return nil, fmt.Errorf("llm: fused prefill embedding: %w", err)
	}
	outs := make([]*tensor.Matrix, len(sessions))
	off := 0
	for i, s := range sessions {
		T := len(prompts[i])
		x := tensor.SliceRows(emb, off, off+T)
		off += T
		for r := 0; r < T; r++ {
			row := x.Row(r)
			pos := p.Pos.Row(r)
			for c := range row {
				row[c] += pos[c]
			}
		}
		hidden := p.forwardChunk(s, 0, x)
		last := tensor.SliceRows(hidden, T-1, T)
		outs[i] = tensor.MatMulTransB(last, p.Head, 0)
		s.lens[0] = T
		s.PrefillTime = time.Since(start)
	}
	return outs, nil
}
