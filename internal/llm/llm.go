// Package llm implements a GPT-2-architecture transformer language model —
// the paper's second case study (Figure 1b): token embeddings + learned
// positional encodings feeding a stack of pre-norm attention/FFN blocks,
// with a (tied or separate) output head over the vocabulary.
//
// Like the DLRM package it has two forms: a trainable Model whose token
// embedding is a table or a DHE (the paper finetunes GPT-2 medium with the
// table replaced by DHE, §VI-A3), and an inference Pipeline with KV caches
// whose token embedding is any core.Generator — the seam where the secure
// techniques plug in. Greedy sampling uses the oblivious argmax (§V-C).
package llm

import (
	"fmt"
	"math"
	"math/rand"

	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// Config describes a transformer architecture.
type Config struct {
	Vocab  int
	Dim    int
	Heads  int
	Layers int
	MaxSeq int
	Seed   int64
}

// GPT2Medium is the shape of the paper's model: 355M parameters,
// dim 1024, 24 layers, 16 heads, vocabulary 50257.
func GPT2Medium(seed int64) Config {
	return Config{Vocab: 50257, Dim: 1024, Heads: 16, Layers: 24, MaxSeq: 1024, Seed: seed}
}

// Tiny is a miniature used for training experiments on CPU.
func Tiny(vocab int, seed int64) Config {
	return Config{Vocab: vocab, Dim: 32, Heads: 2, Layers: 2, MaxSeq: 64, Seed: seed}
}

func (c Config) headDim() int {
	if c.Dim%c.Heads != 0 {
		panic(fmt.Sprintf("llm: dim %d not divisible by %d heads", c.Dim, c.Heads))
	}
	return c.Dim / c.Heads
}

// block is one pre-norm transformer block: x + Attn(LN1(x)), then
// x + FFN(LN2(x)).
type block struct {
	cfg  Config
	ln1  *nn.LayerNorm
	attn *attention
	ln2  *nn.LayerNorm
	fc1  *nn.Linear
	act  *nn.GELU
	fc2  *nn.Linear
}

func newBlock(cfg Config, rng *rand.Rand) *block {
	return &block{
		cfg:  cfg,
		ln1:  nn.NewLayerNorm(cfg.Dim, rng),
		attn: newAttention(cfg, rng),
		ln2:  nn.NewLayerNorm(cfg.Dim, rng),
		fc1:  nn.NewLinear(cfg.Dim, 4*cfg.Dim, rng),
		act:  &nn.GELU{},
		fc2:  nn.NewLinear(4*cfg.Dim, cfg.Dim, rng),
	}
}

// forward processes one sequence (T×Dim) causally.
func (b *block) forward(x *tensor.Matrix) *tensor.Matrix {
	h := b.attn.forward(b.ln1.Forward(x))
	x2 := tensor.Add(x, h)
	f := b.fc2.Forward(b.act.Forward(b.fc1.Forward(b.ln2.Forward(x2))))
	return tensor.Add(x2, f)
}

// backward propagates dOut for the sequence last seen by forward.
func (b *block) backward(dOut *tensor.Matrix) *tensor.Matrix {
	dH2 := b.ln2.Backward(b.fc1.Backward(b.act.Backward(b.fc2.Backward(dOut))))
	dX2 := tensor.Add(dOut, dH2)
	dH1 := b.ln1.Backward(b.attn.backward(dX2))
	return tensor.Add(dX2, dH1)
}

func (b *block) params() []*nn.Param {
	out := append([]*nn.Param{}, b.ln1.Params()...)
	out = append(out, b.attn.params()...)
	out = append(out, b.ln2.Params()...)
	out = append(out, b.fc1.Params()...)
	out = append(out, b.fc2.Params()...)
	return out
}

// attention is multi-head causal self-attention.
type attention struct {
	cfg  Config
	qkv  *nn.Linear // Dim → 3·Dim
	proj *nn.Linear // Dim → Dim

	// caches for backward (single sequence)
	lastQKV *tensor.Matrix
	lastA   []*tensor.Matrix // per head T×T attention weights
}

func newAttention(cfg Config, rng *rand.Rand) *attention {
	return &attention{
		cfg:  cfg,
		qkv:  nn.NewLinear(cfg.Dim, 3*cfg.Dim, rng),
		proj: nn.NewLinear(cfg.Dim, cfg.Dim, rng),
	}
}

// headView returns head h's slice of a T×3Dim qkv matrix for component
// comp (0=Q, 1=K, 2=V) as a fresh T×headDim matrix.
func (a *attention) headView(qkv *tensor.Matrix, comp, h int) *tensor.Matrix {
	hd := a.cfg.headDim()
	lo := comp*a.cfg.Dim + h*hd
	return tensor.SliceCols(qkv, lo, lo+hd)
}

func (a *attention) forward(x *tensor.Matrix) *tensor.Matrix {
	T := x.Rows
	hd := a.cfg.headDim()
	qkv := a.qkv.Forward(x)
	a.lastQKV = qkv
	a.lastA = a.lastA[:0]
	concat := tensor.New(T, a.cfg.Dim)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for h := 0; h < a.cfg.Heads; h++ {
		q := a.headView(qkv, 0, h)
		k := a.headView(qkv, 1, h)
		v := a.headView(qkv, 2, h)
		scores := tensor.MatMulTransB(q, k, 1)
		tensor.ScaleInPlace(scores, scale)
		applyCausalMask(scores)
		attnW := nn.SoftmaxRows(scores)
		a.lastA = append(a.lastA, attnW)
		o := tensor.MatMul(attnW, v, 1)
		for r := 0; r < T; r++ {
			copy(concat.Row(r)[h*hd:(h+1)*hd], o.Row(r))
		}
	}
	return a.proj.Forward(concat)
}

func (a *attention) backward(dOut *tensor.Matrix) *tensor.Matrix {
	T := dOut.Rows
	hd := a.cfg.headDim()
	dConcat := a.proj.Backward(dOut)
	dQKV := tensor.New(T, 3*a.cfg.Dim)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for h := 0; h < a.cfg.Heads; h++ {
		q := a.headView(a.lastQKV, 0, h)
		k := a.headView(a.lastQKV, 1, h)
		v := a.headView(a.lastQKV, 2, h)
		attnW := a.lastA[h]
		dO := tensor.SliceCols(dConcat, h*hd, (h+1)*hd)

		dAttn := tensor.MatMulTransB(dO, v, 1) // T×T
		dV := tensor.MatMulTransA(attnW, dO, 1)
		// Softmax backward per row: dS = A ⊙ (dA − rowsum(dA⊙A)).
		dScores := tensor.New(T, T)
		for r := 0; r < T; r++ {
			aRow := attnW.Row(r)
			dRow := dAttn.Row(r)
			var dot float32
			for c := range aRow {
				dot += aRow[c] * dRow[c]
			}
			dst := dScores.Row(r)
			for c := range aRow {
				dst[c] = aRow[c] * (dRow[c] - dot)
			}
		}
		tensor.ScaleInPlace(dScores, scale)
		dQ := tensor.MatMul(dScores, k, 1)
		dK := tensor.MatMulTransA(dScores, q, 1)

		for r := 0; r < T; r++ {
			copy(dQKV.Row(r)[h*hd:(h+1)*hd], dQ.Row(r))
			copy(dQKV.Row(r)[a.cfg.Dim+h*hd:a.cfg.Dim+(h+1)*hd], dK.Row(r))
			copy(dQKV.Row(r)[2*a.cfg.Dim+h*hd:2*a.cfg.Dim+(h+1)*hd], dV.Row(r))
		}
	}
	return a.qkv.Backward(dQKV)
}

func (a *attention) params() []*nn.Param {
	return append(append([]*nn.Param{}, a.qkv.Params()...), a.proj.Params()...)
}

// applyCausalMask sets scores[i][j] = -inf-ish for j > i. The mask depends
// only on the (public) sequence length (§V-C: prompt length is not
// hidden).
func applyCausalMask(scores *tensor.Matrix) {
	const negInf = float32(-1e9)
	for r := 0; r < scores.Rows; r++ {
		row := scores.Row(r)
		for c := r + 1; c < len(row); c++ {
			row[c] = negInf
		}
	}
}
