package llm

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"secemb/internal/core"
	"secemb/internal/nn"
	"secemb/internal/oblivious"
	"secemb/internal/tensor"
)

// Pipeline is the inference-time transformer: trained (or random, for
// latency studies) trunk weights, KV caches, and a pluggable
// core.Generator for token embeddings. Prefill embeds the whole prompt
// batch in one embedding-generation call (batch = requests × prompt
// length) while each decode step embeds one token per request — the
// batch-size asymmetry behind the paper's prefill-vs-decode findings
// (Figure 5, Figure 15's table).
type Pipeline struct {
	Cfg    Config
	Gen    core.Generator
	Pos    *tensor.Matrix // MaxSeq×Dim positional table (public indices)
	Blocks []*block
	LNF    *nn.LayerNorm
	Head   *tensor.Matrix // Vocab×Dim
}

// FromModel assembles a pipeline reusing a trained model's trunk, with
// token embeddings served by gen.
func FromModel(m *Model, gen core.Generator) *Pipeline {
	if gen.Dim() != m.Cfg.Dim {
		panic(fmt.Sprintf("llm: generator dim %d != model dim %d", gen.Dim(), m.Cfg.Dim))
	}
	return &Pipeline{
		Cfg:    m.Cfg,
		Gen:    gen,
		Pos:    m.Pos.Weight.Value,
		Blocks: m.Blocks,
		LNF:    m.LNF,
		Head:   m.Head.Value,
	}
}

// NewRandomPipeline builds an untrained pipeline of the given shape —
// sufficient for latency experiments, where only shapes matter.
func NewRandomPipeline(cfg Config, gen core.Generator) *Pipeline {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Pipeline{
		Cfg:  cfg,
		Gen:  gen,
		Pos:  tensor.NewGaussian(cfg.MaxSeq, cfg.Dim, 0.02, rng),
		LNF:  nn.NewLayerNorm(cfg.Dim, rng),
		Head: tensor.NewGaussian(cfg.Vocab, cfg.Dim, 0.02, rng),
	}
	for i := 0; i < cfg.Layers; i++ {
		p.Blocks = append(p.Blocks, newBlock(cfg, rng))
	}
	return p
}

// Session holds the KV caches for one batch of generation requests.
type Session struct {
	p    *Pipeline
	kv   [][]kvCache // [layer][sequence]
	lens []int       // tokens cached so far, per sequence

	// Timing of the last Prefill and of each Decode step.
	PrefillTime time.Duration
	DecodeTimes []time.Duration
}

type kvCache struct {
	k, v *tensor.Matrix // MaxSeq×Dim
}

// NewSession prepares caches for `batch` concurrent sequences.
func (p *Pipeline) NewSession(batch int) *Session {
	s := &Session{p: p, lens: make([]int, batch)}
	s.kv = make([][]kvCache, p.Cfg.Layers)
	for l := range s.kv {
		s.kv[l] = make([]kvCache, batch)
		for b := range s.kv[l] {
			s.kv[l][b] = kvCache{
				k: tensor.New(p.Cfg.MaxSeq, p.Cfg.Dim),
				v: tensor.New(p.Cfg.MaxSeq, p.Cfg.Dim),
			}
		}
	}
	return s
}

// Prefill processes the prompt of every sequence and returns the logits of
// each sequence's final position (batch×Vocab). The token embeddings of
// *all* prompts are generated in a single Generate call, so the embedding
// batch is Σ prompt lengths (e.g. 256×B for the paper's setup).
func (s *Session) Prefill(prompts [][]int) (*tensor.Matrix, error) {
	start := time.Now()
	p := s.p
	if len(prompts) != len(s.lens) {
		return nil, fmt.Errorf("llm: %d prompts for %d-sequence session", len(prompts), len(s.lens))
	}
	var ids []uint64
	for b, toks := range prompts {
		if s.lens[b] != 0 {
			return nil, fmt.Errorf("llm: Prefill on an already-prefilled session")
		}
		if len(toks) == 0 || len(toks) > p.Cfg.MaxSeq {
			return nil, fmt.Errorf("llm: prompt length %d out of (0, %d]", len(toks), p.Cfg.MaxSeq)
		}
		for _, t := range toks {
			ids = append(ids, uint64(t))
		}
	}
	emb, err := p.Gen.Generate(ids) // ONE batched secure embedding generation
	if err != nil {
		return nil, fmt.Errorf("llm: prefill embedding: %w", err)
	}
	out := tensor.New(len(prompts), p.Cfg.Vocab)
	off := 0
	for b, toks := range prompts {
		T := len(toks)
		x := tensor.SliceRows(emb, off, off+T)
		off += T
		for i := 0; i < T; i++ {
			row := x.Row(i)
			pos := p.Pos.Row(i)
			for c := range row {
				row[c] += pos[c]
			}
		}
		hidden := p.forwardChunk(s, b, x)
		last := tensor.SliceRows(hidden, T-1, T)
		logits := tensor.MatMulTransB(last, p.Head, 0)
		copy(out.Row(b), logits.Row(0))
		s.lens[b] = T
	}
	s.PrefillTime = time.Since(start)
	return out, nil
}

// Decode appends one token per sequence and returns next-token logits
// (batch×Vocab). The embedding-generation batch equals the request batch.
func (s *Session) Decode(tokens []int) (*tensor.Matrix, error) {
	start := time.Now()
	p := s.p
	if len(tokens) != len(s.lens) {
		return nil, fmt.Errorf("llm: %d tokens for %d-sequence session", len(tokens), len(s.lens))
	}
	ids := make([]uint64, len(tokens))
	for i, t := range tokens {
		ids[i] = uint64(t)
	}
	emb, err := p.Gen.Generate(ids)
	if err != nil {
		return nil, fmt.Errorf("llm: decode embedding: %w", err)
	}
	out := tensor.New(len(tokens), p.Cfg.Vocab)
	for b := range tokens {
		if s.lens[b] >= p.Cfg.MaxSeq {
			return nil, fmt.Errorf("llm: sequence %d exceeded MaxSeq %d", b, p.Cfg.MaxSeq)
		}
		x := tensor.SliceRows(emb, b, b+1)
		row := x.Row(0)
		pos := p.Pos.Row(s.lens[b])
		for c := range row {
			row[c] += pos[c]
		}
		hidden := p.forwardChunk(s, b, x)
		logits := tensor.MatMulTransB(hidden, p.Head, 0)
		copy(out.Row(b), logits.Row(0))
		s.lens[b]++
	}
	d := time.Since(start)
	s.DecodeTimes = append(s.DecodeTimes, d)
	return out, nil
}

// forwardChunk runs Tnew new embedded tokens of sequence b through the
// trunk using (and extending) the KV caches. Returns Tnew×Dim hidden
// states after the final LayerNorm.
func (p *Pipeline) forwardChunk(s *Session, b int, x *tensor.Matrix) *tensor.Matrix {
	prev := s.lens[b]
	for li, blk := range p.Blocks {
		x = p.blockInfer(s.kv[li][b], prev, blk, x)
	}
	return p.LNF.Forward(x)
}

// blockInfer is block.forward with cached K/V attention.
func (p *Pipeline) blockInfer(cache kvCache, prev int, blk *block, x *tensor.Matrix) *tensor.Matrix {
	h := blk.ln1.Forward(x)
	attnOut := p.attnInfer(cache, prev, blk.attn, h)
	x2 := tensor.Add(x, attnOut)
	f := blk.fc2.Forward(blk.act.Forward(blk.fc1.Forward(blk.ln2.Forward(x2))))
	return tensor.Add(x2, f)
}

// attnInfer computes causal attention for Tnew new tokens against
// prev+Tnew cached positions.
func (p *Pipeline) attnInfer(cache kvCache, prev int, a *attention, x *tensor.Matrix) *tensor.Matrix {
	Tnew := x.Rows
	dim := p.Cfg.Dim
	hd := p.Cfg.headDim()
	qkv := a.qkv.Forward(x)
	// Append new K/V rows to the cache.
	for i := 0; i < Tnew; i++ {
		copy(cache.k.Row(prev+i), qkv.Row(i)[dim:2*dim])
		copy(cache.v.Row(prev+i), qkv.Row(i)[2*dim:3*dim])
	}
	concat := tensor.New(Tnew, dim)
	scale := 1 / math.Sqrt(float64(hd))
	for h := 0; h < p.Cfg.Heads; h++ {
		for i := 0; i < Tnew; i++ {
			q := qkv.Row(i)[h*hd : (h+1)*hd]
			limit := prev + i + 1 // causal: attend up to self
			scores := make([]float64, limit)
			maxS := math.Inf(-1)
			for j := 0; j < limit; j++ {
				kRow := cache.k.Row(j)[h*hd : (h+1)*hd]
				var dot float64
				for c := 0; c < hd; c++ {
					dot += float64(q[c]) * float64(kRow[c])
				}
				dot *= scale
				scores[j] = dot
				if dot > maxS {
					maxS = dot
				}
			}
			var sum float64
			for j := range scores {
				scores[j] = math.Exp(scores[j] - maxS)
				sum += scores[j]
			}
			dst := concat.Row(i)[h*hd : (h+1)*hd]
			for j := 0; j < limit; j++ {
				w := float32(scores[j] / sum)
				vRow := cache.v.Row(j)[h*hd : (h+1)*hd]
				for c := 0; c < hd; c++ {
					dst[c] += w * vRow[c]
				}
			}
		}
	}
	return a.proj.Forward(concat)
}

// GreedyNext returns the most probable token per row using the oblivious
// argmax — the secure greedy sampling of §V-C.
func GreedyNext(logits *tensor.Matrix) []int {
	out := make([]int, logits.Rows)
	for r := range out {
		out[r] = oblivious.ArgMax(logits.Row(r))
	}
	return out
}

// SampleNext draws the next token per row from the top-k softmax at the
// given temperature, using the oblivious top-k/cumulative-select kernels —
// the sampling analogue of the paper's oblivious greedy argmax. rng
// supplies the (non-secret) randomness; temperature ≤ 0 degrades to
// greedy.
func SampleNext(logits *tensor.Matrix, k int, temperature float64, rng *rand.Rand) []int {
	out := make([]int, logits.Rows)
	for r := range out {
		out[r] = oblivious.SampleTopK(logits.Row(r), k, temperature, rng.Float64())
	}
	return out
}

// GenerateSampled is Generate with top-k/temperature sampling instead of
// greedy decoding.
func (p *Pipeline) GenerateSampled(prompts [][]int, steps, k int, temperature float64, rng *rand.Rand) (*Session, [][]int, error) {
	s := p.NewSession(len(prompts))
	logits, err := s.Prefill(prompts)
	if err != nil {
		return nil, nil, err
	}
	outs := make([][]int, len(prompts))
	next := SampleNext(logits, k, temperature, rng)
	for i, t := range next {
		outs[i] = append(outs[i], t)
	}
	for step := 1; step < steps; step++ {
		logits, err = s.Decode(next)
		if err != nil {
			return nil, nil, err
		}
		next = SampleNext(logits, k, temperature, rng)
		for i, t := range next {
			outs[i] = append(outs[i], t)
		}
	}
	return s, outs, nil
}

// Generate runs prefill plus `steps` greedy decode steps and returns the
// generated tokens per sequence. Timing lands in the session fields
// (TTFT = PrefillTime; TBT = mean of DecodeTimes), matching the metrics of
// §VI-A3.
func (p *Pipeline) Generate(prompts [][]int, steps int) (*Session, [][]int, error) {
	s := p.NewSession(len(prompts))
	logits, err := s.Prefill(prompts)
	if err != nil {
		return nil, nil, err
	}
	outs := make([][]int, len(prompts))
	next := GreedyNext(logits)
	for i, t := range next {
		outs[i] = append(outs[i], t)
	}
	for step := 1; step < steps; step++ {
		logits, err = s.Decode(next)
		if err != nil {
			return nil, nil, err
		}
		next = GreedyNext(logits)
		for i, t := range next {
			outs[i] = append(outs[i], t)
		}
	}
	return s, outs, nil
}

// MeanDecodeTime is the paper's TBT (time between tokens).
func (s *Session) MeanDecodeTime() time.Duration {
	if len(s.DecodeTimes) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.DecodeTimes {
		total += d
	}
	return total / time.Duration(len(s.DecodeTimes))
}
