package llm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"secemb/internal/core"
	"secemb/internal/data"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

func tinyModel(kind TokKind, seed int64) *Model {
	return New(Tiny(97, seed), kind)
}

func mustPrefill(t *testing.T, s *Session, prompts [][]int) *tensor.Matrix {
	t.Helper()
	out, err := s.Prefill(prompts)
	if err != nil {
		t.Fatalf("Prefill: %v", err)
	}
	return out
}

func mustDecode(t *testing.T, s *Session, tokens []int) *tensor.Matrix {
	t.Helper()
	out, err := s.Decode(tokens)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return out
}

func TestForwardSeqShape(t *testing.T) {
	for _, kind := range []TokKind{TableTok, DHETok} {
		m := tinyModel(kind, 1)
		h := m.forwardSeq([]int{1, 2, 3, 4})
		if h.Rows != 4 || h.Cols != m.Cfg.Dim {
			t.Fatalf("hidden shape %dx%d", h.Rows, h.Cols)
		}
		logits := m.Logits(h)
		if logits.Rows != 4 || logits.Cols != 97 {
			t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
		}
	}
}

func TestCausality(t *testing.T) {
	// Changing a later token must not change earlier positions' logits.
	m := tinyModel(TableTok, 2)
	a := m.Logits(m.forwardSeq([]int{5, 6, 7, 8}))
	b := m.Logits(m.forwardSeq([]int{5, 6, 7, 90}))
	for pos := 0; pos < 3; pos++ {
		for c := 0; c < a.Cols; c++ {
			if a.At(pos, c) != b.At(pos, c) {
				t.Fatalf("position %d logit %d changed with a future token", pos, c)
			}
		}
	}
	// The final position must change.
	if tensor.AllClose(tensor.SliceRows(a, 3, 4), tensor.SliceRows(b, 3, 4), 1e-9) {
		t.Fatal("final logits insensitive to final token")
	}
}

func TestTrainSeqGradientSpotCheck(t *testing.T) {
	m := New(Config{Vocab: 19, Dim: 8, Heads: 2, Layers: 1, MaxSeq: 8, Seed: 3}, TableTok)
	tokens := []int{1, 5, 9, 2}
	targets := []int{5, 9, 2, 7}
	m.ZeroGrads()
	m.TrainSeq(tokens, targets)

	rng := rand.New(rand.NewSource(4))
	params := m.Params()
	for _, p := range params {
		for trial := 0; trial < 2; trial++ {
			i := rng.Intn(len(p.Value.Data))
			const h = 1e-2
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := m.LossSeq(tokens, targets)
			p.Value.Data[i] = orig - h
			down := m.LossSeq(tokens, targets)
			p.Value.Data[i] = orig
			want := (up - down) / (2 * h)
			got := float64(p.Grad.Data[i])
			if math.Abs(got-want) > 6e-2*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: got %v want %v", p.Name, i, got, want)
			}
		}
	}
}

func TestTiedHeadSharesStorage(t *testing.T) {
	m := tinyModel(TableTok, 5)
	w, ok := core.TableWeights(m.Tok)
	if !ok {
		t.Fatal("table weights missing")
	}
	if &m.Head.Value.Data[0] != &w.Data[0] {
		t.Fatal("tied head must alias the token table")
	}
	md := tinyModel(DHETok, 5)
	if _, ok := core.TableWeights(md.Tok); ok {
		t.Fatal("DHE model should not expose table weights")
	}
	if md.Head == nil || md.Head.Value.Rows != 97 {
		t.Fatal("DHE model needs its own head")
	}
}

// trainTiny runs a short finetuning loop and returns (before, after)
// perplexity on held-out text.
func trainTiny(t *testing.T, kind TokKind, steps int) (float64, float64) {
	t.Helper()
	cfg := Config{Vocab: 61, Dim: 24, Heads: 2, Layers: 2, MaxSeq: 16, Seed: 7}
	m := New(cfg, kind)
	corpus := data.NewCorpus(cfg.Vocab, 8)
	rng := rand.New(rand.NewSource(9))
	train := corpus.Generate(6000, rng)
	test := corpus.Generate(600, rng)
	ins, tgts := data.Batches(train, 12)
	tins, ttgts := data.Batches(test, 12)

	before := m.Perplexity(tins, ttgts)
	opt := nn.NewAdam(3e-3)
	idx := 0
	for s := 0; s < steps; s++ {
		m.ZeroGrads()
		for b := 0; b < 4; b++ {
			m.TrainSeq(ins[idx%len(ins)], tgts[idx%len(ins)])
			idx++
		}
		opt.Step(m.Params())
	}
	after := m.Perplexity(tins, ttgts)
	return before, after
}

func TestTrainingImprovesPerplexityTable(t *testing.T) {
	before, after := trainTiny(t, TableTok, 60)
	if after >= before*0.8 {
		t.Fatalf("table model perplexity barely moved: %.2f → %.2f", before, after)
	}
}

func TestTrainingImprovesPerplexityDHE(t *testing.T) {
	before, after := trainTiny(t, DHETok, 60)
	if after >= before*0.8 {
		t.Fatalf("DHE model perplexity barely moved: %.2f → %.2f", before, after)
	}
}

func TestPipelineMatchesModel(t *testing.T) {
	m := tinyModel(TableTok, 11)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	prompt := []int{3, 14, 15, 9, 2}
	s := p.NewSession(1)
	got := mustPrefill(t, s, [][]int{prompt})
	hidden := m.forwardSeq(prompt)
	want := m.Logits(tensor.SliceRows(hidden, len(prompt)-1, len(prompt)))
	if !tensor.AllClose(got, want, 1e-3) {
		t.Fatalf("prefill logits differ from model by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestDecodeMatchesFullForward(t *testing.T) {
	// Incremental KV-cache decoding must equal re-running the full
	// sequence through the trainable path.
	m := tinyModel(TableTok, 12)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	prompt := []int{7, 8, 9}
	s := p.NewSession(1)
	s.Prefill([][]int{prompt})
	next := []int{20}
	got := mustDecode(t, s, next)

	full := append(append([]int{}, prompt...), next...)
	hidden := m.forwardSeq(full)
	want := m.Logits(tensor.SliceRows(hidden, len(full)-1, len(full)))
	if !tensor.AllClose(got, want, 1e-3) {
		t.Fatalf("decode logits differ by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestGenerateDeterministicAcrossGenerators(t *testing.T) {
	// A table-trained model generates identical text whether its token
	// embeddings come from lookup, linear scan, or Circuit ORAM.
	m := tinyModel(TableTok, 13)
	w, _ := core.TableWeights(m.Tok)
	prompts := [][]int{{5, 6, 7}, {10, 11, 12}}
	var ref [][]int
	for i, gen := range []core.Generator{
		core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}),
		core.MustNew(core.LinearScan, w.Rows, w.Cols, core.Options{Table: w}),
		core.MustNew(core.CircuitORAM, w.Rows, w.Cols, core.Options{Table: w, Seed: 14}),
	} {
		p := FromModel(m, gen)
		_, out, err := p.Generate(prompts, 6)
		if err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
		if i == 0 {
			ref = out
			continue
		}
		for s := range ref {
			for j := range ref[s] {
				if out[s][j] != ref[s][j] {
					t.Fatalf("generator %d diverged at seq %d pos %d", i, s, j)
				}
			}
		}
	}
}

func TestSessionTimingRecorded(t *testing.T) {
	m := tinyModel(TableTok, 15)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	s, outs, err := p.Generate([][]int{{1, 2, 3, 4}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.PrefillTime <= 0 {
		t.Fatal("prefill time not recorded")
	}
	if len(s.DecodeTimes) != 4 || s.MeanDecodeTime() <= 0 {
		t.Fatalf("decode times: %v", s.DecodeTimes)
	}
	if len(outs[0]) != 5 {
		t.Fatalf("generated %d tokens, want 5", len(outs[0]))
	}
}

func TestGreedyNextUsesArgmax(t *testing.T) {
	logits := tensor.FromSlice(2, 3, []float32{0, 5, 1, 9, 2, 3})
	next := GreedyNext(logits)
	if next[0] != 1 || next[1] != 0 {
		t.Fatalf("GreedyNext=%v", next)
	}
}

func TestPrefillErrors(t *testing.T) {
	m := tinyModel(TableTok, 16)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	s := p.NewSession(1)
	mustPrefill(t, s, [][]int{{1}})
	if _, err := s.Prefill([][]int{{2}}); err == nil {
		t.Fatal("double prefill must error")
	}
	// Wrong batch and over-long prompts are rejected too.
	if _, err := p.NewSession(1).Prefill([][]int{{1}, {2}}); err == nil {
		t.Fatal("batch mismatch must error")
	}
	long := make([]int, m.Cfg.MaxSeq+1)
	if _, err := p.NewSession(1).Prefill([][]int{long}); err == nil {
		t.Fatal("over-long prompt must error")
	}
}

func TestNumBytesTiedVsUntied(t *testing.T) {
	mt := tinyModel(TableTok, 17)
	md := tinyModel(DHETok, 17)
	if mt.NumBytes() <= 0 || md.NumBytes() <= 0 {
		t.Fatal("NumBytes must be positive")
	}
	// DHE embedding itself is small, but the untied head adds vocab×dim.
	if md.EmbeddingBytes() <= md.Tok.NumBytes() {
		t.Fatal("untied model must count its head")
	}
	if mt.EmbeddingBytes() != mt.Tok.NumBytes() {
		t.Fatal("tied model embedding bytes = table only")
	}
}

func TestRandomPipelineRuns(t *testing.T) {
	cfg := Config{Vocab: 300, Dim: 16, Heads: 2, Layers: 1, MaxSeq: 16, Seed: 18}
	tbl := tensor.NewGaussian(cfg.Vocab, cfg.Dim, 0.02, rand.New(rand.NewSource(1)))
	p := NewRandomPipeline(cfg, core.MustNew(core.Lookup, tbl.Rows, tbl.Cols, core.Options{Table: tbl}))
	s, outs, err := p.Generate([][]int{{1, 2}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 3 || s.PrefillTime <= 0 {
		t.Fatal("random pipeline generation failed")
	}
}

func TestLLMCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Vocab: 37, Dim: 16, Heads: 2, Layers: 1, MaxSeq: 8, Seed: 40}
	src := New(cfg, DHETok)
	tokens := []int{1, 5, 9}
	want := src.Logits(src.forwardSeq(tokens))

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(cfg, DHETok)
	for _, p := range dst.Params() {
		p.Value.Fill(0)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dst.Logits(dst.forwardSeq(tokens)), want, 0) {
		t.Fatal("loaded LLM output differs")
	}
}

func TestGenerateSampled(t *testing.T) {
	m := tinyModel(TableTok, 50)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	prompts := [][]int{{3, 4, 5}}
	rng := rand.New(rand.NewSource(51))
	s, outs, err := p.GenerateSampled(prompts, 6, 5, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 6 || s.PrefillTime <= 0 {
		t.Fatalf("sampled generation broken: %v", outs)
	}
	for _, tok := range outs[0] {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("sampled token %d out of vocab", tok)
		}
	}
	// Temperature 0 equals greedy decoding.
	_, greedy, _ := p.Generate(prompts, 6)
	_, cold, _ := p.GenerateSampled(prompts, 6, 5, 0, rng)
	for i := range greedy[0] {
		if greedy[0][i] != cold[0][i] {
			t.Fatal("temperature-0 sampling must equal greedy")
		}
	}
}

func TestMultiStepDecodeMatchesFullForward(t *testing.T) {
	// Several incremental decode steps must match re-running the growing
	// sequence through the trainable path at every step.
	m := tinyModel(TableTok, 52)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	prompt := []int{2, 9, 4}
	s := p.NewSession(1)
	s.Prefill([][]int{prompt})
	seq := append([]int{}, prompt...)
	next := 11
	for step := 0; step < 4; step++ {
		got := mustDecode(t, s, []int{next})
		seq = append(seq, next)
		hidden := m.forwardSeq(seq)
		want := m.Logits(tensor.SliceRows(hidden, len(seq)-1, len(seq)))
		if !tensor.AllClose(got, want, 2e-3) {
			t.Fatalf("step %d: decode differs by %v", step, tensor.MaxAbsDiff(got, want))
		}
		next = (next*7 + 3) % m.Cfg.Vocab
	}
}

func TestBatchedPrefillPerSequenceConsistency(t *testing.T) {
	// A 3-sequence prefill must give each sequence exactly what a solo
	// prefill gives it (no cross-sequence contamination).
	m := tinyModel(TableTok, 53)
	w, _ := core.TableWeights(m.Tok)
	p := FromModel(m, core.MustNew(core.Lookup, w.Rows, w.Cols, core.Options{Table: w}))
	prompts := [][]int{{1, 2}, {30, 31, 32}, {60}}
	s := p.NewSession(3)
	batched := mustPrefill(t, s, prompts)
	for b, prompt := range prompts {
		solo := p.NewSession(1)
		want := mustPrefill(t, solo, [][]int{prompt})
		if !tensor.AllClose(tensor.SliceRows(batched, b, b+1), want, 1e-4) {
			t.Fatalf("sequence %d differs between batched and solo prefill", b)
		}
	}
}
