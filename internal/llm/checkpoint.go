package llm

import (
	"io"

	"secemb/internal/nn"
)

// Save writes the model's parameters (trunk, embeddings, head). Loading
// requires a model built with the same Config and token kind.
func (m *Model) Save(w io.Writer) error {
	return nn.SaveParams(w, m.Params())
}

// Load restores parameters saved by Save into this model.
func (m *Model) Load(r io.Reader) error {
	return nn.LoadParams(r, m.Params())
}
