package serving

import (
	"context"
	"testing"
)

// TestDoSteadyStateAllocs is the scheduler-layer allocation-regression
// gate: once the task pool and worker scratch are warm, a Do round trip
// through the stack (enqueue → gather → execute → respond) must allocate
// only a small constant number of objects — the backend's result slice and
// channel-op bookkeeping — independent of traffic volume. The latency
// reservoir is fixed-capacity, so stats recording contributes nothing at
// steady state (the regression this gate exists to catch).
func TestDoSteadyStateAllocs(t *testing.T) {
	be := &fakeBackend{maxBatch: 4}
	g := NewGroup([]Backend{be}, GroupConfig{})
	defer g.Close()
	ctx := context.Background()
	for i := 0; i < 8; i++ { // warm task pool and worker scratch
		if r := g.Do(ctx, 7, "warm"); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if r := g.Do(ctx, 7, "steady"); r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	if allocs > 16 {
		t.Fatalf("steady-state Do allocates %.0f objects per call", allocs)
	}
}
