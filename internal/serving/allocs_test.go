package serving

import (
	"context"
	"testing"

	"secemb/internal/core"
)

// TestPredictSteadyStateAllocs is the serving-layer allocation-regression
// gate: once the request pool, forward workspaces, and DHE inference
// buffers are warm, a Predict round trip must allocate only a small
// constant number of objects (the response Probs matrix callers retain,
// channel-op bookkeeping, and latency-stat growth) — not per-layer tensors.
func TestPredictSteadyStateAllocs(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 2)
	defer pool.Close()
	dense, sparse := sampleRequest(cfg, 7)
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm request pool + workspaces
		if r := pool.Predict(ctx, dense, sparse); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	allocs := testing.AllocsPerRun(25, func() {
		if r := pool.Predict(ctx, dense, sparse); r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	if allocs > 32 {
		t.Fatalf("steady-state Predict allocates %.0f objects per call", allocs)
	}
}
