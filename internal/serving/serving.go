// Package serving runs secure DLRM inference behind a concurrent replica
// pool — the deployment shape of the paper's co-location study (§IV-C2):
// N model replicas answering a shared request stream, with latency
// percentiles and SLA-bounded throughput measured on real executions of
// this repository's pipelines (the analytic counterpart is internal/colo).
package serving

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"secemb/internal/dlrm"
	"secemb/internal/tensor"
)

// Request is one CTR inference request batch.
type Request struct {
	Dense  *tensor.Matrix
	Sparse [][]uint64

	resp chan Response
}

// Response carries the prediction or an error.
type Response struct {
	Probs   *tensor.Matrix
	Latency time.Duration
	Err     error
}

// Pool serves requests across fixed replicas of a DLRM pipeline.
// Each replica owns its pipeline instance (ORAM state is mutable, so
// replicas must not share generators).
type Pool struct {
	queue chan *Request

	mu        sync.Mutex // guards latencies/served
	latencies []time.Duration
	served    int

	lifecycle sync.RWMutex // guards closed + queue sends vs Close
	closed    bool

	wg      sync.WaitGroup
	cancel  context.CancelFunc
	started time.Time
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serving: pool closed")

// NewPool starts one worker goroutine per pipeline replica. queueDepth
// bounds the admission queue (back-pressure beyond it).
func NewPool(replicas []*dlrm.Pipeline, queueDepth int) *Pool {
	if len(replicas) == 0 {
		panic("serving: need at least one replica")
	}
	if queueDepth < 1 {
		queueDepth = len(replicas)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		queue:   make(chan *Request, queueDepth),
		cancel:  cancel,
		started: time.Now(),
	}
	for _, rep := range replicas {
		p.wg.Add(1)
		go p.worker(ctx, rep)
	}
	return p
}

func (p *Pool) worker(ctx context.Context, pipe *dlrm.Pipeline) {
	defer p.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case req, ok := <-p.queue:
			if !ok {
				return
			}
			start := time.Now()
			probs := pipe.Predict(req.Dense, req.Sparse)
			lat := time.Since(start)
			p.mu.Lock()
			p.latencies = append(p.latencies, lat)
			p.served++
			p.mu.Unlock()
			req.resp <- Response{Probs: probs, Latency: lat}
		}
	}
}

// Predict submits a request and waits for its response.
func (p *Pool) Predict(ctx context.Context, dense *tensor.Matrix, sparse [][]uint64) Response {
	req := &Request{Dense: dense, Sparse: sparse, resp: make(chan Response, 1)}
	// Hold the lifecycle read-lock across the enqueue so Close cannot
	// close the queue mid-send.
	p.lifecycle.RLock()
	if p.closed {
		p.lifecycle.RUnlock()
		return Response{Err: ErrClosed}
	}
	select {
	case <-ctx.Done():
		p.lifecycle.RUnlock()
		return Response{Err: ctx.Err()}
	case p.queue <- req:
		p.lifecycle.RUnlock()
	}
	select {
	case <-ctx.Done():
		return Response{Err: ctx.Err()}
	case r := <-req.resp:
		return r
	}
}

// Stats summarizes the pool's service so far.
type Stats struct {
	Served     int
	Throughput float64 // requests/second since pool start
	P50, P95   time.Duration
	Max        time.Duration
}

// Stats computes latency percentiles over everything served so far.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	lats := append([]time.Duration(nil), p.latencies...)
	served := p.served
	p.mu.Unlock()
	s := Stats{Served: served}
	if served == 0 {
		return s
	}
	s.Throughput = float64(served) / time.Since(p.started).Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.P50 = lats[len(lats)/2]
	s.P95 = lats[len(lats)*95/100]
	s.Max = lats[len(lats)-1]
	return s
}

// MeetsSLA reports whether the p95 latency stays within the target — the
// Figure 13 acceptance criterion.
func (s Stats) MeetsSLA(target time.Duration) bool {
	return s.Served > 0 && s.P95 <= target
}

// Close drains the queue, stops the workers, and rejects new requests.
func (p *Pool) Close() {
	p.lifecycle.Lock()
	if p.closed {
		p.lifecycle.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.lifecycle.Unlock()
	p.wg.Wait()
	p.cancel()
}
