// Package serving runs secure DLRM inference behind a concurrent replica
// pool — the deployment shape of the paper's co-location study (§IV-C2):
// N model replicas answering a shared request stream, with latency
// percentiles and SLA-bounded throughput measured on real executions of
// this repository's pipelines (the analytic counterpart is internal/colo).
package serving

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"secemb/internal/dlrm"
	"secemb/internal/obs"
	"secemb/internal/tensor"
)

// Request is one CTR inference request batch.
type Request struct {
	Dense  *tensor.Matrix
	Sparse [][]uint64

	ctx      context.Context
	enqueued time.Time
	resp     chan Response
}

// Response carries the prediction or an error.
type Response struct {
	Probs   *tensor.Matrix
	Latency time.Duration
	Err     error
}

// Pool serves requests across fixed replicas of a DLRM pipeline.
// Each replica owns its pipeline instance (ORAM state is mutable, so
// replicas must not share generators).
type Pool struct {
	queue chan *Request

	mu        sync.Mutex // guards latencies/served/errored
	latencies []time.Duration
	served    int
	errored   int

	lifecycle sync.RWMutex // guards closed + queue sends vs Close
	closed    bool

	wg      sync.WaitGroup
	cancel  context.CancelFunc
	started time.Time

	// Metrics; all nil without WithObserver, and nil metrics are no-ops.
	mQueueDepth *obs.Gauge
	mQueueWait  *obs.Histogram
	mLatency    *obs.Histogram
	mServed     *obs.Counter
	mErrors     *obs.Counter
	mRejected   *obs.Counter
	mCanceled   *obs.Counter
}

// reqPool recycles Request structs and their response channels across
// calls: at serving rates the per-request control structures were a
// steady allocation stream. A Request is returned to the pool only by the
// caller that received its response (or never handed it to the queue), so
// a pooled Request is never still referenced by a worker.
var reqPool = sync.Pool{
	New: func() any { return &Request{resp: make(chan Response, 1)} },
}

func newRequest(ctx context.Context, dense *tensor.Matrix, sparse [][]uint64) *Request {
	r := reqPool.Get().(*Request)
	r.Dense, r.Sparse, r.ctx = dense, sparse, ctx
	return r
}

// recycle clears request payload references (so pooled requests don't pin
// caller batches — the same retention bug fixed in nn.Linear) and returns
// the struct to the pool.
func recycle(r *Request) {
	r.Dense, r.Sparse, r.ctx = nil, nil, nil
	reqPool.Put(r)
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serving: pool closed")

// ErrQueueFull is returned by TryPredict when the admission queue is at
// capacity — the backpressure signal callers shed load on.
var ErrQueueFull = errors.New("serving: queue full")

// Option configures a Pool at construction.
type Option func(*Pool)

// WithObserver registers the pool's metrics in reg:
//
//	serving_queue_depth            requests waiting for a replica (gauge)
//	serving_queue_wait_ns          admission-to-dispatch wait (histogram)
//	serving_latency_ns             pipeline execution latency (histogram)
//	serving_served_total           successful responses
//	serving_errors_total           responses carrying a pipeline error
//	serving_rejected_total         TryPredict backpressure rejections
//	serving_canceled_total         requests canceled before execution
func WithObserver(reg *obs.Registry) Option {
	return func(p *Pool) {
		p.mQueueDepth = reg.Gauge("serving_queue_depth")
		p.mQueueWait = reg.Histogram("serving_queue_wait_ns")
		p.mLatency = reg.Histogram("serving_latency_ns")
		p.mServed = reg.Counter("serving_served_total")
		p.mErrors = reg.Counter("serving_errors_total")
		p.mRejected = reg.Counter("serving_rejected_total")
		p.mCanceled = reg.Counter("serving_canceled_total")
	}
}

// NewPool starts one worker goroutine per pipeline replica. queueDepth
// bounds the admission queue (back-pressure beyond it).
func NewPool(replicas []*dlrm.Pipeline, queueDepth int, opts ...Option) *Pool {
	if len(replicas) == 0 {
		panic("serving: need at least one replica")
	}
	if queueDepth < 1 {
		queueDepth = len(replicas)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		queue:   make(chan *Request, queueDepth),
		cancel:  cancel,
		started: time.Now(),
	}
	for _, o := range opts {
		o(p)
	}
	for _, rep := range replicas {
		p.wg.Add(1)
		go p.worker(ctx, rep)
	}
	return p
}

func (p *Pool) worker(ctx context.Context, pipe *dlrm.Pipeline) {
	defer p.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case req, ok := <-p.queue:
			if !ok {
				return
			}
			p.mQueueDepth.Add(-1)
			p.mQueueWait.ObserveDuration(time.Since(req.enqueued))
			// Skip work for callers that gave up while queued; they are
			// no longer listening for the response.
			if req.ctx != nil && req.ctx.Err() != nil {
				p.mCanceled.Inc()
				continue
			}
			start := time.Now()
			probs, err := pipe.Predict(req.Dense, req.Sparse)
			lat := time.Since(start)
			p.mLatency.ObserveDuration(lat)
			p.mu.Lock()
			if err != nil {
				p.errored++
			} else {
				p.latencies = append(p.latencies, lat)
				p.served++
			}
			p.mu.Unlock()
			if err != nil {
				p.mErrors.Inc()
				req.resp <- Response{Err: err, Latency: lat}
				continue
			}
			p.mServed.Inc()
			req.resp <- Response{Probs: probs, Latency: lat}
		}
	}
}

// Predict submits a request and waits for its response, blocking for queue
// space. ctx cancellation abandons the wait (and a queued-but-canceled
// request is skipped by the workers).
func (p *Pool) Predict(ctx context.Context, dense *tensor.Matrix, sparse [][]uint64) Response {
	req := newRequest(ctx, dense, sparse)
	// Hold the lifecycle read-lock across the enqueue so Close cannot
	// close the queue mid-send.
	p.lifecycle.RLock()
	if p.closed {
		p.lifecycle.RUnlock()
		recycle(req)
		return Response{Err: ErrClosed}
	}
	req.enqueued = time.Now()
	select {
	case <-ctx.Done():
		p.lifecycle.RUnlock()
		recycle(req)
		return Response{Err: ctx.Err()}
	case p.queue <- req:
		p.mQueueDepth.Add(1)
		p.lifecycle.RUnlock()
	}
	select {
	case <-ctx.Done():
		// The worker may still hold req (and later send on resp); the
		// struct is abandoned to the GC rather than recycled.
		return Response{Err: ctx.Err()}
	case r := <-req.resp:
		recycle(req)
		return r
	}
}

// TryPredict is the non-blocking variant: when the admission queue is
// full it returns ErrQueueFull immediately instead of waiting, so callers
// can shed load.
func (p *Pool) TryPredict(ctx context.Context, dense *tensor.Matrix, sparse [][]uint64) Response {
	req := newRequest(ctx, dense, sparse)
	p.lifecycle.RLock()
	if p.closed {
		p.lifecycle.RUnlock()
		recycle(req)
		return Response{Err: ErrClosed}
	}
	req.enqueued = time.Now()
	select {
	case p.queue <- req:
		p.mQueueDepth.Add(1)
		p.lifecycle.RUnlock()
	default:
		p.lifecycle.RUnlock()
		p.mRejected.Inc()
		recycle(req)
		return Response{Err: ErrQueueFull}
	}
	select {
	case <-ctx.Done():
		return Response{Err: ctx.Err()}
	case r := <-req.resp:
		recycle(req)
		return r
	}
}

// Stats summarizes the pool's service so far.
type Stats struct {
	Served        int
	Errors        int
	Throughput    float64 // requests/second since pool start
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Stats computes latency percentiles over everything served so far.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	lats := append([]time.Duration(nil), p.latencies...)
	served := p.served
	errored := p.errored
	p.mu.Unlock()
	s := Stats{Served: served, Errors: errored}
	if served == 0 {
		return s
	}
	s.Throughput = float64(served) / time.Since(p.started).Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.P50 = lats[len(lats)/2]
	s.P95 = lats[len(lats)*95/100]
	s.P99 = lats[len(lats)*99/100]
	s.Max = lats[len(lats)-1]
	return s
}

// MeetsSLA reports whether the p95 latency stays within the target — the
// Figure 13 acceptance criterion.
func (s Stats) MeetsSLA(target time.Duration) bool {
	return s.Served > 0 && s.P95 <= target
}

// Close drains the queue, stops the workers, and rejects new requests.
func (p *Pool) Close() {
	p.lifecycle.Lock()
	if p.closed {
		p.lifecycle.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.lifecycle.Unlock()
	p.wg.Wait()
	p.cancel()
}
