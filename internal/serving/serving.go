// Package serving is the layered, workload-agnostic serving stack for the
// secure embedding pipelines:
//
//   - Backend layer: a Backend executes one *fused* batch of opaque request
//     payloads (internal/serving/backends adapts dlrm.Pipeline,
//     llm.Pipeline prefill/decode, and bare core.Generator instances).
//   - Scheduler layer: a micro-batching coalescer fuses queued requests
//     into one backend batch under a public flush policy (max-batch or
//     max-wait, per-request deadlines honored) — the lever behind every
//     batch-amortized latency claim in the paper: DHE's O(k²) compute
//     beats memory-bound scans *because* one fused batch shares the
//     encoder work (Fig. 5/13), and the §IV-D Dual scheme dispatches on
//     exactly the batch sizes the coalescer produces.
//   - Dispatch layer: sharded replica groups with consistent request→shard
//     routing, per-shard queues, graceful drain, and degraded-mode load
//     shedding once a shard's queue saturates.
//
// Security: the scheduler never inspects payloads. Batch composition —
// which requests fuse, and into batches of what size — depends only on
// arrival order, queue counts, and the clock, never on embedded ids
// (§V-B: batch sizes are public in the threat model; the ids are not).
// The coalescer is audited dynamically in the leakcheck roster
// ("coalesce") and its flush policy is structurally id-blind: the gather
// loop only ever reads counts, clocks, and deadlines — payloads stay
// opaque `any` values it copies into the fused slice.
package serving

import (
	"errors"
	"time"
)

// Result is one per-request outcome of a fused Backend execution.
type Result struct {
	// Value is the request's slice of the fused output (backend-defined
	// type, e.g. a 1-row probability matrix for DLRM rows).
	Value any
	// Err is a per-request failure (malformed payload, out-of-range id).
	Err error
}

// Backend executes fused batches of request payloads. Implementations are
// stateful (ORAM position maps, DHE inference buffers, KV caches) and are
// therefore driven by exactly one scheduler goroutine at a time; the
// dispatch layer never shares a Backend between shards.
type Backend interface {
	// MaxBatch is the largest number of requests the backend accepts in
	// one Execute call (the scheduler also caps fused batches at its own
	// configured maximum).
	MaxBatch() int
	// Execute runs one fused batch and returns exactly one Result per
	// payload, in payload order. A returned error is batch-wide (the
	// scheduler delivers it to every request in the batch); per-request
	// failures belong in the individual Results.
	Execute(payloads []any) ([]Result, error)
}

// Response carries one request's answer back to its caller. This is the
// v1 response surface: every field is stable, and the wire layer
// (internal/wire) serializes QueueWait, Shard and Status() verbatim.
type Response struct {
	// Value is the backend-defined result (nil on error). Hot-path
	// backends may hand out views of fused outputs; see each backend's
	// ownership contract.
	Value any
	// Err is the request's failure, classified by Status()/StatusOf.
	Err error
	// Latency is the fused-execution time of the batch that served this
	// request (queue wait excluded). Zero when the request never reached
	// a backend (shed, closed, canceled while queued).
	Latency time.Duration
	// QueueWait is the admission-to-flush wait: how long the request sat
	// in its shard queue (plus coalescing hold) before executing. Zero
	// when the request was refused at admission.
	QueueWait time.Duration
	// Shard is the replica group the routing key mapped to — always set,
	// even for refused requests, so callers can attribute shed load.
	Shard int
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serving: closed")

// ErrQueueFull is the degraded-mode load-shedding signal: the target
// shard's queue is saturated (and stayed saturated past the configured
// shed wait), so the request was dropped instead of queued. Callers
// retry against a healthier replica group or surface the overload.
var ErrQueueFull = errors.New("serving: shard queue saturated")
