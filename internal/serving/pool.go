package serving

import "context"

// Pool is the per-request baseline: a single-shard Group with coalescing
// disabled, one request per backend execution. It is the deployment shape
// the paper's co-location study measures (§IV-C2: N hardened replicas
// answering a shared stream, Privado-style) and the control arm every
// coalescing benchmark compares against.
type Pool struct {
	g *Group
}

// NewPool starts one worker per backend on a shared admission queue.
// queueDepth bounds the queue (0 derives a default).
func NewPool(backends []Backend, queueDepth int, opts ...Option) *Pool {
	return &Pool{g: NewGroup(backends, GroupConfig{
		Shards:     1,
		QueueDepth: queueDepth,
		Coalesce:   CoalesceConfig{MaxBatch: 1},
	}, opts...)}
}

// Do submits a request and waits for its response, blocking for queue
// space. ctx cancellation abandons the wait (and a queued-but-canceled
// request is skipped by the workers).
func (p *Pool) Do(ctx context.Context, payload any) Response {
	return p.g.Do(ctx, 0, payload)
}

// TryDo is the non-blocking variant: when the admission queue is full it
// returns ErrQueueFull immediately instead of waiting, so callers can
// shed load.
func (p *Pool) TryDo(ctx context.Context, payload any) Response {
	return p.g.TryDo(ctx, 0, payload)
}

// Stats summarizes the pool's service so far.
func (p *Pool) Stats() Stats { return p.g.Stats() }

// Close drains the queue, stops the workers, and rejects new requests.
func (p *Pool) Close() { p.g.Close() }
