package serving

import (
	"math/rand"
	"testing"

	"secemb/internal/data"
)

// TestRouteShardSpreadsZipfKeys pins the property per-shard planning
// relies on: consistent routing must not let the 1/rank popularity skew of
// real CTR traffic (data.ZipfValue) pile onto one shard. The hottest key
// alone carries ~5% of draws, so shard loads are lumpy by construction —
// the assertion is that every shard still lands within a factor band of
// its fair share, for each supported shard count. Deterministic: fixed rng
// seed, fixed splitmix64 routing.
func TestRouteShardSpreadsZipfKeys(t *testing.T) {
	const draws = 200000
	const space = 1 << 20
	for _, shards := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, shards)
		for i := 0; i < draws; i++ {
			counts[RouteShard(data.ZipfValue(rng, space), shards)]++
		}
		fair := float64(draws) / float64(shards)
		for s, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.6 || ratio > 1.4 {
				t.Errorf("%d shards: shard %d got %d of %d Zipf draws (%.2f× fair share, want within [0.6, 1.4])",
					shards, s, c, draws, ratio)
			}
		}
	}
}

// TestZipfValueFilteredPinsToShard: the rejection sampler builds a skewed
// key population that consistently routes to one shard — the workload
// generator shard-skew demos and the plan-sim regression lean on.
func TestZipfValueFilteredPinsToShard(t *testing.T) {
	const shards = 4
	const space = 1 << 16
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < shards; s++ {
		for i := 0; i < 500; i++ {
			id := data.ZipfValueFiltered(rng, space, func(id uint64) bool {
				return RouteShard(id, shards) == s
			})
			if got := RouteShard(id, shards); got != s {
				t.Fatalf("filtered draw %d routes to shard %d, want %d", id, got, s)
			}
		}
	}
}

// TestShardBackendsExposesAssignment pins the shard→replica map the
// planner mirrors: round-robin, backend i on shard i % Shards, stable and
// copied.
func TestShardBackendsExposesAssignment(t *testing.T) {
	bes := make([]Backend, 5)
	for i := range bes {
		bes[i] = &fakeBackend{maxBatch: 4}
	}
	g := NewGroup(bes, GroupConfig{Shards: 2})
	defer g.Close()
	if got := len(g.ShardBackends(0)); got != 3 {
		t.Fatalf("shard 0 has %d backends, want 3 (backends 0,2,4)", got)
	}
	if got := len(g.ShardBackends(1)); got != 2 {
		t.Fatalf("shard 1 has %d backends, want 2 (backends 1,3)", got)
	}
	if g.ShardBackends(0)[0] != bes[0] || g.ShardBackends(0)[1] != bes[2] || g.ShardBackends(1)[0] != bes[1] {
		t.Fatal("ShardBackends order does not match round-robin assignment")
	}
	if g.ShardBackends(2) != nil || g.ShardBackends(-1) != nil {
		t.Fatal("out-of-range shard index must return nil")
	}
	// Mutating the returned slice must not corrupt the group's assignment.
	g.ShardBackends(0)[0] = nil
	if g.ShardBackends(0)[0] != bes[0] {
		t.Fatal("ShardBackends returned the internal slice, not a copy")
	}
}
