package serving

import (
	"math/rand"
	"sort"
	"time"
)

// reservoir is a fixed-capacity uniform sample of an unbounded latency
// stream (Vitter's algorithm R). The previous stats path appended every
// observation to a slice, which grows without bound under sustained
// traffic; at millions of requests the reservoir keeps Stats() percentiles
// accurate in O(cap) memory, each observation surviving with probability
// cap/n. Not safe for concurrent use — the owner's mutex guards it.
type reservoir struct {
	samples []time.Duration
	n       int64 // observations offered so far
	rng     *rand.Rand
}

// defaultReservoirCap keeps percentile error far below the p99 resolution
// anyone reads off a latency report while costing ~32 KiB per group.
const defaultReservoirCap = 4096

func newReservoir(capacity int, seed int64) *reservoir {
	if capacity < 1 {
		capacity = defaultReservoirCap
	}
	return &reservoir{
		samples: make([]time.Duration, 0, capacity),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// add offers one observation to the sample.
func (r *reservoir) add(d time.Duration) {
	r.n++
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(cap(r.samples)) {
		r.samples[j] = d
	}
}

// quantiles returns the q-quantiles of the current sample in one sorted
// pass, plus the sample maximum. Quantile semantics match the previous
// exact implementation (index ⌊len·q⌋, clamped).
func (r *reservoir) quantiles(qs ...float64) (out []time.Duration, max time.Duration) {
	out = make([]time.Duration, len(qs))
	if len(r.samples) == 0 {
		return out, 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		idx := int(float64(len(sorted)) * q)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out, sorted[len(sorted)-1]
}
