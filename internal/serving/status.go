package serving

import (
	"context"
	"errors"
	"net/http"

	"secemb/internal/core"
)

// Status is the v1 error taxonomy: every error a serving call can return
// maps onto exactly one stable code, so wire front ends translate outcomes
// without string-matching error text. The numeric values are part of the
// wire protocol (internal/wire encodes a Status as one byte) and must not
// be reordered.
type Status uint8

const (
	// StatusOK: the request was served.
	StatusOK Status = 0
	// StatusInvalidArgument: the request itself is malformed — an id out
	// of table range (core.ErrIDOutOfRange) or a payload the backend
	// rejects. Retrying the same request cannot succeed.
	StatusInvalidArgument Status = 1
	// StatusDeadlineExceeded: the request's context deadline expired
	// before a response was delivered.
	StatusDeadlineExceeded Status = 2
	// StatusCanceled: the request's context was canceled by the caller.
	StatusCanceled Status = 3
	// StatusOverloaded: load shedding dropped the request because the
	// target shard's queue stayed saturated (ErrQueueFull). The request
	// is safe to retry after backing off.
	StatusOverloaded Status = 4
	// StatusUnavailable: the group is closed or draining (ErrClosed).
	// Retry against another replica group.
	StatusUnavailable Status = 5
	// StatusInternal: any other failure (backend fault, result-count
	// mismatch).
	StatusInternal Status = 6
)

// StatusOf classifies err into the v1 taxonomy. nil maps to StatusOK.
// Classification uses errors.Is throughout, so wrapped errors (e.g. a
// *core.IDRangeError) land on their sentinel's code.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrQueueFull):
		return StatusOverloaded
	case errors.Is(err, ErrClosed):
		return StatusUnavailable
	case errors.Is(err, core.ErrIDOutOfRange):
		return StatusInvalidArgument
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return StatusCanceled
	default:
		return StatusInternal
	}
}

// String names the code as in reports and logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidArgument:
		return "invalid_argument"
	case StatusDeadlineExceeded:
		return "deadline_exceeded"
	case StatusCanceled:
		return "canceled"
	case StatusOverloaded:
		return "overloaded"
	case StatusUnavailable:
		return "unavailable"
	case StatusInternal:
		return "internal"
	}
	return "unknown"
}

// HTTPStatus is the REST-equivalent mapping of the code: 429 for shed
// load, 503 for draining, 400 for malformed requests, 504 for expired
// deadlines. It exists for diagnostics and any future unpadded endpoint —
// the binary front door deliberately does NOT answer with it (every
// /v1/embed outcome is HTTP 200; the Status byte travels inside the
// padded frame so outcomes are invisible at the HTTP layer).
func (s Status) HTTPStatus() int {
	switch s {
	case StatusOK:
		return http.StatusOK
	case StatusInvalidArgument:
		return http.StatusBadRequest
	case StatusDeadlineExceeded:
		return http.StatusGatewayTimeout
	case StatusCanceled:
		return 499 // client closed request (nginx convention)
	case StatusOverloaded:
		return http.StatusTooManyRequests
	case StatusUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Retryable reports whether the same request can meaningfully be retried
// (against the same group after backoff, or another replica group).
func (s Status) Retryable() bool {
	return s == StatusOverloaded || s == StatusUnavailable
}

// Status classifies the response's error into the v1 taxonomy.
func (r Response) Status() Status { return StatusOf(r.Err) }
