// The scheduler layer: one coalescing worker per backend, fusing queued
// requests into batched executions.
//
// Security invariant (§V-B): every flush decision below depends only on
// public quantities — how many requests are queued, how long the oldest
// has waited, and the per-request deadlines — never on request payloads.
// The gather loop cannot even reach the embedded ids: task payloads are
// opaque `any` values the scheduler only ever copies into the fused slice.
// The invariant is audited dynamically by the "coalesce" target in the
// leakcheck roster (id panels must produce identical batch compositions,
// hence identical backend traces) and statically by the obliviouslint
// flush fixture (an id-dependent flush policy is flagged as a tainted
// branch).
package serving

import (
	"fmt"
	"time"
)

// worker drains s.queue into be, one fused batch at a time, until the
// queue is closed and empty (graceful drain: admitted requests are always
// served). batch and payloads are worker-local scratch reused across
// rounds so steady-state scheduling is allocation-free.
func (g *Group) worker(s *shard, be Backend, cfg CoalesceConfig) {
	defer g.wg.Done()
	maxBatch := effectiveMaxBatch(be, cfg.MaxBatch)
	batch := make([]*task, 0, maxBatch)
	payloads := make([]any, 0, maxBatch)
	for first := range s.queue {
		s.depth.Add(-1)
		g.mQueueDepth.Add(-1)
		batch = g.gather(s, first, batch[:0], maxBatch, cfg.MaxWait)
		g.execute(be, batch, payloads[:0])
	}
}

// gather assembles one fused batch starting from first. Composition
// depends only on arrival order and count: requests join strictly in
// queue order until the batch is full, the queue is momentarily empty (in
// greedy mode), or the flush deadline passes. The deadline is the
// earliest of oldest-enqueue + MaxWait and every member's own context
// deadline, so a request is never held past either bound.
//
// secemb:audit coalesce
func (g *Group) gather(s *shard, first *task, batch []*task, maxBatch int, maxWait time.Duration) []*task {
	batch = append(batch, first)
	if maxBatch <= 1 {
		return batch
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	deadline := first.enqueued.Add(maxWait)
	join := func(t *task) {
		s.depth.Add(-1)
		g.mQueueDepth.Add(-1)
		batch = append(batch, t)
		if d, ok := t.ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
	}
	if d, ok := first.ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for len(batch) < maxBatch {
		// Fast path: fuse whatever is already queued, in arrival order.
		select {
		case t, ok := <-s.queue:
			if !ok {
				return batch // closed: flush the partial batch
			}
			join(t)
			continue
		default:
		}
		if maxWait <= 0 {
			return batch // greedy mode: never wait for co-batching
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return batch
		}
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case t, ok := <-s.queue:
			if !timer.Stop() {
				<-timer.C
			}
			if !ok {
				return batch
			}
			join(t)
		case <-timer.C:
			timer = nil
			return batch
		}
	}
	return batch
}

// execute runs one fused batch: canceled requests are answered without
// work, the survivors' payloads are fused into a single backend call, and
// each result is delivered to its caller. A caller that abandoned its
// wait gets its task recycled here (and counted) instead of leaking to
// the GC.
func (g *Group) execute(be Backend, batch []*task, payloads []any) {
	now := time.Now()
	live := batch[:0]
	for _, t := range batch {
		g.mCoalesceWait.ObserveDuration(now.Sub(t.enqueued))
		// Skip work for callers that gave up while queued; answer with
		// their own cancellation cause in case they are still racing.
		if err := t.ctx.Err(); err != nil {
			g.mCanceled.Inc()
			g.finish(t, Response{Err: err, QueueWait: now.Sub(t.enqueued), Shard: t.shard})
			continue
		}
		live = append(live, t)
		payloads = append(payloads, t.payload)
	}
	if len(live) == 0 {
		return
	}
	g.mBatchSize.Observe(int64(len(live)))
	start := time.Now()
	results, err := be.Execute(payloads)
	lat := time.Since(start)
	g.mLatency.ObserveDuration(lat)
	if err == nil && len(results) != len(live) {
		err = fmt.Errorf("serving: backend returned %d results for %d fused requests", len(results), len(live))
	}
	g.mu.Lock()
	for i := range live {
		if err != nil || results[i].Err != nil {
			g.errored++
		} else {
			g.served++
			g.res.add(lat)
		}
	}
	g.mu.Unlock()
	for i, t := range live {
		wait := now.Sub(t.enqueued)
		switch {
		case err != nil:
			g.mErrors.Inc()
			g.finish(t, Response{Err: err, Latency: lat, QueueWait: wait, Shard: t.shard})
		case results[i].Err != nil:
			g.mErrors.Inc()
			g.finish(t, Response{Err: results[i].Err, Latency: lat, QueueWait: wait, Shard: t.shard})
		default:
			g.mServed.Inc()
			g.finish(t, Response{Value: results[i].Value, Latency: lat, QueueWait: wait, Shard: t.shard})
		}
	}
}

// finish delivers r to t's caller, or — when the caller abandoned the
// wait — recycles the task from the worker side so the pooled struct
// (and its payload references) cannot leak under sustained cancellation.
func (g *Group) finish(t *task, r Response) {
	if t.claim() {
		t.resp <- r
		return
	}
	g.abandoned.Add(1)
	g.mAbandoned.Inc()
	recycle(t)
}
