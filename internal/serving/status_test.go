package serving

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"secemb/internal/core"
)

func TestStatusOf(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		want      Status
		http      int
		str       string
		retryable bool
	}{
		{"nil", nil, StatusOK, http.StatusOK, "ok", false},
		{"queue_full", ErrQueueFull, StatusOverloaded, http.StatusTooManyRequests, "overloaded", true},
		{"wrapped_queue_full", fmt.Errorf("shard 3: %w", ErrQueueFull), StatusOverloaded, http.StatusTooManyRequests, "overloaded", true},
		{"closed", ErrClosed, StatusUnavailable, http.StatusServiceUnavailable, "unavailable", true},
		{"wrapped_closed", fmt.Errorf("group: %w", ErrClosed), StatusUnavailable, http.StatusServiceUnavailable, "unavailable", true},
		{"id_out_of_range", core.ErrIDOutOfRange, StatusInvalidArgument, http.StatusBadRequest, "invalid_argument", false},
		{"wrapped_id_out_of_range", fmt.Errorf("row 9: %w", core.ErrIDOutOfRange), StatusInvalidArgument, http.StatusBadRequest, "invalid_argument", false},
		{"deadline", context.DeadlineExceeded, StatusDeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded", false},
		{"canceled", context.Canceled, StatusCanceled, 499, "canceled", false},
		{"other", errors.New("backend exploded"), StatusInternal, http.StatusInternalServerError, "internal", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := StatusOf(tc.err)
			if got != tc.want {
				t.Fatalf("StatusOf(%v) = %v, want %v", tc.err, got, tc.want)
			}
			if got.HTTPStatus() != tc.http {
				t.Errorf("HTTPStatus() = %d, want %d", got.HTTPStatus(), tc.http)
			}
			if got.String() != tc.str {
				t.Errorf("String() = %q, want %q", got.String(), tc.str)
			}
			if got.Retryable() != tc.retryable {
				t.Errorf("Retryable() = %v, want %v", got.Retryable(), tc.retryable)
			}
			if r := (Response{Err: tc.err}); r.Status() != tc.want {
				t.Errorf("Response.Status() = %v, want %v", r.Status(), tc.want)
			}
		})
	}
}

// The Status byte values are part of the wire protocol: internal/wire
// serializes them verbatim, so the numeric assignments are frozen.
func TestStatusWireValues(t *testing.T) {
	frozen := map[Status]uint8{
		StatusOK:               0,
		StatusInvalidArgument:  1,
		StatusDeadlineExceeded: 2,
		StatusCanceled:         3,
		StatusOverloaded:       4,
		StatusUnavailable:      5,
		StatusInternal:         6,
	}
	for s, want := range frozen {
		if uint8(s) != want {
			t.Errorf("%v = %d, want %d (wire value is frozen)", s, uint8(s), want)
		}
	}
}
