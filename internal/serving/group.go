package serving

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"secemb/internal/obs"
)

// CoalesceConfig shapes the scheduler layer's micro-batching.
type CoalesceConfig struct {
	// MaxBatch caps how many requests fuse into one backend execution.
	// 0 uses the backend's own MaxBatch; the effective cap is always the
	// smaller of the two. 1 disables coalescing (per-request baseline).
	MaxBatch int
	// MaxWait bounds how long a dequeued request may wait for
	// co-batching before a partial batch flushes. 0 is greedy mode: fuse
	// whatever is already queued and flush immediately — no added
	// latency, batches form under backpressure alone.
	MaxWait time.Duration
}

// GroupConfig shapes the dispatch layer.
type GroupConfig struct {
	// Shards is the number of replica groups requests are routed across
	// (consistent key→shard routing). Backends are assigned to shards
	// round-robin, so Shards must not exceed len(backends); 0 means one
	// shard per backend.
	Shards int
	// QueueDepth bounds each shard's admission queue. 0 derives a depth
	// from the shard's worker count and batch cap.
	QueueDepth int
	// Coalesce configures the scheduler layer.
	Coalesce CoalesceConfig
	// ShedWait arms degraded-mode load shedding: when a shard's queue is
	// saturated, Do blocks at most this long for space before dropping
	// the request with ErrQueueFull. 0 keeps classic backpressure — Do
	// blocks until space or the request's own deadline (TryDo always
	// sheds immediately).
	ShedWait time.Duration
}

// Group is the dispatch layer: sharded replica groups over a set of
// Backends. Requests route to a shard by key (consistently — the same key
// always lands on the same shard, which is what lets stateful backends
// like LLM KV-cache sessions pin to a replica), wait in the shard's
// bounded queue, and are fused into backend batches by the shard's
// coalescing workers.
type Group struct {
	shards   []*shard
	shedWait time.Duration

	mu      sync.Mutex // guards res/served/errored
	res     *reservoir
	served  int
	errored int

	shed      atomic.Int64
	abandoned atomic.Int64

	lifecycle sync.RWMutex // guards closed + queue sends vs Close
	closed    bool

	wg      sync.WaitGroup
	started time.Time

	statsCap int
	reg      *obs.Registry

	// Metrics; all nil without WithObserver, and nil metrics are no-ops.
	mQueueDepth   *obs.Gauge
	mBatchSize    *obs.Histogram
	mCoalesceWait *obs.Histogram
	mLatency      *obs.Histogram
	mServed       *obs.Counter
	mErrors       *obs.Counter
	mCanceled     *obs.Counter
	mAbandoned    *obs.Counter
	mShed         *obs.Counter
}

// shard is one replica group: a bounded queue drained by one coalescing
// worker per assigned backend.
type shard struct {
	queue    chan *task
	depth    *obs.Gauge // serving_shard_depth{shard=i}; nil-safe
	backends []Backend  // replicas assigned to this shard, in worker order
}

// Option configures a Group (or Pool) at construction.
type Option func(*Group)

// WithObserver registers the group's metrics in reg:
//
//	serving_queue_depth            requests queued across all shards (gauge)
//	serving_shard_depth{shard=}    requests queued per shard (gauge)
//	serving_batch_size             fused requests per backend execution
//	serving_coalesce_wait_ns       admission-to-flush wait per request
//	serving_latency_ns             fused backend execution latency
//	serving_served_total           successful responses
//	serving_errors_total           responses carrying an error
//	serving_canceled_total         requests canceled before execution
//	serving_abandoned_total        responses whose caller stopped listening
//	serving_shed_total             requests dropped by load shedding
func WithObserver(reg *obs.Registry) Option {
	return func(g *Group) {
		g.reg = reg
		g.mQueueDepth = reg.Gauge("serving_queue_depth")
		g.mBatchSize = reg.HistogramBuckets("serving_batch_size", batchSizeBuckets())
		g.mCoalesceWait = reg.Histogram("serving_coalesce_wait_ns")
		g.mLatency = reg.Histogram("serving_latency_ns")
		g.mServed = reg.Counter("serving_served_total")
		g.mErrors = reg.Counter("serving_errors_total")
		g.mCanceled = reg.Counter("serving_canceled_total")
		g.mAbandoned = reg.Counter("serving_abandoned_total")
		g.mShed = reg.Counter("serving_shed_total")
	}
}

// WithStatsCapacity sizes the latency sampling reservoir behind Stats()
// (default 4096 samples).
func WithStatsCapacity(n int) Option {
	return func(g *Group) { g.statsCap = n }
}

func batchSizeBuckets() []int64 {
	bounds := make([]int64, 0, 12)
	for b := int64(1); b <= 2048; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// NewGroup starts the serving stack: cfg.Shards replica groups over the
// given backends, each backend driven by its own coalescing worker on its
// shard's queue. Backends hold mutable state (ORAM position maps, DHE
// inference buffers), so they must not be shared between groups.
func NewGroup(backends []Backend, cfg GroupConfig, opts ...Option) *Group {
	if len(backends) == 0 {
		panic("serving: need at least one backend")
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(backends)
	}
	if cfg.Shards < 1 || cfg.Shards > len(backends) {
		panic(fmt.Sprintf("serving: %d shards for %d backends (need 1 ≤ shards ≤ backends)", cfg.Shards, len(backends)))
	}
	g := &Group{
		shedWait: cfg.ShedWait,
		started:  time.Now(),
	}
	for _, o := range opts {
		o(g)
	}
	g.res = newReservoir(g.statsCap, 1)

	perShard := (len(backends) + cfg.Shards - 1) / cfg.Shards
	maxBatch := 1
	for _, be := range backends {
		if mb := effectiveMaxBatch(be, cfg.Coalesce.MaxBatch); mb > maxBatch {
			maxBatch = mb
		}
	}
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 2 * perShard * maxBatch
		if depth < 16 {
			depth = 16
		}
	}
	g.shards = make([]*shard, cfg.Shards)
	for i := range g.shards {
		g.shards[i] = &shard{
			queue: make(chan *task, depth),
			depth: g.reg.Gauge("serving_shard_depth", "shard", strconv.Itoa(i)),
		}
	}
	for i, be := range backends {
		s := g.shards[i%cfg.Shards]
		s.backends = append(s.backends, be)
		g.wg.Add(1)
		go g.worker(s, be, cfg.Coalesce)
	}
	return g
}

// ShardBackends reports the backend replicas assigned to shard i — the
// shard→replica map a per-shard planner needs to manage each replica group
// as its own plan (planner.Table.Shards mirrors this assignment). The
// returned slice is a copy; the assignment itself is fixed at construction
// (round-robin, backend i on shard i % Shards) and stable for the group's
// lifetime.
func (g *Group) ShardBackends(i int) []Backend {
	if i < 0 || i >= len(g.shards) {
		return nil
	}
	return append([]Backend(nil), g.shards[i].backends...)
}

func effectiveMaxBatch(be Backend, limit int) int {
	mb := be.MaxBatch()
	if mb < 1 {
		mb = 1
	}
	if limit > 0 && limit < mb {
		mb = limit
	}
	return mb
}

// splitmix64 is the routing hash: cheap, well-mixed, and keyed only on the
// caller-supplied (public) routing key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RouteShard reports which of n shards a routing key maps to. It is the
// pure form of Group.ShardOf for callers that must know the placement
// before the group exists — e.g. to size each shard's backend by the
// number of keys that will pin to it.
func RouteShard(key uint64, n int) int {
	return int(splitmix64(key) % uint64(n))
}

// ShardOf reports which shard a routing key maps to — stable for the
// group's lifetime, so callers can pin per-key state (e.g. an LLM session
// created on that shard's pipeline) to the replica that will serve it.
func (g *Group) ShardOf(key uint64) int {
	return RouteShard(key, len(g.shards))
}

// Shards reports the shard count.
func (g *Group) Shards() int { return len(g.shards) }

// Do submits one request payload routed by key and waits for its
// response. With ShedWait unset it blocks for queue space (bounded by the
// request's own context); with ShedWait armed a saturated shard sheds the
// request with ErrQueueFull after that grace period — degraded mode under
// overload instead of unbounded queueing.
func (g *Group) Do(ctx context.Context, key uint64, payload any) Response {
	t := newTask(ctx, key, payload)
	if r, ok := g.enqueue(t, true); !ok {
		return r
	}
	return t.wait(t.ctx)
}

// TryDo is the non-blocking variant: a saturated shard sheds immediately
// with ErrQueueFull.
func (g *Group) TryDo(ctx context.Context, key uint64, payload any) Response {
	t := newTask(ctx, key, payload)
	if r, ok := g.enqueue(t, false); !ok {
		return r
	}
	return t.wait(t.ctx)
}

// enqueue routes t to its shard and admits it. The caller keeps waiting
// on the task only when ok is true; otherwise the returned Response is
// final and the task has been recycled.
func (g *Group) enqueue(t *task, block bool) (Response, bool) {
	t.shard = g.ShardOf(t.key)
	s := g.shards[t.shard]
	// Hold the lifecycle read-lock across the send so Close cannot close
	// the queue mid-send.
	g.lifecycle.RLock()
	if g.closed {
		g.lifecycle.RUnlock()
		shard := t.shard
		recycle(t)
		return Response{Err: ErrClosed, Shard: shard}, false
	}
	t.enqueued = time.Now()
	select {
	case s.queue <- t:
		s.depth.Add(1)
		g.mQueueDepth.Add(1)
		g.lifecycle.RUnlock()
		return Response{}, true
	default:
	}
	if !block {
		return g.shedTask(t), false
	}
	if g.shedWait > 0 {
		timer := time.NewTimer(g.shedWait)
		defer timer.Stop()
		select {
		case s.queue <- t:
			s.depth.Add(1)
			g.mQueueDepth.Add(1)
			g.lifecycle.RUnlock()
			return Response{}, true
		case <-t.ctx.Done():
			g.lifecycle.RUnlock()
			err, shard := t.ctx.Err(), t.shard
			recycle(t)
			return Response{Err: err, Shard: shard}, false
		case <-timer.C:
			return g.shedTask(t), false
		}
	}
	select {
	case s.queue <- t:
		s.depth.Add(1)
		g.mQueueDepth.Add(1)
		g.lifecycle.RUnlock()
		return Response{}, true
	case <-t.ctx.Done():
		g.lifecycle.RUnlock()
		err, shard := t.ctx.Err(), t.shard
		recycle(t)
		return Response{Err: err, Shard: shard}, false
	}
}

// shedTask drops a request in degraded mode: the shard stayed saturated,
// so the request is counted and refused rather than queued unboundedly.
// Called with the lifecycle read-lock held; releases it.
func (g *Group) shedTask(t *task) Response {
	g.lifecycle.RUnlock()
	g.shed.Add(1)
	g.mShed.Inc()
	shard := t.shard
	recycle(t)
	return Response{Err: ErrQueueFull, Shard: shard}
}

// Stats summarizes the group's service so far. Percentiles come from a
// fixed-capacity uniform sampling reservoir, so they stay accurate (and
// memory stays constant) at millions of requests.
type Stats struct {
	Served        int
	Errors        int
	Shed          int
	Abandoned     int
	Throughput    float64 // requests/second since group start
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Stats computes latency percentiles over the sampled service history.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	s := Stats{Served: g.served, Errors: g.errored}
	qs, max := g.res.quantiles(0.50, 0.95, 0.99)
	g.mu.Unlock()
	s.Shed = int(g.shed.Load())
	s.Abandoned = int(g.abandoned.Load())
	if s.Served == 0 {
		return s
	}
	s.Throughput = float64(s.Served) / time.Since(g.started).Seconds()
	s.P50, s.P95, s.P99, s.Max = qs[0], qs[1], qs[2], max
	return s
}

// MeetsSLA reports whether the p95 latency stays within the target — the
// Figure 13 acceptance criterion.
func (s Stats) MeetsSLA(target time.Duration) bool {
	return s.Served > 0 && s.P95 <= target
}

// Close gracefully drains the stack: new requests are rejected, every
// already-admitted request is still fused and served (partial batches
// flush), and the workers exit once the queues are empty.
func (g *Group) Close() {
	g.lifecycle.Lock()
	if g.closed {
		g.lifecycle.Unlock()
		return
	}
	g.closed = true
	for _, s := range g.shards {
		close(s.queue)
	}
	g.lifecycle.Unlock()
	g.wg.Wait()
}
