package serving

import (
	"testing"
	"time"
)

func TestReservoirExactBelowCapacity(t *testing.T) {
	// Until the capacity is reached the reservoir holds every observation,
	// so quantiles are exact and match the old append-everything stats.
	r := newReservoir(128, 1)
	for i := 1; i <= 100; i++ {
		r.add(time.Duration(i) * time.Millisecond)
	}
	qs, max := r.quantiles(0.50, 0.95, 0.99)
	if want := 51 * time.Millisecond; qs[0] != want { // sorted[⌊100·0.5⌋]
		t.Fatalf("p50 = %v, want %v", qs[0], want)
	}
	if want := 96 * time.Millisecond; qs[1] != want {
		t.Fatalf("p95 = %v, want %v", qs[1], want)
	}
	if want := 100 * time.Millisecond; qs[2] != want { // clamped to last
		t.Fatalf("p99 = %v, want %v", qs[2], want)
	}
	if max != 100*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
}

func TestReservoirMemoryStaysBounded(t *testing.T) {
	// The whole point of the reservoir: a million observations occupy
	// exactly cap samples (the old implementation held all of them).
	r := newReservoir(64, 1)
	for i := 0; i < 1_000_000; i++ {
		r.add(time.Duration(i))
	}
	if len(r.samples) != 64 || cap(r.samples) != 64 {
		t.Fatalf("reservoir holds %d/%d samples, want exactly 64", len(r.samples), cap(r.samples))
	}
	if r.n != 1_000_000 {
		t.Fatalf("observation count = %d", r.n)
	}
	qs, max := r.quantiles(0.50, 0.95, 0.99)
	if qs[0] > qs[1] || qs[1] > qs[2] || qs[2] > max {
		t.Fatalf("quantiles not monotone: %v max %v", qs, max)
	}
	// Uniform sampling over 0..1e6-1: the sampled median must land far
	// from either extreme (deterministic seed, generous bounds).
	if qs[0] < 200_000 || qs[0] > 800_000 {
		t.Fatalf("sampled p50 = %d, not representative of uniform stream", qs[0])
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := newReservoir(0, 1) // 0 selects the default capacity
	if cap(r.samples) != defaultReservoirCap {
		t.Fatalf("default capacity = %d", cap(r.samples))
	}
	qs, max := r.quantiles(0.50)
	if qs[0] != 0 || max != 0 {
		t.Fatal("empty reservoir must report zeros")
	}
}
