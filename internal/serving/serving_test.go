package serving

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"secemb/internal/obs"
)

// fakeBackend echoes each payload back as its Result.Value, recording the
// size of every fused batch. Optional knobs wedge an execution (gate),
// inject batch-wide or per-payload errors, or return a malformed result
// count — all the behaviors the scheduler must survive.
type fakeBackend struct {
	maxBatch int
	gate     chan struct{} // when non-nil, Execute blocks until it closes
	entered  chan struct{} // when non-nil, Execute signals entry (buffered)
	execErr  error         // batch-wide failure
	perErr   func(p any) error
	badCount bool // return one Result too few

	mu      sync.Mutex
	batches []int
}

func (b *fakeBackend) MaxBatch() int {
	if b.maxBatch < 1 {
		return 1
	}
	return b.maxBatch
}

func (b *fakeBackend) Execute(payloads []any) ([]Result, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	b.batches = append(b.batches, len(payloads))
	b.mu.Unlock()
	if b.execErr != nil {
		return nil, b.execErr
	}
	out := make([]Result, len(payloads))
	for i, p := range payloads {
		if b.perErr != nil {
			if err := b.perErr(p); err != nil {
				out[i].Err = err
				continue
			}
		}
		out[i].Value = p
	}
	if b.badCount {
		out = out[:len(out)-1]
	}
	return out, nil
}

func (b *fakeBackend) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.batches...)
}

func TestPoolServesCorrectly(t *testing.T) {
	be := &fakeBackend{maxBatch: 4}
	pool := NewPool([]Backend{be}, 4)
	defer pool.Close()
	resp := pool.Do(context.Background(), "payload-7")
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Value != "payload-7" {
		t.Fatalf("Value = %v, want payload-7", resp.Value)
	}
	// Pool is the per-request baseline: coalescing must stay disabled even
	// though the backend accepts batches.
	for _, n := range be.batchSizes() {
		if n != 1 {
			t.Fatalf("per-request pool fused a batch of %d", n)
		}
	}
}

func TestGroupCoalescesQueuedRequests(t *testing.T) {
	// Wedge the worker on a sacrificial request, queue a burst behind it,
	// then release: greedy gather must fuse the entire queued burst into
	// one backend execution.
	be := &fakeBackend{maxBatch: 8, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	g := NewGroup([]Backend{be}, GroupConfig{QueueDepth: 16})
	defer g.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if r := g.Do(context.Background(), 0, "wedge"); r.Err != nil {
			t.Error(r.Err)
		}
	}()
	<-be.entered // worker is inside Execute for the sacrificial request

	const burst = 4
	results := make(chan Response, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- g.Do(context.Background(), 0, i)
		}(i)
	}
	// Wait until the whole burst is queued, then release the worker.
	deadline := time.Now().Add(10 * time.Second)
	for g.shards[0].queuedApprox() < burst {
		if time.Now().After(deadline) {
			t.Fatal("burst never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	close(be.gate)
	wg.Wait()
	close(results)

	seen := map[any]bool{}
	for r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		seen[r.Value] = true
	}
	if len(seen) != burst {
		t.Fatalf("got %d distinct responses, want %d", len(seen), burst)
	}
	sizes := be.batchSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != burst {
		t.Fatalf("batch sizes = %v, want [1 %d]", sizes, burst)
	}
}

// queuedApprox reports the shard's current queue length (test helper).
func (s *shard) queuedApprox() int { return len(s.queue) }

func TestMaxWaitFlushesPartialBatch(t *testing.T) {
	// A lone request with room left in the batch must not wait forever:
	// the MaxWait deadline flushes the partial batch.
	be := &fakeBackend{maxBatch: 8}
	g := NewGroup([]Backend{be}, GroupConfig{
		Coalesce: CoalesceConfig{MaxWait: 30 * time.Millisecond},
	})
	defer g.Close()
	start := time.Now()
	if r := g.Do(context.Background(), 0, "solo"); r.Err != nil {
		t.Fatal(r.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("partial batch took %v to flush", elapsed)
	}
	if sizes := be.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", sizes)
	}
}

func TestMaxWaitFusesRequestsInsideWindow(t *testing.T) {
	// Second request arrives well inside the wait window: the batch fills
	// and flushes immediately, far before MaxWait.
	be := &fakeBackend{maxBatch: 2}
	g := NewGroup([]Backend{be}, GroupConfig{
		Coalesce: CoalesceConfig{MaxWait: 30 * time.Second},
	})
	defer g.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r := g.Do(context.Background(), 0, i); r.Err != nil {
				t.Error(r.Err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("full batch waited %v despite being full", elapsed)
	}
	total := 0
	for _, n := range be.batchSizes() {
		total += n
	}
	if total != 2 {
		t.Fatalf("served %d fused requests, want 2", total)
	}
}

func TestMemberDeadlineBoundsBatchWait(t *testing.T) {
	// A batch member's own context deadline caps the coalesce wait for the
	// whole batch: with room left for a third request, the batch must
	// still flush at the deadlined member's 150ms — answering the
	// deadline-free co-member then, not at the 30s MaxWait.
	be := &fakeBackend{maxBatch: 3}
	g := NewGroup([]Backend{be}, GroupConfig{
		QueueDepth: 8,
		Coalesce:   CoalesceConfig{MaxWait: 30 * time.Second},
	})
	defer g.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	free := make(chan Response, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.Do(ctx, 0, "deadlined")
	}()
	go func() {
		defer wg.Done()
		free <- g.Do(context.Background(), 0, "patient")
	}()

	select {
	case r := <-free:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Value != "patient" {
			t.Fatalf("Value = %v", r.Value)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("deadline-free request held hostage by MaxWait")
	}
	wg.Wait()
}

func TestShardRoutingConsistentAndSpread(t *testing.T) {
	backends := make([]Backend, 4)
	for i := range backends {
		backends[i] = &fakeBackend{maxBatch: 1}
	}
	g := NewGroup(backends, GroupConfig{})
	defer g.Close()
	if g.Shards() != 4 {
		t.Fatalf("default shards = %d, want one per backend", g.Shards())
	}
	hit := map[int]bool{}
	for key := uint64(0); key < 64; key++ {
		s := g.ShardOf(key)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", key, s)
		}
		if s != g.ShardOf(key) {
			t.Fatalf("ShardOf(%d) unstable", key)
		}
		hit[s] = true
	}
	if len(hit) < 2 {
		t.Fatalf("64 keys landed on %d shard(s); routing is not spreading", len(hit))
	}
}

func TestGroupValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no backends", func() { NewGroup(nil, GroupConfig{}) })
	mustPanic("shards > backends", func() {
		NewGroup([]Backend{&fakeBackend{}}, GroupConfig{Shards: 2})
	})
	mustPanic("empty pool", func() { NewPool(nil, 1) })
}

func TestCloseDrainsAdmittedRequests(t *testing.T) {
	// Requests admitted before Close must still be served (graceful
	// drain), while requests after Close get ErrClosed.
	be := &fakeBackend{maxBatch: 4, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	g := NewGroup([]Backend{be}, GroupConfig{QueueDepth: 8})

	const n = 3
	var wg sync.WaitGroup
	results := make(chan Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- g.Do(context.Background(), 0, i)
		}(i)
	}
	<-be.entered // one request executing; the rest queued behind it
	deadline := time.Now().Add(10 * time.Second)
	for g.shards[0].queuedApprox() < n-1 {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	closed := make(chan struct{})
	go func() { g.Close(); close(closed) }()
	close(be.gate)
	wg.Wait()
	<-closed
	close(results)
	for r := range results {
		if r.Err != nil {
			t.Fatalf("admitted request lost in drain: %v", r.Err)
		}
	}
	g.Close() // idempotent
	if r := g.Do(context.Background(), 0, "late"); r.Err != ErrClosed {
		t.Fatalf("post-close error = %v, want ErrClosed", r.Err)
	}
}

func TestContextCancellationDoesNotHang(t *testing.T) {
	be := &fakeBackend{maxBatch: 1}
	g := NewGroup([]Backend{be}, GroupConfig{QueueDepth: 1})
	defer g.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan Response, 1)
	go func() { done <- g.Do(ctx, 0, "x") }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled Do hung")
	}
}

// wedgeWithFullQueue blocks the worker inside Execute and parks one request
// in the single queue slot, returning once queue-full is a stable state.
func wedgeWithFullQueue(t *testing.T, g *Group, be *fakeBackend, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.Do(context.Background(), 0, "executing")
	}()
	<-be.entered
	go func() {
		defer wg.Done()
		g.Do(context.Background(), 0, "parked")
	}()
	deadline := time.Now().Add(10 * time.Second)
	for g.shards[0].queuedApprox() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestTryDoShedsWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	be := &fakeBackend{maxBatch: 1, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	g := NewGroup([]Backend{be}, GroupConfig{QueueDepth: 1}, WithObserver(reg))
	defer g.Close()
	var wg sync.WaitGroup
	wedgeWithFullQueue(t, g, be, &wg)

	if r := g.TryDo(context.Background(), 0, "shed-me"); !errors.Is(r.Err, ErrQueueFull) {
		t.Fatalf("error = %v, want ErrQueueFull", r.Err)
	}
	if got := reg.Counter("serving_shed_total").Value(); got != 1 {
		t.Fatalf("serving_shed_total = %d, want 1", got)
	}
	if s := g.Stats(); s.Shed != 1 {
		t.Fatalf("Stats().Shed = %d, want 1", s.Shed)
	}
	close(be.gate)
	wg.Wait()
}

func TestShedWaitArmsDegradedMode(t *testing.T) {
	// With ShedWait armed, a blocking Do against a saturated shard gives
	// up after the grace period instead of queueing unboundedly.
	be := &fakeBackend{maxBatch: 1, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	g := NewGroup([]Backend{be}, GroupConfig{
		QueueDepth: 1,
		ShedWait:   20 * time.Millisecond,
	})
	defer g.Close()
	var wg sync.WaitGroup
	wedgeWithFullQueue(t, g, be, &wg)

	done := make(chan Response, 1)
	go func() { done <- g.Do(context.Background(), 0, "degraded") }()
	select {
	case r := <-done:
		if !errors.Is(r.Err, ErrQueueFull) {
			t.Fatalf("error = %v, want ErrQueueFull", r.Err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("degraded-mode Do never shed")
	}
	if s := g.Stats(); s.Shed != 1 {
		t.Fatalf("Stats().Shed = %d, want 1", s.Shed)
	}
	close(be.gate)
	wg.Wait()
}

func TestAbandonedRequestIsCountedAndRecycled(t *testing.T) {
	// A caller that cancels while its request is queued abandons the wait;
	// the worker must notice (claim fails), count it, and recycle the task
	// instead of leaking it.
	reg := obs.NewRegistry()
	be := &fakeBackend{maxBatch: 1, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	g := NewGroup([]Backend{be}, GroupConfig{QueueDepth: 2}, WithObserver(reg))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(context.Background(), 0, "executing")
	}()
	<-be.entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Response, 1)
	go func() { done <- g.Do(ctx, 0, "will-abandon") }()
	deadline := time.Now().Add(10 * time.Second)
	for g.shards[0].queuedApprox() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	r := <-done
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", r.Err)
	}
	close(be.gate)
	wg.Wait()
	g.Close() // drain: the worker has now seen the abandoned task
	if s := g.Stats(); s.Abandoned != 1 {
		t.Fatalf("Stats().Abandoned = %d, want 1", s.Abandoned)
	}
	if got := reg.Counter("serving_abandoned_total").Value(); got != 1 {
		t.Fatalf("serving_abandoned_total = %d, want 1", got)
	}
}

func TestBackendBatchErrorReachesEveryCaller(t *testing.T) {
	wantErr := errors.New("backend down")
	be := &fakeBackend{maxBatch: 4, execErr: wantErr}
	g := NewGroup([]Backend{be}, GroupConfig{})
	defer g.Close()
	for i := 0; i < 3; i++ {
		if r := g.Do(context.Background(), 0, i); !errors.Is(r.Err, wantErr) {
			t.Fatalf("request %d error = %v, want %v", i, r.Err, wantErr)
		}
	}
	if s := g.Stats(); s.Errors != 3 || s.Served != 0 {
		t.Fatalf("stats = %+v, want 3 errors", s)
	}
}

func TestBackendResultCountMismatchIsBatchError(t *testing.T) {
	be := &fakeBackend{maxBatch: 1, badCount: true}
	g := NewGroup([]Backend{be}, GroupConfig{})
	defer g.Close()
	r := g.Do(context.Background(), 0, "x")
	if r.Err == nil {
		t.Fatal("short result slice must produce an error, not a missing response")
	}
}

func TestPerRequestErrorsStayPerRequest(t *testing.T) {
	be := &fakeBackend{maxBatch: 4, perErr: func(p any) error {
		if p == "bad" {
			return fmt.Errorf("malformed")
		}
		return nil
	}}
	g := NewGroup([]Backend{be}, GroupConfig{})
	defer g.Close()
	if r := g.Do(context.Background(), 0, "bad"); r.Err == nil {
		t.Fatal("bad payload must error")
	}
	if r := g.Do(context.Background(), 0, "good"); r.Err != nil {
		t.Fatalf("good payload after bad one failed: %v", r.Err)
	}
	if s := g.Stats(); s.Errors != 1 || s.Served != 1 {
		t.Fatalf("stats after mixed traffic: %+v", s)
	}
}

func TestConcurrentLoadAndStats(t *testing.T) {
	be1, be2 := &fakeBackend{maxBatch: 8}, &fakeBackend{maxBatch: 8}
	g := NewGroup([]Backend{be1, be2}, GroupConfig{Shards: 2})
	defer g.Close()
	const requests = 64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			if r := g.Do(context.Background(), key, key); r.Err != nil {
				t.Error(r.Err)
			}
		}(uint64(i))
	}
	wg.Wait()
	s := g.Stats()
	if s.Served != requests {
		t.Fatalf("served %d, want %d", s.Served, requests)
	}
	if s.Throughput <= 0 || s.P95 < s.P50 || s.P99 < s.P95 || s.Max < s.P99 {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestMetricsPopulatedUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	be := &fakeBackend{maxBatch: 4}
	g := NewGroup([]Backend{be}, GroupConfig{}, WithObserver(reg))
	const requests = 30
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			if r := g.Do(context.Background(), key, key); r.Err != nil {
				t.Error(r.Err)
			}
		}(uint64(i))
	}
	wg.Wait()
	g.Close()

	if got := reg.Counter("serving_served_total").Value(); got != requests {
		t.Fatalf("serving_served_total = %d, want %d", got, requests)
	}
	if got := reg.Histogram("serving_coalesce_wait_ns").Count(); got != requests {
		t.Fatalf("serving_coalesce_wait_ns count = %d, want %d", got, requests)
	}
	// Every fused batch is observed once; batch sizes sum to the requests.
	bs := reg.HistogramBuckets("serving_batch_size", nil)
	if bs.Count() == 0 || bs.Count() > requests {
		t.Fatalf("serving_batch_size count = %d", bs.Count())
	}
	if lat := reg.Histogram("serving_latency_ns").Count(); lat != bs.Count() {
		t.Fatalf("latency histogram count %d != execution count %d", lat, bs.Count())
	}
	snap := reg.Snapshot()
	foundDepth, foundShard := false, false
	for _, gv := range snap.Gauges {
		switch {
		case gv.Name == "serving_queue_depth":
			foundDepth = true
			if gv.Value != 0 {
				t.Fatalf("queue depth after drain = %d", gv.Value)
			}
		case strings.HasPrefix(gv.Name, "serving_shard_depth"):
			foundShard = true
			if gv.Value != 0 {
				t.Fatalf("%s after drain = %d", gv.Name, gv.Value)
			}
		}
	}
	if !foundDepth || !foundShard {
		t.Fatal("depth gauges missing from snapshot")
	}
}

func TestMeetsSLA(t *testing.T) {
	s := Stats{Served: 10, P95: 5 * time.Millisecond}
	if !s.MeetsSLA(20 * time.Millisecond) {
		t.Fatal("should meet 20ms SLA")
	}
	if s.MeetsSLA(time.Millisecond) {
		t.Fatal("should miss 1ms SLA")
	}
	if (Stats{}).MeetsSLA(time.Second) {
		t.Fatal("empty stats cannot meet any SLA")
	}
}

func TestStatsEmpty(t *testing.T) {
	g := NewGroup([]Backend{&fakeBackend{}}, GroupConfig{})
	defer g.Close()
	if s := g.Stats(); s.Served != 0 || s.Throughput != 0 {
		t.Fatalf("fresh group stats: %+v", s)
	}
}
