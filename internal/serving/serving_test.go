package serving

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/dlrm"
	"secemb/internal/obs"
	"secemb/internal/tensor"
)

// newReplicas builds n independent pipelines of the same trained model
// (independent generators: ORAM/DHE state must not be shared).
func newReplicas(t *testing.T, n int, tech core.Technique) ([]*dlrm.Pipeline, dlrm.Config) {
	t.Helper()
	cfg := dlrm.Config{
		DenseDim: 3, EmbDim: 4,
		BottomHidden: []int{4}, TopHidden: []int{4},
		Cardinalities: []int{30, 70}, Seed: 1,
	}
	m := dlrm.New(cfg, dlrm.DHEVariedEmb)
	reps := make([]*dlrm.Pipeline, n)
	for i := range reps {
		reps[i] = dlrm.Build(m, tech, core.Options{Seed: int64(i + 2)})
	}
	return reps, cfg
}

func sampleRequest(cfg dlrm.Config, seed int64) (*tensor.Matrix, [][]uint64) {
	rng := rand.New(rand.NewSource(seed))
	dense := tensor.NewUniform(4, cfg.DenseDim, 1, rng)
	sparse := make([][]uint64, len(cfg.Cardinalities))
	for f, n := range cfg.Cardinalities {
		sparse[f] = make([]uint64, 4)
		for r := range sparse[f] {
			sparse[f][r] = uint64(rng.Intn(n))
		}
	}
	return dense, sparse
}

func TestPoolServesCorrectly(t *testing.T) {
	reps, cfg := newReplicas(t, 2, core.LinearScan)
	pool := NewPool(reps, 4)
	defer pool.Close()
	dense, sparse := sampleRequest(cfg, 3)
	want, err := reps[0].Predict(dense, sparse)
	if err != nil {
		t.Fatal(err)
	}

	resp := pool.Predict(context.Background(), dense, sparse)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !tensor.AllClose(resp.Probs, want, 1e-6) {
		t.Fatal("pooled prediction differs from direct prediction")
	}
	if resp.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestPoolConcurrentLoad(t *testing.T) {
	reps, cfg := newReplicas(t, 3, core.CircuitORAM)
	pool := NewPool(reps, 8)
	defer pool.Close()
	const requests = 40
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			dense, sparse := sampleRequest(cfg, seed)
			if r := pool.Predict(context.Background(), dense, sparse); r.Err != nil {
				errs <- r.Err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Served != requests {
		t.Fatalf("served %d, want %d", s.Served, requests)
	}
	if s.Throughput <= 0 || s.P50 <= 0 || s.P95 < s.P50 || s.Max < s.P95 {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestPoolCloseRejectsNewWork(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 2)
	dense, sparse := sampleRequest(cfg, 5)
	if r := pool.Predict(context.Background(), dense, sparse); r.Err != nil {
		t.Fatal(r.Err)
	}
	pool.Close()
	pool.Close() // idempotent
	if r := pool.Predict(context.Background(), dense, sparse); r.Err != ErrClosed {
		t.Fatalf("post-close error = %v, want ErrClosed", r.Err)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 1)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dense, sparse := sampleRequest(cfg, 6)
	// Either the request was admitted before cancellation was observed
	// (fine) or it errors with context.Canceled — it must not hang.
	done := make(chan Response, 1)
	go func() { done <- pool.Predict(ctx, dense, sparse) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Predict hung")
	}
}

func TestMeetsSLA(t *testing.T) {
	s := Stats{Served: 10, P95: 5 * time.Millisecond}
	if !s.MeetsSLA(20 * time.Millisecond) {
		t.Fatal("should meet 20ms SLA")
	}
	if s.MeetsSLA(time.Millisecond) {
		t.Fatal("should miss 1ms SLA")
	}
	if (Stats{}).MeetsSLA(time.Second) {
		t.Fatal("empty stats cannot meet any SLA")
	}
}

func TestEmptyPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(nil, 1)
}

func TestPoolSurvivesOutOfRangeIDs(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.LinearScan)
	pool := NewPool(reps, 2)
	defer pool.Close()

	dense, sparse := sampleRequest(cfg, 9)
	sparse[1][0] = 99999 // far beyond the 70-row table
	resp := pool.Predict(context.Background(), dense, sparse)
	if resp.Err == nil {
		t.Fatal("out-of-range id must produce an error response, not a crash")
	}
	if !errors.Is(resp.Err, core.ErrIDOutOfRange) {
		t.Fatalf("error = %v, want ErrIDOutOfRange in the chain", resp.Err)
	}

	// The pool must keep serving after a bad request.
	dense2, sparse2 := sampleRequest(cfg, 10)
	if r := pool.Predict(context.Background(), dense2, sparse2); r.Err != nil {
		t.Fatalf("valid request after bad one failed: %v", r.Err)
	}
	s := pool.Stats()
	if s.Errors != 1 || s.Served != 1 {
		t.Fatalf("stats after mixed traffic: %+v", s)
	}
}

func TestPoolMetricsPopulatedUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	reps, cfg := newReplicas(t, 2, core.LinearScan)
	pool := NewPool(reps, 4, WithObserver(reg))
	const requests = 30
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			dense, sparse := sampleRequest(cfg, seed)
			if r := pool.Predict(context.Background(), dense, sparse); r.Err != nil {
				t.Error(r.Err)
			}
		}(int64(i))
	}
	wg.Wait()
	pool.Close()

	if got := reg.Counter("serving_served_total").Value(); got != requests {
		t.Fatalf("serving_served_total=%d, want %d", got, requests)
	}
	// All requests drained, so the depth gauge must be registered and back
	// to zero.
	snap := reg.Snapshot()
	foundDepth := false
	for _, g := range snap.Gauges {
		if g.Name == "serving_queue_depth" {
			foundDepth = true
			if g.Value != 0 {
				t.Fatalf("queue depth after drain = %d", g.Value)
			}
		}
	}
	if !foundDepth {
		t.Fatal("serving_queue_depth gauge missing from snapshot")
	}
	lat := reg.Histogram("serving_latency_ns")
	if lat.Count() != requests {
		t.Fatalf("latency histogram count=%d, want %d", lat.Count(), requests)
	}
	p50, p99 := lat.Quantile(0.50), lat.Quantile(0.99)
	if p50 <= 0 || p99 < p50 || p99 > lat.Max() {
		t.Fatalf("latency percentiles inconsistent: p50=%d p99=%d max=%d", p50, p99, lat.Max())
	}
	if reg.Histogram("serving_queue_wait_ns").Count() != requests {
		t.Fatal("queue wait histogram not populated")
	}
}

func TestTryPredictShedsLoadWhenFull(t *testing.T) {
	reg := obs.NewRegistry()
	// One replica, one queue slot. Wedge the worker on one large
	// CircuitORAM batch, then burst: the slot holds at most one request, so
	// the rest of the burst must be shed with ErrQueueFull.
	reps, cfg := newReplicas(t, 1, core.CircuitORAM)
	pool := NewPool(reps, 1, WithObserver(reg))
	defer pool.Close()

	// Two slow requests: the worker dequeues one (~80ms of CircuitORAM
	// work) while the other parks in the single queue slot, so
	// queue-is-full is a *stable* state we can observe before asserting —
	// not a transient pulse a 1-CPU scheduler can hide.
	const slowBatch = 16384
	rng := rand.New(rand.NewSource(1))
	slowDense := tensor.NewUniform(slowBatch, cfg.DenseDim, 1, rng)
	slowSparse := make([][]uint64, len(cfg.Cardinalities))
	for f, n := range cfg.Cardinalities {
		slowSparse[f] = make([]uint64, slowBatch)
		for r := range slowSparse[f] {
			slowSparse[f][r] = uint64(rng.Intn(n))
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r := pool.Predict(context.Background(), slowDense, slowSparse); r.Err != nil {
				t.Error(r.Err)
			}
		}()
	}
	// Queue-wait records at dequeue: count>=1 means the worker is inside a
	// slow Predict, and depth==1 means the other request holds the slot.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Histogram("serving_queue_wait_ns").Count() < 1 ||
		reg.Gauge("serving_queue_depth").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the worker to wedge with a full queue")
		}
		time.Sleep(100 * time.Microsecond)
	}
	dense, sparse := sampleRequest(cfg, 3)
	if r := pool.TryPredict(context.Background(), dense, sparse); !errors.Is(r.Err, ErrQueueFull) {
		t.Fatalf("error = %v, want ErrQueueFull", r.Err)
	}
	if got := reg.Counter("serving_rejected_total").Value(); got != 1 {
		t.Fatalf("serving_rejected_total=%d, want 1", got)
	}
	wg.Wait()
}

func TestStatsEmpty(t *testing.T) {
	reps, _ := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 1)
	defer pool.Close()
	if s := pool.Stats(); s.Served != 0 || s.Throughput != 0 {
		t.Fatalf("fresh pool stats: %+v", s)
	}
}
