package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/dlrm"
	"secemb/internal/tensor"
)

// newReplicas builds n independent pipelines of the same trained model
// (independent generators: ORAM/DHE state must not be shared).
func newReplicas(t *testing.T, n int, tech core.Technique) ([]*dlrm.Pipeline, dlrm.Config) {
	t.Helper()
	cfg := dlrm.Config{
		DenseDim: 3, EmbDim: 4,
		BottomHidden: []int{4}, TopHidden: []int{4},
		Cardinalities: []int{30, 70}, Seed: 1,
	}
	m := dlrm.New(cfg, dlrm.DHEVariedEmb)
	reps := make([]*dlrm.Pipeline, n)
	for i := range reps {
		reps[i] = dlrm.Build(m, tech, core.Options{Seed: int64(i + 2)})
	}
	return reps, cfg
}

func sampleRequest(cfg dlrm.Config, seed int64) (*tensor.Matrix, [][]uint64) {
	rng := rand.New(rand.NewSource(seed))
	dense := tensor.NewUniform(4, cfg.DenseDim, 1, rng)
	sparse := make([][]uint64, len(cfg.Cardinalities))
	for f, n := range cfg.Cardinalities {
		sparse[f] = make([]uint64, 4)
		for r := range sparse[f] {
			sparse[f][r] = uint64(rng.Intn(n))
		}
	}
	return dense, sparse
}

func TestPoolServesCorrectly(t *testing.T) {
	reps, cfg := newReplicas(t, 2, core.LinearScan)
	pool := NewPool(reps, 4)
	defer pool.Close()
	dense, sparse := sampleRequest(cfg, 3)
	want := reps[0].Predict(dense, sparse)

	resp := pool.Predict(context.Background(), dense, sparse)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !tensor.AllClose(resp.Probs, want, 1e-6) {
		t.Fatal("pooled prediction differs from direct prediction")
	}
	if resp.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestPoolConcurrentLoad(t *testing.T) {
	reps, cfg := newReplicas(t, 3, core.CircuitORAM)
	pool := NewPool(reps, 8)
	defer pool.Close()
	const requests = 40
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			dense, sparse := sampleRequest(cfg, seed)
			if r := pool.Predict(context.Background(), dense, sparse); r.Err != nil {
				errs <- r.Err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Served != requests {
		t.Fatalf("served %d, want %d", s.Served, requests)
	}
	if s.Throughput <= 0 || s.P50 <= 0 || s.P95 < s.P50 || s.Max < s.P95 {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestPoolCloseRejectsNewWork(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 2)
	dense, sparse := sampleRequest(cfg, 5)
	if r := pool.Predict(context.Background(), dense, sparse); r.Err != nil {
		t.Fatal(r.Err)
	}
	pool.Close()
	pool.Close() // idempotent
	if r := pool.Predict(context.Background(), dense, sparse); r.Err != ErrClosed {
		t.Fatalf("post-close error = %v, want ErrClosed", r.Err)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 1)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dense, sparse := sampleRequest(cfg, 6)
	// Either the request was admitted before cancellation was observed
	// (fine) or it errors with context.Canceled — it must not hang.
	done := make(chan Response, 1)
	go func() { done <- pool.Predict(ctx, dense, sparse) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Predict hung")
	}
}

func TestMeetsSLA(t *testing.T) {
	s := Stats{Served: 10, P95: 5 * time.Millisecond}
	if !s.MeetsSLA(20 * time.Millisecond) {
		t.Fatal("should meet 20ms SLA")
	}
	if s.MeetsSLA(time.Millisecond) {
		t.Fatal("should miss 1ms SLA")
	}
	if (Stats{}).MeetsSLA(time.Second) {
		t.Fatal("empty stats cannot meet any SLA")
	}
}

func TestEmptyPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(nil, 1)
}

func TestStatsEmpty(t *testing.T) {
	reps, _ := newReplicas(t, 1, core.DHE)
	pool := NewPool(reps, 1)
	defer pool.Close()
	if s := pool.Stats(); s.Served != 0 || s.Throughput != 0 {
		t.Fatalf("fresh pool stats: %+v", s)
	}
}
