package serving

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Task states. A task starts pending; exactly one side wins the claim —
// the worker (it will send the response) or the caller (it abandoned the
// wait). The loser of the race is responsible for nothing further; the
// winner's counterpart recycles the struct.
const (
	taskPending   int32 = iota
	taskClaimed         // worker won: a response send is imminent
	taskAbandoned       // caller won: nobody is listening anymore
)

// task is one queued request: an opaque payload plus the bookkeeping the
// scheduler needs. The scheduler reads everything except payload — batch
// composition must stay independent of request contents (§V-B).
type task struct {
	payload  any
	ctx      context.Context
	key      uint64
	shard    int // routed shard index; set before any response is built
	enqueued time.Time
	state    atomic.Int32
	resp     chan Response
}

// taskPool recycles task structs and their response channels: at serving
// rates the per-request control structures are otherwise a steady
// allocation stream. A task returns to the pool from exactly one place —
// the caller that received its response, a failed enqueue, or the worker
// that found the caller gone (see finish) — so a pooled task is never
// still referenced elsewhere.
var taskPool = sync.Pool{
	New: func() any { return &task{resp: make(chan Response, 1)} },
}

func newTask(ctx context.Context, key uint64, payload any) *task {
	t := taskPool.Get().(*task)
	if ctx == nil {
		ctx = context.Background()
	}
	t.ctx, t.key, t.payload = ctx, key, payload
	return t
}

// recycle clears payload references (so pooled tasks don't pin caller
// batches) and returns the struct to the pool.
func recycle(t *task) {
	t.payload, t.ctx = nil, nil
	t.state.Store(taskPending)
	taskPool.Put(t)
}

// claim is the worker-side half of the race: true means the worker owns
// response delivery and the caller is (or will be) listening.
func (t *task) claim() bool {
	return t.state.CompareAndSwap(taskPending, taskClaimed)
}

// wait blocks for the response. If ctx expires first the task is marked
// abandoned and the worker recycles it after execution — previously this
// path silently leaked the pooled struct to the GC. If the worker claimed
// the task in the same instant, the response is already in flight and is
// delivered instead of the cancellation.
func (t *task) wait(ctx context.Context) Response {
	select {
	case r := <-t.resp:
		recycle(t)
		return r
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			return Response{Err: ctx.Err()}
		}
		r := <-t.resp // worker won the claim; the send is guaranteed
		recycle(t)
		return r
	}
}
