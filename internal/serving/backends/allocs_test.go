package backends

import (
	"context"
	"testing"

	"secemb/internal/core"
	"secemb/internal/serving"
)

// TestDLRMPoolSteadyStateAllocs is the end-to-end allocation-regression
// gate for the serving hot path: once the task pool, forward workspaces,
// and DHE inference buffers are warm, a pooled DLRM round trip must
// allocate only a small constant number of objects (the response Probs
// matrix callers retain plus scheduler bookkeeping) — not per-layer
// tensors.
func TestDLRMPoolSteadyStateAllocs(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.DHE)
	pool := serving.NewPool(dlrmBackends(reps, 0), 2)
	defer pool.Close()
	dense, sparse := sampleRequest(cfg, 7)
	req := &DLRMRequest{Dense: dense, Sparse: sparse}
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm task pool + workspaces
		if r := pool.Do(ctx, req); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	allocs := testing.AllocsPerRun(25, func() {
		if r := pool.Do(ctx, req); r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	if allocs > 32 {
		t.Fatalf("steady-state pooled Predict allocates %.0f objects per call", allocs)
	}
}
