// Package backends adapts this repository's workloads to the generic
// serving.Backend interface, keeping the scheduler and dispatch layers
// workload-agnostic (serving no longer imports dlrm or llm). Each adapter
// owns the fusing step: many independently submitted request payloads
// become one batched pipeline execution, which is where every
// batch-amortized latency claim in the paper is realized — a fused DHE
// batch shares the encoder pass that per-request execution repeats.
//
// Adapters hold stateful pipelines (ORAM position maps, DHE inference
// buffers, KV caches), so a Backend instance must be driven by exactly
// one serving worker; the dispatch layer guarantees this by assigning
// each backend to a single shard.
package backends

import (
	"fmt"

	"secemb/internal/core"
	"secemb/internal/dlrm"
	"secemb/internal/llm"
	"secemb/internal/serving"
	"secemb/internal/tensor"
)

// DefaultMaxBatch bounds fused batches when the caller does not choose:
// large enough to reach the amortization plateau of Fig. 5, small enough
// to keep tail latency of the fused execution bounded.
const DefaultMaxBatch = 64

// --- DLRM ---------------------------------------------------------------

// DLRMRequest is one CTR inference request: a batch of dense rows with
// per-feature sparse ids (rows across requests are fused).
type DLRMRequest struct {
	Dense  *tensor.Matrix
	Sparse [][]uint64
}

// DLRM serves DLRMRequests on one dlrm.Pipeline, fusing the dense rows
// and sparse ids of every request in the batch into a single Predict.
type DLRM struct {
	pipe     *dlrm.Pipeline
	maxBatch int
}

// NewDLRM wraps a pipeline replica. maxBatch caps fused requests per
// execution (0 → DefaultMaxBatch).
func NewDLRM(p *dlrm.Pipeline, maxBatch int) *DLRM {
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	return &DLRM{pipe: p, maxBatch: maxBatch}
}

// MaxBatch reports the fused-request cap.
func (b *DLRM) MaxBatch() int { return b.maxBatch }

// Execute fuses the payloads into one pipeline batch and splits the
// probabilities back per request. Malformed payloads fail individually;
// pipeline errors (out-of-range ids anywhere in the fused batch) fail the
// whole batch, matching the per-request behavior of Pipeline.Predict.
func (b *DLRM) Execute(payloads []any) ([]serving.Result, error) {
	results := make([]serving.Result, len(payloads))
	nFeat := len(b.pipe.Gens)
	reqs := make([]*DLRMRequest, 0, len(payloads))
	idx := make([]int, 0, len(payloads))
	rows := 0
	for i, p := range payloads {
		r, ok := p.(*DLRMRequest)
		if !ok || r.Dense == nil || len(r.Sparse) != nFeat {
			results[i].Err = fmt.Errorf("backends: payload %d is not a well-formed *DLRMRequest", i)
			continue
		}
		reqs = append(reqs, r)
		idx = append(idx, i)
		rows += r.Dense.Rows
	}
	if len(reqs) == 0 {
		return results, nil
	}
	if len(reqs) == 1 {
		// Single-request fast path: no concatenation or split copies
		// (Predict's output is freshly allocated, so ownership transfers).
		probs, err := b.pipe.Predict(reqs[0].Dense, reqs[0].Sparse)
		if err != nil {
			return nil, err
		}
		results[idx[0]].Value = probs
		return results, nil
	}
	var probs *tensor.Matrix
	var err error
	{
		dense := tensor.New(rows, reqs[0].Dense.Cols)
		sparse := make([][]uint64, nFeat)
		for f := range sparse {
			sparse[f] = make([]uint64, 0, rows)
		}
		r0 := 0
		for _, r := range reqs {
			for i := 0; i < r.Dense.Rows; i++ {
				copy(dense.Row(r0+i), r.Dense.Row(i))
			}
			r0 += r.Dense.Rows
			for f := range sparse {
				sparse[f] = append(sparse[f], r.Sparse[f]...)
			}
		}
		probs, err = b.pipe.Predict(dense, sparse)
	}
	if err != nil {
		return nil, err
	}
	r0 := 0
	for k, r := range reqs {
		n := r.Dense.Rows
		// Clone the slice: SliceRows views alias the fused matrix, which
		// would pin the whole batch in every caller.
		results[idx[k]].Value = tensor.SliceRows(probs, r0, r0+n).Clone()
		r0 += n
	}
	return results, nil
}

// --- Embedding ----------------------------------------------------------

// Embedding serves raw secure embedding generation: each payload is a
// []uint64 id batch, fused into one Generate call. This is the decode-path
// embedding service for LLM token streams — and the backend that hands the
// §IV-D Dual scheme the coalesced batch sizes its threshold dispatches on.
type Embedding struct {
	gen      core.Generator
	maxBatch int
}

// NewEmbedding wraps a generator. maxBatch caps fused id batches per
// execution (0 → DefaultMaxBatch).
func NewEmbedding(g core.Generator, maxBatch int) *Embedding {
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	return &Embedding{gen: g, maxBatch: maxBatch}
}

// MaxBatch reports the fused-request cap.
func (b *Embedding) MaxBatch() int { return b.maxBatch }

// Generator exposes the wrapped generator (for stats and technique
// reporting).
func (b *Embedding) Generator() core.Generator { return b.gen }

// Execute concatenates every payload's ids into one Generate call and
// splits the embedding rows back per request.
func (b *Embedding) Execute(payloads []any) ([]serving.Result, error) {
	results := make([]serving.Result, len(payloads))
	ids := make([]uint64, 0, len(payloads))
	idx := make([]int, 0, len(payloads))
	counts := make([]int, 0, len(payloads))
	for i, p := range payloads {
		batch, ok := p.([]uint64)
		if !ok || len(batch) == 0 {
			results[i].Err = fmt.Errorf("backends: payload %d is not a non-empty []uint64", i)
			continue
		}
		ids = append(ids, batch...)
		idx = append(idx, i)
		counts = append(counts, len(batch))
	}
	if len(idx) == 0 {
		return results, nil
	}
	emb, err := b.gen.Generate(ids)
	if err != nil {
		return nil, err
	}
	// Always clone: generator outputs may alias internal workspaces (the
	// DHE inference buffer is valid only until the next Generate).
	r0 := 0
	for k, i := range idx {
		results[i].Value = tensor.SliceRows(emb, r0, r0+counts[k]).Clone()
		r0 += counts[k]
	}
	return results, nil
}

// --- LLM ----------------------------------------------------------------

// LLMDecodeRequest advances one single-sequence session by one token.
// The session must have been created on the pipeline of the shard this
// request routes to (serving.Group.ShardOf gives the pinning).
type LLMDecodeRequest struct {
	Session *llm.Session
	Token   int
}

// LLMDecode fuses single-token decode steps from many concurrent
// generation streams into one llm.DecodeFused call: the embedding batch
// seen by the (possibly Dual) generator is the stream count, not 1.
type LLMDecode struct {
	pipe     *llm.Pipeline
	maxBatch int
}

// NewLLMDecode wraps a pipeline replica for fused decode. maxBatch caps
// fused streams per step (0 → DefaultMaxBatch).
func NewLLMDecode(p *llm.Pipeline, maxBatch int) *LLMDecode {
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	return &LLMDecode{pipe: p, maxBatch: maxBatch}
}

// Pipeline exposes the wrapped pipeline so callers can create sessions on
// the replica their key routes to.
func (b *LLMDecode) Pipeline() *llm.Pipeline { return b.pipe }

// MaxBatch reports the fused-stream cap.
func (b *LLMDecode) MaxBatch() int { return b.maxBatch }

// Execute fuses the decode steps; each Result.Value is that stream's
// 1×Vocab next-token logits.
func (b *LLMDecode) Execute(payloads []any) ([]serving.Result, error) {
	results := make([]serving.Result, len(payloads))
	sessions := make([]*llm.Session, 0, len(payloads))
	tokens := make([]int, 0, len(payloads))
	idx := make([]int, 0, len(payloads))
	for i, p := range payloads {
		r, ok := p.(*LLMDecodeRequest)
		if !ok || r.Session == nil {
			results[i].Err = fmt.Errorf("backends: payload %d is not a well-formed *LLMDecodeRequest", i)
			continue
		}
		sessions = append(sessions, r.Session)
		tokens = append(tokens, r.Token)
		idx = append(idx, i)
	}
	if len(idx) == 0 {
		return results, nil
	}
	outs, err := llm.DecodeFused(sessions, tokens)
	if err != nil {
		return nil, err
	}
	for k, i := range idx {
		results[i].Value = outs[k]
	}
	return results, nil
}

// LLMPrefillRequest prefills one single-sequence session with a prompt.
type LLMPrefillRequest struct {
	Session *llm.Session
	Prompt  []int
}

// LLMPrefill fuses prompt prefills from many streams into one
// llm.PrefillFused call (embedding batch = Σ prompt lengths across the
// fused requests).
type LLMPrefill struct {
	pipe     *llm.Pipeline
	maxBatch int
}

// NewLLMPrefill wraps a pipeline replica for fused prefill. maxBatch caps
// fused prompts per execution (0 → DefaultMaxBatch).
func NewLLMPrefill(p *llm.Pipeline, maxBatch int) *LLMPrefill {
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	return &LLMPrefill{pipe: p, maxBatch: maxBatch}
}

// Pipeline exposes the wrapped pipeline.
func (b *LLMPrefill) Pipeline() *llm.Pipeline { return b.pipe }

// MaxBatch reports the fused-prompt cap.
func (b *LLMPrefill) MaxBatch() int { return b.maxBatch }

// Execute fuses the prefills; each Result.Value is that stream's 1×Vocab
// final-position logits.
func (b *LLMPrefill) Execute(payloads []any) ([]serving.Result, error) {
	results := make([]serving.Result, len(payloads))
	sessions := make([]*llm.Session, 0, len(payloads))
	prompts := make([][]int, 0, len(payloads))
	idx := make([]int, 0, len(payloads))
	for i, p := range payloads {
		r, ok := p.(*LLMPrefillRequest)
		if !ok || r.Session == nil || len(r.Prompt) == 0 {
			results[i].Err = fmt.Errorf("backends: payload %d is not a well-formed *LLMPrefillRequest", i)
			continue
		}
		sessions = append(sessions, r.Session)
		prompts = append(prompts, r.Prompt)
		idx = append(idx, i)
	}
	if len(idx) == 0 {
		return results, nil
	}
	outs, err := llm.PrefillFused(sessions, prompts)
	if err != nil {
		return nil, err
	}
	for k, i := range idx {
		results[i].Value = outs[k]
	}
	return results, nil
}
