package backends

import (
	"os"
	"testing"

	"secemb/internal/tensor"
)

// TestMain autotunes the kernels before the run when SECEMB_AUTOTUNE=1
// (set by `make bench`), so recorded benchmark numbers reflect the tuned
// production configuration. Plain `go test` skips the probe to stay fast.
func TestMain(m *testing.M) {
	if os.Getenv("SECEMB_AUTOTUNE") == "1" {
		tensor.Autotune()
	}
	os.Exit(m.Run())
}
