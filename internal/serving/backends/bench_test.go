package backends

import (
	"context"
	"sync"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/serving"
)

// The acceptance-criterion load shape: 64 concurrent clients, each
// submitting one single-id request per wave. Per-request serving hands the
// §IV-D Dual generator batch-1 calls, which its threshold dispatches to
// Circuit ORAM; the coalescer fuses the wave far past the threshold, so
// the same backend serves the same ids through the batch-amortized DHE
// representation instead. That regime change — unreachable without
// cross-request batching — is where the ≥2× requests/sec comes from
// (ISSUE: Figures 5/13 assume batch sizes concurrent single-row traffic
// never reaches on its own).
const (
	benchClients = 64
	// One replica in both variants: the comparison isolates the scheduler
	// (identical backends, identical hardware), and on a serialized host
	// extra replicas only add hand-off noise.
	benchReplicas = 1
	benchRows     = 4096
	benchDim      = 16
	// benchThreshold is the Dual dispatch point: batches of at most 8 go
	// to Circuit ORAM, larger ones to DHE (paper Table VII regime).
	benchThreshold = 8
)

// dualBackends builds one Dual-DHE Embedding backend per replica
// (independent generators: ORAM position maps must not be shared).
func dualBackends(b *testing.B) []serving.Backend {
	b.Helper()
	bes := make([]serving.Backend, benchReplicas)
	for i := range bes {
		dheGen, err := core.New(core.DHE, benchRows, benchDim, core.Options{Seed: int64(40 + i)})
		if err != nil {
			b.Fatal(err)
		}
		bes[i] = NewEmbedding(core.NewDual(dheGen, benchThreshold, core.Options{Seed: int64(50 + i)}), benchClients)
	}
	return bes
}

// wave times b.N waves of benchClients concurrent single-id requests.
func wave(b *testing.B, do func(key uint64, ids []uint64) serving.Response) {
	reqs := make([][]uint64, benchClients)
	for c := range reqs {
		reqs[c] = []uint64{uint64(c*37) % benchRows}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < benchClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if resp := do(uint64(c), reqs[c]); resp.Err != nil {
					b.Error(resp.Err)
				}
			}(c)
		}
		wg.Wait()
	}
}

// BenchmarkServe64SingleRowClients records the serving-stack acceptance
// number: one op is a wave of 64 concurrent single-id requests on the
// DHE-backed Dual backend, so requests/sec = 64 / (ns_per_op × 1e-9).
// The coalesced variant must sustain at least twice the per-request
// baseline's requests/sec (its ns/op at most half); cmd/benchdiff then
// gates both entries in BENCH_hotpath.json against regression.
func BenchmarkServe64SingleRowClients(b *testing.B) {
	b.Run("per-request", func(b *testing.B) {
		pool := serving.NewPool(dualBackends(b), benchClients)
		defer pool.Close()
		wave(b, func(_ uint64, ids []uint64) serving.Response {
			return pool.Do(context.Background(), ids)
		})
	})

	b.Run("coalesced", func(b *testing.B) {
		// Each wave exactly fills MaxBatch, so the gather loop always
		// flushes on full — one fused DHE-regime Generate per wave — and
		// MaxWait is only the safety valve, never on the critical path.
		group := serving.NewGroup(dualBackends(b), serving.GroupConfig{
			Shards: 1,
			Coalesce: serving.CoalesceConfig{
				MaxBatch: benchClients,
				MaxWait:  5 * time.Millisecond,
			},
		})
		defer group.Close()
		wave(b, func(key uint64, ids []uint64) serving.Response {
			return group.Do(context.Background(), key, ids)
		})
	})
}
