package backends

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"secemb/internal/core"
	"secemb/internal/dlrm"
	"secemb/internal/serving"
	"secemb/internal/tensor"
)

// newReplicas builds n independent pipelines of the same trained model
// (independent generators: ORAM/DHE state must not be shared).
func newReplicas(t *testing.T, n int, tech core.Technique) ([]*dlrm.Pipeline, dlrm.Config) {
	t.Helper()
	cfg := dlrm.Config{
		DenseDim: 3, EmbDim: 4,
		BottomHidden: []int{4}, TopHidden: []int{4},
		Cardinalities: []int{30, 70}, Seed: 1,
	}
	m := dlrm.New(cfg, dlrm.DHEVariedEmb)
	reps := make([]*dlrm.Pipeline, n)
	for i := range reps {
		reps[i] = dlrm.Build(m, tech, core.Options{Seed: int64(i + 2)})
	}
	return reps, cfg
}

func sampleRequest(cfg dlrm.Config, seed int64) (*tensor.Matrix, [][]uint64) {
	rng := rand.New(rand.NewSource(seed))
	dense := tensor.NewUniform(4, cfg.DenseDim, 1, rng)
	sparse := make([][]uint64, len(cfg.Cardinalities))
	for f, n := range cfg.Cardinalities {
		sparse[f] = make([]uint64, 4)
		for r := range sparse[f] {
			sparse[f][r] = uint64(rng.Intn(n))
		}
	}
	return dense, sparse
}

func dlrmBackends(reps []*dlrm.Pipeline, maxBatch int) []serving.Backend {
	out := make([]serving.Backend, len(reps))
	for i, p := range reps {
		out[i] = NewDLRM(p, maxBatch)
	}
	return out
}

func TestDLRMPoolServesCorrectly(t *testing.T) {
	reps, cfg := newReplicas(t, 2, core.LinearScan)
	pool := serving.NewPool(dlrmBackends(reps, 0), 4)
	defer pool.Close()
	dense, sparse := sampleRequest(cfg, 3)
	want, err := reps[0].Predict(dense, sparse)
	if err != nil {
		t.Fatal(err)
	}
	resp := pool.Do(context.Background(), &DLRMRequest{Dense: dense, Sparse: sparse})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !tensor.AllClose(resp.Value.(*tensor.Matrix), want, 1e-6) {
		t.Fatal("pooled prediction differs from direct prediction")
	}
}

func TestDLRMFusedMatchesPerRequest(t *testing.T) {
	// Fusing three requests into one Predict must produce the same rows as
	// three per-request Predicts — coalescing changes latency, not answers.
	reps, cfg := newReplicas(t, 1, core.DHE)
	be := NewDLRM(reps[0], 0)
	payloads := make([]any, 3)
	wants := make([]*tensor.Matrix, 3)
	for i := range payloads {
		dense, sparse := sampleRequest(cfg, int64(10+i))
		w, err := reps[0].Predict(dense, sparse)
		if err != nil {
			t.Fatal(err)
		}
		payloads[i], wants[i] = &DLRMRequest{Dense: dense, Sparse: sparse}, w
	}
	results, err := be.Execute(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !tensor.AllClose(r.Value.(*tensor.Matrix), wants[i], 1e-5) {
			t.Fatalf("fused prediction %d differs from per-request prediction", i)
		}
	}
}

func TestDLRMMalformedPayloadFailsIndividually(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.LinearScan)
	be := NewDLRM(reps[0], 0)
	dense, sparse := sampleRequest(cfg, 4)
	results, err := be.Execute([]any{"not a request", &DLRMRequest{Dense: dense, Sparse: sparse}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("malformed payload must fail")
	}
	if results[1].Err != nil || results[1].Value == nil {
		t.Fatal("well-formed co-batched payload must still be served")
	}
}

func TestDLRMPoolSurvivesOutOfRangeIDs(t *testing.T) {
	reps, cfg := newReplicas(t, 1, core.LinearScan)
	pool := serving.NewPool(dlrmBackends(reps, 0), 2)
	defer pool.Close()

	dense, sparse := sampleRequest(cfg, 9)
	sparse[1][0] = 99999 // far beyond the 70-row table
	resp := pool.Do(context.Background(), &DLRMRequest{Dense: dense, Sparse: sparse})
	if resp.Err == nil {
		t.Fatal("out-of-range id must produce an error response, not a crash")
	}
	if !errors.Is(resp.Err, core.ErrIDOutOfRange) {
		t.Fatalf("error = %v, want ErrIDOutOfRange in the chain", resp.Err)
	}
	dense2, sparse2 := sampleRequest(cfg, 10)
	if r := pool.Do(context.Background(), &DLRMRequest{Dense: dense2, Sparse: sparse2}); r.Err != nil {
		t.Fatalf("valid request after bad one failed: %v", r.Err)
	}
	s := pool.Stats()
	if s.Errors != 1 || s.Served != 1 {
		t.Fatalf("stats after mixed traffic: %+v", s)
	}
}

func TestDLRMGroupConcurrentCoalescedLoad(t *testing.T) {
	reps, cfg := newReplicas(t, 2, core.CircuitORAM)
	g := serving.NewGroup(dlrmBackends(reps, 8), serving.GroupConfig{Shards: 2})
	defer g.Close()
	const requests = 24
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			dense, sparse := sampleRequest(cfg, seed)
			r := g.Do(context.Background(), uint64(seed), &DLRMRequest{Dense: dense, Sparse: sparse})
			if r.Err != nil {
				t.Error(r.Err)
			}
		}(int64(i))
	}
	wg.Wait()
	if s := g.Stats(); s.Served != requests {
		t.Fatalf("served %d, want %d", s.Served, requests)
	}
}

func newDHEGen(t *testing.T, seed int64) core.Generator {
	t.Helper()
	g, err := core.New(core.DHE, 128, 8, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmbeddingFusedMatchesDirect(t *testing.T) {
	be := NewEmbedding(newDHEGen(t, 5), 0)
	results, err := be.Execute([]any{[]uint64{1, 2}, []uint64{3}})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh generator from the same seed gives the reference rows.
	want, err := newDHEGen(t, 5).Generate([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got0 := results[0].Value.(*tensor.Matrix)
	got1 := results[1].Value.(*tensor.Matrix)
	if got0.Rows != 2 || got1.Rows != 1 {
		t.Fatalf("split shapes wrong: %d and %d rows", got0.Rows, got1.Rows)
	}
	if !tensor.AllClose(got0, tensor.SliceRows(want, 0, 2), 1e-6) ||
		!tensor.AllClose(got1, tensor.SliceRows(want, 2, 3), 1e-6) {
		t.Fatal("fused embedding rows differ from direct generation")
	}
}

func TestEmbeddingResultsSurviveNextExecute(t *testing.T) {
	// The DHE generator's output aliases its inference workspace, valid
	// only until the next Generate — delivered results must be clones.
	be := NewEmbedding(newDHEGen(t, 6), 0)
	first, err := be.Execute([]any{[]uint64{7}})
	if err != nil {
		t.Fatal(err)
	}
	got := first[0].Value.(*tensor.Matrix)
	snapshot := got.Clone()
	if _, err := be.Execute([]any{[]uint64{100}}); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, snapshot, 0) {
		t.Fatal("earlier result mutated by a later Execute — adapter returned an aliasing view")
	}
}

func TestEmbeddingMalformedPayload(t *testing.T) {
	be := NewEmbedding(newDHEGen(t, 7), 0)
	results, err := be.Execute([]any{[]uint64{}, 42, []uint64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[1].Err == nil {
		t.Fatal("empty batch and non-[]uint64 payloads must fail individually")
	}
	if results[2].Err != nil {
		t.Fatal("valid payload must survive malformed co-batch members")
	}
}

func TestMaxBatchDefaults(t *testing.T) {
	reps, _ := newReplicas(t, 1, core.LinearScan)
	if NewDLRM(reps[0], 0).MaxBatch() != DefaultMaxBatch {
		t.Fatal("DLRM default MaxBatch wrong")
	}
	if NewDLRM(reps[0], 3).MaxBatch() != 3 {
		t.Fatal("DLRM explicit MaxBatch wrong")
	}
	be := NewEmbedding(newDHEGen(t, 8), 0)
	if be.MaxBatch() != DefaultMaxBatch || be.Generator() == nil {
		t.Fatal("Embedding MaxBatch/Generator wrong")
	}
}
