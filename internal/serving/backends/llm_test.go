package backends

import (
	"math/rand"
	"testing"

	"secemb/internal/core"
	"secemb/internal/llm"
	"secemb/internal/tensor"
)

func testLLMPipeline(t *testing.T) *llm.Pipeline {
	t.Helper()
	cfg := llm.Config{Vocab: 200, Dim: 16, Heads: 2, Layers: 1, MaxSeq: 16, Seed: 31}
	tbl := tensor.NewGaussian(cfg.Vocab, cfg.Dim, 0.02, rand.New(rand.NewSource(3)))
	return llm.NewRandomPipeline(cfg, core.MustNew(core.Lookup, tbl.Rows, tbl.Cols, core.Options{Table: tbl}))
}

func TestLLMPrefillThenDecodeThroughAdapters(t *testing.T) {
	p := testLLMPipeline(t)
	prefill := NewLLMPrefill(p, 0)
	decode := NewLLMDecode(p, 0)
	if prefill.Pipeline() != p || decode.Pipeline() != p {
		t.Fatal("adapters must expose their pipeline for session pinning")
	}

	sA, sB := p.NewSession(1), p.NewSession(1)
	results, err := prefill.Execute([]any{
		&LLMPrefillRequest{Session: sA, Prompt: []int{1, 2, 3}},
		&LLMPrefillRequest{Session: sB, Prompt: []int{7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		logits := r.Value.(*tensor.Matrix)
		if logits.Rows != 1 || logits.Cols != p.Cfg.Vocab {
			t.Fatalf("prefill result %d has shape %dx%d", i, logits.Rows, logits.Cols)
		}
	}

	results, err = decode.Execute([]any{
		&LLMDecodeRequest{Session: sA, Token: 4},
		&LLMDecodeRequest{Session: sB, Token: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		logits := r.Value.(*tensor.Matrix)
		if logits.Rows != 1 || logits.Cols != p.Cfg.Vocab {
			t.Fatalf("decode result %d has shape %dx%d", i, logits.Rows, logits.Cols)
		}
	}
}

func TestLLMAdapterMalformedPayloads(t *testing.T) {
	p := testLLMPipeline(t)
	s := p.NewSession(1)
	results, err := NewLLMPrefill(p, 0).Execute([]any{
		"bogus",
		&LLMPrefillRequest{Session: nil, Prompt: []int{1}},
		&LLMPrefillRequest{Session: s, Prompt: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[1].Err == nil {
		t.Fatal("malformed prefill payloads must fail individually")
	}
	if results[2].Err != nil {
		t.Fatal("valid prefill must survive malformed co-batch members")
	}

	results, err = NewLLMDecode(p, 0).Execute([]any{
		42,
		&LLMDecodeRequest{Session: s, Token: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("malformed decode payload must fail")
	}
	if results[1].Err != nil {
		t.Fatal("valid decode must survive malformed co-batch members")
	}
}
