package serving

import (
	"context"
	"errors"
	"testing"
)

func TestTaskClaimRace(t *testing.T) {
	// Worker wins: claim succeeds once, the caller receives the response
	// even if its context is already canceled (the send is guaranteed).
	tk := newTask(context.Background(), 0, "p")
	if !tk.claim() {
		t.Fatal("first claim must win")
	}
	if tk.claim() {
		t.Fatal("second claim must lose")
	}
	tk.resp <- Response{Value: "served"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := tk.wait(ctx); r.Value != "served" {
		t.Fatalf("claimed task must deliver the in-flight response, got %+v", r)
	}
}

func TestTaskAbandonBeatsClaim(t *testing.T) {
	// Caller wins: wait returns the cancellation, and the worker's later
	// claim fails — its cue to recycle instead of sending.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk := newTask(ctx, 0, "p")
	if r := tk.wait(ctx); !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("abandoned wait returned %+v", r)
	}
	if tk.claim() {
		t.Fatal("claim after abandonment must fail")
	}
	recycle(tk)
}

func TestRecycleClearsReferences(t *testing.T) {
	tk := newTask(context.Background(), 3, "payload")
	recycle(tk)
	if tk.payload != nil || tk.ctx != nil {
		t.Fatal("recycle must drop payload and context references")
	}
	if tk.state.Load() != taskPending {
		t.Fatal("recycled task must be pending again")
	}
}

func TestNewTaskNilContext(t *testing.T) {
	tk := newTask(nil, 0, "p") //nolint:staticcheck // nil ctx is the documented default
	if tk.ctx == nil {
		t.Fatal("nil ctx must default to Background")
	}
	recycle(tk)
}
