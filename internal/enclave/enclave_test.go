package enclave

import (
	"testing"

	"secemb/internal/oram"
)

// measure runs accesses on an ORAM built per variant and returns the
// model-estimated per-access latency.
func measure(t *testing.T, mkORAM func(cfg oram.Config) oram.ORAM, v Variant, n int) float64 {
	t.Helper()
	cutoff := -1 // recursion off
	if v.RecursionEnabled() {
		cutoff = 0 // scheme default cutoffs
	}
	o := mkORAM(oram.Config{NumBlocks: n, BlockWords: 64, Seed: 1, RecursionCutoff: cutoff})
	before := *o.Stats()
	const accesses = 50
	for i := 0; i < accesses; i++ {
		o.Read(uint64(i % n))
	}
	d := Delta(*o.Stats(), before)
	return ModelFor(v).EstimateNs(d) / accesses
}

func TestVariantString(t *testing.T) {
	if ZTOriginal.String() != "ZT-Original" || ZTGramine.String() != "ZT-Gramine" ||
		ZTGramineOpt.String() != "ZT-Gramine-Opt" || Variant(99).String() != "unknown" {
		t.Fatal("Variant.String mismatch")
	}
}

func TestRecursionOnlyInOpt(t *testing.T) {
	if ZTOriginal.RecursionEnabled() || ZTGramine.RecursionEnabled() || !ZTGramineOpt.RecursionEnabled() {
		t.Fatal("recursion availability wrong")
	}
}

// TestFig10Ordering: for both ORAM schemes and a table large enough for
// recursion to matter, the Figure 10 ordering must hold:
// ZT-Original > ZT-Gramine > ZT-Gramine-Opt.
func TestFig10Ordering(t *testing.T) {
	schemes := []struct {
		name string
		mk   func(cfg oram.Config) oram.ORAM
	}{
		{"Path", func(cfg oram.Config) oram.ORAM { return oram.NewPath(cfg) }},
		{"Circuit", func(cfg oram.Config) oram.ORAM { return oram.NewCircuit(cfg) }},
	}
	const n = 1 << 14 // above Circuit's recursion cutoff
	for _, s := range schemes {
		orig := measure(t, s.mk, ZTOriginal, n)
		gram := measure(t, s.mk, ZTGramine, n)
		opt := measure(t, s.mk, ZTGramineOpt, n)
		t.Logf("%s: original=%.0fns gramine=%.0fns opt=%.0fns", s.name, orig, gram, opt)
		if !(orig > gram && gram > opt) {
			t.Fatalf("%s: ordering violated: %v > %v > %v expected", s.name, orig, gram, opt)
		}
	}
}

func TestEstimateNsComponents(t *testing.T) {
	m := CostModel{BucketAccessNs: 10, WordMoveNs: 1, StashSlotNs: 2, PosmapEntryNs: 3, CmovOverheadNs: 4, OcallNs: 100, CrossCopyWordNs: 5}
	s := oram.Stats{BucketsRead: 1, BucketsWritten: 1, WordsMoved: 2, StashScans: 3, PosmapScans: 4, CmovOps: 5}
	want := 2.0*10 + 2*1 + 3*2 + 4*3 + 5*4 + 2*100 + 2*5
	if got := m.EstimateNs(s); got != want {
		t.Fatalf("EstimateNs=%v, want %v", got, want)
	}
}

func TestDelta(t *testing.T) {
	a := oram.Stats{Accesses: 10, BucketsRead: 100, MaxStash: 7}
	b := oram.Stats{Accesses: 4, BucketsRead: 30, MaxStash: 5}
	d := Delta(a, b)
	if d.Accesses != 6 || d.BucketsRead != 70 || d.MaxStash != 7 {
		t.Fatalf("Delta=%+v", d)
	}
}
