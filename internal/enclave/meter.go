package enclave

import (
	"secemb/internal/obs"
	"secemb/internal/oram"
)

// Meter publishes the cost model's view of ORAM controller work into an
// obs.Registry, labeled by deployment variant:
//
//	enclave_accesses_total{variant}    ORAM accesses accounted
//	enclave_buckets_total{variant}     tree buckets read+written (EPC paging
//	                                   proxy — each bucket is an ocall under
//	                                   ZT-Original)
//	enclave_words_total{variant}       payload words moved
//	enclave_stash_scans_total{variant} stash slots obliviously scanned
//	enclave_cmov_total{variant}        conditional selects
//	enclave_est_ns_total{variant}      modeled nanoseconds (EstimateNs)
//	enclave_ocall_ns_total{variant}    modeled boundary-crossing share
//	enclave_stash_max{variant}         high-water stash occupancy (gauge)
//
// A nil Meter (or one built from a nil registry) is a no-op, matching the
// nil-safety convention of memtrace.Tracer and the obs package.
type Meter struct {
	model    CostModel
	accesses *obs.Counter
	buckets  *obs.Counter
	words    *obs.Counter
	stash    *obs.Counter
	cmov     *obs.Counter
	estNs    *obs.Counter
	ocallNs  *obs.Counter
	stashMax *obs.Gauge
}

// NewMeter builds a meter for variant v recording into reg. Returns nil
// (a usable no-op meter) when reg is nil.
func NewMeter(v Variant, reg *obs.Registry) *Meter {
	if reg == nil {
		return nil
	}
	name := v.String()
	return &Meter{
		model:    ModelFor(v),
		accesses: reg.Counter("enclave_accesses_total", "variant", name),
		buckets:  reg.Counter("enclave_buckets_total", "variant", name),
		words:    reg.Counter("enclave_words_total", "variant", name),
		stash:    reg.Counter("enclave_stash_scans_total", "variant", name),
		cmov:     reg.Counter("enclave_cmov_total", "variant", name),
		estNs:    reg.Counter("enclave_est_ns_total", "variant", name),
		ocallNs:  reg.Counter("enclave_ocall_ns_total", "variant", name),
		stashMax: reg.Gauge("enclave_stash_max", "variant", name),
	}
}

// Record accounts one window of controller work (a Stats delta, as from
// Delta(after, before)).
func (m *Meter) Record(d oram.Stats) {
	if m == nil {
		return
	}
	buckets := d.BucketsRead + d.BucketsWritten
	m.accesses.Add(d.Accesses)
	m.buckets.Add(buckets)
	m.words.Add(d.WordsMoved)
	m.stash.Add(d.StashScans)
	m.cmov.Add(d.CmovOps)
	m.estNs.Add(int64(m.model.EstimateNs(d)))
	m.ocallNs.Add(int64(float64(buckets) * m.model.OcallNs))
	if ms := int64(d.MaxStash); ms > m.stashMax.Value() {
		m.stashMax.Set(ms)
	}
}
