// Package enclave models the cost of running an ORAM controller in the
// three SGX deployment configurations the paper compares in Figure 10:
//
//   - ZT-Original: the ZeroTrace layout for client SGX — the ORAM tree
//     lives in *untrusted* memory, so every path fetch/write-back crosses
//     the enclave boundary (ocalls + copy + re-encryption), and the cmov
//     primitive is an out-of-line assembly call. Position-map recursion is
//     unavailable (the paper reports it broken before their fixes).
//   - ZT-Gramine: Scalable SGX via Gramine — the whole tree fits in the
//     64 GB EPC, eliminating boundary crossings; cmov still a call.
//   - ZT-Gramine-Opt: additionally inlines cmov and enables recursion.
//
// The paper measures these on Ice Lake hardware; this package reproduces
// the comparison as an explicit cost model over the controller work
// counters (internal/oram.Stats). The default constants are calibrated so
// the *relative* improvements match the paper's reported reductions
// (≈20%/60% from EPC residency for Path/Circuit, ≈29%/54% more from
// inlining+recursion); absolute numbers are illustrative.
package enclave

import "secemb/internal/oram"

// Variant identifies a deployment configuration.
type Variant int

const (
	// ZTOriginal is ZeroTrace's client-SGX layout (tree outside EPC).
	ZTOriginal Variant = iota
	// ZTGramine keeps the entire ORAM inside the Scalable-SGX EPC.
	ZTGramine
	// ZTGramineOpt additionally inlines cmov and enables posmap recursion.
	ZTGramineOpt
)

// String names the variant as in Figure 10.
func (v Variant) String() string {
	switch v {
	case ZTOriginal:
		return "ZT-Original"
	case ZTGramine:
		return "ZT-Gramine"
	case ZTGramineOpt:
		return "ZT-Gramine-Opt"
	}
	return "unknown"
}

// RecursionEnabled reports whether the variant supports recursive position
// maps (only the optimized build does, per §V-A1).
func (v Variant) RecursionEnabled() bool { return v == ZTGramineOpt }

// CostModel converts controller work counters into nanoseconds.
type CostModel struct {
	// BucketAccessNs is the in-enclave cost of touching one tree bucket
	// (cache/DRAM traffic incl. SGX memory encryption).
	BucketAccessNs float64
	// WordMoveNs is the cost per payload word copied between tree and
	// stash or registers.
	WordMoveNs float64
	// StashSlotNs is the cost per stash slot visited by an oblivious scan.
	StashSlotNs float64
	// PosmapEntryNs is the cost per flat-posmap entry scanned.
	PosmapEntryNs float64
	// CmovOverheadNs is the extra cost per conditional-select when cmov is
	// an out-of-line call (zero when inlined).
	CmovOverheadNs float64
	// OcallNs is the enclave boundary-crossing cost paid per bucket
	// transferred when the tree lives outside the EPC (zero otherwise).
	OcallNs float64
	// CrossCopyWordNs is the additional per-word cost of moving payload
	// across the boundary with re-encryption (zero when inside EPC).
	CrossCopyWordNs float64
}

// ModelFor returns the calibrated cost model for a deployment variant.
func ModelFor(v Variant) CostModel {
	base := CostModel{
		BucketAccessNs: 120,
		WordMoveNs:     1.0,
		StashSlotNs:    2.0,
		PosmapEntryNs:  0.8,
	}
	switch v {
	case ZTOriginal:
		base.CmovOverheadNs = 6
		base.OcallNs = 700
		base.CrossCopyWordNs = 1.5
	case ZTGramine:
		base.CmovOverheadNs = 6
	case ZTGramineOpt:
		// inlined cmov, everything EPC-resident
	}
	return base
}

// EstimateNs converts a Stats *delta* (the counters accumulated by some
// window of accesses) into an estimated latency under the model.
func (m CostModel) EstimateNs(s oram.Stats) float64 {
	buckets := float64(s.BucketsRead + s.BucketsWritten)
	ns := buckets * m.BucketAccessNs
	ns += float64(s.WordsMoved) * m.WordMoveNs
	ns += float64(s.StashScans) * m.StashSlotNs
	ns += float64(s.PosmapScans) * m.PosmapEntryNs
	ns += float64(s.CmovOps) * m.CmovOverheadNs
	ns += buckets * m.OcallNs
	ns += float64(s.WordsMoved) * m.CrossCopyWordNs
	return ns
}

// Delta subtracts two cumulative counters, giving the work done between
// two snapshots.
func Delta(after, before oram.Stats) oram.Stats {
	return oram.Stats{
		Accesses:       after.Accesses - before.Accesses,
		BucketsRead:    after.BucketsRead - before.BucketsRead,
		BucketsWritten: after.BucketsWritten - before.BucketsWritten,
		WordsMoved:     after.WordsMoved - before.WordsMoved,
		StashScans:     after.StashScans - before.StashScans,
		PosmapScans:    after.PosmapScans - before.PosmapScans,
		Evictions:      after.Evictions - before.Evictions,
		CmovOps:        after.CmovOps - before.CmovOps,
		MaxStash:       after.MaxStash,
	}
}
