// Package leakcheck is the trace-equivalence leakage audit: it mechanically
// verifies that a generator's memory access pattern is independent of its
// secret inputs, in the style of Privado's input-obliviousness checking.
//
// The method: construct a *fresh* generator per panel input from the same
// seed (a fixed random tape, so randomized schemes replay identical
// randomness and only the secret differs), run the same-shaped batch of
// adversarially chosen ids through it, canonicalize the recorded trace, and
// demand exact equality against the first input's trace. For deterministic
// oblivious schemes (linear scan, DHE) canonicalization is the identity and
// the check is raw trace equality. For tree ORAMs the bucket index within a
// level is the randomized component — the posmap value of the requested id
// steers the fetch path even on a fixed tape — so tree-region accesses are
// first mapped to their level (memtrace.CanonicalizeTreeRegions), turning
// the deterministic invariant "one bucket per level, root to leaf, fixed
// order" into an exactly-checkable sequence. Leaf-choice uniformity, the
// randomized half of the ORAM argument, is covered by the chi-square tests
// in internal/oram.
//
// A harness like this is only trustworthy if it demonstrably has teeth: the
// plain table lookup must be reported leaky, with the correct offset of the
// first input-dependent access. Verify makes no assumption either way — it
// reports what the traces show — and the test suite plus cmd/leakcheck
// treat "lookup not flagged" as a harness failure.
package leakcheck

import (
	"fmt"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/oram"
)

// Panel is a set of same-shaped secret input batches. Verify compares the
// canonical trace of every input against the first, so inputs[0] is the
// reference.
type Panel [][]uint64

// Factory describes one audit target: how to build a fresh generator wired
// to a tracer, and how to canonicalize its traces.
type Factory struct {
	// Name labels the target in reports ("dhe", "path", …).
	Name string
	// Secure is the expected verdict: true for oblivious techniques (a
	// divergence is a regression), false for the leaky baseline (a clean
	// report means the harness lost its teeth).
	Secure bool
	// New constructs a fresh generator recording into tr. It is called once
	// per panel input so every run replays the same random tape.
	New func(tr *memtrace.Tracer) (core.Generator, error)
	// Canon canonicalizes a raw trace before comparison; nil → Canonical.
	Canon func(memtrace.Trace) memtrace.Trace
}

// Canonical is the default canonicalization: ORAM tree-bucket accesses are
// mapped to their tree level; everything else is compared verbatim.
func Canonical(t memtrace.Trace) memtrace.Trace {
	return memtrace.CanonicalizeTreeRegions(t, oram.RegionSuffixTree)
}

// Divergence records one panel input whose canonical trace differed from
// the reference input's.
type Divergence struct {
	// Input is the panel index (≥1) that diverged from input 0.
	Input int `json:"input"`
	// Offset is the first differing canonical access (FirstDiff
	// convention: length differences report the shorter length).
	Offset int `json:"offset"`
	// Want and Got render the reference and divergent access at Offset
	// ("<end>" when one trace ended).
	Want string `json:"want"`
	Got  string `json:"got"`
	// RefLen and GotLen are the compared canonical trace lengths.
	RefLen int `json:"ref_len"`
	GotLen int `json:"got_len"`
	// RegionDiffs counts differing positions per trace region.
	RegionDiffs map[string]int `json:"region_diffs,omitempty"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("input %d diverges at offset %d: want %s, got %s (lengths %d vs %d)",
		d.Input, d.Offset, d.Want, d.Got, d.RefLen, d.GotLen)
}

// Report is the structured result of auditing one target against a panel.
type Report struct {
	Name      string `json:"name"`
	Secure    bool   `json:"secure"` // expected verdict (from the Factory)
	PanelSize int    `json:"panel_size"`
	BatchSize int    `json:"batch_size"`
	// TraceLen is the canonical reference trace length (input 0).
	TraceLen int `json:"trace_len"`
	// Leaky is the observed verdict: at least one panel input produced a
	// canonical trace different from the reference.
	Leaky       bool         `json:"leaky"`
	Divergences []Divergence `json:"divergences,omitempty"`
}

// Pass reports whether the observed verdict matches the expectation: secure
// targets must not leak, and the insecure baseline must be caught leaking.
func (r *Report) Pass() bool { return r.Secure != r.Leaky }

// Verify audits one factory against a panel. It returns an error only when
// the audit itself cannot run (bad panel shape, construction or generation
// failure); a detected leak is reported in the Report, not as an error.
func Verify(f Factory, panel Panel) (*Report, error) {
	if len(panel) < 2 {
		return nil, fmt.Errorf("leakcheck: panel needs ≥2 inputs, got %d", len(panel))
	}
	batch := len(panel[0])
	for i, ids := range panel {
		if len(ids) != batch {
			return nil, fmt.Errorf("leakcheck: panel input %d has %d ids, want %d (inputs must be same-shaped)",
				i, len(ids), batch)
		}
	}
	canon := f.Canon
	if canon == nil {
		canon = Canonical
	}
	run := func(ids []uint64) (memtrace.Trace, error) {
		tr := memtrace.NewEnabled()
		g, err := f.New(tr)
		if err != nil {
			return nil, fmt.Errorf("leakcheck: %s: construct: %w", f.Name, err)
		}
		if _, err := g.Generate(ids); err != nil {
			return nil, fmt.Errorf("leakcheck: %s: generate %v: %w", f.Name, ids, err)
		}
		return canon(tr.Snapshot()), nil
	}

	ref, err := run(panel[0])
	if err != nil {
		return nil, err
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("leakcheck: %s: empty reference trace — instrumentation inactive", f.Name)
	}
	rep := &Report{
		Name:      f.Name,
		Secure:    f.Secure,
		PanelSize: len(panel),
		BatchSize: batch,
		TraceLen:  len(ref),
	}
	for i, ids := range panel[1:] {
		got, err := run(ids)
		if err != nil {
			return nil, err
		}
		d := memtrace.Compare(ref, got)
		if d.Equal() {
			continue
		}
		rep.Leaky = true
		rep.Divergences = append(rep.Divergences, Divergence{
			Input:       i + 1,
			Offset:      d.First,
			Want:        accessAt(ref, d.First),
			Got:         accessAt(got, d.First),
			RefLen:      d.LenA,
			GotLen:      d.LenB,
			RegionDiffs: d.Regions,
		})
	}
	return rep, nil
}

// VerifyAll audits every factory against the panel, in order.
func VerifyAll(fs []Factory, panel Panel) ([]*Report, error) {
	out := make([]*Report, 0, len(fs))
	for _, f := range fs {
		r, err := Verify(f, panel)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func accessAt(t memtrace.Trace, i int) string {
	if i < 0 || i >= len(t) {
		return "<end>"
	}
	return t[i].String()
}
