package leakcheck

// AdversarialPanel builds the standard audit panel: nine same-shaped
// batches chosen to maximize the chance that an index-dependent access
// slips through a weaker check — boundary ids, repeated ids, skewed
// hot-key mixes, and structured sweeps. rows is the table cardinality,
// batch the ids per input (both ≥ 1).
func AdversarialPanel(rows, batch int) Panel {
	max := uint64(rows - 1)
	mk := func(f func(i int) uint64) []uint64 {
		ids := make([]uint64, batch)
		for i := range ids {
			ids[i] = f(i) % uint64(rows)
		}
		return ids
	}
	stride := rows/batch | 1
	// Deterministic LCG stand-in for a "random" batch: same constants as
	// Numerical Recipes; seeds the panel without pulling in math/rand.
	lcg := uint64(12345)
	return Panel{
		mk(func(int) uint64 { return 0 }),                       // all-min id
		mk(func(int) uint64 { return max }),                     // all-max id
		mk(func(i int) uint64 { return uint64(i) }),             // sequential
		mk(func(i int) uint64 { return uint64(batch - 1 - i) }), // reversed
		mk(func(int) uint64 { return max / 2 }),                 // hammer one mid id
		mk(func(i int) uint64 { // skewed hot key: ~90% one id, tail spread
			if i%10 != 0 {
				return 7
			}
			return uint64(i) * 13
		}),
		mk(func(i int) uint64 { return uint64(i * stride) }), // strided sweep
		mk(func(i int) uint64 { // alternating boundary mix
			if i%2 == 0 {
				return 0
			}
			return max
		}),
		mk(func(int) uint64 { // pseudo-random
			lcg = lcg*6364136223846793005 + 1442695040888963407
			return lcg >> 33
		}),
	}
}
