package leakcheck

import (
	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/planner"
	"secemb/internal/tensor"
)

// PlannerFactory audits the adaptive planner's per-shard hot-swap
// lifecycle: each panel input is served once on both shards of a two-shard
// table (incumbent batched scan everywhere), then a forced re-plan swaps
// *only shard 1* to DHE through the real planner swap path (prepare →
// install → drain) while shard 0 keeps its scan, and the same input is
// served again on both shards. The recorded trace therefore spans an
// asymmetric per-shard swap boundary — scan sweeps, swap of one shard,
// scan sweep + DHE sweep — and trace equality across the panel proves that
// per-shard technique selection, swap timing, and every serving regime are
// independent of the ids: a planner that decided *which shard* to swap (or
// when) from id values would move the boundary between shards and diverge.
// See TestPlannerAuditTeeth for the counterexample.
func PlannerFactory(rows, dim int, seed int64) Factory {
	return Factory{
		Name:   "planner",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			return newPlannerGen(rows, dim, seed, tr)
		},
	}
}

// plannerGen replays one batch across a forced asymmetric re-plan. Fresh
// per panel input (Factory.New), so every run sees an identical planner
// lifecycle on an identical random tape; only the secret ids differ.
type plannerGen struct {
	shards []*planner.Swappable
	pl     *planner.Planner
}

func newPlannerGen(rows, dim int, seed int64, tr *memtrace.Tracer) (*plannerGen, error) {
	build := func(shard int, tech core.Technique) (core.Generator, error) {
		return core.New(tech, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
	}
	shards := make([]*planner.Swappable, 2)
	for i := range shards {
		scan, err := build(i, core.LinearScanBatched)
		if err != nil {
			return nil, err
		}
		shards[i] = planner.NewSwappable(scan)
	}
	pl := planner.New(planner.Config{})
	if err := pl.Manage(planner.Table{
		Name: "audit", Rows: rows, Dim: dim, Build: build,
		Shards:  [][]*planner.Swappable{{shards[0]}, {shards[1]}},
		Initial: core.LinearScanBatched,
	}); err != nil {
		return nil, err
	}
	return &plannerGen{shards: shards, pl: pl}, nil
}

// Generate serves the batch on both shards' scans, forces the scan→DHE
// re-plan of shard 1 only (shard 0 keeps serving scan — the asymmetric
// split), and serves the batch on both shards again — one trace across the
// per-shard swap boundary.
//
// secemb:secret ids
func (p *plannerGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	for _, sw := range p.shards {
		if _, err := sw.Generate(ids); err != nil {
			return nil, err
		}
	}
	if err := p.pl.ForceSwapShard("audit", 1, core.DHE); err != nil {
		return nil, err
	}
	if _, err := p.shards[0].Generate(ids); err != nil {
		return nil, err
	}
	return p.shards[1].Generate(ids)
}

func (p *plannerGen) Rows() int                 { return p.shards[0].Rows() }
func (p *plannerGen) Dim() int                  { return p.shards[0].Dim() }
func (p *plannerGen) Technique() core.Technique { return p.shards[0].Technique() }
func (p *plannerGen) NumBytes() int64           { return p.shards[0].NumBytes() }
func (p *plannerGen) SetThreads(n int) {
	for _, sw := range p.shards {
		sw.SetThreads(n)
	}
}
