package leakcheck

import (
	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/planner"
	"secemb/internal/tensor"
)

// PlannerFactory audits the adaptive planner's hot-swap lifecycle: each
// panel input is served once on the incumbent batched scan, then a forced
// re-plan swaps the table to DHE through the real planner swap path
// (prepare → install → drain), and the same input is served again on the
// new representation. The recorded trace therefore spans the re-plan
// boundary — scan sweep, swap, DHE sweep — and trace equality across the
// panel proves that technique selection, swap timing, and both serving
// regimes are independent of the ids: a planner that decided or timed its
// swap from id values would move the boundary (or change the techniques)
// and diverge. See TestPlannerAuditTeeth for the counterexample.
func PlannerFactory(rows, dim int, seed int64) Factory {
	return Factory{
		Name:   "planner",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			return newPlannerGen(rows, dim, seed, tr)
		},
	}
}

// plannerGen replays one batch across a forced re-plan. Fresh per panel
// input (Factory.New), so every run sees an identical planner lifecycle on
// an identical random tape; only the secret ids differ.
type plannerGen struct {
	sw *planner.Swappable
	pl *planner.Planner
}

func newPlannerGen(rows, dim int, seed int64, tr *memtrace.Tracer) (*plannerGen, error) {
	build := func(tech core.Technique) (core.Generator, error) {
		return core.New(tech, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
	}
	scan, err := build(core.LinearScanBatched)
	if err != nil {
		return nil, err
	}
	sw := planner.NewSwappable(scan)
	pl := planner.New(planner.Config{})
	if err := pl.Manage(planner.Table{
		Name: "audit", Rows: rows, Dim: dim, Build: build,
		Replicas: []*planner.Swappable{sw}, Initial: core.LinearScanBatched,
	}); err != nil {
		return nil, err
	}
	return &plannerGen{sw: sw, pl: pl}, nil
}

// Generate serves the batch on the scan, forces the scan→DHE re-plan, and
// serves it again on the DHE — one trace across the swap boundary.
//
// secemb:secret ids
func (p *plannerGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if _, err := p.sw.Generate(ids); err != nil {
		return nil, err
	}
	if err := p.pl.ForceSwap("audit", core.DHE); err != nil {
		return nil, err
	}
	return p.sw.Generate(ids)
}

func (p *plannerGen) Rows() int                 { return p.sw.Rows() }
func (p *plannerGen) Dim() int                  { return p.sw.Dim() }
func (p *plannerGen) Technique() core.Technique { return p.sw.Technique() }
func (p *plannerGen) NumBytes() int64           { return p.sw.NumBytes() }
func (p *plannerGen) SetThreads(n int)          { p.sw.SetThreads(n) }
