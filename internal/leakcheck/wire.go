package leakcheck

import (
	"context"
	"fmt"
	"time"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/serving"
	"secemb/internal/serving/backends"
	"secemb/internal/tensor"
	"secemb/internal/wire"
)

// wireMaxBatch is the front door's public id cap in the audit stack; the
// panel batch (8) buckets to 8, so every response is one fixed frame size.
const wireMaxBatch = 16

// WireFactory audits the network front door end to end: panel ids travel
// the real path — wire codec, h2c loopback server, serving group, traced
// linear-scan backend — and the padded response size observed by the
// client is appended to the trace as a synthetic "wire.resp" access. Trace
// equality across the panel therefore proves two things at once: the
// backend's memory accesses stay id-independent through the full network
// stack, and the on-the-wire response size (the padding-bucket policy)
// partitions only by the public batch count, never by the ids.
func WireFactory(rows, dim int, seed int64) Factory {
	return Factory{
		Name:   "wire",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			gen, err := core.New(core.LinearScan, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
			if err != nil {
				return nil, err
			}
			return &wireGen{inner: gen, tracer: tr}, nil
		},
	}
}

// wireGen routes Generate through a fresh in-process front door. It is
// single-shot, like the coalesce target: the server and group are torn
// down after the one panel batch so each input gets a pristine stack.
type wireGen struct {
	inner  core.Generator
	tracer *memtrace.Tracer
}

// Generate submits the batch as one wire request over a loopback h2c
// connection and records the padded response size the client observed.
//
// secemb:audit wire
func (w *wireGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	group := serving.NewGroup(
		[]serving.Backend{backends.NewEmbedding(w.inner, wireMaxBatch)},
		serving.GroupConfig{QueueDepth: 16},
	)
	srv := wire.NewServer(wire.ServerConfig{
		Group:    group,
		Dim:      w.inner.Dim(),
		MaxBatch: wireMaxBatch,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		group.Close()
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.DrainAll(ctx)
	}()

	client := wire.NewClient(wire.ClientConfig{Addr: addr, Timeout: 30 * time.Second})
	defer client.Close()
	res, err := client.Embed(context.Background(), 0, ids)
	if err != nil {
		return nil, err
	}
	if res.Status != serving.StatusOK {
		return nil, fmt.Errorf("leakcheck: wire status %v", res.Status)
	}
	// The network-visible response size joins the trace: an id-dependent
	// padding bucket would diverge here even if the backend stayed clean.
	w.tracer.Touch("wire.resp", int64(res.BytesIn), memtrace.Write)
	return res.Rows, nil
}

func (w *wireGen) Rows() int                 { return w.inner.Rows() }
func (w *wireGen) Dim() int                  { return w.inner.Dim() }
func (w *wireGen) Technique() core.Technique { return w.inner.Technique() }
func (w *wireGen) NumBytes() int64           { return w.inner.NumBytes() }
func (w *wireGen) SetThreads(n int)          { w.inner.SetThreads(n) }
