package leakcheck

import (
	"testing"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

func TestWireFrontDoorPassesPanel(t *testing.T) {
	const rows, dim, batch, seed = 128, 4, 8, 3
	rep, err := Verify(WireFactory(rows, dim, seed), AdversarialPanel(rows, batch))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky {
		t.Fatalf("wire front door reported leaky: %v", rep.Divergences[0])
	}
	// One linear-scan sweep per id plus exactly one response-size record:
	// the network path adds nothing id-shaped to the trace.
	if rep.TraceLen != batch*rows+1 {
		t.Fatalf("trace length %d, want %d (scan sweeps + response size)", rep.TraceLen, batch*rows+1)
	}
}

// TestWireAuditTeeth proves the wire audit catches the failure mode the
// response-size record exists for: a front door whose response size
// depends on the ids (e.g. padding to the exact row count of *distinct*
// ids instead of the public batch bucket). The simulated leak below
// records a size that varies with the ids; Verify must flag it even
// though the backend's accesses stay perfectly oblivious.
func TestWireAuditTeeth(t *testing.T) {
	const rows, dim, seed = 64, 4, 5
	leaky := Factory{
		Name:   "wire-sizeleak",
		Secure: true, // claims security; the audit must prove otherwise
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			gen, err := core.New(core.LinearScan, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
			if err != nil {
				return nil, err
			}
			return &sizeLeakGen{inner: gen, tracer: tr}, nil
		},
	}
	panel := Panel{
		{1, 2, 3, 4}, // distinct ids → "compressed" size 4
		{7, 7, 7, 7}, // repeated id → "compressed" size 1
	}
	rep, err := Verify(leaky, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky {
		t.Fatal("id-dependent response size escaped the wire audit — the harness lost its teeth")
	}
}

// sizeLeakGen simulates a front door that deduplicates rows before
// padding: the recorded response size counts distinct ids, leaking their
// multiplicity even though every table access is a full oblivious sweep.
type sizeLeakGen struct {
	inner  core.Generator
	tracer *memtrace.Tracer
}

func (g *sizeLeakGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	out, err := g.inner.Generate(ids)
	if err != nil {
		return nil, err
	}
	distinct := map[uint64]bool{}
	for _, id := range ids {
		distinct[id] = true
	}
	g.tracer.Touch("wire.resp", int64(len(distinct)*g.inner.Dim()*4), memtrace.Write)
	return out, nil
}

func (g *sizeLeakGen) Rows() int                 { return g.inner.Rows() }
func (g *sizeLeakGen) Dim() int                  { return g.inner.Dim() }
func (g *sizeLeakGen) Technique() core.Technique { return g.inner.Technique() }
func (g *sizeLeakGen) NumBytes() int64           { return g.inner.NumBytes() }
func (g *sizeLeakGen) SetThreads(n int)          { g.inner.SetThreads(n) }
