package leakcheck

import (
	"errors"

	"secemb/internal/core"
	"secemb/internal/memtrace"
)

// errInt8Inactive reports that an int8 audit target fell back to float32.
var errInt8Inactive = errors.New("leakcheck: int8 gate rejected the seeded decoder; dhe-int8 target would not exercise the quantized path")

// Standard factories for the repository's generators. All run
// single-threaded: the Tracer is not synchronized, and a serialized batch
// keeps traces comparable position-by-position.

// TechniqueFactory audits one core technique built through core.New with a
// fresh seed-deterministic representation per panel input.
func TechniqueFactory(tech core.Technique, rows, dim int, seed int64) Factory {
	return Factory{
		Name:   tech.Key(),
		Secure: tech.Secure(),
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			return core.New(tech, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
		},
	}
}

// Int8DHEFactory audits the quantized DHE hot path: same dense decoder
// sweep as plain DHE, but the inner product runs the packed int8 SWAR
// kernels. The gate threshold is generous — leakcheck probes traces, not
// accuracy — but construction fails loudly if the quantized path did not
// actually engage (a silently-float "dhe-int8" target would audit nothing).
func Int8DHEFactory(rows, dim int, seed int64) Factory {
	return Factory{
		Name:   "dhe-int8",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			g, err := core.New(core.DHE, rows, dim, core.Options{
				Seed: seed, Tracer: tr, Threads: 1, Int8: true, Int8MaxErr: 0.5,
			})
			if err != nil {
				return nil, err
			}
			if !core.Int8Active(g) {
				return nil, errInt8Inactive
			}
			return g, nil
		},
	}
}

// DualFactory audits the §IV-D hybrid: a DHE plus a Circuit ORAM
// materialized from it, dispatched on the (public) batch size. Whether the
// panel exercises the DHE or the ORAM path depends only on the panel's
// batch size relative to threshold — by design never on the ids — so a
// single panel audits one regime; run it once below and once above the
// threshold to cover both.
func DualFactory(rows, dim, threshold int, seed int64) Factory {
	return Factory{
		Name:   "dual",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			opts := core.Options{Seed: seed, Tracer: tr, Threads: 1}
			dheGen, err := core.New(core.DHE, rows, dim, opts)
			if err != nil {
				return nil, err
			}
			return core.NewDual(dheGen, threshold, opts), nil
		},
	}
}

// StandardFactories returns the full audit roster for one table shape: the
// leaky baseline (negative control) plus every oblivious technique,
// including the batched scan variant.
func StandardFactories(rows, dim int, seed int64) []Factory {
	return []Factory{
		TechniqueFactory(core.Lookup, rows, dim, seed),
		TechniqueFactory(core.LinearScan, rows, dim, seed),
		TechniqueFactory(core.LinearScanBatched, rows, dim, seed),
		TechniqueFactory(core.PathORAM, rows, dim, seed),
		TechniqueFactory(core.CircuitORAM, rows, dim, seed),
		TechniqueFactory(core.DHE, rows, dim, seed),
	}
}
