package leakcheck

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/serving"
	"secemb/internal/serving/backends"
	"secemb/internal/tensor"
)

// coalesceMaxBatch divides the standard panel batch (8) evenly, so the
// micro-batcher fuses every panel input into exactly two full batches —
// a deterministic composition the trace-equivalence check can pin down.
const coalesceMaxBatch = 4

// CoalescedFactory audits the serving layer's micro-batching scheduler:
// panel ids are submitted as independent single-id requests to a Group
// whose coalescer fuses them into batched Generate calls on a traced
// batched-scan backend. What the audit proves is the §V-B scheduler
// invariant — batch *composition* depends only on arrival count, never on
// the ids being fused. An id-dependent flush policy would change how many
// fused Generate calls (table sweeps) a panel input produces, and the
// trace comparison would flag the divergence; see TestCoalesceAuditTeeth.
func CoalescedFactory(rows, dim int, seed int64) Factory {
	return Factory{
		Name:   "coalesce",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			table := tensor.NewGaussian(rows, dim, 0.02, rand.New(rand.NewSource(seed)))
			gen := core.MustNew(core.LinearScanBatched, rows, dim, core.Options{Table: table, Tracer: tr, Threads: 1})
			return newCoalescedGen(gen), nil
		},
	}
}

// newCoalescedGen wraps gen behind a one-backend serving Group with the
// audit's deterministic coalescing policy.
func newCoalescedGen(gen core.Generator) *coalescedGen {
	g := serving.NewGroup(
		[]serving.Backend{backends.NewEmbedding(gen, coalesceMaxBatch)},
		serving.GroupConfig{
			QueueDepth: 64,
			// A generous MaxWait forces the gather loop to hold partial
			// batches until they fill: with the panel batch a multiple of
			// coalesceMaxBatch, every run fuses the same full batches no
			// matter how the submitting goroutines are scheduled.
			Coalesce: serving.CoalesceConfig{
				MaxBatch: coalesceMaxBatch,
				MaxWait:  5 * time.Second,
			},
		})
	return &coalescedGen{inner: gen, group: g}
}

// coalescedGen adapts the Group to the Generator interface the audit
// harness drives. It is single-shot: Generate tears the group down after
// the batch so each panel input's worker goroutine is reclaimed.
type coalescedGen struct {
	inner core.Generator
	group *serving.Group
}

// Generate submits every id as its own request and reassembles the rows
// in input order. The scheduler fuses the requests into full batches; the
// backend's traced sweeps are what the audit compares across the panel.
func (c *coalescedGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	out := tensor.New(len(ids), c.inner.Dim())
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id uint64) {
			defer wg.Done()
			r := c.group.Do(context.Background(), 0, []uint64{id})
			if r.Err != nil {
				errs[i] = r.Err
				return
			}
			copy(out.Row(i), r.Value.(*tensor.Matrix).Row(0))
		}(i, id)
	}
	wg.Wait()
	c.group.Close()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *coalescedGen) Rows() int                 { return c.inner.Rows() }
func (c *coalescedGen) Dim() int                  { return c.inner.Dim() }
func (c *coalescedGen) Technique() core.Technique { return c.inner.Technique() }
func (c *coalescedGen) NumBytes() int64           { return c.inner.NumBytes() }
func (c *coalescedGen) SetThreads(n int)          { c.inner.SetThreads(n) }
