package leakcheck

import (
	"math/rand"
	"strings"
	"testing"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

func TestAdversarialPanelShape(t *testing.T) {
	const rows, batch = 300, 16
	panel := AdversarialPanel(rows, batch)
	if len(panel) < 8 {
		t.Fatalf("panel has %d inputs, want ≥8", len(panel))
	}
	seen := map[string]bool{}
	for i, ids := range panel {
		if len(ids) != batch {
			t.Fatalf("input %d has %d ids, want %d", i, len(ids), batch)
		}
		for j, id := range ids {
			if id >= rows {
				t.Fatalf("input %d id %d = %d out of range %d", i, j, id, rows)
			}
		}
		key := ""
		for _, id := range ids {
			key += string(rune(id)) + ","
		}
		if seen[key] {
			t.Fatalf("input %d duplicates an earlier panel input: %v", i, ids)
		}
		seen[key] = true
	}
	// Boundary inputs must be present: an all-min and an all-max batch.
	if panel[0][0] != 0 || panel[1][0] != rows-1 {
		t.Fatalf("panel must lead with min/max boundary inputs, got %v, %v", panel[0], panel[1])
	}
}

// TestObliviousTechniquesPassPanel is the acceptance check: every secure
// generator's canonical trace is identical across the full adversarial
// panel.
func TestObliviousTechniquesPassPanel(t *testing.T) {
	const rows, dim, batch, seed = 256, 8, 8, 3
	panel := AdversarialPanel(rows, batch)
	for _, f := range StandardFactories(rows, dim, seed) {
		if !f.Secure {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rep, err := Verify(f, panel)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Leaky {
				t.Fatalf("%s reported leaky: %v", f.Name, rep.Divergences[0])
			}
			if !rep.Pass() {
				t.Fatalf("%s did not pass", f.Name)
			}
			if rep.PanelSize != len(panel) || rep.BatchSize != batch {
				t.Fatalf("report shape %d/%d, want %d/%d", rep.PanelSize, rep.BatchSize, len(panel), batch)
			}
		})
	}
}

// TestLookupFlaggedLeakyWithOffset is the harness-has-teeth check: the
// plain table lookup must be reported leaky, and the first-divergence
// offset must point at the exact position where the crafted inputs differ.
func TestLookupFlaggedLeakyWithOffset(t *testing.T) {
	const rows, dim, seed = 64, 4, 1
	f := TechniqueFactory(core.Lookup, rows, dim, seed)
	// The lookup trace is one access per id, so inputs differing only at
	// position 3 must diverge at canonical offset 3.
	panel := Panel{
		{1, 2, 3, 4},
		{1, 2, 3, 9},
	}
	rep, err := Verify(f, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky {
		t.Fatal("lookup not flagged leaky — the harness has no teeth")
	}
	if rep.Pass() != true {
		t.Fatal("an insecure technique caught leaking must count as a harness pass")
	}
	d := rep.Divergences[0]
	if d.Input != 1 || d.Offset != 3 {
		t.Fatalf("divergence at input %d offset %d, want input 1 offset 3", d.Input, d.Offset)
	}
	if d.RegionDiffs["lookup"] != 1 {
		t.Fatalf("region diffs %v, want lookup:1", d.RegionDiffs)
	}
	if !strings.Contains(d.Want, "[4]") || !strings.Contains(d.Got, "[9]") {
		t.Fatalf("divergence should name the leaked blocks, got want=%s got=%s", d.Want, d.Got)
	}
	// And across the full adversarial panel, every non-reference input
	// must diverge (they all differ from the all-zeros batch).
	rep, err = Verify(f, AdversarialPanel(rows, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != rep.PanelSize-1 {
		t.Fatalf("lookup diverged on %d/%d inputs, want all", len(rep.Divergences), rep.PanelSize-1)
	}
}

// leakyScan wraps an oblivious generator but sneaks one id-dependent touch
// in front — the one-line regression class the harness exists to catch.
type leakyScan struct {
	core.Generator
	tr *memtrace.Tracer
}

func (g leakyScan) Generate(ids []uint64) (*tensor.Matrix, error) {
	g.tr.Touch("scan", int64(ids[0]%2), memtrace.Read)
	return g.Generator.Generate(ids)
}

// TestInjectedLeakCaught: tampering an oblivious generator with a single
// input-dependent access must flip its verdict, with the divergence at
// offset 0 where the tampered touch lands.
func TestInjectedLeakCaught(t *testing.T) {
	const rows, dim, seed = 64, 4, 2
	f := Factory{
		Name:   "scan-tampered",
		Secure: true,
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			g, err := core.New(core.LinearScan, rows, dim, core.Options{Seed: seed, Tracer: tr, Threads: 1})
			if err != nil {
				return nil, err
			}
			return leakyScan{Generator: g, tr: tr}, nil
		},
	}
	panel := Panel{
		{2, 2, 2, 2}, // ids[0] even → touches block 0
		{3, 3, 3, 3}, // ids[0] odd  → touches block 1
	}
	rep, err := Verify(f, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky || rep.Pass() {
		t.Fatal("injected leak not caught")
	}
	if d := rep.Divergences[0]; d.Offset != 0 {
		t.Fatalf("divergence offset %d, want 0", d.Offset)
	}
}

// TestDualBothRegimes audits the hybrid in both dispatch regimes and
// checks each regime really exercised its representation.
func TestDualBothRegimes(t *testing.T) {
	const rows, dim, threshold, seed = 128, 8, 4, 5
	f := DualFactory(rows, dim, threshold, seed)
	regions := func(batch int) map[string]bool {
		tr := memtrace.NewEnabled()
		g, err := f.New(tr)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, batch)
		if _, err := g.Generate(ids); err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, a := range tr.Snapshot() {
			out[a.Region] = true
		}
		return out
	}
	if r := regions(threshold); !r["circuit.tree"] {
		t.Fatalf("batch ≤ threshold should hit the ORAM, saw regions %v", r)
	}
	if r := regions(threshold + 4); !r["dhe"] {
		t.Fatalf("batch > threshold should hit the DHE, saw regions %v", r)
	}
	for _, batch := range []int{threshold, threshold + 4} {
		rep, err := Verify(f, AdversarialPanel(rows, batch))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Leaky {
			t.Fatalf("dual (batch %d) reported leaky: %v", batch, rep.Divergences[0])
		}
	}
}

// TestCircuitRecursionPanel pushes the table past the Circuit ORAM
// recursion cutoff (2^12 blocks) so the audit also covers the recursive
// position-map regions.
func TestCircuitRecursionPanel(t *testing.T) {
	const rows, dim, batch, seed = 1 << 13, 2, 2, 7
	f := TechniqueFactory(core.CircuitORAM, rows, dim, seed)
	tr := memtrace.NewEnabled()
	g, err := f.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate([]uint64{0, 1}); err != nil {
		t.Fatal(err)
	}
	recursed := false
	for _, a := range tr.Snapshot() {
		if strings.Contains(a.Region, ".pm1") {
			recursed = true
			break
		}
	}
	if !recursed {
		t.Fatal("table above the cutoff did not recurse — the test lost its target")
	}
	rep, err := Verify(f, AdversarialPanel(rows, batch))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky {
		t.Fatalf("recursive circuit ORAM reported leaky: %v", rep.Divergences[0])
	}
}

func TestVerifyRejectsBadPanels(t *testing.T) {
	f := TechniqueFactory(core.LinearScan, 16, 4, 1)
	if _, err := Verify(f, Panel{{1, 2}}); err == nil {
		t.Fatal("single-input panel must be rejected")
	}
	if _, err := Verify(f, Panel{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("ragged panel must be rejected")
	}
	if _, err := Verify(f, Panel{{1, 99}, {1, 2}}); err == nil {
		t.Fatal("out-of-range ids must surface the generator error")
	}
}

func TestVerifyDetectsDeadInstrumentation(t *testing.T) {
	f := Factory{
		Name:   "untraced",
		Secure: true,
		New: func(*memtrace.Tracer) (core.Generator, error) {
			// Discards the tracer: the audit must refuse to certify a
			// generator that recorded nothing.
			return core.New(core.LinearScan, 16, 4, core.Options{Threads: 1})
		},
	}
	if _, err := Verify(f, Panel{{0, 1}, {2, 3}}); err == nil ||
		!strings.Contains(err.Error(), "instrumentation inactive") {
		t.Fatalf("want instrumentation-inactive error, got %v", err)
	}
}

// TestCoalescedSchedulerPassesPanel audits the serving micro-batcher: the
// panel ids arrive as independent single-id requests, the coalescer fuses
// them, and the resulting backend traces must be identical across the
// panel — batch composition may depend on arrival count, never on ids.
func TestCoalescedSchedulerPassesPanel(t *testing.T) {
	const rows, dim, batch, seed = 128, 4, 8, 3 // batch divisible by coalesceMaxBatch
	rep, err := Verify(CoalescedFactory(rows, dim, seed), AdversarialPanel(rows, batch))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky {
		t.Fatalf("coalescer reported leaky: %v", rep.Divergences[0])
	}
	// 8 single-id requests fused at maxBatch 4 = exactly two full sweeps
	// of the 128-row table: the deterministic composition the audit needs.
	if rep.TraceLen != 2*rows {
		t.Fatalf("trace length %d, want %d (two fused sweeps)", rep.TraceLen, 2*rows)
	}
}

// TestCoalesceAuditTeeth proves the coalesce audit catches the failure
// mode it exists for: a scheduler whose flush policy inspects the secret
// ids. The broken policy below flushes a batch early whenever it contains
// an odd id, so the *number* of fused sweeps — and hence the trace —
// depends on the ids, and Verify must flag the divergence. (The real
// serving.Group cannot express such a policy: its gather loop never reads
// payloads. This is a simulation of the regression the roster guards
// against.)
func TestCoalesceAuditTeeth(t *testing.T) {
	const rows, dim, seed = 64, 4, 5
	leaky := Factory{
		Name:   "coalesce-idflush",
		Secure: true, // claims security; the audit must prove otherwise
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			table := tensor.NewGaussian(rows, dim, 0.02, rand.New(rand.NewSource(seed)))
			return &idFlushGen{inner: core.MustNew(core.LinearScanBatched, rows, dim, core.Options{Table: table, Tracer: tr, Threads: 1})}, nil
		},
	}
	panel := Panel{
		{2, 4, 6, 8}, // all even: one fused batch, one sweep
		{2, 3, 6, 8}, // odd id mid-batch: early flush splits the batch
	}
	rep, err := Verify(leaky, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky {
		t.Fatal("id-dependent flush policy escaped the coalesce audit — the harness lost its teeth")
	}
}

// idFlushGen simulates a broken coalescer: batches of up to 4 ids, but a
// batch flushes immediately after admitting an odd id.
type idFlushGen struct {
	inner core.Generator
}

func (g *idFlushGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	out := tensor.New(len(ids), g.inner.Dim())
	flush := func(start, end int) error {
		if start == end {
			return nil
		}
		emb, err := g.inner.Generate(ids[start:end])
		if err != nil {
			return err
		}
		for r := 0; r < emb.Rows; r++ {
			copy(out.Row(start+r), emb.Row(r))
		}
		return nil
	}
	start := 0
	for i, id := range ids {
		if id%2 == 1 || i-start+1 == 4 { // the leak: ids steer the flush
			if err := flush(start, i+1); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(start, len(ids)); err != nil {
		return nil, err
	}
	return out, nil
}

func (g *idFlushGen) Rows() int                 { return g.inner.Rows() }
func (g *idFlushGen) Dim() int                  { return g.inner.Dim() }
func (g *idFlushGen) Technique() core.Technique { return g.inner.Technique() }
func (g *idFlushGen) NumBytes() int64           { return g.inner.NumBytes() }
func (g *idFlushGen) SetThreads(n int)          { g.inner.SetThreads(n) }

// TestInt8DHEPassesPanel runs the quantized DHE hot path through the
// adversarial panel: the SWAR kernels and activation quantization must
// leave traces exactly as input-independent as the float decoder's.
func TestInt8DHEPassesPanel(t *testing.T) {
	const rows, dim, batch, seed = 256, 8, 8, 3
	panel := AdversarialPanel(rows, batch)
	rep, err := Verify(Int8DHEFactory(rows, dim, seed), panel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky || !rep.Pass() {
		t.Fatalf("dhe-int8 failed the panel: %+v", rep)
	}
}
