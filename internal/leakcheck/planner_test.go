package leakcheck

import (
	"testing"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// TestPlannerSwapPassesPanel replays the adversarial panel across a forced
// *asymmetric per-shard* re-plan boundary: every input is served on both
// shards' batched scans, the planner hot-swaps shard 1 (only) to DHE
// through its real prepare→install→drain path, and the input is served
// again on both shards — one still scanning, one on DHE. The combined
// trace must be identical across the panel — which shard swapped, when it
// swapped, and every serving regime are functions of public state only.
func TestPlannerSwapPassesPanel(t *testing.T) {
	const rows, dim, batch, seed = 128, 4, 8, 3
	rep, err := Verify(PlannerFactory(rows, dim, seed), AdversarialPanel(rows, batch))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky {
		t.Fatalf("planner swap boundary reported leaky: %v", rep.Divergences[0])
	}
	if rep.TraceLen == 0 {
		t.Fatal("empty trace — the audit never crossed the swap boundary")
	}
}

// TestPlannerAuditTeeth proves the audit catches the failure mode the
// per-shard planner's public-signal rule forbids: a planner that decides
// *which shard* to re-plan from the ids themselves. The leaky variant
// below swaps shard ids[0]%2 — so panel inputs of different parity put the
// scan/DHE boundary on different shards and the traces diverge.
func TestPlannerAuditTeeth(t *testing.T) {
	const rows, dim, seed = 64, 4, 5
	leaky := Factory{
		Name:   "planner-idswap",
		Secure: true, // claims security; the audit must prove otherwise
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			inner, err := newPlannerGen(rows, dim, seed, tr)
			if err != nil {
				return nil, err
			}
			return &idSwapGen{inner: inner}, nil
		},
	}
	panel := Panel{
		{2, 9, 17, 33}, // even first id → shard 0 swaps, shard 1 keeps scanning
		{1, 9, 17, 33}, // odd first id → shard 1 swaps, shard 0 keeps scanning
	}
	rep, err := Verify(leaky, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky {
		t.Fatal("id-conditioned shard swap escaped the audit — the harness lost its teeth")
	}
}

// idSwapGen is the forbidden planner: the per-shard re-plan target keyed
// on a secret id. It reuses plannerGen's real swap machinery so the
// divergence the audit catches is exactly the moved shard boundary,
// nothing synthetic.
type idSwapGen struct {
	inner *plannerGen
}

func (g *idSwapGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	for _, sw := range g.inner.shards {
		if _, err := sw.Generate(ids); err != nil {
			return nil, err
		}
	}
	// Secret-dependent shard choice: the bug. The swap itself is the real
	// planner lifecycle; only its *placement* leaks.
	target := 0
	if len(ids) > 0 {
		target = int(ids[0] % 2)
	}
	if err := g.inner.pl.ForceSwapShard("audit", target, core.DHE); err != nil {
		return nil, err
	}
	if _, err := g.inner.shards[0].Generate(ids); err != nil {
		return nil, err
	}
	return g.inner.shards[1].Generate(ids)
}

func (g *idSwapGen) Rows() int                 { return g.inner.Rows() }
func (g *idSwapGen) Dim() int                  { return g.inner.Dim() }
func (g *idSwapGen) Technique() core.Technique { return g.inner.Technique() }
func (g *idSwapGen) NumBytes() int64           { return g.inner.NumBytes() }
func (g *idSwapGen) SetThreads(n int)          { g.inner.SetThreads(n) }
