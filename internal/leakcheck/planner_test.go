package leakcheck

import (
	"testing"

	"secemb/internal/core"
	"secemb/internal/memtrace"
	"secemb/internal/tensor"
)

// TestPlannerSwapPassesPanel replays the adversarial panel across a forced
// re-plan boundary: every input is served on the batched scan, the planner
// hot-swaps the table to DHE through its real prepare→install→drain path,
// and the input is served again. The combined trace must be identical
// across the panel — the swap's existence, timing, and both serving
// regimes are functions of public state only.
func TestPlannerSwapPassesPanel(t *testing.T) {
	const rows, dim, batch, seed = 128, 4, 8, 3
	rep, err := Verify(PlannerFactory(rows, dim, seed), AdversarialPanel(rows, batch))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaky {
		t.Fatalf("planner swap boundary reported leaky: %v", rep.Divergences[0])
	}
	if rep.TraceLen == 0 {
		t.Fatal("empty trace — the audit never crossed the swap boundary")
	}
}

// TestPlannerAuditTeeth proves the audit catches the failure mode the
// planner's public-signal rule forbids: a planner that decides *whether* to
// re-plan from the ids themselves. The leaky variant below swaps only when
// the first requested id is even, so panel inputs of different parity see
// different technique sequences and the traces diverge.
func TestPlannerAuditTeeth(t *testing.T) {
	const rows, dim, seed = 64, 4, 5
	leaky := Factory{
		Name:   "planner-idswap",
		Secure: true, // claims security; the audit must prove otherwise
		New: func(tr *memtrace.Tracer) (core.Generator, error) {
			inner, err := newPlannerGen(rows, dim, seed, tr)
			if err != nil {
				return nil, err
			}
			return &idSwapGen{inner: inner}, nil
		},
	}
	panel := Panel{
		{2, 9, 17, 33}, // even first id → swap fires, DHE serves the replay
		{1, 9, 17, 33}, // odd first id → swap skipped, scan serves the replay
	}
	rep, err := Verify(leaky, panel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaky {
		t.Fatal("id-conditioned re-plan escaped the audit — the harness lost its teeth")
	}
}

// idSwapGen is the forbidden planner: re-plan decision keyed on a secret
// id. It reuses plannerGen's real swap machinery so the divergence the
// audit catches is exactly the moved swap boundary, nothing synthetic.
type idSwapGen struct {
	inner *plannerGen
}

func (g *idSwapGen) Generate(ids []uint64) (*tensor.Matrix, error) {
	if _, err := g.inner.sw.Generate(ids); err != nil {
		return nil, err
	}
	if len(ids) > 0 && ids[0]%2 == 0 { // secret-dependent re-plan: the bug
		if err := g.inner.pl.ForceSwap("audit", core.DHE); err != nil {
			return nil, err
		}
	}
	return g.inner.sw.Generate(ids)
}

func (g *idSwapGen) Rows() int                 { return g.inner.Rows() }
func (g *idSwapGen) Dim() int                  { return g.inner.Dim() }
func (g *idSwapGen) Technique() core.Technique { return g.inner.Technique() }
func (g *idSwapGen) NumBytes() int64           { return g.inner.NumBytes() }
func (g *idSwapGen) SetThreads(n int)          { g.inner.SetThreads(n) }
