package wire

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"secemb/internal/core"
	"secemb/internal/serving"
	"secemb/internal/serving/backends"
	"secemb/internal/tensor"
)

const (
	testRows = 64
	testDim  = 8
)

// testStack builds a one-shard serving group over a linear-scan generator
// and a front door on a loopback port. The caller owns shutdown.
func testStack(t *testing.T, cfg ServerConfig) (*Server, string, *tensor.Matrix) {
	t.Helper()
	table := tensor.NewGaussian(testRows, testDim, 0.05, rand.New(rand.NewSource(7)))
	gen := core.MustNew(core.LinearScan, testRows, testDim, core.Options{Table: table})
	g := serving.NewGroup(
		[]serving.Backend{backends.NewEmbedding(gen, 16)},
		serving.GroupConfig{QueueDepth: 64},
	)
	cfg.Group = g
	cfg.Dim = testDim
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 16
	}
	s := NewServer(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr, table
}

func TestEmbedRoundTrip(t *testing.T) {
	var key Key
	key[3] = 9
	s, addr, table := testStack(t, ServerConfig{Key: key, RequireToken: true})
	defer func() { _ = s.DrainAll(context.Background()) }()

	c := NewClient(ClientConfig{Addr: addr, Key: key, Timeout: 5 * time.Second})
	defer c.Close()
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	ids := []uint64{5, 0, 63, 17}
	res, err := c.Embed(context.Background(), 1, ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serving.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if res.Rows.Rows != len(ids) || res.Rows.Cols != testDim {
		t.Fatalf("rows %dx%d", res.Rows.Rows, res.Rows.Cols)
	}
	for i, id := range ids {
		want := table.Row(int(id))
		got := res.Rows.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d (id %d) col %d: got %v want %v", i, id, j, got[j], want[j])
			}
		}
	}
	if want := FrameLen(BucketRows(len(ids), 16), testDim); res.BytesIn != want {
		t.Fatalf("response is %dB, want padded %dB", res.BytesIn, want)
	}
}

// TestTLSRoundTrip drives the same path over real TLS (ALPN h2): the
// transport the deployment docs require for the padding guarantee to mean
// anything.
func TestTLSRoundTrip(t *testing.T) {
	srvTLS, cliTLS, err := SelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[1] = 4
	s, addr, table := testStack(t, ServerConfig{Key: key, RequireToken: true, TLS: srvTLS})
	defer func() { _ = s.DrainAll(context.Background()) }()

	c := NewClient(ClientConfig{Addr: addr, Key: key, Timeout: 5 * time.Second, TLS: cliTLS})
	defer c.Close()
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	ids := []uint64{2, 7}
	res, err := c.Embed(context.Background(), 1, ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serving.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	for i, id := range ids {
		want, got := table.Row(int(id)), res.Rows.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d col %d mismatch over TLS", i, j)
			}
		}
	}
	// A cleartext h2c client against the TLS listener must fail, not fall
	// back silently.
	plain := NewClient(ClientConfig{Addr: addr, Key: key, Timeout: 2 * time.Second})
	defer plain.Close()
	if _, err := plain.Embed(context.Background(), 1, ids); err == nil {
		t.Fatal("cleartext client succeeded against a TLS listener")
	}
}

// TestOutcomeHTTPInvisible pins the HTTP-layer contract of DESIGN §12.2:
// every embed outcome answers status 200 with an identical header set —
// the outcome lives only inside the padded frame, so neither the status
// line nor a conditional Retry-After distinguishes outcomes on the wire.
func TestOutcomeHTTPInvisible(t *testing.T) {
	var key, wrong Key
	key[0], wrong[0] = 1, 2
	s, addr, _ := testStack(t, ServerConfig{Key: key, RequireToken: true})
	defer func() { _ = s.DrainAll(context.Background()) }()

	post := func(k Key) *http.Response {
		t.Helper()
		frame, err := AppendRequest(nil, &Request{
			Op:    OpEmbed,
			Token: NewToken(k, time.Now().Add(time.Minute)),
			IDs:   []uint64{1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+addr+"/v1/embed", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	okResp := post(key)
	authResp := post(wrong)
	s.StartDrain()
	drainResp := post(key)

	for name, resp := range map[string]*http.Response{"ok": okResp, "auth": authResp, "draining": drainResp} {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s outcome answered HTTP %d, want 200 for every outcome", name, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			t.Errorf("%s outcome carries Retry-After header %q — backoff hints belong inside the frame", name, ra)
		}
		if cl, want := resp.ContentLength, okResp.ContentLength; cl != want {
			t.Errorf("%s outcome Content-Length %d != success %d", name, cl, want)
		}
	}
}

// TestClientResponseReadCap: the client refuses to buffer a response
// larger than its cap instead of trusting server-controlled sizes.
func TestClientResponseReadCap(t *testing.T) {
	s, addr, _ := testStack(t, ServerConfig{})
	defer func() { _ = s.DrainAll(context.Background()) }()
	c := NewClient(ClientConfig{Addr: addr, Timeout: 5 * time.Second, MaxResponseBytes: 16})
	defer c.Close()
	_, err := c.Embed(context.Background(), 1, []uint64{1})
	if !errors.Is(err, ErrFrameSize) {
		t.Fatalf("got %v, want ErrFrameSize for an over-cap response", err)
	}
}

// TestShardCapRejected: the response frame's shard field is one byte, so
// configs whose shard indices would truncate are refused at construction.
func TestShardCapRejected(t *testing.T) {
	bes := make([]serving.Backend, 257)
	for i := range bes {
		bes[i] = &slowBackend{dim: testDim}
	}
	g := serving.NewGroup(bes, serving.GroupConfig{QueueDepth: 1})
	defer g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer accepted a 257-shard group; shard bytes would truncate")
		}
	}()
	NewServer(ServerConfig{Group: g, Dim: testDim})
}

func TestEmbedRejectsBadToken(t *testing.T) {
	var key, wrong Key
	key[0], wrong[0] = 1, 2
	s, addr, _ := testStack(t, ServerConfig{Key: key, RequireToken: true})
	defer func() { _ = s.DrainAll(context.Background()) }()

	c := NewClient(ClientConfig{Addr: addr, Key: wrong, Timeout: 5 * time.Second})
	defer c.Close()
	res, err := c.Embed(context.Background(), 1, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serving.StatusInvalidArgument || res.Flags&FlagAuthFailed == 0 {
		t.Fatalf("status %v flags %b, want invalid_argument with auth flag", res.Status, res.Flags)
	}
	// Rejections pad like successes for the same count.
	if want := FrameLen(BucketRows(2, 16), testDim); res.BytesIn != want {
		t.Fatalf("auth rejection is %dB, want padded %dB", res.BytesIn, want)
	}
}

func TestEmbedInvalidID(t *testing.T) {
	s, addr, _ := testStack(t, ServerConfig{})
	defer func() { _ = s.DrainAll(context.Background()) }()
	c := NewClient(ClientConfig{Addr: addr, Timeout: 5 * time.Second})
	defer c.Close()
	res, err := c.Embed(context.Background(), 1, []uint64{testRows + 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serving.StatusInvalidArgument {
		t.Fatalf("status %v, want invalid_argument", res.Status)
	}
	if want := FrameLen(BucketRows(1, 16), testDim); res.BytesIn != want {
		t.Fatalf("error response is %dB, want padded %dB", res.BytesIn, want)
	}
}

func TestEmbedOverBatchCap(t *testing.T) {
	s, addr, _ := testStack(t, ServerConfig{MaxBatch: 4})
	defer func() { _ = s.DrainAll(context.Background()) }()
	c := NewClient(ClientConfig{Addr: addr, Timeout: 5 * time.Second})
	defer c.Close()
	res, err := c.Embed(context.Background(), 1, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != serving.StatusInvalidArgument {
		t.Fatalf("status %v, want invalid_argument for over-cap batch", res.Status)
	}
}

// slowBackend sleeps per execution so drain tests can hold requests
// in-flight deliberately.
type slowBackend struct {
	delay time.Duration
	dim   int
}

func (b *slowBackend) MaxBatch() int { return 1 }
func (b *slowBackend) Execute(payloads []any) ([]serving.Result, error) {
	time.Sleep(b.delay)
	out := make([]serving.Result, len(payloads))
	for i, p := range payloads {
		ids := p.([]uint64)
		out[i].Value = tensor.New(len(ids), b.dim)
	}
	return out, nil
}

// TestGracefulDrain is the drain contract under live connections (run
// with -race in CI): requests in flight when the drain starts complete
// successfully, requests arriving after it get StatusUnavailable (503),
// and the full two-stage shutdown terminates.
func TestGracefulDrain(t *testing.T) {
	g := serving.NewGroup(
		[]serving.Backend{&slowBackend{delay: 150 * time.Millisecond, dim: testDim}},
		serving.GroupConfig{QueueDepth: 64},
	)
	s := NewServer(ServerConfig{Group: g, Dim: testDim, MaxBatch: 16})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 8
	results := make([]*Result, inflight)
	errs := make([]error, inflight)
	var started, done sync.WaitGroup
	for i := range inflight {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			c := NewClient(ClientConfig{Addr: addr, Timeout: 10 * time.Second})
			defer c.Close()
			started.Done()
			results[i], errs[i] = c.Embed(context.Background(), uint64(i), []uint64{1})
		}(i)
	}
	started.Wait()
	time.Sleep(30 * time.Millisecond) // let the requests reach the queue
	s.StartDrain()

	// New work after the drain begins is refused with 503, not hung.
	late := NewClient(ClientConfig{Addr: addr, Timeout: 5 * time.Second})
	defer late.Close()
	res, err := late.Embed(context.Background(), 99, []uint64{1})
	if err != nil {
		t.Fatalf("post-drain request should get a 503 frame, not %v", err)
	}
	if res.Status != serving.StatusUnavailable || res.Flags&FlagDraining == 0 {
		t.Fatalf("post-drain status %v flags %b, want unavailable+draining", res.Status, res.Flags)
	}
	if err := late.Health(context.Background()); err == nil {
		t.Fatal("healthz must fail during drain")
	}

	// Every in-flight request still completes.
	done.Wait()
	for i := range inflight {
		if errs[i] != nil {
			t.Fatalf("in-flight request %d failed: %v", i, errs[i])
		}
		if results[i].Status != serving.StatusOK {
			t.Fatalf("in-flight request %d status %v", i, results[i].Status)
		}
	}

	// The two-stage shutdown (front door, then group) must terminate.
	finished := make(chan error, 1)
	go func() { finished <- s.DrainAll(context.Background()) }()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatalf("DrainAll: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DrainAll deadlocked")
	}

	// The drained group refuses further work without deadlocking either.
	if r := g.Do(context.Background(), 0, []uint64{1}); serving.StatusOf(r.Err) != serving.StatusUnavailable {
		t.Fatalf("closed group returned %v, want unavailable", r.Err)
	}
}

// TestConnStreamBackpressure: a single connection gets at most ConnStreams
// concurrent requests; the overflow is shed with 429 locally.
func TestConnStreamBackpressure(t *testing.T) {
	g := serving.NewGroup(
		[]serving.Backend{&slowBackend{delay: 200 * time.Millisecond, dim: testDim}},
		serving.GroupConfig{QueueDepth: 64},
	)
	s := NewServer(ServerConfig{Group: g, Dim: testDim, MaxBatch: 16, ConnStreams: 2})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.DrainAll(context.Background()) }()

	// One client = one h2c connection; its streams share the budget.
	c := NewClient(ClientConfig{Addr: addr, Timeout: 10 * time.Second})
	defer c.Close()
	const n = 8
	statuses := make([]serving.Status, n)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Embed(context.Background(), uint64(i), []uint64{1})
			if err == nil {
				statuses[i] = res.Status
			} else {
				statuses[i] = serving.StatusInternal
			}
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, st := range statuses {
		switch st {
		case serving.StatusOK:
			ok++
		case serving.StatusOverloaded:
			shed++
		}
	}
	if ok == 0 {
		t.Fatal("no request survived the stream cap")
	}
	if shed == 0 {
		t.Fatal("stream cap never shed — per-connection backpressure inactive")
	}
	if ok+shed != n {
		t.Fatalf("ok=%d shed=%d of %d: unexpected statuses %v", ok, shed, n, statuses)
	}
}

func TestSoakSmoke(t *testing.T) {
	var key Key
	s, addr, _ := testStack(t, ServerConfig{Key: key, RequireToken: true})
	defer func() { _ = s.DrainAll(context.Background()) }()

	rep, err := RunSoak(context.Background(), SoakConfig{
		Addr:     addr,
		Key:      key,
		Conns:    8,
		Duration: 300 * time.Millisecond,
		Batch:    4,
		IDSpace:  testRows,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("soak made no progress: %s", rep)
	}
	gate := SoakGate{MaxP99: 5 * time.Second, MaxShedRate: 0.5, MinRequests: 8}
	if err := gate.Check(rep); err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	// The gate has teeth: an impossible p99 bound must fail.
	if err := (SoakGate{MaxP99: time.Nanosecond}).Check(rep); err == nil {
		t.Fatal("gate passed an impossible p99 bound")
	}
}
