package wire

import (
	"math/rand"
	"testing"
	"time"

	"secemb/internal/tensor"
)

func TestRequestRoundTrip(t *testing.T) {
	var k Key
	k[0] = 7
	tok := NewToken(k, time.Unix(4102444800, 0)) // far future
	want := &Request{
		Op:    OpEmbed,
		Token: tok,
		Key:   0xdeadbeefcafe,
		IDs:   []uint64{3, 1, 4, 1, 5, 9, 2, 6},
	}
	buf, err := AppendRequest(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequest(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != want.Op || got.Key != want.Key || got.Token != want.Token {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("ids: got %v", got.IDs)
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("id %d: got %d want %d", i, got.IDs[i], want.IDs[i])
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	tok := NewToken(Key{}, time.Now())
	good, err := AppendRequest(nil, &Request{Op: OpEmbed, Token: tok, IDs: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		buf  []byte
		max  int
	}{
		{"empty", nil, 0},
		{"truncated", good[:len(good)-1], 0},
		{"trailing", append(append([]byte{}, good...), 0), 0},
		{"bad_version", func() []byte {
			b := append([]byte{}, good...)
			b[prefixLen] = 99
			return b
		}(), 0},
		{"over_cap", good, 2},
		{"bad_prefix", func() []byte {
			b := append([]byte{}, good...)
			b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0xff
			return b
		}(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseRequest(tc.buf, tc.max); err == nil {
				t.Fatal("parse accepted a malformed frame")
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rows := tensor.NewGaussian(5, 8, 1.0, rand.New(rand.NewSource(1)))
	hdr := &Response{Shard: 3, QueueWait: 12345, RetryAfterMS: 50, Rows: rows}
	buf, err := AppendResponse(nil, hdr, 5, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := FrameLen(8, 8); len(buf) != want {
		t.Fatalf("frame is %d bytes, want bucket size %d", len(buf), want)
	}
	got, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 0 || got.Shard != 3 || got.QueueWait != 12345 || got.RetryAfterMS != 50 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Rows.Rows != 5 || got.Rows.Cols != 8 {
		t.Fatalf("rows %dx%d, want 5x8", got.Rows.Rows, got.Rows.Cols)
	}
	for i := range rows.Data {
		if got.Rows.Data[i] != rows.Data[i] {
			t.Fatalf("data[%d]: got %v want %v", i, got.Rows.Data[i], rows.Data[i])
		}
	}
	if got.PaddedLen != len(buf) {
		t.Fatalf("PaddedLen %d, want %d", got.PaddedLen, len(buf))
	}
}

// Error responses occupy exactly the same frame size as successes for the
// same public count — outcome is size-invisible.
func TestResponsePaddingUniform(t *testing.T) {
	const capRows, dim = 64, 16
	for count := 1; count <= capRows; count++ {
		rows := tensor.New(count, dim)
		okFrame, err := AppendResponse(nil, &Response{Rows: rows}, count, capRows, dim)
		if err != nil {
			t.Fatal(err)
		}
		errFrame, err := AppendResponse(nil, &Response{Status: 4, RetryAfterMS: 50}, count, capRows, dim)
		if err != nil {
			t.Fatal(err)
		}
		if len(okFrame) != len(errFrame) {
			t.Fatalf("count %d: ok frame %dB, error frame %dB — outcome leaks in size",
				count, len(okFrame), len(errFrame))
		}
		if want := FrameLen(BucketRows(count, capRows), dim); len(okFrame) != want {
			t.Fatalf("count %d: frame %dB, want %dB", count, len(okFrame), want)
		}
	}
}

func TestBucketRows(t *testing.T) {
	cases := []struct{ count, capRows, want int }{
		{1, 64, 1}, {2, 64, 2}, {3, 64, 4}, {4, 64, 4}, {5, 64, 8},
		{8, 64, 8}, {9, 64, 16}, {33, 64, 64}, {64, 64, 64},
		{65, 64, 64},  // clamped to cap
		{100, 48, 48}, // non-power-of-two cap clamps too
		{0, 64, 1},
	}
	for _, tc := range cases {
		if got := BucketRows(tc.count, tc.capRows); got != tc.want {
			t.Errorf("BucketRows(%d, %d) = %d, want %d", tc.count, tc.capRows, got, tc.want)
		}
	}
}

func TestTokenVerify(t *testing.T) {
	var k, k2 Key
	k[5], k2[5] = 1, 2
	now := time.Now()
	tok := NewToken(k, now.Add(time.Minute))
	if !tok.Verify(k, now) {
		t.Fatal("valid token rejected")
	}
	if tok.Verify(k2, now) {
		t.Fatal("token verified under the wrong key")
	}
	if tok.Verify(k, now.Add(2*time.Minute)) {
		t.Fatal("expired token verified")
	}
	forged := tok
	forged.Expiry += 3600 // extend lifetime without re-MACing
	if forged.Verify(k, now) {
		t.Fatal("forged expiry verified")
	}
}

func TestParseKey(t *testing.T) {
	var k Key
	for i := range k {
		k[i] = byte(i)
	}
	got, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatal("hex round trip mismatch")
	}
	if _, err := ParseKey("abc"); err == nil {
		t.Fatal("short key accepted")
	}
}
