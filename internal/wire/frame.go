// Package wire is the network front door's binary protocol: a
// length-prefixed request codec, HMAC connection tokens, and fixed-bucket
// response padding, served over HTTP/2 by Server and consumed by Client —
// TLS (ALPN h2) when ServerConfig.TLS is set, cleartext h2c otherwise.
//
// Security: the response a client observes on the network — its size and
// its framing — must not depend on the embedded ids. Every response is
// padded up to a bucket determined solely by the request's id *count*,
// which is public in the threat model (§V-B: batch sizes are public; the
// ids are not), and error responses pad to the same bucket as successes,
// answer the same HTTP status (200), and carry the same headers, so the
// outcome is invisible outside the frame body too. The full request path
// is audited dynamically by the "wire" target in the leakcheck roster.
//
// Scope: padding hides ids from an observer who sees only ciphertext
// sizes and timing. Request frames carry the ids themselves, so over
// cleartext h2c an on-path observer reads them (and the bearer token)
// directly — deploy h2c only inside an encrypting tunnel or service mesh,
// or set ServerConfig.TLS/ClientConfig.TLS to terminate TLS here.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"secemb/internal/tensor"
)

// Version is the protocol version byte; a frame with any other version is
// rejected before its body is interpreted.
const Version = 1

// Op codes. OpEmbed is the only v1 operation: generate embeddings for a
// batch of ids.
const (
	OpEmbed uint8 = 1
)

// Frame size constants. The request header is everything before the ids;
// the response header is everything before the row data.
const (
	// reqHeaderLen: version(1) + op(1) + mac(32) + expiry(8) + key(8) +
	// count(2).
	reqHeaderLen = 1 + 1 + macLen + 8 + 8 + 2
	// respHeaderLen: version(1) + status(1) + shard(1) + flags(1) +
	// queue-wait µs(4) + rows(2) + dim(2) + retry-after ms(2).
	respHeaderLen = 1 + 1 + 1 + 1 + 4 + 2 + 2 + 2
	// prefixLen is the u32 length prefix on both frame kinds.
	prefixLen = 4
)

// MaxBatch is the protocol's hard cap on ids per request (the count field
// is a u16; servers typically configure a much lower public cap).
const MaxBatch = math.MaxUint16

// Codec errors.
var (
	ErrBadFrame   = errors.New("wire: malformed frame")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrFrameSize  = errors.New("wire: frame exceeds size limit")
)

// Request is one decoded embed request.
type Request struct {
	Op    uint8
	Token Token  // connection token (MAC + expiry), verified by the server
	Key   uint64 // routing key (shard pinning), public
	IDs   []uint64
}

// AppendRequest encodes r onto dst and returns the extended slice. The
// layout is:
//
//	u32  length of the remainder
//	u8   version
//	u8   op
//	[32] token MAC
//	u64  token expiry (unix seconds)
//	u64  routing key
//	u16  id count
//	u64× ids
//
// All integers are big-endian.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if len(r.IDs) == 0 || len(r.IDs) > MaxBatch {
		return dst, fmt.Errorf("%w: %d ids (want 1..%d)", ErrBadFrame, len(r.IDs), MaxBatch)
	}
	body := reqHeaderLen + 8*len(r.IDs)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, Version, r.Op)
	dst = append(dst, r.Token.MAC[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Token.Expiry))
	dst = binary.BigEndian.AppendUint64(dst, r.Key)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.IDs)))
	for _, id := range r.IDs {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst, nil
}

// ParseRequest decodes one length-prefixed request frame from buf. maxIDs
// is the server's public per-request id cap (0 → protocol max); a count
// above it is rejected before the ids are read.
func ParseRequest(buf []byte, maxIDs int) (*Request, error) {
	if maxIDs <= 0 || maxIDs > MaxBatch {
		maxIDs = MaxBatch
	}
	if len(buf) < prefixLen+reqHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(buf))
	}
	body := int(binary.BigEndian.Uint32(buf))
	if body != len(buf)-prefixLen {
		return nil, fmt.Errorf("%w: length prefix %d for %d body bytes", ErrBadFrame, body, len(buf)-prefixLen)
	}
	p := buf[prefixLen:]
	if p[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, p[0])
	}
	r := &Request{Op: p[1]}
	copy(r.Token.MAC[:], p[2:2+macLen])
	r.Token.Expiry = int64(binary.BigEndian.Uint64(p[2+macLen:]))
	r.Key = binary.BigEndian.Uint64(p[2+macLen+8:])
	count := int(binary.BigEndian.Uint16(p[2+macLen+16:]))
	if count == 0 || count > maxIDs {
		return nil, fmt.Errorf("%w: %d ids (cap %d)", ErrBadFrame, count, maxIDs)
	}
	if len(p) != reqHeaderLen+8*count {
		return nil, fmt.Errorf("%w: %d bytes for %d ids", ErrBadFrame, len(p), count)
	}
	r.IDs = make([]uint64, count)
	for i := range r.IDs {
		r.IDs[i] = binary.BigEndian.Uint64(p[reqHeaderLen+8*i:])
	}
	return r, nil
}

// Response is one decoded embed response (and, on the encode side, the
// header AppendResponse serializes).
type Response struct {
	Status    uint8 // serving.Status byte
	Shard     uint8
	Flags     uint8
	QueueWait uint32 // microseconds, saturating
	// RetryAfterMS is the server's backoff hint for retryable statuses,
	// milliseconds (0 → none). It rides inside the padded frame — never a
	// header — so its presence cannot distinguish outcomes on the wire.
	RetryAfterMS uint16
	Rows         *tensor.Matrix
	// PaddedLen is the on-the-wire frame length including prefix and
	// padding — what a network observer sees. Decode-only.
	PaddedLen int
}

// BucketRows rounds the (public) request id count up to its padding
// bucket: the next power of two, clamped to the server's public cap. Every
// response to a count-n request — success or error — occupies the bucket-n
// frame size, so observed response sizes partition only by the public
// count, never by ids or outcome.
func BucketRows(count, capRows int) int {
	if capRows < 1 {
		capRows = MaxBatch
	}
	if count < 1 {
		count = 1
	}
	if count > capRows {
		count = capRows
	}
	b := 1 << bits.Len(uint(count-1))
	if b > capRows {
		b = capRows
	}
	return b
}

// FrameLen is the total on-the-wire response size (prefix included) for a
// request whose count buckets to bucketRows at embedding dimension dim.
func FrameLen(bucketRows, dim int) int {
	return prefixLen + respHeaderLen + 4*bucketRows*dim
}

// AppendResponse encodes r onto dst as one response frame, padded with
// zeros to the bucket for (count, capRows) at dimension dim. r.Rows may be
// nil (error responses); when non-nil its row data is serialized as f32
// big-endian. r.PaddedLen is ignored. The layout is:
//
//	u32  length of the remainder (always the padded size)
//	u8   version
//	u8   status (serving.Status byte)
//	u8   shard
//	u8   flags
//	u32  queue wait, microseconds (saturating)
//	u16  rows
//	u16  dim
//	u16  retry-after hint, milliseconds
//	f32× row data
//	0×   zero padding up to the bucket size
func AppendResponse(dst []byte, r *Response, count, capRows, dim int) ([]byte, error) {
	bucket := BucketRows(count, capRows)
	total := FrameLen(bucket, dim)
	nr := 0
	if r.Rows != nil {
		nr = r.Rows.Rows
		if r.Rows.Cols != dim {
			return dst, fmt.Errorf("%w: %d-col rows for dim %d", ErrBadFrame, r.Rows.Cols, dim)
		}
		if nr > bucket {
			return dst, fmt.Errorf("%w: %d rows exceed bucket %d", ErrBadFrame, nr, bucket)
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total-prefixLen))
	dst = append(dst, Version, r.Status, r.Shard, r.Flags)
	dst = binary.BigEndian.AppendUint32(dst, r.QueueWait)
	dst = binary.BigEndian.AppendUint16(dst, uint16(nr))
	dst = binary.BigEndian.AppendUint16(dst, uint16(dim))
	dst = binary.BigEndian.AppendUint16(dst, r.RetryAfterMS)
	if r.Rows != nil {
		for _, v := range r.Rows.Data[:nr*dim] {
			dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	pad := total - prefixLen - respHeaderLen - 4*nr*dim
	dst = append(dst, make([]byte, pad)...)
	return dst, nil
}

// ParseResponse decodes one length-prefixed response frame.
func ParseResponse(buf []byte) (*Response, error) {
	if len(buf) < prefixLen+respHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(buf))
	}
	body := int(binary.BigEndian.Uint32(buf))
	if body != len(buf)-prefixLen {
		return nil, fmt.Errorf("%w: length prefix %d for %d body bytes", ErrBadFrame, body, len(buf)-prefixLen)
	}
	p := buf[prefixLen:]
	if p[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, p[0])
	}
	r := &Response{
		Status:       p[1],
		Shard:        p[2],
		Flags:        p[3],
		QueueWait:    binary.BigEndian.Uint32(p[4:]),
		RetryAfterMS: binary.BigEndian.Uint16(p[12:]),
		PaddedLen:    len(buf),
	}
	nr := int(binary.BigEndian.Uint16(p[8:]))
	dim := int(binary.BigEndian.Uint16(p[10:]))
	if nr > 0 {
		if len(p) < respHeaderLen+4*nr*dim {
			return nil, fmt.Errorf("%w: %d bytes for %d×%d rows", ErrBadFrame, len(p), nr, dim)
		}
		r.Rows = tensor.New(nr, dim)
		for i := range r.Rows.Data {
			r.Rows.Data[i] = math.Float32frombits(binary.BigEndian.Uint32(p[respHeaderLen+4*i:]))
		}
	}
	return r, nil
}
