package wire

import (
	"bytes"
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"secemb/internal/serving"
	"secemb/internal/tensor"
)

// ClientConfig shapes a wire client.
type ClientConfig struct {
	// Addr is the server's host:port.
	Addr string
	// Key mints connection tokens (must match the server's when it
	// requires tokens).
	Key Key
	// TokenTTL is how far ahead minted tokens expire (tokens are reminted
	// when less than half the TTL remains). 0 → 1 minute.
	TokenTTL time.Duration
	// Timeout bounds each Embed round trip. 0 → no client deadline.
	Timeout time.Duration
	// TLS, when non-nil, dials the server over TLS (ALPN h2) instead of
	// cleartext h2c; it must trust the server's certificate (see
	// SelfSignedTLS for the loopback pairing).
	TLS *tls.Config
	// MaxResponseBytes caps how much of a response Embed will buffer; a
	// longer response is an error, not an allocation — the frame header's
	// rows/dim fields are server-controlled and must not let a hostile
	// server balloon client memory. 0 → DefaultMaxResponseBytes.
	MaxResponseBytes int
}

// DefaultMaxResponseBytes bounds response reads (64 MiB — far above any
// realistic bucket×dim frame, far below harm).
const DefaultMaxResponseBytes = 64 << 20

// Client speaks the wire protocol over HTTP/2 — TLS when configured, h2c
// otherwise. Each Client owns its own Transport — and therefore its own
// TCP connection pool — so a soak harness holding N Clients holds N real
// connections. A single Client is safe for concurrent use: its streams
// multiplex onto the connection.
type Client struct {
	cfg ClientConfig
	hc  *http.Client
	url string

	mu    sync.Mutex // guards token
	token Token
}

// Result is one Embed outcome as observed on the wire.
type Result struct {
	// Status is the server's taxonomy code for the request.
	Status serving.Status
	// Shard is the replica group that served (or refused) the request.
	Shard int
	// QueueWait is the server-reported queue wait.
	QueueWait time.Duration
	// Flags echoes the response frame's flag bits (FlagAuthFailed, …).
	Flags uint8
	// Rows holds the embeddings on StatusOK, nil otherwise.
	Rows *tensor.Matrix
	// BytesOut and BytesIn are the request and (padded) response frame
	// sizes actually transferred.
	BytesOut, BytesIn int
	// RetryAfter echoes the server's in-frame backoff hint on retryable
	// statuses.
	RetryAfter time.Duration
}

// NewClient builds a client for addr. With cfg.TLS set the transport
// dials TLS and negotiates h2 via ALPN; without it, h2c with prior
// knowledge — matching the two modes of NewServer.
func NewClient(cfg ClientConfig) *Client {
	if cfg.TokenTTL <= 0 {
		cfg.TokenTTL = time.Minute
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = DefaultMaxResponseBytes
	}
	var protos http.Protocols
	scheme := "http://"
	tr := &http.Transport{}
	if cfg.TLS != nil {
		protos.SetHTTP2(true)
		tr.TLSClientConfig = cfg.TLS
		scheme = "https://"
	} else {
		protos.SetUnencryptedHTTP2(true)
	}
	tr.Protocols = &protos
	return &Client{
		cfg: cfg,
		hc:  &http.Client{Transport: tr, Timeout: cfg.Timeout},
		url: scheme + cfg.Addr + "/v1/embed",
	}
}

// Close releases the client's pooled connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// freshToken returns the cached token, reminting once less than half the
// TTL remains.
func (c *Client) freshToken() Token {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if time.Unix(c.token.Expiry, 0).Sub(now) < c.cfg.TokenTTL/2 {
		c.token = NewToken(c.cfg.Key, now.Add(c.cfg.TokenTTL))
	}
	return c.token
}

// Embed requests embeddings for ids routed by key. A non-nil error means
// the round trip itself failed (transport error, undecodable frame);
// server-side refusals come back as a Result with a non-OK Status.
func (c *Client) Embed(ctx context.Context, key uint64, ids []uint64) (*Result, error) {
	frame, err := AppendRequest(nil, &Request{
		Op:    OpEmbed,
		Token: c.freshToken(),
		Key:   key,
		IDs:   ids,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	// A hostile or buggy server must not be able to balloon this read:
	// cap it before buffering, then let ParseResponse's length checks
	// bound any decode allocation by what was actually received.
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, int64(c.cfg.MaxResponseBytes)+1))
	if err != nil {
		return nil, fmt.Errorf("wire: read response: %w", err)
	}
	if len(body) > c.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("%w: response exceeds %d bytes", ErrFrameSize, c.cfg.MaxResponseBytes)
	}
	resp, err := ParseResponse(body)
	if err != nil {
		return nil, fmt.Errorf("wire: HTTP %d: %w", httpResp.StatusCode, err)
	}
	return &Result{
		Status:     serving.Status(resp.Status),
		Shard:      int(resp.Shard),
		Flags:      resp.Flags,
		QueueWait:  time.Duration(resp.QueueWait) * time.Microsecond,
		Rows:       resp.Rows,
		BytesOut:   len(frame),
		BytesIn:    resp.PaddedLen,
		RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
	}, nil
}

// Health probes /healthz; it returns nil when the server is accepting.
func (c *Client) Health(ctx context.Context) error {
	u := c.url[:len(c.url)-len("/v1/embed")] + "/healthz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wire: healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}
