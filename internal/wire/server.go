package wire

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"secemb/internal/obs"
	"secemb/internal/serving"
	"secemb/internal/tensor"
)

// Flag bits in the response header.
const (
	// FlagAuthFailed marks a request rejected for a bad or expired token.
	FlagAuthFailed uint8 = 1 << 0
	// FlagDraining marks a rejection issued while the server drains.
	FlagDraining uint8 = 1 << 1
)

// ServerConfig shapes the front door.
type ServerConfig struct {
	// Group is the serving stack requests dispatch into.
	Group *serving.Group
	// Dim is the embedding dimension every response frame carries.
	Dim int
	// MaxBatch is the public per-request id cap; it also sets the largest
	// padding bucket. 0 → DefaultMaxBatch.
	MaxBatch int
	// Key verifies connection tokens when RequireToken is set.
	Key Key
	// RequireToken rejects requests whose token fails Verify.
	RequireToken bool
	// TLS, when non-nil, terminates TLS on the listener (ALPN h2 +
	// http/1.1; see LoadServerTLS / SelfSignedTLS). When nil the server
	// speaks cleartext h2c and MUST sit behind an encrypting tunnel or
	// mesh — request frames carry the secret ids and the bearer token in
	// the clear, so outside such a tunnel an on-path observer reads the
	// very secrets the response padding protects, and can replay the
	// token until it expires.
	TLS *tls.Config
	// ConnStreams caps concurrently-served requests per client connection
	// (per-connection backpressure: excess streams are answered 429
	// immediately instead of queueing server-side). 0 → DefaultConnStreams.
	ConnStreams int
	// RetryAfter is the backoff hint carried inside the padded frame on
	// retryable (overloaded/unavailable) outcomes. 0 → DefaultRetryAfter.
	RetryAfter time.Duration
	// Timeout bounds each request's time in the serving stack (queue wait
	// included). 0 → no server-imposed deadline.
	Timeout time.Duration
	// Reg receives the wire metrics and is exposed on the same mux
	// (/metrics, /metrics.json, /spans, /debug/pprof/). nil → metrics
	// endpoints disabled, counters no-ops.
	Reg *obs.Registry
}

// Defaults for ServerConfig zero values.
const (
	DefaultMaxBatch    = 256
	DefaultConnStreams = 64
	DefaultRetryAfter  = 50 * time.Millisecond
)

// Server is the HTTP/2 front door (TLS or h2c): it terminates the binary
// protocol and dispatches into a serving.Group. One Server owns its http.Server; Close
// (or Shutdown) both stops accepting and marks the instance draining so
// in-flight requests finish while new ones are refused with 503.
type Server struct {
	cfg      ServerConfig
	srv      *http.Server
	draining atomic.Bool

	mRequests *obs.Counter
	mRejected map[string]*obs.Counter // by reason: overload, draining, auth, malformed
	mBytesIn  *obs.Counter
	mBytesOut *obs.Counter
	mLatency  *obs.Histogram
}

// connStreams is the per-connection stream semaphore, attached to every
// accepted connection through ConnContext.
type connStreams struct{ sem chan struct{} }

type connKeyType struct{}

var connKey connKeyType

// NewServer builds the front door. With cfg.TLS set the server terminates
// TLS and negotiates HTTP/2 via ALPN; without it the server speaks
// HTTP/1.1 and cleartext HTTP/2 (h2c) on the same port — see
// ServerConfig.TLS for the tunnel requirement that mode carries. Either
// way, soak-scale clients multiplex thousands of logical connections onto
// a few sockets — or one socket each, for per-connection backpressure
// testing.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Group == nil {
		panic("wire: ServerConfig.Group is required")
	}
	if cfg.Dim < 1 {
		panic("wire: ServerConfig.Dim is required")
	}
	if n := cfg.Group.Shards(); n > 256 {
		// The response frame's shard field is one byte; silently truncating
		// indices ≥256 would misattribute shards on the wire.
		panic("wire: group has " + strconv.Itoa(n) + " shards; the wire shard field caps at 256")
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.ConnStreams < 1 {
		cfg.ConnStreams = DefaultConnStreams
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{cfg: cfg}
	if cfg.Reg != nil {
		s.mRequests = cfg.Reg.Counter("wire_requests_total")
		s.mRejected = map[string]*obs.Counter{
			"overload":  cfg.Reg.Counter("wire_rejected_total", "reason", "overload"),
			"draining":  cfg.Reg.Counter("wire_rejected_total", "reason", "draining"),
			"auth":      cfg.Reg.Counter("wire_rejected_total", "reason", "auth"),
			"malformed": cfg.Reg.Counter("wire_rejected_total", "reason", "malformed"),
		}
		s.mBytesIn = cfg.Reg.Counter("wire_bytes_in_total")
		s.mBytesOut = cfg.Reg.Counter("wire_bytes_out_total")
		s.mLatency = cfg.Reg.Histogram("wire_request_ns")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/embed", s.handleEmbed)
	mux.HandleFunc("/healthz", s.handleHealth)
	if cfg.Reg != nil {
		mux.Handle("/", obs.Handler(cfg.Reg))
	}

	var protos http.Protocols
	protos.SetHTTP1(true)
	protos.SetHTTP2(true)
	protos.SetUnencryptedHTTP2(cfg.TLS == nil)
	s.srv = &http.Server{
		Handler:   mux,
		Protocols: &protos,
		ConnContext: func(ctx context.Context, c net.Conn) context.Context {
			return context.WithValue(ctx, connKey, &connStreams{
				sem: make(chan struct{}, cfg.ConnStreams),
			})
		},
	}
	return s
}

// Serve accepts connections on ln until Shutdown or Close, wrapping ln
// with TLS when the server was configured with a TLS config.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.TLS != nil {
		ln = tls.NewListener(ln, serverTLS(s.cfg.TLS))
	}
	return s.srv.Serve(ln)
}

// Listen binds addr and serves in a background goroutine, returning the
// bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = s.Serve(ln) }()
	return ln.Addr().String(), nil
}

// StartDrain begins a graceful drain without closing the listener: from
// this point /healthz and new embed requests answer 503 (load balancers
// stop routing here) while in-flight requests run to completion. Callers
// that want a drain grace period call StartDrain, wait, then Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Shutdown gracefully drains: new requests (and health checks) are refused
// with 503 immediately, in-flight requests run to completion, and the
// listener closes once idle or ctx expires. The serving.Group is NOT
// closed — that is the caller's second drain stage, after the front door
// stops feeding it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	return s.srv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// maxRequestLen bounds request reads: the exact frame size for the
// configured public batch cap.
func (s *Server) maxRequestLen() int64 {
	return int64(prefixLen + reqHeaderLen + 8*s.cfg.MaxBatch)
}

// handleEmbed is the v1 embed endpoint. Every outcome — success, shed,
// draining, auth failure, malformed count — answers HTTP 200 with an
// identical header set and a response frame padded to the bucket of the
// request's public id count: the outcome lives only in the frame's status
// byte, so neither the status line, the headers, nor the response size
// distinguishes outcomes or ids on the wire.
func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mRequests.Inc()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}

	// Parse before any outcome decision: every rejection of a parseable
	// request — draining, backpressure, auth — pads to the bucket of the
	// request's real count, so no outcome shows up as a size change.
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxRequestLen()+1))
	if err != nil {
		s.reject(w, "malformed", serving.StatusInvalidArgument, 0, 1)
		return
	}
	s.mBytesIn.Add(int64(len(body)))
	if int64(len(body)) > s.maxRequestLen() {
		s.reject(w, "malformed", serving.StatusInvalidArgument, 0, s.cfg.MaxBatch)
		return
	}
	req, err := ParseRequest(body, s.cfg.MaxBatch)
	if err != nil || req.Op != OpEmbed {
		s.reject(w, "malformed", serving.StatusInvalidArgument, 0, 1)
		return
	}
	count := len(req.IDs)
	if s.draining.Load() {
		s.reject(w, "draining", serving.StatusUnavailable, FlagDraining, count)
		return
	}
	if s.cfg.RequireToken && !req.Token.Verify(s.cfg.Key, time.Now()) {
		s.reject(w, "auth", serving.StatusInvalidArgument, FlagAuthFailed, count)
		return
	}

	// Per-connection backpressure: each connection gets a fixed stream
	// budget; a connection that overruns it sheds locally without touching
	// the shared serving queues.
	if cs, ok := r.Context().Value(connKey).(*connStreams); ok {
		select {
		case cs.sem <- struct{}{}:
			defer func() { <-cs.sem }()
		default:
			s.reject(w, "overload", serving.StatusOverloaded, 0, count)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	resp := s.cfg.Group.Do(ctx, req.Key, req.IDs)
	st := resp.Status()
	var rows *tensor.Matrix
	if st == serving.StatusOK {
		var ok bool
		if rows, ok = resp.Value.(*tensor.Matrix); !ok {
			st = serving.StatusInternal
		}
	}
	s.writeFrame(w, st, uint8(resp.Shard), 0, saturateUS(resp.QueueWait), rows, count)
	s.mLatency.ObserveDuration(time.Since(start))
}

// reject answers with an error frame (padded like any response for the
// given count) and the matching HTTP status.
func (s *Server) reject(w http.ResponseWriter, reason string, st serving.Status, flags uint8, count int) {
	if c := s.mRejected[reason]; c != nil {
		c.Inc()
	}
	s.writeFrame(w, st, 0, flags, 0, nil, count)
}

// writeFrame answers with a padded frame. The HTTP layer is deliberately
// outcome-invariant: always status 200, always the same headers — under
// h2c the plaintext status line is constant, and under TLS the HEADERS
// frame size is too. The serving status, and the retry backoff hint for
// retryable outcomes, travel only inside the padded body.
func (s *Server) writeFrame(w http.ResponseWriter, st serving.Status, shard, flags uint8, waitUS uint32, rows *tensor.Matrix, count int) {
	hdr := &Response{
		Status:    uint8(st),
		Shard:     shard,
		Flags:     flags,
		QueueWait: waitUS,
		Rows:      rows,
	}
	if st.Retryable() {
		hdr.RetryAfterMS = saturateMS(s.cfg.RetryAfter)
	}
	frame, err := AppendResponse(nil, hdr, count, s.cfg.MaxBatch, s.cfg.Dim)
	if err != nil {
		// Unreachable without a programming error (dim/bucket mismatch);
		// answer a constant-size internal frame rather than a variable one.
		hdr.Status, hdr.Rows = uint8(serving.StatusInternal), nil
		frame, _ = AppendResponse(nil, hdr, count, s.cfg.MaxBatch, s.cfg.Dim)
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(frame)
	s.mBytesOut.Add(int64(n))
}

// retryAfterSeconds renders a Retry-After header value (integer seconds,
// minimum 1 — the header has no sub-second form). Only /healthz uses it;
// the embed path keeps its backoff hint inside the padded frame.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// saturateMS converts a backoff hint to whole milliseconds, saturating at
// the frame field's u16 range and rounding sub-millisecond hints up to 1.
func saturateMS(d time.Duration) uint16 {
	ms := d.Milliseconds()
	if ms < 1 {
		return 1
	}
	if ms > int64(^uint16(0)) {
		return ^uint16(0)
	}
	return uint16(ms)
}

func saturateUS(d time.Duration) uint32 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// DrainAll is the complete two-stage shutdown: drain the front door (new
// requests refused, in-flight finish), then close the serving group
// (queued requests still served — serving.Group.Close is itself a
// graceful drain). Safe to call more than once.
func (s *Server) DrainAll(ctx context.Context) error {
	err := s.Shutdown(ctx)
	s.cfg.Group.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
