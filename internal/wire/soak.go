package wire

import (
	"context"
	"crypto/tls"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"secemb/internal/serving"
)

// SoakConfig shapes a soak/load run against a wire server.
type SoakConfig struct {
	// Addr is the target server.
	Addr string
	// Key mints tokens for every connection.
	Key Key
	// Conns is how many concurrent connections (one worker + one Client —
	// hence one TCP connection — each) the run holds open.
	Conns int
	// Duration is how long the run lasts.
	Duration time.Duration
	// Batch is the ids per request.
	Batch int
	// IDSpace bounds the random ids ([0, IDSpace)); match the served
	// table's row count.
	IDSpace int
	// Timeout bounds each request round trip. 0 → 5s.
	Timeout time.Duration
	// Seed makes the id streams reproducible.
	Seed int64
	// TLS, when non-nil, makes every worker dial over TLS (see
	// ClientConfig.TLS).
	TLS *tls.Config
}

// SoakReport aggregates a run.
type SoakReport struct {
	Conns      int           `json:"conns"`
	Duration   time.Duration `json:"duration"`
	Requests   int64         `json:"requests"`
	OK         int64         `json:"ok"`
	Shed       int64         `json:"shed"`   // 429/503: overloaded or unavailable
	Errors     int64         `json:"errors"` // transport failures + non-retryable non-OK
	P50        time.Duration `json:"p50"`
	P99        time.Duration `json:"p99"`
	Max        time.Duration `json:"max"`
	Throughput float64       `json:"throughput_rps"`
	BytesIn    int64         `json:"bytes_in"`
	BytesOut   int64         `json:"bytes_out"`
}

// ShedRate is the fraction of requests refused with a retryable status.
func (r *SoakReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// ErrorRate is the fraction of requests that failed outright.
func (r *SoakReport) ErrorRate() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.Errors) / float64(r.Requests)
}

// BytesPerRequest is the mean padded response size observed.
func (r *SoakReport) BytesPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.BytesIn) / float64(r.Requests)
}

func (r *SoakReport) String() string {
	return fmt.Sprintf(
		"soak: %d conns × %v: %d requests (%.0f rps), ok=%d shed=%d (%.2f%%) errors=%d, p50=%v p99=%v max=%v, %.0f B/resp",
		r.Conns, r.Duration.Round(time.Millisecond), r.Requests, r.Throughput,
		r.OK, r.Shed, 100*r.ShedRate(), r.Errors, r.P50, r.P99, r.Max, r.BytesPerRequest())
}

// SoakGate is the pass/fail criteria applied to a report.
type SoakGate struct {
	// MaxP99 fails the run when the p99 latency exceeds it. 0 → ungated.
	MaxP99 time.Duration
	// MaxShedRate fails the run when more than this fraction of requests
	// were shed. Negative → ungated (shedding under deliberate overload is
	// the point).
	MaxShedRate float64
	// MaxErrorRate fails the run when more than this fraction of requests
	// errored outright. The zero value gates at 0 — any hard error fails.
	MaxErrorRate float64
	// MinRequests fails the run when fewer requests completed (a stuck
	// server passes every rate gate by doing nothing). 0 → ungated.
	MinRequests int64
}

// Check applies the gate; a non-nil error describes the first violated
// criterion.
func (g SoakGate) Check(r *SoakReport) error {
	if g.MinRequests > 0 && r.Requests < g.MinRequests {
		return fmt.Errorf("soak gate: %d requests completed, need ≥%d", r.Requests, g.MinRequests)
	}
	if g.MaxP99 > 0 && r.P99 > g.MaxP99 {
		return fmt.Errorf("soak gate: p99 %v exceeds %v", r.P99, g.MaxP99)
	}
	if g.MaxShedRate >= 0 && r.ShedRate() > g.MaxShedRate {
		return fmt.Errorf("soak gate: shed rate %.2f%% exceeds %.2f%%", 100*r.ShedRate(), 100*g.MaxShedRate)
	}
	if r.ErrorRate() > g.MaxErrorRate {
		return fmt.Errorf("soak gate: error rate %.2f%% exceeds %.2f%% (%d errors)",
			100*r.ErrorRate(), 100*g.MaxErrorRate, r.Errors)
	}
	return nil
}

// soakSampleCap bounds the per-worker latency sample (uniform reservoir),
// keeping memory constant however long the run.
const soakSampleCap = 4096

// soakWorker is one connection's tally.
type soakWorker struct {
	requests, ok, shed, errs int64
	bytesIn, bytesOut        int64
	sample                   []time.Duration
	seen                     int64
	rng                      *rand.Rand
}

func (w *soakWorker) observe(d time.Duration) {
	w.seen++
	if len(w.sample) < soakSampleCap {
		w.sample = append(w.sample, d)
		return
	}
	if i := w.rng.Int63n(w.seen); i < soakSampleCap {
		w.sample[i] = d
	}
}

// RunSoak holds cfg.Conns concurrent connections against cfg.Addr for
// cfg.Duration, each worker issuing back-to-back Embed requests with its
// own Client (own transport, own TCP connection). It returns the merged
// report; apply a SoakGate to pass/fail it.
func RunSoak(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	if cfg.Conns < 1 || cfg.Duration <= 0 || cfg.Batch < 1 || cfg.IDSpace < 1 {
		return nil, fmt.Errorf("wire: soak needs conns ≥1, duration >0, batch ≥1, idspace ≥1")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	workers := make([]*soakWorker, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &soakWorker{rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
		workers[i] = w
		wg.Add(1)
		go func(i int, w *soakWorker) {
			defer wg.Done()
			client := NewClient(ClientConfig{Addr: cfg.Addr, Key: cfg.Key, Timeout: timeout, TLS: cfg.TLS})
			defer client.Close()
			ids := make([]uint64, cfg.Batch)
			key := uint64(i)
			for runCtx.Err() == nil {
				for j := range ids {
					ids[j] = uint64(w.rng.Intn(cfg.IDSpace))
				}
				t0 := time.Now()
				res, err := client.Embed(runCtx, key, ids)
				if err != nil {
					if runCtx.Err() != nil {
						return // run over; an aborted in-flight call is not an error
					}
					w.requests++
					w.errs++
					continue
				}
				w.requests++
				w.bytesIn += int64(res.BytesIn)
				w.bytesOut += int64(res.BytesOut)
				switch {
				case res.Status.Retryable():
					w.shed++
					if res.RetryAfter > 0 {
						select {
						case <-time.After(res.RetryAfter):
						case <-runCtx.Done():
						}
					}
				case res.Status != serving.StatusOK:
					w.errs++
				default:
					w.ok++
					w.observe(time.Since(t0))
				}
			}
		}(i, w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &SoakReport{Conns: cfg.Conns, Duration: elapsed}
	var merged []time.Duration
	for _, w := range workers {
		rep.Requests += w.requests
		rep.OK += w.ok
		rep.Shed += w.shed
		rep.Errors += w.errs
		rep.BytesIn += w.bytesIn
		rep.BytesOut += w.bytesOut
		merged = append(merged, w.sample...)
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(merged) > 0 {
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		rep.P50 = merged[len(merged)/2]
		rep.P99 = merged[len(merged)*99/100]
		rep.Max = merged[len(merged)-1]
	}
	return rep, nil
}
