package wire

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// alpnProtos is the ALPN order the front door offers under TLS: HTTP/2
// first, HTTP/1.1 fallback.
var alpnProtos = []string{"h2", "http/1.1"}

// serverTLS clones cfg for serving, ensuring the ALPN list advertises h2
// so clients negotiate HTTP/2 over TLS.
func serverTLS(cfg *tls.Config) *tls.Config {
	c := cfg.Clone()
	if len(c.NextProtos) == 0 {
		c.NextProtos = alpnProtos
	}
	return c
}

// LoadServerTLS builds a server TLS config from PEM cert/key files (the
// -tls-cert/-tls-key flags of cmd/secembd).
func LoadServerTLS(certFile, keyFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("wire: load TLS keypair: %w", err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}, NextProtos: alpnProtos}, nil
}

// SelfSignedTLS mints an ephemeral ECDSA P-256 certificate for loopback
// (127.0.0.1, ::1, localhost) and returns a server config holding it plus
// a client config that trusts exactly that certificate. It backs
// self-hosted soak runs and tests, where the point is exercising the real
// TLS+h2 path, not PKI.
func SelfSignedTLS() (server, client *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "secemb-wire-selfsigned"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		DNSNames:              []string{"localhost"},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	server = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}},
		NextProtos:   alpnProtos,
	}
	client = &tls.Config{RootCAs: pool, NextProtos: alpnProtos}
	return server, client, nil
}
