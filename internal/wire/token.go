package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// macLen is the token MAC size (HMAC-SHA256).
const macLen = sha256.Size

// Key is the shared connection-token secret. The front door and its
// clients hold the same 32-byte key; a request whose token MAC does not
// verify (or whose expiry has passed) is rejected before it reaches the
// serving stack.
type Key [32]byte

// ParseKey decodes a 64-hex-digit key string.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("wire: key must be %d hex bytes", len(k))
	}
	copy(k[:], b)
	return k, nil
}

// String renders the key as hex (for -token-key flags).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Token authenticates a connection: an expiry plus an HMAC over it. The
// token is bearer-style and bound to nothing but time, so its only secret
// is the shared key — ids never enter the MAC input.
//
// Being a bearer credential, anyone who observes a token can replay it
// until its expiry: tokens are only meaningful over TLS (or inside an
// encrypting tunnel), where an on-path observer cannot read them. Keep
// TTLs short; channel-bound tokens are a possible v2 hardening.
type Token struct {
	MAC    [macLen]byte
	Expiry int64 // unix seconds
}

// tokenContext domain-separates the MAC from any other use of the key.
const tokenContext = "secemb-wire-token-v1"

func tokenMAC(k Key, expiry int64) [macLen]byte {
	m := hmac.New(sha256.New, k[:])
	m.Write([]byte(tokenContext))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(expiry))
	m.Write(e[:])
	var out [macLen]byte
	copy(out[:], m.Sum(nil))
	return out
}

// NewToken mints a token valid until expiry.
func NewToken(k Key, expiry time.Time) Token {
	e := expiry.Unix()
	return Token{MAC: tokenMAC(k, e), Expiry: e}
}

// Verify checks the token's MAC (constant-time) and that it has not
// expired as of now.
func (t Token) Verify(k Key, now time.Time) bool {
	want := tokenMAC(k, t.Expiry)
	return hmac.Equal(want[:], t.MAC[:]) && now.Unix() <= t.Expiry
}
