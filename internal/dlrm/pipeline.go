package dlrm

import (
	"fmt"

	"secemb/internal/core"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// Pipeline is the inference-time DLRM: the trained MLPs plus one
// core.Generator per sparse feature. Swapping generators is how the
// protection techniques — and the hybrid allocation — are deployed without
// touching the rest of the model (Algorithm 2's online stage).
type Pipeline struct {
	Cfg    Config
	Bottom *nn.Sequential
	Top    *nn.Sequential
	Gens   []core.Generator
}

// NewPipeline assembles an inference pipeline from a trained model's MLPs
// and explicit generators (one per sparse feature). The MLPs are cloned
// for inference (shared weights, private activation caches), so multiple
// pipelines built from one model can serve concurrently — each pipeline
// instance itself handles one request at a time (its generators hold
// mutable ORAM state).
func NewPipeline(m *Model, gens []core.Generator) *Pipeline {
	if len(gens) != len(m.Cfg.Cardinalities) {
		panic(fmt.Sprintf("dlrm: %d generators for %d features", len(gens), len(m.Cfg.Cardinalities)))
	}
	return &Pipeline{
		Cfg:    m.Cfg,
		Bottom: m.Bottom.CloneForInference(),
		Top:    m.Top.CloneForInference(),
		Gens:   gens,
	}
}

// Build converts a trained model into a pipeline where every sparse
// feature uses the given technique. Table-trained models can serve
// Lookup/LinearScan/ORAM directly from their weights; DHE-trained models
// serve DHE directly and *materialize* tables (DHE→table conversion,
// §IV-C1) for the storage-based techniques.
func Build(m *Model, tech core.Technique, opts core.Options) *Pipeline {
	techs := make([]core.Technique, len(m.Embs))
	for i := range techs {
		techs[i] = tech
	}
	return BuildHybrid(m, techs, opts)
}

// BuildHybrid converts a trained model into a pipeline with a per-feature
// technique assignment — the hybrid scheme's deployment step (Algorithm 3
// decides techs; this materializes the representations).
func BuildHybrid(m *Model, techs []core.Technique, opts core.Options) *Pipeline {
	if len(techs) != len(m.Embs) {
		panic(fmt.Sprintf("dlrm: %d techniques for %d features", len(techs), len(m.Embs)))
	}
	gens := make([]core.Generator, len(m.Embs))
	for f, rep := range m.Embs {
		o := opts
		o.Region = fmt.Sprintf("feat%d", f)
		o.Seed = opts.Seed + int64(f)
		gens[f] = core.BuildGenerator(rep, m.Cfg.Cardinalities[f], techs[f], o)
	}
	return NewPipeline(m, gens)
}

// Predict runs inference, returning CTR probabilities (batch×1).
// Sequential sparse-feature processing, as in the paper's experiments
// (§IV-C1).
func (p *Pipeline) Predict(dense *tensor.Matrix, sparse [][]uint64) *tensor.Matrix {
	logits := p.Logits(dense, sparse)
	s := &nn.Sigmoid{}
	return s.Forward(logits)
}

// Logits runs inference up to the CTR logit.
func (p *Pipeline) Logits(dense *tensor.Matrix, sparse [][]uint64) *tensor.Matrix {
	if len(sparse) != len(p.Gens) {
		panic(fmt.Sprintf("dlrm: %d sparse features, pipeline has %d", len(sparse), len(p.Gens)))
	}
	z := []*tensor.Matrix{p.Bottom.Forward(dense)}
	for f, g := range p.Gens {
		z = append(z, g.Generate(sparse[f]))
	}
	inter := interact(z)
	return p.Top.Forward(tensor.Concat(append([]*tensor.Matrix{z[0]}, inter)...))
}

// NumBytes is the deployed footprint: MLPs + all generator
// representations.
func (p *Pipeline) NumBytes() int64 {
	n := p.Bottom.NumBytes() + p.Top.NumBytes()
	for _, g := range p.Gens {
		n += g.NumBytes()
	}
	return n
}

// SetThreads propagates the worker count to every generator.
func (p *Pipeline) SetThreads(n int) {
	for _, g := range p.Gens {
		g.SetThreads(n)
	}
}
