package dlrm

import (
	"fmt"
	"time"

	"secemb/internal/core"
	"secemb/internal/nn"
	"secemb/internal/obs"
	"secemb/internal/tensor"
)

// Pipeline is the inference-time DLRM: the trained MLPs plus one
// core.Generator per sparse feature. Swapping generators is how the
// protection techniques — and the hybrid allocation — are deployed without
// touching the rest of the model (Algorithm 2's online stage).
type Pipeline struct {
	Cfg    Config
	Bottom *nn.Sequential
	Top    *nn.Sequential
	Gens   []core.Generator

	// Reusable forward state: per-MLP workspaces and the embedding slice,
	// reused across requests so steady-state Predict stays allocation-
	// light. A pipeline serves one request at a time (its generators hold
	// mutable state), so the buffers are never shared across goroutines.
	bottomWS, topWS nn.Workspace
	z               []*tensor.Matrix

	// Per-stage latency histograms (dlrm_stage_ns{stage=...}); all nil
	// until SetObserver, and nil histograms observe as no-ops.
	stBottom, stEmbed, stInteract, stTop *obs.Histogram
}

// NewPipeline assembles an inference pipeline from a trained model's MLPs
// and explicit generators (one per sparse feature). The MLPs are cloned
// for inference (shared weights, private activation caches), so multiple
// pipelines built from one model can serve concurrently — each pipeline
// instance itself handles one request at a time (its generators hold
// mutable ORAM state).
func NewPipeline(m *Model, gens []core.Generator) *Pipeline {
	if len(gens) != len(m.Cfg.Cardinalities) {
		panic(fmt.Sprintf("dlrm: %d generators for %d features", len(gens), len(m.Cfg.Cardinalities)))
	}
	return &Pipeline{
		Cfg:    m.Cfg,
		Bottom: m.Bottom.CloneForInference(),
		Top:    m.Top.CloneForInference(),
		Gens:   gens,
	}
}

// Build converts a trained model into a pipeline where every sparse
// feature uses the given technique. Table-trained models can serve
// Lookup/LinearScan/ORAM directly from their weights; DHE-trained models
// serve DHE directly and *materialize* tables (DHE→table conversion,
// §IV-C1) for the storage-based techniques.
func Build(m *Model, tech core.Technique, opts core.Options) *Pipeline {
	techs := make([]core.Technique, len(m.Embs))
	for i := range techs {
		techs[i] = tech
	}
	return BuildHybrid(m, techs, opts)
}

// BuildHybrid converts a trained model into a pipeline with a per-feature
// technique assignment — the hybrid scheme's deployment step (Algorithm 3
// decides techs; this materializes the representations).
func BuildHybrid(m *Model, techs []core.Technique, opts core.Options) *Pipeline {
	if len(techs) != len(m.Embs) {
		panic(fmt.Sprintf("dlrm: %d techniques for %d features", len(techs), len(m.Embs)))
	}
	gens := make([]core.Generator, len(m.Embs))
	for f, rep := range m.Embs {
		o := opts
		o.Region = fmt.Sprintf("feat%d", f)
		o.Seed = opts.Seed + int64(f)
		gens[f] = core.BuildGenerator(rep, m.Cfg.Cardinalities[f], techs[f], o)
	}
	return NewPipeline(m, gens)
}

// SetObserver registers per-stage latency histograms
// (dlrm_stage_ns{stage=bottom|embed|interact|top}) in reg. A nil registry
// (or never calling this) leaves the pipeline uninstrumented.
func (p *Pipeline) SetObserver(reg *obs.Registry) {
	p.stBottom = reg.Histogram("dlrm_stage_ns", "stage", "bottom")
	p.stEmbed = reg.Histogram("dlrm_stage_ns", "stage", "embed")
	p.stInteract = reg.Histogram("dlrm_stage_ns", "stage", "interact")
	p.stTop = reg.Histogram("dlrm_stage_ns", "stage", "top")
}

// Predict runs inference, returning CTR probabilities (batch×1).
// Sequential sparse-feature processing, as in the paper's experiments
// (§IV-C1).
func (p *Pipeline) Predict(dense *tensor.Matrix, sparse [][]uint64) (*tensor.Matrix, error) {
	logits, err := p.Logits(dense, sparse)
	if err != nil {
		return nil, err
	}
	s := &nn.Sigmoid{}
	return s.Forward(logits), nil
}

// Logits runs inference up to the CTR logit. Errors from the generators
// (out-of-range ids) are returned annotated with the sparse-feature index.
func (p *Pipeline) Logits(dense *tensor.Matrix, sparse [][]uint64) (*tensor.Matrix, error) {
	if len(sparse) != len(p.Gens) {
		return nil, fmt.Errorf("dlrm: %d sparse features, pipeline has %d", len(sparse), len(p.Gens))
	}
	start := time.Now()
	z := append(p.z[:0], p.Bottom.ForwardInto(&p.bottomWS, dense))
	start = stamp(p.stBottom, start)
	for f, g := range p.Gens {
		emb, err := g.Generate(sparse[f])
		if err != nil {
			p.z = z[:0]
			return nil, fmt.Errorf("dlrm: feature %d: %w", f, err)
		}
		z = append(z, emb)
	}
	p.z = z
	start = stamp(p.stEmbed, start)
	inter := interact(z)
	start = stamp(p.stInteract, start)
	out := p.Top.ForwardInto(&p.topWS, tensor.Concat(z[0], inter))
	stamp(p.stTop, start)
	return out, nil
}

// stamp observes the elapsed time since start into h (no-op when h is nil)
// and returns the new stage start.
func stamp(h *obs.Histogram, start time.Time) time.Time {
	now := time.Now()
	h.ObserveDuration(now.Sub(start))
	return now
}

// NumBytes is the deployed footprint: MLPs + all generator
// representations.
func (p *Pipeline) NumBytes() int64 {
	n := p.Bottom.NumBytes() + p.Top.NumBytes()
	for _, g := range p.Gens {
		n += g.NumBytes()
	}
	return n
}

// SetThreads propagates the worker count to every generator.
func (p *Pipeline) SetThreads(n int) {
	for _, g := range p.Gens {
		g.SetThreads(n)
	}
}
