package dlrm

import (
	"io"

	"secemb/internal/nn"
)

// Save writes the model's parameters (MLPs + embedding representations).
// Loading requires a model built with the same Config and embedding kind.
func (m *Model) Save(w io.Writer) error {
	return nn.SaveParams(w, m.Params())
}

// Load restores parameters saved by Save into this model.
func (m *Model) Load(r io.Reader) error {
	return nn.LoadParams(r, m.Params())
}
