package dlrm

import (
	"math/rand"
	"sort"

	"secemb/internal/data"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// TrainStep runs one optimization step on a CTR batch and returns the BCE
// loss.
func (m *Model) TrainStep(b data.Batch, opt nn.Optimizer) float64 {
	m.ZeroGrads()
	logits := m.Forward(b.Dense, b.Sparse)
	loss, grad := nn.BCEWithLogits(logits, b.Labels)
	m.Backward(grad)
	opt.Step(m.Params())
	return loss
}

// Train runs `steps` optimization steps over freshly sampled batches and
// returns the final running loss.
func (m *Model) Train(ds *data.CTRDataset, steps, batch int, opt nn.Optimizer, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var loss float64
	for s := 0; s < steps; s++ {
		loss = m.TrainStep(ds.Sample(batch, rng), opt)
	}
	return loss
}

// Accuracy evaluates classification accuracy (threshold 0.5) over
// nBatches fresh batches — the metric of Table V.
func (m *Model) Accuracy(ds *data.CTRDataset, nBatches, batch int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	correct, total := 0, 0
	for i := 0; i < nBatches; i++ {
		b := ds.Sample(batch, rng)
		logits := m.Forward(b.Dense, b.Sparse)
		for r := 0; r < batch; r++ {
			pred := float32(0)
			if logits.At(r, 0) > 0 {
				pred = 1
			}
			if pred == b.Labels[r] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

// AUC evaluates the area under the ROC curve over nBatches fresh batches
// — the standard CTR ranking metric, computed by the rank-sum
// (Mann–Whitney) formulation with midrank tie handling.
func (m *Model) AUC(ds *data.CTRDataset, nBatches, batch int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	type scored struct {
		score float32
		pos   bool
	}
	var all []scored
	for i := 0; i < nBatches; i++ {
		b := ds.Sample(batch, rng)
		logits := m.Forward(b.Dense, b.Sparse)
		for r := 0; r < batch; r++ {
			all = append(all, scored{logits.At(r, 0), b.Labels[r] == 1})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	var rankSum float64
	var nPos, nNeg int
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].score == all[i].score {
			j++
		}
		midrank := float64(i+j+1) / 2 // 1-based midrank of the tie group
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += midrank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// predictProb is a convenience used by tests: forward + sigmoid.
func (m *Model) predictProb(dense *tensor.Matrix, sparse [][]uint64) *tensor.Matrix {
	s := &nn.Sigmoid{}
	return s.Forward(m.Forward(dense, sparse))
}
