// Package dlrm implements the Deep Learning Recommendation Model
// [Naumov et al.] used as the paper's first case study (Figure 1a): a
// bottom MLP over dense features, one embedding per sparse feature, a
// pairwise dot-product feature interaction, and a top MLP producing a
// click probability.
//
// Two forms are provided: a trainable Model whose embeddings are either
// tables or DHEs (the paper trains all-DHE models and materializes tables
// from them, §IV-C1), and an inference Pipeline whose embeddings come from
// any core.Generator — which is where the secure techniques and the hybrid
// allocation plug in.
package dlrm

import (
	"fmt"
	"math/rand"

	"secemb/internal/core"
	"secemb/internal/dhe"
	"secemb/internal/nn"
	"secemb/internal/tensor"
)

// Config describes a DLRM architecture, mirroring Table IV.
type Config struct {
	DenseDim      int
	EmbDim        int
	BottomHidden  []int // bottom MLP hidden widths; output is EmbDim
	TopHidden     []int // top MLP hidden widths; output is 1 (CTR logit)
	Cardinalities []int
	Seed          int64
}

// KaggleConfig is the Criteo Kaggle model of Table IV (dim 16,
// bottom 512-256-64-16, top 512-256-1) over the given cardinalities.
func KaggleConfig(cardinalities []int, seed int64) Config {
	return Config{
		DenseDim:      13,
		EmbDim:        16,
		BottomHidden:  []int{512, 256, 64},
		TopHidden:     []int{512, 256},
		Cardinalities: cardinalities,
		Seed:          seed,
	}
}

// TerabyteConfig is the Criteo Terabyte model of Table IV (dim 64,
// bottom 512-256-64, top 512-512-256-1).
func TerabyteConfig(cardinalities []int, seed int64) Config {
	return Config{
		DenseDim:      13,
		EmbDim:        64,
		BottomHidden:  []int{512, 256},
		TopHidden:     []int{512, 512, 256},
		Cardinalities: cardinalities,
		Seed:          seed,
	}
}

// numInteractionFeatures returns the top-MLP input width: the bottom
// output concatenated with all pairwise dot products among the m+1 vectors
// (bottom output + m embeddings).
func (c Config) numInteractionFeatures() int {
	m := len(c.Cardinalities) + 1
	return c.EmbDim + m*(m-1)/2
}

// EmbKind selects the trainable representation for Model construction.
type EmbKind int

const (
	// TableEmb trains conventional embedding tables.
	TableEmb EmbKind = iota
	// DHEUniformEmb trains fixed-architecture DHEs for every feature.
	DHEUniformEmb
	// DHEVariedEmb trains size-scaled DHEs (Table IV's Varied policy).
	DHEVariedEmb
)

// Model is the trainable DLRM.
type Model struct {
	Cfg    Config
	Bottom *nn.Sequential
	Top    *nn.Sequential
	Embs   []core.TrainableRep

	// Forward caches for Backward.
	lastSparse [][]uint64
	lastZ      []*tensor.Matrix // bottom output + per-feature embeddings
	lastTopIn  *tensor.Matrix
}

// New builds a DLRM with the chosen embedding representation.
func New(cfg Config, kind EmbKind) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bottomDims := append(append([]int{cfg.DenseDim}, cfg.BottomHidden...), cfg.EmbDim)
	topDims := append(append([]int{cfg.numInteractionFeatures()}, cfg.TopHidden...), 1)
	m := &Model{
		Cfg:    cfg,
		Bottom: nn.MLP(bottomDims, true, rng), // bottom ends in ReLU (reference DLRM)
		Top:    nn.MLP(topDims, false, rng),   // bare logit output
	}
	for i, n := range cfg.Cardinalities {
		seed := cfg.Seed + int64(i) + 1
		switch kind {
		case TableEmb:
			m.Embs = append(m.Embs, core.NewTableRep(n, cfg.EmbDim, rng))
		case DHEUniformEmb:
			m.Embs = append(m.Embs, core.NewDHERep(dhe.New(dhe.UniformConfig(cfg.EmbDim, seed), rng), n))
		case DHEVariedEmb:
			m.Embs = append(m.Embs, core.NewDHERep(dhe.New(dhe.VariedConfig(cfg.EmbDim, n, seed), rng), n))
		default:
			panic(fmt.Sprintf("dlrm: unknown embedding kind %d", kind))
		}
	}
	return m
}

// NewWithReps builds a DLRM with caller-provided embedding
// representations (one per sparse feature) — used to train miniatures
// with custom DHE architectures.
func NewWithReps(cfg Config, reps []core.TrainableRep) *Model {
	if len(reps) != len(cfg.Cardinalities) {
		panic(fmt.Sprintf("dlrm: %d representations for %d features", len(reps), len(cfg.Cardinalities)))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bottomDims := append(append([]int{cfg.DenseDim}, cfg.BottomHidden...), cfg.EmbDim)
	topDims := append(append([]int{cfg.numInteractionFeatures()}, cfg.TopHidden...), 1)
	return &Model{
		Cfg:    cfg,
		Bottom: nn.MLP(bottomDims, true, rng),
		Top:    nn.MLP(topDims, false, rng),
		Embs:   reps,
	}
}

// Forward runs dense features (batch×DenseDim) and per-feature sparse ids
// through the model, returning CTR logits (batch×1).
func (m *Model) Forward(dense *tensor.Matrix, sparse [][]uint64) *tensor.Matrix {
	if len(sparse) != len(m.Embs) {
		panic(fmt.Sprintf("dlrm: %d sparse features, model has %d", len(sparse), len(m.Embs)))
	}
	m.lastSparse = sparse
	z0 := m.Bottom.Forward(dense)
	m.lastZ = []*tensor.Matrix{z0}
	for f, rep := range m.Embs {
		m.lastZ = append(m.lastZ, rep.Forward(sparse[f]))
	}
	inter := interact(m.lastZ)
	m.lastTopIn = tensor.Concat(append([]*tensor.Matrix{z0}, inter)...)
	return m.Top.Forward(m.lastTopIn)
}

// Backward propagates the logit gradient through the whole model,
// accumulating parameter gradients everywhere.
func (m *Model) Backward(gradLogits *tensor.Matrix) {
	gradTopIn := m.Top.Backward(gradLogits)
	d := m.Cfg.EmbDim
	gradZ0Direct := tensor.SliceCols(gradTopIn, 0, d)
	gradInter := tensor.SliceCols(gradTopIn, d, gradTopIn.Cols)
	gradZ := interactBackward(m.lastZ, gradInter)
	tensor.AddInPlace(gradZ[0], gradZ0Direct)
	m.Bottom.Backward(gradZ[0])
	for f, rep := range m.Embs {
		rep.Backward(m.lastSparse[f], gradZ[f+1])
	}
}

// Params collects every trainable parameter.
func (m *Model) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.Bottom.Params()...)
	out = append(out, m.Top.Params()...)
	for _, rep := range m.Embs {
		out = append(out, rep.Params()...)
	}
	return out
}

// ZeroGrads clears all gradients.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumBytes is the model footprint: MLPs plus embedding representations —
// the accounting behind Table VI.
func (m *Model) NumBytes() int64 {
	n := m.Bottom.NumBytes() + m.Top.NumBytes()
	for _, rep := range m.Embs {
		n += rep.NumBytes()
	}
	return n
}

// interact computes the pairwise dot products p_ij = z_i·z_j (i<j) over
// the m+1 vectors, returning a batch×(m+1)m/2 matrix. This is DLRM's
// all-to-all inner-product feature interaction — deterministic data flow
// (§V-C).
func interact(z []*tensor.Matrix) *tensor.Matrix {
	batch := z[0].Rows
	m := len(z)
	out := tensor.New(batch, m*(m-1)/2)
	for r := 0; r < batch; r++ {
		dst := out.Row(r)
		k := 0
		for i := 0; i < m; i++ {
			zi := z[i].Row(r)
			for j := i + 1; j < m; j++ {
				zj := z[j].Row(r)
				var sum float32
				for c := range zi {
					sum += zi[c] * zj[c]
				}
				dst[k] = sum
				k++
			}
		}
	}
	return out
}

// interactBackward returns per-vector gradients for the interaction:
// dz_i += Σ_j dp_ij · z_j.
func interactBackward(z []*tensor.Matrix, grad *tensor.Matrix) []*tensor.Matrix {
	batch := z[0].Rows
	m := len(z)
	out := make([]*tensor.Matrix, m)
	for i := range out {
		out[i] = tensor.New(batch, z[i].Cols)
	}
	for r := 0; r < batch; r++ {
		g := grad.Row(r)
		k := 0
		for i := 0; i < m; i++ {
			zi := z[i].Row(r)
			oi := out[i].Row(r)
			for j := i + 1; j < m; j++ {
				zj := z[j].Row(r)
				oj := out[j].Row(r)
				gij := g[k]
				k++
				for c := range zi {
					oi[c] += gij * zj[c]
					oj[c] += gij * zi[c]
				}
			}
		}
	}
	return out
}
